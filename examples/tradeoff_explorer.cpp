// Figure 4, live: the full time-memory tradeoff curve of the Figure 3 DAG.
//
//   $ ./tradeoff_explorer [d] [chain_length] [model]
//
// model is one of: base, oneshot, nodel, compcost (default: oneshot).
// Prints opt(R) for every R between d+2 and 2d+2 and draws the staircase.
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "src/analysis/tradeoff.hpp"
#include "src/support/table.hpp"

int main(int argc, char** argv) {
  using namespace rbpeb;
  const std::size_t d = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
  const std::size_t len = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 64;
  Model model = Model::oneshot();
  if (argc > 3) {
    for (const Model& m : all_models()) {
      if (m.name() == argv[3]) model = m;
    }
  }

  std::cout << "Tradeoff chain: d = " << d << ", chain length n = " << len
            << ", model = " << model.name() << "\n\n";
  auto series = chain_tradeoff_sweep(d, len, model);

  Table table("opt(R) for the Figure 3 DAG");
  table.set_header({"R", "measured cost", "paper 2(d-i)n", "drop vs R-1"});
  Rational prev(0);
  bool first = true;
  double max_cost = 0;
  for (const TradeoffPoint& pt : series) {
    max_cost = std::max(max_cost, pt.measured.to_double());
    table.add_row({std::to_string(pt.red_limit), pt.measured.str(),
                   std::to_string(pt.formula),
                   first ? "-" : (prev - pt.measured).str()});
    prev = pt.measured;
    first = false;
  }
  table.add_note("each extra red pebble saves ~2n transfers (Figure 4)");
  std::cout << table << '\n';

  // ASCII staircase.
  std::cout << "Tradeoff staircase (cost scaled to 60 columns):\n";
  for (const TradeoffPoint& pt : series) {
    int bar = max_cost > 0
                  ? static_cast<int>(60.0 * pt.measured.to_double() / max_cost)
                  : 0;
    std::cout << "  R=" << pt.red_limit << (pt.red_limit < 10 ? " " : "")
              << " |" << std::string(bar, '#') << ' ' << pt.measured.str()
              << '\n';
  }
  return 0;
}
