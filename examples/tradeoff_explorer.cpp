// Figure 4, live: the full time-memory tradeoff curve of the Figure 3 DAG.
//
//   $ ./tradeoff_explorer [d] [chain_length] [model]
//
// model is one of: base, oneshot, nodel, compcost (default: oneshot).
// Prints opt(R) for every R between d+2 and 2d+2, draws the staircase, then
// races the registered solvers on the chain instance at the tightest budget
// to show how the heuristics stack up against the constructive strategy.
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "src/analysis/tradeoff.hpp"
#include "src/gadgets/tradeoff_chain.hpp"
#include "src/solvers/api.hpp"
#include "src/solvers/portfolio.hpp"
#include "src/support/table.hpp"

int main(int argc, char** argv) {
  using namespace rbpeb;
  const std::size_t d = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
  const std::size_t len = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 64;
  Model model = Model::oneshot();
  if (argc > 3) {
    auto parsed = Model::from_name(argv[3]);
    if (!parsed) {
      std::cerr << "unknown model '" << argv[3]
                << "' (base oneshot nodel compcost)\n";
      return 2;
    }
    model = *parsed;
  }

  std::cout << "Tradeoff chain: d = " << d << ", chain length n = " << len
            << ", model = " << model.name() << "\n\n";
  auto series = chain_tradeoff_sweep(d, len, model);

  Table table("opt(R) for the Figure 3 DAG");
  table.set_header({"R", "measured cost", "paper 2(d-i)n", "drop vs R-1"});
  Rational prev(0);
  bool first = true;
  double max_cost = 0;
  for (const TradeoffPoint& pt : series) {
    max_cost = std::max(max_cost, pt.measured.to_double());
    table.add_row({std::to_string(pt.red_limit), pt.measured.str(),
                   std::to_string(pt.formula),
                   first ? "-" : (prev - pt.measured).str()});
    prev = pt.measured;
    first = false;
  }
  table.add_note("each extra red pebble saves ~2n transfers (Figure 4)");
  std::cout << table << '\n';

  // ASCII staircase.
  std::cout << "Tradeoff staircase (cost scaled to 60 columns):\n";
  for (const TradeoffPoint& pt : series) {
    int bar = max_cost > 0
                  ? static_cast<int>(60.0 * pt.measured.to_double() / max_cost)
                  : 0;
    std::cout << "  R=" << pt.red_limit << (pt.red_limit < 10 ? " " : "")
              << " |" << std::string(bar, '#') << ' ' << pt.measured.str()
              << '\n';
  }

  // Registry shoot-out on a small chain at the tightest budget R = d+2:
  // the request carries the chain and its group structure, so every solver
  // that can use them (chain, group-greedy, held-karp, local-search, …)
  // competes; the rest report why they sat out.
  const std::size_t small_d = std::min<std::size_t>(d, 4);
  const std::size_t small_len = std::min<std::size_t>(len, 12);
  TradeoffChain chain =
      make_tradeoff_chain({.d = small_d, .length = small_len});
  Engine engine(chain.instance.dag, model, chain.instance.red_limit);
  SolveRequest request;
  request.engine = &engine;
  request.groups = &chain.instance;
  request.chain = &chain;
  PortfolioOptions popts;
  popts.parallel = false;  // keep the table order deterministic
  popts.cancel_on_optimal = false;
  PortfolioResult portfolio = solve_portfolio(request, popts);

  Table race("Registered solvers on the chain (d = " +
             std::to_string(small_d) + ", n = " + std::to_string(small_len) +
             ", R = " + std::to_string(chain.instance.red_limit) + ")");
  race.set_header({"solver", "status", "cost", "notes"});
  for (const SolveResult& result : portfolio.results) {
    race.add_row({result.solver, to_string(result.status),
                  result.has_trace() ? result.cost.str() : "-",
                  result.detail});
  }
  if (portfolio.has_best()) {
    race.add_note("winner: " + portfolio.best().solver + " at cost " +
                  portfolio.best().cost.str());
  }
  std::cout << '\n' << race;
  return 0;
}
