// Theorem 2, live: solving Hamiltonian Path by pebbling.
//
//   $ ./hardness_demo [N] [seed]
//
// Generates random graphs, reduces each to a red-blue pebbling instance
// (Figure 5), finds the optimal pebbling, and reads the answer to the
// Hamiltonian-Path question off the pebbling cost — then double-checks
// against a direct Held–Karp oracle.
#include <cstdlib>
#include <iostream>

#include "src/graph/generators.hpp"
#include "src/reductions/hampath.hpp"
#include "src/reductions/hampath_solver.hpp"
#include "src/support/table.hpp"

int main(int argc, char** argv) {
  using namespace rbpeb;
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 7;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;
  Rng rng(seed);

  Table table("Hamiltonian Path via red-blue pebbling (oneshot, R = N)");
  table.set_header({"graph", "edges", "pebbling cost", "threshold C",
                    "pebbling says", "oracle says", "agree"});

  auto run = [&](const std::string& name, const Graph& g) {
    HamPathReduction red = make_hampath_reduction(g, Model::oneshot());
    HamPathPebbling opt = solve_hampath_pebbling(red);
    Rational threshold = hampath_threshold(red);
    bool pebbling_says = opt.cost <= threshold;
    bool oracle_says = has_hamiltonian_path(g);
    table.add_row({name, std::to_string(g.edge_count()), opt.cost.str(),
                   threshold.str(), pebbling_says ? "HAM PATH" : "no",
                   oracle_says ? "HAM PATH" : "no",
                   pebbling_says == oracle_says ? "yes" : "MISMATCH"});
    if (pebbling_says) {
      std::cout << "  " << name << ": recovered path:";
      for (Vertex v : opt.perm) std::cout << ' ' << v;
      std::cout << '\n';
    }
  };

  std::cout << "Recovered Hamiltonian paths (read off the optimal pebbling's"
               " group visit order):\n";
  run("path", path_graph(n));
  run("cycle", cycle_graph(n));
  run("star", star_graph(n));
  run("two-cliques", two_cliques(n / 2, n - n / 2));
  for (int i = 0; i < 3; ++i) {
    run("random-" + std::to_string(i), random_graph(n, 0.3, rng));
  }
  run("planted", random_graph_with_ham_path(n, 0.1, rng));

  std::cout << '\n' << table;
  std::cout << "\nEvery pebbling verdict is obtained purely from the cost of\n"
               "an audited pebbling of the Figure 5 DAG; the oracle column is\n"
               "an independent Held-Karp search on the source graph.\n";
  return 0;
}
