// I/O cost of dense matrix multiplication under a shrinking cache.
//
//   $ ./matmul_io [n]
//
// Builds the n×n×n multiplication DAG (the workload Hong & Kung introduced
// red-blue pebbling for) and measures the greedy pebbling cost as the number
// of red pebbles (cache slots) shrinks — the time-memory tradeoff that
// motivates the whole theory.
#include <cstdlib>
#include <iostream>

#include "src/analysis/greedy_vs_opt.hpp"
#include "src/pebble/bounds.hpp"
#include "src/pebble/verifier.hpp"
#include "src/solvers/greedy.hpp"
#include "src/support/table.hpp"
#include "src/workloads/matmul.hpp"

int main(int argc, char** argv) {
  using namespace rbpeb;
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;

  MatMulDag mm = make_matmul_dag(n);
  std::cout << "C = A·B with n = " << n << ": " << mm.dag.node_count()
            << " DAG nodes, " << mm.dag.edge_count() << " edges, Δ = "
            << mm.dag.max_indegree() << "\n\n";

  Table table("Greedy I/O cost vs cache size (oneshot model)");
  table.set_header({"R (cache slots)", "transfers", "per output",
                    "vs R=3 baseline"});
  double baseline = -1.0;
  for (std::size_t r : {std::size_t{3}, n, 2 * n, 4 * n, n * n}) {
    if (r < min_red_pebbles(mm.dag)) continue;
    Engine engine(mm.dag, Model::oneshot(), r);
    VerifyResult vr = verify_or_throw(engine, solve_greedy(engine));
    double cost = vr.total.to_double();
    if (baseline < 0) baseline = cost;
    table.add_row({std::to_string(r), vr.total.str(),
                   format_double(cost / static_cast<double>(n * n), 2),
                   baseline > 0
                       ? format_double(100.0 * cost / baseline, 1) + "%"
                       : "n/a"});
  }
  table.add_note("transfers fall steeply as the cache grows — the classical");
  table.add_note("O(n^3/sqrt(R)) I/O behaviour of blocked matrix multiply");
  std::cout << table;

  // Eviction-policy ablation at a mid-size cache.
  Table ablation("Eviction policy ablation (R = 2n)");
  ablation.set_header({"policy", "transfers"});
  for (EvictionRule rule : {EvictionRule::FewestRemainingUses,
                            EvictionRule::Lru, EvictionRule::Random}) {
    GreedyOptions options;
    options.eviction = rule;
    Rational cost = greedy_cost_on(mm.dag, Model::oneshot(), 2 * n, options);
    ablation.add_row({to_string(rule), cost.str()});
  }
  std::cout << '\n' << ablation;
  return 0;
}
