// Execute a pebbling schedule on real data through the two-level memory
// simulator.
//
//   $ ./simulate_memory [width] [steps] [R]
//
// Builds a 1D stencil computation, lets the greedy solver produce a
// schedule, executes it with actual values flowing through simulated
// fast/slow memory, and shows that the results match an unbounded-memory
// reference evaluation while never exceeding the fast-memory budget.
#include <cstdlib>
#include <iostream>

#include "src/exec/executor.hpp"
#include "src/pebble/verifier.hpp"
#include "src/solvers/greedy.hpp"
#include "src/support/table.hpp"
#include "src/workloads/stencil.hpp"

int main(int argc, char** argv) {
  using namespace rbpeb;
  const std::size_t width = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 16;
  const std::size_t steps = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;
  const std::size_t r = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 8;

  StencilDag st = make_stencil1d_dag(width, steps);
  std::cout << "1D stencil, width " << width << " x " << steps
            << " steps: " << st.dag.node_count() << " nodes\n\n";

  Engine engine(st.dag, Model::oneshot(), r);
  Trace schedule = solve_greedy(engine);
  VerifyResult audit = verify_or_throw(engine, schedule);

  // Semantics: boundary-damped averaging, values are actual doubles.
  NodeOp op = [&](NodeId v, std::span<const double> inputs) {
    if (inputs.empty()) return static_cast<double>(v % 7) + 1.0;
    double sum = 0.0;
    for (double x : inputs) sum += x;
    return sum / static_cast<double>(inputs.size());
  };

  ExecutionResult exec = execute_trace(engine, schedule, op);
  auto reference = reference_evaluation(st.dag, op);

  std::size_t checked = 0, matched = 0;
  double checksum = 0.0;
  for (NodeId sink : st.final_) {
    ++checked;
    if (exec.values[sink].has_value() && *exec.values[sink] == reference[sink]) {
      ++matched;
      checksum += *exec.values[sink];
    }
  }

  Table table("Schedule execution summary");
  table.set_header({"metric", "value"});
  table.add_row({"schedule moves", std::to_string(schedule.size())});
  table.add_row({"slow-memory transfers", audit.total.str()});
  table.add_row({"peak fast slots used",
                 std::to_string(exec.peak_fast_slots) + " / " +
                     std::to_string(r)});
  table.add_row({"peak slow slots used", std::to_string(exec.peak_slow_slots)});
  table.add_row({"outputs matching reference",
                 std::to_string(matched) + " / " + std::to_string(checked)});
  table.add_row({"output checksum", format_double(checksum, 6)});
  std::cout << table;
  std::cout << "\nThe executor refuses schedules whose data flow disagrees "
               "with the pebbling rules,\nso a passing run means the audited "
               "I/O cost belongs to a genuinely executable program.\n";
  return matched == checked ? 0 : 1;
}
