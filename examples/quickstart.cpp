// Quickstart: build a DAG, pebble it under every model, inspect the results.
//
//   $ ./quickstart
//
// Walks through the core rbpeb API: DagBuilder -> Engine -> SolverRegistry
// -> SolveResult. Solvers are looked up by name; every cost below is the
// verifier's audited total (the API replays each trace, so solvers cannot
// misreport). The final section races the whole registry with
// solve_portfolio.
#include <iostream>

#include "src/graph/dag_builder.hpp"
#include "src/graph/dag_io.hpp"
#include "src/pebble/bounds.hpp"
#include "src/solvers/api.hpp"
#include "src/solvers/portfolio.hpp"
#include "src/support/table.hpp"

int main() {
  using namespace rbpeb;

  // A toy computation: two inputs feed two intermediates, which feed one
  // output — a diamond with a tail.
  DagBuilder builder;
  NodeId x = builder.add_node("x");
  NodeId y = builder.add_node("y");
  NodeId p = builder.add_node("p");   // p = f(x, y)
  NodeId q = builder.add_node("q");   // q = g(x, y)
  NodeId out = builder.add_node("out");  // out = h(p, q)
  builder.add_edge(x, p);
  builder.add_edge(y, p);
  builder.add_edge(x, q);
  builder.add_edge(y, q);
  builder.add_edge(p, out);
  builder.add_edge(q, out);
  Dag dag = builder.build();

  std::cout << "The computation DAG in Graphviz DOT:\n" << to_dot(dag) << '\n';
  std::cout << "Minimum red pebbles (fast-memory slots): Δ+1 = "
            << min_red_pebbles(dag) << "\n\n";

  const SolverRegistry& registry = SolverRegistry::instance();

  Table table("Pebbling the diamond with R = 3 red pebbles");
  table.set_header({"model", "greedy cost", "optimal cost", "moves", "peak red"});
  for (const Model& model : all_models()) {
    Engine engine(dag, model, 3);
    SolveRequest request;
    request.engine = &engine;

    // Heuristic solution; result.cost is audited by replay.
    SolveResult greedy = registry.at("greedy").run(request);

    // Provably optimal solution (exponential search; fine at this size).
    SolveResult exact = registry.at("exact").run(request);

    table.add_row({model.name(), greedy.cost.str(), exact.cost.str(),
                   greedy.stats.at("moves"), greedy.stats.at("peak_red")});
  }
  table.add_note("cost = slow-memory transfers (+ eps per compute in compcost)");
  std::cout << table;

  // Race every registered solver and keep the best verified trace. Group
  // solvers report themselves inapplicable here (no group structure), which
  // is fine — a portfolio runs whatever fits the request. Sequential with
  // no early exit so this walkthrough prints the same thing every run.
  Engine engine(dag, Model::oneshot(), 3);
  SolveRequest request;
  request.engine = &engine;
  PortfolioOptions popts;
  popts.parallel = false;
  popts.cancel_on_optimal = false;
  PortfolioResult portfolio = solve_portfolio(request, popts);
  std::cout << "\nPortfolio over " << portfolio.results.size()
            << " registered solvers:\n";
  for (const SolveResult& result : portfolio.results) {
    std::cout << "  " << result.solver << ": " << to_string(result.status);
    if (result.has_trace()) std::cout << ", cost " << result.cost.str();
    if (!result.detail.empty()) std::cout << " (" << result.detail << ")";
    std::cout << '\n';
  }
  const SolveResult& best = portfolio.best();
  std::cout << "\nWinner: " << best.solver << " (" << to_string(best.status)
            << ") — an optimal oneshot pebbling with R = 3 ("
            << best.cost.str() << " transfers):\n" << best.trace->str();
  return 0;
}
