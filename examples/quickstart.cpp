// Quickstart: build a DAG, pebble it under every model, inspect the results.
//
//   $ ./quickstart
//
// Walks through the core rbpeb API: DagBuilder -> Engine -> solver ->
// Verifier. Everything a solver claims is re-checked by replaying its trace.
#include <iostream>

#include "src/graph/dag_builder.hpp"
#include "src/graph/dag_io.hpp"
#include "src/pebble/bounds.hpp"
#include "src/pebble/verifier.hpp"
#include "src/solvers/exact.hpp"
#include "src/solvers/greedy.hpp"
#include "src/support/table.hpp"

int main() {
  using namespace rbpeb;

  // A toy computation: two inputs feed two intermediates, which feed one
  // output — a diamond with a tail.
  DagBuilder builder;
  NodeId x = builder.add_node("x");
  NodeId y = builder.add_node("y");
  NodeId p = builder.add_node("p");   // p = f(x, y)
  NodeId q = builder.add_node("q");   // q = g(x, y)
  NodeId out = builder.add_node("out");  // out = h(p, q)
  builder.add_edge(x, p);
  builder.add_edge(y, p);
  builder.add_edge(x, q);
  builder.add_edge(y, q);
  builder.add_edge(p, out);
  builder.add_edge(q, out);
  Dag dag = builder.build();

  std::cout << "The computation DAG in Graphviz DOT:\n" << to_dot(dag) << '\n';
  std::cout << "Minimum red pebbles (fast-memory slots): Δ+1 = "
            << min_red_pebbles(dag) << "\n\n";

  Table table("Pebbling the diamond with R = 3 red pebbles");
  table.set_header({"model", "greedy cost", "optimal cost", "moves", "peak red"});
  for (const Model& model : all_models()) {
    Engine engine(dag, model, 3);

    // Heuristic solution, audited by replay.
    Trace greedy_trace = solve_greedy(engine);
    VerifyResult greedy = verify_or_throw(engine, greedy_trace);

    // Provably optimal solution (exponential search; fine at this size).
    ExactResult exact = solve_exact(engine);

    table.add_row({model.name(), greedy.total.str(), exact.cost.str(),
                   std::to_string(greedy.length),
                   std::to_string(greedy.max_red)});
  }
  table.add_note("cost = slow-memory transfers (+ eps per compute in compcost)");
  std::cout << table;

  // Show one concrete optimal pebbling, move by move.
  Engine engine(dag, Model::oneshot(), 3);
  ExactResult exact = solve_exact(engine);
  std::cout << "\nAn optimal oneshot pebbling with R = 3 ("
            << exact.cost.str() << " transfers):\n"
            << exact.trace.str();
  return 0;
}
