// Theorem 4, live: how badly greedy pebbling can lose.
//
//   $ ./greedy_pitfalls [ell] [k_common]
//
// Builds the misguidance grid of Figure 8, runs the Section 8 greedy and the
// diagonal-sweep optimum, and prints both visit orders plus the cost ratio.
#include <cstdlib>
#include <iostream>

#include "src/reductions/greedy_grid.hpp"
#include "src/support/table.hpp"

int main(int argc, char** argv) {
  using namespace rbpeb;
  const std::size_t ell = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  const std::size_t kc = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 64;

  GreedyGrid grid = make_greedy_grid({.ell = ell, .k_common = kc});
  std::cout << "Grid with ell = " << ell << ", k' = " << kc << ": "
            << grid.instance.dag.node_count() << " nodes, "
            << grid.instance.group_count() << " input groups, R = "
            << grid.instance.red_limit << "\n\n";

  GreedyGridOutcome outcome = evaluate_greedy_grid(grid, Model::oneshot());

  auto describe = [&](std::size_t group) -> std::string {
    if (group == grid.s0_group) return "S0";
    for (std::size_t i = 1; i <= ell; ++i) {
      for (std::size_t j = 1; i + j <= ell + 1; ++j) {
        if (grid.group_index(i, j) == group) {
          return "(" + std::to_string(i) + "," + std::to_string(j) + ")";
        }
      }
    }
    return "?";
  };

  std::cout << "Greedy visit order (columns right-to-left, as the paper"
               " predicts):\n  ";
  for (std::size_t g : outcome.greedy_order) std::cout << describe(g) << ' ';
  std::cout << "\n\nOptimal visit order (diagonal sweeps):\n  ";
  for (std::size_t g : grid.optimal_order) std::cout << describe(g) << ' ';
  std::cout << "\n\n";

  Table table("Greedy vs optimal on the misguidance grid (oneshot)");
  table.set_header({"strategy", "cost", "ratio"});
  table.add_row({"greedy (most red inputs)", outcome.greedy_cost.str(),
                 format_double(outcome.greedy_cost.to_double() /
                                   outcome.optimal_cost.to_double(),
                               2) + "x"});
  table.add_row({"optimal (diagonal sweep)", outcome.optimal_cost.str(), "1x"});
  table.add_note(outcome.greedy_followed_expected
                     ? "greedy followed exactly the misguided path of Figure 8"
                     : "NOTE: greedy deviated from the predicted path");
  std::cout << table;
  std::cout << "\nThe greedy reloads each diagonal's " << kc
            << " common nodes on every revisit; the optimum computes them\n"
               "once per diagonal and deletes them for free. Growing ell makes"
               " the ratio diverge (Theorem 4).\n";
  return 0;
}
