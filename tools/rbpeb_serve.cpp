// rbpeb_serve — streaming solve service over the verified trace cache.
//
// Usage:
//   rbpeb_serve [--input F] [--output F] [--stats F]
//               [--cache-bytes N[k|m|g]] [--queue N] [--workers N]
//               [--threads N] [--deadline-ms N] [--solver NAME|portfolio]
//               [--budget-states N] [--snapshot-every N] [--trace-out F]
//               [--progress-every-ms N] [--postmortem-dir D]
//               [--instance-root D] [--quiet]
//
// Reads one JSON request per line (stdin by default, or --input F — a file
// works as a replayable request queue; a named pipe / `nc -lU | rbpeb_serve`
// bridge covers the local-socket case without the tool owning sockets),
// writes one JSON response per line in INPUT ORDER (stdout or --output F) so
// a response stream can be diffed against single-shot CLI answers, and
// appends per-request structured stats as JSONL to --stats F. On EOF it
// drains the queue and prints a shutdown summary to stderr.
//
// Repeated instances — including node-renumbered isomorphs — are answered
// from the trace cache after a Verifier audit; every answer's cost is the
// audited replay total, so a served response is exactly as trustworthy as a
// cold solve. See src/serve/ for the machinery.
#include <deque>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/trace.hpp"
#include "src/serve/protocol.hpp"
#include "src/serve/server.hpp"
#include "src/support/check.hpp"

namespace {

using namespace rbpeb;
using namespace rbpeb::serve;

[[noreturn]] void usage() {
  std::cerr <<
      "usage:\n"
      "  rbpeb_serve [--input F] [--output F] [--stats F]\n"
      "              [--cache-bytes N[k|m|g]] [--queue N] [--workers N]\n"
      "              [--threads N] [--deadline-ms N]\n"
      "              [--solver NAME|portfolio] [--budget-states N]\n"
      "              [--snapshot-every N] [--trace-out F]\n"
      "              [--progress-every-ms N] [--postmortem-dir D]\n"
      "              [--instance-root D] [--quiet]\n"
      "--instance-root D lets requests name a \"dag_file\" resolved inside D\n"
      "(text or .rbg; without it every dag_file request is rejected);\n"
      "--snapshot-every N appends a metrics_snapshot JSONL line to --stats\n"
      "every N responses (default 64; 0 disables); --trace-out F writes a\n"
      "Chrome trace-event profile of the run (open in Perfetto), every span\n"
      "tagged with its originating request's sequence number (args.ctx);\n"
      "with --stats, per-request progress events stream into the sidecar\n"
      "(--progress-every-ms, default 250); --postmortem-dir D dumps a black\n"
      "box under D/req-<seq>/ for every request a budget or deadline ended\n"
      "reads JSONL requests (see src/serve/protocol.hpp), writes JSONL\n"
      "responses in input order; EOF drains the queue and prints a summary\n";
  std::exit(2);
}

/// "67108864", "64m", "2G" → bytes. Exits with usage() on malformed input.
std::size_t parse_byte_count(const std::string& text) {
  if (text.empty()) usage();
  std::size_t multiplier = 1;
  std::string digits = text;
  switch (digits.back()) {
    case 'k': case 'K': multiplier = std::size_t{1} << 10; break;
    case 'm': case 'M': multiplier = std::size_t{1} << 20; break;
    case 'g': case 'G': multiplier = std::size_t{1} << 30; break;
    default: break;
  }
  if (multiplier != 1) digits.pop_back();
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    usage();
  }
  std::size_t value = 0;
  try {
    value = std::stoull(digits);
  } catch (const std::exception&) {
    usage();
  }
  return value * multiplier;
}

std::size_t parse_count(const std::string& text) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    usage();
  }
  try {
    return std::stoull(text);
  } catch (const std::exception&) {
    usage();
  }
}

/// One request's stats line for the --stats JSONL sidecar.
std::string stats_line(const ResponseMessage& response) {
  std::string out = "{\"id\": " + json_quote(response.id) +
                    ", \"status\": " + json_quote(response.status) +
                    ", \"cache\": " + json_quote(response.cache) +
                    ", \"queue_us\": " + std::to_string(response.queue_us) +
                    ", \"solve_us\": " + std::to_string(response.solve_us);
  for (const auto& [key, value] : response.stats) {
    out += ", " + json_quote(key) + ": " + json_quote(value);
  }
  out += "}";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input_path;
  std::string output_path;
  std::string stats_path;
  std::string flight_out;
  std::size_t snapshot_every = 64;
  bool quiet = false;
  ServerOptions options;
  options.default_deadline_ms = 0;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) usage();
      return args[++i];
    };
    if (arg == "--input") {
      input_path = next();
    } else if (arg == "--output") {
      output_path = next();
    } else if (arg == "--stats") {
      stats_path = next();
    } else if (arg == "--cache-bytes") {
      options.cache_bytes = parse_byte_count(next());
    } else if (arg == "--queue") {
      options.max_queue = parse_count(next());
    } else if (arg == "--workers") {
      options.workers = parse_count(next());
    } else if (arg == "--threads") {
      options.solver_threads = parse_count(next());
    } else if (arg == "--deadline-ms") {
      options.default_deadline_ms =
          static_cast<std::int64_t>(parse_count(next()));
    } else if (arg == "--solver") {
      options.default_solver = next();
    } else if (arg == "--budget-states") {
      options.default_states = parse_count(next());
    } else if (arg == "--snapshot-every") {
      snapshot_every = parse_count(next());
    } else if (arg == "--trace-out") {
      flight_out = next();
    } else if (arg == "--progress-every-ms") {
      options.progress_interval_ms =
          static_cast<std::int64_t>(parse_count(next()));
    } else if (arg == "--postmortem-dir") {
      options.postmortem_dir = next();
    } else if (arg == "--instance-root") {
      options.instance_root = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      usage();
    }
  }

  std::ifstream input_file;
  if (!input_path.empty()) {
    input_file.open(input_path);
    if (!input_file) {
      std::cerr << "rbpeb_serve: cannot open --input " << input_path << "\n";
      return 2;
    }
  }
  std::istream& input = input_path.empty() ? std::cin : input_file;

  std::ofstream output_file;
  if (!output_path.empty()) {
    output_file.open(output_path);
    if (!output_file) {
      std::cerr << "rbpeb_serve: cannot open --output " << output_path << "\n";
      return 2;
    }
  }
  std::ostream& output = output_path.empty() ? std::cout : output_file;

  std::ofstream stats_file;
  if (!stats_path.empty()) {
    stats_file.open(stats_path);
    if (!stats_file) {
      std::cerr << "rbpeb_serve: cannot open --stats " << stats_path << "\n";
      return 2;
    }
  }

  // The sidecar is shared between the drain loop (response/snapshot lines,
  // main thread) and the server's progress/postmortem events (worker
  // threads); one mutex keeps the JSONL lines whole.
  std::mutex stats_mutex;
  if (stats_file.is_open()) {
    options.event_sink = [&stats_file, &stats_mutex](const std::string& line) {
      const std::lock_guard<std::mutex> lock(stats_mutex);
      stats_file << line << "\n";
    };
  }

  if (!flight_out.empty()) obs::trace_set_output(flight_out);
  Server server(options);

  // Pipelined batch replay: keep up to max_queue requests in flight, write
  // responses in input order. Waiting on the OLDEST future before admitting
  // more is the tool-side backpressure that keeps a burst of piped requests
  // from tripping the server's admission rejection.
  std::deque<std::future<ResponseMessage>> pending;
  std::uint64_t malformed = 0;
  std::uint64_t drained = 0;
  const auto drain_one = [&] {
    ResponseMessage response = pending.front().get();
    pending.pop_front();
    output << response.to_json() << "\n";
    if (stats_file.is_open()) {
      const std::lock_guard<std::mutex> lock(stats_mutex);
      stats_file << stats_line(response) << "\n";
      // Periodic live metrics: one snapshot line every N responses, hit/miss
      // counters sourced from TraceCache::Stats so the sidecar always
      // reconciles with the cache's own accounting.
      if (snapshot_every != 0 && ++drained % snapshot_every == 0) {
        stats_file << server.metrics_snapshot_json() << "\n";
      }
    }
  };

  std::string line;
  while (std::getline(input, line)) {
    if (line.empty()) continue;
    RequestMessage request;
    try {
      request = parse_request(line);
    } catch (const std::exception& e) {
      // A malformed line gets a structured error response inline, keeping
      // the one-response-per-request contract.
      ++malformed;
      ResponseMessage response;
      response.status = "error";
      response.detail = e.what();
      std::promise<ResponseMessage> ready;
      ready.set_value(std::move(response));
      pending.push_back(ready.get_future());
      if (pending.size() >= options.max_queue) drain_one();
      continue;
    }
    pending.push_back(server.submit(std::move(request)));
    if (pending.size() >= options.max_queue) drain_one();
  }
  while (!pending.empty()) drain_one();
  // Final snapshot: the totals line the bench and smoke hold against the
  // shutdown summary.
  if (stats_file.is_open() && snapshot_every != 0) {
    stats_file << server.metrics_snapshot_json() << "\n";
  }
  output.flush();
  if (stats_file.is_open()) stats_file.flush();

  if (!quiet) {
    std::cerr << "rbpeb_serve summary:\n";
    for (const std::string& line : server.summary()) {
      std::cerr << "  " << line << "\n";
    }
    if (malformed != 0) {
      std::cerr << "  malformed_lines: " << malformed << "\n";
    }
  }
  if (!flight_out.empty()) {
    const std::size_t events = obs::trace_event_count();
    const std::uint64_t dropped = obs::trace_dropped();
    if (obs::trace_flush()) {
      std::cerr << "flight trace written to " << flight_out << " (" << events
                << " events, " << dropped << " dropped)\n";
    } else {
      std::cerr << "failed to write flight trace to " << flight_out << "\n";
    }
  }
  return 0;
}
