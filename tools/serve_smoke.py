#!/usr/bin/env python3
"""CI smoke test: rbpeb_serve answers must match single-shot CLI answers.

Drives the full serve pipeline the way a user would — JSONL requests piped
through the rbpeb_serve binary — and diffs every response against the same
instance solved cold by rbpeb_cli:

  * costs must be exactly equal (both sides report Verifier-audited totals);
  * for deterministic solvers the trace text must be byte-identical — a
    cached answer is the cold answer, not a paraphrase of it;
  * repeats (including a node-relabeled isomorph) must be served from the
    cache: the summary's hit counters are asserted > 0, which is the CI
    gate on the cache actually working.

Usage: serve_smoke.py --build-dir BUILD [--keep DIR]
Exit status: 0 clean, 1 mismatch/regression, 2 bad invocation.
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile

failures = []


def fail(msg):
    failures.append(msg)
    print(f"FAIL: {msg}", file=sys.stderr)


def chain_dag(n):
    return str(n) + "\n" + "\n".join(f"{i} {i+1}" for i in range(n - 1)) + "\n"


def relabel(dag_text, seed=13):
    """Deterministically renumber the DAG's nodes (same relation, new ids)."""
    lines = dag_text.strip().split("\n")
    n = int(lines[0])
    # A fixed affine permutation: no RNG needed for determinism.
    stride = 7 if n % 7 else 5
    perm = [(i * stride + 3) % n for i in range(n)]
    assert sorted(perm) == list(range(n))
    edges = [tuple(map(int, line.split())) for line in lines[1:]]
    out = [str(n)] + [f"{perm[a]} {perm[b]}" for a, b in edges]
    return "\n".join(out) + "\n"


def run_cli(cli, dag_path, r, solver, trace_path):
    proc = subprocess.run(
        [cli, "solve", dag_path, str(r), "--solver", solver,
         "--trace", trace_path],
        capture_output=True, text=True, timeout=300)
    if proc.returncode != 0:
        fail(f"rbpeb_cli solve {dag_path} r={r} {solver} failed: "
             f"{proc.stderr.strip()}")
        return None, None
    match = re.search(r"total cost: (\S+)", proc.stdout)
    if not match:
        fail(f"rbpeb_cli output for {dag_path} has no audited cost")
        return None, None
    with open(trace_path) as f:
        return match.group(1), f.read()


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", required=True,
                        help="directory holding rbpeb_serve and rbpeb_cli")
    parser.add_argument("--keep", default=None,
                        help="keep work files in DIR instead of a tempdir")
    args = parser.parse_args()

    serve = os.path.join(args.build_dir, "rbpeb_serve")
    cli = os.path.join(args.build_dir, "rbpeb_cli")
    for binary in (serve, cli):
        if not os.path.exists(binary):
            print(f"error: {binary} not found", file=sys.stderr)
            return 2

    work = args.keep or tempfile.mkdtemp(prefix="serve_smoke.")
    os.makedirs(work, exist_ok=True)

    def gen(*gen_args):
        return subprocess.run([cli, "gen", *gen_args], capture_output=True,
                              text=True, check=True).stdout

    # Instance set: deterministic solvers so cold CLI answers are
    # reproducible byte-for-byte; r chosen so every instance is feasible.
    instances = [
        ("tree8", gen("tree", "8"), 3, "greedy"),
        ("tree16", gen("tree", "16"), 4, "peephole"),
        ("fft4", gen("fft", "4"), 3, "exact-astar"),
        ("chain10", chain_dag(10), 2, "exact"),
    ]

    # The request stream: every instance once, then every instance again
    # (cache hits), then a relabeled isomorph of the first (a hit only if
    # canonicalization works).
    requests = []
    for name, dag, r, solver in instances + instances:
        requests.append({"id": name, "dag": dag, "r": r, "solver": solver})
    requests.append({"id": "tree8-relabeled",
                     "dag": relabel(instances[0][1]),
                     "r": instances[0][2],
                     "solver": instances[0][3]})

    request_path = os.path.join(work, "requests.jsonl")
    with open(request_path, "w") as f:
        for request in requests:
            f.write(json.dumps(request) + "\n")

    response_path = os.path.join(work, "responses.jsonl")
    proc = subprocess.run(
        [serve, "--input", request_path, "--output", response_path],
        capture_output=True, text=True, timeout=600)
    if proc.returncode != 0:
        fail(f"rbpeb_serve exited {proc.returncode}: {proc.stderr.strip()}")
        return 1
    summary = proc.stderr

    with open(response_path) as f:
        responses = [json.loads(line) for line in f if line.strip()]
    if len(responses) != len(requests):
        fail(f"{len(requests)} requests but {len(responses)} responses")
        return 1

    # Cold CLI answers, one per distinct instance.
    cold = {}
    for name, dag, r, solver in instances:
        dag_path = os.path.join(work, f"{name}.dag")
        with open(dag_path, "w") as f:
            f.write(dag)
        cost, trace = run_cli(cli, dag_path, r, solver,
                              os.path.join(work, f"{name}.trace"))
        if cost is not None:
            cold[name] = (cost, trace)

    hits = 0
    for request, response in zip(requests, responses):
        name = request["id"].split("-")[0]
        where = f"request {request['id']}"
        if response.get("status") not in ("optimal", "heuristic"):
            fail(f"{where}: status {response.get('status')!r} "
                 f"({response.get('detail', '')})")
            continue
        if response.get("cache") in ("hit", "flight"):
            hits += 1
        if name not in cold:
            continue
        cost, trace = cold[name]
        if response.get("cost") != cost:
            fail(f"{where}: served cost {response.get('cost')!r} != "
                 f"cold CLI cost {cost!r}")
        # Byte-identity only on the original labeling; the relabeled
        # isomorph's trace is the same pebbling under renamed nodes.
        if request["id"] == name and response.get("trace") != trace:
            fail(f"{where}: served trace differs from the cold CLI trace")

    if hits == 0:
        fail("no request was served from the cache (hit-rate gate)")
    relabeled = next(r for q, r in zip(requests, responses)
                     if q["id"] == "tree8-relabeled")
    if relabeled.get("cache") not in ("hit", "flight"):
        fail("the relabeled isomorph missed the cache "
             f"(cache={relabeled.get('cache')!r})")

    print(summary, file=sys.stderr)
    if failures:
        print(f"serve_smoke: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print(f"serve_smoke: clean ({len(responses)} responses, {hits} cache "
          "hits, relabeled isomorph served from cache)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
