#!/usr/bin/env python3
"""Bench regression gate for the BENCH_*.json reports.

CI publishes bench reports (exact_astar, hda_astar, bigstate, serve) but a
published number nobody checks is a number that silently regresses. This
tool compares a freshly generated report against the committed baseline on
the *deterministic* counters and fails on regression:

  * costs are proven optima — they must be exactly equal;
  * sequential expansion counts (exact-astar, Dijkstra, hda at 1 thread,
    and the @32m spill runs of the sequential search) are deterministic —
    more expansions than the baseline is a regression, fewer is an
    improvement worth a baseline refresh (reported, not failed);
  * solved/proven counters (nodes_proved_optimal, tight_solved, per-case
    solved flags) may only go up;
  * wall-clock milliseconds are machine-dependent — printed for context,
    never gated;
  * serve reports gate the verified-cache invariants: byte-identity
    counters (cost/trace mismatches, audit failures) must be zero, hits and
    solved may only rise, solves may only fall, and latency percentiles are
    informational.

A separate mode asserts the hda-astar scaling claim on multi-core runners
(ROADMAP: "CI's multi-core runners are where the scaling claim is
checked"): on the width-4 workloads, 8 threads must not be slower than 1.

Anytime reports (BENCH_anytime.json) gate the certificate invariants in
exact rational arithmetic (fractions.Fraction over the "num/den" strings):
every fresh case must satisfy cost ≤ (1+ε)·lower_bound, the headline
counters (nodes_proved_optimal, nodes_within_eps) may only rise, a case
once proved optimal or certified must stay so, per-instance ε may only
shrink, and proven-optimal costs are byte-identical. `selftest` feeds the
comparator deliberately corrupted reports and fails unless every injected
regression is caught.

The `overhead` mode guards the flight recorder's compiled-in-but-disabled
cost: it compares a report from the normal build (tracing compiled in,
sink unset) against one from the -DRBPEB_OBS_NO_TRACE build of the same
bench. Every deterministic field — costs, expansion counts, solved flags —
must be byte-identical; wall-clock fields (keys containing ms/us/wall/
throughput) only gate on ratio, within --wall-tolerance; hardware and
timestamp fields are ignored.

Usage:
  bench_check.py compare --fresh NEW.json --baseline OLD.json
  bench_check.py scaling BENCH_hda_astar.json [--tolerance 1.0]
  bench_check.py overhead --traced A.json --notrace B.json [--wall-tolerance 1.5]
  bench_check.py selftest

Exit status: 0 clean, 1 regression, 2 bad invocation/input.
"""

import argparse
import copy
import json
import sys
from fractions import Fraction

failures = []
notes = []


def fail(msg):
    failures.append(msg)


def note(msg):
    notes.append(msg)


def check_cost(where, fresh, baseline):
    if fresh != baseline:
        fail(f"{where}: cost changed {baseline!r} -> {fresh!r} "
             "(proven optima must be identical)")


def check_counter_le(where, name, fresh, baseline):
    """Deterministic work counter: more than baseline is a regression."""
    if fresh > baseline:
        fail(f"{where}: {name} regressed {baseline} -> {fresh}")
    elif fresh < baseline:
        note(f"{where}: {name} improved {baseline} -> {fresh} "
             "(consider refreshing the baseline)")


def check_counter_ge(where, name, fresh, baseline):
    """Achievement counter (solved/proven): less than baseline regresses."""
    if fresh < baseline:
        fail(f"{where}: {name} regressed {baseline} -> {fresh}")
    elif fresh > baseline:
        note(f"{where}: {name} improved {baseline} -> {fresh} "
             "(consider refreshing the baseline)")


def index_cases(cases, *keys):
    indexed = {}
    for case in cases:
        indexed[tuple(case.get(k) for k in keys)] = case
    return indexed


def compare_exact_astar(fresh, baseline):
    fresh_suite = index_cases(fresh["suite"], "instance", "model")
    base_suite = index_cases(baseline["suite"], "instance", "model")
    for key, base in base_suite.items():
        where = f"exact_astar suite {key}"
        new = fresh_suite.get(key)
        if new is None:
            fail(f"{where}: case disappeared from the fresh report")
            continue
        for solver in ("dijkstra", "astar"):
            if base.get(f"{solver}_solved") and not new.get(f"{solver}_solved"):
                fail(f"{where}: {solver} no longer solves")
            if base.get(f"{solver}_solved") and new.get(f"{solver}_solved"):
                check_counter_le(where, f"{solver}_expanded",
                                 new[f"{solver}_expanded"],
                                 base[f"{solver}_expanded"])
        if base.get("astar_solved") and new.get("astar_solved"):
            check_cost(where, new["cost"], base["cost"])
    totals_f, totals_b = fresh["totals"], baseline["totals"]
    check_counter_le("exact_astar totals", "astar_expanded",
                     totals_f["astar_expanded"], totals_b["astar_expanded"])
    if totals_f["cost_mismatches"] != 0:
        fail("exact_astar totals: cost_mismatches "
             f"{totals_f['cost_mismatches']} != 0")
    fresh_large = index_cases(fresh["beyond_dijkstra_cap"],
                              "instance", "model")
    for key, base in index_cases(baseline["beyond_dijkstra_cap"],
                                 "instance", "model").items():
        where = f"exact_astar beyond-cap {key}"
        new = fresh_large.get(key)
        if new is None:
            fail(f"{where}: case disappeared from the fresh report")
            continue
        if base["solved"] and not new["solved"]:
            fail(f"{where}: no longer solves within the budget")
        if base["solved"] and new["solved"]:
            check_cost(where, new["cost"], base["cost"])
            check_counter_le(where, "expanded",
                             new["expanded"], base["expanded"])


def compare_hda_astar(fresh, baseline):
    if fresh["cost_mismatches"] != 0:
        fail(f"hda_astar: cost_mismatches {fresh['cost_mismatches']} != 0")
    fresh_cases = index_cases(fresh["cases"], "instance", "model")
    for key, base in index_cases(baseline["cases"],
                                 "instance", "model").items():
        where = f"hda_astar {key}"
        new = fresh_cases.get(key)
        if new is None:
            fail(f"{where}: case disappeared from the fresh report")
            continue
        check_cost(where, new["astar_cost"], base["astar_cost"])
        check_counter_le(where, "astar_expanded",
                         new["astar_expanded"], base["astar_expanded"])
        base_runs = {r["threads"]: r for r in base["runs"]}
        for run in new["runs"]:
            run_where = f"{where} @{run['threads']}t"
            base_run = base_runs.get(run["threads"])
            if base_run is None:
                continue
            if base_run["solved"] and not run["solved"]:
                fail(f"{run_where}: no longer solves")
            if run["solved"]:
                check_cost(run_where, run["cost"], new["astar_cost"])
            # Only the single-worker run is deterministic; multi-thread
            # expansion counts depend on incumbent timing.
            if run["threads"] == 1 and run["solved"] and base_run["solved"]:
                check_counter_le(run_where, "expanded",
                                 run["expanded"], base_run["expanded"])
            note(f"{run_where}: wall {base_run.get('ms', '?')} -> "
                 f"{run.get('ms', '?')} ms (informational)")


def compare_bigstate(fresh, baseline):
    if fresh["cost_mismatches"] != 0:
        fail(f"bigstate: cost_mismatches {fresh['cost_mismatches']} != 0")
    check_counter_ge("bigstate", "nodes_proved_optimal",
                     fresh["nodes_proved_optimal"],
                     baseline["nodes_proved_optimal"])
    check_counter_le("bigstate", "unsolved",
                     fresh["unsolved"], baseline["unsolved"])
    if "tight_solved" in baseline:
        check_counter_ge("bigstate", "tight_solved",
                         fresh.get("tight_solved", 0),
                         baseline["tight_solved"])
    fresh_cases = index_cases(fresh["cases"], "instance", "model")
    for key, base in index_cases(baseline["cases"],
                                 "instance", "model").items():
        where = f"bigstate {key}"
        new = fresh_cases.get(key)
        if new is None:
            fail(f"{where}: case disappeared from the fresh report")
            continue
        base_runs = {r["solver"]: r for r in base["runs"]}
        new_runs = {r["solver"]: r for r in new["runs"]}
        for solver, base_run in base_runs.items():
            run_where = f"{where} {solver}"
            run = new_runs.get(solver)
            if run is None:
                fail(f"{run_where}: run disappeared from the fresh report")
                continue
            if base_run["solved"] and not run["solved"]:
                fail(f"{run_where}: no longer solves within the budget")
            if base_run["solved"] and run["solved"]:
                check_cost(run_where, run["cost"], base_run["cost"])
                # Sequential searches are deterministic, spilled or not;
                # hda expansion counts vary with thread interleaving.
                if solver.startswith("exact-astar"):
                    check_counter_le(run_where, "expanded",
                                     run["expanded"], base_run["expanded"])
            note(f"{run_where}: wall {base_run.get('ms', '?')} -> "
                 f"{run.get('ms', '?')} ms (informational)")


def compare_serve(fresh, baseline):
    # Byte-identity counters are absolute: any nonzero value means a served
    # answer differed from a cold solve, which the subsystem exists to
    # forbid.
    for counter in ("cost_mismatches", "trace_mismatches", "audit_failures"):
        if fresh.get(counter, 0) != 0:
            fail(f"serve: {counter} {fresh[counter]} != 0")
    # Hits are deterministic (fixed seed, single-flight, no eviction):
    # hit-rate and solved may only rise.
    check_counter_ge("serve", "total_hits",
                     fresh["total_hits"], baseline["total_hits"])
    fresh_cases = index_cases(fresh["cases"], "clients")
    for key, base in index_cases(baseline["cases"], "clients").items():
        where = f"serve @{key[0]} clients"
        new = fresh_cases.get(key)
        if new is None:
            fail(f"{where}: case disappeared from the fresh report")
            continue
        check_counter_ge(where, "hits", new["hits"], base["hits"])
        check_counter_ge(where, "solved", new["solved"], base["solved"])
        # More solves for the same traffic means the cache deduplicated
        # less — a regression even when every request still succeeds.
        check_counter_le(where, "solves", new["solves"], base["solves"])
        note(f"{where}: p50 {base.get('p50_us', '?')} -> "
             f"{new.get('p50_us', '?')} us, p99 {base.get('p99_us', '?')} -> "
             f"{new.get('p99_us', '?')} us (informational)")
    # Audited costs per instance: exactly equal, like every other bench.
    fresh_instances = index_cases(fresh.get("instances", []), "instance")
    for key, base in index_cases(baseline.get("instances", []),
                                 "instance").items():
        new = fresh_instances.get(key)
        if new is None:
            fail(f"serve instance {key}: disappeared from the fresh report")
            continue
        check_cost(f"serve instance {key}", new["cost"], base["cost"])


def compare_anytime(fresh, baseline):
    # The bench audits every trace and certificate before publishing; a
    # nonzero count means a corrupt certificate shipped.
    if fresh.get("audit_failures", 0) != 0:
        fail(f"anytime: audit_failures {fresh['audit_failures']} != 0")
    # Every run is greedy-seeded, so every case must answer.
    if fresh.get("answered", 0) != fresh.get("case_count", 0):
        fail(f"anytime: answered {fresh.get('answered')} != case_count "
             f"{fresh.get('case_count')} (the tier's whole claim)")
    check_counter_ge("anytime", "nodes_proved_optimal",
                     fresh["nodes_proved_optimal"],
                     baseline["nodes_proved_optimal"])
    check_counter_ge("anytime", "nodes_within_eps",
                     fresh["nodes_within_eps"], baseline["nodes_within_eps"])
    fresh_cases = index_cases(fresh["cases"], "instance", "model")
    for key, new in fresh_cases.items():
        # The defining inequality, re-checked in exact rationals — a report
        # whose numbers do not cohere is corrupt regardless of the baseline.
        if new.get("certified"):
            cost = Fraction(new["cost"])
            lower = Fraction(new["lower_bound"])
            eps = Fraction(new["epsilon"])
            if cost > (1 + eps) * lower:
                fail(f"anytime {key}: certificate violated: cost {new['cost']}"
                     f" > (1+{new['epsilon']})*{new['lower_bound']}")
            if new.get("proved_optimal") and eps != 0:
                fail(f"anytime {key}: proved_optimal with epsilon "
                     f"{new['epsilon']} != 0")
    for key, base in index_cases(baseline["cases"],
                                 "instance", "model").items():
        where = f"anytime {key}"
        new = fresh_cases.get(key)
        if new is None:
            fail(f"{where}: case disappeared from the fresh report")
            continue
        if base.get("proved_optimal") and not new.get("proved_optimal"):
            fail(f"{where}: no longer proved optimal")
        if base.get("certified") and not new.get("certified"):
            fail(f"{where}: no longer certified")
        if base.get("proved_optimal") and new.get("proved_optimal"):
            check_cost(where, new["cost"], base["cost"])
        if base.get("certified") and new.get("certified"):
            base_eps = Fraction(base["epsilon"])
            new_eps = Fraction(new["epsilon"])
            if new_eps > base_eps:
                fail(f"{where}: epsilon loosened {base['epsilon']} -> "
                     f"{new['epsilon']}")
            elif new_eps < base_eps:
                note(f"{where}: epsilon tightened {base['epsilon']} -> "
                     f"{new['epsilon']} (consider refreshing the baseline)")


def compare_corpus(fresh, baseline):
    # The sweep audits every trace before publishing; nonzero means a solver
    # returned a trace whose replay disagreed with its claimed cost.
    if fresh.get("audit_failures", 0) != 0:
        fail(f"corpus: audit_failures {fresh['audit_failures']} != 0")
    for counter in ("solved", "certified", "proven"):
        check_counter_ge("corpus", counter,
                         fresh.get(counter, 0), baseline.get(counter, 0))
    fresh_cases = index_cases(fresh["cases"], "file", "model", "solver")
    for key, new in fresh_cases.items():
        # Certificate coherence in exact rationals, baseline-independent.
        if new.get("certified"):
            cost = Fraction(new["cost"])
            lower = Fraction(new["lower_bound"])
            eps = Fraction(new["epsilon"])
            if cost > (1 + eps) * lower:
                fail(f"corpus {key}: certificate violated: cost {new['cost']}"
                     f" > (1+{new['epsilon']})*{new['lower_bound']}")
    for key, base in index_cases(baseline["cases"],
                                 "file", "model", "solver").items():
        where = f"corpus {key}"
        new = fresh_cases.get(key)
        if new is None:
            fail(f"{where}: case disappeared from the fresh report")
            continue
        if base.get("solved") and not new.get("solved"):
            fail(f"{where}: no longer solves")
        if base.get("solved") and new.get("solved"):
            check_cost(where, new["cost"], base["cost"])
        if base.get("certified") and not new.get("certified"):
            fail(f"{where}: no longer certified")
        if base.get("proved_optimal") and not new.get("proved_optimal"):
            fail(f"{where}: no longer proved optimal")
    # Parse rejections are the adversarial half of the gate: a malformed
    # file that starts parsing is an ingestion regression even if nothing
    # downstream notices.
    fresh_rejected = index_cases(fresh.get("rejected", []), "file")
    for key, base in index_cases(baseline.get("rejected", []),
                                 "file").items():
        where = f"corpus malformed {key[0]}"
        new = fresh_rejected.get(key)
        if new is None:
            fail(f"{where}: disappeared from the fresh report")
            continue
        if base.get("rejected") and not new.get("rejected"):
            fail(f"{where}: malformed file is now ACCEPTED by the parser")
    for key, new in fresh_rejected.items():
        if not new.get("rejected"):
            fail(f"corpus malformed {key[0]}: accepted in the fresh report")


COMPARATORS = {
    "exact_astar": compare_exact_astar,
    "hda_astar": compare_hda_astar,
    "bigstate": compare_bigstate,
    "serve": compare_serve,
    "anytime": compare_anytime,
    "corpus": compare_corpus,
}


def cmd_compare(args):
    with open(args.fresh) as f:
        fresh = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)
    kind = baseline.get("bench")
    if fresh.get("bench") != kind:
        print(f"error: bench kinds differ: fresh={fresh.get('bench')!r} "
              f"baseline={kind!r}", file=sys.stderr)
        return 2
    comparator = COMPARATORS.get(kind)
    if comparator is None:
        print(f"error: unknown bench kind {kind!r}", file=sys.stderr)
        return 2
    comparator(fresh, baseline)
    return report(f"compare {kind}")


def cmd_scaling(args):
    with open(args.report) as f:
        fresh = json.load(f)
    hw = fresh.get("hardware_concurrency", 0)
    if hw <= 1:
        print(f"scaling: hardware_concurrency={hw}; single-core runner, "
              "nothing to assert")
        return 0
    checked = 0
    for case in fresh["cases"]:
        if case.get("r") != 4:
            continue  # the scaling claim is made on the width-4 workloads
        runs = {r["threads"]: r for r in case["runs"]}
        one, eight = runs.get(1), runs.get(8)
        if not one or not eight or not one["solved"] or not eight["solved"]:
            fail(f"scaling {case['instance']}/{case['model']}: missing or "
                 "unsolved 1t/8t run")
            continue
        checked += 1
        limit = one["ms"] * args.tolerance
        if eight["ms"] > limit:
            fail(f"scaling {case['instance']}/{case['model']}: 8-thread wall "
                 f"{eight['ms']} ms exceeds 1-thread {one['ms']} ms "
                 f"(x{args.tolerance:.2f} tolerance) on a {hw}-core runner")
        else:
            note(f"scaling {case['instance']}/{case['model']}: "
                 f"8t {eight['ms']} ms vs 1t {one['ms']} ms — ok")
    if checked == 0:
        fail("scaling: no width-4 (r=4) workloads found to check")
    return report("scaling")


WALL_KEY_MARKERS = ("ms", "us", "wall", "throughput", "elapsed")
IGNORED_KEY_MARKERS = ("hardware", "timestamp", "date", "host")


def overhead_key_kind(key):
    lower = key.lower()
    parts = lower.replace("-", "_").split("_")
    if any(marker in parts for marker in IGNORED_KEY_MARKERS):
        return "ignored"
    if any(marker in parts for marker in WALL_KEY_MARKERS):
        return "wall"
    return "exact"


def compare_overhead(traced, notrace, tolerance, path="$",
                     labels=("traced", "notrace")):
    """Recursive structural compare. Timing leaves gate on ratio; everything
    else must be identical — instrumentation (the disabled recorder, or an
    attached progress sampler) may cost nanoseconds, but it must not change
    what the search *does*."""
    la, lb = labels
    if isinstance(traced, dict) and isinstance(notrace, dict):
        for key in sorted(set(traced) | set(notrace)):
            where = f"{path}.{key}"
            if overhead_key_kind(key) == "ignored":
                continue
            if key not in traced or key not in notrace:
                fail(f"{where}: present in only one report")
                continue
            if overhead_key_kind(key) == "wall":
                a, b = traced[key], notrace[key]
                if isinstance(a, (int, float)) and isinstance(b, (int, float)):
                    # Symmetric ratio gate; the +1 floors the denominators so
                    # sub-millisecond noise on tiny cases cannot trip it.
                    if (a + 1) > (b + 1) * tolerance or \
                       (b + 1) > (a + 1) * tolerance:
                        fail(f"{where}: wall diverged {la}={a} {lb}={b} "
                             f"(x{tolerance:.2f} tolerance)")
                    else:
                        note(f"{where}: wall {la}={a} {lb}={b} — ok")
                    continue
            compare_overhead(traced[key], notrace[key], tolerance, where,
                             labels)
    elif isinstance(traced, list) and isinstance(notrace, list):
        if len(traced) != len(notrace):
            fail(f"{path}: list length {len(traced)} != {len(notrace)}")
            return
        for i, (a, b) in enumerate(zip(traced, notrace)):
            compare_overhead(a, b, tolerance, f"{path}[{i}]", labels)
    else:
        if traced != notrace:
            fail(f"{path}: {la}={traced!r} != {lb}={notrace!r} (deterministic "
                 "fields must be byte-identical under instrumentation)")


def cmd_overhead(args):
    with open(args.traced) as f:
        traced = json.load(f)
    with open(args.notrace) as f:
        notrace = json.load(f)
    compare_overhead(traced, notrace, args.wall_tolerance)
    # Third leg: the same bench with a progress sampler attached to every
    # search (exact_scaling --progress). The sampler's attribution probes run
    # on every expansion — everything but walls must still match the plain
    # instrumented run.
    if getattr(args, "progress", None):
        with open(args.progress) as f:
            progress = json.load(f)
        compare_overhead(traced, progress, args.wall_tolerance,
                         labels=("plain", "progress"))
    return report("overhead")


def cmd_selftest(args):
    """Inject known regressions into synthetic anytime and corpus reports
    and require the comparators to catch every one (and to pass the clean
    pairs)."""
    del args
    base = {
        "bench": "anytime",
        "answered": 2, "case_count": 2, "audit_failures": 0,
        "nodes_proved_optimal": 12, "nodes_within_eps": 204,
        "cases": [
            {"instance": "small", "model": "nodel", "nodes": 12,
             "cost": "17", "lower_bound": "17", "epsilon": "0",
             "proved_optimal": True, "certified": True},
            {"instance": "big", "model": "compcost", "nodes": 192,
             "cost": "9398/25", "lower_bound": "341/100",
             "epsilon": "37251/341",
             "proved_optimal": False, "certified": True},
        ],
    }

    corpus_base = {
        "bench": "corpus",
        "audit_failures": 0, "solved": 2, "certified": 1, "proven": 1,
        "cases": [
            {"file": "a.txt", "model": "oneshot", "solver": "exact-astar",
             "solved": True, "cost": "6", "certified": False,
             "proved_optimal": True},
            {"file": "b.rbg", "model": "nodel", "solver": "certified-greedy",
             "solved": True, "cost": "47", "certified": True,
             "proved_optimal": False,
             "epsilon": "26/21", "lower_bound": "21"},
        ],
        "rejected": [
            {"file": "junk.txt", "rejected": True},
            {"file": "truncated.rbg", "rejected": True},
        ],
    }

    def run_case(label, mutate, expect_failure, comparator=compare_anytime,
                 report_base=None):
        global failures, notes
        failures, notes = [], []
        if report_base is None:
            report_base = base
        fresh = copy.deepcopy(report_base)
        mutate(fresh)
        comparator(fresh, report_base)
        caught = bool(failures)
        if caught != expect_failure:
            verdict = "missed" if expect_failure else "false positive"
            print(f"selftest {label}: {verdict} "
                  f"(failures={failures!r})", file=sys.stderr)
            return False
        print(f"selftest {label}: ok")
        return True

    def loosen_epsilon(r):
        r["cases"][1]["epsilon"] = "38000/341"

    def tighten_epsilon(r):
        # ε may shrink — with cost fixed that means L rose; keep the report
        # coherent so only the improvement is visible.
        r["cases"][1]["epsilon"] = "90"
        r["cases"][1]["lower_bound"] = "9398/2275"  # cost / (1+90), exactly

    def violate_certificate(r):
        r["cases"][1]["lower_bound"] = "1/100"  # cost > (1+eps)*lower now

    def drop_optimality(r):
        r["cases"][0]["proved_optimal"] = False
        r["cases"][0]["epsilon"] = "1/17"
        r["nodes_proved_optimal"] = 0

    def optimal_with_nonzero_eps(r):
        r["cases"][0]["epsilon"] = "1/17"

    def change_proven_cost(r):
        r["cases"][0]["cost"] = "18"
        r["cases"][0]["lower_bound"] = "18"

    def shrink_headline(r):
        r["nodes_within_eps"] = 12

    def lose_a_case(r):
        r["cases"].pop()
        r["case_count"] = 1
        r["answered"] = 1
        r["nodes_within_eps"] = 12

    def unanswered(r):
        r["answered"] = 1

    def audit_failed(r):
        r["audit_failures"] = 1

    ok = True
    ok &= run_case("clean", lambda r: None, expect_failure=False)
    ok &= run_case("epsilon-tightens", tighten_epsilon, expect_failure=False)
    ok &= run_case("epsilon-loosens", loosen_epsilon, expect_failure=True)
    ok &= run_case("certificate-violated", violate_certificate,
                   expect_failure=True)
    ok &= run_case("optimality-lost", drop_optimality, expect_failure=True)
    ok &= run_case("optimal-nonzero-eps", optimal_with_nonzero_eps,
                   expect_failure=True)
    ok &= run_case("proven-cost-changed", change_proven_cost,
                   expect_failure=True)
    ok &= run_case("headline-shrank", shrink_headline, expect_failure=True)
    ok &= run_case("case-disappeared", lose_a_case, expect_failure=True)
    ok &= run_case("unanswered-case", unanswered, expect_failure=True)
    ok &= run_case("audit-failure", audit_failed, expect_failure=True)

    # ---- corpus comparator injections ----------------------------------
    def corpus_case(label, mutate, expect_failure):
        return run_case(f"corpus-{label}", mutate, expect_failure,
                        comparator=compare_corpus, report_base=corpus_base)

    def corpus_accept_malformed(r):
        r["rejected"][0]["rejected"] = False

    def corpus_cost_changed(r):
        r["cases"][0]["cost"] = "7"

    def corpus_solve_lost(r):
        r["cases"][0]["solved"] = False
        r["cases"][0]["cost"] = "-"
        r["cases"][0]["proved_optimal"] = False
        r["solved"] = 1
        r["proven"] = 0

    def corpus_certificate_lost(r):
        r["cases"][1]["certified"] = False
        r["certified"] = 0

    def corpus_certificate_violated(r):
        r["cases"][1]["lower_bound"] = "1"  # 47 > (1+26/21)*1

    def corpus_rejection_missing(r):
        r["rejected"].pop(0)

    def corpus_audit_failed(r):
        r["audit_failures"] = 3

    ok &= corpus_case("clean", lambda r: None, expect_failure=False)
    ok &= corpus_case("malformed-accepted", corpus_accept_malformed,
                      expect_failure=True)
    ok &= corpus_case("cost-changed", corpus_cost_changed,
                      expect_failure=True)
    ok &= corpus_case("solve-lost", corpus_solve_lost, expect_failure=True)
    ok &= corpus_case("certificate-lost", corpus_certificate_lost,
                      expect_failure=True)
    ok &= corpus_case("certificate-violated", corpus_certificate_violated,
                      expect_failure=True)
    ok &= corpus_case("rejection-missing", corpus_rejection_missing,
                      expect_failure=True)
    ok &= corpus_case("audit-failure", corpus_audit_failed,
                      expect_failure=True)
    if not ok:
        print("bench_check selftest: FAILED", file=sys.stderr)
        return 1
    print("bench_check selftest: clean")
    return 0


def report(what):
    for n in notes:
        print(f"note: {n}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        print(f"bench_check {what}: {len(failures)} regression(s)",
              file=sys.stderr)
        return 1
    print(f"bench_check {what}: clean")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    compare = sub.add_parser("compare", help="fresh report vs baseline")
    compare.add_argument("--fresh", required=True)
    compare.add_argument("--baseline", required=True)
    compare.set_defaults(func=cmd_compare)
    scaling = sub.add_parser("scaling", help="assert hda multi-core scaling")
    scaling.add_argument("report")
    scaling.add_argument("--tolerance", type=float, default=1.0,
                         help="8t wall may be up to TOL x 1t wall (default 1.0)")
    scaling.set_defaults(func=cmd_scaling)
    overhead = sub.add_parser(
        "overhead",
        help="traced-but-disabled vs no-trace build of the same bench")
    overhead.add_argument("--traced", required=True,
                          help="report from the normal build (sink unset)")
    overhead.add_argument("--notrace", required=True,
                          help="report from the -DRBPEB_OBS_NO_TRACE build")
    overhead.add_argument(
        "--progress",
        help="report from the progress-sampled run (exact_scaling "
             "--progress); deterministic fields must match --traced")
    overhead.add_argument(
        "--wall-tolerance", type=float, default=1.5,
        help="max ratio between wall-clock fields (default 1.5)")
    overhead.set_defaults(func=cmd_overhead)
    selftest = sub.add_parser(
        "selftest", help="verify the anytime comparator catches regressions")
    selftest.set_defaults(func=cmd_selftest)
    args = parser.parse_args()
    sys.exit(args.func(args))


if __name__ == "__main__":
    main()
