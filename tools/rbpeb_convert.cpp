// rbpeb_convert — instance-format converter for the rbpeb platform.
//
//   rbpeb_convert <input> <output> [--to text|rbg|dot]
//   rbpeb_convert --spec SPEC <output> [--to text|rbg|dot]
//   rbpeb_convert --info <input>
//
// <input> is an instance file (text or .rbg, sniffed by magic); --spec
// builds the instance from an InstanceSpec string instead, which is how the
// committed corpus files are (re)generated. The output format comes from
// --to, or failing that from the output extension (.rbg, .dot, else text).
// --info validates an instance and prints its shape without converting.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/graph/dag_io.hpp"
#include "src/instances/binary_format.hpp"
#include "src/instances/spec.hpp"
#include "src/support/check.hpp"

namespace {

using namespace rbpeb;

int usage() {
  std::cerr
      << "usage:\n"
      << "  rbpeb_convert <input> <output> [--to text|rbg|dot]\n"
      << "  rbpeb_convert --spec SPEC <output> [--to text|rbg|dot]\n"
      << "  rbpeb_convert --info <input>\n\n"
      << instances::spec_grammar_help();
  return 2;
}

std::string format_from_extension(const std::string& path) {
  std::string ext = std::filesystem::path(path).extension().string();
  if (ext == ".rbg") return "rbg";
  if (ext == ".dot") return "dot";
  return "text";
}

void write_text_file(const std::string& path, const std::string& contents) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  RBPEB_REQUIRE(os.good(), "cannot open " + path + " for writing");
  os << contents;
  RBPEB_REQUIRE(os.good(), "short write to " + path);
}

int run(const std::vector<std::string>& args) {
  bool info = false;
  std::string spec;
  std::string to;
  std::vector<std::string> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--info") {
      info = true;
    } else if (args[i] == "--spec" && i + 1 < args.size()) {
      spec = args[++i];
    } else if (args[i] == "--to" && i + 1 < args.size()) {
      to = args[++i];
    } else if (!args[i].empty() && args[i][0] == '-') {
      std::cerr << "unknown flag " << args[i] << "\n";
      return usage();
    } else {
      positional.push_back(args[i]);
    }
  }

  instances::ResolvedInstance instance;
  std::size_t next_positional = 0;
  if (!spec.empty()) {
    instance = instances::resolve_instance(spec);
  } else {
    if (positional.empty()) return usage();
    instance =
        instances::resolve_instance("file:" + positional[next_positional++]);
  }

  if (info) {
    const Dag& dag = instance.dag;
    std::cout << "instance: " << instance.name << "\n"
              << "nodes: " << dag.node_count() << "\n"
              << "edges: " << dag.edge_count() << "\n"
              << "sources: " << dag.sources().size() << "\n"
              << "sinks: " << dag.sinks().size() << "\n"
              << "max_indegree: " << dag.max_indegree() << "\n"
              << "mapped_bytes: " << instance.mapped_bytes << "\n";
    if (instance.natural_red_limit != 0) {
      std::cout << "natural_red_limit: " << instance.natural_red_limit
                << "\n";
    }
    return 0;
  }

  if (next_positional >= positional.size()) return usage();
  const std::string& output = positional[next_positional++];
  if (next_positional != positional.size()) return usage();
  if (to.empty()) to = format_from_extension(output);

  if (to == "rbg") {
    instances::write_rbg_file(instance.dag, output);
  } else if (to == "text") {
    write_text_file(output, to_text(instance.dag));
  } else if (to == "dot") {
    write_text_file(output, to_dot(instance.dag));
  } else {
    std::cerr << "unknown output format '" << to << "'\n";
    return usage();
  }
  std::cout << output << ": " << instance.dag.node_count() << " nodes, "
            << instance.dag.edge_count() << " edges (" << to << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  try {
    return run(args);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
