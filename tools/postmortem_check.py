#!/usr/bin/env python3
"""Validate a post-mortem black box written by --postmortem-dir.

Checks, in order:
  1. The directory holds all four artifacts: ``verdict.json``,
     ``progress.jsonl``, ``metrics.json``, ``trace_tail.json``.
  2. ``verdict.json`` parses and carries the full schema: a
     ``limiting_resource`` from the known vocabulary (states / memory /
     table-headroom / disk / deadline / unknown), string ``termination`` and
     ``detail``, a ``stats`` object, an integer ``snapshots`` count, and a
     ``files`` map naming the sibling artifacts.
  3. Every ``progress.jsonl`` line parses, the line count equals
     ``snapshots``, and per line: ``seq`` strictly increases,
     ``f_floor_scaled`` is monotone non-decreasing, ``bound_gap_scaled`` is
     monotone non-increasing whenever an incumbent exists, and
     ``attr_counting + attr_pdb <= expanded``.
  4. ``metrics.json`` and ``trace_tail.json`` parse as JSON;
     ``trace_tail.json`` has a ``traceEvents`` list.
  5. ``--expect-resource R`` (if given) matches the verdict, and
     ``--cli-stderr F`` (if given) points at a captured stderr whose
     BudgetExhausted detail line agrees with the verdict's ``detail`` —
     the cross-check that the black box and the CLI name the same killer.

Exit status 0 on success, 1 on any failure, with a per-check summary.

Usage:
  postmortem_check.py DIR [--expect-resource R] [--cli-stderr F]
"""

from __future__ import annotations

import argparse
import json
import os
import sys


KNOWN_RESOURCES = {
    "states", "memory", "table-headroom", "disk", "deadline", "unknown",
}
ARTIFACTS = ("verdict.json", "progress.jsonl", "metrics.json",
             "trace_tail.json")


def check_progress(path: str, expected_count, errors: list[str]) -> None:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
    except OSError as exc:
        errors.append(f"cannot read progress.jsonl: {exc}")
        return
    if isinstance(expected_count, int) and len(lines) != expected_count:
        errors.append(
            f"progress.jsonl has {len(lines)} lines but verdict says "
            f"snapshots={expected_count}"
        )
    prev_seq = None
    prev_floor = None
    prev_gap = None
    for index, line in enumerate(lines):
        where = f"progress line #{index}"
        try:
            snap = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"{where}: not JSON: {exc}")
            continue
        seq = snap.get("seq")
        floor = snap.get("f_floor_scaled")
        gap = snap.get("bound_gap_scaled")
        incumbent = snap.get("incumbent_scaled", -1)
        if not isinstance(seq, int):
            errors.append(f"{where}: missing integer seq")
            continue
        if prev_seq is not None and seq <= prev_seq:
            errors.append(f"{where}: seq {seq} does not increase past "
                          f"{prev_seq}")
        prev_seq = seq
        if isinstance(floor, int):
            if prev_floor is not None and floor < prev_floor:
                errors.append(
                    f"{where}: f_floor_scaled regressed {prev_floor} -> "
                    f"{floor} (bound must be monotone)"
                )
            prev_floor = floor
        else:
            errors.append(f"{where}: missing integer f_floor_scaled")
        # The gap is only defined once an incumbent exists; from then on it
        # must never widen (floor only rises, incumbent only drops).
        if isinstance(incumbent, int) and incumbent >= 0:
            if not isinstance(gap, int):
                errors.append(f"{where}: incumbent set but no integer "
                              "bound_gap_scaled")
            else:
                if prev_gap is not None and gap > prev_gap:
                    errors.append(
                        f"{where}: bound_gap_scaled widened {prev_gap} -> "
                        f"{gap}"
                    )
                prev_gap = gap
        attr = snap.get("attr_counting", 0) + snap.get("attr_pdb", 0)
        expanded = snap.get("expanded", 0)
        if attr > expanded:
            errors.append(
                f"{where}: attribution {attr} exceeds expansions {expanded}"
            )


def check_cli_stderr(path: str, detail: str, errors: list[str]) -> None:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            stderr_text = handle.read()
    except OSError as exc:
        errors.append(f"cannot read --cli-stderr {path}: {exc}")
        return
    if not detail:
        errors.append("verdict.detail is empty; nothing to match against "
                      "the CLI stderr")
        return
    if detail not in stderr_text:
        errors.append(
            f"verdict.detail {detail!r} does not appear in the CLI stderr "
            f"capture {path} — black box and CLI disagree"
        )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("dir", help="post-mortem directory (--postmortem-dir)")
    parser.add_argument(
        "--expect-resource",
        metavar="R",
        help="limiting_resource the verdict must name",
    )
    parser.add_argument(
        "--cli-stderr",
        metavar="F",
        help="captured CLI stderr; its BudgetExhausted detail must contain "
             "the verdict's detail string",
    )
    args = parser.parse_args()

    errors: list[str] = []

    for artifact in ARTIFACTS:
        if not os.path.isfile(os.path.join(args.dir, artifact)):
            errors.append(f"missing artifact {artifact}")
    if errors:
        for error in errors:
            print(f"postmortem_check: FAIL: {error}")
        return 1

    try:
        with open(os.path.join(args.dir, "verdict.json"), encoding="utf-8") \
                as handle:
            verdict = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"postmortem_check: FAIL: cannot load verdict.json: {exc}")
        return 1

    resource = verdict.get("limiting_resource")
    if resource not in KNOWN_RESOURCES:
        errors.append(f"limiting_resource {resource!r} not in "
                      f"{sorted(KNOWN_RESOURCES)}")
    for key in ("termination", "detail", "solver"):
        if not isinstance(verdict.get(key), str):
            errors.append(f"verdict.{key} missing or not a string")
    if not isinstance(verdict.get("stats"), dict):
        errors.append("verdict.stats missing or not an object")
    snapshots = verdict.get("snapshots")
    if not isinstance(snapshots, int) or snapshots < 0:
        errors.append(f"verdict.snapshots is not a non-negative int: "
                      f"{snapshots!r}")
        snapshots = None
    files = verdict.get("files")
    if not isinstance(files, dict):
        errors.append("verdict.files missing or not an object")
    else:
        for role, name in (("progress", "progress.jsonl"),
                           ("metrics", "metrics.json"),
                           ("trace_tail", "trace_tail.json")):
            if files.get(role) != name:
                errors.append(f"verdict.files.{role} is {files.get(role)!r}, "
                              f"expected {name!r}")

    check_progress(os.path.join(args.dir, "progress.jsonl"), snapshots,
                   errors)

    for name, want_events in (("metrics.json", False),
                              ("trace_tail.json", True)):
        try:
            with open(os.path.join(args.dir, name), encoding="utf-8") \
                    as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            errors.append(f"{name} does not parse: {exc}")
            continue
        if want_events and not isinstance(doc.get("traceEvents"), list):
            errors.append(f"{name}: no traceEvents list")

    if args.expect_resource and resource != args.expect_resource:
        errors.append(
            f"limiting_resource is {resource!r}, expected "
            f"{args.expect_resource!r}"
        )
    if args.cli_stderr:
        check_cli_stderr(args.cli_stderr, verdict.get("detail", ""), errors)

    if errors:
        for error in errors:
            print(f"postmortem_check: FAIL: {error}")
        print(f"postmortem_check: {len(errors)} error(s) in {args.dir}")
        return 1

    print(
        f"postmortem_check: OK: {args.dir} — limiting_resource={resource}, "
        f"{snapshots} snapshot(s), all four artifacts valid"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
