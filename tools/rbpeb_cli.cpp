// rbpeb_cli — command-line front end for the pebbling laboratory.
//
// Usage:
//   rbpeb_cli list-solvers
//   rbpeb_cli solve <dag-file>|--instance SPEC <R>
//       [--model base|oneshot|nodel|compcost] [--solver NAME|portfolio]
//       [--opt key=value]... [--budget-states N] [--budget-iterations N]
//       [--budget-ms N] [--budget-threads N] [--budget-memory N[k|m|g]]
//       [--budget-disk N[k|m|g]] [--jobs N] [--sources-blue] [--sinks-blue]
//       [--trace <out-file>] [--dot <out-file>] [--fingerprint]
//   rbpeb_cli verify <dag-file> <R> <trace-file> [--model M]
//       [--sources-blue] [--sinks-blue]
//   rbpeb_cli gen matmul <n> | fft <size> | stencil <w> <t> | tree <leaves>
//   rbpeb_cli gen <instance-spec>
//
// Solvers are resolved through the SolverRegistry, so `--solver` accepts
// anything `list-solvers` prints; `portfolio` races them all and keeps the
// best verified trace. Instances arrive through the one InstanceSpec
// grammar (src/instances/spec.hpp): a bare <dag-file> path is shorthand
// for `file:<path>` and magic-sniffs text vs. the mmap-able .rbg binary,
// while `--instance SPEC` additionally accepts generator specs like
// `layered:layers=50,width=2048,seed=71`. `gen` writes the text form of
// any spec to stdout. `--fingerprint` prints the same canonical instance
// fingerprint rbpeb-serve keys its trace cache with, so a CLI answer can
// be matched against a served one.
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "src/graph/dag_io.hpp"
#include "src/instances/spec.hpp"
#include "src/obs/introspect.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/postmortem.hpp"
#include "src/obs/trace.hpp"
#include "src/pebble/bounds.hpp"
#include "src/pebble/trace_io.hpp"
#include "src/pebble/verifier.hpp"
#include "src/serve/canonical.hpp"
#include "src/solvers/api.hpp"
#include "src/solvers/portfolio.hpp"
#include "src/support/check.hpp"
#include "src/support/table.hpp"
#include "src/workloads/fft.hpp"
#include "src/workloads/matmul.hpp"
#include "src/workloads/stencil.hpp"
#include "src/workloads/tree_reduction.hpp"

namespace {

using namespace rbpeb;

[[noreturn]] void usage() {
  std::cerr <<
      "usage:\n"
      "  rbpeb_cli list-solvers\n"
      "  rbpeb_cli solve <dag-file>|--instance SPEC <R>\n"
      "            [--model M] [--solver S|portfolio]\n"
      "            [--opt k=v]... [--budget-states N] [--budget-iterations N]\n"
      "            [--budget-ms N] [--budget-threads N]\n"
      "            [--budget-memory N[k|m|g]] [--budget-disk N[k|m|g]]\n"
      "            [--jobs N]\n"
      "            [--sources-blue] [--sinks-blue] [--trace F] [--dot F]\n"
      "            [--fingerprint]   (print the serve-compatible cache key)\n"
      "            [--trace-out F]   (flight-recorder profile, Chrome JSON)\n"
      "            [--progress[=F|stderr]] [--progress-every-ms N]\n"
      "                              (stream JSONL search-progress snapshots;\n"
      "                               default sink stderr, default 500 ms)\n"
      "            [--postmortem-dir D]  (on budget exhaustion, dump a black\n"
      "                               box: verdict.json + progress/metrics/\n"
      "                               trace tail)\n"
      "            [--metrics-out F]  (metrics registry JSON at exit, every\n"
      "                               exit path)\n"
      "  rbpeb_cli verify <dag-file> <R> <trace-file> [--model M]\n"
      "            [--sources-blue] [--sinks-blue]\n"
      "  rbpeb_cli gen matmul <n> | fft <size> | stencil <w> <t> |"
      " tree <leaves>\n"
      "  rbpeb_cli gen <instance-spec>\n"
      "models: base oneshot nodel compcost; solvers: see list-solvers\n\n"
      << rbpeb::instances::spec_grammar_help();
  std::exit(2);
}

/// "67108864", "64m", "2G" → bytes. Exits with usage() on malformed input.
std::size_t parse_byte_count(const std::string& text) {
  if (text.empty()) usage();
  std::size_t multiplier = 1;
  std::string digits = text;
  switch (digits.back()) {
    case 'k': case 'K': multiplier = std::size_t{1} << 10; break;
    case 'm': case 'M': multiplier = std::size_t{1} << 20; break;
    case 'g': case 'G': multiplier = std::size_t{1} << 30; break;
    default: break;
  }
  if (multiplier != 1) digits.pop_back();
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    usage();
  }
  std::size_t value = 0;
  try {
    value = std::stoull(digits);
  } catch (const std::out_of_range&) {
    usage();
  }
  if (value > std::numeric_limits<std::size_t>::max() / multiplier) usage();
  return value * multiplier;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot read " << path << '\n';
    std::exit(1);
  }
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Flags shared by solve and verify.
struct CommonFlags {
  Model model = Model::oneshot();
  PebblingConvention convention;
};

/// Consume a common flag at args[i] (advancing i past its value); false when
/// the flag is not one of ours.
bool parse_common_flag(const std::vector<std::string>& args, std::size_t& i,
                       CommonFlags& flags) {
  if (args[i] == "--model" && i + 1 < args.size()) {
    flags.model = solver_options::parse_model(args[++i]);
    return true;
  }
  if (args[i] == "--sources-blue") {
    flags.convention.sources_start_blue = true;
    return true;
  }
  if (args[i] == "--sinks-blue") {
    flags.convention.sinks_end_blue = true;
    return true;
  }
  return false;
}

void print_audit(const Engine& engine, const VerifyResult& vr) {
  std::cout << "legal:      " << (vr.legal ? "yes" : "NO — " + vr.error)
            << '\n';
  std::cout << "complete:   " << (vr.complete ? "yes" : "no") << '\n';
  std::cout << "total cost: " << vr.total.str() << " (" << vr.cost.loads
            << " loads, " << vr.cost.stores << " stores, " << vr.cost.computes
            << " computes, " << vr.cost.deletes << " deletes)\n";
  std::cout << "moves:      " << vr.length << '\n';
  std::cout << "peak red:   " << vr.max_red << " / " << engine.red_limit()
            << '\n';
}

std::string format_elapsed(std::chrono::microseconds us) {
  std::ostringstream os;
  os << us.count() / 1000.0 << " ms";
  return os.str();
}

int cmd_list_solvers() {
  const SolverRegistry& registry = SolverRegistry::instance();
  Table table("Registered solvers (" + std::to_string(registry.size()) + ")");
  table.set_header({"name", "description"});
  for (const Solver* solver : registry.solvers()) {
    table.add_row({std::string(solver->name()),
                   std::string(solver->description())});
  }
  table.add_note("solve --solver portfolio races them all and keeps the");
  table.add_note("best verified trace");
  std::cout << table;
  return 0;
}

int cmd_solve(const std::vector<std::string>& args) {
  if (args.size() < 2) usage();
  // Two spellings of the same ingestion path: a bare path is shorthand for
  // the `file:` spec (magic-sniffed text or .rbg), `--instance` takes the
  // full grammar including generators.
  std::string spec_text;
  std::size_t flag_start = 0;
  if (args[0] == "--instance") {
    if (args.size() < 3) usage();
    spec_text = args[1];
    flag_start = 2;
  } else {
    spec_text = "file:" + args[0];
    flag_start = 1;
  }
  instances::ResolvedInstance instance =
      instances::resolve_instance(spec_text);
  Dag dag = std::move(instance.dag);
  std::size_t r = std::stoul(args[flag_start]);
  CommonFlags flags;
  std::string solver_name = "greedy";
  std::string trace_out, dot_out, flight_out;
  std::string progress_dest;  // empty = off; "stderr" or a file path
  std::int64_t progress_every_ms = 500;
  std::string postmortem_dir, metrics_out;
  bool print_fingerprint = false;
  SolverOptions options;
  SolveBudget budget;
  std::size_t jobs = 0;
  for (std::size_t i = flag_start + 1; i < args.size(); ++i) {
    if (parse_common_flag(args, i, flags)) continue;
    else if (args[i] == "--solver" && i + 1 < args.size()) solver_name = args[++i];
    else if (args[i] == "--opt" && i + 1 < args.size()) {
      std::string kv = args[++i];
      auto eq = kv.find('=');
      if (eq == std::string::npos || eq == 0) usage();
      options[kv.substr(0, eq)] = kv.substr(eq + 1);
    }
    else if (args[i] == "--budget-states" && i + 1 < args.size())
      budget.max_states = std::stoul(args[++i]);
    else if (args[i] == "--budget-iterations" && i + 1 < args.size())
      budget.max_iterations = std::stoul(args[++i]);
    else if (args[i] == "--budget-ms" && i + 1 < args.size())
      budget.with_wall_clock_ms(std::stol(args[++i]));
    else if (args[i] == "--budget-threads" && i + 1 < args.size())
      budget.threads = std::stoul(args[++i]);
    else if (args[i] == "--budget-memory" && i + 1 < args.size())
      budget.max_memory_bytes = parse_byte_count(args[++i]);
    else if (args[i] == "--budget-disk" && i + 1 < args.size())
      budget.max_disk_bytes = parse_byte_count(args[++i]);
    else if (args[i] == "--jobs" && i + 1 < args.size())
      jobs = std::stoul(args[++i]);
    else if (args[i] == "--trace-out" && i + 1 < args.size())
      flight_out = args[++i];
    else if (args[i] == "--progress")
      progress_dest = "stderr";
    else if (args[i].rfind("--progress=", 0) == 0)
      progress_dest = args[i].substr(std::string("--progress=").size());
    else if (args[i] == "--progress-every-ms" && i + 1 < args.size())
      progress_every_ms = std::stol(args[++i]);
    else if (args[i] == "--postmortem-dir" && i + 1 < args.size())
      postmortem_dir = args[++i];
    else if (args[i] == "--metrics-out" && i + 1 < args.size())
      metrics_out = args[++i];
    else if (args[i] == "--trace" && i + 1 < args.size()) trace_out = args[++i];
    else if (args[i] == "--dot" && i + 1 < args.size()) dot_out = args[++i];
    else if (args[i] == "--fingerprint") print_fingerprint = true;
    else usage();
  }

  // Flight recorder: everything from here — PDB builds, search loops,
  // spill passes — lands in the trace; the guard renders it on every exit
  // path, failure included (a budget-exhausted profile is the useful one).
  struct FlightRecorderGuard {
    std::string path;
    ~FlightRecorderGuard() {
      if (path.empty()) return;
      const std::size_t events = obs::trace_event_count();
      const std::uint64_t dropped = obs::trace_dropped();
      if (obs::trace_flush()) {
        std::cout << "flight trace written to " << path << " (" << events
                  << " events, " << dropped << " dropped)\n";
      } else {
        std::cerr << "failed to write flight trace to " << path << '\n';
      }
    }
  } flight_guard{flight_out};
  if (!flight_out.empty()) obs::trace_set_output(flight_out);

  // Metrics dump: same RAII shape as the flight recorder — the registry
  // snapshot lands on disk on every exit path, and the failure exits are
  // exactly the ones worth diagnosing.
  struct MetricsDumpGuard {
    std::string path;
    ~MetricsDumpGuard() {
      if (path.empty()) return;
      std::ofstream out(path, std::ios::trunc);
      if (out) {
        out << obs::MetricsRegistry::instance().snapshot_json() << '\n';
        std::cout << "metrics written to " << path << '\n';
      } else {
        std::cerr << "failed to write metrics to " << path << '\n';
      }
    }
  } metrics_guard{metrics_out};

  // Progress sampler: streams JSONL snapshots when --progress asked for
  // them; armed silently (no sink) when only --postmortem-dir is set so the
  // black box still gets a snapshot tail.
  std::ofstream progress_file;
  std::ostream* progress_stream = nullptr;
  if (!progress_dest.empty()) {
    if (progress_dest == "stderr") {
      progress_stream = &std::cerr;
    } else {
      progress_file.open(progress_dest, std::ios::trunc);
      if (!progress_file) {
        std::cerr << "cannot write progress stream to " << progress_dest
                  << '\n';
        return 1;
      }
      progress_stream = &progress_file;
    }
  }
  std::optional<obs::SearchProgressSampler> sampler;
  if (progress_stream != nullptr || !postmortem_dir.empty()) {
    obs::SearchProgressSampler::Options popt;
    popt.min_interval_us = progress_every_ms * 1000;
    if (progress_stream != nullptr) {
      popt.sink = [progress_stream](const obs::ProgressSnapshot& snap) {
        *progress_stream << snap.to_json() << '\n';
        progress_stream->flush();
      };
    }
    sampler.emplace(popt);
  }

  std::cout << "instance:   " << instance.name << '\n';
  std::cout << "DAG: " << dag.node_count() << " nodes, " << dag.edge_count()
            << " edges, Δ = " << dag.max_indegree() << " (min R = "
            << min_red_pebbles(dag) << ")\n";
  if (instance.mapped_bytes != 0) {
    std::cout << "mapped:     " << instance.mapped_bytes
              << " bytes (zero-copy .rbg)\n";
  }
  if (print_fingerprint) {
    // The exact key rbpeb-serve would compute for this request: same
    // canonical form, model, convention, R, solver name, and options — so a
    // CLI run and a served dag_file request for the same instance print the
    // same value.
    const serve::CanonicalForm form = serve::canonicalize(dag);
    std::cout << "fingerprint: "
              << serve::instance_fingerprint(form, flags.model,
                                             flags.convention, r, solver_name,
                                             options)
              << '\n';
  }
  Engine engine(dag, flags.model, r, flags.convention);
  SolveRequest request;
  request.engine = &engine;
  request.options = std::move(options);
  request.budget = budget;
  if (sampler) request.progress = &*sampler;

  // The black box: written whenever a budget ends the solve without an
  // optimality proof. Its limiting_resource verdict is copied from the
  // result stats — the same value the detail string below is derived from,
  // so the two always agree (tools/postmortem_check.py cross-checks).
  auto write_blackbox = [&](const SolveResult& result) {
    if (postmortem_dir.empty()) return;
    obs::PostmortemReport report;
    const auto verdict = result.stats.find("limiting_resource");
    report.limiting_resource =
        verdict != result.stats.end() ? verdict->second : "unknown";
    report.termination = to_string(result.status);
    report.detail = result.detail;
    report.solver = result.solver;
    report.stats = result.stats;
    if (sampler) report.progress = sampler->history();
    const std::string path = obs::write_postmortem(postmortem_dir, report);
    if (!path.empty()) {
      std::cerr << "post-mortem written to " << path << '\n';
    } else {
      std::cerr << "failed to write post-mortem to " << postmortem_dir << '\n';
    }
  };

  const SolverRegistry& registry = SolverRegistry::instance();
  SolveResult best;
  if (solver_name == "portfolio") {
    PortfolioOptions popts;
    popts.max_threads = jobs;
    popts.parallel = jobs != 1;
    PortfolioResult portfolio = solve_portfolio(request, popts, registry);
    Table table("Portfolio over " +
                std::to_string(portfolio.results.size()) + " solvers");
    table.set_header({"solver", "status", "cost", "time", "notes"});
    for (const SolveResult& result : portfolio.results) {
      table.add_row({result.solver, to_string(result.status),
                     result.has_trace() ? result.cost.str() : "-",
                     format_elapsed(result.elapsed), result.detail});
    }
    std::cout << table << '\n';
    if (!portfolio.has_best()) {
      std::cerr << "no solver produced a verified trace\n";
      return 1;
    }
    best = portfolio.best();
    std::cout << "winner:     " << best.solver << " ("
              << to_string(best.status) << ")\n";
  } else {
    best = registry.at(solver_name).run(request);
    std::cout << "model:      " << flags.model.name() << ", solver: "
              << best.solver << ", status: " << to_string(best.status)
              << " (" << format_elapsed(best.elapsed) << ")\n";
    if (best.status == SolveStatus::BudgetExhausted) {
      write_blackbox(best);
      // Printed even when a heuristic incumbent trace is returned — this is
      // the detail line postmortem_check.py cross-checks the verdict against.
      std::cerr << "budget-exhausted: " << best.detail << '\n';
      const auto limiting = best.stats.find("limiting_resource");
      if (limiting != best.stats.end()) {
        std::cerr << "limiting resource: " << limiting->second << '\n';
      }
    }
    if (!best.has_trace()) {
      std::cerr << "no trace: " << best.detail << '\n';
      // Partial progress (states_expanded, max_states, …) still tells the
      // user how to size the next budget.
      for (const auto& [key, value] : best.stats) {
        std::cerr << "  " << key << ": " << value << '\n';
      }
      return 1;
    }
  }

  VerifyResult vr = verify(engine, *best.trace);
  print_audit(engine, vr);
  if (best.certificate) {
    // The machine check the certificate promises, run right here on the
    // audited replay cost — print "VIOLATED" rather than a wrong guarantee.
    const bool holds = certificate_holds(*best.certificate, vr.total);
    std::cout << "certificate: cost " << best.certificate->cost.str()
              << " ≤ (1+" << best.certificate->epsilon.str()
              << ")·lower_bound " << best.certificate->lower_bound.str()
              << (holds ? "  [checked]" : "  [VIOLATED]") << '\n';
    if (!holds) return 1;
  }

  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    out << trace_to_text(*best.trace);
    std::cout << "trace written to " << trace_out << '\n';
  }
  if (!dot_out.empty()) {
    std::ofstream out(dot_out);
    out << to_dot(dag);
    std::cout << "DOT written to " << dot_out << '\n';
  }
  return vr.ok() ? 0 : 1;
}

int cmd_verify(const std::vector<std::string>& args) {
  if (args.size() < 3) usage();
  // Same ingestion path as solve: text or .rbg, sniffed by magic.
  Dag dag = instances::resolve_instance("file:" + args[0]).dag;
  std::size_t r = std::stoul(args[1]);
  Trace trace = trace_from_text(read_file(args[2]));
  CommonFlags flags;
  for (std::size_t i = 3; i < args.size(); ++i) {
    if (!parse_common_flag(args, i, flags)) usage();
  }
  Engine engine(dag, flags.model, r, flags.convention);
  VerifyResult vr = verify(engine, trace);
  print_audit(engine, vr);
  return vr.ok() ? 0 : 1;
}

int cmd_gen(const std::vector<std::string>& args) {
  if (args.empty()) usage();
  const std::string& kind = args[0];
  if (kind == "matmul" && args.size() == 2) {
    std::cout << to_text(make_matmul_dag(std::stoul(args[1])).dag);
  } else if (kind == "fft" && args.size() == 2) {
    std::cout << to_text(make_fft_dag(std::stoul(args[1])).dag);
  } else if (kind == "stencil" && args.size() == 3) {
    std::cout << to_text(
        make_stencil1d_dag(std::stoul(args[1]), std::stoul(args[2])).dag);
  } else if (kind == "tree" && args.size() == 2) {
    std::cout << to_text(make_tree_reduction_dag(std::stoul(args[1])).dag);
  } else if (args.size() == 1) {
    // Anything else is tried as an InstanceSpec, so every generator in the
    // registry — not just the four legacy spellings — can emit a text file.
    std::cout << to_text(instances::resolve_instance(kind).dag);
  } else {
    usage();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) usage();
  try {
    std::string cmd = args[0];
    args.erase(args.begin());
    if (cmd == "list-solvers") return cmd_list_solvers();
    if (cmd == "solve") return cmd_solve(args);
    if (cmd == "verify") return cmd_verify(args);
    if (cmd == "gen") return cmd_gen(args);
    usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
