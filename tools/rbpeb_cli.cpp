// rbpeb_cli — command-line front end for the pebbling laboratory.
//
// Usage:
//   rbpeb_cli solve <dag-file> <R> [--model base|oneshot|nodel|compcost]
//                                  [--solver greedy|topo|exact]
//                                  [--trace <out-file>] [--dot <out-file>]
//   rbpeb_cli verify <dag-file> <R> <trace-file> [--model ...]
//   rbpeb_cli gen matmul <n> | fft <size> | stencil <w> <t> | tree <leaves>
//
// DAG files use the rbpeb text format (first line: node count; then one
// "from to" edge per line). `gen` writes such a file to stdout.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/graph/dag_io.hpp"
#include "src/pebble/bounds.hpp"
#include "src/pebble/trace_io.hpp"
#include "src/pebble/verifier.hpp"
#include "src/solvers/exact.hpp"
#include "src/solvers/greedy.hpp"
#include "src/solvers/topo_baseline.hpp"
#include "src/support/check.hpp"
#include "src/workloads/fft.hpp"
#include "src/workloads/matmul.hpp"
#include "src/workloads/stencil.hpp"
#include "src/workloads/tree_reduction.hpp"

namespace {

using namespace rbpeb;

[[noreturn]] void usage() {
  std::cerr <<
      "usage:\n"
      "  rbpeb_cli solve <dag-file> <R> [--model M] [--solver S]"
      " [--trace F] [--dot F]\n"
      "  rbpeb_cli verify <dag-file> <R> <trace-file> [--model M]\n"
      "  rbpeb_cli gen matmul <n> | fft <size> | stencil <w> <t> |"
      " tree <leaves>\n"
      "models: base oneshot nodel compcost; solvers: greedy topo exact\n";
  std::exit(2);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot read " << path << '\n';
    std::exit(1);
  }
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

Model parse_model(const std::string& name) {
  for (const Model& m : all_models()) {
    if (m.name() == name) return m;
  }
  std::cerr << "unknown model '" << name << "'\n";
  std::exit(2);
}

void print_audit(const Engine& engine, const VerifyResult& vr) {
  std::cout << "legal:      " << (vr.legal ? "yes" : "NO — " + vr.error)
            << '\n';
  std::cout << "complete:   " << (vr.complete ? "yes" : "no") << '\n';
  std::cout << "total cost: " << vr.total.str() << " (" << vr.cost.loads
            << " loads, " << vr.cost.stores << " stores, " << vr.cost.computes
            << " computes, " << vr.cost.deletes << " deletes)\n";
  std::cout << "moves:      " << vr.length << '\n';
  std::cout << "peak red:   " << vr.max_red << " / " << engine.red_limit()
            << '\n';
}

int cmd_solve(const std::vector<std::string>& args) {
  if (args.size() < 2) usage();
  Dag dag = from_text(read_file(args[0]));
  std::size_t r = std::stoul(args[1]);
  Model model = Model::oneshot();
  std::string solver = "greedy";
  std::string trace_out, dot_out;
  for (std::size_t i = 2; i < args.size(); ++i) {
    if (args[i] == "--model" && i + 1 < args.size()) model = parse_model(args[++i]);
    else if (args[i] == "--solver" && i + 1 < args.size()) solver = args[++i];
    else if (args[i] == "--trace" && i + 1 < args.size()) trace_out = args[++i];
    else if (args[i] == "--dot" && i + 1 < args.size()) dot_out = args[++i];
    else usage();
  }

  std::cout << "DAG: " << dag.node_count() << " nodes, " << dag.edge_count()
            << " edges, Δ = " << dag.max_indegree() << " (min R = "
            << min_red_pebbles(dag) << ")\n";
  Engine engine(dag, model, r);
  Trace trace;
  if (solver == "greedy") trace = solve_greedy(engine);
  else if (solver == "topo") trace = solve_topo_baseline(engine);
  else if (solver == "exact") trace = solve_exact(engine).trace;
  else usage();

  VerifyResult vr = verify(engine, trace);
  std::cout << "model:      " << model.name() << ", solver: " << solver
            << '\n';
  print_audit(engine, vr);

  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    out << trace_to_text(trace);
    std::cout << "trace written to " << trace_out << '\n';
  }
  if (!dot_out.empty()) {
    std::ofstream out(dot_out);
    out << to_dot(dag);
    std::cout << "DOT written to " << dot_out << '\n';
  }
  return vr.ok() ? 0 : 1;
}

int cmd_verify(const std::vector<std::string>& args) {
  if (args.size() < 3) usage();
  Dag dag = from_text(read_file(args[0]));
  std::size_t r = std::stoul(args[1]);
  Trace trace = trace_from_text(read_file(args[2]));
  Model model = Model::oneshot();
  for (std::size_t i = 3; i < args.size(); ++i) {
    if (args[i] == "--model" && i + 1 < args.size()) model = parse_model(args[++i]);
    else usage();
  }
  Engine engine(dag, model, r);
  VerifyResult vr = verify(engine, trace);
  print_audit(engine, vr);
  return vr.ok() ? 0 : 1;
}

int cmd_gen(const std::vector<std::string>& args) {
  if (args.empty()) usage();
  const std::string& kind = args[0];
  if (kind == "matmul" && args.size() == 2) {
    std::cout << to_text(make_matmul_dag(std::stoul(args[1])).dag);
  } else if (kind == "fft" && args.size() == 2) {
    std::cout << to_text(make_fft_dag(std::stoul(args[1])).dag);
  } else if (kind == "stencil" && args.size() == 3) {
    std::cout << to_text(
        make_stencil1d_dag(std::stoul(args[1]), std::stoul(args[2])).dag);
  } else if (kind == "tree" && args.size() == 2) {
    std::cout << to_text(make_tree_reduction_dag(std::stoul(args[1])).dag);
  } else {
    usage();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) usage();
  try {
    std::string cmd = args[0];
    args.erase(args.begin());
    if (cmd == "solve") return cmd_solve(args);
    if (cmd == "verify") return cmd_verify(args);
    if (cmd == "gen") return cmd_gen(args);
    usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
