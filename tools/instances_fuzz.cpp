// instances_fuzz — seeded random-mutation fuzzer for the instance parsers.
//
//   instances_fuzz [--seconds N] [--iterations N] [--seed S] <seed-dir>...
//
// The toolchain here is gcc, so there is no libFuzzer; this is the seeded
// fallback the CI fuzz job runs (under ASan+UBSan) for a fixed wall-clock
// budget. Every file under the seed directories — the committed corpus,
// malformed files included — becomes a seed. Each iteration mutates a seed
// (bit flips, byte stomps, truncation, insertion, splicing two seeds) and
// feeds it to both untrusted-input surfaces:
//
//   * from_text       — the line-based text parser
//   * from_rbg_buffer — the .rbg binary loader
//
// The contract under fuzz: a parser either returns a valid Dag or throws
// PreconditionError. Any other exception, any sanitizer report, or a crash
// is a bug. Accepted inputs are additionally round-tripped through the
// opposite serializer and must preserve the node/edge counts.
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/graph/dag_io.hpp"
#include "src/instances/binary_format.hpp"
#include "src/support/check.hpp"

namespace {

using namespace rbpeb;

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::vector<std::string> load_seeds(const std::vector<std::string>& dirs) {
  std::vector<std::string> seeds;
  for (const std::string& dir : dirs) {
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      std::ifstream is(entry.path(), std::ios::binary);
      std::ostringstream os;
      os << is.rdbuf();
      seeds.push_back(std::move(os).str());
    }
  }
  return seeds;
}

std::string mutate(const std::vector<std::string>& seeds,
                   std::uint64_t& rng) {
  constexpr std::size_t kMaxInput = 1 << 20;
  std::string input = seeds[splitmix64(rng) % seeds.size()];
  std::size_t rounds = 1 + splitmix64(rng) % 8;
  for (std::size_t r = 0; r < rounds; ++r) {
    switch (splitmix64(rng) % 6) {
      case 0:  // bit flip
        if (!input.empty()) {
          std::size_t i = splitmix64(rng) % input.size();
          input[i] = static_cast<char>(input[i] ^
                                       (1u << (splitmix64(rng) % 8)));
        }
        break;
      case 1:  // byte stomp
        if (!input.empty()) {
          input[splitmix64(rng) % input.size()] =
              static_cast<char>(splitmix64(rng));
        }
        break;
      case 2:  // truncate
        if (!input.empty()) input.resize(splitmix64(rng) % input.size());
        break;
      case 3: {  // insert a few random bytes
        std::size_t at = input.empty() ? 0 : splitmix64(rng) % input.size();
        std::size_t count = 1 + splitmix64(rng) % 8;
        std::string noise;
        for (std::size_t i = 0; i < count; ++i) {
          noise.push_back(static_cast<char>(splitmix64(rng)));
        }
        input.insert(at, noise);
        break;
      }
      case 4: {  // splice the tail of another seed
        const std::string& other = seeds[splitmix64(rng) % seeds.size()];
        std::size_t cut = input.empty() ? 0 : splitmix64(rng) % input.size();
        std::size_t from =
            other.empty() ? 0 : splitmix64(rng) % other.size();
        input = input.substr(0, cut) + other.substr(from);
        break;
      }
      case 5:  // duplicate a chunk
        if (!input.empty()) {
          std::size_t at = splitmix64(rng) % input.size();
          std::size_t len =
              std::min<std::size_t>(1 + splitmix64(rng) % 64,
                                    input.size() - at);
          input.insert(at, input.substr(at, len));
        }
        break;
    }
    if (input.size() > kMaxInput) input.resize(kMaxInput);
  }
  return input;
}

struct Tally {
  std::uint64_t iterations = 0;
  std::uint64_t text_ok = 0;
  std::uint64_t text_rejected = 0;
  std::uint64_t rbg_ok = 0;
  std::uint64_t rbg_rejected = 0;
};

// Returns false (after printing) when the parser broke its contract.
bool exercise(const std::string& input, Tally& tally) {
  ++tally.iterations;
  try {
    Dag dag = from_text(input);
    ++tally.text_ok;
    Dag back = from_text(to_text(dag));
    RBPEB_ENSURE(back.node_count() == dag.node_count() &&
                     back.edge_count() == dag.edge_count(),
                 "text round trip changed the instance shape");
  } catch (const PreconditionError&) {
    ++tally.text_rejected;
  } catch (const std::exception& error) {
    std::cerr << "text parser broke its contract: " << error.what() << "\n";
    return false;
  }

  // The binary loader requires 4-byte alignment; rehouse the mutated bytes.
  std::vector<std::uint32_t> aligned((input.size() + 3) / 4);
  std::memcpy(aligned.data(), input.data(), input.size());
  std::span<const std::byte> bytes{
      reinterpret_cast<const std::byte*>(aligned.data()), input.size()};
  try {
    auto backing = std::shared_ptr<const void>(aligned.data(),
                                               [](const void*) {});
    Dag dag = instances::from_rbg_buffer(bytes, backing);
    ++tally.rbg_ok;
    std::string rebytes = instances::to_rbg_bytes(dag);
    RBPEB_ENSURE(rebytes.size() == input.size(),
                 "rbg round trip changed the image size");
  } catch (const PreconditionError&) {
    ++tally.rbg_rejected;
  } catch (const std::exception& error) {
    std::cerr << "rbg loader broke its contract: " << error.what() << "\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  double seconds = 10.0;
  std::uint64_t iterations = 0;  // 0 = until the clock runs out
  std::uint64_t rng = 0x243F6A8885A308D3ull;
  std::vector<std::string> dirs;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--seconds" && i + 1 < args.size()) {
      seconds = std::stod(args[++i]);
    } else if (args[i] == "--iterations" && i + 1 < args.size()) {
      iterations = std::stoull(args[++i]);
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      rng = std::stoull(args[++i]);
    } else {
      dirs.push_back(args[i]);
    }
  }
  if (dirs.empty()) {
    std::cerr << "usage: instances_fuzz [--seconds N] [--iterations N] "
                 "[--seed S] <seed-dir>...\n";
    return 2;
  }

  std::vector<std::string> seeds = load_seeds(dirs);
  if (seeds.empty()) {
    std::cerr << "no seed files under the given directories\n";
    return 2;
  }

  Tally tally;
  // Every unmutated seed must already satisfy the contract.
  for (const std::string& seed : seeds) {
    if (!exercise(seed, tally)) return 1;
  }

  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(seconds));
  while (std::chrono::steady_clock::now() < deadline &&
         (iterations == 0 || tally.iterations < iterations)) {
    if (!exercise(mutate(seeds, rng), tally)) return 1;
  }

  std::cout << "fuzz ok: " << tally.iterations << " inputs over "
            << seeds.size() << " seeds — text " << tally.text_ok
            << " accepted / " << tally.text_rejected << " rejected, rbg "
            << tally.rbg_ok << " accepted / " << tally.rbg_rejected
            << " rejected\n";
  return 0;
}
