#!/usr/bin/env python3
"""Validate a flight-recorder trace (Chrome trace-event JSON).

Checks, in order:
  1. The file parses as JSON and has a ``traceEvents`` list.
  2. Every event carries a string ``name``, a ``ph`` in {B, E, i, I}, a
     numeric ``ts``, and a ``tid``.
  3. Per (pid, tid) track, begin/end events nest properly: every E closes
     the innermost open B of the same name. Spans left open at end-of-trace
     are an error unless the recorder reported drops (``metadata.dropped``
     > 0) — drop-newest can lose E events for spans that were genuinely
     open when the ring filled, but can never produce a *mismatched* E.
  4. Each ``--require NAME`` appears as an event name at least once.

Exit status 0 on success, 1 on any failure, with a per-check summary.

Usage:
  trace_check.py TRACE.json [--require NAME]...
"""

from __future__ import annotations

import argparse
import collections
import json
import sys


VALID_PHASES = {"B", "E", "i", "I"}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="event name that must appear at least once (repeatable)",
    )
    args = parser.parse_args()

    errors: list[str] = []

    try:
        with open(args.trace, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"trace_check: FAIL: cannot load {args.trace}: {exc}")
        return 1

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        print("trace_check: FAIL: no traceEvents list")
        return 1

    metadata = doc.get("metadata", {})
    dropped = metadata.get("dropped", 0)
    if not isinstance(dropped, int) or dropped < 0:
        errors.append(f"metadata.dropped is not a non-negative int: {dropped!r}")
        dropped = 0

    names_seen: set[str] = set()
    # (pid, tid) -> stack of open span names.
    stacks: dict[tuple, list[str]] = collections.defaultdict(list)

    for index, event in enumerate(events):
        where = f"event #{index}"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        name = event.get("name")
        phase = event.get("ph")
        ts = event.get("ts")
        tid = event.get("tid")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing/empty name")
            continue
        if phase not in VALID_PHASES:
            errors.append(f"{where} ({name}): bad ph {phase!r}")
            continue
        if not isinstance(ts, (int, float)):
            errors.append(f"{where} ({name}): non-numeric ts {ts!r}")
        if tid is None:
            errors.append(f"{where} ({name}): missing tid")
        names_seen.add(name)
        track = (event.get("pid"), tid)
        stack = stacks[track]
        if phase == "B":
            stack.append(name)
        elif phase == "E":
            if not stack:
                errors.append(f"{where}: E '{name}' with no open span on tid {tid}")
            elif stack[-1] != name:
                errors.append(
                    f"{where}: E '{name}' does not match innermost open "
                    f"span '{stack[-1]}' on tid {tid}"
                )
            else:
                stack.pop()

    open_spans = [
        f"tid {tid}: {' > '.join(stack)}"
        for (_, tid), stack in sorted(stacks.items(), key=lambda kv: str(kv[0]))
        if stack
    ]
    if open_spans and dropped == 0:
        errors.append(
            "unclosed spans at end of trace with no drops reported: "
            + "; ".join(open_spans)
        )

    for required in args.require:
        if required not in names_seen:
            errors.append(f"required event '{required}' never appears")

    declared = metadata.get("events")
    if isinstance(declared, int) and declared != len(events):
        errors.append(
            f"metadata.events={declared} but traceEvents holds {len(events)}"
        )

    if errors:
        for error in errors:
            print(f"trace_check: FAIL: {error}")
        print(
            f"trace_check: {len(errors)} error(s) in {len(events)} events "
            f"({len(names_seen)} distinct names, {dropped} dropped)"
        )
        return 1

    note = f", {dropped} dropped (unclosed spans tolerated)" if dropped else ""
    print(
        f"trace_check: OK: {len(events)} events, {len(names_seen)} distinct "
        f"names, {len(args.require)} required names present{note}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
