// Parallel ("shades of red") pebbling extension.
#include "src/parallel/par_engine.hpp"

#include <gtest/gtest.h>

#include "src/graph/dag_builder.hpp"
#include "src/pebble/bounds.hpp"
#include "src/pebble/verifier.hpp"
#include "src/solvers/topo_baseline.hpp"
#include "src/support/check.hpp"
#include "src/workloads/fft.hpp"
#include "src/workloads/matmul.hpp"
#include "src/workloads/stencil.hpp"

namespace rbpeb {
namespace {

Dag edge_dag() {
  DagBuilder b;
  b.add_nodes(2);
  b.add_edge(0, 1);
  return b.build();
}

TEST(ParEngine, ComputeNeedsLocalInputs) {
  Dag dag = edge_dag();
  ParEngine engine(dag, 2, 2);
  ParState state = engine.initial_state();
  engine.apply(state, {ParMove::Type::Compute, 0, 0});
  // Processor 1 cannot compute node 1: input lives in processor 0's memory.
  EXPECT_FALSE(engine.is_legal(state, {ParMove::Type::Compute, 1, 1}));
  EXPECT_TRUE(engine.is_legal(state, {ParMove::Type::Compute, 0, 1}));
  // Publish and fetch: now processor 1 can compute.
  engine.apply(state, {ParMove::Type::Store, 0, 0});
  engine.apply(state, {ParMove::Type::Load, 1, 0});
  EXPECT_TRUE(engine.is_legal(state, {ParMove::Type::Compute, 1, 1}));
}

TEST(ParEngine, CopiesCoexistAndCapacitiesArePerProcessor) {
  DagBuilder b;
  b.add_nodes(3);
  Dag dag = b.build();
  ParEngine engine(dag, 2, 2);
  ParState state = engine.initial_state();
  engine.apply(state, {ParMove::Type::Compute, 0, 0});
  engine.apply(state, {ParMove::Type::Store, 0, 0});
  engine.apply(state, {ParMove::Type::Load, 1, 0});
  EXPECT_TRUE(state.red_at(0, 0));
  EXPECT_TRUE(state.red_at(1, 0));  // both processors hold copies
  EXPECT_TRUE(state.blue(0));
  // Fill processor 0; processor 1 still has room.
  engine.apply(state, {ParMove::Type::Compute, 0, 1});
  EXPECT_FALSE(engine.is_legal(state, {ParMove::Type::Compute, 0, 2}));
  EXPECT_TRUE(engine.is_legal(state, {ParMove::Type::Compute, 1, 2}));
}

TEST(ParEngine, OneshotIsGlobal) {
  Dag dag = edge_dag();
  ParEngine engine(dag, 2, 2);
  ParState state = engine.initial_state();
  engine.apply(state, {ParMove::Type::Compute, 0, 0});
  // No other processor may recompute node 0.
  EXPECT_FALSE(engine.is_legal(state, {ParMove::Type::Compute, 1, 0}));
}

TEST(ParEngine, StoreIdempotenceRejected) {
  Dag dag = edge_dag();
  ParEngine engine(dag, 1, 2);
  ParState state = engine.initial_state();
  engine.apply(state, {ParMove::Type::Compute, 0, 0});
  engine.apply(state, {ParMove::Type::Store, 0, 0});
  EXPECT_FALSE(engine.is_legal(state, {ParMove::Type::Store, 0, 0}));
  EXPECT_THROW(engine.apply(state, {ParMove::Type::Store, 0, 0}),
               PreconditionError);
}

TEST(ParScheduler, ValidOnWorkloads) {
  std::vector<Dag> dags;
  dags.push_back(make_matmul_dag(4).dag);
  dags.push_back(make_fft_dag(16).dag);
  dags.push_back(make_stencil1d_dag(12, 6).dag);
  for (const Dag& dag : dags) {
    for (std::size_t procs : {1u, 2u, 4u}) {
      ParEngine engine(dag, procs, min_red_pebbles(dag) + 3);
      auto schedule = solve_par_owner_computes(engine);
      ParVerifyResult vr = par_verify(engine, schedule);
      ASSERT_TRUE(vr.ok()) << "procs=" << procs << ": " << vr.error;
      // Every node computed exactly once, somewhere.
      std::int64_t computes = 0;
      for (std::int64_t c : vr.computes_per_proc) computes += c;
      EXPECT_EQ(computes, static_cast<std::int64_t>(dag.node_count()));
    }
  }
}

TEST(ParScheduler, SingleProcessorMatchesSequentialShape) {
  // P = 1 degenerates to classic oneshot pebbling; communication volume
  // should be comparable to the sequential baseline's transfers.
  Dag dag = make_fft_dag(16).dag;
  std::size_t r = 6;
  ParEngine par(dag, 1, r);
  ParVerifyResult pv = par_verify(par, solve_par_owner_computes(par));
  ASSERT_TRUE(pv.ok());

  Engine seq(dag, Model::oneshot(), r);
  VerifyResult sv = verify_or_throw(seq, solve_topo_baseline(seq));
  // The parallel store/load protocol persists blue copies, so it can only
  // differ from the sequential count by bounded bookkeeping.
  EXPECT_LE(pv.transfers(), 2 * sv.cost.transfers() + 4);
}

TEST(ParScheduler, BoundaryExchangesGrowWithProcessorCount) {
  // With fast memories large enough that capacity never evicts, all
  // communication is publish/fetch across ownership boundaries — zero for
  // one processor, and monotone in P for block-partitioned stencils.
  Dag dag = make_stencil1d_dag(32, 8).dag;
  const std::size_t big_r = dag.node_count() + 1;
  std::int64_t prev = -1;
  for (std::size_t procs : {1u, 2u, 4u, 8u}) {
    ParEngine engine(dag, procs, big_r);
    ParVerifyResult vr = par_verify(engine, solve_par_owner_computes(engine));
    ASSERT_TRUE(vr.ok());
    if (procs == 1) EXPECT_EQ(vr.transfers(), 0);
    if (prev >= 0) EXPECT_GT(vr.transfers(), prev);
    prev = vr.transfers();
  }
}

TEST(ParScheduler, FragmentingFixedCapacityCostsCommunication) {
  // Same aggregate fast capacity, split across more processors: the
  // fragmentation plus boundary traffic cannot beat the single big cache.
  Dag dag = make_stencil1d_dag(32, 8).dag;
  ParEngine one(dag, 1, 16);
  ParEngine four(dag, 4, 4);
  std::int64_t single =
      par_verify(one, solve_par_owner_computes(one)).transfers();
  std::int64_t split =
      par_verify(four, solve_par_owner_computes(four)).transfers();
  EXPECT_GT(split, single / 4);
}

TEST(ParScheduler, WorkBalancedAcrossProcessors) {
  Dag dag = make_stencil1d_dag(40, 10).dag;
  ParEngine engine(dag, 4, 12);
  ParVerifyResult vr = par_verify(engine, solve_par_owner_computes(engine));
  ASSERT_TRUE(vr.ok());
  std::int64_t total = 0;
  for (std::int64_t c : vr.computes_per_proc) total += c;
  for (std::int64_t c : vr.computes_per_proc) {
    EXPECT_GT(c, total / 8);  // no processor does less than half its share
  }
  // The makespan proxy beats serial execution.
  EXPECT_LT(vr.makespan, total);
}

TEST(ParVerify, ReportsIllegalMoves) {
  Dag dag = edge_dag();
  ParEngine engine(dag, 2, 2);
  std::vector<ParMove> bad = {{ParMove::Type::Load, 0, 0}};
  ParVerifyResult vr = par_verify(engine, bad);
  EXPECT_FALSE(vr.legal);
  EXPECT_EQ(vr.failed_at, 0u);
}

}  // namespace
}  // namespace rbpeb
