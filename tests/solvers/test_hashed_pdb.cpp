// The hashed pattern-database tier: open-addressed tables must be invisible
// where the flat 8^|P| tables exist (force_hashed differential), wider
// patterns must build real tables that stay admissible, the min-cut
// partitioner must produce legal partitions, and a byte-budget truncation
// must weaken the heuristic only downward (floors, never optimism).
#include "src/solvers/bigstate/pdb.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/graph/dag_builder.hpp"
#include "src/pebble/bounds.hpp"
#include "src/pebble/verifier.hpp"
#include "src/solvers/exact.hpp"
#include "src/solvers/exact_astar.hpp"
#include "src/support/rng.hpp"
#include "src/workloads/chain.hpp"
#include "src/workloads/random_layered.hpp"
#include "src/workloads/tree_reduction.hpp"

namespace rbpeb {
namespace {

std::vector<Move> legal_moves(const Engine& engine, const GameState& state) {
  std::vector<Move> legal;
  for (std::size_t v = 0; v < state.node_count(); ++v) {
    for (MoveType type : {MoveType::Load, MoveType::Store, MoveType::Compute,
                          MoveType::Delete}) {
      Move move{type, static_cast<NodeId>(v)};
      if (engine.is_legal(state, move)) legal.push_back(move);
    }
  }
  return legal;
}

/// Random-walk the concrete game, comparing the two databases' bounds at
/// every visited state. `upper_is_reference` asserts equality; otherwise
/// `a` must only ever be the weaker (smaller-or-equal, never dead when the
/// reference is alive) side.
void walk_and_compare(const Engine& engine, const PatternDatabase& a,
                      const PatternDatabase& reference, bool expect_equal,
                      std::uint64_t seed, int steps = 200) {
  Rng rng(seed);
  GameState state = engine.initial_state();
  for (int step = 0; step < steps; ++step) {
    const auto got = a.lower_bound_scaled(state);
    const auto want = reference.lower_bound_scaled(state);
    if (expect_equal) {
      ASSERT_EQ(got, want) << "step=" << step;
    } else if (want.has_value()) {
      // Truncation may only weaken: never dead where the reference is
      // alive, never above the reference's (admissible) value.
      ASSERT_TRUE(got.has_value()) << "step=" << step;
      ASSERT_LE(*got, *want) << "step=" << step;
    }
    std::vector<Move> legal = legal_moves(engine, state);
    if (legal.empty()) break;
    Cost cost;
    engine.apply(state, legal[rng.next_below(legal.size())], cost);
  }
}

// ---- hashed vs flat, bit for bit -----------------------------------------

/// force_hashed builds open-addressed tables at widths the flat arrays
/// cover; both must serve identical bounds (and identical dead verdicts) at
/// every reachable configuration, on every model.
TEST(HashedPdb, ForcedHashedTablesMatchFlatTablesEverywhere) {
  Dag dag = make_random_layered_dag({.layers = 5, .width = 4, .indegree = 2,
                                     .seed = 51});  // 20 nodes
  std::uint64_t seed = 500;
  for (const Model& model : all_models()) {
    Engine engine(dag, model, min_red_pebbles(dag));
    for (std::size_t width : {3u, 6u, 8u}) {
      PatternDatabase flat(engine, width);
      PatternDatabase hashed(engine, width, {}, PdbPartition::Cone,
                             /*table_byte_budget=*/0, /*force_hashed=*/true);
      ASSERT_EQ(flat.pattern_count(), hashed.pattern_count());
      walk_and_compare(engine, hashed, flat, /*expect_equal=*/true, ++seed);
    }
  }
}

/// The hashed tier holds only reached abstract states, so at equal width it
/// must be no larger than the dense arrays it replaces.
TEST(HashedPdb, HashedTablesAreSparserThanFlatAtEqualWidth) {
  Dag dag = make_chain_dag(16);
  Engine engine(dag, Model::oneshot(), 3);
  PatternDatabase flat(engine, 8);
  PatternDatabase hashed(engine, 8, {}, PdbPartition::Cone, 0, true);
  EXPECT_GT(flat.table_bytes(), 0u);
  EXPECT_GT(hashed.table_bytes(), 0u);
  EXPECT_LT(hashed.table_bytes(), flat.table_bytes());
}

// ---- genuinely wide patterns ---------------------------------------------

/// A width past the flat cap builds a hashed table for real and the result
/// stays admissible: folded into the search it must not change the proven
/// optimum (checked against a flat-PDB solve of the same instance).
TEST(HashedPdb, WidePatternsStayAdmissibleInTheSearch) {
  Dag dag = make_random_layered_dag({.layers = 3, .width = 3, .indegree = 2,
                                     .seed = 52});  // 9 nodes
  Engine engine(dag, Model::nodel(), min_red_pebbles(dag));
  ExactSearchOptions narrow;
  narrow.max_states = 2'000'000;
  narrow.pdb = PdbMode::On;
  narrow.pdb_pattern_size = 5;
  ExactSearchOptions wide = narrow;
  wide.pdb_pattern_size = 9;  // one 9-node pattern: hashed territory
  ExactSearchStats narrow_stats, wide_stats;
  auto narrow_result = try_solve_exact_astar(engine, narrow, &narrow_stats);
  auto wide_result = try_solve_exact_astar(engine, wide, &wide_stats);
  ASSERT_TRUE(narrow_result.has_value());
  ASSERT_TRUE(wide_result.has_value());
  EXPECT_EQ(narrow_result->cost, wide_result->cost);
  // The whole-instance abstraction is the instance itself: its heuristic is
  // perfect, so the search should expand no more than the narrow one.
  EXPECT_LE(wide_stats.states_expanded, narrow_stats.states_expanded);
  EXPECT_EQ(verify_or_throw(engine, wide_result->trace).total,
            wide_result->cost);
}

// ---- the min-cut partitioner ---------------------------------------------

TEST(MinCutPartition, CoversEveryNodeDisjointlyWithinTheSizeCap) {
  for (std::size_t cap : {1u, 4u, 7u, 16u}) {
    Dag dag = make_random_layered_dag({.layers = 6, .width = 5, .indegree = 3,
                                       .seed = 53});
    auto patterns = partition_into_patterns_mincut(dag, cap);
    std::vector<int> seen(dag.node_count(), 0);
    for (const auto& pattern : patterns) {
      EXPECT_LE(pattern.size(), cap);
      EXPECT_FALSE(pattern.empty());
      for (NodeId v : pattern) ++seen[v];
    }
    for (std::size_t v = 0; v < dag.node_count(); ++v) {
      EXPECT_EQ(seen[v], 1) << "node " << v << " cap " << cap;
    }
  }
}

/// On a chain every partitioner should find the obvious contiguous
/// segmentation — and the min-cut DP must never cut more edges than the
/// greedy cone partitioner on the same instance.
TEST(MinCutPartition, CutsNoMoreEdgesThanTheGreedyConePartitioner) {
  auto crossing_edges = [](const Dag& dag,
                           const std::vector<std::vector<NodeId>>& patterns) {
    std::vector<std::size_t> owner(dag.node_count(), 0);
    for (std::size_t p = 0; p < patterns.size(); ++p) {
      for (NodeId v : patterns[p]) owner[v] = p;
    }
    std::size_t crossing = 0;
    for (std::size_t v = 0; v < dag.node_count(); ++v) {
      for (NodeId u : dag.predecessors(static_cast<NodeId>(v))) {
        if (owner[u] != owner[v]) ++crossing;
      }
    }
    return crossing;
  };
  for (std::uint64_t seed : {54u, 55u, 56u}) {
    Dag dag = make_random_layered_dag({.layers = 6, .width = 4, .indegree = 2,
                                       .seed = seed});
    const auto cone = partition_into_patterns(dag, 6);
    const auto mincut = partition_into_patterns_mincut(dag, 6);
    EXPECT_LE(crossing_edges(dag, mincut), crossing_edges(dag, cone))
        << "seed " << seed;
  }
}

/// The mincut partitioner is reachable end to end through the search
/// options and changes no proven optimum.
TEST(MinCutPartition, SearchWithMinCutPartitionAgreesWithCone) {
  Dag dag = make_random_layered_dag({.layers = 5, .width = 3, .indegree = 2,
                                     .seed = 57});  // 15 nodes
  Engine engine(dag, Model::oneshot(), min_red_pebbles(dag));
  ExactSearchOptions cone;
  cone.max_states = 2'000'000;
  cone.pdb = PdbMode::On;
  cone.pdb_pattern_size = 5;
  ExactSearchOptions mincut = cone;
  mincut.pdb_partition = PdbPartition::MinCut;
  auto cone_result = try_solve_exact_astar(engine, cone);
  auto mincut_result = try_solve_exact_astar(engine, mincut);
  ASSERT_TRUE(cone_result.has_value());
  ASSERT_TRUE(mincut_result.has_value());
  EXPECT_EQ(cone_result->cost, mincut_result->cost);
}

// ---- byte-budget truncation ----------------------------------------------

/// A build squeezed under a tiny byte budget truncates instead of failing:
/// bounds only ever drop relative to the untruncated build (settled entries
/// exact, the rest floored), and no live state is called dead.
TEST(HashedPdb, TruncatedBuildsOnlyWeakenTheBound) {
  Dag dag = make_random_layered_dag({.layers = 5, .width = 4, .indegree = 2,
                                     .seed = 58});  // 20 nodes
  std::uint64_t seed = 600;
  for (const Model& model : all_models()) {
    Engine engine(dag, model, min_red_pebbles(dag));
    PatternDatabase full(engine, 7, {}, PdbPartition::Cone, 0, true);
    // A few KiB: enough for the first slot arrays, far under the full build.
    PatternDatabase truncated(engine, 7, {}, PdbPartition::Cone,
                              /*table_byte_budget=*/8 << 10,
                              /*force_hashed=*/true);
    ASSERT_GT(full.table_bytes(), std::size_t{8} << 10)
        << "budget not actually binding; tighten the test";
    walk_and_compare(engine, truncated, full, /*expect_equal=*/false, ++seed);
  }
}

/// The truncated database still drives the search to the true optimum —
/// admissibility is what the searches rely on, so prove it end to end.
TEST(HashedPdb, SearchWithTruncatedTablesStillProvesTheOptimum) {
  Dag dag = make_random_layered_dag({.layers = 5, .width = 3, .indegree = 2,
                                     .seed = 59});  // 15 nodes
  Engine engine(dag, Model::compcost(), min_red_pebbles(dag));
  auto reference = try_solve_exact_astar(engine, ExactSearchOptions{});
  ASSERT_TRUE(reference.has_value());
  PatternDatabase truncated(engine, 8, {}, PdbPartition::Cone,
                            /*table_byte_budget=*/4 << 10,
                            /*force_hashed=*/true);
  StateBoundEvaluator eval(engine);
  eval.attach_pdb(&truncated);
  // The start state's bound must not exceed the true optimum.
  const auto start = eval.lower_bound_scaled(engine.initial_state());
  ASSERT_TRUE(start.has_value());
  const Rational eps = engine.model().epsilon();
  EXPECT_LE(Rational(*start, eps.den()), reference->cost);
}

}  // namespace
}  // namespace rbpeb
