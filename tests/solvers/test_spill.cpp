// The external-memory search path: spill runs must store and serve exact
// best-path records, the spilling searches must reproduce the in-memory
// searches' costs AND expansion counts under budgets far too small for the
// closed table, merge passes must batch, cancellation must leave no spill
// files behind, and each hda-astar shard must spill into its own partition
// (this file runs under TSan in CI for exactly that).
#include "src/solvers/bigstate/spill.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>

#include "src/pebble/bounds.hpp"
#include "src/pebble/verifier.hpp"
#include "src/solvers/bigstate/ddd.hpp"
#include "src/solvers/exact_astar.hpp"
#include "src/solvers/hda/hda_astar.hpp"
#include "src/solvers/packed_state.hpp"
#include "src/workloads/chain.hpp"
#include "src/workloads/random_layered.hpp"
#include "src/workloads/stencil.hpp"

namespace rbpeb {
namespace {

namespace fs = std::filesystem;
using bigstate::SpillDirectory;
using bigstate::SpillLayout;
using bigstate::SpillRunSet;

// ---- run storage ---------------------------------------------------------

SpillLayout layout64() { return SpillLayout{sizeof(std::uint64_t)}; }

std::vector<std::uint8_t> make_record(const SpillLayout& layout,
                                      std::uint64_t key, std::int64_t g,
                                      bool expanded,
                                      std::uint64_t parent = 0) {
  std::vector<std::uint8_t> rec(layout.record_bytes());
  std::memcpy(rec.data(), &key, sizeof(key));
  std::memcpy(rec.data() + layout.parent_offset(), &parent, sizeof(parent));
  bigstate::spill_record_store(layout, rec.data(), g,
                               Move{MoveType::Load, 0}, expanded);
  return rec;
}

std::vector<std::uint8_t> make_run(const SpillLayout& layout,
                                   const std::vector<std::vector<std::uint8_t>>&
                                       records) {
  std::vector<std::uint8_t> run;
  for (const auto& rec : records) {
    run.insert(run.end(), rec.begin(), rec.end());
  }
  bigstate::sort_spill_records(layout, run.data(), records.size());
  return run;
}

TEST(SpillRunSet, AppendLookupAndBestRecordSemantics) {
  const SpillLayout layout = layout64();
  SpillDirectory dir = SpillDirectory::create("");
  SpillRunSet runs(layout, dir.path(), 0);
  EXPECT_TRUE(runs.empty());

  // Run 1: key 5 open at g=10, key 9 expanded at g=4.
  auto run1 = make_run(layout, {make_record(layout, 5, 10, false),
                                make_record(layout, 9, 4, true)});
  ASSERT_TRUE(runs.append_run(run1.data(), 2));
  // Run 2: key 5 again, now expanded at the smaller g=7 (later knowledge).
  auto run2 = make_run(layout, {make_record(layout, 5, 7, true)});
  ASSERT_TRUE(runs.append_run(run2.data(), 1));
  EXPECT_EQ(runs.records_spilled(), 3u);
  EXPECT_GT(runs.bytes_written(), 0u);

  std::vector<std::uint8_t> rec(layout.record_bytes());
  std::uint64_t key = 5;
  std::vector<std::uint8_t> key_buf(sizeof(key));
  std::memcpy(key_buf.data(), &key, sizeof(key));
  ASSERT_TRUE(runs.lookup(key_buf.data(), rec.data()));
  EXPECT_EQ(bigstate::spill_record_g(layout, rec.data()), 7);
  EXPECT_TRUE(bigstate::spill_record_expanded(layout, rec.data()));
  key = 42;  // never spilled
  std::memcpy(key_buf.data(), &key, sizeof(key));
  EXPECT_FALSE(runs.lookup(key_buf.data(), rec.data()));

  // Batched form agrees with the point lookups and counts one merge pass.
  const std::size_t passes_before = runs.merge_passes();
  std::vector<std::uint64_t> query_keys = {5, 9, 42};
  std::sort(query_keys.begin(), query_keys.end(),
            [](std::uint64_t a, std::uint64_t b) {
              return std::memcmp(&a, &b, sizeof(a)) < 0;
            });
  std::vector<std::uint8_t> keys(query_keys.size() * sizeof(std::uint64_t));
  std::memcpy(keys.data(), query_keys.data(), keys.size());
  std::size_t matches = 0;
  runs.batch_lookup(keys.data(), query_keys.size(),
                    [&](std::size_t, const std::uint8_t*) { ++matches; });
  EXPECT_EQ(matches, 2u);
  EXPECT_EQ(runs.merge_passes(), passes_before + 1);
}

TEST(SpillRunSet, CompactionFoldsRunsKeepingTheBestRecord) {
  const SpillLayout layout = layout64();
  SpillDirectory dir = SpillDirectory::create("");
  SpillRunSet runs(layout, dir.path(), 0);
  // Push enough runs to trip compaction (kMaxRuns = 8): key k appears in
  // many runs with decreasing g; the survivor must be the smallest.
  for (int round = 0; round < 12; ++round) {
    std::vector<std::vector<std::uint8_t>> records;
    for (std::uint64_t k = 0; k < 16; ++k) {
      records.push_back(
          make_record(layout, k, 100 - round, (round % 2) == 1));
    }
    auto run = make_run(layout, records);
    ASSERT_TRUE(runs.append_run(run.data(), records.size()));
  }
  EXPECT_LE(runs.run_count(), 8u);
  EXPECT_GT(runs.merge_passes(), 0u);
  std::vector<std::uint8_t> rec(layout.record_bytes());
  const std::uint64_t key = 3;
  std::vector<std::uint8_t> key_buf(sizeof(key));
  std::memcpy(key_buf.data(), &key, sizeof(key));
  ASSERT_TRUE(runs.lookup(key_buf.data(), rec.data()));
  EXPECT_EQ(bigstate::spill_record_g(layout, rec.data()), 100 - 11);
}

TEST(SpillRunSet, DiskBudgetRefusesAppendsAfterCompacting) {
  const SpillLayout layout = layout64();
  SpillDirectory dir = SpillDirectory::create("");
  // Room for a handful of records only.
  SpillRunSet runs(layout, dir.path(), 8 * layout.record_bytes());
  auto run = make_run(layout, {make_record(layout, 1, 1, false),
                               make_record(layout, 2, 1, false),
                               make_record(layout, 3, 1, false)});
  ASSERT_TRUE(runs.append_run(run.data(), 3));
  auto run2 = make_run(layout, {make_record(layout, 4, 1, false),
                                make_record(layout, 5, 1, false),
                                make_record(layout, 6, 1, false)});
  ASSERT_TRUE(runs.append_run(run2.data(), 3));
  // A third distinct batch cannot fit even after compaction folds 1+2.
  auto run3 = make_run(layout, {make_record(layout, 7, 1, false),
                                make_record(layout, 8, 1, false),
                                make_record(layout, 9, 1, false)});
  EXPECT_FALSE(runs.append_run(run3.data(), 3));
  // The set stays consistent: earlier records still resolve.
  std::vector<std::uint8_t> rec(layout.record_bytes());
  const std::uint64_t key = 2;
  std::vector<std::uint8_t> key_buf(sizeof(key));
  std::memcpy(key_buf.data(), &key, sizeof(key));
  EXPECT_TRUE(runs.lookup(key_buf.data(), rec.data()));
}

TEST(SpillDirectory, RemovesItsTreeOnDestruction) {
  std::string path;
  {
    SpillDirectory dir = SpillDirectory::create("");
    path = dir.path();
    ASSERT_TRUE(fs::exists(path));
    const std::string shard = dir.partition("shard-0");
    ASSERT_TRUE(fs::exists(shard));
    std::ofstream(fs::path(shard) / "run-0.spill") << "bytes";
  }
  EXPECT_FALSE(fs::exists(path));
}

// ---- the spilling searches ----------------------------------------------

struct SolveOutcome {
  std::optional<ExactResult> result;
  ExactSearchStats stats;
};

SolveOutcome solve_astar(const Engine& engine, const ExactSearchOptions& opt) {
  SolveOutcome out;
  out.result = try_solve_exact_astar(engine, opt, &out.stats);
  return out;
}

SolveOutcome solve_hda(const Engine& engine, std::size_t threads,
                       const ExactSearchOptions& opt) {
  SolveOutcome out;
  out.result = try_solve_hda_astar(engine, threads, opt, &out.stats);
  return out;
}

/// The headline invariant: a search squeezed through a budget ~500x smaller
/// than its closed table must reproduce the unbudgeted search bit for bit —
/// same optimal cost AND same expansion count — because delayed duplicate
/// detection never expands a state the in-memory search would not.
TEST(SpillSearch, TinyBudgetReproducesInMemoryCostsAndExpansions) {
  struct Case {
    Dag dag;
    Model model;
    bool force_var;
  };
  const Case cases[] = {
      {make_stencil1d_dag(2, 14).dag, Model::nodel(), false},   // 30 nodes
      {make_stencil1d_dag(2, 14).dag, Model::nodel(), true},    // var states
  };
  for (const Case& c : cases) {
    Engine engine(c.dag, c.model, min_red_pebbles(c.dag));
    ExactSearchOptions unbudgeted;
    unbudgeted.max_states = 4'000'000;
    unbudgeted.force_var_state = c.force_var;
    SolveOutcome reference = solve_astar(engine, unbudgeted);
    ASSERT_TRUE(reference.result.has_value());

    ExactSearchOptions tiny = unbudgeted;
    tiny.max_memory_bytes = std::size_t{64} << 10;
    SolveOutcome spilled = solve_astar(engine, tiny);
    ASSERT_TRUE(spilled.result.has_value())
        << c.model.name() << " force_var=" << c.force_var;
    EXPECT_EQ(spilled.result->cost, reference.result->cost);
    EXPECT_EQ(spilled.stats.states_expanded, reference.stats.states_expanded)
        << c.model.name() << " force_var=" << c.force_var;
    EXPECT_GT(spilled.stats.spilled_states, 0u);
    EXPECT_GT(spilled.stats.spill_bytes, 0u);
    EXPECT_GT(spilled.stats.merge_passes, 0u);
    EXPECT_EQ(reference.stats.spilled_states, 0u);  // unbudgeted never spills
    EXPECT_EQ(verify_or_throw(engine, spilled.result->trace).total,
              spilled.result->cost);
  }
}

TEST(SpillSearch, SearchesSmallerThanTheWorkingSetFloorNeverSpill) {
  // A 48-node chain's whole search fits a few hundred states: below the
  // eviction floor the budget is best-effort and the table never sheds —
  // spilling a table this small would only fragment the runs. Costs and
  // counts still match the unbudgeted search exactly (here trivially).
  Dag dag = make_chain_dag(48);
  Engine engine(dag, Model::oneshot(), 2);
  ExactSearchOptions unbudgeted;
  SolveOutcome reference = solve_astar(engine, unbudgeted);
  ASSERT_TRUE(reference.result.has_value());
  ExactSearchOptions tiny;
  tiny.max_memory_bytes = std::size_t{64} << 10;
  SolveOutcome spilled = solve_astar(engine, tiny);
  ASSERT_TRUE(spilled.result.has_value());
  EXPECT_EQ(spilled.result->cost, reference.result->cost);
  EXPECT_EQ(spilled.stats.states_expanded, reference.stats.states_expanded);
  EXPECT_EQ(spilled.stats.spilled_states, 0u);
}

TEST(SpillSearch, MultiRoundMergePassesUnderSustainedEviction) {
  // A 64 KiB budget on a 30-node stencil forces eviction rounds well past
  // the first: the delayed duplicate check must keep being exercised
  // against a growing, repeatedly compacted run set.
  Dag dag = make_stencil1d_dag(2, 14).dag;
  Engine engine(dag, Model::nodel(), min_red_pebbles(dag));
  ExactSearchOptions options;
  options.max_memory_bytes = std::size_t{64} << 10;
  SolveOutcome out = solve_astar(engine, options);
  ASSERT_TRUE(out.result.has_value());
  EXPECT_GE(out.stats.merge_passes, 2u);
  // Re-spilled entries make the cumulative count exceed any single table.
  EXPECT_GT(out.stats.spilled_states, 1000u);
}

TEST(SpillSearch, HdaShardsSpillIntoPrivatePartitionsAndAgree) {
  Dag dag = make_random_layered_dag({.layers = 3, .width = 4, .indegree = 2,
                                     .seed = 6});
  Engine engine(dag, Model::oneshot(), min_red_pebbles(dag));
  ExactSearchOptions unbudgeted;
  SolveOutcome reference = solve_astar(engine, unbudgeted);
  ASSERT_TRUE(reference.result.has_value());

  // 100 KB across two shards: both spill (the budget that used to kill this
  // exact instance in the PR-4 MemoryBudget test now just slows it down).
  ExactSearchOptions tiny;
  tiny.max_memory_bytes = 100'000;
  SolveOutcome spilled = solve_hda(engine, 2, tiny);
  ASSERT_TRUE(spilled.result.has_value());
  EXPECT_EQ(spilled.result->cost, reference.result->cost);
  EXPECT_GT(spilled.stats.spilled_states, 0u);
  EXPECT_EQ(spilled.stats.threads_used, 2u);
  EXPECT_EQ(verify_or_throw(engine, spilled.result->trace).total,
            spilled.result->cost);
}

TEST(SpillSearch, CancellationRemovesSpillFiles) {
  Dag dag = make_stencil1d_dag(2, 14).dag;
  Engine engine(dag, Model::nodel(), min_red_pebbles(dag));
  const fs::path base = fs::temp_directory_path() / "rbpeb-spill-cancel-test";
  fs::create_directories(base);
  ExactSearchOptions options;
  options.max_memory_bytes = std::size_t{64} << 10;
  options.spill = SpillMode::Path;
  options.spill_path = base.string();
  std::atomic<std::size_t> polls{0};
  // Fire after enough poll intervals for eviction to have written runs.
  options.should_stop = [&] { return ++polls > 40; };
  SolveOutcome out = solve_astar(engine, options);
  EXPECT_EQ(out.result, std::nullopt);
  EXPECT_EQ(out.stats.termination, ExactTermination::Stopped);
  EXPECT_GT(out.stats.spilled_states, 0u);  // files existed mid-search...
  EXPECT_TRUE(fs::is_empty(base));          // ...and are gone afterwards
  fs::remove_all(base);
}

TEST(SpillSearch, DiskBudgetExhaustionTerminatesGracefully) {
  Dag dag = make_stencil1d_dag(2, 14).dag;
  Engine engine(dag, Model::nodel(), min_red_pebbles(dag));
  ExactSearchOptions options;
  options.max_memory_bytes = std::size_t{64} << 10;
  options.max_disk_bytes = 20'000;  // a few hundred records at most
  SolveOutcome out = solve_astar(engine, options);
  EXPECT_EQ(out.result, std::nullopt);
  EXPECT_EQ(out.stats.termination, ExactTermination::MemoryBudget);
  EXPECT_GT(out.stats.states_expanded, 0u);
  EXPECT_GT(out.stats.spilled_states, 0u);
}

/// The acceptance instances: a 46-node nodel stencil and a 48-node oneshot
/// chain prove optimality under --budget-memory 32m --budget-disk 2g, with
/// costs identical to the unbudgeted run, for both exact searches. 32 MiB
/// genuinely undercuts the stencil's in-memory footprint once the PDB
/// tables and bucket arrays are charged against it, so this certifies the
/// spill path end to end on variable-width states.
TEST(SpillAcceptance, BudgetedSearchesMatchUnbudgetedOn46And48Nodes) {
  struct Case {
    Dag dag;
    Model model;
  };
  const Case cases[] = {
      {make_stencil1d_dag(2, 22).dag, Model::nodel()},  // 46 nodes
      {make_chain_dag(48), Model::oneshot()},
  };
  for (const Case& c : cases) {
    Engine engine(c.dag, c.model, min_red_pebbles(c.dag));
    ExactSearchOptions unbudgeted;
    unbudgeted.max_states = 8'000'000;
    SolveOutcome reference = solve_astar(engine, unbudgeted);
    ASSERT_TRUE(reference.result.has_value());

    ExactSearchOptions budgeted = unbudgeted;
    budgeted.max_memory_bytes = std::size_t{32} << 20;
    budgeted.max_disk_bytes = std::size_t{2} << 30;
    SolveOutcome astar = solve_astar(engine, budgeted);
    ASSERT_TRUE(astar.result.has_value()) << c.model.name();
    EXPECT_EQ(astar.result->cost, reference.result->cost);
    EXPECT_EQ(astar.stats.states_expanded, reference.stats.states_expanded)
        << c.model.name();
    EXPECT_EQ(astar.stats.termination, ExactTermination::Solved);
    EXPECT_EQ(verify_or_throw(engine, astar.result->trace).total,
              astar.result->cost);

    SolveOutcome hda = solve_hda(engine, 4, budgeted);
    ASSERT_TRUE(hda.result.has_value()) << c.model.name();
    EXPECT_EQ(hda.result->cost, reference.result->cost);
    EXPECT_EQ(verify_or_throw(engine, hda.result->trace).total,
              hda.result->cost);
  }
}

/// Regression: a slot-array rehash keeps the old and the new arrays alive
/// simultaneously, and that transient must count against the byte budget —
/// the table used to charge only the new array, overshooting the budget by
/// half the peak at every growth. A budget that covers the steady state but
/// not the transient must refuse the insert cleanly (spilling off), never
/// allocate past the cap.
TEST(SpillTable, RehashTransientCountsAgainstTheMemoryBudget) {
  using Table = SpillingClosedTable<PackedState64>;
  using Relax = Table::Relax;
  const Move via{MoveType::Load, 0};

  // Measure one slot slab with an unbudgeted table: the first insert
  // allocates the initial power-of-two array and fixed-width keys carry no
  // heap bytes, so bytes() is exactly slab_slots * sizeof(Slot).
  Table probe(16, 0, "", 0);
  ASSERT_EQ(probe.relax(0, 0, 0, via), Relax::Inserted);
  const std::size_t slab_bytes = probe.bytes();
  ASSERT_GT(slab_bytes, 0u);

  // Growth doubles the array when the load factor hits 3/4, so the rehash
  // peak is (old + new) = 3 slabs. One byte under it must refuse exactly at
  // the growth insert, with the table still inside its budget.
  const std::size_t peak_bytes = 3 * slab_bytes;
  Table tight(16, peak_bytes - 1, "", 0);
  std::uint64_t key = 0;
  std::size_t inserted = 0;
  Relax last = Relax::Inserted;
  while (inserted < 10'000) {
    last = tight.relax(++key, 0, 0, via);
    if (last != Relax::Inserted) break;
    ++inserted;
    ASSERT_LE(tight.bytes(), tight.max_bytes());
  }
  EXPECT_EQ(last, Relax::OutOfMemory);
  ASSERT_LE(tight.bytes(), tight.max_bytes());
  EXPECT_EQ(tight.bytes(), slab_bytes);  // still the first slab, un-grown

  // With the transient covered, the same insert sequence sails through the
  // growth — the refusal above was the transient accounting, nothing else.
  Table roomy(16, peak_bytes, "", 0);
  for (std::uint64_t k = 1; k <= inserted + 1; ++k) {
    ASSERT_EQ(roomy.relax(k, 0, 0, via), Relax::Inserted) << k;
  }
  EXPECT_GT(roomy.bytes(), slab_bytes);  // it grew
  EXPECT_LE(roomy.bytes(), roomy.max_bytes());
}

}  // namespace
}  // namespace rbpeb
