// The anytime tier: weighted-A* passes must converge to the proven optimum
// when the budget allows, must return a verified incumbent with a sound
// machine-checkable certificate when it does not, and must carry that
// certificate intact through the solver registry — including on instances
// far past what exact search can finish.
#include "src/solvers/anytime_astar.hpp"

#include <gtest/gtest.h>

#include "src/graph/dag_builder.hpp"
#include "src/pebble/bounds.hpp"
#include "src/pebble/verifier.hpp"
#include "src/solvers/api.hpp"
#include "src/solvers/exact_astar.hpp"
#include "src/solvers/greedy.hpp"
#include "src/support/check.hpp"
#include "src/workloads/chain.hpp"
#include "src/workloads/random_layered.hpp"
#include "src/workloads/stencil.hpp"

namespace rbpeb {
namespace {

/// A verified greedy pebbling as an IncumbentSeed (cost in scaled units).
IncumbentSeed greedy_seed(const Engine& engine) {
  Trace trace = solve_greedy(engine);
  const Rational cost = verify_or_throw(engine, trace).total;
  const Rational scaled = cost * Rational(engine.model().epsilon().den());
  RBPEB_ENSURE(scaled.den() == 1, "seed cost must be integral in scaled units");
  return IncumbentSeed{std::move(trace), scaled.num()};
}

// ---- convergence: full budget ⇒ a proof ----------------------------------

/// With the budget to finish, every pass schedule ends in epsilon == 0 and
/// the exact-astar optimum, on every model.
TEST(AnytimeAstar, FullBudgetProvesTheOptimumOnEveryModel) {
  Dag dag = make_random_layered_dag({.layers = 4, .width = 3, .indegree = 2,
                                     .seed = 61});  // 12 nodes
  for (const Model& model : all_models()) {
    Engine engine(dag, model, min_red_pebbles(dag));
    ExactSearchOptions options;
    options.max_states = 4'000'000;
    auto exact = try_solve_exact_astar(engine, options);
    ASSERT_TRUE(exact.has_value()) << model.name();
    ExactSearchStats stats;
    auto anytime = try_solve_anytime_astar(engine, options, {}, &stats);
    ASSERT_TRUE(anytime.has_value()) << model.name();
    EXPECT_TRUE(anytime->optimal) << model.name();
    EXPECT_TRUE(anytime->certified) << model.name();
    EXPECT_EQ(anytime->epsilon, Rational(0)) << model.name();
    EXPECT_EQ(anytime->cost, exact->cost) << model.name();
    EXPECT_EQ(anytime->lower_bound, anytime->cost) << model.name();
    EXPECT_EQ(verify_or_throw(engine, anytime->trace).total, anytime->cost)
        << model.name();
    EXPECT_EQ(stats.termination, ExactTermination::Solved) << model.name();
    EXPECT_GE(stats.anytime_passes, 1u) << model.name();
  }
}

// ---- starved budgets ⇒ a certificate, never a lie ------------------------

/// A budget too small to prove anything still returns the seed with a sound
/// certificate: cost ≤ (1+ε)·L in exact rationals, and L at or below the
/// true optimum (computed independently).
TEST(AnytimeAstar, StarvedBudgetReturnsSoundCertificate) {
  Dag dag = make_random_layered_dag({.layers = 6, .width = 4, .indegree = 2,
                                     .seed = 62});  // 24 nodes
  Engine engine(dag, Model::nodel(), min_red_pebbles(dag));
  ExactSearchOptions exact_options;
  exact_options.max_states = 4'000'000;
  auto exact = try_solve_exact_astar(engine, exact_options);
  ASSERT_TRUE(exact.has_value());

  ExactSearchOptions options;
  options.max_states = 200;  // a few hundred expansions: no proof possible
  options.seed = greedy_seed(engine);
  ExactSearchStats stats;
  auto anytime = try_solve_anytime_astar(engine, options, {}, &stats);
  ASSERT_TRUE(anytime.has_value());
  EXPECT_EQ(verify_or_throw(engine, anytime->trace).total, anytime->cost);
  ASSERT_TRUE(anytime->certified);
  // The defining inequality, in exact arithmetic.
  EXPECT_LE(anytime->cost,
            (Rational(1) + anytime->epsilon) * anytime->lower_bound);
  // The witness really is a lower bound on the optimum.
  EXPECT_LE(anytime->lower_bound, exact->cost);
  // And the incumbent is the verified seed or something cheaper.
  EXPECT_LE(anytime->cost, Rational(options.seed->g_scaled,
                                    engine.model().epsilon().den()));
  if (!anytime->optimal) {
    EXPECT_LT(anytime->lower_bound, anytime->cost);
    EXPECT_LT(Rational(0), anytime->epsilon);
  }
}

/// Tightening budgets only ever tighten the guarantee: more states must
/// never yield a larger ε on the same instance and schedule.
TEST(AnytimeAstar, LargerBudgetsNeverLoosenEpsilon) {
  Dag dag = make_random_layered_dag({.layers = 6, .width = 4, .indegree = 2,
                                     .seed = 63});  // 24 nodes
  Engine engine(dag, Model::nodel(), min_red_pebbles(dag));
  std::optional<Rational> last_epsilon;
  for (std::size_t budget : {400u, 20'000u, 1'000'000u}) {
    ExactSearchOptions options;
    options.max_states = budget;
    options.seed = greedy_seed(engine);
    auto anytime = try_solve_anytime_astar(engine, options);
    ASSERT_TRUE(anytime.has_value()) << budget;
    ASSERT_TRUE(anytime->certified) << budget;
    if (last_epsilon.has_value()) {
      EXPECT_LE(anytime->epsilon, *last_epsilon) << budget;
    }
    last_epsilon = anytime->epsilon;
  }
}

// ---- the tier's reason to exist: instances exact search cannot touch -----

/// A 192-node instance — far past the fixed-width masks and any exact-solve
/// horizon — comes back with a verified trace and a machine-checked
/// certificate on the runtime-width path.
TEST(AnytimeAstar, CertifiesA192NodeInstance) {
  Dag dag = make_random_layered_dag({.layers = 24, .width = 8, .indegree = 2,
                                     .seed = 64});  // 192 nodes
  ASSERT_EQ(dag.node_count(), 192u);
  Engine engine(dag, Model::compcost(), min_red_pebbles(dag));
  ExactSearchOptions options;
  options.max_states = 30'000;
  options.seed = greedy_seed(engine);
  ExactSearchStats stats;
  auto anytime = try_solve_anytime_astar(engine, options, {}, &stats);
  ASSERT_TRUE(anytime.has_value());
  EXPECT_EQ(verify_or_throw(engine, anytime->trace).total, anytime->cost);
  ASSERT_TRUE(anytime->certified);
  EXPECT_LT(Rational(0), anytime->lower_bound);
  EXPECT_LE(anytime->lower_bound, anytime->cost);
  EXPECT_LE(anytime->cost,
            (Rational(1) + anytime->epsilon) * anytime->lower_bound);
  // The stats mirror the certificate in scaled units.
  const std::int64_t den = engine.model().epsilon().den();
  EXPECT_EQ(Rational(stats.lower_bound_scaled, den), anytime->lower_bound);
  EXPECT_EQ(Rational(stats.incumbent_scaled, den), anytime->cost);
}

/// The target-epsilon stopping rule ends the schedule early but the
/// certificate it returns is still exact and still audited.
TEST(AnytimeAstar, TargetEpsilonStopsEarlyWithAnExactCertificate) {
  Dag dag = make_chain_dag(64);
  Engine engine(dag, Model::oneshot(), 3);
  ExactSearchOptions options;
  options.max_states = 1'000'000;
  AnytimeOptions anytime_options;
  anytime_options.target_epsilon = 1e9;  // any certificate at all satisfies it
  auto anytime = try_solve_anytime_astar(engine, options, anytime_options);
  ASSERT_TRUE(anytime.has_value());
  if (anytime->certified) {
    EXPECT_LE(anytime->cost,
              (Rational(1) + anytime->epsilon) * anytime->lower_bound);
  }
}

/// Degenerate schedules are rejected loudly: weights below 1 would break
/// the Dial-queue integrality argument, not silently misbehave.
TEST(AnytimeAstar, RejectsWeightsBelowOne) {
  Dag dag = make_chain_dag(6);
  Engine engine(dag, Model::base(), 2);
  AnytimeOptions bad;
  bad.weights = {{1, 2}};
  EXPECT_THROW(try_solve_anytime_astar(engine, {}, bad), PreconditionError);
}

// ---- through the registry ------------------------------------------------

TEST(AnytimeSolver, RegisteredAndOptimalOnSmallInstancesWithCertificate) {
  const Solver* solver = SolverRegistry::instance().find("anytime-astar");
  ASSERT_NE(solver, nullptr);
  Dag dag = make_random_layered_dag({.layers = 4, .width = 3, .indegree = 2,
                                     .seed = 65});  // 12 nodes
  Engine engine(dag, Model::oneshot(), min_red_pebbles(dag));
  SolveRequest request;
  request.engine = &engine;
  request.budget.max_states = 4'000'000;
  SolveResult result = solver->run(request);
  ASSERT_EQ(result.status, SolveStatus::Optimal) << result.detail;
  ASSERT_TRUE(result.has_trace());
  ASSERT_TRUE(result.certificate.has_value());
  EXPECT_EQ(result.certificate->epsilon, Rational(0));
  EXPECT_EQ(result.certificate->cost, result.cost);
  EXPECT_TRUE(certificate_holds(*result.certificate, result.cost));
  EXPECT_EQ(result.stats.count("anytime_passes"), 1u);
}

/// Starved through the registry: the auto greedy seed guarantees an answer
/// (Heuristic, never BudgetExhausted) and the certificate survives the
/// result plumbing.
TEST(AnytimeSolver, StarvedRequestStillAnswersWithCertificate) {
  Dag dag = make_random_layered_dag({.layers = 10, .width = 6, .indegree = 3,
                                     .seed = 66});  // 60 nodes
  Engine engine(dag, Model::compcost(), min_red_pebbles(dag));
  SolveRequest request;
  request.engine = &engine;
  request.budget.max_states = 2'000;
  SolveResult result = SolverRegistry::instance().at("anytime-astar").run(request);
  ASSERT_TRUE(result.ok()) << result.detail;
  ASSERT_TRUE(result.has_trace());
  if (result.certificate.has_value()) {
    EXPECT_TRUE(certificate_holds(*result.certificate, result.cost));
  } else {
    EXPECT_EQ(result.stats.count("certified"), 1u);
  }
}

/// The weights/epsilon options parse exactly and bad values are refused
/// with the offending token named.
TEST(AnytimeSolver, WeightScheduleOptionsParseAndValidate) {
  Dag dag = make_chain_dag(8);
  Engine engine(dag, Model::base(), 2);
  SolveRequest request;
  request.engine = &engine;
  request.budget.max_states = 100'000;
  request.options["weights"] = "4,5/2,1";
  request.options["epsilon"] = "0.25";
  const Solver& solver = SolverRegistry::instance().at("anytime-astar");
  SolveResult result = solver.run(request);
  EXPECT_TRUE(result.ok()) << result.detail;

  for (const char* bad : {"0", "1/2", "2/0", "x", ""}) {
    request.options["weights"] = bad;
    EXPECT_THROW(solver.run(request), PreconditionError) << bad;
  }
  request.options["weights"] = "2,1";
  request.options["epsilon"] = "-1";
  EXPECT_THROW(solver.run(request), PreconditionError);
}

}  // namespace
}  // namespace rbpeb
