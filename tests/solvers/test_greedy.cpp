#include "src/solvers/greedy.hpp"

#include <gtest/gtest.h>

#include "src/graph/dag_builder.hpp"
#include "src/pebble/bounds.hpp"
#include "src/pebble/verifier.hpp"
#include "src/workloads/fft.hpp"
#include "src/workloads/matmul.hpp"
#include "src/workloads/random_layered.hpp"
#include "src/workloads/tree_reduction.hpp"

namespace rbpeb {
namespace {

TEST(Greedy, ZeroCostOnChainWithEnoughPebbles) {
  DagBuilder b;
  b.add_nodes(10);
  for (NodeId v = 0; v + 1 < 10; ++v) b.add_edge(v, v + 1);
  Dag dag = b.build();
  Engine engine(dag, Model::oneshot(), 2);
  Trace trace = solve_greedy(engine);
  VerifyResult vr = verify_or_throw(engine, trace);
  EXPECT_EQ(vr.total, Rational(0));  // dead nodes deleted for free
}

TEST(Greedy, ComputesEveryNodeExactlyOnce) {
  Dag dag = make_random_layered_dag({.layers = 5, .width = 6, .indegree = 3,
                                     .seed = 4});
  Engine engine(dag, Model::oneshot(), min_red_pebbles(dag) + 1);
  Trace trace = solve_greedy(engine);
  std::vector<int> computes(dag.node_count(), 0);
  for (const Move& move : trace) {
    if (move.type == MoveType::Compute) ++computes[move.node];
  }
  for (int c : computes) EXPECT_EQ(c, 1);
  EXPECT_TRUE(verify(engine, trace).ok());
}

struct GreedyCase {
  GreedyRule rule;
  EvictionRule eviction;
};

class GreedyMatrix : public ::testing::TestWithParam<GreedyCase> {};

INSTANTIATE_TEST_SUITE_P(
    RulesByEviction, GreedyMatrix,
    ::testing::Values(
        GreedyCase{GreedyRule::MostRedInputs, EvictionRule::Lru},
        GreedyCase{GreedyRule::MostRedInputs, EvictionRule::FewestRemainingUses},
        GreedyCase{GreedyRule::MostRedInputs, EvictionRule::Random},
        GreedyCase{GreedyRule::FewestBlueInputs, EvictionRule::Lru},
        GreedyCase{GreedyRule::FewestBlueInputs, EvictionRule::FewestRemainingUses},
        GreedyCase{GreedyRule::RedRatio, EvictionRule::FewestRemainingUses},
        GreedyCase{GreedyRule::RedRatio, EvictionRule::Random}),
    [](const auto& info) {
      std::string name = std::string(to_string(info.param.rule)) + "_" +
                         to_string(info.param.eviction);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Property: every rule/eviction combination yields a legal, complete
// pebbling within the universal cost bound, in every model.
TEST_P(GreedyMatrix, ValidAndBoundedOnWorkloads) {
  GreedyOptions options;
  options.rule = GetParam().rule;
  options.eviction = GetParam().eviction;

  std::vector<Dag> dags;
  dags.push_back(make_matmul_dag(3).dag);
  dags.push_back(make_fft_dag(8).dag);
  dags.push_back(make_tree_reduction_dag(13).dag);
  for (const Dag& dag : dags) {
    for (const Model& model : all_models()) {
      Engine engine(dag, model, min_red_pebbles(dag) + 2);
      Trace trace = solve_greedy(engine, options);
      VerifyResult vr = verify(engine, trace);
      ASSERT_TRUE(vr.ok()) << model.name() << ": " << vr.error;
      EXPECT_LE(vr.total, universal_cost_upper_bound(dag, model));
    }
  }
}

TEST(Greedy, MoreRedPebblesNeverHurtMuch) {
  // Not a theorem for greedy, but a sanity property on regular workloads:
  // doubling the cache should not increase the cost.
  Dag dag = make_matmul_dag(4).dag;
  Engine small(dag, Model::oneshot(), 3);
  Engine large(dag, Model::oneshot(), 12);
  Rational cost_small = verify_or_throw(small, solve_greedy(small)).total;
  Rational cost_large = verify_or_throw(large, solve_greedy(large)).total;
  EXPECT_LE(cost_large, cost_small);
}

TEST(Greedy, DeterministicForFixedSeed) {
  Dag dag = make_fft_dag(16).dag;
  GreedyOptions options;
  options.eviction = EvictionRule::Random;
  options.seed = 99;
  Engine engine(dag, Model::oneshot(), 4);
  Trace a = solve_greedy(engine, options);
  Trace b = solve_greedy(engine, options);
  EXPECT_EQ(a.moves(), b.moves());
}

TEST(Greedy, EagerDeleteDisabledStillValid) {
  // With eager deletion off, dead pebbles are only dropped when an eviction
  // actually needs the slot; the trace must stay valid and no more expensive
  // than the universal bound.
  Dag dag = make_tree_reduction_dag(9).dag;
  GreedyOptions options;
  options.eager_delete_dead = false;
  Engine engine(dag, Model::oneshot(), 3);
  Trace trace = solve_greedy(engine, options);
  VerifyResult vr = verify(engine, trace);
  EXPECT_TRUE(vr.ok()) << vr.error;
  EXPECT_LE(vr.total, universal_cost_upper_bound(dag, Model::oneshot()));
}

TEST(Greedy, SinksRetainPebbles) {
  Dag dag = make_fft_dag(8).dag;
  Engine engine(dag, Model::oneshot(), 3);
  VerifyResult vr = verify_or_throw(engine, solve_greedy(engine));
  for (NodeId sink : dag.sinks()) {
    EXPECT_FALSE(vr.final_state.is_empty(sink));
  }
}

TEST(GreedyRuleNames, Render) {
  EXPECT_STREQ(to_string(GreedyRule::MostRedInputs), "most-red-inputs");
  EXPECT_STREQ(to_string(GreedyRule::FewestBlueInputs), "fewest-blue-inputs");
  EXPECT_STREQ(to_string(GreedyRule::RedRatio), "red-ratio");
  EXPECT_STREQ(to_string(EvictionRule::Lru), "lru");
  EXPECT_STREQ(to_string(EvictionRule::FewestRemainingUses), "fewest-uses");
  EXPECT_STREQ(to_string(EvictionRule::Random), "random");
}

}  // namespace
}  // namespace rbpeb
