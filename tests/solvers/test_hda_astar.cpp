// The hda-astar differential harness: hash-distributed A* must return the
// same provably optimal cost as the sequential searches at *any* thread
// count — 1, 2, and 8 workers are exercised on every fuzzed instance across
// the four models and both pebbling conventions. Plus cooperative-budget
// coverage: cancellation mid-search joins every worker and still aggregates
// exact expansion totals through the shared atomic.
#include "src/solvers/hda/hda_astar.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "src/graph/dag_builder.hpp"
#include "src/pebble/bounds.hpp"
#include "src/pebble/verifier.hpp"
#include "src/solvers/api.hpp"
#include "src/solvers/exact.hpp"
#include "src/solvers/exact_astar.hpp"
#include "src/solvers/packed_state.hpp"
#include "src/solvers/portfolio.hpp"
#include "src/support/check.hpp"
#include "src/workloads/chain.hpp"
#include "src/workloads/random_layered.hpp"
#include "src/workloads/tree_reduction.hpp"

namespace rbpeb {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

// Dijkstra is ground truth; exact-astar is the sequential informed search
// hda-astar must reproduce; each worker count is an independent claim.
void expect_same_optimum_at_every_thread_count(const Engine& engine,
                                               const std::string& label) {
  auto dijkstra = try_solve_exact(engine, 6'000'000);
  auto astar = try_solve_exact_astar(engine, 6'000'000);
  ASSERT_TRUE(dijkstra.has_value()) << label;
  ASSERT_TRUE(astar.has_value()) << label;
  ASSERT_EQ(dijkstra->cost, astar->cost) << label;
  for (std::size_t threads : kThreadCounts) {
    ExactSearchStats stats;
    auto hda = try_solve_hda_astar(engine, threads, 6'000'000, {}, &stats);
    const std::string at = label + " threads=" + std::to_string(threads);
    ASSERT_TRUE(hda.has_value()) << at;
    EXPECT_EQ(hda->cost, dijkstra->cost) << at;
    EXPECT_EQ(stats.termination, ExactTermination::Solved) << at;
    // The trace replays to the reported cost under the strict engine.
    EXPECT_EQ(verify_or_throw(engine, hda->trace).total, hda->cost) << at;
  }
}

class HdaMatchesSequential : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Fuzz, HdaMatchesSequential,
                         ::testing::Values<std::uint64_t>(1, 2, 3));

TEST_P(HdaMatchesSequential, OnRandomLayeredDagsAcrossAllModels) {
  const std::uint64_t seed = GetParam();
  for (const RandomLayeredSpec& spec :
       {RandomLayeredSpec{.layers = 3, .width = 3, .indegree = 2, .seed = 0},
        RandomLayeredSpec{.layers = 4, .width = 2, .indegree = 2, .seed = 0}}) {
    RandomLayeredSpec seeded = spec;
    seeded.seed = seed;
    Dag dag = make_random_layered_dag(seeded);
    const std::size_t r = min_red_pebbles(dag);
    for (const Model& model : all_models()) {
      Engine engine(dag, model, r);
      expect_same_optimum_at_every_thread_count(
          engine, model.name() + " seed=" + std::to_string(seed));
    }
  }
}

TEST(HdaMatchesSequential, UnderBothHongKungConventions) {
  Dag dag = make_tree_reduction_dag(4).dag;  // 7 nodes
  for (const Model& model : all_models()) {
    for (bool sources_blue : {false, true}) {
      for (bool sinks_blue : {false, true}) {
        Engine engine(dag, model, 3,
                      PebblingConvention{.sources_start_blue = sources_blue,
                                         .sinks_end_blue = sinks_blue});
        expect_same_optimum_at_every_thread_count(
            engine, model.name() + " sources_blue=" +
                        std::to_string(sources_blue) + " sinks_blue=" +
                        std::to_string(sinks_blue));
      }
    }
  }
}

TEST(HdaMatchesSequential, RepeatedRunsAreDeterministicInCost) {
  // Expansion order varies run to run under real concurrency; the certified
  // optimum must not.
  Dag dag = make_random_layered_dag({.layers = 3, .width = 3, .indegree = 2,
                                     .seed = 9});
  Engine engine(dag, Model::oneshot(), min_red_pebbles(dag));
  const ExactResult reference = solve_hda_astar(engine, 1);
  for (int run = 0; run < 3; ++run) {
    EXPECT_EQ(solve_hda_astar(engine, 8).cost, reference.cost) << run;
  }
}

// ---- beyond the sequential Dijkstra cap ----------------------------------

TEST(HdaScale, SolvesAChainDijkstraCannotTouch) {
  Dag dag = make_chain_dag(30);  // well past the 21-node Dijkstra cap
  Engine engine(dag, Model::oneshot(), 2);
  EXPECT_THROW(solve_exact(engine), PreconditionError);
  ExactResult result = solve_hda_astar(engine, 4);
  // A 2-pebble sliding window computes the chain with no transfers at all.
  EXPECT_EQ(result.cost, Rational(0));
  EXPECT_TRUE(verify(engine, result.trace).ok());
}

TEST(HdaScale, MatchesExactAstarOnA26NodeLayeredDagInNodel) {
  Dag dag = make_random_layered_dag({.layers = 13, .width = 2, .indegree = 2,
                                     .seed = 3});  // 26 nodes: wide path only
  ASSERT_GT(dag.node_count(), PackedState64::max_nodes());
  Engine engine(dag, Model::nodel(), min_red_pebbles(dag));
  ExactResult sequential = solve_exact_astar(engine, 4'000'000);
  ExactResult parallel = solve_hda_astar(engine, 8, 4'000'000);
  EXPECT_EQ(parallel.cost, sequential.cost);
}

TEST(HdaScale, RejectsDagsBeyondTheBigstateCap) {
  DagBuilder b;
  b.add_nodes(kHdaAstarMaxNodes + 1);
  Dag dag = b.build();
  Engine engine(dag, Model::oneshot(), 1);
  EXPECT_THROW(solve_hda_astar(engine), PreconditionError);
  SolveRequest request;
  request.engine = &engine;
  SolveResult result = SolverRegistry::instance().at("hda-astar").run(request);
  EXPECT_EQ(result.status, SolveStatus::Inapplicable);
}

TEST(HdaScale, SerialInstancesFallBackToOneWorker) {
  // A chain's search frontier is one state; hash-sharding it across workers
  // is all hand-off latency. The search must detect level width 1 and run
  // sequentially no matter how many threads were granted.
  Dag dag = make_chain_dag(30);
  Engine engine(dag, Model::oneshot(), 2);
  ExactSearchStats stats;
  auto result = try_solve_hda_astar(engine, 8, 2'000'000, {}, &stats);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->cost, Rational(0));
  EXPECT_EQ(stats.threads_used, 1u);
  // A branching instance keeps its grant.
  Dag tree = make_tree_reduction_dag(4).dag;
  Engine tree_engine(tree, Model::oneshot(), 3);
  ASSERT_TRUE(try_solve_hda_astar(tree_engine, 2, 2'000'000, {}, &stats)
                  .has_value());
  EXPECT_EQ(stats.threads_used, 2u);
}

TEST(HdaScale, ChainAtEightThreadsStaysWithin5xOfOneThread) {
  // ROADMAP regression: chain30 solved in ~1 ms sequentially but took
  // hundreds of ms at 8 threads before the serial fallback existed. With
  // the fallback both land on the same code path, so 5x (plus a floor
  // absorbing timer noise on millisecond runs) is generous.
  Dag dag = make_chain_dag(30);
  Engine engine(dag, Model::oneshot(), 2);
  auto best_of = [&](std::size_t threads) {
    double best_ms = 1e100;
    for (int run = 0; run < 3; ++run) {
      const auto start = std::chrono::steady_clock::now();
      ExactResult result = solve_hda_astar(engine, threads);
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      EXPECT_EQ(result.cost, Rational(0)) << threads;
      best_ms = std::min(best_ms, ms);
    }
    return best_ms;
  };
  const double one = best_of(1);
  const double eight = best_of(8);
  EXPECT_LE(eight, std::max(5.0 * one, 50.0));
}

TEST(HdaScale, RejectsAbsurdThreadCounts) {
  EXPECT_THROW(hda_resolve_threads(kHdaAstarMaxThreads + 1),
               PreconditionError);
  EXPECT_GE(hda_resolve_threads(0), 1u);  // 0 = hardware concurrency
  EXPECT_EQ(hda_resolve_threads(5), 5u);
}

// ---- budgets, cancellation, and stats aggregation ------------------------

TEST(HdaBudget, StateBudgetLandsOnTheExactTotalAtAnyThreadCount) {
  Dag dag = make_random_layered_dag({.layers = 3, .width = 4, .indegree = 2,
                                     .seed = 6});
  Engine engine(dag, Model::oneshot(), min_red_pebbles(dag));
  for (std::size_t threads : kThreadCounts) {
    ExactSearchStats stats;
    EXPECT_EQ(try_solve_hda_astar(engine, threads, 10, {}, &stats),
              std::nullopt)
        << threads;
    EXPECT_EQ(stats.termination, ExactTermination::StateBudget) << threads;
    // Workers reserve expansion tickets from one shared atomic, so the
    // budget bites at exactly 10 no matter how many raced.
    EXPECT_EQ(stats.states_expanded, 10u) << threads;
  }
}

TEST(HdaBudget, ExpiredDeadlineStopsEveryWorkerBeforeAnyExpansion) {
  Dag dag = make_random_layered_dag({.layers = 3, .width = 4, .indegree = 2,
                                     .seed = 6});
  Engine engine(dag, Model::oneshot(), min_red_pebbles(dag));
  ExactSearchStats stats;
  auto already_expired = [] { return true; };
  EXPECT_EQ(try_solve_hda_astar(engine, 8, 2'000'000, already_expired, &stats),
            std::nullopt);
  EXPECT_EQ(stats.termination, ExactTermination::Stopped);
  EXPECT_EQ(stats.states_expanded, 0u);
}

TEST(HdaBudget, CancellationMidSearchJoinsAllWorkersAndAggregatesStats) {
  // A 42-node compcost instance keeps 8 workers busy far longer than the
  // cancellation delay; the flag must stop every worker (the call returning
  // at all proves they joined) with the partial expansion total intact.
  Dag dag = make_random_layered_dag({.layers = 14, .width = 3, .indegree = 2,
                                     .seed = 2});
  ASSERT_EQ(dag.node_count(), 42u);
  Engine engine(dag, Model::compcost(), min_red_pebbles(dag));
  std::atomic<bool> cancel{false};
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    cancel.store(true);
  });
  ExactSearchStats stats;
  auto result = try_solve_hda_astar(
      engine, 8, 500'000'000, [&] { return cancel.load(); }, &stats);
  canceller.join();
  EXPECT_EQ(result, std::nullopt);
  EXPECT_EQ(stats.termination, ExactTermination::Stopped);
  EXPECT_GT(stats.states_expanded, 0u);
}

TEST(HdaApi, BudgetExhaustionReportsPartialStatsAndThreads) {
  Dag dag = make_random_layered_dag({.layers = 3, .width = 4, .indegree = 2,
                                     .seed = 6});
  Engine engine(dag, Model::oneshot(), min_red_pebbles(dag));
  SolveRequest request;
  request.engine = &engine;
  request.budget.max_states = 10;
  request.budget.threads = 2;
  SolveResult result = SolverRegistry::instance().at("hda-astar").run(request);
  EXPECT_EQ(result.status, SolveStatus::BudgetExhausted);
  EXPECT_EQ(result.stats.at("states_expanded"), "10");
  EXPECT_EQ(result.stats.at("max_states"), "10");
  EXPECT_EQ(result.stats.at("threads"), "2");
}

TEST(HdaApi, ThreadsOptionOverridesTheBudgetField) {
  Dag dag = make_chain_dag(6);
  Engine engine(dag, Model::oneshot(), 2);
  SolveRequest request;
  request.engine = &engine;
  request.budget.threads = 1;
  request.options["threads"] = "3";
  SolveResult result = SolverRegistry::instance().at("hda-astar").run(request);
  ASSERT_EQ(result.status, SolveStatus::Optimal);
  EXPECT_EQ(result.stats.at("threads"), "3");
  EXPECT_EQ(result.cost, verify_or_throw(engine, *result.trace).total);
}

TEST(HdaApi, MalformedThreadsOptionFailsLoudly) {
  Dag dag = make_chain_dag(4);
  Engine engine(dag, Model::oneshot(), 2);
  SolveRequest request;
  request.engine = &engine;
  request.options["threads"] = "many";
  EXPECT_THROW(SolverRegistry::instance().at("hda-astar").run(request),
               PreconditionError);
}

TEST(HdaApi, PortfolioGrantsTheCoreBudgetInsteadOfOneRacingSlot) {
  // budget.threads unset: the portfolio must hand its whole thread cap to
  // the thread-aware solver rather than leaving it one racing slot.
  Dag dag = make_tree_reduction_dag(4).dag;
  Engine engine(dag, Model::oneshot(), 3);
  SolveRequest request;
  request.engine = &engine;
  PortfolioOptions options;
  options.solvers = {"hda-astar", "greedy"};
  options.max_threads = 3;
  PortfolioResult portfolio = solve_portfolio(request, options);
  ASSERT_EQ(portfolio.results.size(), 2u);
  const SolveResult& hda = portfolio.results[0];
  ASSERT_EQ(hda.solver, "hda-astar");
  ASSERT_EQ(hda.status, SolveStatus::Optimal);
  EXPECT_EQ(hda.stats.at("threads"), "3");
  ASSERT_TRUE(portfolio.has_best());
  EXPECT_EQ(portfolio.best().cost, hda.cost);
}

TEST(HdaApi, PortfolioClampsAnAbsurdJobsCountToTheSolverThreadCap) {
  // --jobs sizes the racing pool; it must not knock hda-astar out of the
  // race by granting more workers than the solver accepts.
  Dag dag = make_tree_reduction_dag(4).dag;
  Engine engine(dag, Model::oneshot(), 3);
  SolveRequest request;
  request.engine = &engine;
  PortfolioOptions options;
  options.solvers = {"hda-astar"};
  options.max_threads = kHdaAstarMaxThreads + 44;
  PortfolioResult portfolio = solve_portfolio(request, options);
  ASSERT_EQ(portfolio.results[0].status, SolveStatus::Optimal);
  EXPECT_EQ(portfolio.results[0].stats.at("threads"),
            std::to_string(kHdaAstarMaxThreads));
}

TEST(HdaApi, CallerSetBudgetThreadsSurvivesThePortfolio) {
  Dag dag = make_tree_reduction_dag(4).dag;
  Engine engine(dag, Model::oneshot(), 3);
  SolveRequest request;
  request.engine = &engine;
  request.budget.threads = 2;  // explicit caller choice wins
  PortfolioOptions options;
  options.solvers = {"hda-astar"};
  options.max_threads = 6;
  PortfolioResult portfolio = solve_portfolio(request, options);
  ASSERT_EQ(portfolio.results[0].status, SolveStatus::Optimal);
  EXPECT_EQ(portfolio.results[0].stats.at("threads"), "2");
}

}  // namespace
}  // namespace rbpeb
