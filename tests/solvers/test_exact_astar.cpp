// The exact-astar differential harness: on every instance the Dijkstra
// ground truth can handle, A* must return the same optimal cost — across all
// four models, red budgets, and both pebbling conventions — before its
// lifted 42-node cap may be trusted. Plus unit coverage for the packed-state
// abstraction and the budget/stats plumbing through the solver API.
#include "src/solvers/exact_astar.hpp"

#include <gtest/gtest.h>

#include "src/graph/dag_builder.hpp"
#include "src/pebble/bounds.hpp"
#include "src/pebble/verifier.hpp"
#include "src/solvers/api.hpp"
#include "src/solvers/exact.hpp"
#include "src/solvers/packed_state.hpp"
#include "src/support/check.hpp"
#include "src/support/rng.hpp"
#include "src/workloads/chain.hpp"
#include "src/workloads/pyramid.hpp"
#include "src/workloads/random_layered.hpp"
#include "src/workloads/tree_reduction.hpp"

namespace rbpeb {
namespace {

// ---- PackedState ---------------------------------------------------------

template <typename Word>
void roundtrip_along_random_walk(const Engine& engine, std::uint64_t seed) {
  using Packed = BasicPackedState<Word>;
  const std::size_t n = engine.dag().node_count();
  ASSERT_LE(n, Packed::max_nodes());
  Rng rng(seed);
  GameState state = engine.initial_state();
  Packed packed = Packed::from_state(state);
  for (int step = 0; step < 200; ++step) {
    // Every field readable both ways, and to_state inverts from_state.
    for (std::size_t v = 0; v < n; ++v) {
      const NodeId node = static_cast<NodeId>(v);
      ASSERT_EQ(packed.color(node), state.color(node));
      ASSERT_EQ(packed.was_computed(node), state.was_computed(node));
    }
    ASSERT_EQ(packed.to_state(n), state);
    ASSERT_EQ(packed, Packed::from_state(state));
    // Take a random legal move; the incremental update must agree with the
    // Engine's full transition.
    std::vector<Move> legal;
    for (std::size_t v = 0; v < n; ++v) {
      for (MoveType type : {MoveType::Load, MoveType::Store, MoveType::Compute,
                            MoveType::Delete}) {
        Move move{type, static_cast<NodeId>(v)};
        if (engine.is_legal(state, move)) legal.push_back(move);
      }
    }
    if (legal.empty()) break;
    const Move move = legal[rng.next_below(legal.size())];
    Cost cost;
    engine.apply(state, move, cost);
    packed = packed.apply(move);
  }
}

TEST(PackedState, IncrementalUpdatesMatchEngineTransitions64) {
  Dag dag = make_random_layered_dag({.layers = 3, .width = 3, .indegree = 2,
                                     .seed = 11});
  for (const Model& model : all_models()) {
    Engine engine(dag, model, min_red_pebbles(dag));
    roundtrip_along_random_walk<std::uint64_t>(engine, 7);
  }
}

TEST(PackedState, IncrementalUpdatesMatchEngineTransitions128) {
  Dag dag = make_random_layered_dag({.layers = 6, .width = 5, .indegree = 2,
                                     .seed = 12});  // 30 nodes: wide path only
  ASSERT_GT(dag.node_count(), PackedState64::max_nodes());
  Engine engine(dag, Model::oneshot(), min_red_pebbles(dag));
  roundtrip_along_random_walk<unsigned __int128>(engine, 9);
}

TEST(PackedState, WidthCapsMatchTheDocumentedLimits) {
  EXPECT_EQ(PackedState64::max_nodes(), 21u);
  EXPECT_EQ(PackedState128::max_nodes(), 42u);
  EXPECT_EQ(kExactAstarFixedMaxNodes, 42u);
  // Past the fixed-width words the variable-width bigstate path carries the
  // search over two-word masks to 128 nodes and runtime-width masks beyond.
  EXPECT_EQ(StateBoundEvaluator::kWideMaskMaxNodes, 128u);
  EXPECT_EQ(kExactAstarMaxNodes, 1024u);
  EXPECT_EQ(kExactAstarMaxNodes, StateBoundEvaluator::kVecMaskMaxNodes);
}

// ---- differential harness ------------------------------------------------

void expect_same_optimum(const Engine& engine, const std::string& label) {
  ExactSearchStats dijkstra_stats, astar_stats;
  auto dijkstra = try_solve_exact(engine, 6'000'000, {}, &dijkstra_stats);
  auto astar = try_solve_exact_astar(engine, 6'000'000, {}, &astar_stats);
  ASSERT_TRUE(dijkstra.has_value()) << label;
  ASSERT_TRUE(astar.has_value()) << label;
  EXPECT_EQ(dijkstra->cost, astar->cost) << label;
  // Both traces replay to their reported costs under the strict engine.
  EXPECT_EQ(verify_or_throw(engine, astar->trace).total, astar->cost) << label;
}

class AstarMatchesDijkstra
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {
};

INSTANTIATE_TEST_SUITE_P(
    Fuzz, AstarMatchesDijkstra,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3, 4, 5),
                       ::testing::Values<std::size_t>(0, 1)));

TEST_P(AstarMatchesDijkstra, OnRandomLayeredDagsAcrossAllModels) {
  auto [seed, extra_r] = GetParam();
  for (const RandomLayeredSpec& spec :
       {RandomLayeredSpec{.layers = 3, .width = 3, .indegree = 2, .seed = 0},
        RandomLayeredSpec{.layers = 4, .width = 2, .indegree = 2, .seed = 0},
        RandomLayeredSpec{.layers = 2, .width = 4, .indegree = 3, .seed = 0}}) {
    RandomLayeredSpec seeded = spec;
    seeded.seed = seed;
    Dag dag = make_random_layered_dag(seeded);
    const std::size_t r = min_red_pebbles(dag) + extra_r;
    for (const Model& model : all_models()) {
      Engine engine(dag, model, r);
      expect_same_optimum(engine,
                          model.name() + " seed=" + std::to_string(seed));
    }
  }
}

TEST(AstarMatchesDijkstra, UnderBothHongKungConventions) {
  Dag dag = make_tree_reduction_dag(4).dag;  // 7 nodes
  for (const Model& model : all_models()) {
    for (bool sources_blue : {false, true}) {
      for (bool sinks_blue : {false, true}) {
        Engine engine(dag, model, 3,
                      PebblingConvention{.sources_start_blue = sources_blue,
                                         .sinks_end_blue = sinks_blue});
        expect_same_optimum(engine, model.name() +
                                        " sources_blue=" +
                                        std::to_string(sources_blue) +
                                        " sinks_blue=" +
                                        std::to_string(sinks_blue));
      }
    }
  }
}

TEST(AstarMatchesDijkstra, OnThePyramid) {
  Dag dag = make_pyramid_dag(3).dag;  // 6 nodes
  for (const Model& model : all_models()) {
    for (std::size_t r = min_red_pebbles(dag); r <= 4; ++r) {
      Engine engine(dag, model, r);
      expect_same_optimum(engine, model.name() + " R=" + std::to_string(r));
    }
  }
}

// The informed search must not just match — it must be cheaper. The oneshot
// model is where pruning bites hardest: Dijkstra wades through states whose
// needed values were computed and deleted (dead forever), A* drops them.
TEST(AstarExpansions, StrictlyFewerThanDijkstraOnOneshot) {
  Dag dag = make_random_layered_dag({.layers = 3, .width = 3, .indegree = 2,
                                     .seed = 5});
  Engine engine(dag, Model::oneshot(), min_red_pebbles(dag));
  ExactResult dijkstra = solve_exact(engine);
  ExactResult astar = solve_exact_astar(engine);
  EXPECT_EQ(dijkstra.cost, astar.cost);
  EXPECT_LT(astar.states_expanded, dijkstra.states_expanded);
}

TEST(AstarExpansions, StrictlyFewerThanDijkstraOnNodel) {
  Dag dag = make_random_layered_dag({.layers = 3, .width = 3, .indegree = 2,
                                     .seed = 5});
  Engine engine(dag, Model::nodel(), min_red_pebbles(dag));
  ExactResult dijkstra = solve_exact(engine);
  ExactResult astar = solve_exact_astar(engine);
  EXPECT_EQ(dijkstra.cost, astar.cost);
  EXPECT_LT(astar.states_expanded, dijkstra.states_expanded);
}

// ---- beyond the Dijkstra cap ---------------------------------------------

TEST(AstarScale, SolvesAChainDijkstraCannotTouch) {
  Dag dag = make_chain_dag(30);  // well past the 21-node Dijkstra cap
  Engine engine(dag, Model::oneshot(), 2);
  EXPECT_THROW(solve_exact(engine), PreconditionError);
  ExactResult result = solve_exact_astar(engine);
  // A 2-pebble sliding window computes the chain with no transfers at all.
  EXPECT_EQ(result.cost, Rational(0));
  EXPECT_TRUE(verify(engine, result.trace).ok());
}

TEST(AstarScale, SolvesA26NodeLayeredDagInNodel) {
  Dag dag = make_random_layered_dag({.layers = 13, .width = 2, .indegree = 2,
                                     .seed = 3});  // 26 nodes
  const std::size_t r = min_red_pebbles(dag);
  Engine engine(dag, Model::nodel(), r);
  ExactResult result = solve_exact_astar(engine, 4'000'000);
  EXPECT_TRUE(verify(engine, result.trace).ok());
  EXPECT_GE(result.cost, cost_lower_bound(dag, Model::nodel(), r));
}

TEST(AstarScale, RejectsDagsBeyondTheBigstateCap) {
  DagBuilder b;
  b.add_nodes(kExactAstarMaxNodes + 1);
  Dag dag = b.build();
  Engine engine(dag, Model::oneshot(), 1);
  EXPECT_THROW(solve_exact_astar(engine), PreconditionError);
}

// ---- budget and stats plumbing through the API ---------------------------

TEST(AstarApi, BudgetExhaustionReportsPartialStats) {
  Dag dag = make_random_layered_dag({.layers = 3, .width = 4, .indegree = 2,
                                     .seed = 6});
  Engine engine(dag, Model::oneshot(), min_red_pebbles(dag));
  SolveRequest request;
  request.engine = &engine;
  request.budget.max_states = 10;
  for (const char* name : {"exact", "exact-astar"}) {
    SolveResult result = SolverRegistry::instance().at(name).run(request);
    EXPECT_EQ(result.status, SolveStatus::BudgetExhausted) << name;
    ASSERT_TRUE(result.stats.contains("states_expanded")) << name;
    // The partial count reports exactly how far the search got before the
    // 10-state budget tripped.
    EXPECT_EQ(result.stats.at("states_expanded"), "10") << name;
    EXPECT_EQ(result.stats.at("max_states"), "10") << name;
  }
}

TEST(AstarApi, TrySolveFillsStatsOnBudgetExhaustion) {
  Dag dag = make_random_layered_dag({.layers = 3, .width = 4, .indegree = 2,
                                     .seed = 6});
  Engine engine(dag, Model::oneshot(), min_red_pebbles(dag));
  ExactSearchStats stats;
  EXPECT_EQ(try_solve_exact_astar(engine, 10, {}, &stats), std::nullopt);
  EXPECT_EQ(stats.termination, ExactTermination::StateBudget);
  EXPECT_EQ(stats.states_expanded, 10u);
  EXPECT_EQ(try_solve_exact(engine, 10, {}, &stats), std::nullopt);
  EXPECT_EQ(stats.termination, ExactTermination::StateBudget);
  EXPECT_EQ(stats.states_expanded, 10u);
}

// "When stats is non-null it is always filled" means filled fresh: a reused
// struct must not accumulate, or a second identical solve starts its budget
// check pre-spent and falsely reports BudgetExhausted.
TEST(AstarApi, ReusedStatsStructDoesNotAccumulateAcrossCalls) {
  Dag dag = make_chain_dag(8);
  Engine engine(dag, Model::oneshot(), 2);
  ExactSearchStats stats;
  auto first = try_solve_exact_astar(engine, 2'000'000, {}, &stats);
  ASSERT_TRUE(first.has_value());
  const std::size_t once = stats.states_expanded;
  // A budget the first solve fits must fit the second identical solve too.
  ASSERT_TRUE(try_solve_exact_astar(engine, once + 1, {}, &stats).has_value());
  EXPECT_EQ(stats.states_expanded, once);
  auto dijkstra = try_solve_exact(engine, 2'000'000, {}, &stats);
  ASSERT_TRUE(dijkstra.has_value());
  const std::size_t dijkstra_once = stats.states_expanded;
  ASSERT_TRUE(try_solve_exact(engine, dijkstra_once + 1, {}, &stats).has_value());
  EXPECT_EQ(stats.states_expanded, dijkstra_once);
}

TEST(AstarApi, ExpiredDeadlineStopsBeforeAnyExpansion) {
  Dag dag = make_random_layered_dag({.layers = 3, .width = 4, .indegree = 2,
                                     .seed = 6});
  Engine engine(dag, Model::oneshot(), min_red_pebbles(dag));
  ExactSearchStats stats;
  auto already_expired = [] { return true; };
  EXPECT_EQ(try_solve_exact_astar(engine, 2'000'000, already_expired, &stats),
            std::nullopt);
  EXPECT_EQ(stats.termination, ExactTermination::Stopped);
  EXPECT_EQ(stats.states_expanded, 0u);
  EXPECT_EQ(try_solve_exact(engine, 2'000'000, already_expired, &stats),
            std::nullopt);
  EXPECT_EQ(stats.termination, ExactTermination::Stopped);
  EXPECT_EQ(stats.states_expanded, 0u);
}

TEST(AstarApi, OptimalRunReportsExpansionStats) {
  Dag dag = make_chain_dag(6);
  Engine engine(dag, Model::oneshot(), 2);
  SolveRequest request;
  request.engine = &engine;
  SolveResult result = SolverRegistry::instance().at("exact-astar").run(request);
  ASSERT_EQ(result.status, SolveStatus::Optimal);
  EXPECT_TRUE(result.stats.contains("states_expanded"));
  EXPECT_EQ(result.cost, verify_or_throw(engine, *result.trace).total);
}

TEST(AstarApi, AgreesWithExactThroughThePortfolioRegistry) {
  Dag dag = make_tree_reduction_dag(4).dag;
  Engine engine(dag, Model::compcost(), 3);
  SolveRequest request;
  request.engine = &engine;
  SolveResult a = SolverRegistry::instance().at("exact").run(request);
  SolveResult b = SolverRegistry::instance().at("exact-astar").run(request);
  ASSERT_EQ(a.status, SolveStatus::Optimal);
  ASSERT_EQ(b.status, SolveStatus::Optimal);
  EXPECT_EQ(a.cost, b.cost);
}

TEST(AstarApi, UnknownOptionKeyListsAcceptedKeys) {
  Dag dag = make_chain_dag(4);
  Engine engine(dag, Model::oneshot(), 2);
  SolveRequest request;
  request.engine = &engine;
  request.options["max-statez"] = "10";
  try {
    SolverRegistry::instance().at("exact-astar").run(request);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("max-states"), std::string::npos);
  }
}

}  // namespace
}  // namespace rbpeb
