#include "src/solvers/held_karp.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/support/check.hpp"
#include "src/support/rng.hpp"

namespace rbpeb {
namespace {

// Brute-force reference: minimum over all precedence-respecting permutations.
std::int64_t brute_force_min(
    std::size_t count,
    const std::function<std::int64_t(std::size_t, std::size_t)>& transition,
    const std::vector<std::uint32_t>& dep_mask) {
  std::vector<std::size_t> perm(count);
  std::iota(perm.begin(), perm.end(), 0);
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  do {
    bool feasible = true;
    std::uint32_t seen = 0;
    std::int64_t cost = 0;
    std::size_t prev = kHeldKarpStart;
    for (std::size_t item : perm) {
      std::uint32_t deps = dep_mask.empty() ? 0 : dep_mask[item];
      if ((deps & seen) != deps) {
        feasible = false;
        break;
      }
      cost += transition(prev, item);
      seen |= (1u << item);
      prev = item;
    }
    if (feasible) best = std::min(best, cost);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(HeldKarp, MatchesBruteForceOnRandomCosts) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    std::size_t count = 3 + trial % 4;  // 3..6 items
    std::vector<std::int64_t> matrix((count + 1) * count);
    for (auto& c : matrix) c = rng.next_in(0, 20);
    auto transition = [&](std::size_t prev, std::size_t next) {
      std::size_t row = (prev == kHeldKarpStart) ? count : prev;
      return matrix[row * count + next];
    };
    HeldKarpResult hk = held_karp_min_order(count, transition);
    ASSERT_TRUE(hk.feasible);
    EXPECT_EQ(hk.cost, brute_force_min(count, transition, {}));
    // Returned order must achieve the returned cost.
    std::int64_t check = 0;
    std::size_t prev = kHeldKarpStart;
    for (std::size_t item : hk.order) {
      check += transition(prev, item);
      prev = item;
    }
    EXPECT_EQ(check, hk.cost);
  }
}

TEST(HeldKarp, RespectsPrecedence) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t count = 5;
    std::vector<std::uint32_t> deps(count, 0);
    // item i may depend on items with smaller index (guarantees feasibility).
    for (std::size_t i = 1; i < count; ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        if (rng.next_bool(0.3)) deps[i] |= (1u << j);
      }
    }
    std::vector<std::int64_t> matrix((count + 1) * count);
    for (auto& c : matrix) c = rng.next_in(0, 9);
    auto transition = [&](std::size_t prev, std::size_t next) {
      std::size_t row = (prev == kHeldKarpStart) ? count : prev;
      return matrix[row * count + next];
    };
    HeldKarpResult hk = held_karp_min_order(count, transition, deps);
    ASSERT_TRUE(hk.feasible);
    EXPECT_EQ(hk.cost, brute_force_min(count, transition, deps));
    // Order respects deps.
    std::uint32_t seen = 0;
    for (std::size_t item : hk.order) {
      EXPECT_EQ(deps[item] & seen, deps[item]);
      seen |= (1u << item);
    }
  }
}

TEST(HeldKarp, DetectsInfeasiblePrecedence) {
  std::vector<std::uint32_t> deps = {0x2, 0x1};  // 0 needs 1, 1 needs 0
  auto transition = [](std::size_t, std::size_t) -> std::int64_t { return 0; };
  HeldKarpResult hk = held_karp_min_order(2, transition, deps);
  EXPECT_FALSE(hk.feasible);
}

TEST(HeldKarp, SingleItem) {
  auto transition = [](std::size_t, std::size_t) -> std::int64_t { return 5; };
  HeldKarpResult hk = held_karp_min_order(1, transition);
  ASSERT_TRUE(hk.feasible);
  EXPECT_EQ(hk.cost, 5);
  EXPECT_EQ(hk.order, std::vector<std::size_t>({0}));
}

TEST(HeldKarp, RejectsInvalidSizes) {
  auto transition = [](std::size_t, std::size_t) -> std::int64_t { return 0; };
  EXPECT_THROW(held_karp_min_order(0, transition), PreconditionError);
  EXPECT_THROW(held_karp_min_order(21, transition), PreconditionError);
  EXPECT_THROW(held_karp_min_order(3, transition, {0u}), PreconditionError);
}

}  // namespace
}  // namespace rbpeb
