// The runtime-width MaskVec bound path must be invisible wherever the
// fixed-width mask paths exist: same lower bounds state-for-state, and —
// through the forced-search hook — the same costs AND expansion counts on
// every model and convention. Past 128 nodes it is the only mask path, so
// the word-boundary widths (129, 192, 256) are differentially checked
// against the generic mark-and-walk evaluation, and a 129-node instance is
// solved end to end on it.
#include "src/pebble/bounds.hpp"

#include <gtest/gtest.h>

#include "src/graph/dag_builder.hpp"
#include "src/pebble/verifier.hpp"
#include "src/solvers/exact.hpp"
#include "src/solvers/exact_astar.hpp"
#include "src/solvers/hda/hda_astar.hpp"
#include "src/support/rng.hpp"
#include "src/workloads/chain.hpp"
#include "src/workloads/random_layered.hpp"
#include "src/workloads/tree_reduction.hpp"

namespace rbpeb {
namespace {

std::vector<Move> legal_moves(const Engine& engine, const GameState& state) {
  std::vector<Move> legal;
  for (std::size_t v = 0; v < state.node_count(); ++v) {
    for (MoveType type : {MoveType::Load, MoveType::Store, MoveType::Compute,
                          MoveType::Delete}) {
      Move move{type, static_cast<NodeId>(v)};
      if (engine.is_legal(state, move)) legal.push_back(move);
    }
  }
  return legal;
}

// ---- the evaluator: MaskVec vs the fixed-width fast paths ----------------

/// Walk random legal moves; at every state the runtime-width bound must
/// equal the bound of whichever path the instance size dispatches to by
/// default (one-word masks ≤ 64, two-word ≤ 128) and the generic walk.
void differential_bound_walk(const Engine& engine, std::uint64_t seed,
                             int steps = 160) {
  using Masks = StateBoundEvaluator::StateMasks;
  using WideMasks = StateBoundEvaluator::WideStateMasks;
  using MaskVec = StateBoundEvaluator::MaskVec;
  const std::size_t n = engine.dag().node_count();
  StateBoundEvaluator eval(engine);
  Rng rng(seed);
  GameState state = engine.initial_state();
  for (int step = 0; step < steps; ++step) {
    const auto vec = eval.lower_bound_scaled(MaskVec::from(state, n));
    const auto generic = eval.lower_bound_generic(state);
    ASSERT_EQ(vec, generic) << "n=" << n << " step=" << step;
    if (n <= StateBoundEvaluator::kMaskMaxNodes) {
      ASSERT_EQ(vec, eval.lower_bound_scaled(Masks::from(state, n)))
          << "n=" << n << " step=" << step;
    } else if (n <= StateBoundEvaluator::kWideMaskMaxNodes) {
      ASSERT_EQ(vec, eval.lower_bound_scaled(WideMasks::from(state, n)))
          << "n=" << n << " step=" << step;
    }
    std::vector<Move> legal = legal_moves(engine, state);
    if (legal.empty()) break;
    Cost cost;
    engine.apply(state, legal[rng.next_below(legal.size())], cost);
  }
}

TEST(MaskVecBound, MatchesFixedWidthPathsOnEveryModelAndConvention) {
  Dag small = make_random_layered_dag({.layers = 4, .width = 4, .indegree = 2,
                                       .seed = 21});  // 16 nodes: one word
  Dag wide = make_random_layered_dag({.layers = 10, .width = 8, .indegree = 3,
                                      .seed = 22});  // 80 nodes: two words
  ASSERT_GT(wide.node_count(), StateBoundEvaluator::kMaskMaxNodes);
  ASSERT_LE(wide.node_count(), StateBoundEvaluator::kWideMaskMaxNodes);
  std::uint64_t seed = 100;
  for (const Model& model : all_models()) {
    for (bool sources_blue : {false, true}) {
      for (bool sinks_blue : {false, true}) {
        const PebblingConvention convention{
            .sources_start_blue = sources_blue, .sinks_end_blue = sinks_blue};
        for (const Dag* dag : {&small, &wide}) {
          Engine engine(*dag, model, min_red_pebbles(*dag), convention);
          differential_bound_walk(engine, ++seed);
        }
      }
    }
  }
}

/// The word-boundary widths: 129 (first width past the two-word path; one
/// bit spills into a third word), 192 (exactly three words), 256 (exactly
/// four). Past 128 nodes the only reference is the generic walk.
TEST(MaskVecBound, AgreesWithGenericWalkAtWordBoundaryWidths) {
  struct Boundary {
    std::size_t layers, width;
  };
  // 43*3=129, 24*8=192, 32*8=256 nodes.
  const Boundary cases[] = {{43, 3}, {24, 8}, {32, 8}};
  std::uint64_t seed = 300;
  for (const Boundary& b : cases) {
    Dag dag = make_random_layered_dag(
        {.layers = b.layers, .width = b.width, .indegree = 2, .seed = ++seed});
    ASSERT_GT(dag.node_count(), StateBoundEvaluator::kWideMaskMaxNodes);
    for (const Model& model : all_models()) {
      Engine engine(dag, model, min_red_pebbles(dag));
      differential_bound_walk(engine, ++seed, 80);
    }
  }
  // An exact word-count check: 129 nodes need 3 words, 192 need 3, 256
  // need 4 — the constructor rounds up.
  EXPECT_EQ(StateBoundEvaluator::MaskVec(129).words(), 3u);
  EXPECT_EQ(StateBoundEvaluator::MaskVec(192).words(), 3u);
  EXPECT_EQ(StateBoundEvaluator::MaskVec(256).words(), 4u);
}

// ---- the searches on the forced MaskVec path -----------------------------

/// Forcing the runtime-width mask path on instances the fixed-width paths
/// cover must change nothing observable: same cost, same expansion count.
TEST(MaskVecSearch, ForcedMaskVecMatchesFixedWidthCostsAndExpansions) {
  Dag tiny = make_random_layered_dag({.layers = 3, .width = 3, .indegree = 2,
                                      .seed = 41});  // 9 nodes
  Dag mid = make_random_layered_dag({.layers = 13, .width = 2, .indegree = 2,
                                     .seed = 42});  // 26 nodes
  for (const Model& model : all_models()) {
    for (bool sinks_blue : {false, true}) {
      const PebblingConvention convention{.sources_start_blue = false,
                                          .sinks_end_blue = sinks_blue};
      for (const Dag* dag : {&tiny, &mid}) {
        // Only nodel keeps the 26-node search small enough for a test.
        if (dag == &mid && model.kind() != ModelKind::Nodel) continue;
        Engine engine(*dag, model, min_red_pebbles(*dag), convention);
        ExactSearchOptions fixed_options;
        fixed_options.max_states = 4'000'000;
        ExactSearchOptions vec_options = fixed_options;
        vec_options.force_mask_vec = true;
        ExactSearchStats fixed_stats, vec_stats;
        auto fixed = try_solve_exact_astar(engine, fixed_options, &fixed_stats);
        auto vec = try_solve_exact_astar(engine, vec_options, &vec_stats);
        ASSERT_TRUE(fixed.has_value()) << model.name();
        ASSERT_TRUE(vec.has_value()) << model.name();
        EXPECT_EQ(fixed->cost, vec->cost) << model.name();
        EXPECT_EQ(fixed_stats.states_expanded, vec_stats.states_expanded)
            << model.name();
        EXPECT_EQ(verify_or_throw(engine, vec->trace).total, vec->cost)
            << model.name();
      }
    }
  }
}

/// Same invisibility on the 43–128-node tier, where the default wide path
/// already runs variable-width states over two-word masks — forcing MaskVec
/// swaps only the bound representation.
TEST(MaskVecSearch, ForcedMaskVecMatchesWideMaskTierOnA48NodeChain) {
  Dag dag = make_chain_dag(48);
  Engine engine(dag, Model::oneshot(), 3);
  ExactSearchOptions wide_options;
  wide_options.max_states = 2'000'000;
  ExactSearchOptions vec_options = wide_options;
  vec_options.force_mask_vec = true;
  ExactSearchStats wide_stats, vec_stats;
  auto wide = try_solve_exact_astar(engine, wide_options, &wide_stats);
  auto vec = try_solve_exact_astar(engine, vec_options, &vec_stats);
  ASSERT_TRUE(wide.has_value());
  ASSERT_TRUE(vec.has_value());
  EXPECT_EQ(wide->cost, vec->cost);
  EXPECT_EQ(wide_stats.states_expanded, vec_stats.states_expanded);
}

/// hda-astar shares the dispatch; at one worker its expansion schedule is
/// deterministic, so costs and counts must survive the forced path there
/// too.
TEST(MaskVecSearch, HdaAstarForcedMaskVecMatchesAtOneWorker) {
  Dag dag = make_random_layered_dag({.layers = 5, .width = 3, .indegree = 2,
                                     .seed = 43});  // 15 nodes
  Engine engine(dag, Model::nodel(), min_red_pebbles(dag));
  ExactSearchOptions options;
  options.max_states = 2'000'000;
  ExactSearchOptions vec_options = options;
  vec_options.force_mask_vec = true;
  ExactSearchStats stats, vec_stats;
  auto fixed = try_solve_hda_astar(engine, 1, options, &stats);
  auto vec = try_solve_hda_astar(engine, 1, vec_options, &vec_stats);
  ASSERT_TRUE(fixed.has_value());
  ASSERT_TRUE(vec.has_value());
  EXPECT_EQ(fixed->cost, vec->cost);
  EXPECT_EQ(stats.states_expanded, vec_stats.states_expanded);
}

/// End to end past the two-word cap: a 129-node chain (the first width the
/// fixed masks cannot represent) solves on the MaskVec path and verifies.
TEST(MaskVecSearch, SolvesA129NodeChainPastTheTwoWordCap) {
  Dag dag = make_chain_dag(129);
  ASSERT_GT(dag.node_count(), StateBoundEvaluator::kWideMaskMaxNodes);
  Engine engine(dag, Model::oneshot(), 3);
  ExactSearchOptions options;
  options.max_states = 2'000'000;
  ExactSearchStats stats;
  auto result = try_solve_exact_astar(engine, options, &stats);
  ASSERT_TRUE(result.has_value())
      << "termination=" << static_cast<int>(stats.termination);
  EXPECT_EQ(stats.termination, ExactTermination::Solved);
  EXPECT_EQ(verify_or_throw(engine, result->trace).total, result->cost);
  // A 3-red-pebble oneshot chain never needs the bus: compute straight up,
  // deleting behind — the model prices that at zero.
  EXPECT_EQ(result->cost, Rational(0));
}

}  // namespace
}  // namespace rbpeb
