#include "src/solvers/local_search.hpp"

#include <gtest/gtest.h>

#include "src/pebble/verifier.hpp"
#include "src/reductions/greedy_grid.hpp"
#include "src/reductions/hampath.hpp"
#include "src/graph/generators.hpp"

namespace rbpeb {
namespace {

TEST(LocalSearch, NeverWorseThanGreedyOnGrid) {
  GreedyGrid grid = make_greedy_grid({.ell = 4, .k_common = 24});
  Engine engine(grid.instance.dag, Model::oneshot(), grid.instance.red_limit);
  GroupSolveResult greedy = solve_group_greedy(engine, grid.instance);
  Rational greedy_cost = verify_or_throw(engine, greedy.trace).total;

  LocalSearchOptions options;
  options.iterations = 800;
  GroupSolveResult annealed =
      solve_order_local_search(engine, grid.instance, options);
  Rational annealed_cost = verify_or_throw(engine, annealed.trace).total;
  EXPECT_LE(annealed_cost, greedy_cost);
  EXPECT_TRUE(is_valid_visit_order(grid.instance, annealed.order));
}

TEST(LocalSearch, EscapesTheMisguidanceSubstantially) {
  // On the Theorem 4 grid, local search should recover a large part of the
  // gap the greedy leaves on the table.
  GreedyGrid grid = make_greedy_grid({.ell = 3, .k_common = 32});
  Engine engine(grid.instance.dag, Model::oneshot(), grid.instance.red_limit);
  Rational greedy_cost =
      verify_or_throw(engine, solve_group_greedy(engine, grid.instance).trace)
          .total;
  LocalSearchOptions options;
  options.iterations = 3000;
  options.seed = 7;
  Rational annealed_cost =
      verify_or_throw(
          engine,
          solve_order_local_search(engine, grid.instance, options).trace)
          .total;
  EXPECT_LT(annealed_cost.to_double(), 0.7 * greedy_cost.to_double());
}

TEST(LocalSearch, RespectsDependenciesOnHamPath) {
  Rng rng(3);
  Graph g = random_graph(5, 0.4, rng);
  HamPathReduction red = make_hampath_reduction(g, Model::oneshot());
  Engine engine(red.instance.dag, Model::oneshot(), red.instance.red_limit);
  LocalSearchOptions options;
  options.iterations = 500;
  GroupSolveResult result =
      solve_order_local_search(engine, red.instance, options);
  EXPECT_TRUE(is_valid_visit_order(red.instance, result.order));
  // And at least as good as the optimal-order cost upper bound times 1:
  // the Held–Karp optimum is a lower bound for any order-based strategy.
  HamPathPebbling opt = solve_hampath_pebbling(red);
  Rational ls_cost = verify_or_throw(engine, result.trace).total;
  EXPECT_GE(ls_cost, opt.cost);
}

TEST(LocalSearch, DeterministicForFixedSeed) {
  GreedyGrid grid = make_greedy_grid({.ell = 3, .k_common = 16});
  Engine engine(grid.instance.dag, Model::oneshot(), grid.instance.red_limit);
  LocalSearchOptions options;
  options.iterations = 300;
  options.seed = 42;
  auto a = solve_order_local_search(engine, grid.instance, options);
  auto b = solve_order_local_search(engine, grid.instance, options);
  EXPECT_EQ(a.order, b.order);
}

}  // namespace
}  // namespace rbpeb
