#include "src/solvers/exact.hpp"

#include <gtest/gtest.h>

#include "src/graph/dag_builder.hpp"
#include "src/pebble/bounds.hpp"
#include "src/solvers/greedy.hpp"
#include "src/solvers/topo_baseline.hpp"
#include "src/support/check.hpp"
#include "src/workloads/chain.hpp"
#include "src/workloads/pyramid.hpp"
#include "src/workloads/random_layered.hpp"

namespace rbpeb {
namespace {

TEST(Exact, ChainCostsZeroTransfers) {
  for (const Model& model : all_models()) {
    Dag dag = make_chain_dag(5);
    Engine engine(dag, model, 2);
    ExactResult result = solve_exact(engine);
    VerifyResult vr = verify_or_throw(engine, result.trace);
    EXPECT_EQ(vr.total, result.cost) << model.name();
    if (model.kind() == ModelKind::Compcost) {
      // Five computations at eps = 1/100 each; no transfers needed.
      EXPECT_EQ(result.cost, Rational(5, 100));
    } else if (model.kind() == ModelKind::Nodel) {
      // Pebbles cannot be deleted; n - R = 3 stores are forced.
      EXPECT_EQ(result.cost, Rational(3));
    } else {
      EXPECT_EQ(result.cost, Rational(0));
    }
  }
}

TEST(Exact, ForcedSpillOnIndependentSources) {
  // Three sources, one budget of 2: sinks are the sources themselves, so
  // all three get computed; one must be stored... actually all fit as two
  // red + one stored.
  DagBuilder b;
  b.add_nodes(3);
  Dag dag = b.build();
  Engine engine(dag, Model::oneshot(), 2);
  ExactResult result = solve_exact(engine);
  EXPECT_EQ(result.cost, Rational(1));
  EXPECT_TRUE(verify(engine, result.trace).ok());
}

TEST(Exact, DiamondNeedsNoTransfersWithThreePebbles) {
  DagBuilder b;
  b.add_nodes(4);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  Dag dag = b.build();
  Engine engine(dag, Model::oneshot(), 3);
  EXPECT_EQ(solve_exact(engine).cost, Rational(0));
}

TEST(Exact, ReportedCostMatchesReplayEverywhere) {
  Dag dag = make_random_layered_dag({.layers = 3, .width = 3, .indegree = 2,
                                     .seed = 5});
  for (const Model& model : all_models()) {
    Engine engine(dag, model, min_red_pebbles(dag));
    ExactResult result = solve_exact(engine);
    VerifyResult vr = verify_or_throw(engine, result.trace);
    EXPECT_EQ(vr.total, result.cost) << model.name();
  }
}

TEST(Exact, LowerBoundsRespected) {
  Dag dag = make_random_layered_dag({.layers = 3, .width = 3, .indegree = 2,
                                     .seed = 8});
  for (const Model& model : all_models()) {
    std::size_t r = min_red_pebbles(dag);
    Engine engine(dag, model, r);
    ExactResult result = solve_exact(engine);
    EXPECT_GE(result.cost, cost_lower_bound(dag, model, r)) << model.name();
  }
}

// Property: no heuristic ever beats the exact optimum.
class ExactDominates
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {};

INSTANTIATE_TEST_SUITE_P(TinyDags, ExactDominates,
                         ::testing::Combine(::testing::Values<std::uint64_t>(
                                                1, 2, 3, 4, 5),
                                            ::testing::Values<std::size_t>(0, 1)));

TEST_P(ExactDominates, GreedyAndBaselineAreUpperBounds) {
  auto [seed, extra_r] = GetParam();
  Dag dag = make_random_layered_dag({.layers = 3, .width = 3, .indegree = 2,
                                     .seed = seed});
  std::size_t r = min_red_pebbles(dag) + extra_r;
  for (const Model& model : all_models()) {
    Engine engine(dag, model, r);
    ExactResult exact = solve_exact(engine);
    Rational greedy_cost =
        verify_or_throw(engine, solve_greedy(engine)).total;
    Rational baseline_cost =
        verify_or_throw(engine, solve_topo_baseline(engine)).total;
    EXPECT_LE(exact.cost, greedy_cost) << model.name();
    EXPECT_LE(exact.cost, baseline_cost) << model.name();
  }
}

TEST(Exact, MoreRedPebblesNeverIncreaseOptimum) {
  Dag dag = make_pyramid_dag(3).dag;  // 6 nodes
  Rational prev = Rational(1'000'000);
  for (std::size_t r = min_red_pebbles(dag); r <= 5; ++r) {
    Engine engine(dag, Model::oneshot(), r);
    Rational cost = solve_exact(engine).cost;
    EXPECT_LE(cost, prev) << "R=" << r;
    prev = cost;
  }
}

TEST(Exact, OptDropsByAtMostTwoNPerPebble) {
  // Section 5: opt(R-1) <= opt(R) + 2n in oneshot.
  Dag dag = make_pyramid_dag(3).dag;
  std::int64_t n = static_cast<std::int64_t>(dag.node_count());
  std::optional<Rational> prev;  // opt at R+1 relative to current
  for (std::size_t r = 5; r >= min_red_pebbles(dag); --r) {
    Engine engine(dag, Model::oneshot(), r);
    Rational cost = solve_exact(engine).cost;
    if (prev) {
      EXPECT_LE(cost, *prev + Rational(2 * n));
    }
    prev = cost;
  }
}

TEST(Exact, RejectsOversizedDag) {
  DagBuilder b;
  b.add_nodes(22);
  Dag dag = b.build();
  Engine engine(dag, Model::oneshot(), 1);
  EXPECT_THROW(solve_exact(engine), PreconditionError);
}

TEST(Exact, StateBudgetExhaustionReported) {
  Dag dag = make_random_layered_dag({.layers = 3, .width = 4, .indegree = 2,
                                     .seed = 6});
  Engine engine(dag, Model::oneshot(), min_red_pebbles(dag));
  EXPECT_EQ(try_solve_exact(engine, 1), std::nullopt);
  EXPECT_THROW(solve_exact(engine, 1), InvariantError);
}

}  // namespace
}  // namespace rbpeb
