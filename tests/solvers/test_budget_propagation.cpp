// Deadline / cancellation propagation audit (the serve layer's liveness
// story): a SolveBudget's cancel flag and deadline must reach every stage a
// solve can be in — including the pattern-database build that runs BEFORE
// the first search-loop poll, and the disk-spilling closed table — and must
// do so under concurrent solves, because a served request that cannot be
// shed pins a worker forever.
//
// The PDB gap is the regression this file pins down: PatternDatabase
// construction used to be un-interruptible, so a cancelled bigstate solve
// (>42 nodes, pdb=on) kept building 8^|P| tables after its caller had
// given up.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/solvers/api.hpp"
#include "src/solvers/bigstate/pdb.hpp"
#include "src/solvers/portfolio.hpp"
#include "src/workloads/matmul.hpp"
#include "src/workloads/stencil.hpp"
#include "src/workloads/tree_reduction.hpp"

namespace rbpeb {
namespace {

using std::chrono::steady_clock;

/// Wall-clock guard: the operation must come back well before `limit_ms`
/// of slack runs out — generous enough for slow CI, far below the
/// uncancelled runtime.
template <typename Fn>
auto finishes_within_ms(std::int64_t limit_ms, Fn&& fn) {
  const auto start = steady_clock::now();
  auto result = fn();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           steady_clock::now() - start)
                           .count();
  EXPECT_LT(elapsed, limit_ms) << "cancellation did not propagate promptly";
  return result;
}

TEST(BudgetPropagation, PdbBuildHonorsTheStopPredicate) {
  // 63 nodes: comfortably past the fixed-width cap, where Auto turns PDBs
  // on and the build is the expensive pre-search stage.
  const TreeReductionDag tree = make_tree_reduction_dag(32);
  const Engine engine(tree.dag, Model::oneshot(), 4);

  // An already-raised stop flag must abort the build almost immediately.
  // Pattern size 6 keeps the 8^|P| tables small — the poll cadence under
  // test is the same at every size.
  const PatternDatabase aborted(engine, 6, [] { return true; });
  EXPECT_TRUE(aborted.build_aborted());

  // And without one, the same build runs to completion.
  const PatternDatabase built(engine, 6, {});
  EXPECT_FALSE(built.build_aborted());
}

TEST(BudgetPropagation, CancelledExactAstarStopsDuringThePdbBuild) {
  const TreeReductionDag tree = make_tree_reduction_dag(32);
  const Engine engine(tree.dag, Model::oneshot(), 4);
  std::atomic<bool> cancel{true};  // cancelled before the solve starts
  SolveRequest request;
  request.engine = &engine;
  request.options = {{"pdb", "on"}, {"pdb-pattern", "6"}};
  request.budget.cancel = &cancel;
  for (const char* name : {"exact-astar", "hda-astar"}) {
    const SolveResult result = finishes_within_ms(30'000, [&] {
      return SolverRegistry::instance().at(name).run(request);
    });
    EXPECT_EQ(result.status, SolveStatus::BudgetExhausted) << name;
    EXPECT_FALSE(result.has_trace()) << name;
  }
}

TEST(BudgetPropagation, DeadlineReachesTheSpillingSearch) {
  // A memory budget tight enough to force the external-memory closed table,
  // plus an expired deadline: the spill machinery must not outlive it.
  const MatMulDag mm = make_matmul_dag(3);
  const Engine engine(mm.dag, Model::oneshot(), 5);
  SolveRequest request;
  request.engine = &engine;
  request.options = {{"spill", "auto"}};
  request.budget.max_memory_bytes = 1 << 20;  // 1 MiB
  request.budget.deadline = steady_clock::now() + std::chrono::milliseconds(50);
  const SolveResult result = finishes_within_ms(30'000, [&] {
    return SolverRegistry::instance().at("exact-astar").run(request);
  });
  // Either the deadline tripped (BudgetExhausted) or the instance solved
  // inside 50ms — both are legal; hanging past the guard is not.
  if (!result.ok()) {
    EXPECT_EQ(result.status, SolveStatus::BudgetExhausted);
  }
}

TEST(BudgetPropagation, CallerCancelReachesConcurrentPortfolios) {
  // The serve shape: several portfolio solves in flight at once, all
  // cancelled mid-run. Every one must come back promptly — no worker may
  // stay pinned behind a search that ignored its flag.
  const TreeReductionDag tree = make_tree_reduction_dag(32);
  const Engine engine(tree.dag, Model::oneshot(), 4);

  std::atomic<bool> cancel{false};
  constexpr std::size_t kSolves = 3;
  std::vector<PortfolioResult> results(kSolves);
  std::vector<std::thread> threads;
  threads.reserve(kSolves);
  const auto start = steady_clock::now();
  for (std::size_t i = 0; i < kSolves; ++i) {
    threads.emplace_back([&engine, &cancel, &results, i] {
      SolveRequest request;
      request.engine = &engine;
      // Exercise the PDB path too (small tables; the poll is the point).
      request.options = {{"pdb", "on"}, {"pdb-pattern", "6"}};
      request.budget.cancel = &cancel;
      request.budget.max_states = 100'000'000;  // cancel, not the counter
      PortfolioOptions options;
      options.solvers = {"exact-astar", "hda-astar", "greedy"};
      results[i] = solve_portfolio(request, options);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  cancel.store(true);
  for (std::thread& thread : threads) thread.join();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           steady_clock::now() - start)
                           .count();
  EXPECT_LT(elapsed, 60'000) << "a cancelled concurrent solve hung";

  for (const PortfolioResult& portfolio : results) {
    // The exact racers must NOT claim optimality after a cancel; the greedy
    // racer may still have landed its heuristic trace.
    for (const SolveResult& result : portfolio.results) {
      if (result.solver == "greedy") continue;
      EXPECT_NE(result.status, SolveStatus::Optimal) << result.solver;
    }
  }
}

TEST(BudgetPropagation, FlattenPortfolioKeepsTheWinnerAndExplainsFailure) {
  const TreeReductionDag tree = make_tree_reduction_dag(8);
  const Engine engine(tree.dag, Model::oneshot(), 3);
  SolveRequest request;
  request.engine = &engine;
  PortfolioOptions options;
  options.solvers = {"greedy", "topo"};
  SolveResult flat = flatten_portfolio(solve_portfolio(request, options));
  EXPECT_TRUE(flat.ok());
  ASSERT_TRUE(flat.has_trace());
  EXPECT_EQ(flat.stats.at("portfolio_solvers"), "2");
  EXPECT_FALSE(flat.stats.at("portfolio_winner").empty());

  // All-failure collapse: solvers that need structured views the request
  // does not carry leave no trace anywhere, and the flattened result must
  // say so rather than crash on best().
  SolveRequest bad;
  bad.engine = &engine;
  PortfolioOptions inapplicable;
  inapplicable.solvers = {"held-karp", "chain"};
  SolveResult failed =
      flatten_portfolio(solve_portfolio(bad, inapplicable));
  EXPECT_FALSE(failed.ok());
  EXPECT_FALSE(failed.has_trace());
  EXPECT_FALSE(failed.detail.empty());
}

}  // namespace
}  // namespace rbpeb
