#include "src/solvers/peephole.hpp"

#include <gtest/gtest.h>

#include "src/graph/dag_builder.hpp"
#include "src/pebble/bounds.hpp"
#include "src/pebble/verifier.hpp"
#include "src/solvers/greedy.hpp"
#include "src/solvers/topo_baseline.hpp"
#include "src/support/check.hpp"
#include "src/workloads/fft.hpp"
#include "src/workloads/matmul.hpp"

namespace rbpeb {
namespace {

TEST(Peephole, RemovesAPointlessSpill) {
  DagBuilder b;
  b.add_nodes(2);
  b.add_edge(0, 1);
  Dag dag = b.build();
  Engine engine(dag, Model::oneshot(), 2);
  // A wasteful schedule: spill and reload for no reason.
  Trace wasteful;
  wasteful.push_compute(0);
  wasteful.push_store(0);
  wasteful.push_load(0);
  wasteful.push_compute(1);
  ASSERT_EQ(verify(engine, wasteful).total, Rational(2));

  PeepholeStats stats;
  Trace optimized = peephole_optimize(engine, wasteful, &stats);
  VerifyResult vr = verify(engine, optimized);
  EXPECT_TRUE(vr.ok());
  EXPECT_EQ(vr.total, Rational(0));
  EXPECT_EQ(stats.saved, Rational(2));
  EXPECT_EQ(stats.removed_moves, 2u);
}

TEST(Peephole, RemovesDanglingStore) {
  DagBuilder b;
  b.add_nodes(2);
  b.add_edge(0, 1);
  Dag dag = b.build();
  Engine engine(dag, Model::oneshot(), 2);
  Trace trace;
  trace.push_compute(0);
  trace.push_compute(1);
  trace.push_store(0);  // 0 is dead; the store buys nothing
  Trace optimized = peephole_optimize(engine, trace);
  EXPECT_EQ(verify(engine, optimized).total, Rational(0));
}

TEST(Peephole, NeverWorseAndAlwaysValid) {
  std::vector<Dag> dags;
  dags.push_back(make_matmul_dag(3).dag);
  dags.push_back(make_fft_dag(8).dag);
  for (const Dag& dag : dags) {
    for (const Model& model : all_models()) {
      Engine engine(dag, model, min_red_pebbles(dag) + 1);
      for (const Trace& trace :
           {solve_greedy(engine), solve_topo_baseline(engine)}) {
        Rational before = verify_or_throw(engine, trace).total;
        Trace optimized = peephole_optimize(engine, trace);
        VerifyResult vr = verify(engine, optimized);
        ASSERT_TRUE(vr.ok()) << model.name();
        EXPECT_LE(vr.total, before) << model.name();
      }
    }
  }
}

TEST(Peephole, KeepsNecessarySpills) {
  // Three independent sinks, two slots: one spill is unavoidable.
  DagBuilder b;
  b.add_nodes(3);
  Dag dag = b.build();
  Engine engine(dag, Model::oneshot(), 2);
  Trace trace;
  trace.push_compute(0);
  trace.push_compute(1);
  trace.push_store(0);
  trace.push_compute(2);
  Trace optimized = peephole_optimize(engine, trace);
  EXPECT_EQ(verify(engine, optimized).total, Rational(1));
}

TEST(Peephole, RejectsInvalidInput) {
  DagBuilder b;
  b.add_nodes(1);
  Dag dag = b.build();
  Engine engine(dag, Model::oneshot(), 1);
  EXPECT_THROW(peephole_optimize(engine, Trace{}), PreconditionError);
}

}  // namespace
}  // namespace rbpeb
