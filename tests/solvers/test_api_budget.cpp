// SolveBudget semantics through the API: state limits, deadlines and
// cancellation come back as BudgetExhausted results — never exceptions —
// and a portfolio degrades gracefully to the best heuristic trace.
#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "src/graph/dag_builder.hpp"
#include "src/pebble/bounds.hpp"
#include "src/pebble/verifier.hpp"
#include "src/solvers/api.hpp"
#include "src/solvers/portfolio.hpp"
#include "src/support/check.hpp"
#include "src/workloads/matmul.hpp"

namespace rbpeb {
namespace {

TEST(ApiBudget, ExactReturnsBudgetExhaustedInsteadOfThrowing) {
  MatMulDag mm = make_matmul_dag(2);  // 20 nodes: far beyond 10 states
  Engine engine(mm.dag, Model::oneshot(), 4);
  SolveRequest request;
  request.engine = &engine;
  request.budget.max_states = 10;
  SolveResult result;
  EXPECT_NO_THROW(result = SolverRegistry::instance().at("exact").run(request));
  EXPECT_EQ(result.status, SolveStatus::BudgetExhausted);
  EXPECT_FALSE(result.has_trace());
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.detail.empty());
}

TEST(ApiBudget, MaxStatesOptionOverridesBudget) {
  MatMulDag mm = make_matmul_dag(2);
  Engine engine(mm.dag, Model::oneshot(), 4);
  SolveRequest request;
  request.engine = &engine;
  request.budget.max_states = 2'000'000;
  request.options["max-states"] = "10";
  SolveResult result = SolverRegistry::instance().at("exact").run(request);
  EXPECT_EQ(result.status, SolveStatus::BudgetExhausted);
}

TEST(ApiBudget, ExpiredDeadlineStopsBeforeTheSolveStarts) {
  MatMulDag mm = make_matmul_dag(2);
  Engine engine(mm.dag, Model::oneshot(), 4);
  SolveRequest request;
  request.engine = &engine;
  request.budget.deadline = std::chrono::steady_clock::now() -
                            std::chrono::milliseconds(1);
  for (const char* name : {"exact", "greedy", "topo"}) {
    SolveResult result = SolverRegistry::instance().at(name).run(request);
    EXPECT_EQ(result.status, SolveStatus::BudgetExhausted) << name;
  }
}

TEST(ApiBudget, CancellationFlagStopsTheExactSearch) {
  MatMulDag mm = make_matmul_dag(2);
  Engine engine(mm.dag, Model::oneshot(), 4);
  std::atomic<bool> cancel{true};
  SolveRequest request;
  request.engine = &engine;
  request.budget.cancel = &cancel;
  SolveResult result = SolverRegistry::instance().at("exact").run(request);
  EXPECT_EQ(result.status, SolveStatus::BudgetExhausted);
}

TEST(ApiBudget, PortfolioFallsBackToTheBestHeuristicTrace) {
  MatMulDag mm = make_matmul_dag(2);
  Engine engine(mm.dag, Model::oneshot(), 4);
  SolveRequest request;
  request.engine = &engine;
  request.budget.max_states = 10;  // exact cannot finish
  PortfolioOptions options;
  options.solvers = {"exact", "greedy", "greedy-fewest-blue", "topo"};
  PortfolioResult portfolio = solve_portfolio(request, options);
  ASSERT_EQ(portfolio.results.size(), 4u);
  EXPECT_EQ(portfolio.results[0].status, SolveStatus::BudgetExhausted);
  ASSERT_TRUE(portfolio.has_best());
  const SolveResult& best = portfolio.best();
  EXPECT_EQ(best.status, SolveStatus::Heuristic);
  VerifyResult vr = verify_or_throw(engine, *best.trace);
  EXPECT_EQ(best.cost, vr.total);
  // Best means best: no other returned trace is cheaper.
  for (const SolveResult& result : portfolio.results) {
    if (result.has_trace()) EXPECT_LE(best.cost, result.cost);
  }
}

TEST(ApiBudget, SequentialAndParallelPortfoliosAgreeOnTheBestCost) {
  MatMulDag mm = make_matmul_dag(2);
  Engine engine(mm.dag, Model::oneshot(), 4);
  SolveRequest request;
  request.engine = &engine;
  request.budget.max_states = 10;
  PortfolioOptions sequential;
  sequential.solvers = {"exact", "greedy", "greedy-red-ratio", "topo"};
  sequential.parallel = false;
  PortfolioOptions parallel = sequential;
  parallel.parallel = true;
  Rational a = solve_portfolio(request, sequential).best().cost;
  Rational b = solve_portfolio(request, parallel).best().cost;
  EXPECT_EQ(a, b);
}

TEST(ApiBudget, PortfolioEarlyExitSkipsQueuedSolversAfterAnOptimum) {
  // A tiny chain: exact finishes instantly and, in sequential order, every
  // solver queued after it is skipped.
  DagBuilder b;
  b.add_nodes(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  Dag dag = b.build();
  Engine engine(dag, Model::oneshot(), 3);
  SolveRequest request;
  request.engine = &engine;
  PortfolioOptions options;
  options.solvers = {"exact", "local-search"};  // local-search queued after
  options.parallel = false;
  options.cancel_on_optimal = true;
  PortfolioResult portfolio = solve_portfolio(request, options);
  ASSERT_EQ(portfolio.results.size(), 2u);
  EXPECT_EQ(portfolio.results[0].status, SolveStatus::Optimal);
  EXPECT_EQ(portfolio.results[1].status, SolveStatus::BudgetExhausted);
  EXPECT_EQ(portfolio.best().solver, "exact");
}

TEST(ApiBudget, CallerCancellationReachesSolversAlreadyRunning) {
  // The portfolio rewires budgets to its internal stop flag; a watcher
  // thread must still relay the caller's flag to a solver mid-run. Without
  // the relay, exact would grind through its full 2M-state budget here.
  MatMulDag mm = make_matmul_dag(2);
  Engine engine(mm.dag, Model::oneshot(), 4);
  std::atomic<bool> cancel{false};
  SolveRequest request;
  request.engine = &engine;
  request.budget.cancel = &cancel;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    cancel.store(true);
  });
  PortfolioOptions options;
  options.solvers = {"exact"};
  PortfolioResult portfolio = solve_portfolio(request, options);
  canceller.join();
  ASSERT_EQ(portfolio.results.size(), 1u);
  EXPECT_EQ(portfolio.results[0].status, SolveStatus::BudgetExhausted);
}

TEST(ApiBudget, CallerCancellationSkipsEverySolver) {
  MatMulDag mm = make_matmul_dag(2);
  Engine engine(mm.dag, Model::oneshot(), 4);
  std::atomic<bool> cancel{true};
  SolveRequest request;
  request.engine = &engine;
  request.budget.cancel = &cancel;
  PortfolioOptions options;
  options.solvers = {"greedy", "topo"};
  options.parallel = false;
  PortfolioResult portfolio = solve_portfolio(request, options);
  EXPECT_FALSE(portfolio.has_best());
  for (const SolveResult& result : portfolio.results) {
    EXPECT_EQ(result.status, SolveStatus::BudgetExhausted);
  }
}

TEST(ApiBudget, PortfolioNarrowsASharedOptionSetPerSolver) {
  // One option set serves the whole race: "rule" belongs to greedy alone and
  // must not trip the strict per-solver validation of exact/topo.
  MatMulDag mm = make_matmul_dag(2);
  Engine engine(mm.dag, Model::oneshot(), 4);
  SolveRequest request;
  request.engine = &engine;
  request.options["rule"] = "red-ratio";
  request.budget.max_states = 10;
  PortfolioOptions options;
  options.solvers = {"exact", "greedy", "topo"};
  options.parallel = false;
  PortfolioResult portfolio = solve_portfolio(request, options);
  ASSERT_TRUE(portfolio.has_best());
  EXPECT_EQ(portfolio.results[0].status, SolveStatus::BudgetExhausted);
  EXPECT_EQ(portfolio.results[1].status, SolveStatus::Heuristic);
  EXPECT_EQ(portfolio.results[1].stats.at("rule"), "red-ratio");
}

TEST(ApiBudget, PortfolioRejectsKeysNoRacingSolverAccepts) {
  MatMulDag mm = make_matmul_dag(2);
  Engine engine(mm.dag, Model::oneshot(), 4);
  SolveRequest request;
  request.engine = &engine;
  request.options["rulee"] = "lru";
  PortfolioOptions options;
  options.solvers = {"greedy", "topo"};
  EXPECT_THROW(solve_portfolio(request, options), PreconditionError);
}

TEST(ApiBudget, LocalSearchHonorsIterationBudget) {
  TradeoffChain chain = make_tradeoff_chain({.d = 3, .length = 4});
  Engine engine(chain.instance.dag, Model::oneshot(),
                chain.instance.red_limit);
  SolveRequest request;
  request.engine = &engine;
  request.groups = &chain.instance;
  request.budget.max_iterations = 3;
  SolveResult result =
      SolverRegistry::instance().at("local-search").run(request);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.stats.at("iterations"), "3");
  VerifyResult vr = verify_or_throw(engine, *result.trace);
  EXPECT_EQ(result.cost, vr.total);
}

}  // namespace
}  // namespace rbpeb
