#include "src/solvers/group_dag.hpp"

#include <gtest/gtest.h>

#include "src/graph/dag_builder.hpp"
#include "src/pebble/verifier.hpp"
#include "src/solvers/exact.hpp"
#include "src/support/check.hpp"

namespace rbpeb {
namespace {

// Two groups of 3 sources sharing one node, each with one target. R = 4.
GroupDagInstance two_groups(bool share) {
  DagBuilder b;
  NodeId m0 = b.add_node(), m1 = b.add_node(), m2 = b.add_node();
  NodeId n0 = b.add_node(), n1 = b.add_node();
  NodeId n2 = share ? m2 : b.add_node();
  NodeId t0 = b.add_node("t0"), t1 = b.add_node("t1");
  for (NodeId m : {m0, m1, m2}) b.add_edge(m, t0);
  for (NodeId m : {n0, n1, n2}) b.add_edge(m, t1);
  GroupDagInstance inst;
  inst.dag = b.build();
  inst.groups = {{{m0, m1, m2}, {t0}}, {{n0, n1, n2}, {t1}}};
  inst.red_limit = 4;
  return inst;
}

// Group 0's target is a member of group 1 (dependency 0 -> 1).
GroupDagInstance dependent_groups() {
  DagBuilder b;
  NodeId m0 = b.add_node(), m1 = b.add_node();
  NodeId t0 = b.add_node();
  NodeId n0 = b.add_node();
  NodeId t1 = b.add_node();
  b.add_edge(m0, t0);
  b.add_edge(m1, t0);
  b.add_edge(t0, t1);
  b.add_edge(n0, t1);
  GroupDagInstance inst;
  inst.dag = b.build();
  inst.groups = {{{m0, m1}, {t0}}, {{t0, n0}, {t1}}};
  inst.red_limit = 3;
  return inst;
}

TEST(GroupDag, DependenciesDerivedFromMembership) {
  auto deps = group_dependencies(dependent_groups());
  ASSERT_EQ(deps.size(), 2u);
  EXPECT_TRUE(deps[0].empty());
  EXPECT_EQ(deps[1], std::vector<std::size_t>({0}));
}

TEST(GroupDag, ValidOrderChecks) {
  GroupDagInstance inst = dependent_groups();
  EXPECT_TRUE(is_valid_visit_order(inst, {0, 1}));
  EXPECT_FALSE(is_valid_visit_order(inst, {1, 0}));
  EXPECT_FALSE(is_valid_visit_order(inst, {0}));
  EXPECT_FALSE(is_valid_visit_order(inst, {0, 0}));
  EXPECT_THROW(pebble_visit_order(
                   Engine(inst.dag, Model::oneshot(), inst.red_limit), inst,
                   {1, 0}),
               PreconditionError);
}

class GroupDagModels : public ::testing::TestWithParam<std::size_t> {
 protected:
  const Model& model() const { return all_models()[GetParam()]; }
};

INSTANTIATE_TEST_SUITE_P(Models, GroupDagModels,
                         ::testing::Range<std::size_t>(0, 4),
                         [](const auto& info) {
                           return std::string(
                               all_models()[info.param].name());
                         });

TEST_P(GroupDagModels, VisitOrderTraceIsValid) {
  for (bool share : {false, true}) {
    GroupDagInstance inst = two_groups(share);
    Engine engine(inst.dag, model(), inst.red_limit);
    Trace trace = pebble_visit_order(engine, inst, {0, 1});
    VerifyResult vr = verify(engine, trace);
    EXPECT_TRUE(vr.ok()) << model().name() << " share=" << share << ": "
                         << vr.error;
  }
}

TEST(GroupDag, ConsecutiveVisitsKeepSharedMemberRed) {
  // Three groups; groups 0 and 2 share a member. Visiting them
  // consecutively (0,2,1) avoids the store+load of the shared node that the
  // separated order (0,1,2) must pay — the effect all the paper's
  // constructions are built on.
  DagBuilder b;
  NodeId a0 = b.add_node(), a1 = b.add_node(), a2 = b.add_node();
  NodeId b0 = b.add_node(), b1 = b.add_node(), b2 = b.add_node();
  NodeId c1 = b.add_node(), c2 = b.add_node();
  NodeId t0 = b.add_node(), t1 = b.add_node(), t2 = b.add_node();
  for (NodeId m : {a0, a1, a2}) b.add_edge(m, t0);
  for (NodeId m : {b0, b1, b2}) b.add_edge(m, t1);
  for (NodeId m : {a0, c1, c2}) b.add_edge(m, t2);  // shares a0 with group 0
  GroupDagInstance inst;
  inst.dag = b.build();
  inst.groups = {{{a0, a1, a2}, {t0}},
                 {{b0, b1, b2}, {t1}},
                 {{a0, c1, c2}, {t2}}};
  inst.red_limit = 4;
  Engine engine(inst.dag, Model::oneshot(), 4);
  Rational consecutive =
      verify_or_throw(engine, pebble_visit_order(engine, inst, {0, 2, 1})).total;
  Rational separated =
      verify_or_throw(engine, pebble_visit_order(engine, inst, {0, 1, 2})).total;
  EXPECT_EQ(separated, consecutive + Rational(2));
}

TEST(GroupDag, GreedyPrefersGroupWithRedPebbles) {
  // After group 0 (sharing a member with group 2), the greedy should pick
  // group 2 (one red member) over group 1 (none).
  DagBuilder b;
  NodeId a0 = b.add_node(), a1 = b.add_node();
  NodeId b0 = b.add_node(), b1 = b.add_node();
  NodeId c1 = b.add_node();
  NodeId t0 = b.add_node(), t1 = b.add_node(), t2 = b.add_node();
  for (NodeId m : {a0, a1}) b.add_edge(m, t0);
  for (NodeId m : {b0, b1}) b.add_edge(m, t1);
  for (NodeId m : {a1, c1}) b.add_edge(m, t2);
  GroupDagInstance inst;
  inst.dag = b.build();
  inst.groups = {{{a0, a1}, {t0}}, {{b0, b1}, {t1}}, {{a1, c1}, {t2}}};
  inst.red_limit = 3;
  Engine engine(inst.dag, Model::oneshot(), 3);
  GroupSolveResult result = solve_group_greedy(engine, inst);
  EXPECT_EQ(result.order, std::vector<std::size_t>({0, 2, 1}));
  EXPECT_TRUE(verify(engine, result.trace).ok());
}

TEST(GroupDag, ExhaustiveMatchesExactOnTinyInstance) {
  // The visit-order space and the raw configuration space should agree on
  // the optimum for a construction-shaped instance.
  GroupDagInstance inst = two_groups(true);
  for (const Model& model : all_models()) {
    Engine engine(inst.dag, model, inst.red_limit);
    GroupSolveResult best = solve_exhaustive_order(engine, inst);
    Rational best_cost = verify_or_throw(engine, best.trace).total;
    Rational exact_cost = solve_exact(engine).cost;
    EXPECT_EQ(best_cost, exact_cost) << model.name();
  }
}

TEST(GroupDag, ExhaustiveRespectsDependencies) {
  GroupDagInstance inst = dependent_groups();
  Engine engine(inst.dag, Model::oneshot(), inst.red_limit);
  GroupSolveResult best = solve_exhaustive_order(engine, inst);
  EXPECT_EQ(best.order, std::vector<std::size_t>({0, 1}));
}

TEST(GroupDag, RejectsTooManyGroupsForExhaustive) {
  DagBuilder b;
  GroupDagInstance inst;
  std::vector<NodeId> members;
  for (int g = 0; g < 10; ++g) {
    NodeId m = b.add_node();
    NodeId t = b.add_node();
    b.add_edge(m, t);
    inst.groups.push_back({{m}, {t}});
  }
  inst.dag = b.build();
  inst.red_limit = 2;
  Engine engine(inst.dag, Model::oneshot(), 2);
  EXPECT_THROW(solve_exhaustive_order(engine, inst), PreconditionError);
}

TEST(GroupDag, MultiTargetGroupStoresIntermediateTargets) {
  // One group with three targets: only one free slot above the members, so
  // two targets must be stored.
  DagBuilder b;
  NodeId m0 = b.add_node(), m1 = b.add_node();
  NodeId t0 = b.add_node(), t1 = b.add_node(), t2 = b.add_node();
  for (NodeId t : {t0, t1, t2}) {
    b.add_edge(m0, t);
    b.add_edge(m1, t);
  }
  GroupDagInstance inst;
  inst.dag = b.build();
  inst.groups = {{{m0, m1}, {t0, t1, t2}}};
  inst.red_limit = 3;
  Engine engine(inst.dag, Model::oneshot(), 3);
  Trace trace = pebble_visit_order(engine, inst, {0});
  VerifyResult vr = verify_or_throw(engine, trace);
  EXPECT_EQ(vr.cost.stores, 2);  // t0 and t1 turned blue; t2 stays red
  EXPECT_EQ(vr.cost.loads, 0);
}

}  // namespace
}  // namespace rbpeb
