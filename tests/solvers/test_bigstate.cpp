// The bigstate subsystem's harness: the variable-width packed state must be
// bit-identical to the fixed-width words wherever both exist (layout, per-
// move updates, and the searches' costs *and* expansion counts), the
// additive pattern databases must be admissible against exhaustively solved
// instances, the memory-budgeted closed table must end searches gracefully
// with partial stats, and the lifted caps must prove optima on instances
// the fixed-width searches could never touch.
#include "src/solvers/bigstate/var_state.hpp"

#include <gtest/gtest.h>

#include "src/graph/dag_builder.hpp"
#include "src/pebble/bounds.hpp"
#include "src/pebble/verifier.hpp"
#include "src/solvers/api.hpp"
#include "src/solvers/bigstate/ddd.hpp"
#include "src/solvers/bigstate/pdb.hpp"
#include "src/solvers/exact.hpp"
#include "src/solvers/exact_astar.hpp"
#include "src/solvers/hda/hda_astar.hpp"
#include "src/solvers/packed_state.hpp"
#include "src/solvers/portfolio.hpp"
#include "src/support/check.hpp"
#include "src/support/rng.hpp"
#include "src/workloads/chain.hpp"
#include "src/workloads/random_layered.hpp"
#include "src/workloads/stencil.hpp"
#include "src/workloads/tree_reduction.hpp"

namespace rbpeb {
namespace {

std::vector<Move> legal_moves(const Engine& engine, const GameState& state) {
  std::vector<Move> legal;
  for (std::size_t v = 0; v < state.node_count(); ++v) {
    for (MoveType type : {MoveType::Load, MoveType::Store, MoveType::Compute,
                          MoveType::Delete}) {
      Move move{type, static_cast<NodeId>(v)};
      if (engine.is_legal(state, move)) legal.push_back(move);
    }
  }
  return legal;
}

// ---- VarPackedState vs the fixed-width words -----------------------------

/// Walk random legal moves; after every one the variable-width state must
/// agree with the fixed-width packing field-for-field and word-for-word,
/// and its incrementally patched hash must equal a from-scratch recompute.
template <typename Word>
void differential_walk(const Engine& engine, std::uint64_t seed) {
  using Fixed = BasicPackedState<Word>;
  const std::size_t n = engine.dag().node_count();
  ASSERT_LE(n, Fixed::max_nodes());
  Rng rng(seed);
  GameState state = engine.initial_state();
  Fixed fixed = Fixed::from_state(state);
  VarPackedState var = VarPackedState::from_state(state);
  for (int step = 0; step < 200; ++step) {
    for (std::size_t v = 0; v < n; ++v) {
      const NodeId node = static_cast<NodeId>(v);
      ASSERT_EQ(var.color(node), fixed.color(node));
      ASSERT_EQ(var.was_computed(node), fixed.was_computed(node));
    }
    // The word layout is the fixed-width encoding, split little-endian.
    const auto raw = static_cast<unsigned __int128>(fixed.raw());
    ASSERT_EQ(var.word(0), static_cast<std::uint64_t>(raw));
    if (var.word_count() > 1) {
      ASSERT_EQ(var.word(1), static_cast<std::uint64_t>(raw >> 64));
    }
    ASSERT_EQ(var.hash(), var.recompute_hash());
    ASSERT_EQ(var, VarPackedState::from_state(state));
    ASSERT_EQ(var.to_state(n), state);
    std::vector<Move> legal = legal_moves(engine, state);
    if (legal.empty()) break;
    const Move move = legal[rng.next_below(legal.size())];
    Cost cost;
    engine.apply(state, move, cost);
    fixed = fixed.apply(move);
    var = var.apply(move);
  }
}

TEST(VarPackedState, MatchesFixedWidthPackingOnEveryModelAndConvention) {
  Dag small = make_random_layered_dag({.layers = 3, .width = 3, .indegree = 2,
                                       .seed = 11});  // 9 nodes: 64-bit words
  Dag wide = make_random_layered_dag({.layers = 6, .width = 5, .indegree = 2,
                                      .seed = 12});  // 30 nodes: 128-bit words
  ASSERT_GT(wide.node_count(), PackedState64::max_nodes());
  for (const Model& model : all_models()) {
    for (bool sources_blue : {false, true}) {
      for (bool sinks_blue : {false, true}) {
        const PebblingConvention convention{
            .sources_start_blue = sources_blue, .sinks_end_blue = sinks_blue};
        Engine engine64(small, model, min_red_pebbles(small), convention);
        differential_walk<std::uint64_t>(engine64, 7);
        Engine engine128(wide, model, min_red_pebbles(wide), convention);
        differential_walk<unsigned __int128>(engine128, 9);
      }
    }
  }
}

TEST(VarPackedState, SpillsToTheHeapPastTheInlineBufferAndRoundtrips) {
  ASSERT_EQ(VarPackedState::max_inline_nodes(), 42u);
  Dag dag = make_chain_dag(48);
  Engine engine(dag, Model::oneshot(), 2);
  Rng rng(3);
  GameState state = engine.initial_state();
  VarPackedState var = VarPackedState::from_state(state);
  EXPECT_EQ(var.word_count(), VarPackedState::words_for(48));
  EXPECT_GT(var.word_count(), VarPackedState::kInlineWords);
  EXPECT_GT(VarPackedState::key_heap_bytes(var), 0u);
  for (int step = 0; step < 300; ++step) {
    ASSERT_EQ(var.to_state(48), state);
    ASSERT_EQ(var.hash(), var.recompute_hash());
    ASSERT_EQ(var, VarPackedState::from_state(state));
    std::vector<Move> legal = legal_moves(engine, state);
    if (legal.empty()) break;
    const Move move = legal[rng.next_below(legal.size())];
    Cost cost;
    engine.apply(state, move, cost);
    var = var.apply(move);
  }
  // Copies are deep and equal; moves leave the source reusable-but-empty.
  VarPackedState copy = var;
  EXPECT_EQ(copy, var);
  EXPECT_EQ(copy.hash(), var.hash());
}

/// Field updates that straddle a 64-bit word boundary (3v mod 64 > 61) are
/// the one encoding case the fixed-width words never exercise.
TEST(VarPackedState, StraddledFieldsReadBackAcrossTheWordBoundary) {
  // Node 21: bits [63, 66) — one bit in word 0, two in word 1.
  VarPackedState var(43);
  var.set_color(21, PebbleColor::Blue);
  var.mark_computed(21);
  EXPECT_EQ(var.color(21), PebbleColor::Blue);
  EXPECT_TRUE(var.was_computed(21));
  EXPECT_EQ(var.hash(), var.recompute_hash());
  var.set_color(21, PebbleColor::None);
  EXPECT_EQ(var.color(21), PebbleColor::None);
  EXPECT_TRUE(var.was_computed(21));  // computed flag is sticky
  // Neighbors are untouched.
  EXPECT_EQ(var.color(20), PebbleColor::None);
  EXPECT_EQ(var.color(22), PebbleColor::None);
  EXPECT_EQ(var.hash(), var.recompute_hash());
}

// ---- the searches on the variable-width path -----------------------------

/// Forcing the variable-width path on instances the fixed words cover must
/// change nothing: same cost, same expansion count, bit for bit.
TEST(VarPackedState, ForcedVarSearchMatchesFixedWidthCostsAndExpansions) {
  Dag small = make_random_layered_dag({.layers = 3, .width = 3, .indegree = 2,
                                       .seed = 5});
  Dag wide = make_random_layered_dag({.layers = 13, .width = 2, .indegree = 2,
                                      .seed = 3});  // 26 nodes
  struct Case {
    const Dag* dag;
    Model model;
  };
  const Case cases[] = {{&small, Model::base()},
                        {&small, Model::oneshot()},
                        {&small, Model::nodel()},
                        {&small, Model::compcost()},
                        {&wide, Model::nodel()}};
  for (const Case& c : cases) {
    Engine engine(*c.dag, c.model, min_red_pebbles(*c.dag));
    ExactSearchOptions fixed_options;
    fixed_options.max_states = 4'000'000;
    ExactSearchOptions var_options = fixed_options;
    var_options.force_var_state = true;
    ExactSearchStats fixed_stats, var_stats;
    auto fixed = try_solve_exact_astar(engine, fixed_options, &fixed_stats);
    auto var = try_solve_exact_astar(engine, var_options, &var_stats);
    ASSERT_TRUE(fixed.has_value()) << c.model.name();
    ASSERT_TRUE(var.has_value()) << c.model.name();
    EXPECT_EQ(fixed->cost, var->cost) << c.model.name();
    EXPECT_EQ(fixed_stats.states_expanded, var_stats.states_expanded)
        << c.model.name();
    EXPECT_EQ(verify_or_throw(engine, var->trace).total, var->cost)
        << c.model.name();
  }
}

// ---- pattern databases ---------------------------------------------------

TEST(PatternPartition, CoversEveryNodeDisjointlyWithinTheSizeCap) {
  for (std::size_t cap : {1u, 3u, 6u}) {
    Dag dag = make_random_layered_dag({.layers = 5, .width = 6, .indegree = 3,
                                       .seed = 4});
    auto patterns = partition_into_patterns(dag, cap);
    std::vector<int> seen(dag.node_count(), 0);
    for (const auto& pattern : patterns) {
      EXPECT_LE(pattern.size(), cap);
      EXPECT_FALSE(pattern.empty());
      for (NodeId v : pattern) ++seen[v];
    }
    for (std::size_t v = 0; v < dag.node_count(); ++v) {
      EXPECT_EQ(seen[v], 1) << "node " << v << " cap " << cap;
    }
  }
}

/// Admissibility, checked against ground truth: along an optimal trace the
/// PDB sum never exceeds the true remaining completion cost — at any prefix,
/// in any model, under any convention.
TEST(PatternDatabase, AdmissibleAlongOptimalTracesOnSolvedInstances) {
  for (std::uint64_t seed : {1, 2, 3}) {
    Dag dag = make_random_layered_dag({.layers = 3, .width = 3, .indegree = 2,
                                       .seed = seed});
    for (const Model& model : all_models()) {
      for (bool sinks_blue : {false, true}) {
        Engine engine(dag, model, min_red_pebbles(dag),
                      PebblingConvention{.sinks_end_blue = sinks_blue});
        ExactResult optimal = solve_exact(engine);
        const std::int64_t eps_den = model.epsilon().den();
        const std::int64_t total_scaled =
            optimal.cost.num() * (eps_den / optimal.cost.den());
        for (std::size_t pattern_size : {2u, 4u}) {
          PatternDatabase pdb(engine, pattern_size);
          GameState state = engine.initial_state();
          std::int64_t g = 0;
          Cost cost;
          for (std::size_t i = 0; i <= optimal.trace.size(); ++i) {
            auto h = pdb.lower_bound_scaled(state);
            ASSERT_TRUE(h.has_value())
                << model.name() << " step " << i << " size " << pattern_size;
            EXPECT_LE(*h, total_scaled - g)
                << model.name() << " step " << i << " size " << pattern_size;
            if (i == optimal.trace.size()) break;
            const Move move = optimal.trace[i];
            engine.apply(state, move, cost);
            g += scaled_move_cost(model, move.type);
          }
          // The trace ends complete, so every projection is a goal: sum 0.
          EXPECT_EQ(pdb.lower_bound_scaled(state), 0);
        }
      }
    }
  }
}

TEST(PatternDatabase, DetectsOneshotDeadStatesWithinAPattern) {
  // A oneshot value computed and deleted is gone; if the node is needed the
  // projection has no completion and the whole state is provably dead.
  Dag dag = make_chain_dag(4);
  Engine engine(dag, Model::oneshot(), 2);
  PatternDatabase pdb(engine, 4);  // one pattern holding the whole chain
  GameState dead(4);
  dead.mark_computed(3);  // the sink was computed once and deleted
  EXPECT_EQ(pdb.lower_bound_scaled(dead), std::nullopt);
  GameState alive(4);
  EXPECT_TRUE(pdb.lower_bound_scaled(alive).has_value());
}

TEST(PatternDatabase, FoldsIntoTheBoundEvaluatorAsAMax) {
  Dag dag = make_random_layered_dag({.layers = 3, .width = 3, .indegree = 2,
                                     .seed = 8});
  Engine engine(dag, Model::nodel(), min_red_pebbles(dag));
  PatternDatabase pdb(engine, 4);
  StateBoundEvaluator plain(engine);
  StateBoundEvaluator boosted(engine);
  boosted.attach_pdb(&pdb);
  const GameState start = engine.initial_state();
  auto counting = plain.lower_bound_scaled(start);
  auto combined = boosted.lower_bound_scaled(start);
  auto pdb_only = pdb.lower_bound_scaled(start);
  ASSERT_TRUE(counting && combined && pdb_only);
  EXPECT_EQ(*combined, std::max(*counting, *pdb_only));
}

// ---- the memory-budgeted closed table ------------------------------------

using Table64 = SpillingClosedTable<PackedState64>;
using TableVar = SpillingClosedTable<VarPackedState>;

/// A table with spilling disabled — the legacy ClosedTable semantics every
/// unbudgeted (and spill=off) search still runs on.
template <typename Packed>
SpillingClosedTable<Packed> ram_only_table(std::size_t node_count,
                                           std::size_t max_bytes) {
  return SpillingClosedTable<Packed>(node_count, max_bytes, "", 0);
}

TEST(ClosedTable, RelaxAndLookupSemantics) {
  Table64 table = ram_only_table<PackedState64>(21, 0);
  EXPECT_EQ(table.relax(7, 10, 3, Move{MoveType::Load, 1}),
            Table64::Relax::Inserted);
  // A path no cheaper than the known one dies; a cheaper one re-opens.
  EXPECT_EQ(table.relax(7, 99, 4, Move{MoveType::Store, 2}),
            Table64::Relax::Stale);
  EXPECT_EQ(table.at(7).g, 10);
  EXPECT_EQ(table.relax(7, 5, 4, Move{MoveType::Store, 2}),
            Table64::Relax::Improved);
  EXPECT_EQ(table.at(7).g, 5);
  EXPECT_EQ(table.size(), 1u);
  // Growth keeps every entry reachable.
  for (std::uint64_t k = 100; k < 3000; ++k) {
    table.relax(k, static_cast<std::int64_t>(k), 0, Move{MoveType::Load, 0});
  }
  EXPECT_EQ(table.size(), 2901u);
  EXPECT_EQ(table.at(7).g, 5);
  EXPECT_EQ(table.at(2999).g, 2999);
  EXPECT_GT(table.bytes(), 2901 * sizeof(std::uint64_t));
}

TEST(ClosedTable, ExpansionGateFiresOncePerKeyAndG) {
  Table64 table = ram_only_table<PackedState64>(21, 0);
  table.relax(7, 10, 3, Move{MoveType::Load, 1});
  EXPECT_EQ(table.begin_expansion(7, 12), Table64::Pop::Skip);  // stale g
  EXPECT_EQ(table.begin_expansion(7, 10), Table64::Pop::Expand);
  EXPECT_EQ(table.begin_expansion(7, 10), Table64::Pop::Skip);  // once only
  // A strict improvement re-opens the state at its new g.
  EXPECT_EQ(table.relax(7, 4, 3, Move{MoveType::Load, 1}),
            Table64::Relax::Improved);
  EXPECT_EQ(table.begin_expansion(7, 10), Table64::Pop::Skip);
  EXPECT_EQ(table.begin_expansion(7, 4), Table64::Pop::Expand);
}

TEST(ClosedTable, RefusesInsertsBeyondTheByteBudgetWhenSpillIsOff) {
  Table64 tiny = ram_only_table<PackedState64>(21, 64);  // below the slab
  EXPECT_EQ(tiny.relax(1, 0, 0, Move{MoveType::Load, 0}),
            Table64::Relax::OutOfMemory);
  EXPECT_EQ(tiny.size(), 0u);

  // Holds the slab, not a grow.
  Table64 small = ram_only_table<PackedState64>(21, 100'000);
  std::size_t inserted = 0;
  for (std::uint64_t k = 0; k < 10'000; ++k) {
    if (small.relax(k, 0, 0, Move{MoveType::Load, 0}) ==
        Table64::Relax::OutOfMemory) {
      break;
    }
    ++inserted;
  }
  EXPECT_GT(inserted, 0u);
  EXPECT_LT(inserted, 10'000u);
  EXPECT_LE(small.bytes(), 100'000u);
  // Everything inserted before the refusal is still there.
  EXPECT_EQ(small.size(), inserted);
  EXPECT_EQ(small.at(0).g, 0);
}

TEST(ClosedTable, AccountsHeapSpillOfVariableWidthKeys) {
  // Two tables, same slot layout: one stores an inline key, one a spilled
  // key; the byte difference must be exactly the key's (and its parent
  // copy's) heap words.
  TableVar inline_table = ram_only_table<VarPackedState>(40, 0);
  VarPackedState inline_key(40);  // 2 words: fits the inline buffer
  ASSERT_EQ(VarPackedState::key_heap_bytes(inline_key), 0u);
  inline_table.relax(inline_key, 0, inline_key, Move{MoveType::Load, 0});

  TableVar spill_table = ram_only_table<VarPackedState>(60, 0);
  VarPackedState key(60);  // 3 words: spills
  key.set_color(50, PebbleColor::Red);
  ASSERT_EQ(spill_table.relax(key, 1, key, Move{MoveType::Load, 0}),
            TableVar::Relax::Inserted);
  EXPECT_GT(VarPackedState::key_heap_bytes(key), 0u);
  EXPECT_EQ(spill_table.bytes(),
            inline_table.bytes() + 2 * VarPackedState::key_heap_bytes(key));
  EXPECT_EQ(spill_table.at(key).g, 1);
}

TEST(MemoryBudget, SearchEndsGracefullyWithPartialStatsWhenSpillIsOff) {
  Dag dag = make_random_layered_dag({.layers = 3, .width = 4, .indegree = 2,
                                     .seed = 6});
  Engine engine(dag, Model::oneshot(), min_red_pebbles(dag));
  ExactSearchOptions options;
  options.max_memory_bytes = 100'000;  // a grow past the first slab trips it
  options.spill = SpillMode::Off;      // spill would turn this into a solve
  ExactSearchStats stats;
  EXPECT_EQ(try_solve_exact_astar(engine, options, &stats), std::nullopt);
  EXPECT_EQ(stats.termination, ExactTermination::MemoryBudget);
  EXPECT_GT(stats.states_expanded, 0u);
  EXPECT_GT(stats.table_bytes, 0u);
  EXPECT_LE(stats.table_bytes, options.max_memory_bytes);
  EXPECT_EQ(stats.spilled_states, 0u);
  // The HDA* shards split the same budget and trip the same way.
  EXPECT_EQ(try_solve_hda_astar(engine, 2, options, &stats), std::nullopt);
  EXPECT_EQ(stats.termination, ExactTermination::MemoryBudget);
}

TEST(MemoryBudget, ReportedThroughTheSolverApi) {
  Dag dag = make_random_layered_dag({.layers = 3, .width = 4, .indegree = 2,
                                     .seed = 6});
  Engine engine(dag, Model::oneshot(), min_red_pebbles(dag));
  SolveRequest request;
  request.engine = &engine;
  request.budget.max_memory_bytes = 100'000;
  request.options["spill"] = "off";
  for (const char* name : {"exact-astar", "hda-astar"}) {
    SolveResult result = SolverRegistry::instance().at(name).run(request);
    EXPECT_EQ(result.status, SolveStatus::BudgetExhausted) << name;
    EXPECT_NE(result.detail.find("memory budget"), std::string::npos) << name;
    EXPECT_NE(result.detail.find("spill=off"), std::string::npos) << name;
    ASSERT_TRUE(result.stats.contains("table_bytes")) << name;
    EXPECT_GT(std::stoull(result.stats.at("table_bytes")), 0u) << name;
  }
}

TEST(MemoryBudget, FlowsThroughThePortfolio) {
  Dag dag = make_random_layered_dag({.layers = 3, .width = 4, .indegree = 2,
                                     .seed = 6});
  Engine engine(dag, Model::oneshot(), min_red_pebbles(dag));
  SolveRequest request;
  request.engine = &engine;
  request.budget.max_memory_bytes = 100'000;
  request.options["spill"] = "off";
  PortfolioOptions options;
  options.solvers = {"exact-astar", "greedy"};
  options.parallel = false;  // deterministic order for the assertion below
  options.cancel_on_optimal = false;
  PortfolioResult portfolio = solve_portfolio(request, options);
  ASSERT_EQ(portfolio.results.size(), 2u);
  EXPECT_EQ(portfolio.results[0].status, SolveStatus::BudgetExhausted);
  EXPECT_NE(portfolio.results[0].detail.find("memory budget"),
            std::string::npos);
  // The heuristic still wins the race with a verified trace.
  ASSERT_TRUE(portfolio.has_best());
  EXPECT_EQ(portfolio.best().solver, "greedy");
}

// ---- incumbent seeding ---------------------------------------------------

TEST(IncumbentSeed, GreedySeedIsReturnedProvenOptimalWhenNothingBeatsIt) {
  // On a chain the greedy trace costs 0 — already optimal — so the search
  // starts with incumbent 0, prunes everything, and returns the seed with
  // an optimality certificate without expanding a single state.
  Dag dag = make_chain_dag(30);
  Engine engine(dag, Model::oneshot(), 2);
  SolveRequest request;
  request.engine = &engine;
  request.options["incumbent"] = "greedy";
  for (const char* name : {"exact-astar", "hda-astar"}) {
    SolveResult result = SolverRegistry::instance().at(name).run(request);
    ASSERT_EQ(result.status, SolveStatus::Optimal) << name;
    EXPECT_EQ(result.cost, Rational(0)) << name;
    EXPECT_EQ(result.stats.at("incumbent_source"), "greedy") << name;
    EXPECT_EQ(result.stats.at("states_expanded"), "0") << name;
    EXPECT_EQ(verify_or_throw(engine, *result.trace).total, result.cost)
        << name;
  }
}

TEST(IncumbentSeed, SearchStillWinsWhenItBeatsTheSeed) {
  // Greedy is suboptimal on this instance; the seeded search must find the
  // true optimum (matching the unseeded one) and report the source as the
  // search itself.
  Dag dag = make_random_layered_dag({.layers = 3, .width = 3, .indegree = 2,
                                     .seed = 5});
  Engine engine(dag, Model::nodel(), min_red_pebbles(dag));
  SolveRequest request;
  request.engine = &engine;
  SolveResult unseeded = SolverRegistry::instance().at("exact-astar").run(request);
  request.options["incumbent"] = "greedy";
  SolveResult seeded = SolverRegistry::instance().at("exact-astar").run(request);
  ASSERT_EQ(unseeded.status, SolveStatus::Optimal);
  ASSERT_EQ(seeded.status, SolveStatus::Optimal);
  EXPECT_EQ(seeded.cost, unseeded.cost);
  // Whoever produced the trace, the cost claim is identical; the stat only
  // reports provenance.
  const std::string& source = seeded.stats.at("incumbent_source");
  EXPECT_TRUE(source == "search" || source == "greedy") << source;
  // Seeding prunes speculative expansions; it must never add any.
  EXPECT_LE(std::stoull(seeded.stats.at("states_expanded")),
            std::stoull(unseeded.stats.at("states_expanded")));
}

TEST(IncumbentSeed, BudgetExhaustionReturnsTheSeedAsBestSoFar) {
  // Past the fixed-width cap the adapter seeds a verified greedy trace; a
  // search whose budget expires before the optimality proof must hand that
  // trace back as the best-so-far, not walk away empty-handed.
  Dag dag = make_stencil1d_dag(2, 22).dag;  // 46 nodes: auto-seeded
  Engine engine(dag, Model::nodel(), min_red_pebbles(dag));
  SolveRequest request;
  request.engine = &engine;
  request.budget.max_states = 100;
  SolveResult result = SolverRegistry::instance().at("exact-astar").run(request);
  ASSERT_EQ(result.status, SolveStatus::BudgetExhausted);
  ASSERT_TRUE(result.has_trace());
  EXPECT_EQ(verify_or_throw(engine, *result.trace).total, result.cost);
  EXPECT_EQ(result.stats.at("incumbent_source"), "greedy");
  EXPECT_NE(result.detail.find("incumbent seed"), std::string::npos);
}

TEST(MemoryBudget, SpillOptionTyposFailLoudly) {
  // spill accepts auto, off, or a directory path (with a '/'); a typo like
  // spill=on must not silently become a relative spill directory.
  Dag dag = make_chain_dag(6);
  Engine engine(dag, Model::oneshot(), 2);
  SolveRequest request;
  request.engine = &engine;
  request.options["spill"] = "on";
  EXPECT_THROW(SolverRegistry::instance().at("exact-astar").run(request),
               PreconditionError);
}

TEST(PatternDatabase, OutOfRangePatternWidthFailsLoudly) {
  Dag dag = make_chain_dag(6);
  Engine engine(dag, Model::oneshot(), 2);
  SolveRequest request;
  request.engine = &engine;
  // Widths 9..16 are legal now (hashed tables); 17 is past the hashed cap.
  request.options["pdb-pattern"] = "17";  // beyond kMaxHashedPatternSize
  EXPECT_THROW(SolverRegistry::instance().at("exact-astar").run(request),
               PreconditionError);
}

TEST(IncumbentSeed, AutoSeedsOnlyPastTheFixedWidthCap) {
  Dag dag = make_chain_dag(30);
  Engine engine(dag, Model::oneshot(), 2);
  SolveRequest request;
  request.engine = &engine;
  SolveResult result = SolverRegistry::instance().at("exact-astar").run(request);
  ASSERT_EQ(result.status, SolveStatus::Optimal);
  // 30 nodes ≤ 42: auto mode must not seed, keeping expansion counts
  // bit-for-bit with the historical fixed-width behavior.
  EXPECT_EQ(result.stats.at("incumbent_source"), "none");
  EXPECT_NE(result.stats.at("states_expanded"), "0");
}

// ---- past the fixed-width cap --------------------------------------------

TEST(BigScale, ProvesOptimaOn48NodesUnderAMemoryBudgetBothSearchesAgreeing) {
  // The acceptance instance: 48 nodes — six past what any fixed-width word
  // can pack — solved to proven optimality by both searches under a stated
  // 64 MiB memory budget, costs matching.
  Dag dag = make_chain_dag(48);
  Engine engine(dag, Model::oneshot(), 2);
  ExactSearchOptions options;
  options.max_states = 4'000'000;
  options.max_memory_bytes = std::size_t{64} << 20;
  ExactSearchStats astar_stats, hda_stats;
  auto astar = try_solve_exact_astar(engine, options, &astar_stats);
  auto hda = try_solve_hda_astar(engine, 4, options, &hda_stats);
  ASSERT_TRUE(astar.has_value());
  ASSERT_TRUE(hda.has_value());
  // A 2-pebble sliding window computes the chain with no transfers at all.
  EXPECT_EQ(astar->cost, Rational(0));
  EXPECT_EQ(hda->cost, astar->cost);
  EXPECT_TRUE(verify(engine, astar->trace).ok());
  EXPECT_TRUE(verify(engine, hda->trace).ok());
  EXPECT_EQ(astar_stats.termination, ExactTermination::Solved);
  EXPECT_EQ(hda_stats.termination, ExactTermination::Solved);
  EXPECT_GT(astar_stats.table_bytes, 0u);
  EXPECT_LE(astar_stats.table_bytes, options.max_memory_bytes);
}

TEST(BigScale, BothSearchesProveTheSameOptimumOnA50NodeStencil) {
  // A branching (non-chain) instance well past the fixed-width cap: 50
  // nodes of 1-D stencil in nodel. Two independent searches — sequential
  // A* and HDA* — must certify the same optimum; their agreement is the
  // cross-check that the bigstate machinery (variable-width states, PDB
  // heuristic, seeded incumbent) preserved exactness.
  Dag dag = make_stencil1d_dag(2, 24).dag;
  ASSERT_EQ(dag.node_count(), 50u);
  Engine engine(dag, Model::nodel(), min_red_pebbles(dag));
  ExactSearchOptions options;
  options.max_states = 8'000'000;
  options.max_memory_bytes = std::size_t{512} << 20;
  ExactSearchStats astar_stats, hda_stats;
  auto astar = try_solve_exact_astar(engine, options, &astar_stats);
  auto hda = try_solve_hda_astar(engine, 0, options, &hda_stats);
  ASSERT_TRUE(astar.has_value());
  ASSERT_TRUE(hda.has_value());
  EXPECT_EQ(astar->cost, hda->cost);
  EXPECT_EQ(verify_or_throw(engine, astar->trace).total, astar->cost);
  EXPECT_EQ(verify_or_throw(engine, hda->trace).total, hda->cost);
  EXPECT_GE(astar->cost, cost_lower_bound(dag, Model::nodel(),
                                          min_red_pebbles(dag)));
}

TEST(BigScale, RegistryCapsAdvertiseTheLiftedLimit) {
  Dag dag = make_chain_dag(48);
  Engine engine(dag, Model::oneshot(), 2);
  SolveRequest request;
  request.engine = &engine;
  request.budget.max_memory_bytes = std::size_t{64} << 20;
  for (const char* name : {"exact-astar", "hda-astar"}) {
    SolveResult result = SolverRegistry::instance().at(name).run(request);
    ASSERT_EQ(result.status, SolveStatus::Optimal) << name;
    EXPECT_EQ(result.cost, Rational(0)) << name;
  }
}

}  // namespace
}  // namespace rbpeb
