// The unified solver API: registry behavior and a full applicability ×
// workload × model matrix in which every returned trace must survive the
// Verifier and every reported cost must equal the verifier's audited total.
#include "src/solvers/api.hpp"

#include <gtest/gtest.h>

#include "src/gadgets/tradeoff_chain.hpp"
#include "src/pebble/bounds.hpp"
#include "src/pebble/verifier.hpp"
#include "src/support/check.hpp"
#include "src/workloads/chain.hpp"
#include "src/workloads/matmul.hpp"
#include "src/workloads/tree_reduction.hpp"

namespace rbpeb {
namespace {

TEST(SolverRegistry, ListsAtLeastEightBuiltins) {
  const SolverRegistry& registry = SolverRegistry::instance();
  EXPECT_GE(registry.size(), 8u);
  for (const char* name :
       {"greedy", "greedy-fewest-blue", "greedy-red-ratio", "topo", "exact",
        "exact-astar", "hda-astar", "peephole", "held-karp", "chain",
        "group-greedy", "local-search", "exhaustive-order"}) {
    EXPECT_NE(registry.find(name), nullptr) << name;
    EXPECT_EQ(registry.at(name).name(), name);
  }
}

TEST(SolverRegistry, UnknownNameIsNullOrThrows) {
  const SolverRegistry& registry = SolverRegistry::instance();
  EXPECT_EQ(registry.find("no-such-solver"), nullptr);
  EXPECT_THROW(registry.at("no-such-solver"), PreconditionError);
}

TEST(SolverRegistry, DuplicateRegistrationThrows) {
  SolverRegistry registry;
  register_builtin_solvers(registry);
  EXPECT_THROW(register_builtin_solvers(registry), PreconditionError);
}

TEST(SolverRegistry, PrivateRegistriesAreIndependent) {
  SolverRegistry registry;
  EXPECT_EQ(registry.size(), 0u);
  register_builtin_solvers(registry);
  EXPECT_EQ(registry.size(), SolverRegistry::instance().size());
}

// ---- the workload × model × solver matrix -------------------------------

struct MatrixCase {
  std::string workload;
  std::size_t model_index;
};

void PrintTo(const MatrixCase& c, std::ostream* os) {
  *os << c.workload << "_" << all_models()[c.model_index].name();
}

class ApiMatrix : public ::testing::TestWithParam<MatrixCase> {
 protected:
  Dag make_dag() const {
    const std::string& w = GetParam().workload;
    if (w == "chain") return make_chain_dag(8);
    if (w == "tree") return make_tree_reduction_dag(4).dag;
    return make_matmul_dag(2).dag;  // 2×2 matmul, 20 nodes
  }
  const Model& model() const { return all_models()[GetParam().model_index]; }
};

TEST_P(ApiMatrix, EveryApplicableSolverVerifiesAndReportsAuditedCost) {
  Dag dag = make_dag();
  Engine engine(dag, model(), min_red_pebbles(dag) + 1);
  SolveRequest request;
  request.engine = &engine;
  // Keep the exact solver quick: on the 20-node matmul it exhausts this
  // budget (a legal outcome the matrix also exercises) instead of spending
  // minutes proving an optimum.
  request.budget.max_states = 40'000;
  request.budget.max_iterations = 200;

  for (const Solver* solver : SolverRegistry::instance().solvers()) {
    SolveResult result = solver->run(request);
    EXPECT_EQ(result.solver, solver->name());
    switch (result.status) {
      case SolveStatus::Optimal:
      case SolveStatus::Heuristic: {
        ASSERT_TRUE(result.has_trace()) << result.solver;
        VerifyResult vr = verify_or_throw(engine, *result.trace);
        EXPECT_EQ(result.cost, vr.total) << result.solver;
        break;
      }
      case SolveStatus::BudgetExhausted:
        // Only the state-budgeted exact searches may run out here — and
        // when they do, partial progress is still reported.
        EXPECT_TRUE(result.solver == "exact" ||
                    result.solver == "exact-astar" ||
                    result.solver == "hda-astar")
            << result.solver;
        EXPECT_FALSE(result.detail.empty());
        EXPECT_TRUE(result.stats.contains("states_expanded")) << result.solver;
        break;
      case SolveStatus::Inapplicable:
        // No group structure in the request: all group/chain solvers sit
        // out; nothing else may.
        EXPECT_TRUE(result.solver == "held-karp" || result.solver == "chain" ||
                    result.solver == "group-greedy" ||
                    result.solver == "local-search" ||
                    result.solver == "exhaustive-order")
            << result.solver << ": " << result.detail;
        break;
    }
  }
}

std::vector<MatrixCase> matrix_cases() {
  std::vector<MatrixCase> cases;
  for (const std::string& w : {"chain", "tree", "matmul2"}) {
    for (std::size_t m = 0; m < all_models().size(); ++m) {
      cases.push_back({w, m});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Workloads, ApiMatrix,
                         ::testing::ValuesIn(matrix_cases()),
                         [](const auto& info) {
                           return info.param.workload + "_" +
                                  std::string(
                                      all_models()[info.param.model_index]
                                          .name());
                         });

// ---- group-structured requests ------------------------------------------

class ApiGroupMatrix : public ::testing::TestWithParam<std::size_t> {
 protected:
  const Model& model() const { return all_models()[GetParam()]; }
};

TEST_P(ApiGroupMatrix, GroupSolversVerifyOnTheTradeoffChain) {
  TradeoffChain chain = make_tradeoff_chain({.d = 3, .length = 4});
  Engine engine(chain.instance.dag, model(), chain.instance.red_limit);
  SolveRequest request;
  request.engine = &engine;
  request.groups = &chain.instance;
  request.chain = &chain;
  request.budget.max_states = 40'000;
  request.budget.max_iterations = 300;

  Rational exhaustive_cost;
  bool exhaustive_ran = false;
  std::vector<std::pair<std::string, Rational>> order_solver_costs;
  for (const Solver* solver : SolverRegistry::instance().solvers()) {
    SolveResult result = solver->run(request);
    if (!result.ok()) continue;
    VerifyResult vr = verify_or_throw(engine, *result.trace);
    EXPECT_EQ(result.cost, vr.total) << result.solver;
    if (result.solver == "exhaustive-order") {
      exhaustive_cost = result.cost;
      exhaustive_ran = true;
    }
    if (result.solver == "group-greedy" || result.solver == "held-karp" ||
        result.solver == "local-search") {
      order_solver_costs.emplace_back(result.solver, result.cost);
    }
  }
  // All group/chain solvers must be applicable on this instance.
  ASSERT_TRUE(exhaustive_ran);
  ASSERT_EQ(order_solver_costs.size(), 3u);
  // Exhaustive search over visit orders lower-bounds every other
  // order-family solver.
  for (const auto& [name, cost] : order_solver_costs) {
    EXPECT_LE(exhaustive_cost, cost) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Models, ApiGroupMatrix,
                         ::testing::Range<std::size_t>(0, 4),
                         [](const auto& info) {
                           return std::string(
                               all_models()[info.param].name());
                         });

// ---- conventions through the API ----------------------------------------

TEST(ApiConventions, BridgedSolversVerifyUnderHongKungConvention) {
  Dag dag = make_tree_reduction_dag(4).dag;
  Engine engine(dag, Model::oneshot(), 3,
                PebblingConvention{.sources_start_blue = true,
                                  .sinks_end_blue = true});
  SolveRequest request;
  request.engine = &engine;
  for (const char* name :
       {"greedy", "topo", "exact", "exact-astar", "peephole"}) {
    SolveResult result = SolverRegistry::instance().at(name).run(request);
    ASSERT_TRUE(result.ok()) << name << ": " << result.detail;
    VerifyResult vr = verify_or_throw(engine, *result.trace);
    EXPECT_EQ(result.cost, vr.total) << name;
    // Four leaves must be loaded from their pre-placed blue pebbles and the
    // root stored, so the cost is at least 5.
    EXPECT_GE(result.cost, Rational(5)) << name;
  }
}

TEST(ApiStats, ResultCarriesAuditBreakdown) {
  Dag dag = make_chain_dag(6);
  Engine engine(dag, Model::oneshot(), 2);
  SolveRequest request;
  request.engine = &engine;
  SolveResult result = SolverRegistry::instance().at("greedy").run(request);
  ASSERT_TRUE(result.ok());
  for (const char* key :
       {"loads", "stores", "computes", "deletes", "transfers", "moves",
        "peak_red", "rule", "eviction"}) {
    EXPECT_TRUE(result.stats.contains(key)) << key;
  }
  EXPECT_EQ(result.stats.at("computes"), "6");
}

TEST(ApiOptions, MalformedOptionThrows) {
  Dag dag = make_chain_dag(4);
  Engine engine(dag, Model::oneshot(), 2);
  SolveRequest request;
  request.engine = &engine;
  request.options["seed"] = "not-a-number";
  EXPECT_THROW(SolverRegistry::instance().at("greedy").run(request),
               PreconditionError);
  request.options.clear();
  request.options["rule"] = "no-such-rule";
  EXPECT_THROW(SolverRegistry::instance().at("greedy").run(request),
               PreconditionError);
}

TEST(ApiOptions, UnknownOptionKeyFailsWithAcceptedList) {
  Dag dag = make_chain_dag(4);
  Engine engine(dag, Model::oneshot(), 2);
  SolveRequest request;
  request.engine = &engine;
  request.options["rulee"] = "lru";  // the classic typo: silently ran defaults
  try {
    SolverRegistry::instance().at("greedy").run(request);
    FAIL() << "expected PreconditionError for an unknown option key";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rulee"), std::string::npos);
    EXPECT_NE(what.find("rule"), std::string::npos);
    EXPECT_NE(what.find("eviction"), std::string::npos);
  }
  // A key another solver accepts is still unknown to this one.
  request.options.clear();
  request.options["iterations"] = "5";
  EXPECT_THROW(SolverRegistry::instance().at("greedy").run(request),
               PreconditionError);
}

TEST(ApiOptions, OptionlessSolversRejectEveryKey) {
  Dag dag = make_chain_dag(4);
  Engine engine(dag, Model::oneshot(), 2);
  SolveRequest request;
  request.engine = &engine;
  request.options["seed"] = "1";
  EXPECT_THROW(SolverRegistry::instance().at("chain").run(request),
               PreconditionError);
}

TEST(ApiOptions, PeepholeForwardsOnlyTheInnerSolversKeys) {
  // rule targets the inner greedy; max-passes targets peephole itself. The
  // combination must pass validation at both layers.
  Dag dag = make_matmul_dag(2).dag;
  Engine engine(dag, Model::oneshot(), 4);
  SolveRequest request;
  request.engine = &engine;
  request.options["inner"] = "greedy";
  request.options["rule"] = "red-ratio";
  request.options["max-passes"] = "2";
  SolveResult result = SolverRegistry::instance().at("peephole").run(request);
  ASSERT_TRUE(result.ok()) << result.detail;
  EXPECT_EQ(result.stats.at("inner"), "greedy");
  // A key only a *different* inner solver would read is rejected, not
  // silently dropped: with inner=greedy, "iterations" tunes nothing.
  request.options["iterations"] = "50";
  EXPECT_THROW(SolverRegistry::instance().at("peephole").run(request),
               PreconditionError);
}

TEST(ApiOptions, GreedyRuleOptionMatchesDedicatedRegistration) {
  Dag dag = make_matmul_dag(2).dag;
  Engine engine(dag, Model::oneshot(), 4);
  SolveRequest by_option;
  by_option.engine = &engine;
  by_option.options["rule"] = "fewest-blue-inputs";
  SolveResult a = SolverRegistry::instance().at("greedy").run(by_option);
  SolveRequest fixed;
  fixed.engine = &engine;
  SolveResult b =
      SolverRegistry::instance().at("greedy-fewest-blue").run(fixed);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.cost, b.cost);
}

}  // namespace
}  // namespace rbpeb
