#include "src/solvers/topo_baseline.hpp"

#include <gtest/gtest.h>

#include "src/graph/dag_algorithms.hpp"
#include "src/graph/dag_builder.hpp"
#include "src/pebble/bounds.hpp"
#include "src/pebble/verifier.hpp"
#include "src/support/check.hpp"
#include "src/workloads/random_layered.hpp"

namespace rbpeb {
namespace {

TEST(TopoBaseline, RejectsNonTopologicalOrder) {
  DagBuilder b;
  b.add_nodes(2);
  b.add_edge(0, 1);
  Dag dag = b.build();
  Engine engine(dag, Model::oneshot(), 2);
  EXPECT_THROW(pebble_in_order(engine, {1, 0}), PreconditionError);
}

TEST(TopoBaseline, MinimalBudgetChain) {
  DagBuilder b;
  b.add_nodes(6);
  for (NodeId v = 0; v + 1 < 6; ++v) b.add_edge(v, v + 1);
  Dag dag = b.build();
  Engine engine(dag, Model::oneshot(), 2);
  VerifyResult vr = verify_or_throw(engine, solve_topo_baseline(engine));
  EXPECT_EQ(vr.total, Rational(0));
  EXPECT_LE(vr.max_red, 2u);
}

class BaselineSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t, std::size_t>> {};

INSTANTIATE_TEST_SUITE_P(
    RandomDags, BaselineSweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(10, 11, 12, 13),
                       ::testing::Values<std::size_t>(2, 3),
                       ::testing::Values<std::size_t>(0, 3)));

// The paper's universal guarantee: any topological order can be pebbled at
// transfer cost <= (2Δ+1)·n with the minimum budget, in every model.
TEST_P(BaselineSweep, UniversalBoundHolds) {
  auto [seed, indeg, extra_r] = GetParam();
  Dag dag = make_random_layered_dag({.layers = 4, .width = 5, .indegree = indeg,
                                     .seed = seed});
  const std::size_t r = min_red_pebbles(dag) + extra_r;
  const std::int64_t n = static_cast<std::int64_t>(dag.node_count());
  const std::int64_t delta = static_cast<std::int64_t>(dag.max_indegree());
  for (const Model& model : all_models()) {
    Engine engine(dag, model, r);
    Trace trace = solve_topo_baseline(engine);
    VerifyResult vr = verify(engine, trace);
    ASSERT_TRUE(vr.ok()) << model.name() << ": " << vr.error;
    EXPECT_LE(Rational(vr.cost.transfers()), Rational((2 * delta + 1) * n))
        << model.name();
    EXPECT_LE(vr.max_red, r);
  }
}

TEST(TopoBaseline, ArbitraryTopologicalOrderAccepted) {
  Dag dag = make_random_layered_dag({.layers = 3, .width = 4, .indegree = 2,
                                     .seed = 77});
  // Reverse-of-Kahn variants: any valid topological order must work.
  auto order = topological_order(dag);
  Engine engine(dag, Model::nodel(), min_red_pebbles(dag));
  EXPECT_TRUE(verify(engine, pebble_in_order(engine, order)).ok());
}

TEST(TopoBaseline, NodelCostAtLeastNMinusR) {
  Dag dag = make_random_layered_dag({.layers = 5, .width = 5, .indegree = 2,
                                     .seed = 21});
  std::size_t r = min_red_pebbles(dag);
  Engine engine(dag, Model::nodel(), r);
  VerifyResult vr = verify_or_throw(engine, solve_topo_baseline(engine));
  EXPECT_GE(vr.total,
            Rational(static_cast<std::int64_t>(dag.node_count() - r)));
}

}  // namespace
}  // namespace rbpeb
