// The instance ingestion layer end to end: text↔binary↔Dag round trips
// across every generator family, the .rbg loader's validation surface
// (truncation, bad magic, count overflow, cycles — each rejected, never
// crashed), zero-copy adoption of the file mapping, the serve tier's
// dag_file confinement jail, and the differential guarantee the format
// exists for: the SAME instance ingested as text and as binary solves to
// byte-identical cost, trace, and fingerprint.
#include "src/instances/spec.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/graph/dag_io.hpp"
#include "src/instances/binary_format.hpp"
#include "src/pebble/trace_io.hpp"
#include "src/pebble/verifier.hpp"
#include "src/serve/canonical.hpp"
#include "src/serve/server.hpp"
#include "src/solvers/api.hpp"
#include "src/support/check.hpp"

namespace rbpeb::instances {
namespace {

namespace fs = std::filesystem;

/// A scratch directory fresh per test, removed on scope exit.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("rbpeb_ingest_" + tag + "_" +
              std::to_string(::getpid()))) {
    fs::create_directories(path);
  }
  ~TempDir() { std::error_code ec; fs::remove_all(path, ec); }
  std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

/// Rehouse arbitrary bytes into u32 storage so from_rbg_buffer sees the
/// 4-byte alignment the format requires regardless of string allocators.
Dag parse_rbg(const std::string& bytes) {
  auto cells = std::make_shared<std::vector<std::uint32_t>>(
      (bytes.size() + 3) / 4, 0);
  std::memcpy(cells->data(), bytes.data(), bytes.size());
  std::span<const std::byte> view{
      reinterpret_cast<const std::byte*>(cells->data()), bytes.size()};
  return from_rbg_buffer(view, cells);
}

bool same_adjacency(const Dag& a, const Dag& b) {
  if (a.node_count() != b.node_count() || a.edge_count() != b.edge_count()) {
    return false;
  }
  for (std::size_t v = 0; v < a.node_count(); ++v) {
    const NodeId id = static_cast<NodeId>(v);
    const auto pa = a.predecessors(id), pb = b.predecessors(id);
    const auto sa = a.successors(id), sb = b.successors(id);
    if (!std::equal(pa.begin(), pa.end(), pb.begin(), pb.end()) ||
        !std::equal(sa.begin(), sa.end(), sb.begin(), sb.end())) {
      return false;
    }
  }
  return true;
}

// ---- round trips across the generator registry ---------------------------

TEST(Ingest, BinaryRoundTripAcrossGenerators) {
  const std::vector<std::string> specs = {
      "chain:n=17",
      "pyramid:base=5",
      "tree:leaves=16",
      "fft:size=8",
      "matmul:n=2",
      "lu:n=3",
      "stencil:width=5,steps=3",
      "stencil2d:width=3,height=4,steps=2",
      "layered:layers=5,width=7,indegree=3,seed=11",
      "wide:width=33,depth=2",
      "skew:spine=6,fan=5",
      "hampath:n=4,p=0.7,seed=2,model=oneshot",
      "hampath-cd:n=4,p=0.7,seed=2,layers=3",
      "vertexcover:n=4,p=0.5,seed=1,k=8",
      "grid:ell=2,k=6,intersection=2",
      "tradeoff:d=3,length=5",
  };
  for (const std::string& spec : specs) {
    SCOPED_TRACE(spec);
    const Dag dag = resolve_instance(spec).dag;
    // Binary round trip preserves the adjacency bit-for-bit…
    const Dag back = parse_rbg(to_rbg_bytes(dag));
    EXPECT_TRUE(same_adjacency(dag, back));
    // …and so does the text round trip, byte-identically.
    EXPECT_EQ(to_text(back), to_text(dag));
    EXPECT_EQ(to_rbg_bytes(back), to_rbg_bytes(dag));
  }
}

TEST(Ingest, CanonicalSpecFillsDefaultsAndSortsParams) {
  const InstanceSpec a = InstanceSpec::parse("layered:seed=3,width=4");
  EXPECT_EQ(a.canonical, "layered:indegree=2,layers=4,seed=3,width=4");
  EXPECT_THROW(InstanceSpec::parse("layered:bogus=1"), PreconditionError);
  EXPECT_THROW(InstanceSpec::parse("layered:seed=1,seed=2"),
               PreconditionError);
  EXPECT_THROW(InstanceSpec::parse("no-such-generator"), PreconditionError);
}

// ---- loader validation ----------------------------------------------------

TEST(Ingest, LoaderRejectsCorruptImages) {
  const Dag dag = resolve_instance("layered:layers=4,width=4,seed=7").dag;
  const std::string good = to_rbg_bytes(dag);
  ASSERT_NO_THROW(parse_rbg(good));

  // Truncated at every interesting boundary.
  for (std::size_t cut : {std::size_t{0}, std::size_t{7}, std::size_t{31},
                          good.size() - 1}) {
    EXPECT_THROW(parse_rbg(good.substr(0, cut)), PreconditionError)
        << "cut=" << cut;
  }
  // Trailing garbage is as malformed as missing bytes.
  EXPECT_THROW(parse_rbg(good + "x"), PreconditionError);

  // Bad magic.
  std::string bad = good;
  bad[0] = 'X';
  EXPECT_THROW(parse_rbg(bad), PreconditionError);

  // Unsupported version and nonzero flags.
  bad = good;
  bad[8] = 99;
  EXPECT_THROW(parse_rbg(bad), PreconditionError);
  bad = good;
  bad[12] = 1;
  EXPECT_THROW(parse_rbg(bad), PreconditionError);

  // Node-count overflow: n beyond the NodeId range must be rejected before
  // any size arithmetic can wrap.
  bad = good;
  const std::uint64_t huge = ~std::uint64_t{0};
  std::memcpy(&bad[16], &huge, sizeof(huge));
  EXPECT_THROW(parse_rbg(bad), PreconditionError);
}

TEST(Ingest, LoaderRejectsCyclicAndIncoherentAdjacency) {
  // 2-cycle, consistently encoded in both CSR directions: only the Kahn
  // pass can reject it. Hand-build the image: n=2, e=2, 0->1 and 1->0.
  std::vector<std::uint32_t> words;
  const auto push_u64 = [&words](std::uint64_t v) {
    words.push_back(static_cast<std::uint32_t>(v));
    words.push_back(static_cast<std::uint32_t>(v >> 32));
  };
  std::uint32_t magic_lo, magic_hi;
  std::memcpy(&magic_lo, kRbgMagic.data(), 4);
  std::memcpy(&magic_hi, kRbgMagic.data() + 4, 4);
  words.push_back(magic_lo);
  words.push_back(magic_hi);
  words.push_back(kRbgVersion);
  words.push_back(0);  // flags
  push_u64(2);         // nodes
  push_u64(2);         // edges
  for (std::uint32_t v : {0u, 1u, 2u}) words.push_back(v);  // in_offsets
  words.push_back(1);  // preds(0) = {1}
  words.push_back(0);  // preds(1) = {0}
  for (std::uint32_t v : {0u, 1u, 2u}) words.push_back(v);  // out_offsets
  words.push_back(1);  // succs(0) = {1}
  words.push_back(0);  // succs(1) = {0}
  const std::string cyclic(reinterpret_cast<const char*>(words.data()),
                           words.size() * 4);
  EXPECT_THROW(parse_rbg(cyclic), PreconditionError);

  // Same image with preds(1) claiming {1}: a self-loop plus an in/out
  // mismatch — rejected by the structural checks before Kahn runs.
  std::string selfloop = cyclic;
  selfloop[kRbgHeaderBytes + 3 * 4 + 4] = 1;
  EXPECT_THROW(parse_rbg(selfloop), PreconditionError);
}

// ---- zero-copy mmap adoption ---------------------------------------------

TEST(Ingest, MappedInstanceServesAdjacencyFromTheMapping) {
  TempDir dir("mmap");
  const Dag dag =
      resolve_instance("layered:layers=20,width=512,indegree=2,seed=71").dag;
  ASSERT_GE(dag.node_count(), 10'000u);
  write_rbg_file(dag, dir.file("big.rbg"));

  MappedInstance mapped = load_rbg_file(dir.file("big.rbg"));
  EXPECT_TRUE(mapped.dag.adjacency_external());
  EXPECT_EQ(mapped.size, rbg_image_bytes(dag.node_count(), dag.edge_count()));
  // The edge arrays are the file's bytes, not a copy: every adjacency span
  // must point inside the mapping.
  const auto* lo = mapped.data;
  const auto* hi = mapped.data + mapped.size;
  for (NodeId v : {NodeId{0}, static_cast<NodeId>(dag.node_count() - 1)}) {
    const auto preds = mapped.dag.predecessors(v);
    if (!preds.empty()) {
      const auto* p = reinterpret_cast<const std::byte*>(preds.data());
      EXPECT_GE(p, lo);
      EXPECT_LT(p, hi);
    }
  }
  EXPECT_TRUE(same_adjacency(dag, mapped.dag));

  // Copies share the mapping; the original going away must not unmap it.
  Dag copy = mapped.dag;
  EXPECT_TRUE(copy.adjacency_external());
  mapped.dag = Dag();
  EXPECT_EQ(copy.node_count(), dag.node_count());
  EXPECT_TRUE(same_adjacency(dag, copy));
}

// ---- the serve jail -------------------------------------------------------

TEST(Ingest, ServeDagFileConfinement) {
  TempDir dir("jail");
  const Dag dag = resolve_instance("tree:leaves=8").dag;
  write_rbg_file(dag, dir.file("inst.rbg"));
  std::ofstream(dir.file("inst.txt")) << to_text(dag);
  // A decoy outside the root that every escape attempt aims for.
  TempDir outside("outside");
  std::ofstream(outside.file("secret.txt")) << to_text(dag);

  serve::ServerOptions options;
  options.workers = 1;
  options.instance_root = dir.path.string();
  serve::Server server(options);

  const auto ask = [&server](const std::string& file) {
    serve::RequestMessage request;
    request.id = file;
    request.dag_file = file;
    request.red_limit = 3;
    request.solver = "greedy";
    return server.solve(std::move(request));
  };

  EXPECT_EQ(ask("inst.rbg").status, "heuristic");
  EXPECT_EQ(ask("inst.txt").status, "heuristic");
  // Escapes: absolute, dot-dot, and a symlink pointing out of the jail.
  EXPECT_EQ(ask(outside.file("secret.txt")).status, "error");
  EXPECT_EQ(ask("../" + outside.path.filename().string() + "/secret.txt")
                .status,
            "error");
  std::error_code ec;
  fs::create_symlink(outside.file("secret.txt"), dir.file("link.txt"), ec);
  if (!ec) EXPECT_EQ(ask("link.txt").status, "error");
  // Missing files are request errors, not crashes.
  EXPECT_EQ(ask("absent.txt").status, "error");

  // With no root configured, every dag_file request is rejected.
  serve::Server closed(serve::ServerOptions{.workers = 1});
  serve::RequestMessage request;
  request.id = "closed";
  request.dag_file = "inst.txt";
  request.red_limit = 3;
  EXPECT_EQ(closed.solve(std::move(request)).status, "error");
}

// ---- the differential guarantee ------------------------------------------

TEST(Ingest, TextAndBinarySolveByteIdentically) {
  TempDir dir("diff");
  const std::string spec = "layered:layers=6,width=5,indegree=2,seed=23";
  const Dag generated = resolve_instance(spec).dag;
  std::ofstream(dir.file("inst.txt")) << to_text(generated);
  write_rbg_file(generated, dir.file("inst.rbg"));

  const ResolvedInstance via_text =
      resolve_instance("file:" + dir.file("inst.txt"));
  const ResolvedInstance via_binary =
      resolve_instance("file:" + dir.file("inst.rbg"));
  EXPECT_EQ(via_text.mapped_bytes, 0u);
  EXPECT_GT(via_binary.mapped_bytes, 0u);
  EXPECT_TRUE(same_adjacency(via_text.dag, via_binary.dag));

  // Same fingerprint — the serve cache key cannot depend on the container.
  const Model model = Model::nodel();
  const PebblingConvention convention;
  const SolverOptions no_options;
  const std::string fp_text = serve::instance_fingerprint(
      serve::canonicalize(via_text.dag), model, convention, 3, "greedy",
      no_options);
  const std::string fp_binary = serve::instance_fingerprint(
      serve::canonicalize(via_binary.dag), model, convention, 3, "greedy",
      no_options);
  EXPECT_EQ(fp_text, fp_binary);

  // Same solve, down to the trace text: tie-breaks see the same adjacency
  // order whichever container the instance arrived in.
  const auto solve = [&](const Dag& dag) {
    Engine engine(dag, model, 3, convention);
    SolveRequest request;
    request.engine = &engine;
    SolveResult result =
        SolverRegistry::instance().at("certified-greedy").run(request);
    RBPEB_REQUIRE(result.has_trace(), "differential solve lost its trace");
    const Rational audited = verify_or_throw(engine, *result.trace).total;
    return std::pair(audited.str(), trace_to_text(*result.trace));
  };
  const auto [cost_text, trace_text] = solve(via_text.dag);
  const auto [cost_binary, trace_binary] = solve(via_binary.dag);
  EXPECT_EQ(cost_text, cost_binary);
  EXPECT_EQ(trace_text, trace_binary);
}

}  // namespace
}  // namespace rbpeb::instances
