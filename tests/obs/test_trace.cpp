// Flight recorder: no events when no sink is set, balanced begin/end pairs
// in the drained JSON, counted (not crashed) drops past ring capacity, and
// TSan-clean concurrent emission.
#include "src/obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace rbpeb::obs {
namespace {

#ifndef RBPEB_OBS_NO_TRACE

class TraceTest : public ::testing::Test {
 protected:
  // Each test starts from a disabled, empty recorder; the sink path is a
  // throwaway name — no test here calls trace_flush, so nothing is written.
  void SetUp() override { trace_reset(); }
  void TearDown() override { trace_reset(); }
};

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST_F(TraceTest, NoEventsWhenDisabled) {
  EXPECT_FALSE(trace_enabled());
  trace_begin("off.span");
  trace_instant("off.instant", "k", 1);
  trace_end("off.span");
  EXPECT_EQ(trace_event_count(), 0u);
  const std::string json = trace_to_json();
  EXPECT_EQ(count_occurrences(json, "\"ph\""), 0u);
}

TEST_F(TraceTest, BalancedBeginEndPairsInJson) {
  trace_set_output("unused_trace_sink.json");
  ASSERT_TRUE(trace_enabled());
  {
    const TraceSpan outer("test.outer", "arg", 1);
    const TraceSpan inner("test.inner");
    trace_instant("test.instant", "v", 42);
  }
  const std::string json = trace_to_json();
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"E\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"i\""), 1u);
  EXPECT_NE(json.find("test.outer"), std::string::npos);
  EXPECT_NE(json.find("test.inner"), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
}

TEST_F(TraceTest, RingWraparoundCountsDropsWithoutCrashing) {
  trace_set_output("unused_trace_sink.json");
  constexpr std::size_t kOverflow = 1000;
  for (std::size_t i = 0; i < kTraceRingCapacity + kOverflow; ++i) {
    trace_instant("test.flood", "i", i);
  }
  EXPECT_EQ(trace_event_count(), kTraceRingCapacity);
  EXPECT_EQ(trace_dropped(), kOverflow);
  const std::string json = trace_to_json();
  EXPECT_NE(json.find("\"dropped\":1000"), std::string::npos);
}

TEST_F(TraceTest, ConcurrentEmittersEachGetOwnTrack) {
  trace_set_output("unused_trace_sink.json");
  constexpr int kThreads = 4;
  constexpr std::size_t kEventsPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (std::size_t i = 0; i < kEventsPerThread; ++i) {
        const TraceSpan span("test.worker", "i", i);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(trace_event_count(), kThreads * kEventsPerThread * 2);
  EXPECT_EQ(trace_dropped(), 0u);
  const std::string json = trace_to_json();
  // Each thread drains onto its own tid track.
  std::size_t distinct_tids = 0;
  for (int tid = 1; tid <= kThreads + 1; ++tid) {
    if (json.find("\"tid\":" + std::to_string(tid) + ",") !=
        std::string::npos) {
      ++distinct_tids;
    }
  }
  EXPECT_GE(distinct_tids, static_cast<std::size_t>(kThreads));
}

TEST_F(TraceTest, SpanWithNullNameIsNoOp) {
  trace_set_output("unused_trace_sink.json");
  {
    const TraceSpan span(nullptr, "arg", 7);
  }
  EXPECT_EQ(trace_event_count(), 0u);
}

TEST_F(TraceTest, ResetClearsEventsAndDisables) {
  trace_set_output("unused_trace_sink.json");
  trace_instant("test.pre_reset");
  EXPECT_EQ(trace_event_count(), 1u);
  trace_reset();
  EXPECT_FALSE(trace_enabled());
  EXPECT_EQ(trace_event_count(), 0u);
  EXPECT_EQ(trace_dropped(), 0u);
}

TEST_F(TraceTest, ScopedContextStampsEventsAndRestoresOnExit) {
  trace_set_output("unused_trace_sink.json");
  trace_instant("test.before");  // ctx 0: no args.ctx rendered
  {
    const ScopedTraceContext ctx(42);
    trace_instant("test.tagged");
    {
      const ScopedTraceContext inner(7);
      trace_instant("test.inner");
    }
    trace_instant("test.tagged_again");  // back to 42 after inner unwinds
  }
  trace_instant("test.after");  // back to 0
  const std::string json = trace_to_json();
  EXPECT_EQ(count_occurrences(json, "\"ctx\":42"), 2u);
  EXPECT_EQ(count_occurrences(json, "\"ctx\":7"), 1u);
  EXPECT_EQ(count_occurrences(json, "\"ctx\":0"), 0u);  // 0 renders nothing
}

TEST_F(TraceTest, TailIsNonDestructiveAndCapsEventCount) {
  trace_set_output("unused_trace_sink.json");
  for (int i = 0; i < 10; ++i) trace_instant("test.event", "i", i);
  const std::string tail = trace_tail_json(3);
  // The last three events, newest data preserved...
  EXPECT_EQ(count_occurrences(tail, "test.event"), 3u);
  EXPECT_NE(tail.find("\"i\":9"), std::string::npos);
  EXPECT_EQ(tail.find("\"i\":0"), std::string::npos);
  // ...and the ring untouched: a full drain still sees all ten.
  EXPECT_EQ(trace_event_count(), 10u);
  const std::string full = trace_to_json();
  EXPECT_EQ(count_occurrences(full, "test.event"), 10u);
}

#else  // RBPEB_OBS_NO_TRACE

TEST(TraceCompiledOut, EverythingIsANoOp) {
  trace_set_output("unused_trace_sink.json");
  EXPECT_FALSE(trace_enabled());
  trace_begin("gone");
  trace_end("gone");
  trace_instant("gone", "k", 1);
  { const TraceSpan span("gone", "k", 2); }
  EXPECT_EQ(trace_event_count(), 0u);
  EXPECT_EQ(trace_dropped(), 0u);
  EXPECT_EQ(trace_to_json(), std::string("{\"traceEvents\":[]}"));
  EXPECT_EQ(trace_tail_json(8), std::string("{\"traceEvents\":[]}"));
}

#endif  // RBPEB_OBS_NO_TRACE

}  // namespace
}  // namespace rbpeb::obs
