// Search introspection: the progress sampler's bound gap is monotone
// non-increasing by construction, bound-source attribution sums exactly to
// the expansion count across models × conventions × search loops, an
// attached-but-idle sampler leaves costs and expansion counts byte-identical
// (the no-feedback guarantee), the h-error replay certifies admissibility
// along optimal traces, and the post-mortem writer lays out the black box it
// documents.
#include "src/obs/introspect.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/postmortem.hpp"
#include "src/pebble/bounds.hpp"
#include "src/solvers/anytime_astar.hpp"
#include "src/solvers/api.hpp"
#include "src/solvers/exact_astar.hpp"
#include "src/solvers/hda/hda_astar.hpp"
#include "src/workloads/pyramid.hpp"
#include "src/workloads/random_layered.hpp"
#include "src/workloads/tree_reduction.hpp"

namespace rbpeb {
namespace {

using obs::ProgressObservation;
using obs::ProgressSnapshot;
using obs::SearchProgressSampler;

// ---- sampler unit behavior ----------------------------------------------

SearchProgressSampler::Options eager_options() {
  SearchProgressSampler::Options options;
  options.min_interval_us = 0;  // publish at every checkpoint offered
  return options;
}

TEST(SearchProgressSampler, BoundGapIsMonotoneUnderFluctuatingFrontier) {
  SearchProgressSampler sampler(eager_options());
  // The admissible bound is not consistent: the popped frontier f can dip.
  // The incumbent improves (decreases) as better completions are found.
  const std::int64_t frontier[] = {4, 6, 5, 7, 6, 8, 7, 9};
  const std::int64_t incumbent[] = {-1, 20, 20, 18, 18, 15, 15, 12};
  for (std::size_t i = 0; i < 8; ++i) {
    ProgressObservation ob;
    ob.expanded = (i + 1) * 1024;
    ob.frontier_f_scaled = frontier[i];
    ob.incumbent_scaled = incumbent[i];
    sampler.observe(ob);
  }
  const std::vector<ProgressSnapshot> history = sampler.history();
  ASSERT_EQ(history.size(), 8u);
  std::int64_t last_floor = -1;
  std::int64_t last_gap = std::numeric_limits<std::int64_t>::max();
  double last_progress = 0.0;
  for (const ProgressSnapshot& snap : history) {
    // f_floor is a running max; never forgets the best proved bound.
    EXPECT_GE(snap.f_floor_scaled, last_floor);
    last_floor = snap.f_floor_scaled;
    if (snap.bound_gap_scaled >= 0) {
      EXPECT_LE(snap.bound_gap_scaled, last_gap);
      last_gap = snap.bound_gap_scaled;
      EXPECT_GE(snap.progress, last_progress);
      last_progress = snap.progress;
    }
    EXPECT_GE(snap.progress, 0.0);
    EXPECT_LE(snap.progress, 1.0);
  }
  // The final snapshot: floor is the max frontier seen (9), incumbent the
  // best completion (12), so the gap closed from 20-6=14 to 3.
  EXPECT_EQ(history.back().f_floor_scaled, 9);
  EXPECT_EQ(history.back().incumbent_scaled, 12);
  EXPECT_EQ(history.back().bound_gap_scaled, 3);
}

TEST(SearchProgressSampler, IncumbentNeverRegresses) {
  SearchProgressSampler sampler(eager_options());
  ProgressObservation ob;
  ob.frontier_f_scaled = 5;
  ob.incumbent_scaled = 10;
  sampler.observe(ob);
  ob.incumbent_scaled = 12;  // a later, worse observation must not widen
  sampler.observe(ob);
  EXPECT_EQ(sampler.last_snapshot().incumbent_scaled, 10);
}

TEST(SearchProgressSampler, RingKeepsOnlyTheLastSnapshots) {
  SearchProgressSampler::Options options = eager_options();
  options.keep_last = 4;
  SearchProgressSampler sampler(options);
  for (int i = 0; i < 10; ++i) {
    ProgressObservation ob;
    ob.expanded = static_cast<std::uint64_t>(i);
    sampler.observe(ob);
  }
  const std::vector<ProgressSnapshot> history = sampler.history();
  ASSERT_EQ(history.size(), 4u);
  EXPECT_EQ(history.front().expanded, 6u);
  EXPECT_EQ(history.back().expanded, 9u);
  EXPECT_EQ(history.back().seq, 9u);
}

TEST(SearchProgressSampler, SnapshotJsonCarriesTheProgressFields) {
  SearchProgressSampler sampler(eager_options());
  ProgressObservation ob;
  ob.expanded = 2048;
  ob.frontier_f_scaled = 7;
  ob.incumbent_scaled = 10;
  ob.open_states = 55;
  sampler.observe(ob);
  const std::string json = sampler.last_snapshot().to_json();
  EXPECT_NE(json.find("\"expanded\":2048"), std::string::npos);
  EXPECT_NE(json.find("\"f_floor_scaled\":7"), std::string::npos);
  EXPECT_NE(json.find("\"incumbent_scaled\":10"), std::string::npos);
  EXPECT_NE(json.find("\"bound_gap_scaled\":3"), std::string::npos);
  EXPECT_NE(json.find("\"open_states\":55"), std::string::npos);
}

// ---- attribution invariant across the search loops -----------------------

/// Every convention pair the engine supports.
std::vector<PebblingConvention> all_conventions() {
  return {{false, false}, {true, false}, {false, true}, {true, true}};
}

TEST(Attribution, SumsExactlyToExpansionsInExactAstar) {
  const Dag dag = make_pyramid_dag(4).dag;
  for (const Model& model : all_models()) {
    for (const PebblingConvention& convention : all_conventions()) {
      const Engine engine(dag, model, min_red_pebbles(dag) + 1, convention);
      SearchProgressSampler sampler(eager_options());
      ExactSearchOptions options;
      options.progress = &sampler;
      ExactSearchStats stats;
      const auto result = try_solve_exact_astar(engine, options, &stats);
      ASSERT_TRUE(result.has_value()) << model.name();
      EXPECT_EQ(stats.attr_counting + stats.attr_pdb, stats.states_expanded)
          << model.name();
      // The ≤42-node path has no PDB: every expansion is counting-bound.
      EXPECT_EQ(stats.attr_pdb, 0u);
    }
  }
}

TEST(Attribution, SumsExactlyToExpansionsInHdaAstar) {
  const Dag dag = make_pyramid_dag(4).dag;
  for (const Model& model : all_models()) {
    for (const PebblingConvention& convention : all_conventions()) {
      const Engine engine(dag, model, min_red_pebbles(dag) + 1, convention);
      SearchProgressSampler sampler(eager_options());
      ExactSearchOptions options;
      options.progress = &sampler;
      ExactSearchStats stats;
      const auto result = try_solve_hda_astar(engine, 4, options, &stats);
      ASSERT_TRUE(result.has_value()) << model.name();
      EXPECT_EQ(stats.attr_counting + stats.attr_pdb, stats.states_expanded)
          << model.name();
    }
  }
}

TEST(Attribution, SumsExactlyToExpansionsInAnytimeAstar) {
  const Dag dag = make_pyramid_dag(4).dag;
  for (const Model& model : all_models()) {
    for (const PebblingConvention& convention : all_conventions()) {
      const Engine engine(dag, model, min_red_pebbles(dag) + 1, convention);
      SearchProgressSampler sampler(eager_options());
      ExactSearchOptions options;
      options.progress = &sampler;
      AnytimeOptions anytime;
      anytime.weights = {{2, 1}, {1, 1}};
      ExactSearchStats stats;
      const auto result =
          try_solve_anytime_astar(engine, options, anytime, &stats);
      ASSERT_TRUE(result.has_value()) << model.name();
      EXPECT_EQ(stats.attr_counting + stats.attr_pdb, stats.states_expanded)
          << model.name();
    }
  }
}

TEST(Attribution, PdbExpansionsAreAttributedWhenForced) {
  // Force the PDB on so the attribution's Pdb branch is reachable; on a
  // tree the additive projections beat the counting bounds somewhere.
  const Dag dag = make_tree_reduction_dag(8).dag;
  const Engine engine(dag, Model::oneshot(), min_red_pebbles(dag) + 1);
  SearchProgressSampler sampler(eager_options());
  ExactSearchOptions options;
  options.progress = &sampler;
  options.pdb = PdbMode::On;
  ExactSearchStats stats;
  const auto result = try_solve_exact_astar(engine, options, &stats);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(stats.attr_counting + stats.attr_pdb, stats.states_expanded);
}

// ---- the no-feedback guarantee -------------------------------------------

TEST(NoFeedback, AttachedSamplerLeavesCostAndExpansionsByteIdentical) {
  const Dag dag = make_random_layered_dag(
      {.layers = 4, .width = 3, .indegree = 2, .seed = 21});
  for (const Model& model : all_models()) {
    const Engine engine(dag, model, min_red_pebbles(dag) + 1);

    ExactSearchOptions plain;
    ExactSearchStats plain_stats;
    const auto baseline = try_solve_exact_astar(engine, plain, &plain_stats);
    ASSERT_TRUE(baseline.has_value());

    SearchProgressSampler sampler(eager_options());
    ExactSearchOptions instrumented;
    instrumented.progress = &sampler;
    ExactSearchStats instr_stats;
    const auto watched =
        try_solve_exact_astar(engine, instrumented, &instr_stats);
    ASSERT_TRUE(watched.has_value());

    EXPECT_EQ(baseline->cost, watched->cost) << model.name();
    EXPECT_EQ(plain_stats.states_expanded, instr_stats.states_expanded)
        << model.name();
    EXPECT_EQ(plain_stats.dup_skipped, instr_stats.dup_skipped);
    EXPECT_EQ(plain_stats.dead_prunes, instr_stats.dead_prunes);
  }
}

// ---- heuristic error along the optimal trace -----------------------------

TEST(HeuristicError, AdmissibleAlongOptimalTraces) {
  const Dag dag = make_pyramid_dag(4).dag;
  for (const Model& model : all_models()) {
    const Engine engine(dag, model, min_red_pebbles(dag) + 1);
    ExactSearchOptions options;
    ExactSearchStats stats;
    const auto result = try_solve_exact_astar(engine, options, &stats);
    ASSERT_TRUE(result.has_value());
    const obs::HeuristicErrorReport report =
        obs::measure_heuristic_error(engine, result->trace);
    EXPECT_TRUE(report.admissible) << model.name();
    EXPECT_EQ(report.states, result->trace.size() + 1);
    EXPECT_GE(report.max_error_scaled, 0);
    EXPECT_GE(report.mean_error_scaled, 0.0);
    // Admissibility in ratio form: mean h never exceeds mean remaining.
    EXPECT_LE(report.tightness, 1.0 + 1e-9) << model.name();
    EXPECT_GE(report.tightness, 0.0);
  }
}

// ---- solver-API integration ---------------------------------------------

TEST(SolverApi, ProgressRequestFillsAttributionAndHErrorStats) {
  const Dag dag = make_pyramid_dag(4).dag;
  const Engine engine(dag, Model::oneshot(), min_red_pebbles(dag) + 1);
  SearchProgressSampler sampler(eager_options());
  SolveRequest request;
  request.engine = &engine;
  request.progress = &sampler;
  const SolveResult result =
      SolverRegistry::instance().at("exact-astar").run(request);
  ASSERT_EQ(result.status, SolveStatus::Optimal);
  ASSERT_TRUE(result.stats.count("attr_counting"));
  ASSERT_TRUE(result.stats.count("attr_pdb"));
  const std::size_t attributed = std::stoul(result.stats.at("attr_counting")) +
                                 std::stoul(result.stats.at("attr_pdb"));
  EXPECT_EQ(attributed, std::stoul(result.stats.at("states_expanded")));
  EXPECT_EQ(result.stats.at("h_admissible"), "true");
  EXPECT_TRUE(result.stats.count("h_error_max"));
  EXPECT_TRUE(result.stats.count("h_tightness"));
}

TEST(SolverApi, LimitingResourceNamesTheBindingBudget) {
  // A pyramid too big for 50 expansions: the state budget is what binds.
  const Dag dag = make_pyramid_dag(5).dag;
  const Engine engine(dag, Model::oneshot(), min_red_pebbles(dag));
  SolveRequest request;
  request.engine = &engine;
  request.budget.max_states = 50;
  request.options["incumbent"] = "none";
  const SolveResult result =
      SolverRegistry::instance().at("exact-astar").run(request);
  ASSERT_EQ(result.status, SolveStatus::BudgetExhausted);
  ASSERT_TRUE(result.stats.count("limiting_resource"));
  EXPECT_EQ(result.stats.at("limiting_resource"), "states");
  // The verdict agrees with the human-readable detail by construction.
  EXPECT_NE(result.detail.find("state budget"), std::string::npos);
}

TEST(SolverApi, LimitingResourceMemoryWhenSpillDisabled) {
  const Dag dag = make_pyramid_dag(5).dag;
  const Engine engine(dag, Model::oneshot(), min_red_pebbles(dag));
  SolveRequest request;
  request.engine = &engine;
  request.budget.max_memory_bytes = 1;  // nothing fits
  request.options["spill"] = "off";
  request.options["incumbent"] = "none";
  const SolveResult result =
      SolverRegistry::instance().at("exact-astar").run(request);
  ASSERT_EQ(result.status, SolveStatus::BudgetExhausted);
  ASSERT_TRUE(result.stats.count("limiting_resource"));
  const std::string& verdict = result.stats.at("limiting_resource");
  // A 1-byte budget trips either the table proper or its growth headroom;
  // both verdicts blame memory, never disk or states.
  EXPECT_TRUE(verdict == "memory" || verdict == "table-headroom") << verdict;
  EXPECT_NE(result.detail.find("memory budget"), std::string::npos);
}

// ---- post-mortem black box ----------------------------------------------

TEST(Postmortem, WritesTheDocumentedBlackBoxLayout) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "rbpeb_postmortem_test_dir";
  fs::remove_all(dir);

  SearchProgressSampler sampler(eager_options());
  ProgressObservation ob;
  ob.expanded = 1024;
  ob.frontier_f_scaled = 5;
  ob.incumbent_scaled = 9;
  sampler.observe(ob);

  obs::PostmortemReport report;
  report.limiting_resource = "states";
  report.termination = "budget-exhausted";
  report.detail = "state budget (1024) exhausted";
  report.solver = "exact-astar";
  report.stats["states_expanded"] = "1024";
  report.progress = sampler.history();

  const std::string verdict_path = obs::write_postmortem(dir.string(), report);
  ASSERT_FALSE(verdict_path.empty());
  EXPECT_TRUE(fs::exists(dir / "verdict.json"));
  EXPECT_TRUE(fs::exists(dir / "progress.jsonl"));
  EXPECT_TRUE(fs::exists(dir / "metrics.json"));
  EXPECT_TRUE(fs::exists(dir / "trace_tail.json"));

  std::ifstream in(dir / "verdict.json");
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string verdict = buffer.str();
  EXPECT_NE(verdict.find("\"limiting_resource\":\"states\""),
            std::string::npos);
  EXPECT_NE(verdict.find("\"termination\":\"budget-exhausted\""),
            std::string::npos);
  EXPECT_NE(verdict.find("\"solver\":\"exact-astar\""), std::string::npos);
  EXPECT_NE(verdict.find("\"snapshots\":1"), std::string::npos);

  std::ifstream progress_in(dir / "progress.jsonl");
  std::string line;
  ASSERT_TRUE(std::getline(progress_in, line));
  EXPECT_NE(line.find("\"expanded\":1024"), std::string::npos);

  fs::remove_all(dir);
}

TEST(Postmortem, UnwritableDirectoryReturnsEmptyInsteadOfThrowing) {
  obs::PostmortemReport report;
  report.limiting_resource = "states";
  // /proc is not writable: create_directories fails, write_postmortem must
  // report that as an empty path, never as an exception — a post-mortem
  // failure must not turn a budget failure into a crash.
  EXPECT_EQ(obs::write_postmortem("/proc/rbpeb_no_such_dir", report), "");
}

}  // namespace
}  // namespace rbpeb
