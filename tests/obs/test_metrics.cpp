// Metrics registry: striped counters, gauges, and log-scale histograms must
// stay exact under concurrency (TSan covers the data-race half; the sums
// here cover the lost-update half), and the registry must hand back the same
// object for the same name while rejecting cross-kind collisions.
#include "src/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace rbpeb::obs {
namespace {

TEST(Counter, ConcurrentAddsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Gauge, SetAddAndHighWater) {
  Gauge gauge;
  gauge.set(5);
  gauge.add(3);
  EXPECT_EQ(gauge.value(), 8);
  gauge.add(-10);
  EXPECT_EQ(gauge.value(), -2);
  // max() is a high-water mark: it never follows the value back down.
  EXPECT_EQ(gauge.max(), 8);
  gauge.set(100);
  EXPECT_EQ(gauge.max(), 100);
  gauge.reset();
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(gauge.max(), 0);
}

TEST(Gauge, HighWaterAcrossThreads) {
  Gauge gauge;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge, t] {
      for (std::int64_t v = 0; v < 1000; ++v) gauge.set(t * 1000 + v);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(gauge.max(), (kThreads - 1) * 1000 + 999);
}

TEST(Histogram, BucketBoundsRoundTrip) {
  // Every value maps to a bucket whose lower bound is at most the value and
  // whose successor's lower bound exceeds it — the ≤25% granularity claim.
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 5ull, 7ull, 8ull,
                          12ull, 100ull, 1000ull, 65535ull, 1ull << 40}) {
    const std::size_t idx = Histogram::bucket_index(v);
    EXPECT_LE(Histogram::bucket_lower_bound(idx), v) << v;
    // Indices 4..7 are a gap in the scheme (octave 2 starts at index 8), so
    // the successor for the bound check is the next index that actually
    // raises the lower bound.
    std::size_t next = idx + 1;
    while (next < Histogram::kBuckets &&
           Histogram::bucket_lower_bound(next) <=
               Histogram::bucket_lower_bound(idx)) {
      ++next;
    }
    if (next < Histogram::kBuckets) {
      EXPECT_GT(Histogram::bucket_lower_bound(next), v) << v;
    }
  }
  // Exact small values get their own buckets.
  EXPECT_EQ(Histogram::bucket_lower_bound(Histogram::bucket_index(0)), 0u);
  EXPECT_EQ(Histogram::bucket_lower_bound(Histogram::bucket_index(1)), 1u);
  EXPECT_EQ(Histogram::bucket_lower_bound(Histogram::bucket_index(3)), 3u);
}

TEST(Histogram, ConcurrentRecordsKeepCountAndSum) {
  Histogram histogram;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        histogram.record(i % 1000);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
  // Each thread contributes 50 full cycles of 0..999.
  const std::uint64_t cycle_sum = 999 * 1000 / 2;
  EXPECT_EQ(histogram.sum(), kThreads * (kPerThread / 1000) * cycle_sum);
}

TEST(Histogram, PercentileInterpolatesWithinBucket) {
  Histogram histogram;
  for (std::uint64_t v = 1; v <= 100; ++v) histogram.record(v);
  // Uniform 1..100: the old containing-bucket floor reported p50=48 (bucket
  // [48,56) floor); within-bucket linear interpolation recovers the true
  // order statistics where the samples fill their bucket densely.
  EXPECT_EQ(histogram.percentile(0.5), 51u);
  EXPECT_EQ(histogram.percentile(0.9), 91u);
  // p99 rank 99 (value 100) sits in the sparse tail bucket [96,112) with 5
  // samples; interpolation spreads them over the whole bucket, so the
  // estimate can overshoot the max by less than one bucket width (≤25%).
  EXPECT_EQ(histogram.percentile(0.99), 110u);
  // Degenerate ranks clamp instead of indexing out of range.
  EXPECT_LE(histogram.percentile(0.0), 1u);
  EXPECT_LT(histogram.percentile(1.0), 112u);
  histogram.reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.percentile(0.5), 0u);
}

TEST(Histogram, PercentileConstantDistributionBeatsBucketFloor) {
  // 100 samples of exactly 1000 land in bucket [896,1024). The floor rule
  // reported 896 for every percentile (-10.4% bias); interpolation puts the
  // whole distribution near the bucket's middle.
  Histogram histogram;
  for (int i = 0; i < 100; ++i) histogram.record(1000);
  EXPECT_EQ(histogram.percentile(0.5), 960u);
  // All percentiles stay inside the containing bucket.
  for (double q : {0.01, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    EXPECT_GE(histogram.percentile(q), 896u) << q;
    EXPECT_LT(histogram.percentile(q), 1024u) << q;
  }
  // Small exact values (width-1 buckets) are reported exactly.
  Histogram small;
  for (int i = 0; i < 10; ++i) small.record(2);
  EXPECT_EQ(small.percentile(0.5), 2u);
  EXPECT_EQ(small.percentile(0.99), 2u);
}

TEST(MetricsRegistry, SameNameSameObject) {
  auto& registry = MetricsRegistry::instance();
  registry.reset_all();
  Counter& a = registry.counter("test.registry.counter");
  Counter& b = registry.counter("test.registry.counter");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(b.value(), 7u);
}

TEST(MetricsRegistry, KindCollisionThrows) {
  auto& registry = MetricsRegistry::instance();
  registry.counter("test.registry.kind_clash");
  EXPECT_THROW(registry.gauge("test.registry.kind_clash"), std::logic_error);
  EXPECT_THROW(registry.histogram("test.registry.kind_clash"),
               std::logic_error);
}

TEST(MetricsRegistry, SnapshotJsonCarriesAllKinds) {
  auto& registry = MetricsRegistry::instance();
  registry.counter("test.snapshot.counter").add(3);
  registry.gauge("test.snapshot.gauge").set(-4);
  registry.histogram("test.snapshot.histogram").record(16);
  const std::string json = registry.snapshot_json();
  EXPECT_NE(json.find("\"test.snapshot.counter\":"), std::string::npos);
  EXPECT_NE(json.find("\"test.snapshot.gauge\":"), std::string::npos);
  EXPECT_NE(json.find("\"test.snapshot.histogram\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(MetricsRegistry, ResetAllKeepsReferencesValid) {
  auto& registry = MetricsRegistry::instance();
  Counter& counter = registry.counter("test.reset.counter");
  counter.add(42);
  registry.reset_all();
  // reset_all zeroes values but never invalidates handed-out references.
  EXPECT_EQ(counter.value(), 0u);
  counter.add(1);
  EXPECT_EQ(registry.counter("test.reset.counter").value(), 1u);
}

TEST(Intern, StableAndDeduplicated) {
  const char* a = intern("test.intern.name");
  const char* b = intern(std::string("test.intern.") + "name");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "test.intern.name");
}

}  // namespace
}  // namespace rbpeb::obs
