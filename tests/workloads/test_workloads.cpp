#include <gtest/gtest.h>

#include "src/graph/dag_algorithms.hpp"
#include "src/graph/dag_io.hpp"
#include "src/pebble/bounds.hpp"
#include "src/pebble/verifier.hpp"
#include "src/solvers/greedy.hpp"
#include "src/workloads/fft.hpp"
#include "src/workloads/lu.hpp"
#include "src/workloads/matmul.hpp"
#include "src/workloads/pyramid.hpp"
#include "src/workloads/random_layered.hpp"
#include "src/workloads/stencil.hpp"
#include "src/workloads/tree_reduction.hpp"
#include "src/support/check.hpp"

namespace rbpeb {
namespace {

TEST(MatMul, Structure) {
  MatMulDag mm = make_matmul_dag(3);
  // 2n² inputs + n³ products + n²(n−1) sums.
  EXPECT_EQ(mm.dag.node_count(), 2 * 9 + 27 + 9 * 2u);
  EXPECT_EQ(mm.dag.sources().size(), 18u);
  EXPECT_EQ(mm.dag.sinks().size(), 9u);
  EXPECT_EQ(mm.dag.max_indegree(), 2u);
  EXPECT_TRUE(mm.dag.is_source(mm.a(1, 2)));
  EXPECT_TRUE(mm.dag.is_sink(mm.c(2, 2)));
}

TEST(MatMul, TrivialSize) {
  MatMulDag mm = make_matmul_dag(1);
  EXPECT_EQ(mm.dag.node_count(), 3u);  // a, b, product
  EXPECT_EQ(mm.dag.max_indegree(), 2u);
}

TEST(Fft, Structure) {
  FftDag fft = make_fft_dag(8);
  EXPECT_EQ(fft.stages, 3u);
  EXPECT_EQ(fft.dag.node_count(), 8 * 4u);  // inputs + 3 stages
  EXPECT_EQ(fft.dag.sources().size(), 8u);
  EXPECT_EQ(fft.dag.sinks().size(), 8u);
  EXPECT_EQ(fft.dag.max_indegree(), 2u);
  EXPECT_EQ(longest_path_length(fft.dag), 3u);
  EXPECT_THROW(make_fft_dag(6), PreconditionError);
  EXPECT_THROW(make_fft_dag(1), PreconditionError);
}

TEST(Stencil, OneDimensional) {
  StencilDag st = make_stencil1d_dag(5, 3);
  EXPECT_EQ(st.dag.node_count(), 5 * 4u);
  EXPECT_EQ(st.dag.max_indegree(), 3u);
  EXPECT_EQ(st.dag.sources().size(), 5u);
  EXPECT_EQ(st.dag.sinks().size(), 5u);
  EXPECT_EQ(longest_path_length(st.dag), 3u);
}

TEST(Stencil, TwoDimensional) {
  StencilDag st = make_stencil2d_dag(4, 3, 2);
  EXPECT_EQ(st.dag.node_count(), 12 * 3u);
  EXPECT_EQ(st.dag.max_indegree(), 5u);
  EXPECT_EQ(st.final_.size(), 12u);
}

TEST(TreeReduction, Structure) {
  TreeReductionDag tree = make_tree_reduction_dag(8);
  EXPECT_EQ(tree.dag.node_count(), 8 + 4 + 2 + 1u);
  EXPECT_EQ(tree.dag.sinks(), std::vector<NodeId>({tree.root}));
  EXPECT_EQ(tree.dag.max_indegree(), 2u);

  TreeReductionDag odd = make_tree_reduction_dag(5);
  EXPECT_EQ(odd.dag.sinks().size(), 1u);
  EXPECT_EQ(make_tree_reduction_dag(1).dag.node_count(), 1u);
}

TEST(Pyramid, Structure) {
  PyramidDag py = make_pyramid_dag(4);
  EXPECT_EQ(py.dag.node_count(), 4 + 3 + 2 + 1u);
  EXPECT_EQ(py.dag.sinks(), std::vector<NodeId>({py.apex}));
  EXPECT_EQ(py.dag.sources().size(), 4u);
  EXPECT_EQ(longest_path_length(py.dag), 3u);
}

TEST(Lu, Structure) {
  LuDag lu = make_lu_dag(3);
  // n² inputs + per step k: (n-k-1) scalings + (n-k-1)² updates.
  // n=3: 9 + (2 + 4) + (1 + 1) = 17.
  EXPECT_EQ(lu.dag.node_count(), 17u);
  EXPECT_EQ(lu.dag.sources().size(), 9u);
  EXPECT_EQ(lu.dag.max_indegree(), 3u);
  // The (0,0) pivot is never rewritten; below-pivot entries are.
  EXPECT_EQ(lu.outputs[0], lu.inputs[0]);
  EXPECT_NE(lu.outputs[1 * 3 + 0], lu.inputs[1 * 3 + 0]);
}

TEST(Lu, TrivialAndSmallSizes) {
  EXPECT_EQ(make_lu_dag(1).dag.node_count(), 1u);
  LuDag lu2 = make_lu_dag(2);
  EXPECT_EQ(lu2.dag.node_count(), 4 + 1 + 1u);
  EXPECT_TRUE(is_topological_order(lu2.dag, topological_order(lu2.dag)));
}

TEST(Lu, GreedyPebblesInEveryModel) {
  LuDag lu = make_lu_dag(4);
  for (const Model& model : all_models()) {
    Engine engine(lu.dag, model, min_red_pebbles(lu.dag) + 2);
    VerifyResult vr = verify(engine, solve_greedy(engine));
    ASSERT_TRUE(vr.ok()) << model.name() << ": " << vr.error;
  }
}

TEST(RandomLayered, RespectsSpec) {
  RandomLayeredSpec spec{.layers = 5, .width = 7, .indegree = 3, .seed = 42};
  Dag dag = make_random_layered_dag(spec);
  EXPECT_EQ(dag.node_count(), 35u);
  EXPECT_EQ(dag.sources().size(), 7u);
  EXPECT_EQ(dag.max_indegree(), 3u);
  // Determinism.
  Dag again = make_random_layered_dag(spec);
  EXPECT_EQ(to_text(dag) == to_text(again), true);
}

TEST(RandomLayered, IndegreeCappedByWidth) {
  Dag dag = make_random_layered_dag({.layers = 3, .width = 2, .indegree = 9,
                                     .seed = 1});
  EXPECT_EQ(dag.max_indegree(), 2u);
}

class AllWorkloadsPebbleable : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(ExtraBudget, AllWorkloadsPebbleable,
                         ::testing::Values<std::size_t>(0, 1, 4));

// Property: every workload is pebbleable by the greedy in every model with
// any budget >= Δ+1, within the universal bound.
TEST_P(AllWorkloadsPebbleable, GreedyHandlesAll) {
  std::size_t extra = GetParam();
  std::vector<Dag> dags;
  dags.push_back(make_matmul_dag(3).dag);
  dags.push_back(make_fft_dag(8).dag);
  dags.push_back(make_stencil1d_dag(6, 4).dag);
  dags.push_back(make_stencil2d_dag(3, 3, 2).dag);
  dags.push_back(make_tree_reduction_dag(11).dag);
  dags.push_back(make_pyramid_dag(5).dag);
  for (const Dag& dag : dags) {
    for (const Model& model : all_models()) {
      Engine engine(dag, model, min_red_pebbles(dag) + extra);
      VerifyResult vr = verify(engine, solve_greedy(engine));
      ASSERT_TRUE(vr.ok()) << model.name() << ": " << vr.error;
      EXPECT_LE(vr.total, universal_cost_upper_bound(dag, model));
    }
  }
}

}  // namespace
}  // namespace rbpeb
