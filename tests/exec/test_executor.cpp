// Data-level validation: pebbling traces are executable schedules.
#include "src/exec/executor.hpp"

#include <gtest/gtest.h>

#include "src/graph/dag_builder.hpp"
#include "src/pebble/bounds.hpp"
#include "src/pebble/verifier.hpp"
#include "src/solvers/exact.hpp"
#include "src/solvers/greedy.hpp"
#include "src/solvers/topo_baseline.hpp"
#include "src/support/check.hpp"
#include "src/workloads/fft.hpp"
#include "src/workloads/matmul.hpp"
#include "src/workloads/stencil.hpp"

namespace rbpeb {
namespace {

TEST(Executor, ReferenceEvaluationSumsAlongPaths) {
  DagBuilder b;
  NodeId x = b.add_node();  // value 1
  NodeId y = b.add_node();  // value 2
  NodeId z = b.add_node();  // x + y = 3
  b.add_edge(x, z);
  b.add_edge(y, z);
  Dag dag = b.build();
  auto values = reference_evaluation(dag);
  EXPECT_DOUBLE_EQ(values[x], 1.0);
  EXPECT_DOUBLE_EQ(values[y], 2.0);
  EXPECT_DOUBLE_EQ(values[z], 3.0);
}

// Property: every solver's schedule computes exactly the reference values,
// and its data movement agrees with the verifier's accounting.
class ExecutorSolvers : public ::testing::TestWithParam<std::size_t> {
 protected:
  const Model& model() const { return all_models()[GetParam()]; }
};

INSTANTIATE_TEST_SUITE_P(Models, ExecutorSolvers,
                         ::testing::Range<std::size_t>(0, 4),
                         [](const auto& info) {
                           return std::string(all_models()[info.param].name());
                         });

TEST_P(ExecutorSolvers, SchedulesComputeCorrectValues) {
  std::vector<Dag> dags;
  dags.push_back(make_matmul_dag(3).dag);
  dags.push_back(make_fft_dag(8).dag);
  dags.push_back(make_stencil1d_dag(6, 3).dag);
  for (const Dag& dag : dags) {
    Engine engine(dag, model(), min_red_pebbles(dag) + 1);
    for (const Trace& trace :
         {solve_greedy(engine), solve_topo_baseline(engine)}) {
      VerifyResult vr = verify(engine, trace);
      ASSERT_TRUE(vr.ok()) << model().name() << ": " << vr.error;
      ExecutionResult exec = execute_trace(engine, trace);
      auto reference = reference_evaluation(dag);
      for (std::size_t v = 0; v < dag.node_count(); ++v) {
        if (exec.values[v].has_value()) {
          EXPECT_DOUBLE_EQ(*exec.values[v], reference[v]);
        }
      }
      // Every sink was computed with the right value.
      for (NodeId sink : dag.sinks()) {
        ASSERT_TRUE(exec.values[sink].has_value());
      }
      // Data movement agrees with the verifier's move counts.
      EXPECT_EQ(exec.loads, vr.cost.loads);
      EXPECT_EQ(exec.stores, vr.cost.stores);
      // The schedule never exceeded the red-pebble budget at the data level.
      EXPECT_LE(exec.peak_fast_slots, engine.red_limit());
      EXPECT_EQ(exec.peak_fast_slots, vr.max_red);
    }
  }
}

TEST(Executor, ExactSolverScheduleExecutes) {
  Dag dag = make_matmul_dag(2).dag;
  Engine engine(dag, Model::oneshot(), 4);
  Trace trace = solve_greedy(engine);
  ExecutionResult exec = execute_trace(engine, trace);
  auto reference = reference_evaluation(dag);
  for (NodeId sink : dag.sinks()) {
    ASSERT_TRUE(exec.values[sink].has_value());
    EXPECT_DOUBLE_EQ(*exec.values[sink], reference[sink]);
  }
}

TEST(Executor, CustomOpSemantics) {
  DagBuilder b;
  NodeId x = b.add_node();
  NodeId y = b.add_node();
  b.add_edge(x, y);
  Dag dag = b.build();
  Engine engine(dag, Model::oneshot(), 2);
  Trace trace;
  trace.push_compute(x);
  trace.push_compute(y);
  NodeOp doubler = [](NodeId v, std::span<const double> inputs) {
    if (inputs.empty()) return 5.0 + v;
    return inputs[0] * 2.0;
  };
  ExecutionResult exec = execute_trace(engine, trace, doubler);
  EXPECT_DOUBLE_EQ(*exec.values[y], 10.0);
}

TEST(Executor, DetectsCorruptSchedules) {
  DagBuilder b;
  b.add_nodes(2);
  b.add_edge(0, 1);
  Dag dag = b.build();
  Engine engine(dag, Model::base(), 2);
  // Hand-build a move list that the executor must reject at the data level
  // (it is also illegal for the engine, but the executor checks run first
  // on raw traces).
  Trace bad;
  bad.push_load(0);  // nothing in slow memory yet
  EXPECT_THROW(execute_trace(engine, bad), InvariantError);
}

TEST(Executor, RecomputationReproducesTheSameValue) {
  DagBuilder b;
  b.add_nodes(1);
  Dag dag = b.build();
  Engine engine(dag, Model::base(), 1);
  Trace trace;
  trace.push_compute(0);
  trace.push_delete(0);
  trace.push_compute(0);
  ExecutionResult exec = execute_trace(engine, trace);
  EXPECT_DOUBLE_EQ(*exec.values[0], 1.0);
}

}  // namespace
}  // namespace rbpeb
