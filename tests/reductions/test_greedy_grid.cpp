// Theorem 4: the grid that misguides the greedy heuristic.
#include "src/reductions/greedy_grid.hpp"

#include <gtest/gtest.h>

#include "src/support/check.hpp"

namespace rbpeb {
namespace {

TEST(GreedyGrid, StructureBasics) {
  GreedyGrid grid = make_greedy_grid({.ell = 4, .k_common = 10});
  // (ell+1 choose 2) grid groups + S0.
  EXPECT_EQ(grid.instance.group_count(), 10u + 1u);
  EXPECT_EQ(grid.optimal_order.size(), grid.instance.group_count());
  EXPECT_EQ(grid.expected_greedy_order.size(), grid.instance.group_count());
  // Uniform group size.
  std::size_t k = grid.instance.groups[0].members.size();
  for (const InputGroup& g : grid.instance.groups) {
    EXPECT_EQ(g.members.size(), k);
  }
  EXPECT_EQ(grid.instance.red_limit, k + 1);
}

TEST(GreedyGrid, OrdersAreDependencyValid) {
  for (std::size_t ell : {2u, 3u, 5u}) {
    GreedyGrid grid = make_greedy_grid({.ell = ell, .k_common = 8});
    EXPECT_TRUE(is_valid_visit_order(grid.instance, grid.optimal_order))
        << "ell=" << ell;
    EXPECT_TRUE(
        is_valid_visit_order(grid.instance, grid.expected_greedy_order))
        << "ell=" << ell;
  }
}

TEST(GreedyGrid, GreedyFallsForTheMisguidance) {
  // The group-level greedy must follow exactly the column-by-column path the
  // paper describes — the whole point of the construction.
  for (std::size_t ell : {3u, 4u, 6u}) {
    GreedyGrid grid = make_greedy_grid({.ell = ell, .k_common = 16});
    GreedyGridOutcome outcome = evaluate_greedy_grid(grid, Model::oneshot());
    EXPECT_TRUE(outcome.greedy_followed_expected) << "ell=" << ell;
  }
}

TEST(GreedyGrid, GreedyPaysCommonsRepeatedly) {
  GreedyGridSpec spec{.ell = 5, .k_common = 40};
  GreedyGrid grid = make_greedy_grid(spec);
  GreedyGridOutcome outcome = evaluate_greedy_grid(grid, Model::oneshot());
  // Greedy revisits diagonal commons Θ(ℓ²) times at 2 transfers each; the
  // optimum pays only the O(1)-per-group bookkeeping nodes.
  EXPECT_GE(outcome.greedy_cost.to_double(),
            2.0 * 40 * 4);  // at least a few diagonal revisits
  EXPECT_GT(outcome.greedy_cost, outcome.optimal_cost * Rational(3));
}

TEST(GreedyGrid, RatioGrowsWithEll) {
  std::vector<double> ratios;
  for (std::size_t ell : {2u, 4u, 6u}) {
    GreedyGrid grid = make_greedy_grid({.ell = ell, .k_common = 48});
    GreedyGridOutcome outcome = evaluate_greedy_grid(grid, Model::oneshot());
    ratios.push_back(outcome.greedy_cost.to_double() /
                     outcome.optimal_cost.to_double());
  }
  EXPECT_LT(ratios[0], ratios[1]);
  EXPECT_LT(ratios[1], ratios[2]);
}

TEST(GreedyGrid, OptimalOrderCommonsAreFree) {
  // Doubling k' should barely change the optimal cost (commons are computed
  // and deleted inside one diagonal sweep) while greedy cost ~doubles.
  GreedyGridOutcome small =
      evaluate_greedy_grid(make_greedy_grid({.ell = 4, .k_common = 20}),
                           Model::oneshot());
  GreedyGridOutcome big =
      evaluate_greedy_grid(make_greedy_grid({.ell = 4, .k_common = 40}),
                           Model::oneshot());
  EXPECT_EQ(small.optimal_cost, big.optimal_cost);
  EXPECT_GT(big.greedy_cost.to_double(),
            1.7 * small.greedy_cost.to_double());
}

TEST(GreedyGrid, ProtectedCommonsRestoreTheGapInRecomputeModels) {
  // Appendix A.4: without protection the base-model greedy re-derives the
  // commons for free; with H2C protection the gap comes back.
  GreedyGridSpec unprotected{.ell = 3, .k_common = 24};
  GreedyGridSpec protected_spec{.ell = 3, .k_common = 24,
                                .protect_commons = true};
  GreedyGridOutcome open =
      evaluate_greedy_grid(make_greedy_grid(unprotected), Model::base());
  GreedyGridOutcome guarded =
      evaluate_greedy_grid(make_greedy_grid(protected_spec), Model::base());
  // Unprotected: greedy pays almost nothing (free recomputation).
  EXPECT_LT(open.greedy_cost, Rational(30));
  // Protected: the greedy pays for its revisits again.
  EXPECT_GT(guarded.greedy_cost, guarded.optimal_cost);
  EXPECT_TRUE(guarded.greedy_followed_expected);
}

TEST(GreedyGrid, ProtectedGridValidInAllModels) {
  GreedyGrid grid = make_greedy_grid({.ell = 3, .k_common = 16,
                                      .protect_commons = true});
  for (const Model& model : all_models()) {
    GreedyGridOutcome outcome = evaluate_greedy_grid(grid, model);
    EXPECT_GT(outcome.greedy_cost, Rational(0)) << model.name();
    EXPECT_GT(outcome.optimal_cost, Rational(0)) << model.name();
  }
}

TEST(GreedyGrid, RejectsDegenerateSpecs) {
  EXPECT_THROW(make_greedy_grid({.ell = 1, .k_common = 8}), PreconditionError);
  EXPECT_THROW(make_greedy_grid({.ell = 3, .k_common = 0}), PreconditionError);
  EXPECT_THROW(make_greedy_grid({.ell = 3, .k_common = 8, .intersection = 1}),
               PreconditionError);
}

}  // namespace
}  // namespace rbpeb
