// Theorem 2: the Hamiltonian-Path reduction, validated in both directions.
#include "src/reductions/hampath.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "src/graph/generators.hpp"
#include "src/reductions/hampath_solver.hpp"
#include "src/solvers/exact.hpp"
#include "src/support/rng.hpp"

namespace rbpeb {
namespace {

TEST(HamPathReduction, StructureMatchesPaper) {
  Graph g = path_graph(4);  // N = 4, M = 3
  HamPathReduction red = make_hampath_reduction(g, Model::oneshot());
  const Dag& dag = red.instance.dag;
  // N(N−1) − M contact nodes + N targets.
  EXPECT_EQ(dag.node_count(), 4 * 3 - 3 + 4u);
  EXPECT_EQ(dag.sources().size(), 4 * 3 - 3u);
  EXPECT_EQ(dag.sinks().size(), 4u);
  EXPECT_EQ(dag.max_indegree(), 3u);  // N − 1
  EXPECT_EQ(red.instance.red_limit, 4u);
  // Merged contacts exactly for edges.
  EXPECT_EQ(red.contact(0, 1), red.contact(1, 0));
  EXPECT_EQ(red.contact(0, 2) == red.contact(2, 0), false);
}

TEST(HamPathReduction, AdjacentPairsCounter) {
  Graph g = path_graph(5);
  EXPECT_EQ(adjacent_pairs(g, {0, 1, 2, 3, 4}), 4u);
  EXPECT_EQ(adjacent_pairs(g, {0, 2, 4, 1, 3}), 0u);
  EXPECT_EQ(adjacent_pairs(g, {1, 0, 2, 3, 4}), 3u);
}

class HamPathAllModels : public ::testing::TestWithParam<std::size_t> {
 protected:
  const Model& model() const { return all_models()[GetParam()]; }
};

INSTANTIATE_TEST_SUITE_P(Models, HamPathAllModels,
                         ::testing::Range<std::size_t>(0, 4),
                         [](const auto& info) {
                           return std::string(all_models()[info.param].name());
                         });

// The reduction's core affine law: cost(π) = base + per·missing(π), exactly,
// for every permutation and every model.
TEST_P(HamPathAllModels, AffineCostLawHolds) {
  Rng rng(19);
  Graph g = random_graph(5, 0.5, rng);
  HamPathReduction red = make_hampath_reduction(g, model());
  HamPathCostModel cm = calibrate_hampath_cost(red);
  Engine engine(red.instance.dag, model(), red.instance.red_limit);

  std::vector<Vertex> perm(5);
  std::iota(perm.begin(), perm.end(), 0);
  for (int trial = 0; trial < 8; ++trial) {
    rng.shuffle(perm);
    Trace trace = pebble_permutation(red, perm);
    Rational cost = verify_or_throw(engine, trace).total;
    std::size_t missing = (5 - 1) - adjacent_pairs(g, perm);
    EXPECT_EQ(cost,
              cm.base + cm.per_missing_edge *
                            Rational(static_cast<std::int64_t>(missing)))
        << "perm trial " << trial;
  }
}

// Soundness + completeness of the decision reduction on yes/no instances.
TEST_P(HamPathAllModels, DecisionMatchesOracle) {
  std::vector<Graph> graphs;
  graphs.push_back(path_graph(5));           // yes
  graphs.push_back(cycle_graph(5));          // yes
  graphs.push_back(star_graph(5));           // no
  graphs.push_back(two_cliques(2, 3));       // no
  Rng rng(77);
  graphs.push_back(random_graph_with_ham_path(5, 0.3, rng));  // yes
  graphs.push_back(random_graph(5, 0.25, rng));

  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const Graph& g = graphs[i];
    HamPathReduction red = make_hampath_reduction(g, model());
    HamPathPebbling opt = solve_hampath_pebbling(red);
    Rational threshold = hampath_threshold(red);
    bool oracle = has_hamiltonian_path(g);
    EXPECT_EQ(opt.cost <= threshold, oracle)
        << "graph " << i << " under " << model().name();
    // Reverse direction: the optimal pebbling's permutation IS a Hamiltonian
    // path when one exists.
    if (oracle) {
      EXPECT_EQ(adjacent_pairs(g, opt.perm), g.vertex_count() - 1);
    }
  }
}

TEST(HamPathReduction, OptimalPebblingBeatsEveryOrderSampled) {
  Rng rng(5);
  Graph g = random_graph(6, 0.4, rng);
  HamPathReduction red = make_hampath_reduction(g, Model::oneshot());
  HamPathPebbling opt = solve_hampath_pebbling(red);
  Engine engine(red.instance.dag, Model::oneshot(), red.instance.red_limit);
  std::vector<Vertex> perm(6);
  std::iota(perm.begin(), perm.end(), 0);
  for (int trial = 0; trial < 10; ++trial) {
    rng.shuffle(perm);
    Trace trace = pebble_permutation(red, perm);
    EXPECT_GE(verify_or_throw(engine, trace).total, opt.cost);
  }
}

TEST(HamPathReduction, CompleteGraphCostsBase) {
  Graph g = complete_graph(5);
  HamPathReduction red = make_hampath_reduction(g, Model::oneshot());
  HamPathPebbling opt = solve_hampath_pebbling(red);
  EXPECT_EQ(opt.cost, hampath_threshold(red));
  EXPECT_EQ(opt.adjacent, 4u);
}

TEST(HamPathReductionCd, ConstantIndegreeStructure) {
  Graph g = path_graph(5);
  HamPathReduction red = make_hampath_reduction_cd(g, 4);
  EXPECT_LE(red.instance.dag.max_indegree(), 2u);
  EXPECT_EQ(red.instance.red_limit, 6u);  // N + 1
  // Merged contacts still merged.
  EXPECT_EQ(red.contact(0, 1), red.contact(1, 0));
}

TEST(HamPathReductionCd, AffineCostLawStillHolds) {
  Rng rng(44);
  Graph g = random_graph(5, 0.5, rng);
  HamPathReduction red = make_hampath_reduction_cd(g, 6);
  HamPathCostModel cm = calibrate_hampath_cost(red);
  Engine engine(red.instance.dag, red.model, red.instance.red_limit);
  std::vector<Vertex> perm(5);
  std::iota(perm.begin(), perm.end(), 0);
  for (int trial = 0; trial < 6; ++trial) {
    rng.shuffle(perm);
    Rational cost =
        verify_or_throw(engine, pebble_permutation(red, perm)).total;
    std::size_t missing = (5 - 1) - adjacent_pairs(g, perm);
    EXPECT_EQ(cost, cm.base + cm.per_missing_edge *
                                  Rational(static_cast<std::int64_t>(missing)));
  }
}

TEST(HamPathReductionCd, DecisionMatchesOracleAtConstantIndegree) {
  Rng rng(55);
  std::vector<Graph> graphs = {path_graph(5), star_graph(5),
                               two_cliques(2, 3),
                               random_graph_with_ham_path(5, 0.2, rng),
                               random_graph(5, 0.3, rng)};
  for (const Graph& g : graphs) {
    HamPathReduction red = make_hampath_reduction_cd(g, 5);
    HamPathPebbling opt = solve_hampath_pebbling(red);
    EXPECT_EQ(opt.cost <= hampath_threshold(red), has_hamiltonian_path(g));
  }
}

TEST(HamPathReduction, VisitOrderStrategyIsGloballyOptimalOnTinyInstances) {
  // The paper's reduction assumes optimal pebblings correspond to group
  // visit orders. Close the loop: on N = 3 instances the configuration-space
  // Dijkstra (which searches ALL strategies) matches the best visit order.
  std::vector<Graph> graphs;
  graphs.push_back(path_graph(3));
  graphs.push_back(complete_graph(3));
  Graph no_edges(3);
  graphs.push_back(no_edges);
  for (const Graph& g : graphs) {
    for (const Model& model : {Model::oneshot(), Model::nodel()}) {
      HamPathReduction red = make_hampath_reduction(g, model);
      ASSERT_LE(red.instance.dag.node_count(), 21u);
      HamPathPebbling order_opt = solve_hampath_pebbling(red);
      Engine engine(red.instance.dag, model, red.instance.red_limit);
      Rational exact = solve_exact(engine, 6'000'000).cost;
      EXPECT_EQ(exact, order_opt.cost)
          << model.name() << " M=" << g.edge_count();
    }
  }
}

TEST(HamPathSolver, FindsWitnessPath) {
  Graph g = path_graph(6);
  auto path = find_hamiltonian_path(g);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(adjacent_pairs(g, *path), 5u);
  EXPECT_FALSE(find_hamiltonian_path(star_graph(4)).has_value());
}

}  // namespace
}  // namespace rbpeb
