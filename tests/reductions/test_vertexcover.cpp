// Theorem 3: the Vertex-Cover reduction (oneshot inapproximability).
#include "src/reductions/vertexcover.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/graph/generators.hpp"
#include "src/reductions/vertexcover_solver.hpp"
#include "src/support/check.hpp"
#include "src/support/rng.hpp"

namespace rbpeb {
namespace {

TEST(VertexCoverSolver, ExactOnKnownGraphs) {
  EXPECT_TRUE(minimum_vertex_cover(Graph(4)).empty());
  EXPECT_EQ(minimum_vertex_cover(path_graph(5)).size(), 2u);
  EXPECT_EQ(minimum_vertex_cover(cycle_graph(5)).size(), 3u);
  EXPECT_EQ(minimum_vertex_cover(star_graph(6)).size(), 1u);
  EXPECT_EQ(minimum_vertex_cover(complete_graph(5)).size(), 4u);
  Graph g = two_cliques(3, 4);
  auto cover = minimum_vertex_cover(g);
  EXPECT_EQ(cover.size(), 2u + 3u);
  EXPECT_TRUE(is_vertex_cover(g, cover));
}

TEST(VertexCoverSolver, TwoApproxIsACoverWithinFactorTwo) {
  Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    Graph g = random_graph(8, 0.35, rng);
    auto approx = two_approx_vertex_cover(g);
    auto exact = minimum_vertex_cover(g);
    EXPECT_TRUE(is_vertex_cover(g, approx));
    EXPECT_LE(approx.size(), 2 * exact.size());
  }
}

TEST(VertexCoverReduction, StructureMatchesPaper) {
  Graph g = path_graph(4);
  const std::size_t k = 12;
  VertexCoverReduction red = make_vertexcover_reduction(g, k);
  EXPECT_EQ(red.instance.group_count(), 8u);  // two levels per vertex
  EXPECT_EQ(red.k_common, k - 4);
  EXPECT_EQ(red.instance.red_limit, k + 1);
  for (const InputGroup& group : red.instance.groups) {
    EXPECT_EQ(group.members.size(), k);
  }
  // Edge {0,1}: t_{0,1,1} is a member of V_{1,2}.
  const InputGroup& v12 = red.instance.groups[red.second_level[1]];
  NodeId t = red.first_targets[0 * 4 + 1];
  EXPECT_NE(std::find(v12.members.begin(), v12.members.end(), t),
            v12.members.end());
  // Non-edge {0,2}: t_{0,1,2} is in no second-level group (a pure sink).
  EXPECT_TRUE(red.instance.dag.is_sink(red.first_targets[0 * 4 + 2]));
}

TEST(VertexCoverReduction, DependenciesFollowEdges) {
  Graph g = path_graph(3);
  VertexCoverReduction red = make_vertexcover_reduction(g, 8);
  auto deps = group_dependencies(red.instance);
  // V_{1,2} depends on the first-level groups of 1's neighbors (0 and 2).
  std::vector<std::size_t> expected = {red.first_level[0], red.first_level[2]};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(deps[red.second_level[1]], expected);
  EXPECT_TRUE(deps[red.first_level[1]].empty());
}

TEST(VertexCoverReduction, CoverOrderIsValidAndRecoverable) {
  Rng rng(9);
  Graph g = random_graph(6, 0.4, rng);
  VertexCoverReduction red = make_vertexcover_reduction(g, 15);
  auto cover = minimum_vertex_cover(g);
  auto order = order_for_cover(red, cover);
  EXPECT_TRUE(is_valid_visit_order(red.instance, order));
  // Round trip: recovering the cover from the order gives the same set.
  EXPECT_EQ(cover_from_order(red, order), cover);
}

TEST(VertexCoverReduction, RejectsNonCover) {
  Graph g = path_graph(4);
  VertexCoverReduction red = make_vertexcover_reduction(g, 10);
  EXPECT_THROW(order_for_cover(red, {}), PreconditionError);
}

TEST(VertexCoverReduction, CostTracksCoverSize) {
  // cost(cover) ≈ 2k'·|cover| + O(N²): the smaller the cover, the cheaper
  // the pebbling, and the lower bound 2k'·|VC_min| holds.
  Rng rng(21);
  Graph g = random_graph(6, 0.4, rng);
  const std::size_t k = 40;
  VertexCoverReduction red = make_vertexcover_reduction(g, k);
  auto min_cover = minimum_vertex_cover(g);
  auto big_cover = two_approx_vertex_cover(g);
  Rational cost_min = cost_for_cover(red, min_cover);
  Rational cost_big = cost_for_cover(red, big_cover);
  EXPECT_GE(cost_min, vertexcover_cost_lower_bound(red, min_cover.size()));
  if (big_cover.size() > min_cover.size()) {
    EXPECT_LT(cost_min, cost_big);
  }
  // Upper bound: 2k'|VC| plus the O(N²) bookkeeping term.
  std::int64_t n2 = static_cast<std::int64_t>(
      3 * g.vertex_count() * g.vertex_count());
  EXPECT_LE(cost_min,
            vertexcover_cost_lower_bound(red, min_cover.size()) + Rational(n2));
}

TEST(VertexCoverReduction, CoverOrderApproachesExhaustiveOptimumAsKGrows) {
  // The paper's cover-shaped order is optimal only asymptotically in k':
  // its gap to the true best visit order is an O(N²) constant, so it
  // vanishes relative to the 2k'|VC| term as k' grows.
  Graph g(2);
  g.add_edge(0, 1);
  Rational previous_gap(-1);
  for (std::size_t k : {4u, 12u, 40u}) {
    VertexCoverReduction red = make_vertexcover_reduction(g, k);
    Engine engine(red.instance.dag, Model::oneshot(), red.instance.red_limit);
    GroupSolveResult best = solve_exhaustive_order(engine, red.instance);
    Rational best_cost = verify_or_throw(engine, best.trace).total;
    Rational cover_cost = cost_for_cover(red, minimum_vertex_cover(g));
    EXPECT_GE(cover_cost, best_cost) << "k=" << k;
    Rational gap = cover_cost - best_cost;
    EXPECT_LE(gap, Rational(8)) << "k=" << k;  // O(N²), k-independent
    if (previous_gap >= Rational(0)) {
      EXPECT_LE(gap, previous_gap + Rational(2)) << "k=" << k;
    }
    previous_gap = gap;
  }
}

TEST(VertexCoverReduction, ApproximationFactorTransfers) {
  // Theorem 3's heart: a pebbling within factor δ of optimal yields a vertex
  // cover within ~δ of minimum as k' grows.
  Rng rng(33);
  Graph g = random_graph(5, 0.5, rng);
  const std::size_t k = 100;  // k' >> N²
  VertexCoverReduction red = make_vertexcover_reduction(g, k);
  auto min_cover = minimum_vertex_cover(g);
  auto approx_cover = two_approx_vertex_cover(g);
  double cost_ratio = cost_for_cover(red, approx_cover).to_double() /
                      cost_for_cover(red, min_cover).to_double();
  double cover_ratio = static_cast<double>(approx_cover.size()) /
                       static_cast<double>(min_cover.size());
  // With k' = 95 >> N² = 25, the ratios agree within a modest tolerance.
  EXPECT_NEAR(cost_ratio, cover_ratio, 0.35);
}

}  // namespace
}  // namespace rbpeb
