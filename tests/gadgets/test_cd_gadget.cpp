#include "src/gadgets/cd_gadget.hpp"

#include <gtest/gtest.h>

#include "src/pebble/verifier.hpp"
#include "src/solvers/exact.hpp"
#include "src/support/check.hpp"

namespace rbpeb {
namespace {

// Group of g source members, one real target, h layers.
struct CDFixture {
  GroupDagInstance instance;
  CDAttachment attachment;
  NodeId target;
};

CDFixture make_fixture(std::size_t g, std::size_t h) {
  DagBuilder b;
  std::vector<NodeId> members;
  for (std::size_t i = 0; i < g; ++i) members.push_back(b.add_node());
  NodeId t = b.add_node("t");
  CDAttachment cd = attach_cd_gadget(b, members, {t}, h);
  CDFixture fx;
  fx.target = t;
  fx.instance.dag = b.build();
  fx.instance.groups = {cd.group};
  fx.instance.red_limit = g + 2;  // members + 2 working pebbles
  fx.attachment = cd;
  return fx;
}

TEST(CDGadget, ConstantIndegree) {
  CDFixture fx = make_fixture(6, 4);
  for (std::size_t v = 0; v < fx.instance.dag.node_count(); ++v) {
    EXPECT_LE(fx.instance.dag.indegree(static_cast<NodeId>(v)), 2u);
  }
  EXPECT_EQ(fx.attachment.layer_nodes.size(), 6u * 4u);
}

TEST(CDGadget, RejectsDegenerateParameters) {
  DagBuilder b;
  NodeId t = b.add_node();
  EXPECT_THROW(attach_cd_gadget(b, {}, {t}, 3), PreconditionError);
  NodeId m = b.add_node();
  EXPECT_THROW(attach_cd_gadget(b, {m}, {t}, 0), PreconditionError);
}

TEST(CDGadget, FreeWithFullBudgetInOneshot) {
  // With members + 2 red pebbles, the whole gadget pebbles at zero cost:
  // this is the property that replaces "computing the target requires all
  // red pebbles" at constant indegree.
  CDFixture fx = make_fixture(4, 6);
  Engine engine(fx.instance.dag, Model::oneshot(), fx.instance.red_limit);
  Trace trace = pebble_visit_order(engine, fx.instance, {0});
  VerifyResult vr = verify_or_throw(engine, trace);
  EXPECT_EQ(vr.total, Rational(0));
}

TEST(CDGadget, ExactConfirmsZeroCost) {
  CDFixture fx = make_fixture(3, 3);  // 3 + 9 + 1 = 13 nodes
  Engine engine(fx.instance.dag, Model::oneshot(), fx.instance.red_limit);
  EXPECT_EQ(solve_exact(engine, 4'000'000).cost, Rational(0));
}

TEST(CDGadget, CostScalesWithLayersWhenBudgetShort) {
  // One red pebble less forces ~2 transfers per layer (Appendix B): the
  // gadget's defining "cost cliff".
  std::vector<Rational> costs;
  for (std::size_t h : {2u, 3u, 4u}) {
    CDFixture fx = make_fixture(2, h);  // 2 + 2h + 1 nodes
    Engine engine(fx.instance.dag, Model::oneshot(),
                  fx.instance.red_limit - 1);
    ExactResult exact = solve_exact(engine, 6'000'000);
    costs.push_back(exact.cost);
  }
  // Strictly increasing in h, and at least ~2h - O(1).
  EXPECT_LT(costs[0], costs[1]);
  EXPECT_LT(costs[1], costs[2]);
  EXPECT_GE(costs[2], Rational(2 * 4 - 4));
}

TEST(CDGadget, NodelPaysPerLayerNode) {
  // Appendix B.1: in nodel every layer node must be turned blue eventually;
  // cost grows by (R−1)·h-ish even with the full budget.
  CDFixture fx = make_fixture(3, 4);
  Engine engine(fx.instance.dag, Model::nodel(), fx.instance.red_limit);
  Trace trace = pebble_visit_order(engine, fx.instance, {0});
  VerifyResult vr = verify_or_throw(engine, trace);
  // 12 layer nodes; all but the last few must be stored.
  EXPECT_GE(vr.total, Rational(8));
}

}  // namespace
}  // namespace rbpeb
