// Section 5 / Figure 4: the time-memory tradeoff chain.
#include "src/gadgets/tradeoff_chain.hpp"

#include <gtest/gtest.h>

#include "src/pebble/verifier.hpp"
#include "src/solvers/chain_solver.hpp"
#include "src/solvers/exact.hpp"
#include "src/support/check.hpp"

namespace rbpeb {
namespace {

TEST(TradeoffChain, Structure) {
  TradeoffChain chain = make_tradeoff_chain({.d = 3, .length = 5});
  const Dag& dag = chain.instance.dag;
  EXPECT_EQ(dag.node_count(), 3 + 3 + 5u);
  EXPECT_EQ(dag.max_indegree(), 4u);  // d + 1
  EXPECT_EQ(chain.instance.red_limit, 5u);  // d + 2
  // chain[0] consumes group A only; chain[1] consumes chain[0] and group B.
  EXPECT_EQ(dag.indegree(chain.chain[0]), 3u);
  EXPECT_EQ(dag.indegree(chain.chain[1]), 4u);
  EXPECT_TRUE(dag.has_edge(chain.chain[0], chain.chain[1]));
  EXPECT_TRUE(dag.has_edge(chain.group_b[0], chain.chain[1]));
  EXPECT_TRUE(dag.has_edge(chain.group_a[0], chain.chain[2]));
  EXPECT_TRUE(dag.is_sink(chain.chain.back()));
}

TEST(TradeoffChain, FullBudgetIsFreeInOneshot) {
  TradeoffChain chain = make_tradeoff_chain({.d = 4, .length = 12});
  Engine engine(chain.instance.dag, Model::oneshot(), 2 * 4 + 2);
  VerifyResult vr = verify_or_throw(engine, solve_chain(engine, chain));
  EXPECT_EQ(vr.total, Rational(0));
}

TEST(TradeoffChain, MinimalBudgetCostsNearTwoDN) {
  const std::size_t d = 3, len = 10;
  TradeoffChain chain = make_tradeoff_chain({.d = d, .length = len});
  Engine engine(chain.instance.dag, Model::oneshot(), d + 2);
  VerifyResult vr = verify_or_throw(engine, solve_chain(engine, chain));
  // Asymptotically 2d per chain node; boundary terms only save O(d).
  std::int64_t formula = chain_oneshot_formula(d, len, d + 2);
  EXPECT_LE(vr.total, Rational(formula));
  EXPECT_GE(vr.total, Rational(formula - 4 * static_cast<std::int64_t>(d)));
}

TEST(TradeoffChain, EachExtraPebbleSavesAboutTwoN) {
  const std::size_t d = 4, len = 16;
  TradeoffChain chain = make_tradeoff_chain({.d = d, .length = len});
  std::vector<Rational> cost;
  for (std::size_t r = d + 2; r <= 2 * d + 2; ++r) {
    Engine engine(chain.instance.dag, Model::oneshot(), r);
    cost.push_back(verify_or_throw(engine, solve_chain(engine, chain)).total);
  }
  for (std::size_t i = 0; i + 1 < cost.size(); ++i) {
    Rational drop = cost[i] - cost[i + 1];
    // Figure 4: the drop per extra pebble is 2n up to boundary terms.
    EXPECT_GE(drop, Rational(2 * static_cast<std::int64_t>(len) - 8)) << i;
    EXPECT_LE(drop, Rational(2 * static_cast<std::int64_t>(len))) << i;
  }
  EXPECT_EQ(cost.back(), Rational(0));
}

TEST(TradeoffChain, StrategyIsOptimalOnTinyInstance) {
  const std::size_t d = 2, len = 3;  // 2+2+3 = 7 nodes
  TradeoffChain chain = make_tradeoff_chain({.d = d, .length = len});
  for (std::size_t r = d + 2; r <= 2 * d + 2; ++r) {
    Engine engine(chain.instance.dag, Model::oneshot(), r);
    Rational strategy =
        verify_or_throw(engine, solve_chain(engine, chain)).total;
    Rational exact = solve_exact(engine, 6'000'000).cost;
    EXPECT_EQ(strategy, exact) << "R=" << r;
  }
}

TEST(TradeoffChain, FormulaEdgeCases) {
  EXPECT_EQ(chain_oneshot_formula(4, 10, 6), 80);   // i = 0 -> 2d·n
  EXPECT_EQ(chain_oneshot_formula(4, 10, 10), 0);   // R = 2d+2
  EXPECT_EQ(chain_oneshot_formula(4, 10, 50), 0);   // plenty of pebbles
  EXPECT_THROW(chain_oneshot_formula(4, 10, 5), PreconditionError);
}

TEST(TradeoffChain, H2CVariantBuildsAndPebbles) {
  TradeoffChainSpec spec{.d = 2, .length = 4, .h2c_red_limit = 4};
  TradeoffChain chain = make_tradeoff_chain(spec);
  for (const Model& model : all_models()) {
    Engine engine(chain.instance.dag, model, 4);
    Trace trace = solve_chain(engine, chain);
    VerifyResult vr = verify(engine, trace);
    EXPECT_TRUE(vr.ok()) << model.name() << ": " << vr.error;
  }
}

TEST(TradeoffChain, NodelCurveIsOneshotPlusOffset) {
  // Appendix A.1: in nodel each chain node is stored instead of deleted,
  // adding ~n to every opt(R) value (via the H2C-protected construction).
  const std::size_t d = 3, len = 8;
  for (std::size_t r = d + 2; r <= 2 * d + 2; ++r) {
    TradeoffChainSpec spec{.d = d, .length = len, .h2c_red_limit = r};
    TradeoffChain chain = make_tradeoff_chain(spec);
    Engine oneshot_engine(chain.instance.dag, Model::oneshot(), r);
    Engine nodel_engine(chain.instance.dag, Model::nodel(), r);
    Rational c1 =
        verify_or_throw(oneshot_engine, solve_chain(oneshot_engine, chain)).total;
    Rational c2 =
        verify_or_throw(nodel_engine, solve_chain(nodel_engine, chain)).total;
    // The nodel run pays at least the extra chain stores; gadget nodes add
    // a bounded extra term.
    EXPECT_GE(c2, c1 + Rational(static_cast<std::int64_t>(len) - 2)) << r;
  }
}

}  // namespace
}  // namespace rbpeb
