#include "src/gadgets/h2c.hpp"

#include <gtest/gtest.h>

#include "src/pebble/verifier.hpp"
#include "src/solvers/exact.hpp"
#include "src/support/check.hpp"

namespace rbpeb {
namespace {

// A protected node v alone, gadget sized for R.
struct H2CFixture {
  GroupDagInstance instance;
  NodeId v;
};

H2CFixture single_protected(std::size_t r, bool shared_b) {
  DagBuilder b;
  NodeId v = b.add_node("v");
  H2CAttachment h2c = attach_h2c(b, {v}, H2CSpec{r, shared_b});
  H2CFixture fx;
  fx.v = v;
  fx.instance.dag = b.build();
  fx.instance.groups = h2c.groups;
  fx.instance.red_limit = r;
  return fx;
}

TEST(H2C, StructureMatchesSpec) {
  DagBuilder b;
  NodeId v0 = b.add_node();
  NodeId v1 = b.add_node();
  H2CAttachment h2c = attach_h2c(b, {v0, v1}, H2CSpec{5, true});
  Dag dag = b.build();
  // Shared B: one group of R−1 = 4 nodes.
  ASSERT_EQ(h2c.b_nodes.size(), 2u);
  EXPECT_EQ(h2c.b_nodes[0], h2c.b_nodes[1]);
  EXPECT_EQ(h2c.b_nodes[0].size(), 4u);
  ASSERT_EQ(h2c.starters.size(), 2u);
  // Each starter consumes all of B; each protected node its 3 starters.
  for (NodeId u : h2c.starters[0]) {
    EXPECT_EQ(dag.indegree(u), 4u);
  }
  EXPECT_EQ(dag.indegree(v0), 3u);
  EXPECT_EQ(dag.indegree(v1), 3u);
  // 2 groups per protected node.
  EXPECT_EQ(h2c.groups.size(), 4u);
}

TEST(H2C, PrivateBInstancesAreDistinct) {
  DagBuilder b;
  NodeId v0 = b.add_node();
  NodeId v1 = b.add_node();
  H2CAttachment h2c = attach_h2c(b, {v0, v1}, H2CSpec{5, false});
  EXPECT_NE(h2c.b_nodes[0], h2c.b_nodes[1]);
}

TEST(H2C, RejectsTinyBudget) {
  DagBuilder b;
  NodeId v = b.add_node();
  EXPECT_THROW(attach_h2c(b, {v}, H2CSpec{3, true}), PreconditionError);
  EXPECT_THROW(attach_h2c(b, {}, H2CSpec{5, true}), PreconditionError);
}

TEST(H2C, ComputingProtectedNodeCostsFourTransfers) {
  // The paper's headline property: v's computation indirectly requires at
  // least 4 transfer operations — in every model, even base where computes
  // are free. Verified against the exact solver.
  for (std::size_t model_index : {0u, 1u, 2u, 3u}) {
    const Model& model = all_models()[model_index];
    H2CFixture fx = single_protected(5, true);
    Engine engine(fx.instance.dag, model, 5);
    ExactResult exact = solve_exact(engine);
    EXPECT_GE(Rational(verify_or_throw(engine, exact.trace).cost.transfers()),
              Rational(4))
        << model.name();
  }
}

TEST(H2C, GroupPebblerRealizesCostFour) {
  // The visit-order pebbler should achieve exactly 4 transfers (2 stores of
  // starters while computing, 2 loads to assemble them) in oneshot.
  H2CFixture fx = single_protected(5, true);
  Engine engine(fx.instance.dag, Model::oneshot(), 5);
  Trace trace = pebble_visit_order(engine, fx.instance, {0, 1});
  VerifyResult vr = verify_or_throw(engine, trace);
  EXPECT_EQ(vr.cost.transfers(), 4);
  EXPECT_EQ(solve_exact(engine).cost, Rational(4));
}

TEST(H2C, SharedBAmortizesAcrossProtectedNodes) {
  // With a shared B, two protected nodes need fewer nodes than two private
  // gadgets, and the per-node pebbling cost stays constant.
  DagBuilder shared_builder;
  NodeId s0 = shared_builder.add_node();
  NodeId s1 = shared_builder.add_node();
  H2CAttachment shared = attach_h2c(shared_builder, {s0, s1}, H2CSpec{5, true});
  Dag shared_dag = shared_builder.build();

  DagBuilder private_builder;
  NodeId p0 = private_builder.add_node();
  NodeId p1 = private_builder.add_node();
  H2CAttachment priv = attach_h2c(private_builder, {p0, p1}, H2CSpec{5, false});
  Dag private_dag = private_builder.build();

  EXPECT_LT(shared_dag.node_count(), private_dag.node_count());
  EXPECT_EQ(shared.groups.size(), priv.groups.size());
}

TEST(H2C, PrivateBGadgetCostsExactlyFourPerNode) {
  // Appendix A.2: with a private B per node, each protected node's
  // computation is an independent process of cost exactly 4 (oneshot/base).
  DagBuilder b;
  NodeId v0 = b.add_node();
  NodeId v1 = b.add_node();
  H2CAttachment h2c = attach_h2c(b, {v0, v1}, H2CSpec{5, false});
  GroupDagInstance inst;
  inst.dag = b.build();
  inst.groups = h2c.groups;
  inst.red_limit = 5;
  Engine engine(inst.dag, Model::oneshot(), 5);
  std::vector<std::size_t> order = {0, 1, 2, 3};
  VerifyResult vr =
      verify_or_throw(engine, pebble_visit_order(engine, inst, order));
  // 4 transfers per gadget, plus one store of the already-computed sink v0
  // when the second gadget claims all five red pebbles.
  EXPECT_EQ(vr.cost.transfers(), 9);
}

}  // namespace
}  // namespace rbpeb
