#include "src/gadgets/transforms.hpp"

#include <gtest/gtest.h>

#include "src/pebble/bounds.hpp"
#include "src/pebble/verifier.hpp"
#include "src/solvers/greedy.hpp"
#include "src/support/check.hpp"
#include "src/workloads/random_layered.hpp"

namespace rbpeb {
namespace {

TEST(Transforms, UniversalSourceStructure) {
  Dag dag = make_random_layered_dag({.layers = 3, .width = 4, .indegree = 2,
                                     .seed = 3});
  SingleSourceDag tr = add_universal_source(dag);
  EXPECT_EQ(tr.dag.node_count(), dag.node_count() + 1);
  EXPECT_EQ(tr.dag.sources(), std::vector<NodeId>({tr.s0}));
  for (std::size_t v = 0; v < dag.node_count(); ++v) {
    EXPECT_TRUE(tr.dag.has_edge(tr.s0, static_cast<NodeId>(v)));
  }
  EXPECT_EQ(tr.dag.max_indegree(), dag.max_indegree() + 1);
}

TEST(Transforms, LiftedTraceValidWithOneExtraPebble) {
  // Section 3: the transformed DAG with R+1 pebbles behaves like the
  // original with R — a trace lifts by computing s0 first.
  Dag dag = make_random_layered_dag({.layers = 4, .width = 4, .indegree = 2,
                                     .seed = 5});
  std::size_t r = min_red_pebbles(dag);
  for (const Model& model : all_models()) {
    Engine original(dag, model, r);
    Trace trace = solve_greedy(original);
    VerifyResult vr0 = verify(original, trace);
    ASSERT_TRUE(vr0.ok()) << model.name();

    SingleSourceDag tr = add_universal_source(dag);
    Engine lifted_engine(tr.dag, model, r + 1);
    Trace lifted = lift_to_universal_source(tr, trace);
    VerifyResult vr1 = verify(lifted_engine, lifted);
    ASSERT_TRUE(vr1.ok()) << model.name() << ": " << vr1.error;
    // Identical transfer cost: s0 is computed once and never moved.
    EXPECT_EQ(vr1.cost.transfers(), vr0.cost.transfers()) << model.name();
  }
}

TEST(Transforms, FinishSinksBlueAddsAtMostOnePerSink) {
  Dag dag = make_random_layered_dag({.layers = 3, .width = 5, .indegree = 2,
                                     .seed = 11});
  Engine engine(dag, Model::oneshot(), min_red_pebbles(dag) + 1);
  Trace trace = solve_greedy(engine);
  VerifyResult before = verify_or_throw(engine, trace);
  Trace blue = finish_sinks_blue(engine, trace);
  VerifyResult after = verify_or_throw(engine, blue);
  for (NodeId sink : dag.sinks()) {
    EXPECT_TRUE(after.final_state.is_blue(sink));
  }
  EXPECT_LE(after.total,
            before.total +
                Rational(static_cast<std::int64_t>(dag.sinks().size())));
}

TEST(Transforms, FinishSinksBlueRejectsInvalidTrace) {
  Dag dag = make_random_layered_dag({.layers = 2, .width = 2, .indegree = 1,
                                     .seed = 1});
  Engine engine(dag, Model::oneshot(), min_red_pebbles(dag));
  EXPECT_THROW(finish_sinks_blue(engine, Trace{}), PreconditionError);
}

}  // namespace
}  // namespace rbpeb
