// Cross-module integration: full paper pipelines on small instances.
#include <gtest/gtest.h>

#include "src/analysis/greedy_vs_opt.hpp"
#include "src/analysis/length_audit.hpp"
#include "src/analysis/tradeoff.hpp"
#include "src/graph/generators.hpp"
#include "src/pebble/bounds.hpp"
#include "src/pebble/verifier.hpp"
#include "src/reductions/hampath.hpp"
#include "src/reductions/hampath_solver.hpp"
#include "src/solvers/exact.hpp"
#include "src/solvers/greedy.hpp"
#include "src/workloads/matmul.hpp"
#include "src/workloads/tree_reduction.hpp"

namespace rbpeb {
namespace {

// Random yes/no Hamiltonian-path instances, solved end to end through the
// pebbling reduction, cross-checked against the Held–Karp oracle.
TEST(EndToEnd, HamPathPipelineOnRandomGraphs) {
  Rng rng(2026);
  int yes = 0, no = 0;
  for (int trial = 0; trial < 12; ++trial) {
    Graph g = trial % 2 == 0 ? random_graph(6, 0.3, rng)
                             : random_graph_with_ham_path(6, 0.15, rng);
    bool oracle = has_hamiltonian_path(g);
    (oracle ? yes : no)++;
    HamPathReduction red = make_hampath_reduction(g, Model::oneshot());
    HamPathPebbling opt = solve_hampath_pebbling(red);
    EXPECT_EQ(opt.cost <= hampath_threshold(red), oracle) << "trial " << trial;
  }
  // The sample must exercise both branches to be meaningful.
  EXPECT_GT(yes, 0);
  EXPECT_GT(no, 0);
}

TEST(EndToEnd, TradeoffSweepShapes) {
  const std::size_t d = 3, len = 8;
  for (const Model& model : all_models()) {
    auto series = chain_tradeoff_sweep(d, len, model);
    ASSERT_EQ(series.size(), d + 1);
    // Monotone non-increasing in R in every model.
    for (std::size_t i = 0; i + 1 < series.size(); ++i) {
      EXPECT_LE(series[i + 1].measured, series[i].measured) << model.name();
    }
    // oneshot hits zero at R = 2d+2; others keep their model-specific floor.
    if (model.kind() == ModelKind::Oneshot) {
      EXPECT_EQ(series.back().measured, Rational(0));
    } else {
      EXPECT_GT(series.back().measured, Rational(0)) << model.name();
    }
  }
}

TEST(EndToEnd, GridRatioSweepGrows) {
  auto series = grid_ratio_sweep({2, 4}, 24, Model::oneshot());
  ASSERT_EQ(series.size(), 2u);
  EXPECT_TRUE(series[0].followed_expected_path);
  EXPECT_TRUE(series[1].followed_expected_path);
  EXPECT_LT(series[0].ratio(), series[1].ratio());
  EXPECT_GT(series[1].ratio(), 1.0);
}

TEST(EndToEnd, TreeReductionGreedyNearExactTinyCase) {
  TreeReductionDag tree = make_tree_reduction_dag(4);  // 7 nodes
  Engine engine(tree.dag, Model::oneshot(), 3);
  ExactResult exact = solve_exact(engine, 4'000'000);
  Rational greedy = verify_or_throw(engine, solve_greedy(engine)).total;
  EXPECT_GE(greedy, exact.cost);
  EXPECT_LE(greedy, exact.cost * Rational(3) + Rational(4));
}

TEST(EndToEnd, LengthAuditOnSolverTraces) {
  MatMulDag mm = make_matmul_dag(3);
  for (const Model& model : all_models()) {
    if (model.kind() == ModelKind::Base) continue;  // no finite bound
    Engine engine(mm.dag, model, 4);
    Trace trace = solve_greedy(engine);
    LengthAudit audit = audit_length(engine, trace);
    EXPECT_TRUE(audit.within_bound) << model.name();
    EXPECT_LE(audit.trace_length, audit.bound);
  }
}

TEST(EndToEnd, GreedyEvictionAblationAllValid) {
  MatMulDag mm = make_matmul_dag(3);
  for (EvictionRule rule : {EvictionRule::Lru, EvictionRule::FewestRemainingUses,
                            EvictionRule::Random}) {
    GreedyOptions options;
    options.eviction = rule;
    Rational cost = greedy_cost_on(mm.dag, Model::oneshot(), 5, options);
    EXPECT_GE(cost, Rational(0));
    EXPECT_LE(cost, universal_cost_upper_bound(mm.dag, Model::oneshot()));
  }
}

}  // namespace
}  // namespace rbpeb
