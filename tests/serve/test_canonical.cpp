// Canonicalization invariants (src/serve/canonical.hpp): the fingerprint
// must be INVARIANT under node relabeling — a renumbered isomorph is the
// same instance and must land on the same cache entry — and must SEPARATE
// every request dimension that changes the answer: model, ε, convention
// bits, R, solver, and options must all produce distinct fingerprints on
// the same DAG.
#include "src/serve/canonical.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/graph/dag_builder.hpp"
#include "src/support/rng.hpp"
#include "src/workloads/chain.hpp"
#include "src/workloads/fft.hpp"
#include "src/workloads/stencil.hpp"
#include "src/workloads/tree_reduction.hpp"

namespace rbpeb::serve {
namespace {

/// Rebuild `dag` with node i renamed perm[i]; the edge set is the same
/// relation, so the result is isomorphic by construction.
Dag relabel(const Dag& dag, const std::vector<NodeId>& perm) {
  DagBuilder builder;
  builder.add_nodes(dag.node_count());
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    for (const NodeId succ : dag.successors(v)) {
      builder.add_edge(perm[v], perm[succ]);
    }
  }
  return builder.build();
}

std::vector<NodeId> random_permutation(std::size_t n, Rng& rng) {
  std::vector<NodeId> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<NodeId>(i);
  rng.shuffle(perm);
  return perm;
}

std::string fingerprint_of(const Dag& dag, const Model& model = Model::oneshot(),
                           const PebblingConvention& convention = {},
                           std::size_t r = 3,
                           const std::string& solver = "portfolio",
                           const SolverOptions& options = {}) {
  return instance_fingerprint(canonicalize(dag), model, convention, r, solver,
                              options);
}

TEST(Canonical, HashInvariantUnderRelabeling) {
  const std::vector<Dag> dags = {
      make_tree_reduction_dag(8).dag,   make_tree_reduction_dag(16).dag,
      make_chain_dag(12),               make_fft_dag(8).dag,
      make_stencil1d_dag(5, 3).dag,
  };
  Rng rng(42);
  for (const Dag& dag : dags) {
    const CanonicalForm original = canonicalize(dag);
    const std::string original_fp = fingerprint_of(dag);
    for (int round = 0; round < 8; ++round) {
      const auto perm = random_permutation(dag.node_count(), rng);
      const Dag shuffled = relabel(dag, perm);
      const CanonicalForm relabeled = canonicalize(shuffled);
      EXPECT_EQ(original.dag_hash, relabeled.dag_hash)
          << "relabeling changed the WL hash (round " << round << ")";
      EXPECT_EQ(original_fp, fingerprint_of(shuffled))
          << "relabeling changed the fingerprint (round " << round << ")";
    }
  }
}

TEST(Canonical, OrderIsAPermutation) {
  Rng rng(7);
  const Dag dag = make_fft_dag(8).dag;
  for (int round = 0; round < 4; ++round) {
    const Dag shuffled =
        relabel(dag, random_permutation(dag.node_count(), rng));
    const CanonicalForm form = canonicalize(shuffled);
    ASSERT_EQ(form.order.size(), shuffled.node_count());
    std::set<NodeId> seen(form.order.begin(), form.order.end());
    EXPECT_EQ(seen.size(), shuffled.node_count());
  }
}

TEST(Canonical, OrderComposesToAnIsomorphismOnRegularWorkloads) {
  // For the workloads the serve cache actually sees, individualization-
  // refinement must produce orders that map entry nodes onto request nodes
  // edge-preservingly — this is what lets a cached trace replay on a
  // relabeled isomorph (the Verifier audit backstops any residue).
  Rng rng(99);
  const std::vector<Dag> dags = {make_tree_reduction_dag(8).dag,
                                 make_fft_dag(4).dag,
                                 make_stencil1d_dag(4, 3).dag};
  for (const Dag& dag : dags) {
    const CanonicalForm a = canonicalize(dag);
    const Dag shuffled =
        relabel(dag, random_permutation(dag.node_count(), rng));
    const CanonicalForm b = canonicalize(shuffled);
    ASSERT_EQ(a.order.size(), b.order.size());
    // map a-node → b-node through canonical positions.
    std::vector<NodeId> map(dag.node_count(), kInvalidNode);
    for (std::size_t i = 0; i < a.order.size(); ++i) {
      map[a.order[i]] = b.order[i];
    }
    std::size_t preserved = 0, edges = 0;
    for (NodeId v = 0; v < dag.node_count(); ++v) {
      for (const NodeId succ : dag.successors(v)) {
        ++edges;
        preserved += shuffled.has_edge(map[v], map[succ]) ? 1 : 0;
      }
    }
    EXPECT_EQ(preserved, edges);
  }
}

TEST(Canonical, DistinctDagsAlmostSurelyDistinctHashes) {
  // Not isomorphic, so their hashes must differ (collision would cost an
  // audited re-solve, not a wrong answer — but these easy separations are
  // exactly what WL refinement distinguishes).
  const std::vector<Dag> dags = {
      make_tree_reduction_dag(8).dag, make_tree_reduction_dag(16).dag,
      make_chain_dag(15),             make_chain_dag(16),
      make_fft_dag(8).dag,            make_stencil1d_dag(5, 3).dag,
  };
  std::set<std::uint64_t> hashes;
  for (const Dag& dag : dags) hashes.insert(canonicalize(dag).dag_hash);
  EXPECT_EQ(hashes.size(), dags.size());
}

TEST(Canonical, FingerprintSeparatesEveryRequestDimension) {
  const Dag dag = make_tree_reduction_dag(8).dag;
  std::set<std::string> fingerprints;
  const auto insert_unique = [&fingerprints](const std::string& fp) {
    EXPECT_TRUE(fingerprints.insert(fp).second)
        << "two distinct request dimensions collided on " << fp;
  };
  // Models — including two compcost parameterizations with different ε.
  insert_unique(fingerprint_of(dag, Model::base()));
  insert_unique(fingerprint_of(dag, Model::oneshot()));
  insert_unique(fingerprint_of(dag, Model::nodel()));
  insert_unique(fingerprint_of(dag, Model::compcost(1, 100)));
  insert_unique(fingerprint_of(dag, Model::compcost(1, 10)));
  // Convention bits.
  insert_unique(fingerprint_of(dag, Model::oneshot(), {true, false}));
  insert_unique(fingerprint_of(dag, Model::oneshot(), {false, true}));
  insert_unique(fingerprint_of(dag, Model::oneshot(), {true, true}));
  // R.
  insert_unique(fingerprint_of(dag, Model::oneshot(), {}, 4));
  insert_unique(fingerprint_of(dag, Model::oneshot(), {}, 5));
  // Solver.
  insert_unique(fingerprint_of(dag, Model::oneshot(), {}, 3, "greedy"));
  insert_unique(fingerprint_of(dag, Model::oneshot(), {}, 3, "exact"));
  // Options (and option VALUES).
  insert_unique(fingerprint_of(dag, Model::oneshot(), {}, 3, "greedy",
                               {{"rule", "lru"}}));
  insert_unique(fingerprint_of(dag, Model::oneshot(), {}, 3, "greedy",
                               {{"rule", "mru"}}));
}

TEST(Canonical, FingerprintIsStableAcrossCalls) {
  const Dag dag = make_fft_dag(8).dag;
  EXPECT_EQ(fingerprint_of(dag), fingerprint_of(dag));
}

}  // namespace
}  // namespace rbpeb::serve
