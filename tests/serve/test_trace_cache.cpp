// Trace-cache behavior (src/serve/trace_cache.hpp): LRU eviction under the
// byte budget, the serve-side audit rejecting a corrupted entry instead of
// serving it, and — through a real Server — single-flight collapse of
// concurrent identical requests into exactly one solve.
#include "src/serve/trace_cache.hpp"

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "src/graph/dag_io.hpp"
#include "src/serve/server.hpp"
#include "src/solvers/api.hpp"
#include "src/workloads/chain.hpp"
#include "src/workloads/tree_reduction.hpp"

namespace rbpeb::serve {
namespace {

/// A verified greedy answer for `dag` at `r` — raw material for cache
/// entries.
struct Answer {
  Dag dag;
  CanonicalForm form;
  Trace trace;

  explicit Answer(Dag d, std::size_t r) : dag(std::move(d)) {
    form = canonicalize(dag);
    const Engine engine(dag, Model::oneshot(), r);
    SolveRequest request;
    request.engine = &engine;
    const SolveResult result =
        SolverRegistry::instance().at("greedy").run(request);
    EXPECT_TRUE(result.ok());
    EXPECT_TRUE(result.has_trace());
    if (result.has_trace()) trace = *result.trace;
  }
};

TEST(TraceCache, InsertThenLookupServesAuditedAnswer) {
  const Answer answer(make_tree_reduction_dag(8).dag, 3);
  const Engine engine(answer.dag, Model::oneshot(), 3);
  TraceCache cache(1 << 20);
  ASSERT_TRUE(cache.insert("fp", engine, answer.form, answer.trace,
                           SolveStatus::Heuristic, "greedy"));
  const auto hit = cache.lookup("fp", engine, answer.form);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->trace.size(), answer.trace.size());
  EXPECT_EQ(hit->solver, "greedy");
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().audit_failures, 0u);
}

TEST(TraceCache, RejectsNonAnswerStatuses) {
  const Answer answer(make_chain_dag(8), 2);
  const Engine engine(answer.dag, Model::oneshot(), 2);
  TraceCache cache(1 << 20);
  EXPECT_FALSE(cache.insert("fp", engine, answer.form, answer.trace,
                            SolveStatus::BudgetExhausted, "greedy"));
  EXPECT_FALSE(cache.insert("fp", engine, answer.form, answer.trace,
                            SolveStatus::Inapplicable, "greedy"));
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(TraceCache, InsertAuditRejectsIllegalTrace) {
  const Answer answer(make_chain_dag(8), 2);
  const Engine engine(answer.dag, Model::oneshot(), 2);
  // A trace verified against the WRONG instance must fail the insert audit.
  const Answer other(make_tree_reduction_dag(8).dag, 3);
  const Engine other_engine(other.dag, Model::oneshot(), 3);
  TraceCache cache(1 << 20);
  EXPECT_FALSE(cache.insert("fp", other_engine, other.form, answer.trace,
                            SolveStatus::Heuristic, "greedy"));
  EXPECT_EQ(cache.stats().rejected_inserts, 1u);
  EXPECT_EQ(cache.stats().audit_failures, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(TraceCache, EvictsLeastRecentlyUsedUnderByteBudget) {
  const Answer a(make_chain_dag(6), 2);
  const Answer b(make_chain_dag(8), 2);
  const Answer c(make_chain_dag(10), 2);
  const Engine ea(a.dag, Model::oneshot(), 2);
  const Engine eb(b.dag, Model::oneshot(), 2);
  const Engine ec(c.dag, Model::oneshot(), 2);

  // Size the budget from real entry footprints: room for two of the three.
  TraceCache probe(0);
  ASSERT_TRUE(probe.insert("a", ea, a.form, a.trace, SolveStatus::Heuristic,
                           "greedy"));
  ASSERT_TRUE(probe.insert("b", eb, b.form, b.trace, SolveStatus::Heuristic,
                           "greedy"));
  ASSERT_TRUE(probe.insert("c", ec, c.form, c.trace, SolveStatus::Heuristic,
                           "greedy"));
  const std::size_t three = probe.stats().bytes;
  ASSERT_EQ(probe.stats().entries, 3u);
  const std::size_t budget = three - 1;  // cannot hold all three

  TraceCache cache(budget);
  ASSERT_TRUE(
      cache.insert("a", ea, a.form, a.trace, SolveStatus::Heuristic, "greedy"));
  ASSERT_TRUE(
      cache.insert("b", eb, b.form, b.trace, SolveStatus::Heuristic, "greedy"));
  // Touch "a" so "b" becomes the LRU tail.
  ASSERT_TRUE(cache.lookup("a", ea, a.form).has_value());
  ASSERT_TRUE(
      cache.insert("c", ec, c.form, c.trace, SolveStatus::Heuristic, "greedy"));
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().bytes, budget);
  // The recently-used "a" survived; the LRU "b" did not.
  EXPECT_TRUE(cache.lookup("a", ea, a.form).has_value());
  EXPECT_FALSE(cache.lookup("b", eb, b.form).has_value());
}

TEST(TraceCache, OversizedEntryIsRejectedOutright) {
  const Answer answer(make_chain_dag(10), 2);
  const Engine engine(answer.dag, Model::oneshot(), 2);
  TraceCache cache(16);  // smaller than any entry
  EXPECT_FALSE(cache.insert("fp", engine, answer.form, answer.trace,
                            SolveStatus::Heuristic, "greedy"));
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(TraceCache, ServeAuditRejectsCorruptedEntryAndDropsIt) {
  const Answer answer(make_tree_reduction_dag(8).dag, 3);
  const Engine engine(answer.dag, Model::oneshot(), 3);
  TraceCache cache(1 << 20);
  ASSERT_TRUE(cache.insert("fp", engine, answer.form, answer.trace,
                           SolveStatus::Heuristic, "greedy"));
  ASSERT_TRUE(cache.corrupt_entry_for_test("fp"));

  // The corrupted trace must NOT be served: the pre-serve replay fails,
  // the entry is dropped, and the request reads as a miss.
  EXPECT_FALSE(cache.lookup("fp", engine, answer.form).has_value());
  EXPECT_EQ(cache.stats().audit_failures, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);

  // The poisoned fingerprint is reusable: a fresh, legal insert serves.
  ASSERT_TRUE(cache.insert("fp", engine, answer.form, answer.trace,
                           SolveStatus::Heuristic, "greedy"));
  EXPECT_TRUE(cache.lookup("fp", engine, answer.form).has_value());
}

TEST(TraceCache, SingleFlightCollapsesConcurrentIdenticalRequests) {
  ServerOptions options;
  options.workers = 4;
  Server server(options);

  const std::string dag_text = to_text(make_tree_reduction_dag(8).dag);
  constexpr std::size_t kClients = 16;
  std::vector<std::future<ResponseMessage>> futures;
  futures.reserve(kClients);
  for (std::size_t i = 0; i < kClients; ++i) {
    RequestMessage request;
    request.id = "c" + std::to_string(i);
    request.dag_text = dag_text;
    request.red_limit = 3;
    request.solver = "greedy";
    futures.push_back(server.submit(std::move(request)));
  }

  std::string cost, trace;
  for (auto& future : futures) {
    const ResponseMessage response = future.get();
    ASSERT_EQ(response.status, "heuristic") << response.detail;
    ASSERT_FALSE(response.cost.empty());
    if (cost.empty()) {
      cost = response.cost;
      trace = response.trace_text;
    } else {
      // Byte-identical answers, whether solved, flight-collapsed or cached.
      EXPECT_EQ(response.cost, cost);
      EXPECT_EQ(response.trace_text, trace);
    }
  }

  // The collapse itself: one solve, everyone else served without one.
  const ServerStats& stats = server.stats();
  EXPECT_EQ(stats.solves.load(), 1u);
  EXPECT_EQ(stats.cache_hits.load() + stats.flight_hits.load(), kClients - 1);
  EXPECT_EQ(stats.audit_failures.load(), 0u);
}

}  // namespace
}  // namespace rbpeb::serve
