// The multi-level memory hierarchy extension.
#include "src/multilevel/ml_solver.hpp"

#include <gtest/gtest.h>

#include "src/graph/dag_builder.hpp"
#include "src/pebble/bounds.hpp"
#include "src/pebble/verifier.hpp"
#include "src/solvers/topo_baseline.hpp"
#include "src/support/check.hpp"
#include "src/workloads/fft.hpp"
#include "src/workloads/matmul.hpp"
#include "src/workloads/tree_reduction.hpp"

namespace rbpeb {
namespace {

Dag edge_dag() {
  DagBuilder b;
  b.add_nodes(2);
  b.add_edge(0, 1);
  return b.build();
}

TEST(Hierarchy, Validation) {
  EXPECT_NO_THROW(validate(Hierarchy::two_level(4)));
  EXPECT_NO_THROW(validate(Hierarchy::three_level(4, 16)));
  EXPECT_THROW(validate(Hierarchy{{}, {}}), PreconditionError);
  EXPECT_THROW(validate(Hierarchy{{4}, {}}), PreconditionError);
  EXPECT_THROW(validate(Hierarchy{{0}, {1}}), PreconditionError);
  EXPECT_THROW(validate(Hierarchy{{4}, {-1}}), PreconditionError);
  EXPECT_EQ(Hierarchy::three_level(4, 16).levels(), 3u);
}

TEST(MlEngine, ComputeNeedsInputsAtLevelZero) {
  Dag dag = edge_dag();
  MlEngine engine(dag, Hierarchy::three_level(2, 4));
  MlState state = engine.initial_state();
  EXPECT_FALSE(engine.is_legal(state, {MlMoveType::Compute, 1}));
  engine.apply(state, {MlMoveType::Compute, 0});
  EXPECT_TRUE(engine.is_legal(state, {MlMoveType::Compute, 1}));
  engine.apply(state, {MlMoveType::Demote, 0});
  // Input at level 1 is not good enough.
  EXPECT_FALSE(engine.is_legal(state, {MlMoveType::Compute, 1}));
}

TEST(MlEngine, CapacitiesEnforcedPerLevel) {
  DagBuilder b;
  b.add_nodes(5);
  Dag dag = b.build();
  MlEngine engine(dag, Hierarchy{{2, 1}, {1, 5}});
  MlState state = engine.initial_state();
  engine.apply(state, {MlMoveType::Compute, 0});
  engine.apply(state, {MlMoveType::Compute, 1});
  EXPECT_FALSE(engine.is_legal(state, {MlMoveType::Compute, 2}));  // L0 full
  engine.apply(state, {MlMoveType::Demote, 0});
  engine.apply(state, {MlMoveType::Compute, 2});
  // Level 1 (capacity 1) is now full; demoting from level 0 must fail.
  EXPECT_FALSE(engine.is_legal(state, {MlMoveType::Demote, 1}));
  // But the bottom level is unbounded.
  engine.apply(state, {MlMoveType::Demote, 0});  // 0: level 1 -> 2
  EXPECT_TRUE(engine.is_legal(state, {MlMoveType::Demote, 1}));
}

TEST(MlEngine, PromoteDemoteBoundaries) {
  Dag dag = edge_dag();
  MlEngine engine(dag, Hierarchy::three_level(2, 4));
  MlState state = engine.initial_state();
  engine.apply(state, {MlMoveType::Compute, 0});
  EXPECT_FALSE(engine.is_legal(state, {MlMoveType::Promote, 0}));  // at top
  engine.apply(state, {MlMoveType::Demote, 0});
  engine.apply(state, {MlMoveType::Demote, 0});
  EXPECT_FALSE(engine.is_legal(state, {MlMoveType::Demote, 0}));  // at bottom
  EXPECT_FALSE(engine.is_legal(state, {MlMoveType::Promote, 1}));  // absent
}

TEST(MlEngine, TransferCostsPerBoundary) {
  Dag dag = edge_dag();
  MlEngine engine(dag, Hierarchy::three_level(2, 4, 1, 10));
  MlState state = engine.initial_state();
  engine.apply(state, {MlMoveType::Compute, 0});
  EXPECT_EQ(engine.apply(state, {MlMoveType::Demote, 0}), 1);   // L0 -> L1
  EXPECT_EQ(engine.apply(state, {MlMoveType::Demote, 0}), 10);  // L1 -> L2
  EXPECT_EQ(engine.apply(state, {MlMoveType::Promote, 0}), 10);
  EXPECT_EQ(engine.apply(state, {MlMoveType::Promote, 0}), 1);
}

TEST(MlEngine, OneshotRuleEnforced) {
  Dag dag = edge_dag();
  MlEngine engine(dag, Hierarchy::two_level(2));
  MlState state = engine.initial_state();
  engine.apply(state, {MlMoveType::Compute, 0});
  engine.apply(state, {MlMoveType::Delete, 0});
  EXPECT_FALSE(engine.is_legal(state, {MlMoveType::Compute, 0}));
}

TEST(MlSolver, HugeCapacityIsFree) {
  Dag dag = make_tree_reduction_dag(32).dag;
  MlEngine engine(dag, Hierarchy{{1024, 1024}, {1, 10}});
  MlVerifyResult vr = ml_verify(engine, solve_ml_topo(engine));
  ASSERT_TRUE(vr.ok()) << vr.error;
  EXPECT_EQ(vr.total_cost, 0);
}

TEST(MlSolver, ValidOnWorkloads) {
  std::vector<Dag> dags;
  dags.push_back(make_matmul_dag(4).dag);
  dags.push_back(make_fft_dag(16).dag);
  dags.push_back(make_tree_reduction_dag(20).dag);
  for (const Dag& dag : dags) {
    for (Hierarchy h :
         {Hierarchy::two_level(6), Hierarchy::three_level(4, 12),
          Hierarchy{{3, 6, 12}, {1, 4, 16}}}) {
      MlEngine engine(dag, h);
      MlVerifyResult vr = ml_verify(engine, solve_ml_topo(engine));
      ASSERT_TRUE(vr.ok()) << vr.error;
      // Peak occupancy respects every bounded level.
      for (std::size_t l = 0; l + 1 < h.levels(); ++l) {
        EXPECT_LE(vr.peak_occupancy[l], h.capacities[l]);
      }
    }
  }
}

TEST(MlSolver, CostMonotoneInTopLevelCapacity) {
  Dag dag = make_matmul_dag(5).dag;
  std::int64_t prev = -1;
  for (std::size_t l0 : {3u, 6u, 12u, 24u}) {
    MlEngine engine(dag, Hierarchy::three_level(l0, 64));
    MlVerifyResult vr = ml_verify(engine, solve_ml_topo(engine));
    ASSERT_TRUE(vr.ok());
    if (prev >= 0) EXPECT_LE(vr.total_cost, prev);
    prev = vr.total_cost;
  }
}

TEST(MlSolver, TwoLevelMatchesClassicBaselineCost) {
  // With levels() == 2 the game degenerates to classic oneshot pebbling;
  // the multi-level baseline and the classic ordered pebbler implement the
  // same strategy, so audited costs must agree exactly.
  for (std::size_t r : {3u, 5u, 9u}) {
    Dag dag = make_fft_dag(16).dag;
    MlEngine ml_engine(dag, Hierarchy::two_level(r));
    MlVerifyResult ml = ml_verify(ml_engine, solve_ml_topo(ml_engine));
    ASSERT_TRUE(ml.ok()) << ml.error;

    Engine engine(dag, Model::oneshot(), r);
    VerifyResult classic = verify_or_throw(engine, solve_topo_baseline(engine));
    EXPECT_EQ(ml.total_cost, classic.total.num()) << "R=" << r;
  }
}

TEST(MlSolver, BigSlowBoundaryDominatesCost) {
  // With a 10x cost on the lower boundary, most of the bill should come
  // from level-1 <-> level-2 traffic when level 1 is small.
  Dag dag = make_matmul_dag(5).dag;
  MlEngine engine(dag, Hierarchy::three_level(4, 8, 1, 10));
  MlVerifyResult vr = ml_verify(engine, solve_ml_topo(engine));
  ASSERT_TRUE(vr.ok());
  ASSERT_EQ(vr.boundary_transfers.size(), 2u);
  EXPECT_GT(vr.boundary_transfers[0], 0);
  // A bigger mid-level cache suppresses slow-memory traffic.
  MlEngine big(dag, Hierarchy::three_level(4, 512, 1, 10));
  MlVerifyResult vr_big = ml_verify(big, solve_ml_topo(big));
  ASSERT_TRUE(vr_big.ok());
  EXPECT_LT(vr_big.boundary_transfers[1], vr.boundary_transfers[1]);
}

TEST(MlVerify, ReportsIllegalMove) {
  Dag dag = edge_dag();
  MlEngine engine(dag, Hierarchy::two_level(2));
  MlTrace trace;
  trace.push({MlMoveType::Compute, 1});  // input not at level 0
  MlVerifyResult vr = ml_verify(engine, trace);
  EXPECT_FALSE(vr.legal);
  EXPECT_EQ(vr.failed_at, 0u);
  EXPECT_NE(vr.error.find("compute"), std::string::npos);
}

TEST(MlEngine, RejectsTooSmallTopLevel) {
  DagBuilder b;
  b.add_nodes(4);
  b.add_edge(0, 3);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  Dag dag = b.build();  // Δ = 3
  EXPECT_THROW(MlEngine(dag, Hierarchy::two_level(3)), PreconditionError);
  EXPECT_NO_THROW(MlEngine(dag, Hierarchy::two_level(4)));
}

}  // namespace
}  // namespace rbpeb
