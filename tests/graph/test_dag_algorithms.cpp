#include "src/graph/dag_algorithms.hpp"

#include <gtest/gtest.h>

#include "src/graph/dag_builder.hpp"
#include "src/workloads/random_layered.hpp"

namespace rbpeb {
namespace {

Dag chain(std::size_t n) {
  DagBuilder b;
  b.add_nodes(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

TEST(DagAlgorithms, TopologicalOrderOnChain) {
  Dag dag = chain(5);
  auto order = topological_order(dag);
  EXPECT_EQ(order, std::vector<NodeId>({0, 1, 2, 3, 4}));
  EXPECT_TRUE(is_topological_order(dag, order));
}

TEST(DagAlgorithms, TopologicalOrderDeterministic) {
  DagBuilder b;
  b.add_nodes(4);
  b.add_edge(3, 1);
  b.add_edge(2, 1);
  Dag dag = b.build();
  // Ready set initially {0, 2, 3}: smallest id first.
  auto order = topological_order(dag);
  EXPECT_EQ(order, std::vector<NodeId>({0, 2, 3, 1}));
}

TEST(DagAlgorithms, IsTopologicalOrderRejectsViolations) {
  Dag dag = chain(3);
  EXPECT_FALSE(is_topological_order(dag, {2, 1, 0}));
  EXPECT_FALSE(is_topological_order(dag, {0, 1}));        // not a permutation
  EXPECT_FALSE(is_topological_order(dag, {0, 1, 1}));     // duplicate
  EXPECT_FALSE(is_topological_order(dag, {0, 1, 7}));     // out of range
}

TEST(DagAlgorithms, RandomLayeredOrdersAreTopological) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Dag dag = make_random_layered_dag({.layers = 6, .width = 7, .indegree = 3,
                                       .seed = seed});
    EXPECT_TRUE(is_topological_order(dag, topological_order(dag)));
  }
}

TEST(DagAlgorithms, Reachability) {
  DagBuilder b;
  b.add_nodes(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  Dag dag = b.build();
  EXPECT_EQ(reachable_from(dag, 0), std::vector<NodeId>({0, 1, 2}));
  EXPECT_EQ(reachable_from(dag, 3), std::vector<NodeId>({3, 4}));
  EXPECT_EQ(ancestors_of(dag, 2), std::vector<NodeId>({0, 1, 2}));
  EXPECT_EQ(ancestors_of(dag, 3), std::vector<NodeId>({3}));
}

TEST(DagAlgorithms, DepthsAndLongestPath) {
  Dag dag = chain(6);
  auto depth = node_depths(dag);
  for (std::size_t v = 0; v < 6; ++v) EXPECT_EQ(depth[v], v);
  EXPECT_EQ(longest_path_length(dag), 5u);

  DagBuilder b;
  b.add_nodes(3);  // edgeless
  EXPECT_EQ(longest_path_length(b.build()), 0u);
}

}  // namespace
}  // namespace rbpeb
