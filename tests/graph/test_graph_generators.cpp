#include "src/graph/generators.hpp"

#include <gtest/gtest.h>

#include "src/reductions/hampath_solver.hpp"
#include "src/support/check.hpp"

namespace rbpeb {
namespace {

TEST(Graph, AddAndQueryEdges) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));  // undirected
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 1));
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.neighbors(3), std::vector<Vertex>({2}));
}

TEST(Graph, RejectsLoopsAndDuplicates) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(1, 1), PreconditionError);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(1, 0), PreconditionError);
  EXPECT_THROW(g.add_edge(0, 7), PreconditionError);
}

TEST(Generators, StructuredGraphs) {
  EXPECT_EQ(path_graph(5).edge_count(), 4u);
  EXPECT_EQ(cycle_graph(5).edge_count(), 5u);
  EXPECT_TRUE(complete_graph(6).is_complete());
  EXPECT_EQ(star_graph(5).degree(0), 4u);
  Graph tc = two_cliques(3, 4);
  EXPECT_EQ(tc.edge_count(), 3u + 6u);
  EXPECT_FALSE(tc.has_edge(0, 3));
}

TEST(Generators, RandomGraphRespectsProbabilityExtremes) {
  Rng rng(5);
  EXPECT_EQ(random_graph(10, 0.0, rng).edge_count(), 0u);
  EXPECT_TRUE(random_graph(10, 1.0, rng).is_complete());
}

TEST(Generators, PlantedHamPathAlwaysHasOne) {
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = random_graph_with_ham_path(7, 0.1, rng);
    EXPECT_TRUE(has_hamiltonian_path(g));
  }
}

TEST(Generators, KnownHamPathFacts) {
  EXPECT_TRUE(has_hamiltonian_path(path_graph(6)));
  EXPECT_TRUE(has_hamiltonian_path(cycle_graph(6)));
  EXPECT_TRUE(has_hamiltonian_path(complete_graph(5)));
  EXPECT_FALSE(has_hamiltonian_path(star_graph(5)));
  EXPECT_FALSE(has_hamiltonian_path(two_cliques(3, 3)));
}

TEST(Generators, MaxAdjacentPairsMatchesStructure) {
  // A star on 5 vertices: best permutation alternates center... only one
  // center, so at most 2 adjacent pairs (x-0-y).
  EXPECT_EQ(max_adjacent_pairs(star_graph(5)), 2u);
  EXPECT_EQ(max_adjacent_pairs(path_graph(5)), 4u);
  // Two K3s: each clique contributes a sub-path of 2 edges, no bridge.
  EXPECT_EQ(max_adjacent_pairs(two_cliques(3, 3)), 4u);
}

}  // namespace
}  // namespace rbpeb
