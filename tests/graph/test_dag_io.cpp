#include "src/graph/dag_io.hpp"

#include <gtest/gtest.h>

#include "src/graph/dag_builder.hpp"
#include "src/support/check.hpp"
#include "src/workloads/random_layered.hpp"

namespace rbpeb {
namespace {

TEST(DagIo, TextRoundTrip) {
  Dag dag = make_random_layered_dag({.layers = 4, .width = 5, .indegree = 2,
                                     .seed = 9});
  Dag back = from_text(to_text(dag));
  ASSERT_EQ(back.node_count(), dag.node_count());
  ASSERT_EQ(back.edge_count(), dag.edge_count());
  for (std::size_t v = 0; v < dag.node_count(); ++v) {
    auto a = dag.predecessors(static_cast<NodeId>(v));
    auto b = back.predecessors(static_cast<NodeId>(v));
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST(DagIo, FromTextRejectsBadInput) {
  EXPECT_THROW(from_text(""), PreconditionError);
  EXPECT_THROW(from_text("2\n0 5\n"), PreconditionError);   // out of range
  EXPECT_THROW(from_text("2\n0 1 junk"), PreconditionError);
  EXPECT_THROW(from_text("2\n0 1\n1 0\n"), PreconditionError);  // cycle
}

// A tiny input must not be able to declare a node count whose builder
// allocation dwarfs the input (fuzzer-found: "4000000000\n" allocated
// gigabytes before any validation). Counts under the floor stay legal even
// when the file is all header.
TEST(DagIo, FromTextRejectsImplausibleNodeCounts) {
  EXPECT_THROW(from_text("4000000000\n"), PreconditionError);
  EXPECT_THROW(from_text("10000000\n0 1\n"), PreconditionError);
  Dag sparse = from_text("1000000\n12 999999\n");
  EXPECT_EQ(sparse.node_count(), 1000000u);
  EXPECT_EQ(sparse.edge_count(), 1u);
}

TEST(DagIo, DotContainsNodesAndEdges) {
  DagBuilder b;
  NodeId x = b.add_node("in");
  NodeId y = b.add_node();
  b.add_edge(x, y);
  std::string dot = to_dot(b.build(), "g");
  EXPECT_NE(dot.find("digraph g"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"in\""), std::string::npos);
}

TEST(DagIo, EmptyDagSerializes) {
  DagBuilder b;
  Dag dag = b.build();
  EXPECT_EQ(from_text(to_text(dag)).node_count(), 0u);
}

}  // namespace
}  // namespace rbpeb
