#include "src/graph/dag_builder.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/support/check.hpp"

namespace rbpeb {
namespace {

Dag diamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
  DagBuilder b;
  b.add_nodes(4);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  return b.build();
}

TEST(DagBuilder, BuildsDiamond) {
  Dag dag = diamond();
  EXPECT_EQ(dag.node_count(), 4u);
  EXPECT_EQ(dag.edge_count(), 4u);
  EXPECT_EQ(dag.max_indegree(), 2u);
  EXPECT_EQ(dag.sources(), std::vector<NodeId>({0}));
  EXPECT_EQ(dag.sinks(), std::vector<NodeId>({3}));
  EXPECT_TRUE(dag.is_source(0));
  EXPECT_TRUE(dag.is_sink(3));
  EXPECT_FALSE(dag.is_sink(1));
}

TEST(DagBuilder, AdjacencyBothDirections) {
  Dag dag = diamond();
  auto preds3 = dag.predecessors(3);
  std::vector<NodeId> p(preds3.begin(), preds3.end());
  std::sort(p.begin(), p.end());
  EXPECT_EQ(p, std::vector<NodeId>({1, 2}));
  auto succ0 = dag.successors(0);
  std::vector<NodeId> s(succ0.begin(), succ0.end());
  std::sort(s.begin(), s.end());
  EXPECT_EQ(s, std::vector<NodeId>({1, 2}));
  EXPECT_TRUE(dag.has_edge(0, 1));
  EXPECT_FALSE(dag.has_edge(1, 0));
  EXPECT_FALSE(dag.has_edge(0, 3));
}

TEST(DagBuilder, RejectsCycle) {
  DagBuilder b;
  b.add_nodes(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  EXPECT_THROW(b.build(), PreconditionError);
}

TEST(DagBuilder, RejectsSelfLoop) {
  DagBuilder b;
  b.add_nodes(1);
  EXPECT_THROW(b.add_edge(0, 0), PreconditionError);
}

TEST(DagBuilder, RejectsDuplicateEdge) {
  DagBuilder b;
  b.add_nodes(2);
  b.add_edge(0, 1);
  b.add_edge(0, 1);
  EXPECT_THROW(b.build(), PreconditionError);
}

TEST(DagBuilder, RejectsDanglingEndpoints) {
  DagBuilder b;
  b.add_nodes(2);
  EXPECT_THROW(b.add_edge(0, 5), PreconditionError);
}

TEST(DagBuilder, EmptyDag) {
  DagBuilder b;
  Dag dag = b.build();
  EXPECT_EQ(dag.node_count(), 0u);
  EXPECT_EQ(dag.edge_count(), 0u);
  EXPECT_EQ(dag.max_indegree(), 0u);
}

TEST(DagBuilder, EdgelessNodesAreSourcesAndSinks) {
  DagBuilder b;
  b.add_nodes(3);
  Dag dag = b.build();
  EXPECT_EQ(dag.sources().size(), 3u);
  EXPECT_EQ(dag.sinks().size(), 3u);
}

TEST(DagBuilder, LabelsPreserved) {
  DagBuilder b;
  NodeId x = b.add_node("input");
  NodeId y = b.add_node();
  b.add_edge(x, y);
  Dag dag = b.build();
  EXPECT_EQ(dag.label(x), "input");
  EXPECT_EQ(dag.label(y), "");
}

TEST(DagBuilder, NodeIdOutOfRangeThrows) {
  Dag dag = diamond();
  EXPECT_THROW(dag.predecessors(99), PreconditionError);
  EXPECT_THROW(dag.label(99), PreconditionError);
}

TEST(DagBuilder, LargeFanIn) {
  DagBuilder b;
  NodeId first = b.add_nodes(100);
  NodeId sink = b.add_node();
  for (NodeId v = first; v < 100; ++v) b.add_edge(v, sink);
  Dag dag = b.build();
  EXPECT_EQ(dag.max_indegree(), 100u);
  EXPECT_EQ(dag.predecessors(sink).size(), 100u);
}

}  // namespace
}  // namespace rbpeb
