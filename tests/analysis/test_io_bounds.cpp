#include "src/analysis/io_bounds.hpp"

#include <gtest/gtest.h>

#include "src/pebble/verifier.hpp"
#include "src/solvers/greedy.hpp"
#include "src/workloads/matmul.hpp"

namespace rbpeb {
namespace {

TEST(IoBounds, ShapesAreSane) {
  // Decreasing in R, increasing in problem size, never negative.
  EXPECT_GT(matmul_io_lower_bound(64, 8), matmul_io_lower_bound(64, 32));
  EXPECT_GT(matmul_io_lower_bound(96, 16), matmul_io_lower_bound(64, 16));
  EXPECT_GE(matmul_io_lower_bound(4, 1024), 0.0);

  EXPECT_GT(fft_io_lower_bound(4096, 4), fft_io_lower_bound(4096, 64));
  EXPECT_GT(fft_io_lower_bound(8192, 8), fft_io_lower_bound(4096, 8));
  EXPECT_GE(fft_io_lower_bound(2, 2), 0.0);

  EXPECT_GT(stencil1d_io_lower_bound(256, 256, 8),
            stencil1d_io_lower_bound(256, 256, 64));
  EXPECT_GE(stencil1d_io_lower_bound(4, 2, 64), 0.0);
}

TEST(IoBounds, MeasuredMatmulCostRespectsTheBound) {
  // With the conservative constants the measured greedy cost must sit above
  // the reference curve wherever the curve is non-trivial.
  for (std::size_t n : {6u, 8u}) {
    MatMulDag mm = make_matmul_dag(n);
    for (std::size_t r : {4u, 8u}) {
      double bound = matmul_io_lower_bound(n, r);
      if (bound <= 0.0) continue;
      Engine engine(mm.dag, Model::oneshot(), r);
      double measured =
          verify_or_throw(engine, solve_greedy(engine)).total.to_double();
      EXPECT_GE(measured, bound) << "n=" << n << " R=" << r;
    }
  }
}

}  // namespace
}  // namespace rbpeb
