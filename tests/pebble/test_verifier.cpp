#include "src/pebble/verifier.hpp"

#include <gtest/gtest.h>

#include "src/graph/dag_builder.hpp"
#include "src/support/check.hpp"

namespace rbpeb {
namespace {

Dag edge_dag() {
  DagBuilder b;
  b.add_nodes(2);
  b.add_edge(0, 1);
  return b.build();
}

TEST(Verifier, AcceptsValidCompletePebbling) {
  Dag dag = edge_dag();
  Engine engine(dag, Model::oneshot(), 2);
  Trace trace;
  trace.push_compute(0);
  trace.push_compute(1);
  VerifyResult vr = verify(engine, trace);
  EXPECT_TRUE(vr.legal);
  EXPECT_TRUE(vr.complete);
  EXPECT_TRUE(vr.ok());
  EXPECT_EQ(vr.total, Rational(0));
  EXPECT_EQ(vr.cost.computes, 2);
  EXPECT_EQ(vr.max_red, 2u);
  EXPECT_EQ(vr.length, 2u);
}

TEST(Verifier, ReportsFirstIllegalMove) {
  Dag dag = edge_dag();
  Engine engine(dag, Model::oneshot(), 2);
  Trace trace;
  trace.push_compute(0);
  trace.push_store(1);  // 1 holds no pebble
  trace.push_compute(1);
  VerifyResult vr = verify(engine, trace);
  EXPECT_FALSE(vr.legal);
  EXPECT_EQ(vr.failed_at, 1u);
  EXPECT_NE(vr.error.find("store"), std::string::npos);
  EXPECT_FALSE(vr.ok());
}

TEST(Verifier, LegalButIncomplete) {
  Dag dag = edge_dag();
  Engine engine(dag, Model::oneshot(), 2);
  Trace trace;
  trace.push_compute(0);
  VerifyResult vr = verify(engine, trace);
  EXPECT_TRUE(vr.legal);
  EXPECT_FALSE(vr.complete);
}

TEST(Verifier, CountsModelWeightedTotal) {
  Dag dag = edge_dag();
  Engine engine(dag, Model::compcost(1, 10), 2);
  Trace trace;
  trace.push_compute(0);
  trace.push_compute(1);
  trace.push_store(1);
  trace.push_load(1);
  VerifyResult vr = verify(engine, trace);
  ASSERT_TRUE(vr.ok());
  EXPECT_EQ(vr.total, Rational(2) + Rational(2, 10));
}

TEST(Verifier, VerifyOrThrowPropagatesFailures) {
  Dag dag = edge_dag();
  Engine engine(dag, Model::oneshot(), 2);
  Trace bad;
  bad.push_load(0);
  EXPECT_THROW(verify_or_throw(engine, bad), InvariantError);
  Trace incomplete;
  incomplete.push_compute(0);
  EXPECT_THROW(verify_or_throw(engine, incomplete), InvariantError);
  Trace good;
  good.push_compute(0);
  good.push_compute(1);
  EXPECT_NO_THROW(verify_or_throw(engine, good));
}

TEST(Verifier, MaxRedTracksPeak) {
  DagBuilder b;
  b.add_nodes(3);
  Dag dag = b.build();
  Engine engine(dag, Model::base(), 3);
  Trace trace;
  trace.push_compute(0);
  trace.push_compute(1);
  trace.push_store(0);
  trace.push_compute(2);
  VerifyResult vr = verify(engine, trace);
  ASSERT_TRUE(vr.ok());
  EXPECT_EQ(vr.max_red, 2u);
}

TEST(Trace, AppendAndRender) {
  Trace a, b;
  a.push_compute(0);
  b.push_store(0);
  a.append(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a[1], store(0));
  std::string s = a.str();
  EXPECT_NE(s.find("0: compute(0)"), std::string::npos);
  EXPECT_NE(s.find("1: store(0)"), std::string::npos);
}

TEST(Verifier, EmptyTraceOnSinklessGraphIsComplete) {
  DagBuilder b;
  Dag dag = b.build();
  Engine engine(dag, Model::base(), 0);
  VerifyResult vr = verify(engine, Trace{});
  EXPECT_TRUE(vr.ok());
}

}  // namespace
}  // namespace rbpeb
