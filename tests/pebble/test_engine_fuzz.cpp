// Randomized rule-engine fuzzing: walk long random sequences of *legal*
// moves and check that every documented invariant holds at every step, in
// every model. This guards the Engine against rule regressions that the
// construction-specific tests might not touch.
#include <gtest/gtest.h>

#include "src/pebble/engine.hpp"
#include "src/pebble/verifier.hpp"
#include "src/support/rng.hpp"
#include "src/workloads/random_layered.hpp"

namespace rbpeb {
namespace {

struct FuzzCase {
  std::size_t model_index;
  std::uint64_t seed;
};

class EngineFuzz : public ::testing::TestWithParam<FuzzCase> {};

INSTANTIATE_TEST_SUITE_P(
    Walks, EngineFuzz,
    ::testing::Values(FuzzCase{0, 1}, FuzzCase{0, 2}, FuzzCase{1, 1},
                      FuzzCase{1, 2}, FuzzCase{2, 1}, FuzzCase{2, 2},
                      FuzzCase{3, 1}, FuzzCase{3, 2}),
    [](const auto& info) {
      return std::string(all_models()[info.param.model_index].name()) +
             "_seed" + std::to_string(info.param.seed);
    });

TEST_P(EngineFuzz, RandomLegalWalkKeepsInvariants) {
  const Model& model = all_models()[GetParam().model_index];
  Rng rng(GetParam().seed);
  Dag dag = make_random_layered_dag({.layers = 4, .width = 5, .indegree = 2,
                                     .seed = GetParam().seed + 10});
  const std::size_t r = dag.max_indegree() + 2;
  Engine engine(dag, model, r);
  GameState state = engine.initial_state();
  Cost cost;
  Trace trace;

  const std::size_t walk_length = 400;
  for (std::size_t step = 0; step < walk_length; ++step) {
    // Enumerate all legal moves at this state.
    std::vector<Move> legal;
    for (std::size_t v = 0; v < dag.node_count(); ++v) {
      for (MoveType type : {MoveType::Load, MoveType::Store, MoveType::Compute,
                            MoveType::Delete}) {
        Move move{type, static_cast<NodeId>(v)};
        if (engine.is_legal(state, move)) legal.push_back(move);
      }
    }
    if (legal.empty()) break;  // possible in oneshot after deletions
    Move move = legal[rng.next_below(legal.size())];
    engine.apply(state, move, cost);
    trace.push(move);

    // Invariants after every step:
    EXPECT_LE(state.red_count(), r);
    std::size_t red = 0, blue = 0;
    for (std::size_t v = 0; v < dag.node_count(); ++v) {
      NodeId id = static_cast<NodeId>(v);
      if (state.is_red(id)) ++red;
      if (state.is_blue(id)) ++blue;
      // A pebbled node was computed at some point (pebbles only enter the
      // board via Step 3 under the default convention).
      if (!state.is_empty(id)) EXPECT_TRUE(state.was_computed(id));
      // Oneshot: a computed-and-empty node can never again hold a pebble —
      // verified implicitly by legality, spot-check the rule here:
      if (!model.allows_recompute() && state.was_computed(id) &&
          state.is_empty(id)) {
        EXPECT_FALSE(engine.is_legal(state, compute(id)));
        EXPECT_FALSE(engine.is_legal(state, load(id)));
      }
    }
    EXPECT_EQ(red, state.red_count());
    EXPECT_EQ(blue, state.blue_count());
    if (!model.allows_delete()) EXPECT_EQ(cost.deletes, 0);
  }

  // The replayed walk agrees with the incrementally accumulated cost.
  VerifyResult vr = verify(engine, trace);
  EXPECT_TRUE(vr.legal) << vr.error;
  EXPECT_EQ(vr.cost, cost);
  EXPECT_EQ(vr.total, model.total(cost));
}

}  // namespace
}  // namespace rbpeb
