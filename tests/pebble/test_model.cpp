// Table 1: the cost rules of the four model variants.
#include "src/pebble/model.hpp"

#include <gtest/gtest.h>

#include "src/support/check.hpp"

namespace rbpeb {
namespace {

TEST(Model, Table1RuleMatrix) {
  // base: everything allowed, transfers cost 1, the rest free.
  Model base = Model::base();
  EXPECT_TRUE(base.allows_delete());
  EXPECT_TRUE(base.allows_recompute());
  EXPECT_EQ(base.epsilon(), Rational(0));

  // oneshot: like base but each node computable once (engine-enforced).
  Model oneshot = Model::oneshot();
  EXPECT_TRUE(oneshot.allows_delete());
  EXPECT_FALSE(oneshot.allows_recompute());

  // nodel: Step 4 forbidden.
  Model nodel = Model::nodel();
  EXPECT_FALSE(nodel.allows_delete());
  EXPECT_TRUE(nodel.allows_recompute());

  // compcost: computation costs eps.
  Model compcost = Model::compcost();
  EXPECT_TRUE(compcost.allows_delete());
  EXPECT_TRUE(compcost.allows_recompute());
  EXPECT_EQ(compcost.epsilon(), Rational(1, 100));
}

TEST(Model, TotalWeighsOperations) {
  Cost cost{3, 4, 5, 6};  // 7 transfers, 5 computes
  EXPECT_EQ(Model::base().total(cost), Rational(7));
  EXPECT_EQ(Model::oneshot().total(cost), Rational(7));
  EXPECT_EQ(Model::nodel().total(cost), Rational(7));
  EXPECT_EQ(Model::compcost().total(cost), Rational(7) + Rational(5, 100));
  EXPECT_EQ(Model::compcost(1, 3).total(cost), Rational(7) + Rational(5, 3));
}

TEST(Model, CompcostEpsilonRange) {
  EXPECT_NO_THROW(Model::compcost(1, 2));
  EXPECT_THROW(Model::compcost(0, 1), PreconditionError);
  EXPECT_THROW(Model::compcost(1, 1), PreconditionError);
  EXPECT_THROW(Model::compcost(3, 2), PreconditionError);
}

TEST(Model, FromNameRoundTripsEveryModel) {
  for (const Model& m : all_models()) {
    std::optional<Model> parsed = Model::from_name(m.name());
    ASSERT_TRUE(parsed.has_value()) << m.name();
    EXPECT_EQ(parsed->kind(), m.kind());
    EXPECT_EQ(parsed->name(), m.name());
    EXPECT_EQ(parsed->epsilon(), m.epsilon());
  }
}

TEST(Model, FromNameRejectsUnknownNames) {
  EXPECT_FALSE(Model::from_name("").has_value());
  EXPECT_FALSE(Model::from_name("Base").has_value());
  EXPECT_FALSE(Model::from_name("one-shot").has_value());
  EXPECT_FALSE(Model::from_name("hong-kung").has_value());
}

TEST(Model, AllModelsOrderAndNames) {
  const auto& models = all_models();
  ASSERT_EQ(models.size(), 4u);
  EXPECT_EQ(models[0].name(), "base");
  EXPECT_EQ(models[1].name(), "oneshot");
  EXPECT_EQ(models[2].name(), "nodel");
  EXPECT_EQ(models[3].name(), "compcost");
}

}  // namespace
}  // namespace rbpeb
