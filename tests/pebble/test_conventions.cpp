// Appendix C: alternative starting/finishing conventions are essentially
// equivalent to the paper's own definitions.
#include <gtest/gtest.h>

#include "src/gadgets/transforms.hpp"
#include "src/graph/dag_builder.hpp"
#include "src/pebble/bounds.hpp"
#include "src/pebble/verifier.hpp"
#include "src/solvers/exact.hpp"
#include "src/solvers/greedy.hpp"
#include "src/workloads/random_layered.hpp"

namespace rbpeb {
namespace {

Dag edge_dag() {
  DagBuilder b;
  b.add_nodes(2);
  b.add_edge(0, 1);
  return b.build();
}

TEST(Conventions, BlueStartSourcesAreNotComputable) {
  Dag dag = edge_dag();
  Engine engine(dag, Model::oneshot(), 2,
                PebblingConvention{.sources_start_blue = true});
  GameState state = engine.initial_state();
  EXPECT_TRUE(state.is_blue(0));
  EXPECT_FALSE(engine.is_legal(state, compute(0)));
  EXPECT_TRUE(engine.is_legal(state, load(0)));
  Cost cost;
  engine.apply(state, load(0), cost);
  EXPECT_TRUE(engine.is_legal(state, compute(1)));
}

TEST(Conventions, BlueStartAddsOneTransferPerUsedSource) {
  Dag dag = edge_dag();
  Engine free_sources(dag, Model::oneshot(), 2);
  Engine blue_sources(dag, Model::oneshot(), 2,
                      PebblingConvention{.sources_start_blue = true});
  Rational a = solve_exact(free_sources).cost;
  Rational b = solve_exact(blue_sources).cost;
  EXPECT_EQ(a, Rational(0));
  EXPECT_EQ(b, Rational(1));  // one load of the pre-placed input
}

TEST(Conventions, BlueSinksRequireExplicitStores) {
  Dag dag = edge_dag();
  Engine engine(dag, Model::oneshot(), 2,
                PebblingConvention{.sinks_end_blue = true});
  Trace red_finish;
  red_finish.push_compute(0);
  red_finish.push_compute(1);
  VerifyResult vr = verify(engine, red_finish);
  EXPECT_TRUE(vr.legal);
  EXPECT_FALSE(vr.complete);  // sink is red, must be blue
  Trace blue_finish = red_finish;
  blue_finish.push_store(1);
  EXPECT_TRUE(verify(engine, blue_finish).ok());
}

TEST(Conventions, BlueSinkOptimumWithinOnePerSink) {
  // Appendix C: requiring blue sinks changes the optimum by at most one
  // transfer per sink.
  Dag dag = make_random_layered_dag({.layers = 3, .width = 3, .indegree = 2,
                                     .seed = 4});
  for (const Model& model : all_models()) {
    std::size_t r = min_red_pebbles(dag);
    Engine plain(dag, model, r);
    Engine blue(dag, model, r, PebblingConvention{.sinks_end_blue = true});
    Rational a = solve_exact(plain).cost;
    Rational b = solve_exact(blue).cost;
    EXPECT_LE(a, b) << model.name();
    EXPECT_LE(b, a + Rational(static_cast<std::int64_t>(dag.sinks().size())))
        << model.name();
  }
}

TEST(Conventions, FinishSinksBlueTransformBridgesTheConventions) {
  // A pebbling finished under the default convention, passed through
  // finish_sinks_blue, verifies under the strict convention.
  Dag dag = make_random_layered_dag({.layers = 4, .width = 4, .indegree = 2,
                                     .seed = 6});
  Engine plain(dag, Model::oneshot(), min_red_pebbles(dag) + 1);
  Trace trace = finish_sinks_blue(plain, solve_greedy(plain));
  Engine strict(dag, Model::oneshot(), min_red_pebbles(dag) + 1,
                PebblingConvention{.sinks_end_blue = true});
  EXPECT_TRUE(verify(strict, trace).ok());
}

TEST(Conventions, UniversalSourceBridgesBlueStart) {
  // Section 3 / Appendix C: with a single universal source, the blue-start
  // convention costs exactly one extra load over the free-source convention.
  Dag dag = make_random_layered_dag({.layers = 3, .width = 3, .indegree = 2,
                                     .seed = 9});
  SingleSourceDag tr = add_universal_source(dag);
  std::size_t r = min_red_pebbles(tr.dag);
  Engine free_engine(tr.dag, Model::oneshot(), r);
  Engine blue_engine(tr.dag, Model::oneshot(), r,
                     PebblingConvention{.sources_start_blue = true});
  Rational a = solve_exact(free_engine).cost;
  Rational b = solve_exact(blue_engine).cost;
  EXPECT_EQ(b, a + Rational(1));
}

TEST(Conventions, BlueStartOneshotDeleteIsIrrevocable) {
  Dag dag = edge_dag();
  Engine engine(dag, Model::oneshot(), 2,
                PebblingConvention{.sources_start_blue = true});
  GameState state = engine.initial_state();
  Cost cost;
  engine.apply(state, erase(0), cost);  // discard the input
  EXPECT_FALSE(engine.is_legal(state, compute(0)));
  EXPECT_FALSE(engine.is_legal(state, load(0)));
}

}  // namespace
}  // namespace rbpeb
