#include "src/pebble/trace_io.hpp"

#include <gtest/gtest.h>

#include "src/graph/dag_builder.hpp"
#include "src/pebble/bounds.hpp"
#include "src/pebble/verifier.hpp"
#include "src/solvers/greedy.hpp"
#include "src/support/check.hpp"
#include "src/workloads/fft.hpp"

namespace rbpeb {
namespace {

TEST(TraceIo, RoundTrip) {
  Dag dag = make_fft_dag(8).dag;
  Engine engine(dag, Model::oneshot(), 4);
  Trace trace = solve_greedy(engine);
  Trace back = trace_from_text(trace_to_text(trace));
  EXPECT_EQ(trace.moves(), back.moves());
  // The deserialized trace verifies identically.
  EXPECT_EQ(verify(engine, back).total, verify(engine, trace).total);
}

TEST(TraceIo, CommentsAndBlanksIgnored) {
  Trace trace = trace_from_text(
      "# a schedule\n"
      "compute 0\n"
      "\n"
      "store 0   # spill\n"
      "load 0\n"
      "delete 0\n");
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace[0], compute(0));
  EXPECT_EQ(trace[1], store(0));
  EXPECT_EQ(trace[2], load(0));
  EXPECT_EQ(trace[3], erase(0));
}

TEST(TraceIo, RejectsMalformedInput) {
  EXPECT_THROW(trace_from_text("jump 3\n"), PreconditionError);
  EXPECT_THROW(trace_from_text("compute\n"), PreconditionError);
  EXPECT_THROW(trace_from_text("compute 1 2\n"), PreconditionError);
}

TEST(TraceIo, EmptyTextIsEmptyTrace) {
  EXPECT_EQ(trace_from_text("").size(), 0u);
  EXPECT_EQ(trace_from_text("# only comments\n\n").size(), 0u);
}

}  // namespace
}  // namespace rbpeb
