// Game-rule legality per model variant (paper, Sections 1 and 4).
#include "src/pebble/engine.hpp"

#include <gtest/gtest.h>

#include "src/graph/dag_builder.hpp"
#include "src/support/check.hpp"

namespace rbpeb {
namespace {

Dag edge_dag() {  // 0 -> 1
  DagBuilder b;
  b.add_nodes(2);
  b.add_edge(0, 1);
  return b.build();
}

class EngineAllModels : public ::testing::TestWithParam<std::size_t> {
 protected:
  const Model& model() const { return all_models()[GetParam()]; }
};

INSTANTIATE_TEST_SUITE_P(Models, EngineAllModels, ::testing::Range<std::size_t>(0, 4),
                         [](const auto& info) {
                           return std::string(all_models()[info.param].name());
                         });

TEST_P(EngineAllModels, ComputeSourceFromEmptyState) {
  Dag dag = edge_dag();
  Engine engine(dag, model(), 2);
  GameState state = engine.initial_state();
  EXPECT_TRUE(engine.is_legal(state, compute(0)));
  Cost cost;
  engine.apply(state, compute(0), cost);
  EXPECT_TRUE(state.is_red(0));
  EXPECT_TRUE(state.was_computed(0));
  EXPECT_EQ(cost.computes, 1);
  EXPECT_EQ(cost.transfers(), 0);
}

TEST_P(EngineAllModels, ComputeRequiresRedInputs) {
  Dag dag = edge_dag();
  Engine engine(dag, model(), 2);
  GameState state = engine.initial_state();
  EXPECT_FALSE(engine.is_legal(state, compute(1)));
  Cost cost;
  engine.apply(state, compute(0), cost);
  EXPECT_TRUE(engine.is_legal(state, compute(1)));
  engine.apply(state, store(0), cost);  // input now blue
  EXPECT_FALSE(engine.is_legal(state, compute(1)));
}

TEST_P(EngineAllModels, RedBudgetEnforced) {
  DagBuilder b;
  b.add_nodes(3);  // three independent sources
  Dag dag = b.build();
  Engine engine(dag, model(), 2);
  GameState state = engine.initial_state();
  Cost cost;
  engine.apply(state, compute(0), cost);
  engine.apply(state, compute(1), cost);
  EXPECT_FALSE(engine.is_legal(state, compute(2)));
  engine.apply(state, store(0), cost);
  EXPECT_TRUE(engine.is_legal(state, compute(2)));
  // Load also respects the budget.
  engine.apply(state, compute(2), cost);
  EXPECT_FALSE(engine.is_legal(state, load(0)));
}

TEST_P(EngineAllModels, StoreNeedsRedLoadNeedsBlue) {
  Dag dag = edge_dag();
  Engine engine(dag, model(), 2);
  GameState state = engine.initial_state();
  EXPECT_FALSE(engine.is_legal(state, store(0)));
  EXPECT_FALSE(engine.is_legal(state, load(0)));
  Cost cost;
  engine.apply(state, compute(0), cost);
  EXPECT_FALSE(engine.is_legal(state, load(0)));  // red, not blue
  engine.apply(state, store(0), cost);
  EXPECT_TRUE(state.is_blue(0));
  EXPECT_FALSE(engine.is_legal(state, store(0)));
  EXPECT_TRUE(engine.is_legal(state, load(0)));
  engine.apply(state, load(0), cost);
  EXPECT_TRUE(state.is_red(0));
  EXPECT_EQ(cost.loads, 1);
  EXPECT_EQ(cost.stores, 1);
}

TEST_P(EngineAllModels, ComputeOnRedNodeRejected) {
  Dag dag = edge_dag();
  Engine engine(dag, model(), 2);
  GameState state = engine.initial_state();
  Cost cost;
  engine.apply(state, compute(0), cost);
  EXPECT_FALSE(engine.is_legal(state, compute(0)));
}

TEST_P(EngineAllModels, ApplyIllegalMoveThrows) {
  Dag dag = edge_dag();
  Engine engine(dag, model(), 2);
  GameState state = engine.initial_state();
  Cost cost;
  EXPECT_THROW(engine.apply(state, store(0), cost), PreconditionError);
}

TEST_P(EngineAllModels, CompletionRequiresPebbledSinks) {
  Dag dag = edge_dag();
  Engine engine(dag, model(), 2);
  GameState state = engine.initial_state();
  Cost cost;
  EXPECT_FALSE(engine.is_complete(state));
  engine.apply(state, compute(0), cost);
  EXPECT_FALSE(engine.is_complete(state));  // 1 is the only sink
  engine.apply(state, compute(1), cost);
  EXPECT_TRUE(engine.is_complete(state));
  engine.apply(state, store(1), cost);  // blue pebble also counts
  EXPECT_TRUE(engine.is_complete(state));
}

TEST_P(EngineAllModels, MinimumBudgetEnforcedAtConstruction) {
  Dag dag = edge_dag();  // Δ = 1 -> R >= 2
  EXPECT_THROW(Engine(dag, model(), 1), PreconditionError);
  EXPECT_NO_THROW(Engine(dag, model(), 2));
}

// --- model-specific rules ---

TEST(EngineOneshot, SecondComputeRejected) {
  Dag dag = edge_dag();
  Engine engine(dag, Model::oneshot(), 2);
  GameState state = engine.initial_state();
  Cost cost;
  engine.apply(state, compute(0), cost);
  engine.apply(state, erase(0), cost);
  EXPECT_FALSE(engine.is_legal(state, compute(0)));
}

TEST(EngineBase, RecomputeAfterDeleteAllowed) {
  Dag dag = edge_dag();
  Engine engine(dag, Model::base(), 2);
  GameState state = engine.initial_state();
  Cost cost;
  engine.apply(state, compute(0), cost);
  engine.apply(state, erase(0), cost);
  EXPECT_TRUE(engine.is_legal(state, compute(0)));
}

TEST(EngineNodel, DeleteForbidden) {
  Dag dag = edge_dag();
  Engine engine(dag, Model::nodel(), 2);
  GameState state = engine.initial_state();
  Cost cost;
  engine.apply(state, compute(0), cost);
  EXPECT_FALSE(engine.is_legal(state, erase(0)));
}

TEST(EngineNodel, RecomputeReplacesBluePebble) {
  Dag dag = edge_dag();
  Engine engine(dag, Model::nodel(), 2);
  GameState state = engine.initial_state();
  Cost cost;
  engine.apply(state, compute(0), cost);
  engine.apply(state, store(0), cost);
  ASSERT_TRUE(state.is_blue(0));
  ASSERT_TRUE(engine.is_legal(state, compute(0)));
  engine.apply(state, compute(0), cost);
  EXPECT_TRUE(state.is_red(0));
  EXPECT_EQ(state.blue_count(), 0u);
  EXPECT_EQ(cost.computes, 2);
}

TEST(EngineDelete, RequiresAnyPebble) {
  Dag dag = edge_dag();
  Engine engine(dag, Model::base(), 2);
  GameState state = engine.initial_state();
  Cost cost;
  EXPECT_FALSE(engine.is_legal(state, erase(0)));
  engine.apply(state, compute(0), cost);
  engine.apply(state, store(0), cost);
  EXPECT_TRUE(engine.is_legal(state, erase(0)));  // blue pebbles deletable
  engine.apply(state, erase(0), cost);
  EXPECT_TRUE(state.is_empty(0));
  EXPECT_EQ(cost.deletes, 1);
}

TEST(EngineState, RedNodesAndCounters) {
  DagBuilder b;
  b.add_nodes(3);
  Dag dag = b.build();
  Engine engine(dag, Model::base(), 3);
  GameState state = engine.initial_state();
  Cost cost;
  engine.apply(state, compute(0), cost);
  engine.apply(state, compute(2), cost);
  engine.apply(state, store(2), cost);
  EXPECT_EQ(state.red_count(), 1u);
  EXPECT_EQ(state.blue_count(), 1u);
  EXPECT_EQ(state.red_nodes(), std::vector<NodeId>({0}));
}

TEST(EngineMoves, ToStringRendering) {
  EXPECT_EQ(to_string(load(7)), "load(7)");
  EXPECT_EQ(to_string(store(1)), "store(1)");
  EXPECT_EQ(to_string(compute(0)), "compute(0)");
  EXPECT_EQ(to_string(erase(9)), "delete(9)");
}

}  // namespace
}  // namespace rbpeb
