// Section 3 / Lemma 1 bounds as executable checks.
#include "src/pebble/bounds.hpp"

#include <gtest/gtest.h>

#include "src/graph/dag_builder.hpp"
#include "src/pebble/verifier.hpp"
#include "src/solvers/topo_baseline.hpp"
#include "src/workloads/random_layered.hpp"

namespace rbpeb {
namespace {

TEST(Bounds, MinRedPebbles) {
  DagBuilder b;
  b.add_nodes(4);
  b.add_edge(0, 3);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  EXPECT_EQ(min_red_pebbles(b.build()), 4u);  // Δ+1 = 4

  DagBuilder empty;
  EXPECT_EQ(min_red_pebbles(empty.build()), 0u);

  DagBuilder edgeless;
  edgeless.add_nodes(3);
  EXPECT_EQ(min_red_pebbles(edgeless.build()), 1u);
}

TEST(Bounds, UniversalUpperBoundForms) {
  Dag dag = make_random_layered_dag({.layers = 3, .width = 4, .indegree = 2,
                                     .seed = 2});
  std::int64_t n = static_cast<std::int64_t>(dag.node_count());
  std::int64_t delta = static_cast<std::int64_t>(dag.max_indegree());
  EXPECT_EQ(universal_cost_upper_bound(dag, Model::oneshot()),
            Rational((2 * delta + 1) * n));
  EXPECT_EQ(universal_cost_upper_bound(dag, Model::compcost()),
            Rational((2 * delta + 1) * n) + Rational(n, 100));
}

TEST(Bounds, LowerBoundsPerModel) {
  Dag dag = make_random_layered_dag({.layers = 4, .width = 5, .indegree = 2,
                                     .seed = 3});
  std::int64_t n = static_cast<std::int64_t>(dag.node_count());
  std::int64_t sources = static_cast<std::int64_t>(dag.sources().size());
  EXPECT_EQ(cost_lower_bound(dag, Model::base(), 3), Rational(0));
  EXPECT_EQ(cost_lower_bound(dag, Model::oneshot(), 3), Rational(0));
  EXPECT_EQ(cost_lower_bound(dag, Model::nodel(), 3), Rational(n - 3));
  EXPECT_EQ(cost_lower_bound(dag, Model::compcost(), 3),
            Rational(n - sources, 100));
  // nodel bound clamps at zero when R >= n.
  EXPECT_EQ(cost_lower_bound(dag, Model::nodel(), dag.node_count() + 5),
            Rational(0));
}

class BoundsHoldOnRandomDags
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, BoundsHoldOnRandomDags,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3),
                       ::testing::Values<std::size_t>(0, 2, 5)));

// Property: the topo-order baseline respects the universal cost bound and
// the Lemma 1 length bound in every model, for any budget >= Δ+1.
TEST_P(BoundsHoldOnRandomDags, BaselineWithinUniversalBounds) {
  auto [seed, extra_r] = GetParam();
  Dag dag = make_random_layered_dag({.layers = 5, .width = 6, .indegree = 3,
                                     .seed = seed});
  std::size_t r = min_red_pebbles(dag) + extra_r;
  for (const Model& model : all_models()) {
    Engine engine(dag, model, r);
    Trace trace = solve_topo_baseline(engine);
    VerifyResult vr = verify(engine, trace);
    ASSERT_TRUE(vr.ok()) << model.name() << ": " << vr.error;
    EXPECT_LE(vr.total, universal_cost_upper_bound(dag, model))
        << model.name();
    EXPECT_GE(vr.total, cost_lower_bound(dag, model, r)) << model.name();
    std::size_t length_bound = optimal_length_upper_bound(dag, model);
    EXPECT_LE(trace.size(), length_bound) << model.name();
  }
}

TEST(Bounds, BaseModelHasNoLengthBound) {
  DagBuilder b;
  b.add_nodes(2);
  b.add_edge(0, 1);
  Dag dag = b.build();
  EXPECT_EQ(optimal_length_upper_bound(dag, Model::base()),
            std::numeric_limits<std::size_t>::max());
  EXPECT_LT(optimal_length_upper_bound(dag, Model::oneshot()),
            std::numeric_limits<std::size_t>::max());
}

}  // namespace
}  // namespace rbpeb
