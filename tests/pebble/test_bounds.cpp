// Section 3 / Lemma 1 bounds as executable checks.
#include "src/pebble/bounds.hpp"

#include <gtest/gtest.h>

#include "src/graph/dag_builder.hpp"
#include "src/pebble/verifier.hpp"
#include "src/solvers/exact.hpp"
#include "src/solvers/topo_baseline.hpp"
#include "src/support/rng.hpp"
#include "src/workloads/random_layered.hpp"

namespace rbpeb {
namespace {

TEST(Bounds, MinRedPebbles) {
  DagBuilder b;
  b.add_nodes(4);
  b.add_edge(0, 3);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  EXPECT_EQ(min_red_pebbles(b.build()), 4u);  // Δ+1 = 4

  DagBuilder empty;
  EXPECT_EQ(min_red_pebbles(empty.build()), 0u);

  DagBuilder edgeless;
  edgeless.add_nodes(3);
  EXPECT_EQ(min_red_pebbles(edgeless.build()), 1u);
}

TEST(Bounds, UniversalUpperBoundForms) {
  Dag dag = make_random_layered_dag({.layers = 3, .width = 4, .indegree = 2,
                                     .seed = 2});
  std::int64_t n = static_cast<std::int64_t>(dag.node_count());
  std::int64_t delta = static_cast<std::int64_t>(dag.max_indegree());
  EXPECT_EQ(universal_cost_upper_bound(dag, Model::oneshot()),
            Rational((2 * delta + 1) * n));
  EXPECT_EQ(universal_cost_upper_bound(dag, Model::compcost()),
            Rational((2 * delta + 1) * n) + Rational(n, 100));
}

TEST(Bounds, LowerBoundsPerModel) {
  Dag dag = make_random_layered_dag({.layers = 4, .width = 5, .indegree = 2,
                                     .seed = 3});
  std::int64_t n = static_cast<std::int64_t>(dag.node_count());
  std::int64_t sources = static_cast<std::int64_t>(dag.sources().size());
  EXPECT_EQ(cost_lower_bound(dag, Model::base(), 3), Rational(0));
  EXPECT_EQ(cost_lower_bound(dag, Model::oneshot(), 3), Rational(0));
  EXPECT_EQ(cost_lower_bound(dag, Model::nodel(), 3), Rational(n - 3));
  EXPECT_EQ(cost_lower_bound(dag, Model::compcost(), 3),
            Rational(n - sources, 100));
  // nodel bound clamps at zero when R >= n.
  EXPECT_EQ(cost_lower_bound(dag, Model::nodel(), dag.node_count() + 5),
            Rational(0));
}

class BoundsHoldOnRandomDags
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, BoundsHoldOnRandomDags,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3),
                       ::testing::Values<std::size_t>(0, 2, 5)));

// Property: the topo-order baseline respects the universal cost bound and
// the Lemma 1 length bound in every model, for any budget >= Δ+1.
TEST_P(BoundsHoldOnRandomDags, BaselineWithinUniversalBounds) {
  auto [seed, extra_r] = GetParam();
  Dag dag = make_random_layered_dag({.layers = 5, .width = 6, .indegree = 3,
                                     .seed = seed});
  std::size_t r = min_red_pebbles(dag) + extra_r;
  for (const Model& model : all_models()) {
    Engine engine(dag, model, r);
    Trace trace = solve_topo_baseline(engine);
    VerifyResult vr = verify(engine, trace);
    ASSERT_TRUE(vr.ok()) << model.name() << ": " << vr.error;
    EXPECT_LE(vr.total, universal_cost_upper_bound(dag, model))
        << model.name();
    EXPECT_GE(vr.total, cost_lower_bound(dag, model, r)) << model.name();
    std::size_t length_bound = optimal_length_upper_bound(dag, model);
    EXPECT_LE(trace.size(), length_bound) << model.name();
  }
}

// ---- per-state bounds (the exact-astar heuristic) ------------------------

// The defining property of an admissible heuristic: along an *optimal*
// trace, the bound at every intermediate state never exceeds the true
// remaining cost (total optimum minus cost already paid).
TEST(StateBounds, AdmissibleAlongOptimalTraces) {
  Dag dag = make_random_layered_dag({.layers = 3, .width = 3, .indegree = 2,
                                     .seed = 4});
  for (const Model& model : all_models()) {
    const std::size_t r = min_red_pebbles(dag);
    Engine engine(dag, model, r);
    ExactResult optimal = solve_exact(engine);
    GameState state = engine.initial_state();
    Cost paid;
    for (const Move& move : optimal.trace) {
      std::optional<Rational> bound = state_cost_lower_bound(engine, state);
      ASSERT_TRUE(bound.has_value()) << model.name();
      EXPECT_LE(*bound, optimal.cost - model.total(paid)) << model.name();
      engine.apply(state, move, paid);
    }
    EXPECT_EQ(state_cost_lower_bound(engine, state), Rational(0))
        << model.name() << ": nonzero bound at a complete state";
  }
}

// At the empty start the per-state bound dominates the whole-instance bound
// of cost_lower_bound (it sees the same counting arguments and more).
TEST(StateBounds, AtLeastTheGlobalLowerBoundAtTheStart) {
  Dag dag = make_random_layered_dag({.layers = 4, .width = 4, .indegree = 2,
                                     .seed = 7});
  for (const Model& model : all_models()) {
    const std::size_t r = min_red_pebbles(dag);
    Engine engine(dag, model, r);
    std::optional<Rational> bound =
        state_cost_lower_bound(engine, engine.initial_state());
    ASSERT_TRUE(bound.has_value()) << model.name();
    EXPECT_GE(*bound, cost_lower_bound(dag, model, r)) << model.name();
  }
}

// Oneshot dead ends are detected: compute a needed value, delete it, and no
// completion exists any more — the evaluator reports infeasibility.
TEST(StateBounds, DetectsValuesLostForeverInOneshot) {
  DagBuilder b;
  b.add_nodes(2);
  b.add_edge(0, 1);
  Dag dag = b.build();
  Engine engine(dag, Model::oneshot(), 2);
  GameState state = engine.initial_state();
  Cost cost;
  engine.apply(state, compute(0), cost);
  engine.apply(state, erase(0), cost);
  EXPECT_EQ(state_cost_lower_bound(engine, state), std::nullopt);
  // The same configuration is perfectly recoverable in the base model.
  Engine base_engine(dag, Model::base(), 2);
  EXPECT_TRUE(state_cost_lower_bound(base_engine, state).has_value());
}

// An empty Hong–Kung source is unloadable and uncomputable.
TEST(StateBounds, DetectsDeletedBlueSourcesUnderHongKung) {
  DagBuilder b;
  b.add_nodes(2);
  b.add_edge(0, 1);
  Dag dag = b.build();
  Engine engine(dag, Model::base(), 2,
                PebblingConvention{.sources_start_blue = true});
  GameState state = engine.initial_state();
  Cost cost;
  engine.apply(state, erase(0), cost);
  EXPECT_EQ(state_cost_lower_bound(engine, state), std::nullopt);
}

TEST(StateBounds, CountsBlueInputLoadsOwedUnderHongKung) {
  // Two blue sources feeding one sink: each must be loaded (sources are not
  // computable under the convention), and the sink computed.
  DagBuilder b;
  b.add_nodes(3);
  b.add_edge(0, 2);
  b.add_edge(1, 2);
  Dag dag = b.build();
  Engine engine(dag, Model::compcost(), 3,
                PebblingConvention{.sources_start_blue = true});
  std::optional<Rational> bound =
      state_cost_lower_bound(engine, engine.initial_state());
  ASSERT_TRUE(bound.has_value());
  EXPECT_EQ(*bound, Rational(2) + Rational(1, 100));
}

// The memoized mask path (cached per-node cones composed per state) must
// price every reachable configuration exactly like the original walk it
// replaced — dead-state verdicts included. Random walks visit states with
// arbitrary pebble mixtures, where the cone-jump shortcut can and cannot
// fire.
TEST(StateBounds, MaskCompositionMatchesTheGenericWalk) {
  Dag dag = make_random_layered_dag({.layers = 4, .width = 4, .indegree = 2,
                                     .seed = 13});
  for (const Model& model : all_models()) {
    for (bool sources_blue : {false, true}) {
      for (bool sinks_blue : {false, true}) {
        Engine engine(dag, model, min_red_pebbles(dag),
                      PebblingConvention{.sources_start_blue = sources_blue,
                                         .sinks_end_blue = sinks_blue});
        StateBoundEvaluator evaluator(engine);
        Rng rng(17);
        GameState state = engine.initial_state();
        Cost cost;
        for (int step = 0; step < 150; ++step) {
          const auto masks = StateBoundEvaluator::StateMasks::from(
              state, dag.node_count());
          EXPECT_EQ(evaluator.lower_bound_scaled(masks),
                    evaluator.lower_bound_generic(state))
              << model.name() << " step " << step;
          std::vector<Move> legal;
          for (std::size_t v = 0; v < dag.node_count(); ++v) {
            for (MoveType type : {MoveType::Load, MoveType::Store,
                                  MoveType::Compute, MoveType::Delete}) {
              Move move{type, static_cast<NodeId>(v)};
              if (engine.is_legal(state, move)) legal.push_back(move);
            }
          }
          if (legal.empty()) break;
          engine.apply(state, legal[rng.next_below(legal.size())], cost);
        }
      }
    }
  }
}

// The two-word wide-mask path (65–128-node DAGs, and the variable-width
// searches at any size) must price exactly like the generic walk too —
// including states whose closure spans both words — and, on DAGs the
// one-word path also covers, like the one-word path.
TEST(StateBounds, WideMaskCompositionMatchesTheGenericWalk) {
  Dag big = make_random_layered_dag({.layers = 20, .width = 4, .indegree = 2,
                                     .seed = 21});  // 80 nodes: wide only
  ASSERT_GT(big.node_count(), StateBoundEvaluator::kMaskMaxNodes);
  ASSERT_LE(big.node_count(), StateBoundEvaluator::kWideMaskMaxNodes);
  Dag small = make_random_layered_dag({.layers = 4, .width = 4, .indegree = 2,
                                       .seed = 13});  // 16 nodes: both paths
  for (const Dag* dag : {&big, &small}) {
    const std::size_t n = dag->node_count();
    for (const Model& model : all_models()) {
      for (bool sources_blue : {false, true}) {
        for (bool sinks_blue : {false, true}) {
          Engine engine(*dag, model, min_red_pebbles(*dag),
                        PebblingConvention{.sources_start_blue = sources_blue,
                                           .sinks_end_blue = sinks_blue});
          StateBoundEvaluator evaluator(engine);
          Rng rng(19);
          GameState state = engine.initial_state();
          auto wide = StateBoundEvaluator::WideStateMasks::from(state, n);
          Cost cost;
          for (int step = 0; step < 100; ++step) {
            // The incrementally applied masks must equal a fresh re-encode.
            const auto fresh =
                StateBoundEvaluator::WideStateMasks::from(state, n);
            ASSERT_EQ(wide.red, fresh.red) << step;
            ASSERT_EQ(wide.blue, fresh.blue) << step;
            ASSERT_EQ(wide.computed, fresh.computed) << step;
            EXPECT_EQ(evaluator.lower_bound_scaled(wide),
                      evaluator.lower_bound_generic(state))
                << model.name() << " n=" << n << " step " << step;
            if (n <= StateBoundEvaluator::kMaskMaxNodes) {
              const auto narrow =
                  StateBoundEvaluator::StateMasks::from(state, n);
              EXPECT_EQ(evaluator.lower_bound_scaled(wide),
                        evaluator.lower_bound_scaled(narrow))
                  << model.name() << " step " << step;
            }
            std::vector<Move> legal;
            for (std::size_t v = 0; v < n; ++v) {
              for (MoveType type : {MoveType::Load, MoveType::Store,
                                    MoveType::Compute, MoveType::Delete}) {
                Move move{type, static_cast<NodeId>(v)};
                if (engine.is_legal(state, move)) legal.push_back(move);
              }
            }
            if (legal.empty()) break;
            const Move move = legal[rng.next_below(legal.size())];
            engine.apply(state, move, cost);
            wide.apply(move);
          }
        }
      }
    }
  }
}

TEST(Bounds, BaseModelHasNoLengthBound) {
  DagBuilder b;
  b.add_nodes(2);
  b.add_edge(0, 1);
  Dag dag = b.build();
  EXPECT_EQ(optimal_length_upper_bound(dag, Model::base()),
            std::numeric_limits<std::size_t>::max());
  EXPECT_LT(optimal_length_upper_bound(dag, Model::oneshot()),
            std::numeric_limits<std::size_t>::max());
}

}  // namespace
}  // namespace rbpeb
