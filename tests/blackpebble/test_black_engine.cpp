// The standard (black) pebble game companion model.
#include "src/blackpebble/black_engine.hpp"

#include <gtest/gtest.h>

#include "src/graph/dag_builder.hpp"
#include "src/support/check.hpp"
#include "src/workloads/pyramid.hpp"
#include "src/workloads/tree_reduction.hpp"

namespace rbpeb {
namespace {

Dag chain(std::size_t n) {
  DagBuilder b;
  b.add_nodes(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

TEST(BlackEngine, PlacementRules) {
  Dag dag = chain(3);
  BlackEngine engine(dag, 2);
  BlackState state(dag.node_count());
  EXPECT_FALSE(engine.is_legal(state, black_place(1)));  // pred unpebbled
  engine.apply(state, black_place(0));
  EXPECT_TRUE(engine.is_legal(state, black_place(1)));
  engine.apply(state, black_place(1));
  EXPECT_FALSE(engine.is_legal(state, black_place(2)));  // budget (2) full
  engine.apply(state, black_remove(0));
  EXPECT_TRUE(engine.is_legal(state, black_place(2)));
  EXPECT_FALSE(engine.is_legal(state, black_place(1)));  // already pebbled
  EXPECT_FALSE(engine.is_legal(state, black_remove(0)));
  EXPECT_THROW(engine.apply(state, black_remove(0)), PreconditionError);
}

TEST(BlackVerify, AuditsPeakAndCompleteness) {
  Dag dag = chain(3);
  BlackEngine engine(dag, 2);
  std::vector<BlackMove> moves = {black_place(0), black_place(1),
                                  black_remove(0), black_place(2)};
  BlackVerifyResult vr = black_verify(engine, moves);
  EXPECT_TRUE(vr.ok()) << vr.error;
  EXPECT_EQ(vr.peak_pebbles, 2u);

  // Dropping the last placement leaves the sink unpebbled.
  moves.pop_back();
  EXPECT_FALSE(black_verify(engine, moves).complete);
}

TEST(BlackPebbling, ChainNeedsTwoPebbles) {
  Dag dag = chain(6);
  EXPECT_FALSE(black_pebblable_with(dag, 1));
  std::vector<BlackMove> witness;
  ASSERT_TRUE(black_pebblable_with(dag, 2, &witness));
  BlackEngine engine(dag, 2);
  EXPECT_TRUE(black_verify(engine, witness).ok());
  EXPECT_EQ(black_pebbling_number(dag), 2u);
}

TEST(BlackPebbling, PyramidNumbersMatchClassicResult) {
  // An r-base pyramid needs exactly r+1 pebbles — the classical fact the
  // paper's Section 3 alludes to when comparing gadget cost cliffs.
  for (std::size_t r : {2u, 3u, 4u}) {
    Dag dag = make_pyramid_dag(r).dag;
    EXPECT_EQ(black_pebbling_number(dag), r + 1) << "r=" << r;
    EXPECT_FALSE(black_pebblable_with(dag, r));
  }
}

TEST(BlackPebbling, BalancedTreeNeedsHeightPlusTwo) {
  // A binary reduction in-tree over 2^h leaves needs exactly h+2 pebbles:
  // while the second subtree result is being derived, the first result and
  // the in-flight chain occupy h+1 pebbles at the deepest moment.
  EXPECT_EQ(black_pebbling_number(make_tree_reduction_dag(4).dag), 4u);
  EXPECT_EQ(black_pebbling_number(make_tree_reduction_dag(8).dag), 5u);
}

TEST(BlackPebbling, WitnessRespectsTheBudget) {
  Dag dag = make_pyramid_dag(3).dag;
  std::vector<BlackMove> witness;
  ASSERT_TRUE(black_pebblable_with(dag, 4, &witness));
  BlackEngine engine(dag, 4);
  BlackVerifyResult vr = black_verify(engine, witness);
  EXPECT_TRUE(vr.ok()) << vr.error;
  EXPECT_LE(vr.peak_pebbles, 4u);
}

TEST(BlackPebbling, EdgelessAndEmptyDags) {
  DagBuilder empty;
  EXPECT_EQ(black_pebbling_number(empty.build()), 0u);
  DagBuilder b;
  b.add_nodes(3);
  Dag dag = b.build();
  // Three independent sinks; one pebble can visit them one at a time.
  EXPECT_EQ(black_pebbling_number(dag), 1u);
}

TEST(BlackPebbling, PebblingNumberAtLeastRedBlueMinimum) {
  // Black pebbling needs at least Δ+1 — the same floor as red-blue R.
  Dag dag = make_pyramid_dag(4).dag;
  EXPECT_GE(black_pebbling_number(dag), dag.max_indegree() + 1);
}

TEST(BlackPebbling, RejectsOversizedDag) {
  DagBuilder b;
  b.add_nodes(21);
  Dag dag = b.build();
  EXPECT_THROW(black_pebblable_with(dag, 3), PreconditionError);
}

}  // namespace
}  // namespace rbpeb
