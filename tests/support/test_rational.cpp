#include <gtest/gtest.h>

#include "src/pebble/cost.hpp"
#include "src/support/check.hpp"

namespace rbpeb {
namespace {

TEST(Rational, NormalizesOnConstruction) {
  Rational r(6, 4);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 2);
  Rational neg(3, -6);
  EXPECT_EQ(neg.num(), -1);
  EXPECT_EQ(neg.den(), 2);
  Rational zero(0, 7);
  EXPECT_EQ(zero.num(), 0);
  EXPECT_EQ(zero.den(), 1);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), PreconditionError);
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  Rational acc(0);
  for (int i = 0; i < 100; ++i) acc += Rational(1, 100);
  EXPECT_EQ(acc, Rational(1));
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(0));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(7), Rational(13, 2));
  EXPECT_GE(Rational(7), Rational(7, 1));
  EXPECT_NE(Rational(1, 3), Rational(1, 4));
}

TEST(Rational, Rendering) {
  EXPECT_EQ(Rational(7).str(), "7");
  EXPECT_EQ(Rational(7, 2).str(), "7/2");
  EXPECT_EQ(Rational(-3, 9).str(), "-1/3");
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 4).to_double(), 0.25);
  EXPECT_DOUBLE_EQ(Rational(-3, 2).to_double(), -1.5);
}

TEST(Cost, TransfersAndAddition) {
  Cost a{1, 2, 3, 4};
  Cost b{10, 20, 30, 40};
  Cost sum = a + b;
  EXPECT_EQ(sum.loads, 11);
  EXPECT_EQ(sum.stores, 22);
  EXPECT_EQ(sum.computes, 33);
  EXPECT_EQ(sum.deletes, 44);
  EXPECT_EQ(sum.transfers(), 33);
  a += b;
  EXPECT_EQ(a, sum);
}

}  // namespace
}  // namespace rbpeb
