#include "src/support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "src/support/check.hpp"

namespace rbpeb {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), PreconditionError);
}

TEST(Rng, NextBelowCoversSmallRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextInInclusiveRange) {
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    std::int64_t v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  // Degenerate range.
  EXPECT_EQ(rng.next_in(9, 9), 9);
  EXPECT_THROW(rng.next_in(3, 2), PreconditionError);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextBoolExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> original = v;
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
}

TEST(Rng, SampleWithoutReplacementProperties) {
  Rng rng(17);
  for (std::size_t n : {1u, 5u, 20u}) {
    for (std::size_t k = 0; k <= n; ++k) {
      auto sample = rng.sample_without_replacement(n, k);
      EXPECT_EQ(sample.size(), k);
      EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
      EXPECT_EQ(std::set<std::size_t>(sample.begin(), sample.end()).size(), k);
      for (std::size_t x : sample) EXPECT_LT(x, n);
    }
  }
  EXPECT_THROW(rng.sample_without_replacement(3, 4), PreconditionError);
}

TEST(Rng, SampleEventuallyCoversAllSubsmarkets) {
  // Every element of {0..4} should appear in some 2-subset over many draws.
  Rng rng(23);
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) {
    for (std::size_t x : rng.sample_without_replacement(5, 2)) seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 5u);
}

}  // namespace
}  // namespace rbpeb
