#include <gtest/gtest.h>

#include "src/support/csv.hpp"
#include "src/support/table.hpp"
#include "src/support/check.hpp"

namespace rbpeb {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t("Demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "23"});
  std::string s = t.str();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("| name"), std::string::npos);
}

TEST(Table, NumericColumnsRightAligned) {
  Table t;
  t.set_header({"k", "v"});
  t.add_row({"x", "1"});
  t.add_row({"y", "234"});
  std::string s = t.str();
  // "1" should be right-aligned under the wider "234".
  EXPECT_NE(s.find("|   1 |"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(Table, SeparatorAndNotes) {
  Table t;
  t.set_header({"a"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  t.add_note("a note");
  std::string s = t.str();
  EXPECT_NE(s.find("a note"), std::string::npos);
  // 5 horizontal lines: top, under header, separator, bottom... count '+'-
  // prefixed lines.
  std::size_t lines = 0;
  for (std::size_t pos = 0; (pos = s.find("\n+", pos)) != std::string::npos;
       ++pos) {
    ++lines;
  }
  EXPECT_EQ(lines, 3u);  // header underline, explicit separator, bottom
}

TEST(FormatDouble, TrimsZeros) {
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(0.125, 3), "0.125");
  EXPECT_EQ(format_double(1.0 / 3.0, 2), "0.33");
}

TEST(Csv, EscapesSpecialCharacters) {
  CsvWriter csv({"a", "b"});
  csv.add_row({"plain", "with,comma"});
  csv.add_row({"quote\"inside", "line\nbreak"});
  std::string s = csv.str();
  EXPECT_NE(s.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_EQ(csv.row_count(), 2u);
}

TEST(Csv, RejectsMismatchedRow) {
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.add_row({"x"}), PreconditionError);
}

}  // namespace
}  // namespace rbpeb
