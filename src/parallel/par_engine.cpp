#include "src/parallel/par_engine.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "src/graph/dag_algorithms.hpp"
#include "src/support/check.hpp"

namespace rbpeb {

std::string to_string(const ParMove& move) {
  std::ostringstream os;
  switch (move.type) {
    case ParMove::Type::Load: os << "load"; break;
    case ParMove::Type::Store: os << "store"; break;
    case ParMove::Type::Compute: os << "compute"; break;
    case ParMove::Type::Delete: os << "delete"; break;
  }
  os << "(p" << move.proc << ", " << move.node << ')';
  return os.str();
}

ParState::ParState(std::size_t node_count, std::size_t procs)
    : n_(node_count),
      red_(node_count * procs, false),
      blue_(node_count, false),
      computed_(node_count, false),
      red_count_(procs, 0) {}

void ParState::set_red(ProcId p, NodeId v, bool value) {
  RBPEB_REQUIRE(p < red_count_.size() && v < n_, "proc or node out of range");
  bool old = red_[p * n_ + v];
  if (old == value) return;
  red_[p * n_ + v] = value;
  red_count_[p] += value ? 1 : -1;
}

ParEngine::ParEngine(const Dag& dag, std::size_t procs, std::size_t red_limit)
    : dag_(&dag), procs_(procs), red_limit_(red_limit) {
  RBPEB_REQUIRE(procs_ >= 1, "need at least one processor");
  std::size_t min_r = dag.node_count() == 0 ? 0 : dag.max_indegree() + 1;
  RBPEB_REQUIRE(red_limit_ >= min_r,
                "per-processor budget must be at least max-indegree + 1");
}

std::optional<std::string> ParEngine::why_illegal(const ParState& state,
                                                  const ParMove& move) const {
  if (!dag_->contains(move.node)) return "node id out of range";
  if (move.proc >= procs_) return "processor id out of range";
  const NodeId v = move.node;
  const ProcId p = move.proc;
  switch (move.type) {
    case ParMove::Type::Load:
      if (!state.blue(v)) return "load requires the value in slow memory";
      if (state.red_at(p, v)) return "value already in this fast memory";
      if (state.red_count(p) >= red_limit_) return "fast memory full";
      return std::nullopt;
    case ParMove::Type::Store:
      if (!state.red_at(p, v)) return "store requires the value here";
      if (state.blue(v)) return "value already in slow memory";
      return std::nullopt;
    case ParMove::Type::Compute: {
      if (state.was_computed(v)) return "oneshot: node was already computed";
      for (NodeId u : dag_->predecessors(v)) {
        if (!state.red_at(p, u)) {
          std::ostringstream os;
          os << "input node " << u << " is not in processor " << p
             << "'s fast memory";
          return os.str();
        }
      }
      if (state.red_count(p) >= red_limit_) return "fast memory full";
      return std::nullopt;
    }
    case ParMove::Type::Delete:
      if (!state.red_at(p, v)) return "no local copy to delete";
      return std::nullopt;
  }
  return "unknown move type";
}

void ParEngine::apply(ParState& state, const ParMove& move) const {
  if (auto reason = why_illegal(state, move)) {
    throw PreconditionError("illegal move " + to_string(move) + ": " +
                            *reason);
  }
  switch (move.type) {
    case ParMove::Type::Load:
      state.set_red(move.proc, move.node, true);
      break;
    case ParMove::Type::Store:
      state.set_blue(move.node, true);
      break;
    case ParMove::Type::Compute:
      state.set_red(move.proc, move.node, true);
      state.mark_computed(move.node);
      break;
    case ParMove::Type::Delete:
      state.set_red(move.proc, move.node, false);
      break;
  }
}

bool ParEngine::is_complete(const ParState& state) const {
  for (NodeId sink : dag_->sinks()) {
    bool resident = state.blue(sink);
    for (ProcId p = 0; !resident && p < procs_; ++p) {
      resident = state.red_at(p, sink);
    }
    if (!resident) return false;
  }
  return true;
}

ParVerifyResult par_verify(const ParEngine& engine,
                           const std::vector<ParMove>& moves) {
  ParVerifyResult result;
  ParState state = engine.initial_state();
  result.ops_per_proc.assign(engine.procs(), 0);
  result.computes_per_proc.assign(engine.procs(), 0);
  result.legal = true;
  for (std::size_t i = 0; i < moves.size(); ++i) {
    const ParMove& move = moves[i];
    if (auto reason = engine.why_illegal(state, move)) {
      result.legal = false;
      result.failed_at = i;
      result.error = "move " + std::to_string(i) + " " + to_string(move) +
                     ": " + *reason;
      break;
    }
    engine.apply(state, move);
    ++result.ops_per_proc[move.proc];
    if (move.type == ParMove::Type::Load) ++result.loads;
    if (move.type == ParMove::Type::Store) ++result.stores;
    if (move.type == ParMove::Type::Compute) {
      ++result.computes_per_proc[move.proc];
    }
  }
  result.complete = result.legal && engine.is_complete(state);
  result.makespan = result.ops_per_proc.empty()
                        ? 0
                        : *std::max_element(result.ops_per_proc.begin(),
                                            result.ops_per_proc.end());
  return result;
}

namespace {

/// Owner-computes scheduler state.
class ParScheduler {
 public:
  explicit ParScheduler(const ParEngine& engine)
      : engine_(engine),
        dag_(engine.dag()),
        state_(engine.initial_state()),
        n_(dag_.node_count()),
        remaining_uses_(n_, 0),
        is_sink_(n_, false),
        pinned_(n_, false) {
    for (std::size_t v = 0; v < n_; ++v) {
      remaining_uses_[v] =
          static_cast<std::int64_t>(dag_.outdegree(static_cast<NodeId>(v)));
    }
    for (NodeId s : dag_.sinks()) is_sink_[s] = true;
  }

  std::vector<ParMove> run() {
    // Owner: block partition within each depth level.
    auto depth = node_depths(dag_);
    std::size_t max_depth = 0;
    for (std::size_t d : depth) max_depth = std::max(max_depth, d);
    std::vector<std::vector<NodeId>> levels(max_depth + 1);
    for (NodeId v : topological_order(dag_)) levels[depth[v]].push_back(v);

    std::vector<ProcId> owner(n_, 0);
    const std::size_t procs = engine_.procs();
    for (const auto& level : levels) {
      for (std::size_t i = 0; i < level.size(); ++i) {
        owner[level[i]] =
            static_cast<ProcId>(i * procs / level.size());
      }
    }

    for (const auto& level : levels) {
      for (NodeId v : level) compute_node(owner[v], v, owner);
    }
    return std::move(moves_);
  }

 private:
  void apply(ParMove move) {
    engine_.apply(state_, move);
    moves_.push_back(move);
  }

  bool dead(NodeId v) const {
    return remaining_uses_[v] == 0 && !is_sink_[v];
  }

  /// Free one slot in processor p's fast memory.
  void make_room(ProcId p) {
    if (state_.red_count(p) < engine_.red_limit()) return;
    NodeId victim = kInvalidNode;
    auto key = [&](NodeId x) {
      // Prefer dead values, then values already backed up in slow memory,
      // then fewest remaining uses.
      return std::tuple<int, int, std::int64_t, NodeId>(
          dead(x) ? 0 : 1, state_.blue(x) ? 0 : 1, remaining_uses_[x], x);
    };
    for (std::size_t u = 0; u < n_; ++u) {
      NodeId cand = static_cast<NodeId>(u);
      if (!state_.red_at(p, cand) || pinned_[cand]) continue;
      if (victim == kInvalidNode || key(cand) < key(victim)) victim = cand;
    }
    RBPEB_ENSURE(victim != kInvalidNode, "fast memory saturated with pins");
    if (!dead(victim) && !state_.blue(victim)) {
      apply({ParMove::Type::Store, p, victim});
    }
    apply({ParMove::Type::Delete, p, victim});
  }

  /// Make node u resident in processor p's fast memory.
  void ensure_red(ProcId p, NodeId u, const std::vector<ProcId>& owner) {
    if (state_.red_at(p, u)) return;
    if (!state_.blue(u)) {
      // The producer still holds the only copy; publish it to slow memory.
      ProcId q = owner[u];
      RBPEB_ENSURE(state_.red_at(q, u), "value lost before its last use");
      apply({ParMove::Type::Store, q, u});
    }
    make_room(p);
    apply({ParMove::Type::Load, p, u});
  }

  void compute_node(ProcId p, NodeId v, const std::vector<ProcId>& owner) {
    auto preds = dag_.predecessors(v);
    pinned_[v] = true;
    for (NodeId u : preds) pinned_[u] = true;
    for (NodeId u : preds) ensure_red(p, u, owner);
    make_room(p);
    apply({ParMove::Type::Compute, p, v});
    for (NodeId u : preds) {
      if (--remaining_uses_[u] == 0 && !is_sink_[u]) {
        // Drop every remaining fast copy of the dead value.
        for (ProcId q = 0; q < engine_.procs(); ++q) {
          if (state_.red_at(q, u)) apply({ParMove::Type::Delete, q, u});
        }
      }
    }
    pinned_[v] = false;
    for (NodeId u : preds) pinned_[u] = false;
  }

  const ParEngine& engine_;
  const Dag& dag_;
  ParState state_;
  std::vector<ParMove> moves_;
  const std::size_t n_;
  std::vector<std::int64_t> remaining_uses_;
  std::vector<bool> is_sink_;
  std::vector<bool> pinned_;
};

}  // namespace

std::vector<ParMove> solve_par_owner_computes(const ParEngine& engine) {
  ParScheduler scheduler(engine);
  return scheduler.run();
}

}  // namespace rbpeb
