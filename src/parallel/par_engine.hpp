// Parallel red-blue pebbling — multiple "shades" of red.
//
// Elango et al. [8] (paper, Section 2) generalize red-blue pebbling to
// parallel execution: each of P processors owns a private fast memory (its
// own shade of red pebbles), and all share the unbounded slow memory (blue).
// A value may be resident in several fast memories at once (copies);
// computing a node requires all inputs in the *computing processor's* fast
// memory. Transfers between any fast memory and slow memory cost 1; the
// total transfer count is the communication volume of the schedule.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/graph/dag.hpp"

namespace rbpeb {

using ProcId = std::uint32_t;

/// One step of a parallel pebbling, executed by one processor.
struct ParMove {
  enum class Type { Load, Store, Compute, Delete } type;
  ProcId proc;
  NodeId node;
  bool operator==(const ParMove& o) const = default;
};

std::string to_string(const ParMove& move);

/// Dynamic state: which processor holds which value, plus the shared blue
/// set and the global computed flags (oneshot semantics).
class ParState {
 public:
  ParState() = default;
  ParState(std::size_t node_count, std::size_t procs);

  bool red_at(ProcId p, NodeId v) const { return red_[p * n_ + v]; }
  bool blue(NodeId v) const { return blue_[v]; }
  bool was_computed(NodeId v) const { return computed_[v]; }
  std::size_t red_count(ProcId p) const { return red_count_[p]; }
  std::size_t procs() const { return red_count_.size(); }

  void set_red(ProcId p, NodeId v, bool value);
  void set_blue(NodeId v, bool value) { blue_[v] = value; }
  void mark_computed(NodeId v) { computed_[v] = true; }

 private:
  std::size_t n_ = 0;
  std::vector<bool> red_;   // procs x nodes
  std::vector<bool> blue_;
  std::vector<bool> computed_;
  std::vector<std::size_t> red_count_;
};

/// Rule engine: P processors with `red_limit` fast slots each.
class ParEngine {
 public:
  ParEngine(const Dag& dag, std::size_t procs, std::size_t red_limit);
  ParEngine(Dag&&, std::size_t, std::size_t) = delete;

  const Dag& dag() const { return *dag_; }
  std::size_t procs() const { return procs_; }
  std::size_t red_limit() const { return red_limit_; }

  ParState initial_state() const {
    return ParState(dag_->node_count(), procs_);
  }

  std::optional<std::string> why_illegal(const ParState& state,
                                         const ParMove& move) const;
  bool is_legal(const ParState& state, const ParMove& move) const {
    return !why_illegal(state, move).has_value();
  }
  void apply(ParState& state, const ParMove& move) const;

  /// Every sink resident somewhere (any fast memory or slow memory).
  bool is_complete(const ParState& state) const;

 private:
  const Dag* dag_;
  std::size_t procs_;
  std::size_t red_limit_;
};

/// Replay audit.
struct ParVerifyResult {
  bool legal = false;
  bool complete = false;
  std::size_t failed_at = 0;
  std::string error;
  std::int64_t loads = 0;
  std::int64_t stores = 0;
  std::vector<std::int64_t> ops_per_proc;  ///< All operations, per processor.
  std::vector<std::int64_t> computes_per_proc;
  /// Max over processors of its operation count — a simple makespan proxy
  /// under fully overlapped execution.
  std::int64_t makespan = 0;

  std::int64_t transfers() const { return loads + stores; }
  bool ok() const { return legal && complete; }
};

ParVerifyResult par_verify(const ParEngine& engine,
                           const std::vector<ParMove>& moves);

/// Baseline scheduler: owner-computes by block partition of each
/// topological level. Producers store shared values once; consumers load
/// them. Returns a legal, complete schedule.
std::vector<ParMove> solve_par_owner_computes(const ParEngine& engine);

}  // namespace rbpeb
