// Red-pebble eviction policies.
//
// Section 8's greedy rules only choose *which node to compute next*; which
// red pebble to displace when capacity runs out is an orthogonal decision
// (DESIGN.md, decision 4). These policies make that decision.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "src/graph/dag.hpp"
#include "src/support/rng.hpp"

namespace rbpeb {

/// Strategy for choosing the red pebble to displace.
enum class EvictionRule {
  /// Evict the red pebble whose node was least recently used (computed or
  /// consumed as an input).
  Lru,
  /// Evict the node with the fewest not-yet-computed consumers, breaking
  /// ties by least-recently-used. Nodes that will never be needed again are
  /// always preferred.
  FewestRemainingUses,
  /// Evict a uniformly random candidate (baseline for ablations).
  Random,
};

const char* to_string(EvictionRule rule);

/// Inverse of to_string; nullopt for unknown names.
std::optional<EvictionRule> eviction_rule_from_name(std::string_view name);

/// Pick a victim among `candidates` (non-empty).
///  * `remaining_uses[v]` — number of uncomputed successors of v;
///  * `last_use_tick[v]`  — logical clock of v's last involvement.
NodeId choose_victim(EvictionRule rule, const std::vector<NodeId>& candidates,
                     const std::vector<std::int64_t>& remaining_uses,
                     const std::vector<std::int64_t>& last_use_tick, Rng& rng);

}  // namespace rbpeb
