#include "src/solvers/bigstate/ddd.hpp"

namespace rbpeb {

std::optional<bigstate::SpillDirectory> make_spill_directory(
    const ExactSearchOptions& options) {
  if (!bigstate_spill_enabled(options)) return std::nullopt;
  switch (options.spill) {
    case SpillMode::Auto:
      return bigstate::SpillDirectory::create("");
    case SpillMode::Path:
      RBPEB_REQUIRE(!options.spill_path.empty(),
                    "SpillMode::Path needs a non-empty spill_path");
      return bigstate::SpillDirectory::create(options.spill_path);
    case SpillMode::Off:
      break;
  }
  return std::nullopt;
}

}  // namespace rbpeb
