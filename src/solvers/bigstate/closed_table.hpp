// Memory-budgeted closed/open table for the exact searches.
//
// The closed table dwarfs every other search structure well before the key
// width does — each expanded or generated state holds a key, its best g, and
// a tree edge — so "how big may the search get" is a question about this
// table, not about max_states. ClosedTable answers it in bytes:
//
//  * open addressing with linear probing over a flat slot array — one
//    allocation, no per-node boxes, so the byte accounting below is exact
//    rather than an estimate of allocator behavior;
//  * byte-accounted: bytes() = slot array + any heap spill of stored
//    variable-width keys (VarPackedState beyond 42 nodes). A table built
//    with a budget refuses — via InsertStatus::OutOfMemory, never an
//    allocation failure — any insert or growth that would exceed it, which
//    the searches surface as a graceful BudgetExhausted with partial stats;
//  * keyed through the packed-state protocol (Packed::Key, hash_key,
//    key_heap_bytes), so one implementation serves the 64-bit, __uint128_t,
//    and variable-width searches, sequential and per-HDA*-shard alike.
//
// Growth doubles the slot array; the budget check is against the steady
// state footprint after growth (rehashing transiently holds old + new
// arrays — callers budgeting close to physical memory should leave that
// headroom). Entries are never removed, so entry pointers stay valid until
// the next insert.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/pebble/move.hpp"
#include "src/support/check.hpp"

namespace rbpeb {

template <typename Packed>
class ClosedTable {
 public:
  using Key = typename Packed::Key;

  /// Best known path to a state: its cost and the tree edge achieving it.
  struct Entry {
    std::int64_t g = 0;
    Key parent{};
    Move via{MoveType::Load, 0};
  };

  enum class InsertStatus {
    Inserted,     ///< Fresh key; entry holds the supplied path.
    Found,        ///< Key already present; entry holds the *existing* path.
    OutOfMemory,  ///< Memory budget blocks the insert; table unchanged.
  };

  struct InsertResult {
    Entry* entry = nullptr;  ///< null iff status == OutOfMemory
    InsertStatus status = InsertStatus::OutOfMemory;
  };

  /// `max_bytes` caps bytes(); 0 = unlimited.
  explicit ClosedTable(std::size_t max_bytes = 0) : max_bytes_(max_bytes) {}

  /// Insert `key` with the supplied path unless present; on Found the caller
  /// decides whether its path improves the entry. Pointers are valid until
  /// the next try_emplace.
  InsertResult try_emplace(const Key& key, std::int64_t g, const Key& parent,
                           Move via) {
    if (slots_.empty() || (size_ + 1) * 4 >= slots_.size() * 3) {
      if (!grow()) return {nullptr, InsertStatus::OutOfMemory};
    }
    std::size_t i = Packed::hash_key(key) & mask_;
    while (slots_[i].occupied) {
      if (slots_[i].key == key) {
        return {&slots_[i].entry, InsertStatus::Found};
      }
      i = (i + 1) & mask_;
    }
    const std::size_t extra =
        Packed::key_heap_bytes(key) + Packed::key_heap_bytes(parent);
    if (max_bytes_ != 0 && bytes() + extra > max_bytes_) {
      return {nullptr, InsertStatus::OutOfMemory};
    }
    slots_[i].key = key;
    slots_[i].entry = Entry{g, parent, via};
    slots_[i].occupied = true;
    heap_bytes_ += extra;
    ++size_;
    return {&slots_[i].entry, InsertStatus::Inserted};
  }

  /// nullptr when absent.
  Entry* find(const Key& key) {
    if (slots_.empty()) return nullptr;
    std::size_t i = Packed::hash_key(key) & mask_;
    while (slots_[i].occupied) {
      if (slots_[i].key == key) return &slots_[i].entry;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  const Entry* find(const Key& key) const {
    return const_cast<ClosedTable*>(this)->find(key);
  }

  /// Like find but the key must be present (path reconstruction walks only
  /// keys the search inserted).
  const Entry& at(const Key& key) const {
    const Entry* entry = find(key);
    RBPEB_ENSURE(entry != nullptr, "ClosedTable::at: key not present");
    return *entry;
  }

  std::size_t size() const { return size_; }

  /// Exact current footprint: slot array plus heap spill of stored keys.
  std::size_t bytes() const {
    return slots_.capacity() * sizeof(Slot) + heap_bytes_;
  }

  std::size_t max_bytes() const { return max_bytes_; }

 private:
  struct Slot {
    Key key{};
    Entry entry{};
    bool occupied = false;
  };

  static constexpr std::size_t kInitialSlots = 1024;

  bool grow() {
    const std::size_t new_cap =
        slots_.empty() ? kInitialSlots : slots_.size() * 2;
    if (max_bytes_ != 0 &&
        new_cap * sizeof(Slot) + heap_bytes_ > max_bytes_) {
      return false;
    }
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_cap, Slot{});
    mask_ = new_cap - 1;
    for (Slot& slot : old) {
      if (!slot.occupied) continue;
      std::size_t i = Packed::hash_key(slot.key) & mask_;
      while (slots_[i].occupied) i = (i + 1) & mask_;
      slots_[i] = std::move(slot);
    }
    return true;
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::size_t heap_bytes_ = 0;
  std::size_t max_bytes_ = 0;
};

}  // namespace rbpeb
