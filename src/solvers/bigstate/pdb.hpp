// Additive pattern databases — abstraction heuristics for the big-instance
// exact searches.
//
// Past ~42 nodes the counting bounds of bounds.hpp stop paying for
// themselves: they see owed computations and transfers but nothing of the
// *interaction* between them, and the informed searches drown in plausible
// mid-game states. Pattern databases recover guidance the standard way
// (Culberson–Schaeffer; additive PDBs à la Felner et al.): project the game
// onto small disjoint node sets and solve each projection exactly, once.
//
//  * The DAG's nodes are partitioned into patterns of at most
//    kMaxPatternSize nodes by a greedy cone-respecting partitioner: nodes
//    join, in topological order, the pattern holding most of their direct
//    predecessors (ancestor cones stay together, which is where pebbling
//    interaction lives), opening a new pattern only when none has room.
//  * For each pattern P the *abstract game* keeps only the 3-bit fields of
//    P's nodes. Moves on nodes outside P are free; moves on v ∈ P keep
//    every constraint expressible inside P (blue/red preconditions,
//    preds-in-P red for Compute, |red ∩ P| within the budget R, the oneshot
//    and nodel rules, the Hong–Kung source/sink conventions). Any legal
//    concrete completion, restricted to its moves on P, is therefore a
//    legal abstract completion of the projected state with exactly the cost
//    those moves contribute.
//  * A backward Dijkstra from all complete abstract states (the shared Dial
//    BucketQueue over pre-images) fills one flat 8^|P| table per pattern
//    with the optimal abstract completion cost of every projection.
//
// Each concrete move is charged to exactly one pattern (moves touch one
// node; patterns are disjoint), so the per-pattern optimal completion costs
// SUM to an admissible heuristic — and an unreachable abstract entry proves
// the concrete state dead (no completion's projection would exist), which
// the searches prune outright. At complete concrete states every projection
// is an abstract goal, so the sum is 0 as admissibility requires.
//
// StateBoundEvaluator::attach_pdb folds the sum in as
// max(counting_bounds, pdb_sum); tests/solvers/test_bigstate.cpp checks
// admissibility against exhaustively solved instances.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/pebble/engine.hpp"
#include "src/solvers/exact.hpp"

namespace rbpeb {

/// Disjoint node patterns covering the whole DAG, each of size at most
/// `max_pattern_size` (clamped to PatternDatabase::kMaxHashedPatternSize).
/// Nodes are assigned in topological order to the pattern holding most of
/// their direct predecessors, so ancestor cones stay together.
std::vector<std::vector<NodeId>> partition_into_patterns(
    const Dag& dag, std::size_t max_pattern_size);

/// Min-cut partitioner: cut a topological order into contiguous segments of
/// at most `max_pattern_size` nodes, choosing the boundaries that minimize
/// the total number of DAG edges crossing them (dynamic program over
/// boundary positions). Fewer crossing edges means fewer dependencies the
/// abstraction forgets, which is where additive-PDB slack comes from.
std::vector<std::vector<NodeId>> partition_into_patterns_mincut(
    const Dag& dag, std::size_t max_pattern_size);

class PatternDatabase {
 public:
  /// Width cap of the *flat* 8^|P| tables: 8 nodes → 16.7M abstract states
  /// per table, the largest dense build that stays sub-second. Wider
  /// patterns switch to open-addressed hashed tables holding only the
  /// abstract states the backward Dijkstra actually reaches.
  static constexpr std::size_t kMaxPatternSize = 8;

  /// Hard cap on pattern width overall: 16 nodes × 3 bits = 48-bit packed
  /// projection indices, comfortably inside the 64-bit hashed-table keys.
  static constexpr std::size_t kMaxHashedPatternSize = 16;

  /// Default width: 8^6 = 262144 entries (1 MiB) per pattern.
  static constexpr std::size_t kDefaultPatternSize = 6;

  /// Entry meaning "no abstract completion exists" — any concrete state
  /// projecting onto it is provably dead.
  static constexpr std::int32_t kUnreachable = -1;

  /// Default byte budget for the hashed tables when the caller sets none:
  /// past it a build truncates (see below) instead of growing without bound.
  static constexpr std::size_t kDefaultHashedTableBytes =
      std::size_t{256} << 20;

  /// Build the database for `engine`'s instance: partition, then solve each
  /// abstract configuration graph exactly. `max_pattern_size` of 0 means
  /// kDefaultPatternSize; widths past kMaxPatternSize build hashed tables.
  /// Read-only (and thread-safe) afterwards.
  ///
  /// `should_stop` is the same cooperative hook the searches poll: an 8-node
  /// pattern builds a 16.7M-entry table, long enough that an un-interruptible
  /// build would pin a cancelled or past-deadline solve to a core. When it
  /// fires mid-build the constructor returns early with build_aborted() set;
  /// the tables are then incomplete and must not be consulted.
  ///
  /// `table_byte_budget` caps the hashed tables' total footprint (0 =
  /// kDefaultHashedTableBytes; rehash transients — old plus new slot arrays
  /// — are counted while they coexist). A build that hits the cap is
  /// *truncated*, not failed: every state the Dijkstra settled keeps its
  /// exact completion cost, and absent entries fall back to the last
  /// settled distance — a floor every unsettled state's true cost reaches,
  /// so the sum stays admissible. Truncated patterns no longer prove states
  /// dead (an absent entry might merely be unexplored). Flat tables ignore
  /// the budget, preserving the historical ≤8-wide behavior bit-for-bit.
  ///
  /// `force_hashed` is a testing hook: build hashed tables even at widths
  /// the flat tables cover, for differential comparison.
  explicit PatternDatabase(const Engine& engine,
                           std::size_t max_pattern_size = 0,
                           const StopPredicate& should_stop = {},
                           PdbPartition partition = PdbPartition::Cone,
                           std::size_t table_byte_budget = 0,
                           bool force_hashed = false);

  /// True when should_stop ended the build early — the caller must discard
  /// the database and terminate with ExactTermination::Stopped.
  bool build_aborted() const { return aborted_; }

  std::size_t pattern_count() const { return patterns_.size(); }

  const std::vector<NodeId>& pattern_nodes(std::size_t p) const {
    return patterns_[p].nodes;
  }

  /// Total bytes held by the completion tables.
  std::size_t table_bytes() const { return table_bytes_; }

  /// The additive heuristic in scaled units of 1/ε.den(): the sum over
  /// patterns of the optimal abstract completion cost of the state's
  /// projection. `field(v)` must return the node's 3-bit configuration
  /// field (color | computed << 2). nullopt when some projection is
  /// unreachable — the state is provably dead.
  template <class FieldFn>
  std::optional<std::int64_t> sum_scaled(FieldFn&& field) const {
    std::int64_t total = 0;
    for (const Pattern& pattern : patterns_) {
      std::size_t index = 0;
      for (std::size_t i = 0; i < pattern.nodes.size(); ++i) {
        index |= static_cast<std::size_t>(field(pattern.nodes[i]) & 7u)
                 << (3 * i);
      }
      if (!pattern.hashed) {
        const std::int32_t d = pattern.completion[index];
        if (d == kUnreachable) return std::nullopt;
        total += d;
        continue;
      }
      const std::int32_t* d = pattern.table.find_settled(index);
      if (d != nullptr) {
        total += *d;
      } else if (pattern.complete) {
        // A completed backward Dijkstra enumerated every abstract state
        // that can reach a goal; an absent projection is provably dead.
        return std::nullopt;
      } else {
        total += pattern.floor;  // truncated build: the settled-distance floor
      }
    }
    return total;
  }

  /// sum_scaled over anything with color(NodeId)/was_computed(NodeId).
  template <class StateLike>
  std::optional<std::int64_t> lower_bound_scaled(const StateLike& state) const {
    return sum_scaled([&](NodeId v) {
      unsigned f = static_cast<unsigned>(state.color(v));
      if (state.was_computed(v)) f |= 4u;
      return f;
    });
  }

 private:
  /// Open-addressed (linear-probe, power-of-two) map from packed projection
  /// index to its abstract completion cost, for patterns too wide for a
  /// dense 8^|P| array. Only the states the backward Dijkstra reaches take
  /// slots. The settled flag distinguishes final distances from tentative
  /// ones: after a truncated build only settled entries are exact (a
  /// tentative distance is an upper bound, which an admissible heuristic
  /// must not serve).
  class HashedTable {
   public:
    static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

    /// Pointer to the settled distance for `key`, nullptr when the entry is
    /// absent or still tentative.
    const std::int32_t* find_settled(std::uint64_t key) const {
      if (slots_.empty()) return nullptr;
      const std::size_t mask = slots_.size() - 1;
      for (std::size_t s = hash(key) & mask;; s = (s + 1) & mask) {
        const Slot& slot = slots_[s];
        if (slot.key == kEmptyKey) return nullptr;
        if (slot.key == key) return slot.settled ? &slot.dist : nullptr;
      }
    }

    struct Slot {
      std::uint64_t key = kEmptyKey;
      std::int32_t dist = kUnreachable;  ///< kUnreachable marks a fresh slot
      bool settled = false;
    };

    /// Slot for `key`, inserting a fresh one (dist == kUnreachable) and
    /// growing as needed. Returns nullptr when growth would push
    /// `*total_bytes` past `byte_budget` — the old and the new slot arrays
    /// coexist during the rehash, and both count while they do.
    /// `*total_bytes` tracks the whole database's hashed footprint across
    /// patterns.
    Slot* find_or_insert(std::uint64_t key, std::size_t* total_bytes,
                         std::size_t byte_budget);

    /// Lookup without insertion or growth; nullptr when absent.
    Slot* find(std::uint64_t key) {
      if (slots_.empty()) return nullptr;
      const std::size_t mask = slots_.size() - 1;
      for (std::size_t s = hash(key) & mask;; s = (s + 1) & mask) {
        Slot& slot = slots_[s];
        if (slot.key == kEmptyKey) return nullptr;
        if (slot.key == key) return &slot;
      }
    }

    std::size_t bytes() const { return slots_.capacity() * sizeof(Slot); }
    std::size_t size() const { return size_; }

   private:
    static std::uint64_t hash(std::uint64_t key) {
      // SplitMix64 finalizer — the same mix the spill key protocol uses.
      std::uint64_t z = key + 0x9e3779b97f4a7c15ull;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      return z ^ (z >> 31);
    }
    bool grow(std::size_t* total_bytes, std::size_t byte_budget);

    std::vector<Slot> slots_;
    std::size_t size_ = 0;
  };

  struct Pattern {
    std::vector<NodeId> nodes;
    /// Per position: which earlier/later positions are direct predecessors
    /// of this node inside the pattern.
    std::vector<std::vector<std::size_t>> pred_positions;
    std::vector<bool> is_source;  ///< in the whole DAG, per position
    std::vector<std::size_t> sink_positions;  ///< DAG sinks inside P
    /// Optimal abstract completion cost per 3-bit-packed projection index,
    /// kUnreachable where no completion exists. Empty for hashed patterns.
    std::vector<std::int32_t> completion;
    /// Wide patterns: sparse table instead of the dense array.
    bool hashed = false;
    HashedTable table;
    /// True when the backward Dijkstra drained — absent entries are then
    /// provably unreachable (dead). False after a budget truncation.
    bool complete = true;
    /// Admissible stand-in for absent entries of a truncated build: the
    /// last distance the Dijkstra settled (every unsettled state's true
    /// completion cost is at least it, by nondecreasing settle order).
    std::int32_t floor = 0;
  };

  void build_pattern(const Engine& engine, Pattern& pattern,
                     std::int64_t cost_cap, const StopPredicate& should_stop);
  void build_pattern_hashed(const Engine& engine, Pattern& pattern,
                            std::int64_t cost_cap,
                            const StopPredicate& should_stop,
                            std::size_t byte_budget);

  std::vector<Pattern> patterns_;
  std::size_t table_bytes_ = 0;
  std::size_t hashed_bytes_ = 0;  ///< hashed share of table_bytes_
  bool aborted_ = false;
};

}  // namespace rbpeb
