// Additive pattern databases — abstraction heuristics for the big-instance
// exact searches.
//
// Past ~42 nodes the counting bounds of bounds.hpp stop paying for
// themselves: they see owed computations and transfers but nothing of the
// *interaction* between them, and the informed searches drown in plausible
// mid-game states. Pattern databases recover guidance the standard way
// (Culberson–Schaeffer; additive PDBs à la Felner et al.): project the game
// onto small disjoint node sets and solve each projection exactly, once.
//
//  * The DAG's nodes are partitioned into patterns of at most
//    kMaxPatternSize nodes by a greedy cone-respecting partitioner: nodes
//    join, in topological order, the pattern holding most of their direct
//    predecessors (ancestor cones stay together, which is where pebbling
//    interaction lives), opening a new pattern only when none has room.
//  * For each pattern P the *abstract game* keeps only the 3-bit fields of
//    P's nodes. Moves on nodes outside P are free; moves on v ∈ P keep
//    every constraint expressible inside P (blue/red preconditions,
//    preds-in-P red for Compute, |red ∩ P| within the budget R, the oneshot
//    and nodel rules, the Hong–Kung source/sink conventions). Any legal
//    concrete completion, restricted to its moves on P, is therefore a
//    legal abstract completion of the projected state with exactly the cost
//    those moves contribute.
//  * A backward Dijkstra from all complete abstract states (the shared Dial
//    BucketQueue over pre-images) fills one flat 8^|P| table per pattern
//    with the optimal abstract completion cost of every projection.
//
// Each concrete move is charged to exactly one pattern (moves touch one
// node; patterns are disjoint), so the per-pattern optimal completion costs
// SUM to an admissible heuristic — and an unreachable abstract entry proves
// the concrete state dead (no completion's projection would exist), which
// the searches prune outright. At complete concrete states every projection
// is an abstract goal, so the sum is 0 as admissibility requires.
//
// StateBoundEvaluator::attach_pdb folds the sum in as
// max(counting_bounds, pdb_sum); tests/solvers/test_bigstate.cpp checks
// admissibility against exhaustively solved instances.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/pebble/engine.hpp"
#include "src/solvers/exact.hpp"

namespace rbpeb {

/// Disjoint node patterns covering the whole DAG, each of size at most
/// `max_pattern_size` (clamped to PatternDatabase::kMaxPatternSize). Nodes
/// are assigned in topological order to the pattern holding most of their
/// direct predecessors, so ancestor cones stay together.
std::vector<std::vector<NodeId>> partition_into_patterns(
    const Dag& dag, std::size_t max_pattern_size);

class PatternDatabase {
 public:
  /// Hard cap on pattern width: 8 nodes → 8^8 = 16.7M abstract states per
  /// table, the largest build that stays sub-second.
  static constexpr std::size_t kMaxPatternSize = 8;

  /// Default width: 8^6 = 262144 entries (1 MiB) per pattern.
  static constexpr std::size_t kDefaultPatternSize = 6;

  /// Entry meaning "no abstract completion exists" — any concrete state
  /// projecting onto it is provably dead.
  static constexpr std::int32_t kUnreachable = -1;

  /// Build the database for `engine`'s instance: partition, then solve each
  /// abstract configuration graph exactly. `max_pattern_size` of 0 means
  /// kDefaultPatternSize. Read-only (and thread-safe) afterwards.
  ///
  /// `should_stop` is the same cooperative hook the searches poll: an 8-node
  /// pattern builds a 16.7M-entry table, long enough that an un-interruptible
  /// build would pin a cancelled or past-deadline solve to a core. When it
  /// fires mid-build the constructor returns early with build_aborted() set;
  /// the tables are then incomplete and must not be consulted.
  explicit PatternDatabase(const Engine& engine,
                           std::size_t max_pattern_size = 0,
                           const StopPredicate& should_stop = {});

  /// True when should_stop ended the build early — the caller must discard
  /// the database and terminate with ExactTermination::Stopped.
  bool build_aborted() const { return aborted_; }

  std::size_t pattern_count() const { return patterns_.size(); }

  const std::vector<NodeId>& pattern_nodes(std::size_t p) const {
    return patterns_[p].nodes;
  }

  /// Total bytes held by the completion tables.
  std::size_t table_bytes() const { return table_bytes_; }

  /// The additive heuristic in scaled units of 1/ε.den(): the sum over
  /// patterns of the optimal abstract completion cost of the state's
  /// projection. `field(v)` must return the node's 3-bit configuration
  /// field (color | computed << 2). nullopt when some projection is
  /// unreachable — the state is provably dead.
  template <class FieldFn>
  std::optional<std::int64_t> sum_scaled(FieldFn&& field) const {
    std::int64_t total = 0;
    for (const Pattern& pattern : patterns_) {
      std::size_t index = 0;
      for (std::size_t i = 0; i < pattern.nodes.size(); ++i) {
        index |= static_cast<std::size_t>(field(pattern.nodes[i]) & 7u)
                 << (3 * i);
      }
      const std::int32_t d = pattern.completion[index];
      if (d == kUnreachable) return std::nullopt;
      total += d;
    }
    return total;
  }

  /// sum_scaled over anything with color(NodeId)/was_computed(NodeId).
  template <class StateLike>
  std::optional<std::int64_t> lower_bound_scaled(const StateLike& state) const {
    return sum_scaled([&](NodeId v) {
      unsigned f = static_cast<unsigned>(state.color(v));
      if (state.was_computed(v)) f |= 4u;
      return f;
    });
  }

 private:
  struct Pattern {
    std::vector<NodeId> nodes;
    /// Per position: which earlier/later positions are direct predecessors
    /// of this node inside the pattern.
    std::vector<std::vector<std::size_t>> pred_positions;
    std::vector<bool> is_source;  ///< in the whole DAG, per position
    std::vector<std::size_t> sink_positions;  ///< DAG sinks inside P
    /// Optimal abstract completion cost per 3-bit-packed projection index,
    /// kUnreachable where no completion exists.
    std::vector<std::int32_t> completion;
  };

  void build_pattern(const Engine& engine, Pattern& pattern,
                     std::int64_t cost_cap, const StopPredicate& should_stop);

  std::vector<Pattern> patterns_;
  std::size_t table_bytes_ = 0;
  bool aborted_ = false;
};

}  // namespace rbpeb
