// External-memory closed table with delayed duplicate detection — what turns
// `--budget-memory` from a wall into a working set.
//
// The PR-4 ClosedTable refused inserts past its byte budget and the
// searches surfaced that as ExactTermination::MemoryBudget: a dead end.
// SpillingClosedTable (its replacement) keeps the same open-addressed,
// byte-accounted core but *evicts* instead of refusing: when an insert or growth would exceed the
// budget it sheds the cold half of its entries — lowest g first, the layers
// a mostly-monotone A* has already burned through (the structured-duplicate-
// detection reading of the DAG's level structure) — into sorted spill runs
// on disk (spill.hpp), then carries on.
//
// Duplicate detection is *delayed* (Korf's DDD): a freshly generated state
// is checked against the in-RAM table immediately, but against the spilled
// runs only in batched merge passes, triggered the first time an unverified
// entry is about to be expanded. The reconciliation restores exact
// in-memory semantics before any decision depends on them:
//
//  * a spilled record with a smaller g supersedes the RAM entry (its queue
//    items die by the stale-g check, exactly as an in-RAM improvement
//    would);
//  * an equal-g record marks the RAM entry already-expanded when the disk
//    copy was, so the regenerated duplicate is popped and dropped — never
//    expanded twice;
//  * a worse record on disk is simply stale history (runs are immutable;
//    compaction garbage-collects it).
//
// Every expansion gate runs through begin_expansion, which enforces
// "expand (key, g) at most once, and only at the best known g" — the exact
// invariant the in-memory search maintains implicitly — so a spilling
// search reproduces the in-memory search's costs AND expansion counts
// bit-for-bit (asserted by tests/solvers/test_spill.cpp), and the
// optimality proof is untouched: no state is lost, only parked on disk.
//
// Single-owner like ClosedTable: the sequential search owns one, each
// hda-astar shard owns one over its own spill partition.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/pebble/move.hpp"
#include "src/solvers/bigstate/spill.hpp"
#include "src/solvers/exact.hpp"
#include "src/support/check.hpp"

namespace rbpeb {

/// Whether these options engage the external-memory path: a memory budget
/// is set and spilling is not explicitly off. One definition serves
/// exact-astar and hda-astar.
inline bool bigstate_spill_enabled(const ExactSearchOptions& options) {
  return options.max_memory_bytes != 0 && options.spill != SpillMode::Off;
}

/// Create the per-search spill directory the options ask for — a unique,
/// search-owned directory under the system temp dir (Auto) or under
/// options.spill_path (Path) — or nullopt when spilling is disabled. The
/// directory and everything in it is removed when the returned object dies,
/// cancellation and exceptions included.
std::optional<bigstate::SpillDirectory> make_spill_directory(
    const ExactSearchOptions& options);

template <typename Packed>
class SpillingClosedTable {
 public:
  using Key = typename Packed::Key;

  /// Best known path to a state: its cost and the tree edge achieving it.
  struct Entry {
    std::int64_t g = 0;
    Key parent{};
    Move via{MoveType::Load, 0};
  };

  /// Outcome of offering one generated state (see relax()).
  enum class Relax {
    Inserted,     ///< Fresh key: push it.
    Improved,     ///< Strictly cheaper path to a known key: push it.
    Stale,        ///< A path at least as cheap is already known: drop it.
    OutOfMemory,  ///< No spill room left (spill off, or disk budget hit).
  };

  /// Verdict on a popped open item (see begin_expansion()).
  enum class Pop {
    Expand,       ///< g is the best known and unexpanded: expand now.
    Skip,         ///< Superseded or already expanded at this g: drop it.
    OutOfMemory,  ///< Bookkeeping the expansion needs no longer fits.
  };

  /// `spill_dir` empty (or `max_bytes` 0) disables spilling: budget hits
  /// then refuse exactly like ClosedTable. With spilling, the budget is
  /// honored down to a minimum working set of one initial slot slab.
  SpillingClosedTable(std::size_t node_count, std::size_t max_bytes,
                      const std::string& spill_dir,
                      std::size_t max_disk_bytes)
      : node_count_(node_count), max_bytes_(max_bytes) {
    if (!spill_dir.empty() && max_bytes != 0) {
      layout_.key_bytes = Packed::key_serialized_bytes(node_count);
      runs_.emplace(layout_, spill_dir, max_disk_bytes);
    }
  }

  /// Bytes the search holds outside this table but inside the same memory
  /// budget — pattern-database tables and the open queue's bucket arrays.
  /// Counted against max_bytes alongside bytes(); refreshed by the searches
  /// at their poll checkpoints.
  void set_overhead_bytes(std::size_t bytes) { overhead_bytes_ = bytes; }

  /// Offer one generated state. Inserted/Improved mean the caller should
  /// evaluate and push it; Stale means a path at least as cheap is already
  /// in RAM (the delayed check against disk happens at expansion time).
  Relax relax(const Key& key, std::int64_t g, const Key& parent, Move via) {
    if (Slot* slot = find_slot(key)) {
      if (g >= slot->entry.g) return Relax::Stale;
      // A strict improvement re-opens the state; verified status survives
      // (the RAM g only moved further below any spilled record's). Items
      // at the old g — deferred duplicates included — go stale with it.
      slot->entry = Entry{g, parent, via};
      slot->expanded = false;
      slot->deferred = 0;
      return Relax::Improved;
    }
    if (!ensure_capacity()) return Relax::OutOfMemory;
    const std::size_t extra =
        Packed::key_heap_bytes(key) + Packed::key_heap_bytes(parent);
    if (!budget_insert(extra)) return Relax::OutOfMemory;
    insert_fresh(key, Entry{g, parent, via});
    return Relax::Inserted;
  }

  /// Gate a popped open item (key, g): Expand exactly when the in-memory
  /// search would expand it — g matches the best known path and the state
  /// has not been expanded at this g yet. The first pop of an unverified
  /// entry triggers the batched merge pass against the spill runs.
  Pop begin_expansion(const Key& key, std::int64_t g) {
    if (Slot* slot = find_slot(key)) {
      if (!slot->verified) {
        reconcile();
        slot = find_slot(key);  // reconcile never moves slots; be explicit
      }
      if (slot->entry.g != g || slot->expanded) return Pop::Skip;
      if (slot->deferred > 0) {
        --slot->deferred;  // a duplicate item: the original expands later
        return Pop::Skip;
      }
      slot->expanded = true;
      return Pop::Expand;
    }
    // The key was evicted wholesale; its truth lives on disk.
    RBPEB_ENSURE(runs_ && !runs_->empty(),
                 "begin_expansion: popped key absent from RAM and disk");
    std::uint8_t* rec = rec_scratch();
    Packed::key_serialize(key, key_scratch());
    const bool found = runs_->lookup(key_scratch(), rec);
    RBPEB_ENSURE(found, "begin_expansion: popped key lost by the spill");
    if (bigstate::spill_record_g(layout_, rec) != g ||
        bigstate::spill_record_expanded(layout_, rec)) {
      return Pop::Skip;
    }
    // Re-adopt into RAM — marked expanded if this pop is the state's
    // original item, or with one deferred duplicate consumed if not — so
    // every sibling item at the same g resolves against RAM from here on.
    // (ensure_capacity/make_room may reuse the scratch; copy fields first.)
    const Key parent = Packed::key_deserialize(
        rec + layout_.parent_offset(), node_count_);
    const Move via = bigstate::spill_record_via(layout_, rec);
    const std::uint16_t deferred =
        bigstate::spill_record_deferred(layout_, rec);
    if (!ensure_capacity()) return Pop::OutOfMemory;
    const std::size_t extra =
        Packed::key_heap_bytes(key) + Packed::key_heap_bytes(parent);
    if (!budget_insert(extra)) return Pop::OutOfMemory;
    Slot* slot = insert_fresh(key, Entry{g, parent, via});
    slot->verified = true;
    if (!pending_.empty() && pending_.back() == key) {
      pending_.pop_back();  // insert_fresh queued it; it is already settled
      pending_heap_bytes_ -= Packed::key_heap_bytes(key);
    }
    if (deferred > 0) {
      slot->deferred = deferred - 1;
      return Pop::Skip;
    }
    slot->expanded = true;
    return Pop::Expand;
  }

  /// Settle every unverified entry against the spill runs. MUST be called
  /// before path reconstruction: an evicted-then-regenerated state's RAM
  /// entry may hold a worse (unreconciled) path whose tree edge would
  /// otherwise be spliced into the returned trace by at().
  void settle() { reconcile(); }

  /// Best known path record for `key`, wherever it lives — RAM or a spill
  /// run. Callers must settle() first (reconstruction walks only settled
  /// keys), so the key must exist and RAM entries are best-known.
  Entry at(const Key& key) const {
    if (const Slot* slot = find_slot(key)) {
      RBPEB_ENSURE(slot->verified,
                   "SpillingClosedTable::at: unsettled entry — call "
                   "settle() before reconstruction");
      return slot->entry;
    }
    RBPEB_ENSURE(runs_ && !runs_->empty(),
                 "SpillingClosedTable::at: key not present");
    std::uint8_t* rec = rec_scratch();
    Packed::key_serialize(key, key_scratch());
    const bool found = runs_->lookup(key_scratch(), rec);
    RBPEB_ENSURE(found, "SpillingClosedTable::at: key not present");
    return Entry{bigstate::spill_record_g(layout_, rec),
                 Packed::key_deserialize(rec + layout_.parent_offset(),
                                         node_count_),
                 bigstate::spill_record_via(layout_, rec)};
  }

  std::size_t size() const { return size_; }

  /// RAM footprint: slot array, heap spill of stored keys, and the pending
  /// (unverified-key) buffer. Overhead bytes are budgeted but reported by
  /// their owners.
  std::size_t bytes() const {
    return slots_.capacity() * sizeof(Slot) + heap_bytes_ +
           pending_.capacity() * sizeof(Key) + pending_heap_bytes_;
  }

  std::size_t max_bytes() const { return max_bytes_; }

  bool spilling() const { return runs_.has_value(); }
  std::size_t spilled_states() const {
    return runs_ ? runs_->records_spilled() : 0;
  }
  std::size_t spill_bytes() const { return runs_ ? runs_->bytes_written() : 0; }
  std::size_t spill_peak_bytes() const {
    return runs_ ? runs_->peak_disk_bytes() : 0;
  }
  std::size_t merge_passes() const { return runs_ ? runs_->merge_passes() : 0; }
  bool spill_io_error() const {
    return runs_ && runs_->last_failure() == bigstate::SpillFailure::Io;
  }

  /// True once the table refused to grow because the budget could not cover
  /// the rehash *transient* (old + new slot slab while re-homing) even
  /// though the grown table's steady-state footprint would have fit — the
  /// search stopped one doubling early. Sticky; surfaced by the searches as
  /// `table_headroom_stop` so the ROADMAP residual cap is observable.
  bool headroom_stop() const { return headroom_stop_; }

 private:
  struct Slot {
    Key key{};
    Entry entry{};
    bool occupied = false;
    bool verified = true;   ///< RAM g ≤ every spilled g for this key
    bool expanded = false;  ///< the state was expanded at exactly entry.g
    /// Duplicate open-queue items at entry.g that must pop (and be
    /// consumed) before the state's earliest-pushed item expands it —
    /// what keeps spilled expansion ORDER identical to in-memory: dups are
    /// pushed later, so LIFO buckets pop them first, and the real
    /// expansion still happens at the original item's queue position.
    std::uint16_t deferred = 0;
  };

  static constexpr std::size_t kInitialSlots = 1024;
  /// A spilling table never evicts below this population: budgets smaller
  /// than the working-set floor would otherwise degenerate into one-record
  /// runs. The budget is honored above the floor, best-effort below.
  static constexpr std::size_t kMinEvictEntries = 512;

  bool fits(std::size_t total) const {
    return max_bytes_ == 0 || total <= max_bytes_;
  }

  /// Budget gate for one fresh insert costing `extra` heap bytes: within
  /// budget, or shed the cold half first; below the working-set floor a
  /// spilling table admits the insert regardless (a table too small to
  /// evict from must still make progress). False = truly out of room
  /// (spilling off, or the disk budget is exhausted too).
  bool budget_insert(std::size_t extra) {
    if (fits(bytes() + overhead_bytes_ + extra)) return true;
    if (!spilling()) return false;
    if (size_ >= kMinEvictEntries && !make_room()) return false;
    return true;
  }

  Slot* find_slot(const Key& key) {
    if (slots_.empty()) return nullptr;
    std::size_t i = Packed::hash_key(key) & mask_;
    while (slots_[i].occupied) {
      if (slots_[i].key == key) return &slots_[i];
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  const Slot* find_slot(const Key& key) const {
    return const_cast<SpillingClosedTable*>(this)->find_slot(key);
  }

  /// Keep the load factor below 3/4: grow within the budget, else shed the
  /// cold half to disk (which halves the load instead).
  bool ensure_capacity() {
    if (!slots_.empty() && (size_ + 1) * 4 < slots_.size() * 3) return true;
    if (grow()) return true;
    if (make_room()) return true;
    if (grow_refused_for_headroom_ && !headroom_stop_) {
      // The capacity refusal that ends the search was a transient-only one:
      // the grown table would have fit, the copy peak would not. Record it
      // so the BudgetExhausted the caller is about to report can say so.
      headroom_stop_ = true;
      obs::trace_instant("table.headroom_stop", "table_bytes", bytes());
      obs::MetricsRegistry::instance().counter("table.headroom_stop").add();
    }
    return false;
  }

  bool grow() {
    const std::size_t new_cap =
        slots_.empty() ? kInitialSlots : slots_.size() * 2;
    // The rehash transient counts: the old slot array stays alive alongside
    // the new one until every occupied slot is re-homed below, so the peak
    // the budget must cover is old + new, not new alone.
    const std::size_t new_total = (new_cap + slots_.size()) * sizeof(Slot) +
                                  heap_bytes_ +
                                  pending_.capacity() * sizeof(Key) +
                                  pending_heap_bytes_ + overhead_bytes_;
    grow_refused_for_headroom_ = false;
    if (!fits(new_total)) {
      // Would the grown table have fit at steady state (new slab only, old
      // one freed)? Then this refusal is purely the rehash transient.
      const std::size_t steady_total =
          new_cap * sizeof(Slot) + heap_bytes_ +
          pending_.capacity() * sizeof(Key) + pending_heap_bytes_ +
          overhead_bytes_;
      grow_refused_for_headroom_ = fits(steady_total);
      // The first slab is the minimum working set a spilling table needs
      // to make progress; below it the budget is best-effort.
      if (!(spilling() && slots_.empty())) return false;
    }
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_cap, Slot{});
    mask_ = new_cap - 1;
    for (Slot& slot : old) {
      if (!slot.occupied) continue;
      std::size_t i = Packed::hash_key(slot.key) & mask_;
      while (slots_[i].occupied) i = (i + 1) & mask_;
      slots_[i] = std::move(slot);
    }
    return true;
  }

  Slot* insert_fresh(const Key& key, Entry entry) {
    std::size_t i = Packed::hash_key(key) & mask_;
    while (slots_[i].occupied) i = (i + 1) & mask_;
    Slot& slot = slots_[i];
    slot.key = key;
    slot.entry = std::move(entry);
    slot.occupied = true;
    slot.expanded = false;
    slot.deferred = 0;
    slot.verified = !runs_ || runs_->empty();
    heap_bytes_ +=
        Packed::key_heap_bytes(slot.key) + Packed::key_heap_bytes(slot.entry.parent);
    ++size_;
    if (!slot.verified) {
      pending_.push_back(slot.key);
      pending_heap_bytes_ += Packed::key_heap_bytes(slot.key);
    }
    return &slot;
  }

  /// The batched DDD pass: merge-join every unverified key against the
  /// spill runs and fold better-or-equal disk records into their RAM
  /// entries, restoring exact in-memory semantics for all of them.
  void reconcile() {
    if (pending_.empty()) return;
    if (runs_ && !runs_->empty()) {
      const obs::TraceSpan merge_span("spill.merge", "pending",
                                      pending_.size());
      const std::size_t kb = layout_.key_bytes;
      std::vector<std::uint32_t> order(pending_.size());
      std::iota(order.begin(), order.end(), 0u);
      std::vector<std::uint8_t> keys(pending_.size() * kb);
      for (std::size_t i = 0; i < pending_.size(); ++i) {
        Packed::key_serialize(pending_[i], keys.data() + i * kb);
      }
      std::sort(order.begin(), order.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  return std::memcmp(keys.data() + a * kb,
                                     keys.data() + b * kb, kb) < 0;
                });
      std::vector<std::uint8_t> sorted(keys.size());
      for (std::size_t i = 0; i < order.size(); ++i) {
        std::memcpy(sorted.data() + i * kb, keys.data() + order[i] * kb, kb);
      }
      runs_->batch_lookup(
          sorted.data(), order.size(),
          [&](std::size_t i, const std::uint8_t* rec) {
            Slot* slot = find_slot(pending_[order[i]]);
            RBPEB_ENSURE(slot != nullptr, "reconcile: pending key vanished");
            const std::int64_t disk_g = bigstate::spill_record_g(layout_, rec);
            const std::int64_t ram_g = slot->entry.g;
            if (disk_g > ram_g) return;  // stale disk history
            // The disk path was there first: adopt it (ties keep the first
            // inserter's tree edge, as the in-memory table would). If the
            // disk copy was expanded, the regenerated duplicate's queue
            // item dies at its pop; if it is still open at the same g, the
            // duplicate defers to the original's (earlier) queue item so
            // expansion order stays bit-identical to in-memory.
            const bool disk_expanded =
                bigstate::spill_record_expanded(layout_, rec);
            std::uint16_t deferred =
                bigstate::spill_record_deferred(layout_, rec);
            if (disk_g == ram_g && !disk_expanded &&
                deferred < std::numeric_limits<std::uint16_t>::max()) {
              // This fresh insert pushed one more duplicate. Saturating at
              // 65535 (would need that many evict/regenerate cycles of one
              // key at one g) degrades expansion ORDER locally, never
              // correctness: each (key, g) still expands at most once.
              ++deferred;
            }
            const std::size_t old_heap =
                Packed::key_heap_bytes(slot->entry.parent);
            slot->entry.g = disk_g;
            slot->entry.parent = Packed::key_deserialize(
                rec + layout_.parent_offset(), node_count_);
            slot->entry.via = bigstate::spill_record_via(layout_, rec);
            slot->expanded = disk_expanded;
            slot->deferred = deferred;
            heap_bytes_ += Packed::key_heap_bytes(slot->entry.parent);
            heap_bytes_ -= old_heap;
          });
    }
    for (const Key& key : pending_) {
      Slot* slot = find_slot(key);
      RBPEB_ENSURE(slot != nullptr, "reconcile: pending key vanished");
      slot->verified = true;
    }
    pending_.clear();
    pending_heap_bytes_ = 0;
  }

  /// Shed the cold half: settle every unverified entry first (eviction must
  /// write truth, not candidates), then spill the lowest-g half of the
  /// table into a fresh sorted run and drop it from RAM.
  bool make_room() {
    if (!spilling() || size_ == 0) return false;
    reconcile();
    const obs::TraceSpan evict_span("spill.evict", "entries", size_);
    std::vector<std::uint32_t> occupied;
    occupied.reserve(size_);
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].occupied) occupied.push_back(i);
    }
    const std::size_t evict_count = (occupied.size() + 1) / 2;
    // Lowest g-layer first: in a mostly-monotone best-first search those
    // are the levels the frontier has left behind — the cold end.
    std::nth_element(occupied.begin(), occupied.begin() + (evict_count - 1),
                     occupied.end(), [&](std::uint32_t a, std::uint32_t b) {
                       return slots_[a].entry.g < slots_[b].entry.g;
                     });
    const std::size_t rb = layout_.record_bytes();
    std::vector<std::uint8_t> records(evict_count * rb);
    for (std::size_t v = 0; v < evict_count; ++v) {
      const Slot& slot = slots_[occupied[v]];
      std::uint8_t* rec = records.data() + v * rb;
      Packed::key_serialize(slot.key, rec);
      Packed::key_serialize(slot.entry.parent, rec + layout_.parent_offset());
      bigstate::spill_record_store(layout_, rec, slot.entry.g, slot.entry.via,
                                   slot.expanded, slot.deferred);
    }
    bigstate::sort_spill_records(layout_, records.data(), evict_count);
    if (!runs_->append_run(records.data(), evict_count)) return false;
    {
      auto& registry = obs::MetricsRegistry::instance();
      registry.counter("spill.evict_passes").add();
      registry.counter("spill.evicted_states").add(evict_count);
    }
    // Rebuild the slot array without the victims (same capacity: the point
    // was shedding entries and their heap keys, not shrinking the slab).
    for (std::size_t v = 0; v < evict_count; ++v) {
      slots_[occupied[v]].occupied = false;
    }
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size(), Slot{});
    heap_bytes_ = 0;
    size_ = 0;
    for (Slot& slot : old) {
      if (!slot.occupied) continue;
      std::size_t i = Packed::hash_key(slot.key) & mask_;
      while (slots_[i].occupied) i = (i + 1) & mask_;
      heap_bytes_ += Packed::key_heap_bytes(slot.key) +
                     Packed::key_heap_bytes(slot.entry.parent);
      slots_[i] = std::move(slot);
      ++size_;
    }
    return true;
  }

  std::size_t node_count_ = 0;
  std::size_t max_bytes_ = 0;
  std::size_t overhead_bytes_ = 0;
  bool grow_refused_for_headroom_ = false;  ///< last grow() refusal kind
  bool headroom_stop_ = false;              ///< see headroom_stop()
  bigstate::SpillLayout layout_;
  std::optional<bigstate::SpillRunSet> runs_;
  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::size_t heap_bytes_ = 0;
  /// Scratch buffers for single-record disk lookups (begin_expansion, at):
  /// sized once, reused on the hot popped-an-evicted-key path instead of
  /// allocating per pop.
  std::uint8_t* key_scratch() const {
    key_scratch_.resize(layout_.key_bytes);
    return key_scratch_.data();
  }
  std::uint8_t* rec_scratch() const {
    rec_scratch_.resize(layout_.record_bytes());
    return rec_scratch_.data();
  }

  std::vector<Key> pending_;  ///< unverified keys since the last merge pass
  std::size_t pending_heap_bytes_ = 0;
  mutable std::vector<std::uint8_t> key_scratch_;
  mutable std::vector<std::uint8_t> rec_scratch_;
};

}  // namespace rbpeb
