// Variable-width packed game configurations — the state type that lifts the
// exact searches past the 42-node __uint128_t cap.
//
// Same 3-bit-per-node field layout as packed_state.hpp (node v at bits
// [3v, 3v+3), color in the low 2 bits, computed flag at 0x4), but over an
// array of 64-bit words instead of one machine word:
//
//  * small-buffer: two inline words cover 42 nodes (3·42 = 126 bits), so the
//    instances the fixed-width searches already handle never touch the heap;
//    wider DAGs spill to one heap allocation of ceil(3n/64) words;
//  * O(1) incremental updates: a move touches one 3-bit field, which lives in
//    at most two adjacent words (fields straddle a word boundary when
//    3v mod 64 > 61), so a successor key is derived from its parent by one or
//    two masked word updates — never an O(n) re-encode;
//  * incremental hash: the key's hash (XOR of a per-word SplitMix64
//    finalizer, salted by word index) is cached in the state and patched in
//    O(1) alongside each word update. HDA* shards states by hash, so the
//    owner of a generated neighbor is known without rescanning the key.
//
// VarPackedState is its own search key (Key = VarPackedState): the closed
// tables and mailboxes store it by value. Copies of spilled states allocate;
// at the 42–128-node scale this subsystem targets that is 1–6 words per
// generated neighbor, dwarfed by the per-neighbor bound evaluation.
//
// The word layout matches the fixed-width encodings exactly: word 0 equals
// the low 64 bits of the __uint128_t key, word 1 the high bits — asserted
// per move by the differential fuzz in tests/solvers/test_bigstate.cpp.
#pragma once

#include <cstdint>
#include <cstring>

#include "src/pebble/move.hpp"
#include "src/pebble/state.hpp"
#include "src/solvers/packed_state.hpp"

namespace rbpeb {

class VarPackedState {
 public:
  static constexpr std::size_t kBitsPerNode = 3;
  static constexpr std::size_t kInlineWords = 2;

  /// Largest node count the inline buffer holds (42, the fixed-width cap).
  static constexpr std::size_t max_inline_nodes() {
    return kInlineWords * 64 / kBitsPerNode;
  }

  /// Words needed for an n-node configuration.
  static constexpr std::size_t words_for(std::size_t node_count) {
    return (kBitsPerNode * node_count + 63) / 64;
  }

  /// The state is its own key: hashed, compared, and stored by value.
  using Key = VarPackedState;

  /// Zero-width state — the empty-slot sentinel of ClosedTable. Never a real
  /// configuration (every search instance has at least one word).
  VarPackedState() = default;

  /// All-empty configuration for an n-node DAG.
  explicit VarPackedState(std::size_t node_count)
      : word_count_(static_cast<std::uint32_t>(words_for(node_count))) {
    std::uint64_t* w = alloc_words();
    for (std::size_t i = 0; i < word_count_; ++i) w[i] = 0;
    hash_ = recompute_hash();
  }

  VarPackedState(const VarPackedState& o)
      : word_count_(o.word_count_), hash_(o.hash_) {
    std::uint64_t* w = alloc_words();
    std::memcpy(w, o.words(), word_count_ * sizeof(std::uint64_t));
  }

  VarPackedState(VarPackedState&& o) noexcept
      : word_count_(o.word_count_), hash_(o.hash_) {
    if (o.is_heap()) {
      heap_ = o.heap_;
      o.word_count_ = 0;
      o.hash_ = 0;
    } else {
      std::memcpy(inline_words_, o.inline_words_, sizeof(inline_words_));
    }
  }

  VarPackedState& operator=(const VarPackedState& o) {
    if (this == &o) return *this;
    if (word_count_ != o.word_count_) {
      release();
      word_count_ = o.word_count_;
      alloc_words();
    }
    hash_ = o.hash_;
    std::memcpy(words(), o.words(), word_count_ * sizeof(std::uint64_t));
    return *this;
  }

  VarPackedState& operator=(VarPackedState&& o) noexcept {
    if (this == &o) return *this;
    release();
    word_count_ = o.word_count_;
    hash_ = o.hash_;
    if (o.is_heap()) {
      heap_ = o.heap_;
      o.word_count_ = 0;
      o.hash_ = 0;
    } else {
      std::memcpy(inline_words_, o.inline_words_, sizeof(inline_words_));
    }
    return *this;
  }

  ~VarPackedState() { release(); }

  static VarPackedState from_state(const GameState& state) {
    VarPackedState packed(state.node_count());
    for (std::size_t v = 0; v < state.node_count(); ++v) {
      const NodeId node = static_cast<NodeId>(v);
      unsigned f = static_cast<unsigned>(state.color(node));
      if (state.was_computed(node)) f |= 4u;
      packed.set_field(node, f);
    }
    return packed;
  }

  GameState to_state(std::size_t node_count) const {
    GameState state(node_count);
    for (std::size_t v = 0; v < node_count; ++v) {
      const NodeId node = static_cast<NodeId>(v);
      state.set_color(node, color(node));
      if (was_computed(node)) state.mark_computed(node);
    }
    return state;
  }

  PebbleColor color(NodeId v) const {
    return static_cast<PebbleColor>(field(v) & 3u);
  }

  bool was_computed(NodeId v) const { return (field(v) & 4u) != 0; }

  void set_color(NodeId v, PebbleColor c) {
    set_field(v, (field(v) & 4u) | static_cast<unsigned>(c));
  }

  void mark_computed(NodeId v) { set_field(v, field(v) | 4u); }

  /// The successor configuration after a *legal* move — one or two masked
  /// word updates, mirroring BasicPackedState::apply / Engine::apply.
  VarPackedState apply(const Move& move) const {
    VarPackedState next = *this;
    switch (move.type) {
      case MoveType::Load:
        next.set_color(move.node, PebbleColor::Red);
        break;
      case MoveType::Store:
        next.set_color(move.node, PebbleColor::Blue);
        break;
      case MoveType::Compute:
        next.set_field(move.node,
                       static_cast<unsigned>(PebbleColor::Red) | 4u);
        break;
      case MoveType::Delete:
        next.set_color(move.node, PebbleColor::None);
        break;
    }
    return next;
  }

  // ---- key protocol (shared with BasicPackedState by the searches) -------

  const Key& key() const { return *this; }

  static VarPackedState from_key(const Key& key, std::size_t /*node_count*/) {
    return key;
  }

  static std::size_t hash_key(const Key& key) {
    return static_cast<std::size_t>(key.hash_);
  }

  /// Heap bytes owned by this key (0 while the inline buffer suffices);
  /// what ClosedTable adds to its byte accounting per stored key.
  static std::size_t key_heap_bytes(const Key& key) {
    return key.is_heap() ? key.word_count_ * sizeof(std::uint64_t) : 0;
  }

  /// Serialized key width for the disk spill runs (bigstate/spill.hpp): the
  /// word array, little-endian word order. Every key of one instance has
  /// the same word count, so spill records are fixed-size.
  static std::size_t key_serialized_bytes(std::size_t node_count) {
    return words_for(node_count) * sizeof(std::uint64_t);
  }

  static void key_serialize(const Key& key, std::uint8_t* out) {
    std::memcpy(out, key.words(), key.word_count_ * sizeof(std::uint64_t));
  }

  static Key key_deserialize(const std::uint8_t* in, std::size_t node_count) {
    VarPackedState key(node_count);
    std::memcpy(key.words(), in, key.word_count_ * sizeof(std::uint64_t));
    key.hash_ = key.recompute_hash();
    return key;
  }

  // ---- introspection (tests, diagnostics) --------------------------------

  std::size_t word_count() const { return word_count_; }
  std::uint64_t word(std::size_t i) const { return words()[i]; }
  std::uint64_t hash() const { return hash_; }

  /// The hash recomputed from scratch — what the cached, incrementally
  /// patched value must always equal.
  std::uint64_t recompute_hash() const {
    std::uint64_t h = 0;
    const std::uint64_t* w = words();
    for (std::size_t i = 0; i < word_count_; ++i) h ^= word_hash(w[i], i);
    return h;
  }

  bool operator==(const VarPackedState& o) const {
    if (word_count_ != o.word_count_) return false;
    return std::memcmp(words(), o.words(),
                       word_count_ * sizeof(std::uint64_t)) == 0;
  }

 private:
  bool is_heap() const { return word_count_ > kInlineWords; }

  const std::uint64_t* words() const {
    return is_heap() ? heap_ : inline_words_;
  }
  std::uint64_t* words() { return is_heap() ? heap_ : inline_words_; }

  /// Allocate storage for word_count_ words (heap iff it exceeds the inline
  /// buffer) and return the uninitialized word array.
  std::uint64_t* alloc_words() {
    if (is_heap()) heap_ = new std::uint64_t[word_count_];
    return words();
  }

  void release() {
    if (is_heap()) delete[] heap_;
  }

  /// Per-word hash contribution: SplitMix64 of the word salted by its index,
  /// XOR-combined so one word's change patches the total in O(1).
  static std::uint64_t word_hash(std::uint64_t w, std::size_t i) {
    return PackedKeyHash::mix(w + 0x9e3779b97f4a7c15ull * (i + 1));
  }

  unsigned field(NodeId v) const {
    const std::size_t bit = kBitsPerNode * static_cast<std::size_t>(v);
    const std::size_t i = bit >> 6;
    const unsigned off = static_cast<unsigned>(bit & 63);
    const std::uint64_t* w = words();
    std::uint64_t x = w[i] >> off;
    if (off > 61) x |= w[i + 1] << (64 - off);  // field straddles into i+1
    return static_cast<unsigned>(x & 7u);
  }

  void set_field(NodeId v, unsigned f) {
    const std::size_t bit = kBitsPerNode * static_cast<std::size_t>(v);
    const std::size_t i = bit >> 6;
    const unsigned off = static_cast<unsigned>(bit & 63);
    std::uint64_t* w = words();
    const std::uint64_t old_lo = w[i];
    w[i] = (w[i] & ~(std::uint64_t{7} << off)) | (std::uint64_t{f} << off);
    hash_ ^= word_hash(old_lo, i) ^ word_hash(w[i], i);
    if (off > 61) {  // the field's high bits live in the next word
      const unsigned kept = 64 - off;  // bits that stayed in word i
      const std::uint64_t old_hi = w[i + 1];
      w[i + 1] = (w[i + 1] & ~(std::uint64_t{7} >> kept)) |
                 (std::uint64_t{f} >> kept);
      hash_ ^= word_hash(old_hi, i + 1) ^ word_hash(w[i + 1], i + 1);
    }
  }

  std::uint32_t word_count_ = 0;
  std::uint64_t hash_ = 0;
  union {
    std::uint64_t inline_words_[kInlineWords] = {0, 0};
    std::uint64_t* heap_;
  };
};

}  // namespace rbpeb
