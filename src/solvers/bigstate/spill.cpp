#include "src/solvers/bigstate/spill.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <system_error>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/support/check.hpp"

namespace rbpeb::bigstate {

namespace fs = std::filesystem;

// ---- record field access --------------------------------------------------

std::int64_t spill_record_g(const SpillLayout& layout,
                            const std::uint8_t* rec) {
  std::int64_t g;
  std::memcpy(&g, rec + layout.g_offset(), sizeof(g));
  return g;
}

bool spill_record_expanded(const SpillLayout& layout, const std::uint8_t* rec) {
  return (rec[layout.flags_offset()] & kSpillFlagExpanded) != 0;
}

std::uint16_t spill_record_deferred(const SpillLayout& layout,
                                    const std::uint8_t* rec) {
  std::uint16_t deferred;
  std::memcpy(&deferred, rec + layout.deferred_offset(), sizeof(deferred));
  return deferred;
}

Move spill_record_via(const SpillLayout& layout, const std::uint8_t* rec) {
  std::uint32_t node;
  std::memcpy(&node, rec + layout.node_offset(), sizeof(node));
  return Move{static_cast<MoveType>(rec[layout.type_offset()]),
              static_cast<NodeId>(node)};
}

void spill_record_store(const SpillLayout& layout, std::uint8_t* rec,
                        std::int64_t g, Move via, bool expanded,
                        std::uint16_t deferred) {
  std::memcpy(rec + layout.g_offset(), &g, sizeof(g));
  const std::uint32_t node = static_cast<std::uint32_t>(via.node);
  std::memcpy(rec + layout.node_offset(), &node, sizeof(node));
  rec[layout.type_offset()] = static_cast<std::uint8_t>(via.type);
  rec[layout.flags_offset()] = expanded ? kSpillFlagExpanded : 0;
  std::memcpy(rec + layout.deferred_offset(), &deferred, sizeof(deferred));
}

bool spill_record_better(const SpillLayout& layout, const std::uint8_t* a,
                         const std::uint8_t* b) {
  const std::int64_t ga = spill_record_g(layout, a);
  const std::int64_t gb = spill_record_g(layout, b);
  if (ga != gb) return ga < gb;
  return spill_record_expanded(layout, a) && !spill_record_expanded(layout, b);
}

void sort_spill_records(const SpillLayout& layout, std::uint8_t* records,
                        std::size_t count) {
  const std::size_t rb = layout.record_bytes();
  std::vector<std::uint32_t> order(count);
  for (std::size_t i = 0; i < count; ++i) order[i] = static_cast<std::uint32_t>(i);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return std::memcmp(records + a * rb, records + b * rb,
                                 layout.key_bytes) < 0;
            });
  std::vector<std::uint8_t> sorted(count * rb);
  for (std::size_t i = 0; i < count; ++i) {
    std::memcpy(sorted.data() + i * rb, records + order[i] * rb, rb);
  }
  std::memcpy(records, sorted.data(), sorted.size());
}

// ---- SpillDirectory -------------------------------------------------------

SpillDirectory SpillDirectory::create(const std::string& base) {
  static std::atomic<std::uint64_t> counter{0};
  std::error_code ec;
  fs::path root = base.empty() ? fs::temp_directory_path(ec) : fs::path(base);
  RBPEB_REQUIRE(!ec, "spill: cannot resolve the system temp directory");
  const fs::path dir =
      root / ("rbpeb-spill-" +
              std::to_string(static_cast<unsigned long long>(::getpid())) +
              "-" + std::to_string(counter.fetch_add(1)));
  fs::create_directories(dir, ec);
  RBPEB_REQUIRE(!ec, "spill: cannot create spill directory " + dir.string());
  return SpillDirectory(dir.string());
}

SpillDirectory::SpillDirectory(SpillDirectory&& o) noexcept
    : path_(std::move(o.path_)) {
  o.path_.clear();
}

SpillDirectory& SpillDirectory::operator=(SpillDirectory&& o) noexcept {
  if (this == &o) return *this;
  remove_tree();
  path_ = std::move(o.path_);
  o.path_.clear();
  return *this;
}

SpillDirectory::~SpillDirectory() { remove_tree(); }

void SpillDirectory::remove_tree() noexcept {
  if (path_.empty()) return;
  std::error_code ec;
  fs::remove_all(path_, ec);  // best effort; never throws from a destructor
  path_.clear();
}

std::string SpillDirectory::partition(const std::string& name) const {
  const fs::path dir = fs::path(path_) / name;
  std::error_code ec;
  fs::create_directories(dir, ec);
  RBPEB_REQUIRE(!ec, "spill: cannot create partition " + dir.string());
  return dir.string();
}

// ---- SpillRunSet ----------------------------------------------------------

namespace {

/// Runs beyond this count are folded into one before the next append: point
/// lookups pay one binary search per run, so unbounded run counts would turn
/// every duplicate check into a linear scan over search history.
constexpr std::size_t kMaxRuns = 8;

/// Records per buffered chunk while streaming a run sequentially.
constexpr std::size_t kChunkRecords = 1024;

/// Batches below this size resolve by per-key binary search; a full
/// merge-join sweep over every run only pays off once the batch is wide.
constexpr std::size_t kPointLookupBatch = 64;

/// Sequential chunked reader over one run file.
class RunReader {
 public:
  RunReader(std::ifstream& stream, std::size_t records, std::size_t rb)
      : stream_(stream), remaining_(records), rb_(rb) {
    stream_.clear();
    stream_.seekg(0);
    buffer_.resize(kChunkRecords * rb_);
    refill();
  }

  const std::uint8_t* front() const {
    return done() ? nullptr : buffer_.data() + pos_ * rb_;
  }

  bool done() const { return pos_ == filled_ && remaining_ == 0; }

  void advance() {
    ++pos_;
    if (pos_ == filled_) refill();
  }

 private:
  void refill() {
    pos_ = 0;
    filled_ = std::min(remaining_, kChunkRecords);
    remaining_ -= filled_;
    if (filled_ > 0) {
      stream_.read(reinterpret_cast<char*>(buffer_.data()),
                   static_cast<std::streamsize>(filled_ * rb_));
      // A short or failed read would hand the merge fabricated records —
      // and a fabricated g could end up "proving" a wrong optimum. Crash
      // instead (the project's silent-corruption-is-worse-than-a-crash
      // rule; check.hpp).
      RBPEB_ENSURE(stream_.good(), "spill: run read failed mid-merge");
    }
  }

  std::ifstream& stream_;
  std::size_t remaining_;
  std::size_t rb_;
  std::vector<std::uint8_t> buffer_;
  std::size_t pos_ = 0;
  std::size_t filled_ = 0;
};

}  // namespace

SpillRunSet::SpillRunSet(SpillLayout layout, std::string dir,
                         std::size_t max_disk_bytes)
    : layout_(layout), dir_(std::move(dir)), max_disk_bytes_(max_disk_bytes) {}

bool SpillRunSet::write_run(const std::uint8_t* records, std::size_t count) {
  const std::size_t bytes = count * layout_.record_bytes();
  const std::string path =
      (fs::path(dir_) / ("run-" + std::to_string(next_run_id_++) + ".spill"))
          .string();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(reinterpret_cast<const char*>(records),
              static_cast<std::streamsize>(bytes));
    if (!out) {
      // A half-written run is useless and sits on an already-full disk;
      // free the space at the failure point, not at directory teardown.
      std::error_code ec;
      fs::remove(path, ec);
      return false;
    }
  }
  auto run = std::make_unique<Run>();
  run->path = path;
  run->records = count;
  run->stream.open(path, std::ios::binary);
  if (!run->stream) return false;
  runs_.push_back(std::move(run));
  disk_bytes_ += bytes;
  peak_disk_bytes_ = std::max(peak_disk_bytes_, disk_bytes_);
  bytes_written_ += bytes;
  return true;
}

bool SpillRunSet::append_run(const std::uint8_t* records, std::size_t count) {
  if (count == 0) return true;
  const std::size_t bytes = count * layout_.record_bytes();
  if (runs_.size() >= kMaxRuns ||
      (max_disk_bytes_ != 0 && !runs_.empty() &&
       disk_bytes_ + bytes > max_disk_bytes_)) {
    if (!compact()) {
      last_failure_ = SpillFailure::Io;
      return false;
    }
  }
  if (max_disk_bytes_ != 0 && disk_bytes_ + bytes > max_disk_bytes_) {
    last_failure_ = SpillFailure::DiskBudget;
    return false;  // disk budget exhausted even after compaction
  }
  if (!write_run(records, count)) {
    last_failure_ = SpillFailure::Io;
    return false;
  }
  records_spilled_ += count;
  return true;
}

bool SpillRunSet::compact() {
  if (runs_.size() < 2) return true;
  ++merge_passes_;
  const obs::TraceSpan span("spill.compact", "runs", runs_.size());
  obs::MetricsRegistry::instance().counter("spill.compactions").add();
  const std::size_t rb = layout_.record_bytes();
  std::vector<RunReader> readers;
  readers.reserve(runs_.size());
  for (const auto& run : runs_) {
    readers.emplace_back(run->stream, run->records, rb);
  }
  const std::string path =
      (fs::path(dir_) / ("run-" + std::to_string(next_run_id_++) + ".spill"))
          .string();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  std::vector<std::uint8_t> best(rb);
  std::vector<std::uint8_t> min_key(layout_.key_bytes);
  std::vector<std::uint8_t> write_buffer;
  write_buffer.reserve(kChunkRecords * rb);
  std::size_t merged = 0;
  while (true) {
    // Smallest front key across readers (copied out: advancing a reader
    // invalidates its front); all records carrying it fold into one best
    // record (min g; expanded beats open at equal g).
    bool have_key = false;
    for (RunReader& reader : readers) {
      const std::uint8_t* front = reader.front();
      if (front == nullptr) continue;
      if (!have_key ||
          std::memcmp(front, min_key.data(), layout_.key_bytes) < 0) {
        std::memcpy(min_key.data(), front, layout_.key_bytes);
        have_key = true;
      }
    }
    if (!have_key) break;
    bool have_best = false;
    for (RunReader& reader : readers) {
      const std::uint8_t* front = reader.front();
      while (front != nullptr &&
             std::memcmp(front, min_key.data(), layout_.key_bytes) == 0) {
        // Newest (later run) wins ties: its bookkeeping — the deferred-
        // duplicate count in particular — supersedes older snapshots.
        if (!have_best || !spill_record_better(layout_, best.data(), front)) {
          std::memcpy(best.data(), front, rb);
          have_best = true;
        }
        reader.advance();
        front = reader.front();
      }
    }
    write_buffer.insert(write_buffer.end(), best.begin(), best.end());
    ++merged;
    if (write_buffer.size() >= kChunkRecords * rb) {
      out.write(reinterpret_cast<const char*>(write_buffer.data()),
                static_cast<std::streamsize>(write_buffer.size()));
      write_buffer.clear();
    }
  }
  if (!write_buffer.empty()) {
    out.write(reinterpret_cast<const char*>(write_buffer.data()),
              static_cast<std::streamsize>(write_buffer.size()));
  }
  out.close();
  if (!out) return false;
  bytes_written_ += merged * rb;
  // The compaction transient: the merged output coexists with every old run
  // until drop_runs() below — the on-disk high-water mark this run set ever
  // reaches, and what spill_peak_bytes reports for provisioning.
  peak_disk_bytes_ = std::max(peak_disk_bytes_, disk_bytes_ + merged * rb);
  drop_runs();
  auto run = std::make_unique<Run>();
  run->path = path;
  run->records = merged;
  run->stream.open(path, std::ios::binary);
  if (!run->stream) return false;
  disk_bytes_ = merged * rb;
  runs_.push_back(std::move(run));
  return true;
}

void SpillRunSet::drop_runs() {
  std::error_code ec;
  for (const auto& run : runs_) {
    run->stream.close();
    fs::remove(run->path, ec);  // best effort
  }
  runs_.clear();
  disk_bytes_ = 0;
}

bool SpillRunSet::lookup_in_run(const Run& run, const std::uint8_t* key,
                                std::uint8_t* out) const {
  const std::size_t rb = layout_.record_bytes();
  std::size_t lo = 0;
  std::size_t hi = run.records;
  run.stream.clear();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    run.stream.seekg(static_cast<std::streamoff>(mid * rb));
    run.stream.read(reinterpret_cast<char*>(out),
                    static_cast<std::streamsize>(rb));
    // Same rule as RunReader::refill: a failed read must never pass a
    // fabricated record off as the duplicate-detection truth.
    RBPEB_ENSURE(run.stream.good(), "spill: run read failed during lookup");
    const int cmp = std::memcmp(out, key, layout_.key_bytes);
    if (cmp == 0) return true;
    if (cmp < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return false;
}

bool SpillRunSet::lookup(const std::uint8_t* key, std::uint8_t* out) const {
  const std::size_t rb = layout_.record_bytes();
  lookup_scratch_.resize(rb);
  std::vector<std::uint8_t>& candidate = lookup_scratch_;
  bool found = false;
  for (const auto& run : runs_) {
    if (!lookup_in_run(*run, key, candidate.data())) continue;
    // Runs iterate oldest→newest; the newest record wins ties.
    if (!found || !spill_record_better(layout_, out, candidate.data())) {
      std::memcpy(out, candidate.data(), rb);
    }
    found = true;
  }
  return found;
}

void SpillRunSet::batch_lookup(
    const std::uint8_t* keys, std::size_t count,
    const std::function<void(std::size_t, const std::uint8_t*)>& on_match) {
  if (runs_.empty() || count == 0) return;
  ++merge_passes_;
  const std::size_t rb = layout_.record_bytes();
  const std::size_t kb = layout_.key_bytes;
  if (count < kPointLookupBatch) {
    std::vector<std::uint8_t> best(rb);
    for (std::size_t i = 0; i < count; ++i) {
      if (lookup(keys + i * kb, best.data())) on_match(i, best.data());
    }
    return;
  }
  // Wide batch: one sequential merge-join sweep per run, folding matches
  // into a per-key best buffer so the callback sees cross-run winners only.
  std::vector<std::uint8_t> best(count * rb);
  std::vector<char> found(count, 0);
  for (const auto& run : runs_) {
    RunReader reader(run->stream, run->records, rb);
    std::size_t i = 0;
    while (i < count) {
      const std::uint8_t* front = reader.front();
      if (front == nullptr) break;
      const int cmp = std::memcmp(front, keys + i * kb, kb);
      if (cmp < 0) {
        reader.advance();
      } else if (cmp > 0) {
        ++i;
      } else {
        std::uint8_t* slot = best.data() + i * rb;
        // Runs iterate oldest→newest; the newest record wins ties.
        if (!found[i] || !spill_record_better(layout_, slot, front)) {
          std::memcpy(slot, front, rb);
        }
        found[i] = 1;
        reader.advance();
        ++i;
      }
    }
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (found[i]) on_match(i, best.data() + i * rb);
  }
}

}  // namespace rbpeb::bigstate
