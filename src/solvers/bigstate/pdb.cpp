#include "src/solvers/bigstate/pdb.hpp"

#include <algorithm>

#include "src/graph/dag_algorithms.hpp"
#include "src/pebble/bounds.hpp"
#include "src/solvers/bucket_queue.hpp"
#include "src/support/check.hpp"

namespace rbpeb {

std::vector<std::vector<NodeId>> partition_into_patterns(
    const Dag& dag, std::size_t max_pattern_size) {
  const std::size_t cap =
      std::clamp<std::size_t>(max_pattern_size, 1,
                              PatternDatabase::kMaxPatternSize);
  const std::size_t n = dag.node_count();
  std::vector<std::vector<NodeId>> patterns;
  std::vector<std::size_t> pattern_of(n, static_cast<std::size_t>(-1));
  for (NodeId v : topological_order(dag)) {
    // Count how many of v's direct predecessors each open pattern holds;
    // joining the densest one keeps ancestor cones together, which is where
    // the pebbling interaction the heuristic should see lives.
    std::size_t best = static_cast<std::size_t>(-1);
    std::size_t best_preds = 0;
    for (NodeId p : dag.predecessors(v)) {
      const std::size_t candidate = pattern_of[p];
      if (patterns[candidate].size() >= cap) continue;
      std::size_t preds_here = 0;
      for (NodeId q : dag.predecessors(v)) {
        if (pattern_of[q] == candidate) ++preds_here;
      }
      if (preds_here > best_preds) {
        best_preds = preds_here;
        best = candidate;
      }
    }
    if (best == static_cast<std::size_t>(-1)) {
      // No predecessor pattern has room (or v is a source): reuse the most
      // recently opened pattern when it has room — fewer, fuller patterns
      // mean fewer table lookups per evaluation — else open a fresh one.
      if (!patterns.empty() && patterns.back().size() < cap) {
        best = patterns.size() - 1;
      } else {
        patterns.emplace_back();
        best = patterns.size() - 1;
      }
    }
    pattern_of[v] = best;
    patterns[best].push_back(v);
  }
  return patterns;
}

namespace {

/// 3-bit field of position `i` inside a packed projection index.
inline unsigned field_at(std::size_t index, std::size_t i) {
  return static_cast<unsigned>((index >> (3 * i)) & 7u);
}

inline std::size_t with_field(std::size_t index, std::size_t i, unsigned f) {
  const std::size_t shift = 3 * i;
  return (index & ~(std::size_t{7} << shift)) |
         (static_cast<std::size_t>(f) << shift);
}

/// Colors are 2 bits; 3 never occurs in a real projection. Indices holding
/// it are skipped outright.
inline bool valid_index(std::size_t index, std::size_t p) {
  for (std::size_t i = 0; i < p; ++i) {
    if ((field_at(index, i) & 3u) == 3u) return false;
  }
  return true;
}

}  // namespace

PatternDatabase::PatternDatabase(const Engine& engine,
                                 std::size_t max_pattern_size,
                                 const StopPredicate& should_stop) {
  const Dag& dag = engine.dag();
  const std::size_t size =
      max_pattern_size == 0 ? kDefaultPatternSize : max_pattern_size;
  std::vector<std::vector<NodeId>> node_sets =
      partition_into_patterns(dag, size);
  const std::int64_t cost_cap =
      universal_search_ceiling_scaled(dag, engine.model());
  patterns_.resize(node_sets.size());
  for (std::size_t p = 0; p < node_sets.size(); ++p) {
    if (aborted_) break;
    Pattern& pattern = patterns_[p];
    pattern.nodes = std::move(node_sets[p]);
    const std::size_t width = pattern.nodes.size();
    pattern.pred_positions.resize(width);
    pattern.is_source.resize(width);
    for (std::size_t i = 0; i < width; ++i) {
      const NodeId v = pattern.nodes[i];
      pattern.is_source[i] = dag.is_source(v);
      if (dag.is_sink(v)) pattern.sink_positions.push_back(i);
      for (NodeId u : dag.predecessors(v)) {
        for (std::size_t j = 0; j < width; ++j) {
          if (pattern.nodes[j] == u) pattern.pred_positions[i].push_back(j);
        }
      }
    }
    build_pattern(engine, pattern, cost_cap, should_stop);
    table_bytes_ += pattern.completion.size() * sizeof(std::int32_t);
  }
}

void PatternDatabase::build_pattern(const Engine& engine, Pattern& pattern,
                                    std::int64_t cost_cap,
                                    const StopPredicate& should_stop) {
  const Model& model = engine.model();
  const PebblingConvention& conv = engine.convention();
  const std::size_t p = pattern.nodes.size();
  const std::size_t table_size = std::size_t{1} << (3 * p);
  const std::int64_t r = static_cast<std::int64_t>(engine.red_limit());
  const std::int64_t eps_num = model.epsilon().num();
  const std::int64_t eps_den = model.epsilon().den();

  auto red_in_pattern = [&](std::size_t index) {
    std::int64_t red = 0;
    for (std::size_t i = 0; i < p; ++i) {
      if ((field_at(index, i) & 3u) ==
          static_cast<unsigned>(PebbleColor::Red)) {
        ++red;
      }
    }
    return red;
  };

  // Forward legality of a move on position `i` in abstract state `index`:
  // every constraint of Engine::why_illegal that only mentions nodes of the
  // pattern. A concrete-legal move on the node is always abstract-legal on
  // the projection, which is what makes the table admissible.
  auto legal = [&](std::size_t index, std::size_t i, MoveType type) {
    const unsigned f = field_at(index, i);
    const auto color = static_cast<PebbleColor>(f & 3u);
    switch (type) {
      case MoveType::Load:
        return color == PebbleColor::Blue && red_in_pattern(index) < r;
      case MoveType::Store:
        return color == PebbleColor::Red;
      case MoveType::Compute: {
        if (conv.sources_start_blue && pattern.is_source[i]) return false;
        if (!model.allows_recompute() && (f & 4u) != 0) return false;
        if (color == PebbleColor::Red) return false;
        for (std::size_t j : pattern.pred_positions[i]) {
          if ((field_at(index, j) & 3u) !=
              static_cast<unsigned>(PebbleColor::Red)) {
            return false;
          }
        }
        return red_in_pattern(index) < r;
      }
      case MoveType::Delete:
        return model.allows_delete() && color != PebbleColor::None;
    }
    return false;
  };

  auto is_goal = [&](std::size_t index) {
    for (std::size_t i : pattern.sink_positions) {
      const auto color = static_cast<PebbleColor>(field_at(index, i) & 3u);
      if (conv.sinks_end_blue ? color != PebbleColor::Blue
                              : color == PebbleColor::None) {
        return false;
      }
    }
    return true;
  };

  // Backward Dijkstra from every complete projection over move pre-images.
  // Distances clamp at cost_cap (an underestimate, so still admissible —
  // and never reached in practice: cost_cap is the Section 3 universal
  // ceiling for the whole DAG).
  pattern.completion.assign(table_size, kUnreachable);
  BucketQueue<std::uint32_t> queue(static_cast<std::size_t>(cost_cap) + 1);
  // The goal sweep and the Dijkstra below are the only unbounded loops in a
  // PDB build; both poll the cooperative stop hook so a cancelled solve is
  // never pinned behind an 8^8-entry table (the searches' poll cadence,
  // scaled up — these iterations are far cheaper than an expansion).
  constexpr std::size_t kStopPollMask = 0xFFFu;
  for (std::size_t index = 0; index < table_size; ++index) {
    if ((index & kStopPollMask) == 0 && should_stop && should_stop()) {
      aborted_ = true;
      return;
    }
    if (!valid_index(index, p)) continue;
    if (is_goal(index)) {
      pattern.completion[index] = 0;
      queue.push(0, static_cast<std::uint32_t>(index));
    }
  }

  auto relax = [&](std::size_t pre, MoveType type, std::size_t i,
                   std::int64_t d, std::int64_t cost) {
    if (!legal(pre, i, type)) return;
    const std::int64_t nd = std::min(d + cost, cost_cap);
    std::int32_t& entry = pattern.completion[pre];
    if (entry != kUnreachable && entry <= nd) return;
    entry = static_cast<std::int32_t>(nd);
    queue.push(nd, static_cast<std::uint32_t>(pre));
  };

  std::size_t pops = 0;
  while (!queue.empty()) {
    if ((pops++ & kStopPollMask) == 0 && should_stop && should_stop()) {
      aborted_ = true;
      return;
    }
    auto [d, popped] = queue.pop();
    const auto index = static_cast<std::size_t>(popped);
    if (pattern.completion[index] != d) continue;  // stale duplicate
    for (std::size_t i = 0; i < p; ++i) {
      const unsigned f = field_at(index, i);
      const unsigned computed = f & 4u;
      switch (static_cast<PebbleColor>(f & 3u)) {
        case PebbleColor::Red:
          // Load lands on Red from Blue, computed untouched.
          relax(with_field(index, i,
                           static_cast<unsigned>(PebbleColor::Blue) | computed),
                MoveType::Load, i, d, eps_den);
          if (computed != 0) {
            // Compute lands on Red+computed from None or Blue, either prior
            // computed flag (legal() enforces the oneshot rule).
            for (unsigned prior_color :
                 {static_cast<unsigned>(PebbleColor::None),
                  static_cast<unsigned>(PebbleColor::Blue)}) {
              for (unsigned prior_computed : {0u, 4u}) {
                relax(with_field(index, i, prior_color | prior_computed),
                      MoveType::Compute, i, d, eps_num);
              }
            }
          }
          break;
        case PebbleColor::Blue:
          relax(with_field(index, i,
                           static_cast<unsigned>(PebbleColor::Red) | computed),
                MoveType::Store, i, d, eps_den);
          break;
        case PebbleColor::None:
          for (unsigned prior_color :
               {static_cast<unsigned>(PebbleColor::Red),
                static_cast<unsigned>(PebbleColor::Blue)}) {
            relax(with_field(index, i, prior_color | computed),
                  MoveType::Delete, i, d, 0);
          }
          break;
      }
    }
  }
}

}  // namespace rbpeb
