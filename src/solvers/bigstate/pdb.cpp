#include "src/solvers/bigstate/pdb.hpp"

#include <algorithm>
#include <limits>

#include "src/graph/dag_algorithms.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/pebble/bounds.hpp"
#include "src/solvers/bucket_queue.hpp"
#include "src/support/check.hpp"

namespace rbpeb {

std::vector<std::vector<NodeId>> partition_into_patterns(
    const Dag& dag, std::size_t max_pattern_size) {
  const std::size_t cap =
      std::clamp<std::size_t>(max_pattern_size, 1,
                              PatternDatabase::kMaxHashedPatternSize);
  const std::size_t n = dag.node_count();
  std::vector<std::vector<NodeId>> patterns;
  std::vector<std::size_t> pattern_of(n, static_cast<std::size_t>(-1));
  for (NodeId v : topological_order(dag)) {
    // Count how many of v's direct predecessors each open pattern holds;
    // joining the densest one keeps ancestor cones together, which is where
    // the pebbling interaction the heuristic should see lives.
    std::size_t best = static_cast<std::size_t>(-1);
    std::size_t best_preds = 0;
    for (NodeId p : dag.predecessors(v)) {
      const std::size_t candidate = pattern_of[p];
      if (patterns[candidate].size() >= cap) continue;
      std::size_t preds_here = 0;
      for (NodeId q : dag.predecessors(v)) {
        if (pattern_of[q] == candidate) ++preds_here;
      }
      if (preds_here > best_preds) {
        best_preds = preds_here;
        best = candidate;
      }
    }
    if (best == static_cast<std::size_t>(-1)) {
      // No predecessor pattern has room (or v is a source): reuse the most
      // recently opened pattern when it has room — fewer, fuller patterns
      // mean fewer table lookups per evaluation — else open a fresh one.
      if (!patterns.empty() && patterns.back().size() < cap) {
        best = patterns.size() - 1;
      } else {
        patterns.emplace_back();
        best = patterns.size() - 1;
      }
    }
    pattern_of[v] = best;
    patterns[best].push_back(v);
  }
  return patterns;
}

std::vector<std::vector<NodeId>> partition_into_patterns_mincut(
    const Dag& dag, std::size_t max_pattern_size) {
  const std::size_t cap =
      std::clamp<std::size_t>(max_pattern_size, 1,
                              PatternDatabase::kMaxHashedPatternSize);
  const std::size_t n = dag.node_count();
  if (n == 0) return {};
  const std::vector<NodeId> order = topological_order(dag);
  std::vector<std::size_t> pos(n, 0);
  for (std::size_t i = 0; i < n; ++i) pos[order[i]] = i;

  // crossing[k] = number of edges (u, v) with pos[u] < k <= pos[v] — the
  // edges a segment boundary at k abstracts away. Built as a difference
  // array: each edge crosses every boundary in (pos[u], pos[v]].
  std::vector<std::int64_t> crossing(n + 2, 0);
  for (std::size_t v = 0; v < n; ++v) {
    for (NodeId u : dag.predecessors(static_cast<NodeId>(v))) {
      const std::size_t lo = pos[u];
      const std::size_t hi = pos[v];
      crossing[lo + 1] += 1;
      crossing[hi + 1] -= 1;
    }
  }
  for (std::size_t k = 1; k <= n; ++k) crossing[k] += crossing[k - 1];

  // dp[k] = cheapest total crossing weight of the boundaries partitioning
  // the first k order positions into segments of at most `cap` nodes.
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 2;
  std::vector<std::int64_t> dp(n + 1, kInf);
  std::vector<std::size_t> parent(n + 1, 0);
  dp[0] = 0;
  for (std::size_t k = 1; k <= n; ++k) {
    const std::size_t lo = k > cap ? k - cap : 0;
    for (std::size_t j = lo; j < k; ++j) {
      if (dp[j] == kInf) continue;
      // The boundary at k costs its crossing edges; the final boundary at n
      // closes the last segment for free (nothing crosses past the end).
      const std::int64_t cost = dp[j] + (k < n ? crossing[k] : 0);
      if (cost < dp[k]) {
        dp[k] = cost;
        parent[k] = j;
      }
    }
  }

  std::vector<std::size_t> cuts;
  for (std::size_t k = n; k > 0; k = parent[k]) cuts.push_back(k);
  std::reverse(cuts.begin(), cuts.end());
  std::vector<std::vector<NodeId>> patterns;
  std::size_t start = 0;
  for (std::size_t cut : cuts) {
    patterns.emplace_back(order.begin() + static_cast<std::ptrdiff_t>(start),
                          order.begin() + static_cast<std::ptrdiff_t>(cut));
    start = cut;
  }
  return patterns;
}

namespace {

/// 3-bit field of position `i` inside a packed projection index.
inline unsigned field_at(std::size_t index, std::size_t i) {
  return static_cast<unsigned>((index >> (3 * i)) & 7u);
}

inline std::size_t with_field(std::size_t index, std::size_t i, unsigned f) {
  const std::size_t shift = 3 * i;
  return (index & ~(std::size_t{7} << shift)) |
         (static_cast<std::size_t>(f) << shift);
}

/// Colors are 2 bits; 3 never occurs in a real projection. Indices holding
/// it are skipped outright.
inline bool valid_index(std::size_t index, std::size_t p) {
  for (std::size_t i = 0; i < p; ++i) {
    if ((field_at(index, i) & 3u) == 3u) return false;
  }
  return true;
}

}  // namespace

bool PatternDatabase::HashedTable::grow(std::size_t* total_bytes,
                                        std::size_t byte_budget) {
  const std::size_t new_cap = slots_.empty() ? 1024 : slots_.size() * 2;
  // The rehash transient: the old and the new slot arrays coexist until the
  // re-insertion below finishes, and both count against the budget.
  const std::size_t old_bytes = bytes();
  const std::size_t new_bytes = new_cap * sizeof(Slot);
  if (*total_bytes + new_bytes > byte_budget) return false;
  std::vector<Slot> old = std::move(slots_);
  *total_bytes += new_bytes;
  slots_.assign(new_cap, Slot{});
  const std::size_t mask = new_cap - 1;
  for (const Slot& slot : old) {
    if (slot.key == kEmptyKey) continue;
    std::size_t s = hash(slot.key) & mask;
    while (slots_[s].key != kEmptyKey) s = (s + 1) & mask;
    slots_[s] = slot;
  }
  old.clear();
  old.shrink_to_fit();
  *total_bytes -= old_bytes;
  return true;
}

PatternDatabase::HashedTable::Slot* PatternDatabase::HashedTable::find_or_insert(
    std::uint64_t key, std::size_t* total_bytes, std::size_t byte_budget) {
  // Grow at 50% load (or on first insert) to keep probe chains short.
  if (slots_.empty() || 2 * (size_ + 1) > slots_.size()) {
    if (!grow(total_bytes, byte_budget)) {
      // Lookups of existing entries must still work after a refused growth.
      if (slots_.empty()) return nullptr;
      if (2 * size_ >= slots_.size()) return nullptr;  // genuinely full
    }
  }
  const std::size_t mask = slots_.size() - 1;
  for (std::size_t s = hash(key) & mask;; s = (s + 1) & mask) {
    Slot& slot = slots_[s];
    if (slot.key == key) return &slot;
    if (slot.key == kEmptyKey) {
      slot.key = key;
      ++size_;
      return &slot;
    }
  }
}

PatternDatabase::PatternDatabase(const Engine& engine,
                                 std::size_t max_pattern_size,
                                 const StopPredicate& should_stop,
                                 PdbPartition partition,
                                 std::size_t table_byte_budget,
                                 bool force_hashed) {
  const Dag& dag = engine.dag();
  const std::size_t size =
      max_pattern_size == 0 ? kDefaultPatternSize : max_pattern_size;
  std::vector<std::vector<NodeId>> node_sets =
      partition == PdbPartition::MinCut
          ? partition_into_patterns_mincut(dag, size)
          : partition_into_patterns(dag, size);
  const std::int64_t cost_cap =
      universal_search_ceiling_scaled(dag, engine.model());
  const std::size_t byte_budget =
      table_byte_budget == 0 ? kDefaultHashedTableBytes : table_byte_budget;
  const obs::TraceSpan build_span("pdb.build", "patterns", node_sets.size());
  patterns_.resize(node_sets.size());
  for (std::size_t p = 0; p < node_sets.size(); ++p) {
    if (aborted_) break;
    const obs::TraceSpan pattern_span("pdb.pattern", "width",
                                      node_sets[p].size());
    Pattern& pattern = patterns_[p];
    pattern.nodes = std::move(node_sets[p]);
    const std::size_t width = pattern.nodes.size();
    pattern.pred_positions.resize(width);
    pattern.is_source.resize(width);
    for (std::size_t i = 0; i < width; ++i) {
      const NodeId v = pattern.nodes[i];
      pattern.is_source[i] = dag.is_source(v);
      if (dag.is_sink(v)) pattern.sink_positions.push_back(i);
      for (NodeId u : dag.predecessors(v)) {
        for (std::size_t j = 0; j < width; ++j) {
          if (pattern.nodes[j] == u) pattern.pred_positions[i].push_back(j);
        }
      }
    }
    if (width > kMaxPatternSize || force_hashed) {
      pattern.hashed = true;
      build_pattern_hashed(engine, pattern, cost_cap, should_stop,
                           byte_budget);
    } else {
      build_pattern(engine, pattern, cost_cap, should_stop);
      table_bytes_ += pattern.completion.size() * sizeof(std::int32_t);
    }
  }
  table_bytes_ += hashed_bytes_;
  auto& registry = obs::MetricsRegistry::instance();
  registry.counter("pdb.builds").add();
  registry.gauge("pdb.table_bytes").set(static_cast<std::int64_t>(table_bytes_));
}

void PatternDatabase::build_pattern(const Engine& engine, Pattern& pattern,
                                    std::int64_t cost_cap,
                                    const StopPredicate& should_stop) {
  const Model& model = engine.model();
  const PebblingConvention& conv = engine.convention();
  const std::size_t p = pattern.nodes.size();
  const std::size_t table_size = std::size_t{1} << (3 * p);
  const std::int64_t r = static_cast<std::int64_t>(engine.red_limit());
  const std::int64_t eps_num = model.epsilon().num();
  const std::int64_t eps_den = model.epsilon().den();

  auto red_in_pattern = [&](std::size_t index) {
    std::int64_t red = 0;
    for (std::size_t i = 0; i < p; ++i) {
      if ((field_at(index, i) & 3u) ==
          static_cast<unsigned>(PebbleColor::Red)) {
        ++red;
      }
    }
    return red;
  };

  // Forward legality of a move on position `i` in abstract state `index`:
  // every constraint of Engine::why_illegal that only mentions nodes of the
  // pattern. A concrete-legal move on the node is always abstract-legal on
  // the projection, which is what makes the table admissible.
  auto legal = [&](std::size_t index, std::size_t i, MoveType type) {
    const unsigned f = field_at(index, i);
    const auto color = static_cast<PebbleColor>(f & 3u);
    switch (type) {
      case MoveType::Load:
        return color == PebbleColor::Blue && red_in_pattern(index) < r;
      case MoveType::Store:
        return color == PebbleColor::Red;
      case MoveType::Compute: {
        if (conv.sources_start_blue && pattern.is_source[i]) return false;
        if (!model.allows_recompute() && (f & 4u) != 0) return false;
        if (color == PebbleColor::Red) return false;
        for (std::size_t j : pattern.pred_positions[i]) {
          if ((field_at(index, j) & 3u) !=
              static_cast<unsigned>(PebbleColor::Red)) {
            return false;
          }
        }
        return red_in_pattern(index) < r;
      }
      case MoveType::Delete:
        return model.allows_delete() && color != PebbleColor::None;
    }
    return false;
  };

  auto is_goal = [&](std::size_t index) {
    for (std::size_t i : pattern.sink_positions) {
      const auto color = static_cast<PebbleColor>(field_at(index, i) & 3u);
      if (conv.sinks_end_blue ? color != PebbleColor::Blue
                              : color == PebbleColor::None) {
        return false;
      }
    }
    return true;
  };

  // Backward Dijkstra from every complete projection over move pre-images.
  // Distances clamp at cost_cap (an underestimate, so still admissible —
  // and never reached in practice: cost_cap is the Section 3 universal
  // ceiling for the whole DAG).
  pattern.completion.assign(table_size, kUnreachable);
  BucketQueue<std::uint32_t> queue(static_cast<std::size_t>(cost_cap) + 1);
  // The goal sweep and the Dijkstra below are the only unbounded loops in a
  // PDB build; both poll the cooperative stop hook so a cancelled solve is
  // never pinned behind an 8^8-entry table (the searches' poll cadence,
  // scaled up — these iterations are far cheaper than an expansion).
  constexpr std::size_t kStopPollMask = 0xFFFu;
  for (std::size_t index = 0; index < table_size; ++index) {
    if ((index & kStopPollMask) == 0 && should_stop && should_stop()) {
      aborted_ = true;
      return;
    }
    if (!valid_index(index, p)) continue;
    if (is_goal(index)) {
      pattern.completion[index] = 0;
      queue.push(0, static_cast<std::uint32_t>(index));
    }
  }

  auto relax = [&](std::size_t pre, MoveType type, std::size_t i,
                   std::int64_t d, std::int64_t cost) {
    if (!legal(pre, i, type)) return;
    const std::int64_t nd = std::min(d + cost, cost_cap);
    std::int32_t& entry = pattern.completion[pre];
    if (entry != kUnreachable && entry <= nd) return;
    entry = static_cast<std::int32_t>(nd);
    queue.push(nd, static_cast<std::uint32_t>(pre));
  };

  std::size_t pops = 0;
  while (!queue.empty()) {
    if ((pops++ & kStopPollMask) == 0 && should_stop && should_stop()) {
      aborted_ = true;
      return;
    }
    auto [d, popped] = queue.pop();
    const auto index = static_cast<std::size_t>(popped);
    if (pattern.completion[index] != d) continue;  // stale duplicate
    for (std::size_t i = 0; i < p; ++i) {
      const unsigned f = field_at(index, i);
      const unsigned computed = f & 4u;
      switch (static_cast<PebbleColor>(f & 3u)) {
        case PebbleColor::Red:
          // Load lands on Red from Blue, computed untouched.
          relax(with_field(index, i,
                           static_cast<unsigned>(PebbleColor::Blue) | computed),
                MoveType::Load, i, d, eps_den);
          if (computed != 0) {
            // Compute lands on Red+computed from None or Blue, either prior
            // computed flag (legal() enforces the oneshot rule).
            for (unsigned prior_color :
                 {static_cast<unsigned>(PebbleColor::None),
                  static_cast<unsigned>(PebbleColor::Blue)}) {
              for (unsigned prior_computed : {0u, 4u}) {
                relax(with_field(index, i, prior_color | prior_computed),
                      MoveType::Compute, i, d, eps_num);
              }
            }
          }
          break;
        case PebbleColor::Blue:
          relax(with_field(index, i,
                           static_cast<unsigned>(PebbleColor::Red) | computed),
                MoveType::Store, i, d, eps_den);
          break;
        case PebbleColor::None:
          for (unsigned prior_color :
               {static_cast<unsigned>(PebbleColor::Red),
                static_cast<unsigned>(PebbleColor::Blue)}) {
            relax(with_field(index, i, prior_color | computed),
                  MoveType::Delete, i, d, 0);
          }
          break;
      }
    }
  }
}

void PatternDatabase::build_pattern_hashed(const Engine& engine,
                                           Pattern& pattern,
                                           std::int64_t cost_cap,
                                           const StopPredicate& should_stop,
                                           std::size_t byte_budget) {
  const Model& model = engine.model();
  const PebblingConvention& conv = engine.convention();
  const std::size_t p = pattern.nodes.size();
  const std::int64_t r = static_cast<std::int64_t>(engine.red_limit());
  const std::int64_t eps_num = model.epsilon().num();
  const std::int64_t eps_den = model.epsilon().den();

  // A sink-free pattern's abstract game requires nothing: every valid
  // projection is a goal at distance 0, exactly what the flat table holds
  // for such patterns. Serve the constant instead of materializing it.
  if (pattern.sink_positions.empty()) {
    pattern.complete = false;
    pattern.floor = 0;
    return;
  }

  auto red_in_pattern = [&](std::size_t index) {
    std::int64_t red = 0;
    for (std::size_t i = 0; i < p; ++i) {
      if ((field_at(index, i) & 3u) ==
          static_cast<unsigned>(PebbleColor::Red)) {
        ++red;
      }
    }
    return red;
  };

  // Identical abstract legality to the flat builder (see build_pattern).
  auto legal = [&](std::size_t index, std::size_t i, MoveType type) {
    const unsigned f = field_at(index, i);
    const auto color = static_cast<PebbleColor>(f & 3u);
    switch (type) {
      case MoveType::Load:
        return color == PebbleColor::Blue && red_in_pattern(index) < r;
      case MoveType::Store:
        return color == PebbleColor::Red;
      case MoveType::Compute: {
        if (conv.sources_start_blue && pattern.is_source[i]) return false;
        if (!model.allows_recompute() && (f & 4u) != 0) return false;
        if (color == PebbleColor::Red) return false;
        for (std::size_t j : pattern.pred_positions[i]) {
          if ((field_at(index, j) & 3u) !=
              static_cast<unsigned>(PebbleColor::Red)) {
            return false;
          }
        }
        return red_in_pattern(index) < r;
      }
      case MoveType::Delete:
        return model.allows_delete() && color != PebbleColor::None;
    }
    return false;
  };

  // Truncation state: once the byte budget refuses an insert, the build
  // stops immediately. Everything settled so far is exact; every other
  // abstract state's true completion cost is at least the distance being
  // expanded when the budget hit (Dijkstra settles in nondecreasing
  // order), so that distance becomes the admissible floor for absences.
  bool truncated = false;
  std::int64_t floor_d = 0;

  BucketQueue<std::uint64_t> queue(static_cast<std::size_t>(cost_cap) + 1);
  constexpr std::size_t kStopPollMask = 0xFFFu;

  // Goal seeding by constructive enumeration: walk the product of each
  // position's valid fields (6 per free position, the sink-constrained
  // subset otherwise) instead of sweeping all 8^p dense indices.
  std::vector<std::vector<unsigned>> choices(p);
  std::vector<bool> is_sink_pos(p, false);
  for (std::size_t i : pattern.sink_positions) is_sink_pos[i] = true;
  for (std::size_t i = 0; i < p; ++i) {
    constexpr unsigned kRed = static_cast<unsigned>(PebbleColor::Red);
    constexpr unsigned kBlue = static_cast<unsigned>(PebbleColor::Blue);
    constexpr unsigned kNone = static_cast<unsigned>(PebbleColor::None);
    if (is_sink_pos[i]) {
      choices[i] = conv.sinks_end_blue
                       ? std::vector<unsigned>{kBlue, kBlue | 4u}
                       : std::vector<unsigned>{kRed, kRed | 4u, kBlue,
                                               kBlue | 4u};
    } else {
      choices[i] = {kNone, kNone | 4u, kRed, kRed | 4u, kBlue, kBlue | 4u};
    }
  }
  std::vector<std::size_t> counter(p, 0);
  std::size_t seeded = 0;
  for (;;) {
    if ((seeded++ & kStopPollMask) == 0 && should_stop && should_stop()) {
      aborted_ = true;
      return;
    }
    std::size_t index = 0;
    for (std::size_t i = 0; i < p; ++i) {
      index |= static_cast<std::size_t>(choices[i][counter[i]]) << (3 * i);
    }
    HashedTable::Slot* slot =
        pattern.table.find_or_insert(index, &hashed_bytes_, byte_budget);
    if (slot == nullptr) {
      truncated = true;
      floor_d = 0;
      break;
    }
    slot->dist = 0;
    queue.push(0, static_cast<std::uint64_t>(index));
    // Odometer step.
    std::size_t i = 0;
    while (i < p && ++counter[i] == choices[i].size()) counter[i++] = 0;
    if (i == p) break;
  }

  auto relax = [&](std::size_t pre, MoveType type, std::size_t i,
                   std::int64_t d, std::int64_t cost) {
    if (truncated || !legal(pre, i, type)) return;
    const std::int64_t nd = std::min(d + cost, cost_cap);
    HashedTable::Slot* slot =
        pattern.table.find_or_insert(pre, &hashed_bytes_, byte_budget);
    if (slot == nullptr) {
      truncated = true;
      floor_d = std::min(d, cost_cap);
      return;
    }
    if (slot->settled) return;  // final already; Dijkstra never improves it
    if (slot->dist != kUnreachable && slot->dist <= nd) return;
    slot->dist = static_cast<std::int32_t>(nd);
    queue.push(nd, static_cast<std::uint64_t>(pre));
  };

  std::size_t pops = 0;
  while (!queue.empty() && !truncated) {
    if ((pops++ & kStopPollMask) == 0 && should_stop && should_stop()) {
      aborted_ = true;
      return;
    }
    auto [d, popped] = queue.pop();
    const auto index = static_cast<std::size_t>(popped);
    HashedTable::Slot* slot = pattern.table.find(index);
    RBPEB_ENSURE(slot != nullptr, "popped abstract state must be tabled");
    if (slot->dist != d) continue;  // stale duplicate
    slot->settled = true;
    for (std::size_t i = 0; i < p; ++i) {
      const unsigned f = field_at(index, i);
      const unsigned computed = f & 4u;
      switch (static_cast<PebbleColor>(f & 3u)) {
        case PebbleColor::Red:
          relax(with_field(index, i,
                           static_cast<unsigned>(PebbleColor::Blue) | computed),
                MoveType::Load, i, d, eps_den);
          if (computed != 0) {
            for (unsigned prior_color :
                 {static_cast<unsigned>(PebbleColor::None),
                  static_cast<unsigned>(PebbleColor::Blue)}) {
              for (unsigned prior_computed : {0u, 4u}) {
                relax(with_field(index, i, prior_color | prior_computed),
                      MoveType::Compute, i, d, eps_num);
              }
            }
          }
          break;
        case PebbleColor::Blue:
          relax(with_field(index, i,
                           static_cast<unsigned>(PebbleColor::Red) | computed),
                MoveType::Store, i, d, eps_den);
          break;
        case PebbleColor::None:
          for (unsigned prior_color :
               {static_cast<unsigned>(PebbleColor::Red),
                static_cast<unsigned>(PebbleColor::Blue)}) {
            relax(with_field(index, i, prior_color | computed),
                  MoveType::Delete, i, d, 0);
          }
          break;
      }
    }
  }
  if (truncated) {
    pattern.complete = false;
    pattern.floor = static_cast<std::int32_t>(floor_d);
  }
}

}  // namespace rbpeb
