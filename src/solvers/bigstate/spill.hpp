// Disk spill runs for the external-memory closed table (bigstate/ddd.hpp).
//
// When a memory-budgeted search must shed closed entries, it serializes them
// into fixed-size records and hands them here as *sorted runs* — immutable
// files of records ordered by key bytes. This layer is deliberately
// type-erased: it knows record geometry (SpillLayout), not packed-state
// types, so one non-templated implementation serves the 64-bit, __uint128_t,
// and variable-width searches alike, and the templated table above it only
// ever serializes/deserializes at the boundary.
//
// Operations, all O(log) seeks or one sequential sweep per run:
//  * lookup — best record for one key via per-run binary search (runs hold
//    at most one record per key; across runs the best by (g, expanded-first)
//    wins, newer knowledge superseding older);
//  * batch_lookup — one delayed-duplicate-detection pass: a sorted batch of
//    fresh keys merge-joined against every run (small batches degrade to
//    point lookups so a near-empty pass never pays a full run sweep);
//  * compaction — when runs pile up, a k-way merge folds them into one,
//    keeping the best record per key; triggered by run count or by the disk
//    budget before a new run would exceed it.
//
// A SpillDirectory owns the directory tree the runs live in and removes it
// on destruction — a cancelled or crashed-out search leaks no spill files
// (tests/solvers/test_spill.cpp holds the cleanup regression).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/pebble/move.hpp"

namespace rbpeb::bigstate {

/// Geometry of one spilled closed-table record:
///   [key][parent key][g : int64][node : uint32][type : uint8]
///   [flags : uint8][deferred : uint16]
/// — all little-endian memcpy, fixed size per instance because every key of
/// one search serializes to the same width. `deferred` counts duplicate
/// open-queue items that must be consumed before the state's original item
/// may expand it (ddd.hpp uses this to keep spilled expansion order
/// bit-identical to the in-memory search).
struct SpillLayout {
  std::size_t key_bytes = 0;

  std::size_t parent_offset() const { return key_bytes; }
  std::size_t g_offset() const { return 2 * key_bytes; }
  std::size_t node_offset() const { return 2 * key_bytes + 8; }
  std::size_t type_offset() const { return 2 * key_bytes + 12; }
  std::size_t flags_offset() const { return 2 * key_bytes + 13; }
  std::size_t deferred_offset() const { return 2 * key_bytes + 14; }
  std::size_t record_bytes() const { return 2 * key_bytes + 16; }
};

/// Record flag bits.
inline constexpr std::uint8_t kSpillFlagExpanded = 1;

/// Why the last append_run failed — a disk budget is actionable (raise
/// --budget-disk), an I/O failure is not (the filesystem itself failed).
enum class SpillFailure { None, DiskBudget, Io };

/// Field accessors over a raw record (alignment-safe).
std::int64_t spill_record_g(const SpillLayout& layout, const std::uint8_t* rec);
bool spill_record_expanded(const SpillLayout& layout, const std::uint8_t* rec);
std::uint16_t spill_record_deferred(const SpillLayout& layout,
                                    const std::uint8_t* rec);
Move spill_record_via(const SpillLayout& layout, const std::uint8_t* rec);
void spill_record_store(const SpillLayout& layout, std::uint8_t* rec,
                        std::int64_t g, Move via, bool expanded,
                        std::uint16_t deferred = 0);

/// True when `a` is a strictly better path record than `b` for the same key:
/// smaller g, or equal g with `a` already expanded (later knowledge).
bool spill_record_better(const SpillLayout& layout, const std::uint8_t* a,
                         const std::uint8_t* b);

/// Sort a buffer of `count` contiguous records in place by their key bytes
/// (memcmp order — any total order works as long as writer and reader
/// agree). Keys must be unique within the buffer.
void sort_spill_records(const SpillLayout& layout, std::uint8_t* records,
                        std::size_t count);

/// An owned directory for one search's spill runs, removed (recursively) on
/// destruction. Each search creates a unique one; hda-astar hands each
/// shard its own partition beneath it.
class SpillDirectory {
 public:
  /// Create a unique directory under `base` ("" = the system temp dir).
  /// Throws PreconditionError when the base is not writable.
  static SpillDirectory create(const std::string& base);

  SpillDirectory(SpillDirectory&&) noexcept;
  SpillDirectory& operator=(SpillDirectory&&) noexcept;
  SpillDirectory(const SpillDirectory&) = delete;
  SpillDirectory& operator=(const SpillDirectory&) = delete;
  ~SpillDirectory();

  const std::string& path() const { return path_; }

  /// Create (if needed) and return the subdirectory `name` — one per
  /// hda-astar shard, so workers never share a run file.
  std::string partition(const std::string& name) const;

 private:
  explicit SpillDirectory(std::string path) : path_(std::move(path)) {}

  void remove_tree() noexcept;

  std::string path_;  ///< empty after a move-out: nothing to remove
};

/// The sorted spill runs of one closed table (one search, or one hda-astar
/// shard — single-owner, never shared across threads).
class SpillRunSet {
 public:
  /// `max_disk_bytes` caps the live run files (0 = unlimited); exceeding it
  /// fails append_run after a compaction attempt, which the searches
  /// surface as ExactTermination::MemoryBudget. Note: a compaction
  /// transiently holds the old runs plus the merged output — up to ~2x the
  /// cap on disk — before the old files are removed (the disk analogue of
  /// the closed table's rehash transient; budget with that headroom).
  SpillRunSet(SpillLayout layout, std::string dir,
              std::size_t max_disk_bytes);

  const SpillLayout& layout() const { return layout_; }
  bool empty() const { return runs_.empty(); }
  std::size_t run_count() const { return runs_.size(); }

  /// Cumulative records evicted into runs (stats: spilled_states).
  std::size_t records_spilled() const { return records_spilled_; }
  /// Cumulative bytes written, compaction rewrites included (spill_bytes).
  std::size_t bytes_written() const { return bytes_written_; }
  /// Batched reconciliations plus compactions (stats: merge_passes).
  std::size_t merge_passes() const { return merge_passes_; }
  /// Live bytes on disk right now.
  std::size_t disk_bytes() const { return disk_bytes_; }
  /// High-water mark of bytes simultaneously on disk, compaction transients
  /// included: while a compaction streams its merged output the old runs
  /// are still live, so the peak can reach ~2x the steady-state footprint.
  /// This is the number to provision (and admission-control) against, not
  /// disk_bytes() (stats: spill_peak_bytes).
  std::size_t peak_disk_bytes() const { return peak_disk_bytes_; }

  /// Cause of the last append_run failure (None if it never failed).
  SpillFailure last_failure() const { return last_failure_; }

  /// Persist `count` records (sorted by key, unique) as a new run. False
  /// when the disk budget still blocks it after compaction — the table
  /// stays consistent and the caller terminates the search.
  bool append_run(const std::uint8_t* records, std::size_t count);

  /// Best record for `key` across all runs into `out` (record_bytes()
  /// long); false when no run holds the key.
  bool lookup(const std::uint8_t* key, std::uint8_t* out) const;

  /// One delayed-duplicate-detection pass: for each of `count` sorted,
  /// unique serialized keys (stride key_bytes), find the best on-disk
  /// record; `on_match(index, record)` fires for every key found. Counts as
  /// a merge pass.
  void batch_lookup(
      const std::uint8_t* keys, std::size_t count,
      const std::function<void(std::size_t, const std::uint8_t*)>& on_match);

 private:
  struct Run {
    std::string path;
    std::size_t records = 0;
    mutable std::ifstream stream;  ///< kept open; single-owner access
  };

  bool write_run(const std::uint8_t* records, std::size_t count);
  /// Fold every run into one, best record per key. False on I/O failure.
  bool compact();
  bool lookup_in_run(const Run& run, const std::uint8_t* key,
                     std::uint8_t* out) const;
  void drop_runs();

  SpillLayout layout_;
  std::string dir_;
  std::size_t max_disk_bytes_ = 0;
  std::vector<std::unique_ptr<Run>> runs_;
  std::size_t next_run_id_ = 0;
  std::size_t records_spilled_ = 0;
  std::size_t bytes_written_ = 0;
  std::size_t merge_passes_ = 0;
  std::size_t disk_bytes_ = 0;
  std::size_t peak_disk_bytes_ = 0;
  SpillFailure last_failure_ = SpillFailure::None;
  /// Reused by lookup() — one record per point probe, on the per-pop hot
  /// path of a spilled search. Single-owner class, so no races.
  mutable std::vector<std::uint8_t> lookup_scratch_;
};

}  // namespace rbpeb::bigstate
