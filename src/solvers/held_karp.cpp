#include "src/solvers/held_karp.hpp"

#include <limits>

#include "src/support/check.hpp"

namespace rbpeb {

HeldKarpResult held_karp_min_order(
    std::size_t count,
    const std::function<std::int64_t(std::size_t prev, std::size_t next)>&
        transition,
    const std::vector<std::uint32_t>& dep_mask) {
  RBPEB_REQUIRE(count >= 1 && count <= 20,
                "held_karp_min_order supports 1..20 items");
  RBPEB_REQUIRE(dep_mask.empty() || dep_mask.size() == count,
                "dep_mask must be empty or have one entry per item");

  const std::size_t full = (std::size_t{1} << count) - 1;
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
  auto deps = [&](std::size_t i) -> std::uint32_t {
    return dep_mask.empty() ? 0u : dep_mask[i];
  };

  // dp[mask * count + last] = min cost to visit exactly `mask`, ending at
  // `last`. parent stores the predecessor for path reconstruction.
  std::vector<std::int64_t> dp((full + 1) * count, kInf);
  std::vector<std::uint8_t> parent((full + 1) * count, 0xFF);

  for (std::size_t i = 0; i < count; ++i) {
    if (deps(i) == 0) {
      dp[(std::size_t{1} << i) * count + i] = transition(kHeldKarpStart, i);
    }
  }
  for (std::size_t mask = 1; mask <= full; ++mask) {
    for (std::size_t last = 0; last < count; ++last) {
      std::int64_t cur = dp[mask * count + last];
      if (cur >= kInf) continue;
      for (std::size_t next = 0; next < count; ++next) {
        if (mask & (std::size_t{1} << next)) continue;
        if ((deps(next) & mask) != deps(next)) continue;
        std::size_t nmask = mask | (std::size_t{1} << next);
        std::int64_t cand = cur + transition(last, next);
        if (cand < dp[nmask * count + next]) {
          dp[nmask * count + next] = cand;
          parent[nmask * count + next] = static_cast<std::uint8_t>(last);
        }
      }
    }
  }

  HeldKarpResult result;
  std::size_t best_last = count;
  std::int64_t best = kInf;
  for (std::size_t last = 0; last < count; ++last) {
    if (dp[full * count + last] < best) {
      best = dp[full * count + last];
      best_last = last;
    }
  }
  if (best_last == count) return result;  // infeasible precedence

  result.feasible = true;
  result.cost = best;
  result.order.resize(count);
  std::size_t mask = full;
  std::size_t last = best_last;
  for (std::size_t i = count; i-- > 0;) {
    result.order[i] = last;
    std::uint8_t p = parent[mask * count + last];
    mask ^= (std::size_t{1} << last);
    last = p;
  }
  return result;
}

}  // namespace rbpeb
