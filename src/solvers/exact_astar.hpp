// Exact optimal pebbling via A* with admissible per-state lower bounds.
//
// Same configuration-graph search as exact.hpp's Dijkstra, but informed:
// each generated state is priced at g + h where h is the admissible
// completion bound of bounds.hpp (remaining ε·uncomputed work in compcost,
// unmaterialized value transfers in nodel, blue-input loads still owed in
// all models), so the frontier leans toward completions and provably-dead
// states (oneshot values lost forever) are pruned outright. Three further
// engineering changes over the Dijkstra baseline:
//
//  * states are 3-bit-packed words (packed_state.hpp) updated incrementally
//    per move — O(1) per generated neighbor instead of the O(n)
//    copy + re-encode — with an __uint128_t wide path that lifts the node
//    cap from 21 to 42;
//  * the priority queue is a Dial/bucket queue: move costs only take the
//    values {0, ε.num, ε.den} in scaled units, so priorities are small
//    integers bounded by the Section 3 universal cost bound and a binary
//    heap (plus its stale-entry churn) is overkill;
//  * any state whose f-value exceeds the universal upper bound (plus the
//    Appendix C convention-bridging slack) is dropped — no optimal pebbling
//    lives beyond it.
//
// The differential harness in tests/solvers/test_exact_astar.cpp proves the
// returned cost equals Dijkstra's on every ≤21-node instance; beyond 21
// nodes this solver is the repo's only ground truth.
#pragma once

#include <cstddef>
#include <optional>

#include "src/pebble/engine.hpp"
#include "src/solvers/exact.hpp"

namespace rbpeb {

/// Node cap of the A* search: 42 nodes × 3 bits fit an __uint128_t key.
inline constexpr std::size_t kExactAstarMaxNodes = 42;

/// Solve optimally. Throws PreconditionError beyond kExactAstarMaxNodes
/// nodes and InvariantError if `max_states` is exceeded before an optimum
/// is proven.
ExactResult solve_exact_astar(const Engine& engine,
                              std::size_t max_states = 2'000'000);

/// Like solve_exact_astar but returns nullopt instead of throwing when the
/// state budget is exhausted, `should_stop` fires, or the reachable
/// configuration graph drains without a complete state. When `stats` is
/// non-null it is always filled, success or not.
std::optional<ExactResult> try_solve_exact_astar(
    const Engine& engine, std::size_t max_states = 2'000'000,
    const StopPredicate& should_stop = {}, ExactSearchStats* stats = nullptr);

}  // namespace rbpeb
