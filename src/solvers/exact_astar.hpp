// Exact optimal pebbling via A* with admissible per-state lower bounds.
//
// Same configuration-graph search as exact.hpp's Dijkstra, but informed:
// each generated state is priced at g + h where h is the admissible
// completion bound of bounds.hpp (remaining ε·uncomputed work in compcost,
// unmaterialized value transfers in nodel, blue-input loads still owed in
// all models), so the frontier leans toward completions and provably-dead
// states (oneshot values lost forever) are pruned outright. Engineering
// over the Dijkstra baseline:
//
//  * states are 3-bit-packed and updated incrementally per move — O(1) per
//    generated neighbor. Up to 42 nodes they are single machine words
//    (packed_state.hpp: 64-bit ≤ 21, __uint128_t ≤ 42); beyond that the
//    search dispatches to the variable-width VarPackedState
//    (bigstate/var_state.hpp) over two-word masks up to 128 nodes and
//    runtime-width MaskVec masks up to kExactAstarMaxNodes. The dispatch
//    is runtime-only: ≤42-node instances keep the fixed-width fast path
//    and 43–128-node instances the two-word path bit-for-bit, costs and
//    expansion counts unchanged;
//  * the closed table is byte-accounted and spill-capable (bigstate/
//    ddd.hpp): an ExactSearchOptions::max_memory_bytes cap either turns
//    into a disk-backed working set (external-memory search with delayed
//    duplicate detection — the default when a budget is set) or, with
//    spill=off, ends the search gracefully with MemoryBudget and partial
//    stats instead of an OOM kill;
//  * past 42 nodes the bound is reinforced by additive pattern databases
//    (bigstate/pdb.hpp) as max(counting_bounds, pdb_sum), and an optional
//    IncumbentSeed (a verified heuristic trace) prunes everything pricing
//    at or above its cost from move one — if nothing cheaper exists the
//    seed itself is returned, proven optimal;
//  * the priority queue is a Dial/bucket queue: move costs only take the
//    values {0, ε.num, ε.den} in scaled units, so priorities are small
//    integers bounded by the Section 3 universal cost bound and a binary
//    heap (plus its stale-entry churn) is overkill;
//  * any state whose f-value exceeds the universal upper bound (plus the
//    Appendix C convention-bridging slack) is dropped — no optimal pebbling
//    lives beyond it.
//
// The differential harness in tests/solvers/test_exact_astar.cpp proves the
// returned cost equals Dijkstra's on every ≤21-node instance, and
// tests/solvers/test_bigstate.cpp proves the variable-width path identical
// (costs and expansions) to the fixed-width one on instances both can run.
#pragma once

#include <cstddef>
#include <optional>

#include "src/pebble/engine.hpp"
#include "src/solvers/exact.hpp"

namespace rbpeb {

/// Node cap of the fixed-width fast path: 42 nodes × 3 bits fit an
/// __uint128_t key. Beyond it the variable-width bigstate path runs.
inline constexpr std::size_t kExactAstarFixedMaxNodes = 42;

/// Node cap of the A* search overall — the runtime-width mask limit of
/// StateBoundEvaluator (asserted equal in exact_astar.cpp). Instances of
/// 43–128 nodes run variable-width states over the two-word WideStateMasks
/// exactly as before; beyond 128 the same search runs over the
/// runtime-width MaskVec, so the ≤128 fast paths stay bit-for-bit.
inline constexpr std::size_t kExactAstarMaxNodes = 1024;

/// Whether a search with these options consults a pattern database: On
/// always, Auto exactly past the fixed-width cap — so ≤42-node expansion
/// counts stay bit-for-bit. One definition serves exact-astar and
/// hda-astar; they must never diverge on when the heuristic applies.
inline bool bigstate_pdb_enabled(const ExactSearchOptions& options,
                                 std::size_t node_count) {
  switch (options.pdb) {
    case PdbMode::On: return true;
    case PdbMode::Off: return false;
    case PdbMode::Auto: return node_count > kExactAstarFixedMaxNodes;
  }
  return false;
}

/// Solve optimally. Throws PreconditionError beyond kExactAstarMaxNodes
/// nodes and InvariantError if the state budget is exceeded before an
/// optimum is proven.
ExactResult solve_exact_astar(const Engine& engine,
                              std::size_t max_states = 2'000'000);

/// Like solve_exact_astar but returns nullopt instead of throwing when the
/// state budget is exhausted, `should_stop` fires, or the reachable
/// configuration graph drains without a complete state. When `stats` is
/// non-null it is always filled, success or not.
std::optional<ExactResult> try_solve_exact_astar(
    const Engine& engine, std::size_t max_states = 2'000'000,
    const StopPredicate& should_stop = {}, ExactSearchStats* stats = nullptr);

/// Full-options entry point: memory budget, pattern databases, incumbent
/// seeding, and the forced variable-width testing path (ExactSearchOptions).
std::optional<ExactResult> try_solve_exact_astar(
    const Engine& engine, const ExactSearchOptions& options,
    ExactSearchStats* stats = nullptr);

}  // namespace rbpeb
