#include "src/solvers/eviction.hpp"

#include <algorithm>

#include "src/support/check.hpp"

namespace rbpeb {

const char* to_string(EvictionRule rule) {
  switch (rule) {
    case EvictionRule::Lru: return "lru";
    case EvictionRule::FewestRemainingUses: return "fewest-uses";
    case EvictionRule::Random: return "random";
  }
  return "?";
}

std::optional<EvictionRule> eviction_rule_from_name(std::string_view name) {
  for (EvictionRule rule : {EvictionRule::Lru, EvictionRule::FewestRemainingUses,
                            EvictionRule::Random}) {
    if (name == to_string(rule)) return rule;
  }
  return std::nullopt;
}

NodeId choose_victim(EvictionRule rule, const std::vector<NodeId>& candidates,
                     const std::vector<std::int64_t>& remaining_uses,
                     const std::vector<std::int64_t>& last_use_tick,
                     Rng& rng) {
  RBPEB_REQUIRE(!candidates.empty(), "no eviction candidate available");
  switch (rule) {
    case EvictionRule::Lru:
      return *std::min_element(candidates.begin(), candidates.end(),
                               [&](NodeId a, NodeId b) {
                                 if (last_use_tick[a] != last_use_tick[b])
                                   return last_use_tick[a] < last_use_tick[b];
                                 return a < b;
                               });
    case EvictionRule::FewestRemainingUses:
      return *std::min_element(candidates.begin(), candidates.end(),
                               [&](NodeId a, NodeId b) {
                                 if (remaining_uses[a] != remaining_uses[b])
                                   return remaining_uses[a] < remaining_uses[b];
                                 if (last_use_tick[a] != last_use_tick[b])
                                   return last_use_tick[a] < last_use_tick[b];
                                 return a < b;
                               });
    case EvictionRule::Random:
      return candidates[rng.next_below(candidates.size())];
  }
  RBPEB_ENSURE(false, "unreachable");
  return kInvalidNode;
}

}  // namespace rbpeb
