// Dial-style bucket priority queue over small integer priorities, shared by
// the exact searches (sequential A* and each HDA* shard).
//
// Move costs only take the values {0, ε.num, ε.den} in scaled units, so
// f-values are small integers bounded by the Section 3 universal cost bound
// — a binary heap (plus its stale-entry churn) is overkill. push is O(1);
// pop scans forward from a cursor. The admissible bound is not guaranteed
// consistent, so a reinsertion may land below the cursor — the cursor simply
// moves back, which a monotone Dial queue would forbid but costs nothing
// here.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace rbpeb {

template <typename Item>
class BucketQueue {
 public:
  explicit BucketQueue(std::size_t bucket_count) : buckets_(bucket_count) {}

  void push(std::int64_t priority, Item item) {
    const auto f = static_cast<std::size_t>(priority);
    buckets_[f].push_back(std::move(item));
    if (f < cursor_) cursor_ = f;
    ++size_;
  }

  std::pair<std::int64_t, Item> pop() {
    while (buckets_[cursor_].empty()) ++cursor_;
    Item item = std::move(buckets_[cursor_].back());
    buckets_[cursor_].pop_back();
    --size_;
    return {static_cast<std::int64_t>(cursor_), std::move(item)};
  }

  bool empty() const { return size_ == 0; }

  std::size_t size() const { return size_; }

  /// Visit every queued item as (priority, item), bucket order (ascending
  /// priority). O(bucket count + size); the progress sampler uses it at its
  /// wall-clock-limited cadence to summarize the open list's f/g shape —
  /// never on the per-expansion path.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t f = 0; f < buckets_.size(); ++f) {
      for (const Item& item : buckets_[f]) {
        fn(static_cast<std::int64_t>(f), item);
      }
    }
  }

  /// Current heap footprint: the bucket spine plus every bucket's capacity.
  /// O(bucket count) — the searches sample it at their poll checkpoints to
  /// charge the queue against the memory budget, not per push.
  std::size_t bytes() const {
    std::size_t total = buckets_.capacity() * sizeof(std::vector<Item>);
    for (const std::vector<Item>& bucket : buckets_) {
      total += bucket.capacity() * sizeof(Item);
    }
    return total;
  }

 private:
  std::vector<std::vector<Item>> buckets_;
  std::size_t cursor_ = 0;
  std::size_t size_ = 0;
};

}  // namespace rbpeb
