#include "src/solvers/greedy.hpp"

#include <algorithm>

#include "src/support/check.hpp"

namespace rbpeb {

const char* to_string(GreedyRule rule) {
  switch (rule) {
    case GreedyRule::MostRedInputs: return "most-red-inputs";
    case GreedyRule::FewestBlueInputs: return "fewest-blue-inputs";
    case GreedyRule::RedRatio: return "red-ratio";
  }
  return "?";
}

std::optional<GreedyRule> greedy_rule_from_name(std::string_view name) {
  for (GreedyRule rule : {GreedyRule::MostRedInputs, GreedyRule::FewestBlueInputs,
                          GreedyRule::RedRatio}) {
    if (name == to_string(rule)) return rule;
  }
  return std::nullopt;
}

namespace {

/// Incremental solver state shared by the phases of one greedy run.
class GreedyRun {
 public:
  GreedyRun(const Engine& engine, const GreedyOptions& options)
      : engine_(engine),
        dag_(engine.dag()),
        options_(options),
        rng_(options.seed),
        state_(engine.initial_state()),
        n_(dag_.node_count()),
        red_pred_count_(n_, 0),
        remaining_uses_(n_, 0),
        last_use_tick_(n_, -1),
        uncomputed_pred_count_(n_, 0),
        in_ready_(n_, false),
        is_sink_(n_, false) {
    for (std::size_t v = 0; v < n_; ++v) {
      NodeId id = static_cast<NodeId>(v);
      remaining_uses_[v] = static_cast<std::int64_t>(dag_.outdegree(id));
      uncomputed_pred_count_[v] = dag_.indegree(id);
      is_sink_[v] = dag_.is_sink(id);
      if (uncomputed_pred_count_[v] == 0) push_ready(id);
    }
  }

  Trace run() {
    std::size_t computed = 0;
    while (computed < n_) {
      RBPEB_ENSURE(!ready_.empty(),
                   "greedy deadlock: no candidate node is computable");
      NodeId v = pick_candidate();
      compute_node(v);
      ++computed;
    }
    return std::move(trace_);
  }

 private:
  void push_ready(NodeId v) {
    if (!in_ready_[v]) {
      in_ready_[v] = true;
      ready_.push_back(v);
    }
  }

  void remove_ready(NodeId v) {
    auto it = std::find(ready_.begin(), ready_.end(), v);
    RBPEB_ENSURE(it != ready_.end(), "candidate missing from ready set");
    *it = ready_.back();
    ready_.pop_back();
    in_ready_[v] = false;
  }

  /// Apply a move through the engine and keep red_pred_count_ incremental.
  void apply(Move move) {
    bool was_red = state_.is_red(move.node);
    engine_.apply(state_, move, cost_);
    trace_.push(move);
    bool now_red = state_.is_red(move.node);
    if (was_red != now_red) {
      int delta = now_red ? 1 : -1;
      for (NodeId w : dag_.successors(move.node)) red_pred_count_[w] += delta;
    }
  }

  /// The Section 8 node-choice rules, with deterministic smallest-id
  /// tie-breaking. Higher score wins.
  NodeId pick_candidate() const {
    NodeId best = kInvalidNode;
    // Scores compared as exact fractions score_num/score_den.
    std::int64_t best_num = 0, best_den = 1;
    for (NodeId v : ready_) {
      std::int64_t num = 0, den = 1;
      const auto indeg = static_cast<std::int64_t>(dag_.indegree(v));
      const std::int64_t red = red_pred_count_[v];
      switch (options_.rule) {
        case GreedyRule::MostRedInputs:
          num = red;
          break;
        case GreedyRule::FewestBlueInputs:
          // All inputs of a candidate are computed and never deleted while
          // still needed, so blue inputs = indegree - red inputs.
          num = red - indeg;
          break;
        case GreedyRule::RedRatio:
          // Sources have no inputs; by convention their ratio is 0 so that
          // nodes with actual red inputs are preferred.
          num = red;
          den = indeg > 0 ? indeg : 1;
          break;
      }
      bool better;
      if (best == kInvalidNode) {
        better = true;
      } else {
        // num/den > best_num/best_den, denominators positive.
        std::int64_t lhs = num * best_den;
        std::int64_t rhs = best_num * den;
        better = lhs > rhs || (lhs == rhs && v < best);
      }
      if (better) {
        best = v;
        best_num = num;
        best_den = den;
      }
    }
    return best;
  }

  /// Evict red pebbles (never the protected ones) until `slots` are free.
  void make_room(std::size_t slots, const std::span<const NodeId> protect) {
    if (state_.red_count() + slots <= engine_.red_limit()) return;
    // Gather candidates once. `protect` is one node's predecessor list
    // (≤ Δ entries), so a linear membership scan beats the O(n) stamp
    // vector this used to allocate on every eviction — that allocation was
    // quadratic over a whole solve and dominated 10⁵-node instances.
    auto is_protected = [&protect](NodeId r) {
      return std::find(protect.begin(), protect.end(), r) != protect.end();
    };
    std::vector<NodeId> dead, live;
    for (NodeId r : state_.red_nodes()) {
      if (is_protected(r)) continue;
      if (remaining_uses_[r] == 0 && !is_sink_[r]) dead.push_back(r);
      else live.push_back(r);
    }
    while (state_.red_count() + slots > engine_.red_limit()) {
      NodeId victim;
      bool victim_dead;
      if (!dead.empty()) {
        victim = dead.back();
        dead.pop_back();
        victim_dead = true;
      } else {
        victim = choose_victim(options_.eviction, live, remaining_uses_,
                               last_use_tick_, rng_);
        live.erase(std::find(live.begin(), live.end(), victim));
        victim_dead = false;
      }
      if (victim_dead && engine_.model().allows_delete()) {
        apply(erase(victim));
      } else {
        apply(store(victim));
      }
    }
  }

  void compute_node(NodeId v) {
    remove_ready(v);
    auto preds = dag_.predecessors(v);

    // Bring blue inputs back to red. Inputs are never deleted while they
    // still have uncomputed consumers, so each non-red input is blue.
    std::vector<NodeId> to_load;
    for (NodeId p : preds) {
      if (!state_.is_red(p)) {
        RBPEB_ENSURE(state_.is_blue(p),
                     "input of a candidate is neither red nor blue");
        to_load.push_back(p);
      }
    }
    make_room(to_load.size() + 1, preds);
    for (NodeId p : to_load) apply(load(p));

    apply(compute(v));
    ++tick_;
    for (NodeId p : preds) last_use_tick_[p] = tick_;
    last_use_tick_[v] = tick_;

    // Consume one use of each input; drop inputs that just died.
    for (NodeId p : preds) {
      if (--remaining_uses_[p] == 0 && !is_sink_[p]) {
        if (options_.eager_delete_dead && engine_.model().allows_delete() &&
            !state_.is_empty(p)) {
          apply(erase(p));
        }
      }
    }

    for (NodeId w : dag_.successors(v)) {
      if (--uncomputed_pred_count_[w] == 0) push_ready(w);
    }
  }

  const Engine& engine_;
  const Dag& dag_;
  GreedyOptions options_;
  Rng rng_;
  GameState state_;
  Cost cost_;
  Trace trace_;
  const std::size_t n_;
  std::vector<std::int64_t> red_pred_count_;
  std::vector<std::int64_t> remaining_uses_;
  std::vector<std::int64_t> last_use_tick_;
  std::vector<std::size_t> uncomputed_pred_count_;
  std::vector<NodeId> ready_;
  std::vector<bool> in_ready_;
  std::vector<bool> is_sink_;
  std::int64_t tick_ = 0;
};

}  // namespace

Trace solve_greedy(const Engine& engine, const GreedyOptions& options) {
  GreedyRun run(engine, options);
  return run.run();
}

}  // namespace rbpeb
