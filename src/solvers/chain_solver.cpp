#include "src/solvers/chain_solver.hpp"

#include "src/support/check.hpp"

namespace rbpeb {

Trace solve_chain(const Engine& engine, const TradeoffChain& chain) {
  RBPEB_REQUIRE(engine.red_limit() >= chain.instance.red_limit,
                "engine budget below the chain's minimum");
  // The "parking" of surplus red pebbles in the off control group emerges
  // from the visit-order pebbler: evictions happen only when the budget is
  // full, and the deterministic victim choice keeps the same control nodes
  // resident across visits.
  return pebble_visit_order(engine, chain.instance, chain.default_order);
}

}  // namespace rbpeb
