#include "src/solvers/exact.hpp"

#include <queue>
#include <unordered_map>

#include "src/support/check.hpp"

namespace rbpeb {

namespace {

/// 3 bits per node: 2 for the pebble color, 1 for the computed flag.
std::uint64_t encode(const GameState& state) {
  std::uint64_t key = 0;
  for (std::size_t v = state.node_count(); v-- > 0;) {
    key <<= 3;
    key |= static_cast<std::uint64_t>(state.color(static_cast<NodeId>(v)));
    key |= state.was_computed(static_cast<NodeId>(v)) ? 0x4u : 0x0u;
  }
  return key;
}

GameState decode(std::uint64_t key, std::size_t n) {
  GameState state(n);
  for (std::size_t v = 0; v < n; ++v) {
    auto color = static_cast<PebbleColor>(key & 0x3u);
    state.set_color(static_cast<NodeId>(v), color);
    if (key & 0x4u) state.mark_computed(static_cast<NodeId>(v));
    key >>= 3;
  }
  return state;
}

struct QueueEntry {
  std::int64_t cost;
  std::uint64_t key;
  bool operator>(const QueueEntry& o) const { return cost > o.cost; }
};

struct ParentLink {
  std::uint64_t key;
  Move move;
};

}  // namespace

std::optional<ExactResult> try_solve_exact(const Engine& engine,
                                           std::size_t max_states,
                                           const StopPredicate& should_stop,
                                           ExactSearchStats* stats) {
  const Dag& dag = engine.dag();
  const std::size_t n = dag.node_count();
  RBPEB_REQUIRE(n <= 21, "solve_exact supports at most 21 nodes");
  const Model& model = engine.model();

  ExactSearchStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = {};  // a reused struct must not accumulate across calls
  auto give_up = [&](ExactTermination why) {
    stats->termination = why;
    return std::nullopt;
  };

  std::unordered_map<std::uint64_t, std::int64_t> dist;
  std::unordered_map<std::uint64_t, ParentLink> parent;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq;

  GameState start = engine.initial_state();
  const std::uint64_t start_key = encode(start);
  dist[start_key] = 0;
  pq.push({0, start_key});

  std::size_t& expanded = stats->states_expanded;
  while (!pq.empty()) {
    auto [cost, key] = pq.top();
    pq.pop();
    auto it = dist.find(key);
    if (it == dist.end() || it->second < cost) continue;  // stale entry
    GameState state = decode(key, n);
    if (engine.is_complete(state)) {
      // Reconstruct the optimal move sequence.
      std::vector<Move> reversed;
      std::uint64_t cur = key;
      while (cur != start_key) {
        const ParentLink& link = parent.at(cur);
        reversed.push_back(link.move);
        cur = link.key;
      }
      ExactResult result;
      for (std::size_t i = reversed.size(); i-- > 0;) {
        result.trace.push(reversed[i]);
      }
      // Scaled units are 1/eps_den (eps_den == 1 outside compcost).
      result.cost = Rational(cost, model.epsilon().den());
      result.states_expanded = expanded;
      stats->termination = ExactTermination::Solved;
      return result;
    }
    if (expanded >= max_states) return give_up(ExactTermination::StateBudget);
    // Polled before the very first expansion too: an already-expired
    // deadline must not burn a whole poll interval of expansions first.
    if (should_stop && (expanded & 0x3Fu) == 0 && should_stop()) {
      return give_up(ExactTermination::Stopped);
    }
    ++expanded;

    for (std::size_t v = 0; v < n; ++v) {
      NodeId node = static_cast<NodeId>(v);
      for (MoveType type : {MoveType::Load, MoveType::Store, MoveType::Compute,
                            MoveType::Delete}) {
        Move move{type, node};
        if (!engine.is_legal(state, move)) continue;
        GameState next = state;
        Cost scratch;
        engine.apply(next, move, scratch);
        std::uint64_t next_key = encode(next);
        std::int64_t next_cost = cost + scaled_move_cost(model, type);
        auto [entry, inserted] = dist.try_emplace(next_key, next_cost);
        if (!inserted && entry->second <= next_cost) continue;
        entry->second = next_cost;
        parent[next_key] = {key, move};
        pq.push({next_cost, next_key});
      }
    }
  }
  // The configuration graph of a well-posed instance always contains a
  // complete state reachable from the start (Section 3); a drained queue
  // means the instance admits no pebbling at all. Surfaced as a status so
  // the API can report it instead of aborting the process.
  return give_up(ExactTermination::Exhausted);
}

ExactResult solve_exact(const Engine& engine, std::size_t max_states) {
  ExactSearchStats stats;
  auto result = try_solve_exact(engine, max_states, {}, &stats);
  if (!result) {
    throw InvariantError(
        stats.termination == ExactTermination::Exhausted
            ? "solve_exact exhausted the configuration graph without "
              "reaching a complete state"
            : "solve_exact exceeded its state budget");
  }
  return std::move(*result);
}

}  // namespace rbpeb
