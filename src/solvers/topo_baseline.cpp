#include "src/solvers/topo_baseline.hpp"

#include <algorithm>

#include "src/graph/dag_algorithms.hpp"
#include "src/support/check.hpp"

namespace rbpeb {

Trace pebble_in_order(const Engine& engine, const std::vector<NodeId>& order,
                      const OrderedOptions& options) {
  const Dag& dag = engine.dag();
  RBPEB_REQUIRE(is_topological_order(dag, order),
                "computation order must be topological");

  const std::size_t n = dag.node_count();
  GameState state = engine.initial_state();
  Cost scratch;
  Trace trace;
  Rng rng(options.seed);
  std::vector<std::int64_t> remaining_uses(n, 0);
  std::vector<std::int64_t> last_use_tick(n, -1);
  std::vector<bool> is_sink(n, false);
  for (std::size_t v = 0; v < n; ++v) {
    remaining_uses[v] =
        static_cast<std::int64_t>(dag.outdegree(static_cast<NodeId>(v)));
    is_sink[v] = dag.is_sink(static_cast<NodeId>(v));
  }

  std::vector<bool> protected_node(n, false);
  std::int64_t tick = 0;

  auto apply = [&](Move move) {
    engine.apply(state, move, scratch);
    trace.push(move);
  };

  auto make_room = [&](std::size_t slots, std::span<const NodeId> protect) {
    if (state.red_count() + slots <= engine.red_limit()) return;
    for (NodeId p : protect) protected_node[p] = true;
    std::vector<NodeId> dead, live;
    for (NodeId r : state.red_nodes()) {
      if (protected_node[r]) continue;
      if (remaining_uses[r] == 0 && !is_sink[r]) dead.push_back(r);
      else live.push_back(r);
    }
    while (state.red_count() + slots > engine.red_limit()) {
      NodeId victim;
      bool dead_victim = !dead.empty();
      if (dead_victim) {
        victim = dead.back();
        dead.pop_back();
      } else {
        victim =
            choose_victim(options.eviction, live, remaining_uses, last_use_tick, rng);
        live.erase(std::find(live.begin(), live.end(), victim));
      }
      if (dead_victim && engine.model().allows_delete()) {
        apply(erase(victim));
      } else {
        apply(store(victim));
      }
    }
    for (NodeId p : protect) protected_node[p] = false;
  };

  for (NodeId v : order) {
    auto preds = dag.predecessors(v);
    std::vector<NodeId> to_load;
    for (NodeId p : preds) {
      if (!state.is_red(p)) {
        RBPEB_ENSURE(state.is_blue(p),
                     "input of the next node is neither red nor blue");
        to_load.push_back(p);
      }
    }
    make_room(to_load.size() + 1, preds);
    for (NodeId p : to_load) apply(load(p));
    apply(compute(v));
    ++tick;
    for (NodeId p : preds) last_use_tick[p] = tick;
    last_use_tick[v] = tick;
    for (NodeId p : preds) {
      if (--remaining_uses[p] == 0 && !is_sink[p]) {
        if (options.eager_delete_dead && engine.model().allows_delete() &&
            !state.is_empty(p)) {
          apply(erase(p));
        }
      }
    }
  }
  return trace;
}

Trace solve_topo_baseline(const Engine& engine, const OrderedOptions& options) {
  return pebble_in_order(engine, topological_order(engine.dag()), options);
}

}  // namespace rbpeb
