// Input-group DAGs and visit-order pebbling.
//
// Every construction in the paper (Sections 5–8) is an "input-group DAG":
// node groups of size R−1 are the joint inputs of one or more target nodes,
// so a target can only be computed while *all* red pebbles sit on its group.
// An optimal pebbling then reduces to the order in which groups are visited
// (paper, Section 3, "Constant indegree" discussion). This module provides:
//   * the GroupDagInstance description,
//   * a deterministic trace generator for a given visit order,
//   * the group-level greedy of Section 8 (most red pebbles in the group),
//   * exhaustive search over visit orders (optimal for small instances).
#pragma once

#include <cstddef>
#include <vector>

#include "src/pebble/engine.hpp"
#include "src/pebble/trace.hpp"

namespace rbpeb {

/// One input group: `members` must all be red for any of `targets` to be
/// computed; each target's predecessor set is exactly `members`.
struct InputGroup {
  std::vector<NodeId> members;
  std::vector<NodeId> targets;
};

/// A DAG together with its input-group structure and red-pebble budget
/// (R = max group size + 1 in all paper constructions).
struct GroupDagInstance {
  Dag dag;
  std::vector<InputGroup> groups;
  std::size_t red_limit = 0;

  std::size_t group_count() const { return groups.size(); }
};

/// Group-level dependencies: g must be visited before h iff some target of g
/// is a member of h (the target must be computed before h's targets can be).
/// Returns deps[h] = sorted list of such g.
std::vector<std::vector<std::size_t>> group_dependencies(
    const GroupDagInstance& instance);

/// True if `order` is a permutation of all groups respecting
/// group_dependencies().
bool is_valid_visit_order(const GroupDagInstance& instance,
                          const std::vector<std::size_t>& order);

/// Generate the pebbling trace that visits groups in `order` under the
/// engine's model, using the paper's accounting:
///  * members are acquired by computing (sources / recomputable), loading
///    (blue) — recomputation is preferred wherever the model makes it
///    cheaper than a load;
///  * red pebbles that will never be needed again are deleted when the
///    model allows, stored otherwise;
///  * targets are computed in sequence, the previous one stored or deleted
///    according to future need.
/// `barriers` lists positions in `order` after which every live non-sink red
/// pebble is flushed to blue. Reductions use one barrier after their gadget
/// prefix so that the pebbling cost of the remaining visits is independent
/// of which gadget happened to run last (exact affine cost laws need this).
/// The result is legal and complete (verified by the caller via verify()).
Trace pebble_visit_order(const Engine& engine, const GroupDagInstance& instance,
                         const std::vector<std::size_t>& order,
                         const std::vector<std::size_t>& barriers = {});

/// Result of a group-level solver run.
struct GroupSolveResult {
  std::vector<std::size_t> order;
  Trace trace;
};

/// The Section 8 greedy at group granularity: repeatedly visit the enabled
/// group with the most red pebbles currently on its members (ties: smallest
/// group index). This is exactly how the paper walks through the Theorem 4
/// grid.
GroupSolveResult solve_group_greedy(const Engine& engine,
                                    const GroupDagInstance& instance);

/// Try every dependency-respecting visit order and return the cheapest
/// (by verified model cost). Exponential; requires group_count() <= 9.
GroupSolveResult solve_exhaustive_order(const Engine& engine,
                                        const GroupDagInstance& instance);

}  // namespace rbpeb
