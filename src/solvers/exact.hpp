// Exact optimal pebbling via Dijkstra over game configurations.
//
// The configuration graph has one vertex per (pebble placement, computed
// set) pair and one edge per legal move, weighted by the model's cost of
// that move. Dijkstra from the empty configuration to any complete one
// yields a provably optimal pebbling. Exponential (4^n states worst case);
// intended for DAGs of up to ~14 nodes, where it serves as the ground truth
// that every other solver is validated against.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "src/obs/introspect.hpp"
#include "src/pebble/engine.hpp"
#include "src/pebble/trace.hpp"
#include "src/pebble/verifier.hpp"

namespace rbpeb {

struct ExactResult {
  Trace trace;          ///< An optimal pebbling.
  Rational cost;        ///< Its model cost (equals verify().total).
  std::size_t states_expanded = 0;
};

/// Why an exact search ended.
enum class ExactTermination {
  Solved,        ///< An optimum was found and proven.
  StateBudget,   ///< max_states expansions without a proven optimum.
  Stopped,       ///< The should_stop hook fired (deadline or cancellation).
  Exhausted,     ///< Configuration graph drained with no complete state.
  MemoryBudget,  ///< The closed table hit max_memory_bytes.
};

/// Partial progress of an exact search, filled in even when the search does
/// not finish — a budget-exhausted SolveResult still reports how far it got.
struct ExactSearchStats {
  std::size_t states_expanded = 0;
  ExactTermination termination = ExactTermination::Solved;
  /// Peak closed-table footprint in bytes (A* searches; summed over shards
  /// for hda-astar). Zero for searches that do not account memory (exact).
  std::size_t table_bytes = 0;
  /// Workers the search actually ran (hda-astar; includes the automatic
  /// sequential fallback on serial instances). Zero elsewhere.
  std::size_t threads_used = 0;
  /// True when the search proved the seeded incumbent optimal and returned
  /// its trace instead of one of its own.
  bool seed_won = false;
  /// Closed entries evicted to disk spill runs (cumulative; summed over
  /// shards for hda-astar). Zero when the search never spilled.
  std::size_t spilled_states = 0;
  /// Bytes written to spill runs (cumulative, including compaction rewrites).
  std::size_t spill_bytes = 0;
  /// High-water mark of spill bytes simultaneously on disk, compaction
  /// transients included (old runs coexist with the merged output until the
  /// old files are removed — up to ~2x the steady state). Summed over shards
  /// for hda-astar. The number to provision disk against per solve.
  std::size_t spill_peak_bytes = 0;
  /// Delayed-duplicate-detection passes: batched reconciliations of fresh
  /// states against the spill runs, plus run compactions.
  std::size_t merge_passes = 0;
  /// True when a spill write failed for I/O reasons (filesystem full or
  /// erroring) rather than the disk budget — a MemoryBudget termination
  /// then cannot be fixed by raising --budget-disk.
  bool spill_io_error = false;
  /// True when the closed table stopped one doubling early: the budget had
  /// headroom for the grown table's steady state but not for the rehash
  /// transient (old + new slab while copying). Surfaced in the CLI
  /// BudgetExhausted detail — a slightly larger --budget-memory (or
  /// spilling) would have let the search continue. OR of shards for
  /// hda-astar.
  bool table_headroom_stop = false;
  /// Anytime tier (solvers/anytime_astar.hpp): the proved admissible lower
  /// bound on the optimum in scaled units of 1/ε.den(), and the returned
  /// incumbent's cost in the same units. -1 when the search does not emit
  /// a certificate. incumbent == lower_bound proves the trace optimal.
  std::int64_t lower_bound_scaled = -1;
  std::int64_t incumbent_scaled = -1;
  /// Weighted-A* passes the anytime tier completed (drained or budget-cut).
  std::size_t anytime_passes = 0;
  /// Bound-source attribution (filled only when a progress sampler is
  /// attached — the per-expansion re-evaluation it needs is skipped
  /// otherwise so un-instrumented runs stay byte-identical). Invariant:
  /// attr_counting + attr_pdb == states_expanded.
  std::size_t attr_counting = 0;  ///< expansions whose bound was the
                                  ///< counting bounds
  std::size_t attr_pdb = 0;       ///< … whose bound was the PDB sum
  /// Pops skipped as stale/already-expanded (always counted; free) and
  /// generated states the bound proved dead.
  std::size_t dup_skipped = 0;
  std::size_t dead_prunes = 0;
};

/// Cooperative interruption hook: polled on entry and then every 64
/// expansions; returning true abandons the run (deadline or cancellation
/// from a solve budget). An empty function never stops.
using StopPredicate = std::function<bool()>;

/// A verified heuristic pebbling seeding an informed search's incumbent:
/// the search prunes every state pricing at or above `g_scaled` from move
/// one and, should nothing cheaper exist, returns `trace` itself with a
/// proof of its optimality (quiescence below the seed's cost).
struct IncumbentSeed {
  Trace trace;
  std::int64_t g_scaled = 0;  ///< verified cost in units of 1/ε.den()
};

/// Whether an informed search consults an additive pattern database
/// (solvers/bigstate/pdb.hpp). Auto enables it exactly where the counting
/// bounds stop carrying the search: past the 42-node fixed-width cap — so
/// smaller instances keep their expansion counts bit-for-bit.
enum class PdbMode { Auto, On, Off };

/// How the pattern database carves the DAG into patterns. Cone is the
/// original greedy partitioner (joins a node to the pattern holding most of
/// its direct predecessors); MinCut picks segment boundaries along a
/// topological order that minimize the number of crossing edges, so fewer
/// dependencies are abstracted away. CLI: --opt pdb-partition=cone|mincut.
enum class PdbPartition { Cone, MinCut };

/// Whether a memory-budget hit spills cold closed entries to disk
/// (solvers/bigstate/ddd.hpp) instead of ending the search. Auto spills to
/// a fresh temporary directory whenever max_memory_bytes > 0; Off keeps the
/// legacy behavior (a budget hit terminates with MemoryBudget); Path spills
/// under ExactSearchOptions::spill_path. CLI: --opt spill=auto|off|/path.
enum class SpillMode { Auto, Off, Path };

/// Knobs of the informed searches (exact-astar, hda-astar) beyond the plain
/// state budget. Defaults reproduce the historical behavior on ≤42-node
/// instances exactly.
struct ExactSearchOptions {
  /// Configuration-graph states the search may expand.
  std::size_t max_states = 2'000'000;
  /// Closed-table byte cap (per search; hda-astar splits it evenly across
  /// its shards). 0 = unlimited. Exceeding it ends the search with
  /// ExactTermination::MemoryBudget and partial stats — never an OOM kill.
  std::size_t max_memory_bytes = 0;
  PdbMode pdb = PdbMode::Auto;
  /// Pattern width for PdbMode::On/Auto; 0 = PatternDatabase default.
  /// Widths past 8 switch the affected patterns to hashed tables
  /// (solvers/bigstate/pdb.hpp).
  std::size_t pdb_pattern_size = 0;
  /// Partitioner for PdbMode::On/Auto (see PdbPartition).
  PdbPartition pdb_partition = PdbPartition::Cone;
  /// External-memory duplicate detection (bigstate/ddd.hpp): when the
  /// closed table hits max_memory_bytes, evict cold (lowest-g) entries to
  /// sorted spill runs instead of terminating, and reconcile fresh states
  /// against the runs in batched merge passes. Defaults to Auto (engaged
  /// exactly when a memory budget is set); never touched when no budget is.
  SpillMode spill = SpillMode::Auto;
  /// Spill directory for SpillMode::Path (a unique subdirectory is created
  /// and removed per search). Ignored otherwise.
  std::string spill_path;
  /// Byte cap on the spill runs on disk (per search; hda-astar splits it
  /// across its shards like the memory budget). 0 = unlimited. Exceeding it
  /// ends the search with ExactTermination::MemoryBudget. CLI: --budget-disk.
  std::size_t max_disk_bytes = 0;
  /// Optional incumbent seed (see IncumbentSeed).
  std::optional<IncumbentSeed> seed;
  StopPredicate should_stop;
  /// Testing hook: run the variable-width state path even on instances the
  /// fixed-width words cover, to differentially compare the two.
  bool force_var_state = false;
  /// Testing hook: run the runtime-width MaskVec bound path even on
  /// instances the fixed-width masks cover (implies variable-width states),
  /// to differentially compare costs and expansion counts.
  bool force_mask_vec = false;
  /// Optional progress sampler (obs/introspect.hpp), polled at the
  /// 1024-expansion trace-checkpoint cadence. Non-owning; must outlive the
  /// search. When null (the default) every sampling/attribution probe is
  /// skipped, keeping costs and expansion counts byte-identical to
  /// un-instrumented runs.
  obs::SearchProgressSampler* progress = nullptr;
};

/// Solve optimally. Throws PreconditionError if the DAG has more than 21
/// nodes (the 64-bit packed-state limit; exact_astar.hpp goes to 42) and
/// InvariantError if `max_states` is exceeded before an optimum is proven.
ExactResult solve_exact(const Engine& engine, std::size_t max_states = 2'000'000);

/// Like solve_exact but returns nullopt instead of throwing when the state
/// budget is exhausted, `should_stop` fires, or the configuration graph
/// drains without a complete state (an instance no pebbling can finish).
/// When `stats` is non-null it is always filled, success or not.
std::optional<ExactResult> try_solve_exact(const Engine& engine,
                                           std::size_t max_states = 2'000'000,
                                           const StopPredicate& should_stop = {},
                                           ExactSearchStats* stats = nullptr);

}  // namespace rbpeb
