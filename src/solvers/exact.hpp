// Exact optimal pebbling via Dijkstra over game configurations.
//
// The configuration graph has one vertex per (pebble placement, computed
// set) pair and one edge per legal move, weighted by the model's cost of
// that move. Dijkstra from the empty configuration to any complete one
// yields a provably optimal pebbling. Exponential (4^n states worst case);
// intended for DAGs of up to ~14 nodes, where it serves as the ground truth
// that every other solver is validated against.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "src/pebble/engine.hpp"
#include "src/pebble/trace.hpp"
#include "src/pebble/verifier.hpp"

namespace rbpeb {

struct ExactResult {
  Trace trace;          ///< An optimal pebbling.
  Rational cost;        ///< Its model cost (equals verify().total).
  std::size_t states_expanded = 0;
};

/// Why an exact search ended.
enum class ExactTermination {
  Solved,       ///< An optimum was found and proven.
  StateBudget,  ///< max_states expansions without a proven optimum.
  Stopped,      ///< The should_stop hook fired (deadline or cancellation).
  Exhausted,    ///< Configuration graph drained with no complete state.
};

/// Partial progress of an exact search, filled in even when the search does
/// not finish — a budget-exhausted SolveResult still reports how far it got.
struct ExactSearchStats {
  std::size_t states_expanded = 0;
  ExactTermination termination = ExactTermination::Solved;
};

/// Cooperative interruption hook: polled on entry and then every 64
/// expansions; returning true abandons the run (deadline or cancellation
/// from a solve budget). An empty function never stops.
using StopPredicate = std::function<bool()>;

/// Solve optimally. Throws PreconditionError if the DAG has more than 21
/// nodes (the 64-bit packed-state limit; exact_astar.hpp goes to 42) and
/// InvariantError if `max_states` is exceeded before an optimum is proven.
ExactResult solve_exact(const Engine& engine, std::size_t max_states = 2'000'000);

/// Like solve_exact but returns nullopt instead of throwing when the state
/// budget is exhausted, `should_stop` fires, or the configuration graph
/// drains without a complete state (an instance no pebbling can finish).
/// When `stats` is non-null it is always filled, success or not.
std::optional<ExactResult> try_solve_exact(const Engine& engine,
                                           std::size_t max_states = 2'000'000,
                                           const StopPredicate& should_stop = {},
                                           ExactSearchStats* stats = nullptr);

}  // namespace rbpeb
