// Exact optimal pebbling via Dijkstra over game configurations.
//
// The configuration graph has one vertex per (pebble placement, computed
// set) pair and one edge per legal move, weighted by the model's cost of
// that move. Dijkstra from the empty configuration to any complete one
// yields a provably optimal pebbling. Exponential (4^n states worst case);
// intended for DAGs of up to ~14 nodes, where it serves as the ground truth
// that every other solver is validated against.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "src/pebble/engine.hpp"
#include "src/pebble/trace.hpp"
#include "src/pebble/verifier.hpp"

namespace rbpeb {

struct ExactResult {
  Trace trace;          ///< An optimal pebbling.
  Rational cost;        ///< Its model cost (equals verify().total).
  std::size_t states_expanded = 0;
};

/// Cooperative interruption hook: polled periodically during the search;
/// returning true abandons the run (deadline or cancellation from a solve
/// budget). An empty function never stops.
using StopPredicate = std::function<bool()>;

/// Solve optimally. Throws PreconditionError if the DAG has more than 21
/// nodes (the packed-state limit) and InvariantError if `max_states` is
/// exceeded before an optimum is proven.
ExactResult solve_exact(const Engine& engine, std::size_t max_states = 2'000'000);

/// Like solve_exact but returns nullopt instead of throwing when the state
/// budget is exhausted or `should_stop` fires.
std::optional<ExactResult> try_solve_exact(const Engine& engine,
                                           std::size_t max_states = 2'000'000,
                                           const StopPredicate& should_stop = {});

}  // namespace rbpeb
