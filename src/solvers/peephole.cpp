#include "src/solvers/peephole.hpp"

#include "src/pebble/verifier.hpp"
#include "src/support/check.hpp"

namespace rbpeb {

namespace {

Trace without_indices(const Trace& trace, std::size_t i,
                      std::size_t j = static_cast<std::size_t>(-1)) {
  Trace out;
  for (std::size_t k = 0; k < trace.size(); ++k) {
    if (k == i || k == j) continue;
    out.push(trace[k]);
  }
  return out;
}

}  // namespace

Trace peephole_optimize(const Engine& engine, const Trace& trace,
                        PeepholeStats* stats, std::size_t max_passes) {
  VerifyResult current = verify(engine, trace);
  RBPEB_REQUIRE(current.ok(), "peephole_optimize needs a valid trace");

  Trace best = trace;
  Rational best_cost = current.total;
  PeepholeStats local;

  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    bool improved = false;
    ++local.passes;
    for (std::size_t i = 0; i < best.size(); ++i) {
      const Move move = best[i];
      // Only transfer moves carry cost in every model; deletes are free and
      // computes are load-bearing — but a useless transfer can also *block*
      // later improvements, so try stores, loads, and store+load pairs.
      if (move.type != MoveType::Store && move.type != MoveType::Load) {
        continue;
      }
      // Candidate 1: drop the move alone.
      Trace cand = without_indices(best, i);
      VerifyResult vr = verify(engine, cand);
      if (vr.ok() && vr.total < best_cost) {
        best = std::move(cand);
        best_cost = vr.total;
        ++local.removed_moves;
        improved = true;
        continue;
      }
      // Candidate 2: a store together with the next load of the same node.
      if (move.type == MoveType::Store) {
        for (std::size_t j = i + 1; j < best.size(); ++j) {
          if (best[j].node != move.node) continue;
          if (best[j].type == MoveType::Load) {
            Trace pair = without_indices(best, i, j);
            VerifyResult pv = verify(engine, pair);
            if (pv.ok() && pv.total < best_cost) {
              best = std::move(pair);
              best_cost = pv.total;
              local.removed_moves += 2;
              improved = true;
            }
          }
          break;  // only the node's next touch matters
        }
      }
    }
    if (!improved) break;
  }

  local.saved = current.total - best_cost;
  if (stats) *stats = local;
  return best;
}

}  // namespace rbpeb
