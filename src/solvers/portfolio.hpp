// Portfolio solving: race registered solvers on one request and keep the
// best verified trace.
//
// The costs being compared are all audited by the Verifier (api.hpp), so
// "best" is trustworthy no matter which heuristic produced it. With
// `parallel` the solvers run on std::threads; once one returns a provably
// Optimal result the shared cancellation flag is raised so budget-aware
// solvers (exact, local-search) abandon work that can no longer win.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/solvers/api.hpp"

namespace rbpeb {

struct PortfolioOptions {
  /// Solver names to run; empty = every solver in the registry. Unknown
  /// names throw PreconditionError up front.
  std::vector<std::string> solvers;
  /// Run solvers on worker threads (the Engine is shared read-only).
  bool parallel = true;
  /// Raise the shared cancel flag once an Optimal result lands, so
  /// still-running solvers stop early; queued solvers are skipped.
  bool cancel_on_optimal = true;
  /// Worker-thread cap; 0 = hardware concurrency. Also granted, as
  /// SolveBudget::threads, to every racing solver whose request left the
  /// field unset — so a thread-aware solver (hda-astar) puts the whole core
  /// budget behind one exact solve instead of occupying one racing slot.
  std::size_t max_threads = 0;
};

struct PortfolioResult {
  /// One entry per requested solver, in request order. Solvers skipped by
  /// the early exit report BudgetExhausted with an explanatory detail.
  std::vector<SolveResult> results;
  /// Index into `results` of the cheapest verified trace, or npos.
  std::size_t best_index = static_cast<std::size_t>(-1);

  bool has_best() const {
    return best_index != static_cast<std::size_t>(-1);
  }
  const SolveResult& best() const;
};

/// Run the portfolio. Each solver sees `request` with the budget's cancel
/// flag rewired to the portfolio's shared stop flag (combined with any
/// caller-provided flag, which is polled between solver starts). The best
/// result is the minimum verified cost over all returned traces, preferring
/// Optimal status and earlier registration on ties.
PortfolioResult solve_portfolio(
    const SolveRequest& request, const PortfolioOptions& options = {},
    const SolverRegistry& registry = SolverRegistry::instance());

/// Collapse a portfolio run into one SolveResult — what a caller treating
/// "portfolio" as just another solver (the serve layer) consumes. The
/// winner's result is returned with aggregate stats folded in
/// (portfolio_solvers, portfolio_winner, portfolio_traces); with no
/// verified trace the result is BudgetExhausted (or Inapplicable when every
/// solver was) with the per-solver failure details joined.
SolveResult flatten_portfolio(PortfolioResult portfolio);

}  // namespace rbpeb
