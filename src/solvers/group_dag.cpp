#include "src/solvers/group_dag.hpp"

#include <algorithm>
#include <limits>

#include "src/pebble/verifier.hpp"
#include "src/support/check.hpp"

namespace rbpeb {

std::vector<std::vector<std::size_t>> group_dependencies(
    const GroupDagInstance& instance) {
  const std::size_t m = instance.group_count();
  // target_owner[v] = group whose target v is (construction invariant:
  // every node is the target of at most one group).
  std::vector<std::size_t> target_owner(instance.dag.node_count(), m);
  for (std::size_t g = 0; g < m; ++g) {
    for (NodeId t : instance.groups[g].targets) {
      RBPEB_REQUIRE(target_owner[t] == m,
                    "a node may be the target of at most one group");
      target_owner[t] = g;
    }
  }
  std::vector<std::vector<std::size_t>> deps(m);
  for (std::size_t h = 0; h < m; ++h) {
    for (NodeId v : instance.groups[h].members) {
      std::size_t g = target_owner[v];
      if (g != m && g != h) deps[h].push_back(g);
    }
    std::sort(deps[h].begin(), deps[h].end());
    deps[h].erase(std::unique(deps[h].begin(), deps[h].end()), deps[h].end());
  }
  return deps;
}

bool is_valid_visit_order(const GroupDagInstance& instance,
                          const std::vector<std::size_t>& order) {
  const std::size_t m = instance.group_count();
  if (order.size() != m) return false;
  std::vector<std::size_t> position(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    if (order[i] >= m || position[order[i]] != m) return false;
    position[order[i]] = i;
  }
  auto deps = group_dependencies(instance);
  for (std::size_t h = 0; h < m; ++h) {
    for (std::size_t g : deps[h]) {
      if (position[g] >= position[h]) return false;
    }
  }
  return true;
}

namespace {

/// Shared machinery for visit-order pebbling and the group-level greedy.
class GroupPebbler {
 public:
  GroupPebbler(const Engine& engine, const GroupDagInstance& instance)
      : engine_(engine),
        instance_(instance),
        dag_(instance.dag),
        state_(engine.initial_state()),
        n_(dag_.node_count()),
        remaining_uses_(n_, 0),
        in_current_group_(n_, 0),
        is_sink_(n_, false) {
    for (std::size_t v = 0; v < n_; ++v) {
      remaining_uses_[v] =
          static_cast<std::int64_t>(dag_.outdegree(static_cast<NodeId>(v)));
    }
    for (NodeId s : dag_.sinks()) is_sink_[s] = true;
  }

  /// Number of members of group g currently holding a red pebble.
  std::size_t red_members(std::size_t g) const {
    std::size_t count = 0;
    for (NodeId m : instance_.groups[g].members) {
      if (state_.is_red(m)) ++count;
    }
    return count;
  }

  /// Visit one group: make all members red, then compute each target.
  void visit(std::size_t g) {
    const InputGroup& group = instance_.groups[g];
    const Model& model = engine_.model();
    for (NodeId m : group.members) in_current_group_[m] = 1;

    // Red pebbles outside the group are the eviction candidates; collected
    // once per visit and consumed on demand, best class first.
    std::vector<NodeId> evictable;
    for (NodeId r : state_.red_nodes()) {
      if (!in_current_group_[r]) evictable.push_back(r);
    }

    for (NodeId m : group.members) {
      if (state_.is_red(m)) continue;
      make_room(evictable, kInvalidNode);
      acquire(m);
    }
    for (NodeId t : group.targets) {
      // Chained targets (e.g. CD-gadget layers) consume the previous target
      // as an input; it must not be evicted while t is being computed.
      make_room(evictable, t);
      apply(compute(t));
      // The freshly computed target competes for slots with later targets.
      evictable.push_back(t);
    }

    for (NodeId m : group.members) in_current_group_[m] = 0;

    // Free dead red pebbles immediately where deletion is allowed; in nodel
    // they stay red (storing them early would only add cost — the group
    // visited last keeps its pebbles, paper Appendix A.2).
    if (model.allows_delete()) {
      for (NodeId v : group.members) {
        if (dead(v) && state_.is_red(v)) apply(erase(v));
      }
      for (NodeId v : group.targets) {
        if (dead(v) && state_.is_red(v)) apply(erase(v));
      }
    }
  }

  /// Store every live, non-sink red pebble (a phase barrier; see header).
  void flush_live_reds() {
    for (NodeId r : state_.red_nodes()) {
      if (!dead(r) && !is_sink_[r]) apply(store(r));
    }
  }

  Trace take_trace() { return std::move(trace_); }

 private:
  void apply(Move move) {
    // Deadness is tracked at DAG granularity: each first computation of a
    // node consumes one use of every input (recomputations don't re-count).
    bool first_compute = move.type == MoveType::Compute &&
                         !state_.was_computed(move.node);
    Cost scratch;
    engine_.apply(state_, move, scratch);
    trace_.push(move);
    if (first_compute) {
      for (NodeId p : dag_.predecessors(move.node)) --remaining_uses_[p];
    }
  }

  /// True when the pebble on v has no possible future use.
  bool dead(NodeId v) const {
    return remaining_uses_[v] == 0 && !is_sink_[v];
  }

  /// True if re-deriving `v` by Step 3 is legal and at most as expensive as
  /// a load: only DAG sources are ever recomputed (gadgets make everything
  /// else costly to recompute, so solvers need not consider it).
  bool recomputable(NodeId v) const {
    return engine_.model().allows_recompute() && dag_.is_source(v);
  }

  /// Make a node red, assuming capacity for one more red pebble.
  void acquire(NodeId m) {
    if (state_.is_blue(m)) {
      if (recomputable(m)) {
        apply(compute(m));  // replaces blue by red; free (or ε) vs. load's 1
      } else {
        apply(load(m));
      }
      return;
    }
    RBPEB_ENSURE(state_.is_empty(m), "acquire called on a red node");
    if (state_.was_computed(m)) {
      RBPEB_ENSURE(recomputable(m),
                   "a needed non-recomputable pebble was deleted");
    }
    // First computation (sources of the construction, or a dependency bug
    // which the engine will reject because an input is not red).
    apply(compute(m));
  }

  /// Eviction preference, lower is better:
  ///   0 — dead (never needed again, not a sink): delete where allowed;
  ///   1 — recomputable source: cheap to re-derive later;
  ///   2 — anything else: store now, load later.
  int victim_class(NodeId v) const {
    if (dead(v)) return 0;
    if (recomputable(v)) return 1;
    return 2;
  }

  /// Free one red slot if the budget is full, consuming from `evictable`.
  /// When `upcoming` is a node about to be computed, its inputs are shielded.
  void make_room(std::vector<NodeId>& evictable, NodeId upcoming) {
    if (state_.red_count() < engine_.red_limit()) return;
    std::vector<bool> shielded;
    if (upcoming != kInvalidNode) {
      shielded.assign(n_, false);
      for (NodeId p : dag_.predecessors(upcoming)) shielded[p] = true;
    }
    auto eligible = [&](NodeId v) {
      return shielded.empty() || !shielded[v];
    };
    NodeId victim = kInvalidNode;
    std::size_t victim_pos = 0;
    for (std::size_t i = 0; i < evictable.size(); ++i) {
      NodeId cand = evictable[i];
      if (!eligible(cand)) continue;
      if (victim == kInvalidNode) {
        victim = cand;
        victim_pos = i;
        continue;
      }
      int cc = victim_class(cand), cv = victim_class(victim);
      if (cc < cv || (cc == cv && cand < victim)) {
        victim = cand;
        victim_pos = i;
      }
    }
    RBPEB_ENSURE(victim != kInvalidNode,
                 "red budget full with nothing evictable");
    evictable[victim_pos] = evictable.back();
    evictable.pop_back();
    int cls = victim_class(victim);
    bool can_drop = engine_.model().allows_delete() &&
                    (cls == 0 || (cls == 1 && recomputable(victim)));
    if (can_drop) {
      apply(erase(victim));
    } else {
      apply(store(victim));
    }
  }

  const Engine& engine_;
  const GroupDagInstance& instance_;
  const Dag& dag_;
  GameState state_;
  Trace trace_;
  const std::size_t n_;
  std::vector<std::int64_t> remaining_uses_;
  std::vector<char> in_current_group_;
  std::vector<bool> is_sink_;
};

}  // namespace

Trace pebble_visit_order(const Engine& engine, const GroupDagInstance& instance,
                         const std::vector<std::size_t>& order,
                         const std::vector<std::size_t>& barriers) {
  RBPEB_REQUIRE(is_valid_visit_order(instance, order),
                "visit order violates group dependencies");
  GroupPebbler pebbler(engine, instance);
  for (std::size_t position = 0; position < order.size(); ++position) {
    pebbler.visit(order[position]);
    if (std::find(barriers.begin(), barriers.end(), position) !=
        barriers.end()) {
      pebbler.flush_live_reds();
    }
  }
  return pebbler.take_trace();
}

GroupSolveResult solve_group_greedy(const Engine& engine,
                                    const GroupDagInstance& instance) {
  const std::size_t m = instance.group_count();
  auto deps = group_dependencies(instance);
  std::vector<std::size_t> unmet(m, 0);
  for (std::size_t g = 0; g < m; ++g) unmet[g] = deps[g].size();
  std::vector<std::vector<std::size_t>> dependents(m);
  for (std::size_t h = 0; h < m; ++h) {
    for (std::size_t g : deps[h]) dependents[g].push_back(h);
  }

  GroupPebbler pebbler(engine, instance);
  std::vector<bool> visited(m, false);
  GroupSolveResult result;
  result.order.reserve(m);
  for (std::size_t step = 0; step < m; ++step) {
    // Enabled group with the most red pebbles on its members; ties broken
    // toward the smallest index (deterministic).
    std::size_t best = m;
    std::size_t best_score = 0;
    for (std::size_t g = 0; g < m; ++g) {
      if (visited[g] || unmet[g] > 0) continue;
      std::size_t score = pebbler.red_members(g);
      if (best == m || score > best_score) {
        best = g;
        best_score = score;
      }
    }
    RBPEB_ENSURE(best != m, "group dependencies contain a cycle");
    pebbler.visit(best);
    visited[best] = true;
    result.order.push_back(best);
    for (std::size_t h : dependents[best]) --unmet[h];
  }
  result.trace = pebbler.take_trace();
  return result;
}

GroupSolveResult solve_exhaustive_order(const Engine& engine,
                                        const GroupDagInstance& instance) {
  const std::size_t m = instance.group_count();
  RBPEB_REQUIRE(m <= 9, "exhaustive order search is limited to 9 groups");
  auto deps = group_dependencies(instance);
  std::vector<std::uint32_t> dep_mask(m, 0);
  for (std::size_t h = 0; h < m; ++h) {
    for (std::size_t g : deps[h]) dep_mask[h] |= (1u << g);
  }

  std::vector<std::size_t> order;
  order.reserve(m);
  GroupSolveResult best;
  bool have_best = false;
  Rational best_cost(0);

  // Depth-first enumeration of dependency-respecting permutations.
  auto recurse = [&](auto&& self, std::uint32_t mask) -> void {
    if (order.size() == m) {
      Trace trace = pebble_visit_order(engine, instance, order);
      VerifyResult vr = verify(engine, trace);
      RBPEB_ENSURE(vr.ok(), "generated trace failed verification");
      if (!have_best || vr.total < best_cost) {
        have_best = true;
        best_cost = vr.total;
        best.order = order;
        best.trace = std::move(trace);
      }
      return;
    }
    for (std::size_t g = 0; g < m; ++g) {
      if (mask & (1u << g)) continue;
      if ((dep_mask[g] & mask) != dep_mask[g]) continue;
      order.push_back(g);
      self(self, mask | (1u << g));
      order.pop_back();
    }
  };
  recurse(recurse, 0);
  RBPEB_ENSURE(have_best, "no dependency-respecting visit order exists");
  return best;
}

}  // namespace rbpeb
