// The greedy pebbling heuristics of Section 8.
//
// A greedy pebbling is an ordering of the (first) computation of nodes: in
// each step, among the uncomputed nodes whose inputs have all been computed,
// one is chosen by a myopic rule. The three rules the paper analyzes:
//   * largest number of red pebbles among the inputs,
//   * smallest number of blue pebbles among the inputs,
//   * largest red-pebbles-to-inputs ratio.
// In the models that allow recomputation we follow the paper's Appendix A.4
// interpretation: greedy orders *first* computations and never recomputes.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "src/pebble/engine.hpp"
#include "src/pebble/trace.hpp"
#include "src/solvers/eviction.hpp"

namespace rbpeb {

/// Node-choice rule (paper, Section 8).
enum class GreedyRule {
  MostRedInputs,
  FewestBlueInputs,
  RedRatio,
};

const char* to_string(GreedyRule rule);

/// Inverse of to_string; nullopt for unknown names.
std::optional<GreedyRule> greedy_rule_from_name(std::string_view name);

/// Configuration of a greedy run.
struct GreedyOptions {
  GreedyRule rule = GreedyRule::MostRedInputs;
  EvictionRule eviction = EvictionRule::FewestRemainingUses;
  /// Immediately delete red pebbles that will never be used again (when the
  /// model allows deletion). Matches the paper's accounting, where dead
  /// pebbles are removed for free.
  bool eager_delete_dead = true;
  /// Seed for the Random eviction rule.
  std::uint64_t seed = 1;
};

/// Run the greedy heuristic to completion and return the trace.
///
/// The trace computes every node exactly once; it is legal in all four
/// models (deletions are replaced by stores under nodel) and complete.
/// Complexity: O(n · (n + Δ)) time with incremental candidate scoring.
Trace solve_greedy(const Engine& engine, const GreedyOptions& options = {});

}  // namespace rbpeb
