// Anytime weighted-A* — every instance size gets an answer with a guarantee.
//
// Past the sizes exact search can prove optimal within budget, the paper's
// hardness results (Sections 2 and 5: NP-hardness, inapproximability of the
// general problem) say a production service must trade optimality away —
// but it need not trade the *guarantee* away. This tier runs a schedule of
// weighted-A* passes (descending weights w ≥ 1) that iteratively tighten a
// verified incumbent, and pairs the returned trace with a machine-checkable
// certificate: an admissible lower bound L on the optimum with
//
//     cost ≤ (1+ε)·L,   ε = (cost − L) / L.
//
// Two facts make the certificate sound under any expansion order:
//
//  * Pruning discipline. A pass orders its queue by g + w·h but prunes a
//    generated state only when its *unweighted* f = g + h reaches the
//    incumbent (no cheaper completion can pass through it) or the bound
//    proves it dead. Inflated weights distort the schedule, never the
//    reachable set below the incumbent.
//  * The frontier lemma. For any completion cheaper than the incumbent
//    that the pass has not found, some state on its path is open with
//    g no larger than the path's prefix cost, hence with unweighted
//    f = g + h no larger than the completion's cost. So when a pass is cut
//    by its budget, min(incumbent, min unweighted f over the remaining
//    open items) lower-bounds the optimum — computed by draining the
//    queue, stale entries included (extras only lower the min, keeping it
//    admissible). A pass that *drains* proves the incumbent optimal
//    outright, even at w > 1.
//
// The overall lower bound is the max of the admissible start bound and the
// per-pass frontier bounds; the incumbent is the cheapest verified trace
// seen (the greedy seed until the search beats it). ε = 0 means proven
// optimal. Certificates survive every termination: state budget, deadline,
// even a memory-budget abort keeps the bounds from completed passes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/pebble/engine.hpp"
#include "src/solvers/exact.hpp"

namespace rbpeb {

/// One weighted-A* pass's weight as an exact ratio ≥ 1 (integer arithmetic
/// keeps the Dial-queue priorities integral).
struct AnytimeWeight {
  std::int64_t num = 1;
  std::int64_t den = 1;
};

struct AnytimeOptions {
  /// The pass schedule, highest (greediest) weight first. The state budget
  /// is split evenly across passes; a drained pass proves optimality and
  /// ends the schedule early. Defaults to 3, 2, 3/2, 1.
  std::vector<AnytimeWeight> weights = {{3, 1}, {2, 1}, {3, 2}, {1, 1}};
  /// Stop as soon as ε ≤ target_epsilon (0 = run the full schedule or to a
  /// proof). A stopping rule only — the returned certificate is exact.
  double target_epsilon = 0.0;
};

struct AnytimeResult {
  Trace trace;          ///< The incumbent: best verified pebbling found.
  Rational cost;        ///< Its model cost.
  Rational lower_bound; ///< Proved admissible lower bound on the optimum.
  Rational epsilon;     ///< (cost − lower_bound) / lower_bound; 0 = optimal.
  bool optimal = false; ///< cost == lower_bound: the trace is proven optimal.
  /// False in the degenerate corner lower_bound == 0 < cost, where no
  /// finite ε satisfies the certificate inequality. The trace is still a
  /// valid (verified) pebbling; it just ships without a guarantee.
  bool certified = true;
  std::size_t states_expanded = 0;
};

/// Run the anytime tier. Returns nullopt only when no trace exists at all —
/// no seed was supplied and no pass found a completion within budget
/// (`stats` then carries the lower bound the passes still proved). Shares
/// ExactSearchOptions with the exact searches: seeds, PDBs, memory budgets,
/// spill, and the forced-width testing hooks all apply. Node cap:
/// kExactAstarMaxNodes (exact_astar.hpp), asserted inside.
std::optional<AnytimeResult> try_solve_anytime_astar(
    const Engine& engine, const ExactSearchOptions& options,
    const AnytimeOptions& anytime = {}, ExactSearchStats* stats = nullptr);

}  // namespace rbpeb
