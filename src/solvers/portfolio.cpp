#include "src/solvers/portfolio.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "src/obs/trace.hpp"
#include "src/solvers/hda/hda_astar.hpp"
#include "src/support/check.hpp"

namespace rbpeb {

const SolveResult& PortfolioResult::best() const {
  RBPEB_REQUIRE(has_best(), "portfolio produced no verified trace");
  return results[best_index];
}

namespace {

/// True when `candidate` beats `incumbent` (both must carry traces).
bool better(const SolveResult& candidate, const SolveResult& incumbent) {
  if (candidate.cost != incumbent.cost) {
    return candidate.cost < incumbent.cost;
  }
  return candidate.status == SolveStatus::Optimal &&
         incumbent.status != SolveStatus::Optimal;
}

}  // namespace

SolveResult flatten_portfolio(PortfolioResult portfolio) {
  std::size_t traces = 0;
  for (const SolveResult& result : portfolio.results) {
    traces += result.has_trace() ? 1 : 0;
  }
  if (portfolio.has_best()) {
    SolveResult best = std::move(portfolio.results[portfolio.best_index]);
    best.stats["portfolio_solvers"] = std::to_string(portfolio.results.size());
    best.stats["portfolio_winner"] = best.solver;
    best.stats["portfolio_traces"] = std::to_string(traces);
    return best;
  }
  SolveResult failed;
  failed.solver = "portfolio";
  failed.status = SolveStatus::Inapplicable;
  std::string detail = "no solver produced a verified trace";
  for (const SolveResult& result : portfolio.results) {
    // One BudgetExhausted racer means a bigger budget might still win, so
    // the collapsed status must not claim the instance is unsolvable.
    if (result.status == SolveStatus::BudgetExhausted) {
      failed.status = SolveStatus::BudgetExhausted;
    }
    if (!result.detail.empty()) {
      detail += "; " + result.solver + ": " + result.detail;
    }
  }
  failed.detail = std::move(detail);
  failed.stats["portfolio_solvers"] = std::to_string(portfolio.results.size());
  failed.stats["portfolio_traces"] = "0";
  return failed;
}

PortfolioResult solve_portfolio(const SolveRequest& request,
                                const PortfolioOptions& options,
                                const SolverRegistry& registry) {
  RBPEB_REQUIRE(request.engine != nullptr, "SolveRequest.engine is required");
  const obs::TraceSpan span("portfolio.race");

  std::vector<const Solver*> solvers;
  if (options.solvers.empty()) {
    solvers = registry.solvers();
  } else {
    for (const std::string& name : options.solvers) {
      solvers.push_back(&registry.at(name));  // throws on unknown names
    }
  }

  // One option set serves the whole race: each solver receives only the
  // keys it accepts (run() rejects the rest). A key no racing solver
  // accepts is a typo, not a narrowing matter — fail it loudly up front.
  for (const auto& [key, value] : request.options) {
    const bool accepted = std::any_of(
        solvers.begin(), solvers.end(),
        [&key = key, &request](const Solver* solver) {
          const auto keys = solver->option_keys(&request);
          return std::find(keys.begin(), keys.end(), key) != keys.end();
        });
    if (!accepted) {
      throw PreconditionError("option '" + key +
                              "' is not accepted by any solver in the "
                              "portfolio");
    }
  }

  PortfolioResult portfolio;
  portfolio.results.resize(solvers.size());

  // The portfolio's core budget. A thread-aware solver (hda-astar) whose
  // request left budget.threads unset is granted all of it — the whole
  // machine behind one exact solve beats one racing slot, and the transient
  // oversubscription is cheap: racers either finish fast or are cancelled
  // the moment an optimal result lands. The grant is clamped to the
  // solver-side thread cap: an absurd --jobs is a pool-sizing choice here,
  // not a per-solver request, and must not knock hda-astar out of the race.
  const std::size_t core_budget = std::max<std::size_t>(
      1, options.max_threads != 0
             ? options.max_threads
             : std::thread::hardware_concurrency());
  const std::size_t thread_grant = std::min(core_budget, kHdaAstarMaxThreads);

  // The shared early-exit flag. Solvers see this instead of the caller's
  // cancel flag, so a watcher thread (below) folds the caller's flag in
  // while solvers run; it is also polled before each solver starts.
  std::atomic<bool> stop{false};
  const std::atomic<bool>* caller_cancel = request.budget.cancel;
  std::atomic<bool> found_optimal{false};

  auto run_one = [&](std::size_t index) {
    if (caller_cancel && caller_cancel->load(std::memory_order_relaxed)) {
      stop.store(true, std::memory_order_relaxed);
    }
    if (stop.load(std::memory_order_relaxed)) {
      SolveResult skipped;
      skipped.solver = std::string(solvers[index]->name());
      skipped.status = SolveStatus::BudgetExhausted;
      skipped.detail = found_optimal.load(std::memory_order_relaxed)
                           ? "skipped: the portfolio already holds an "
                             "optimal result"
                           : "skipped: portfolio cancelled";
      portfolio.results[index] = std::move(skipped);
      return;
    }
    SolveRequest per_solver = request;
    per_solver.budget.cancel = &stop;
    if (per_solver.budget.threads == 0) {
      per_solver.budget.threads = thread_grant;
    }
    per_solver.options =
        solvers[index]->supported_options(request.options, &request);
    SolveResult result;
    try {
      result = solvers[index]->run(per_solver);
    } catch (const std::exception& e) {
      result.solver = std::string(solvers[index]->name());
      result.status = SolveStatus::Inapplicable;
      result.detail = std::string("solver threw: ") + e.what();
    }
    if (options.cancel_on_optimal && result.status == SolveStatus::Optimal) {
      found_optimal.store(true, std::memory_order_relaxed);
      stop.store(true, std::memory_order_relaxed);
    }
    portfolio.results[index] = std::move(result);
  };

  // Relay the caller's cancellation into the shared flag with bounded
  // latency, preserving the SolveBudget.cancel contract for solvers that
  // are already mid-run when the caller cancels.
  std::atomic<bool> done{false};
  std::thread watcher;
  if (caller_cancel != nullptr) {
    watcher = std::thread([&] {
      while (!done.load(std::memory_order_relaxed)) {
        if (caller_cancel->load(std::memory_order_relaxed)) {
          stop.store(true, std::memory_order_relaxed);
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  if (options.parallel && solvers.size() > 1) {
    const std::size_t worker_count = std::min(core_budget, solvers.size());
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(worker_count);
    for (std::size_t w = 0; w < worker_count; ++w) {
      workers.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
             i < solvers.size();
             i = next.fetch_add(1, std::memory_order_relaxed)) {
          run_one(i);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  } else {
    for (std::size_t i = 0; i < solvers.size(); ++i) run_one(i);
  }
  done.store(true, std::memory_order_relaxed);
  if (watcher.joinable()) watcher.join();

  for (std::size_t i = 0; i < portfolio.results.size(); ++i) {
    const SolveResult& result = portfolio.results[i];
    if (!result.has_trace()) continue;
    if (!portfolio.has_best() ||
        better(result, portfolio.results[portfolio.best_index])) {
      portfolio.best_index = i;
    }
  }
  return portfolio;
}

}  // namespace rbpeb
