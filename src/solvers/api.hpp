// The unified solver API: every pebbling solver in rbpeb behind one
// polymorphic interface, discoverable by name through a registry.
//
// Before this layer each solver was a bespoke free function with its own
// options struct and result type; the CLI and every bench hand-wired the
// dispatch. A SolveRequest now carries the engine (rules + budget R),
// optional structured views of the instance (group structure, tradeoff
// chain), string-keyed options, and a SolveBudget; a SolveResult carries the
// trace, its *verified* cost (replayed through the Verifier — solvers still
// cannot misreport), a status, and per-solver stats. The registry is the
// extension point new heuristics plug into; solve_portfolio (portfolio.hpp)
// races registered solvers against each other.
#pragma once

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/gadgets/tradeoff_chain.hpp"
#include "src/pebble/engine.hpp"
#include "src/pebble/trace.hpp"
#include "src/solvers/group_dag.hpp"

namespace rbpeb {

namespace obs {
class SearchProgressSampler;
}  // namespace obs

/// How a solve ended.
enum class SolveStatus {
  Optimal,          ///< Trace is provably optimal for the request.
  Heuristic,        ///< Trace is legal and complete; no optimality claim.
  BudgetExhausted,  ///< Budget ended the run; a best-so-far trace may exist.
  Inapplicable,     ///< Solver cannot run on this request (see detail).
};

const char* to_string(SolveStatus status);

/// Resource limits for one solve. All limits are cooperative: solvers poll
/// them at natural checkpoints (state expansions, anneal iterations).
struct SolveBudget {
  /// Configuration-graph states an exhaustive solver may expand.
  std::size_t max_states = 2'000'000;
  /// Iterations an iterative solver may run when the request's options do
  /// not say otherwise.
  std::size_t max_iterations = 2'000;
  /// Worker threads a parallel solver (hda-astar) may spread one solve
  /// across; 0 = hardware concurrency. The portfolio fills this with its
  /// whole core budget so a parallel solver gets the machine, not one
  /// racing slot.
  std::size_t threads = 0;
  /// Byte cap on a solver's dominant search structure (the exact searches'
  /// closed tables; hda-astar splits it across shards); 0 = unlimited. The
  /// informed searches spill cold closed entries to disk when they hit it
  /// (see max_disk_bytes and the `spill` option); with spilling off,
  /// exceeding it ends the solve as BudgetExhausted with partial stats —
  /// never an OOM kill. CLI: --budget-memory.
  std::size_t max_memory_bytes = 0;
  /// Byte cap on the disk spill runs backing a memory-budgeted exact
  /// search (hda-astar splits it across shards); 0 = unlimited. Exceeding
  /// it ends the solve as BudgetExhausted. CLI: --budget-disk.
  std::size_t max_disk_bytes = 0;
  /// Wall-clock deadline; unset = none.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// External cancellation flag (not owned); set to true to abandon the
  /// solve at the next checkpoint. Used by the portfolio's early exit.
  const std::atomic<bool>* cancel = nullptr;

  /// Convenience: set the deadline `ms` milliseconds from now.
  SolveBudget& with_wall_clock_ms(std::int64_t ms);

  bool cancelled() const {
    return cancel != nullptr && cancel->load(std::memory_order_relaxed);
  }
  bool past_deadline() const {
    return deadline.has_value() && std::chrono::steady_clock::now() >= *deadline;
  }
  /// True once any budget dimension other than counters has tripped.
  bool interrupted() const { return cancelled() || past_deadline(); }
};

/// String-keyed solver options (from the CLI's --opt k=v). Every solver
/// declares the keys it reads (Solver::option_keys) and run() rejects
/// anything else, so a typo like rulee=lru fails loudly instead of silently
/// running defaults. One option set can still serve a whole portfolio:
/// solve_portfolio narrows it per solver via Solver::supported_options.
using SolverOptions = std::map<std::string, std::string, std::less<>>;

/// Everything a solver may look at. `engine` is required; `groups` and
/// `chain` are optional structured views some solvers need (a solver
/// requiring one declares itself inapplicable when it is absent). All
/// pointees must outlive the request.
struct SolveRequest {
  const Engine* engine = nullptr;
  const GroupDagInstance* groups = nullptr;
  const TradeoffChain* chain = nullptr;
  SolverOptions options;
  SolveBudget budget;
  /// Optional progress sampler (obs/introspect.hpp). The informed searches
  /// (exact-astar, hda-astar, anytime-astar) poll it at their 1024-expansion
  /// checkpoints; other solvers ignore it. Non-owning; must outlive the
  /// solve. Null (the default) keeps every solver byte-identical to an
  /// un-instrumented run.
  obs::SearchProgressSampler* progress = nullptr;
};

/// A machine-checkable suboptimality guarantee attached to a solve: the
/// trace's verified cost is within (1+epsilon) of the optimum, witnessed by
/// an admissible lower bound. The defining inequality
///
///     cost ≤ (1 + epsilon) · lower_bound
///
/// holds by construction (epsilon = (cost − lower_bound)/lower_bound, all
/// exact rationals) and is what every downstream audit re-checks — the serve
/// layer's trace cache refuses entries that fail it. epsilon == 0 means the
/// trace is proven optimal. Produced by the anytime tier
/// (solvers/anytime_astar.hpp); the portfolio carries it through verbatim.
struct SolveCertificate {
  Rational lower_bound;  ///< Proved admissible lower bound on the optimum.
  Rational cost;         ///< The trace's verified cost (equals SolveResult::cost).
  Rational epsilon;      ///< (cost − lower_bound) / lower_bound.
};

/// The certificate audit every downstream consumer runs: the recorded cost
/// must match the independently audited replay cost, and the defining
/// inequality cost ≤ (1+epsilon)·lower_bound must hold in exact rational
/// arithmetic. A certificate failing this is corrupt or miscomputed and
/// must not be served.
bool certificate_holds(const SolveCertificate& certificate,
                       const Rational& audited_cost);

/// Outcome of one solver run. The trace, when present, has been replayed
/// through the Verifier by the API layer; `cost` is the audited total.
struct SolveResult {
  std::string solver;
  SolveStatus status = SolveStatus::Inapplicable;
  std::optional<Trace> trace;
  Rational cost;  ///< Verified model cost of *trace; meaningless without one.
  /// Suboptimality guarantee, when the solver proves one (anytime-astar;
  /// portfolio when an anytime member wins). Absent for plain heuristics
  /// and for exact solves, whose Optimal status already says epsilon = 0.
  std::optional<SolveCertificate> certificate;
  std::map<std::string, std::string> stats;
  std::chrono::microseconds elapsed{0};
  std::string detail;  ///< Why inapplicable / which budget tripped.

  bool ok() const {
    return status == SolveStatus::Optimal || status == SolveStatus::Heuristic;
  }
  bool has_trace() const { return trace.has_value(); }
};

/// A named pebbling strategy. Implementations adapt the existing free
/// functions (greedy, exact, …); new solvers subclass this directly.
class Solver {
 public:
  virtual ~Solver() = default;

  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;

  /// The option keys this solver reads from SolveRequest.options. run()
  /// throws PreconditionError (naming this list) for any key outside it.
  /// Delegating solvers (peephole) accept different keys depending on which
  /// inner solver the request selects, hence the optional request context;
  /// plain solvers ignore it.
  virtual std::vector<std::string_view> option_keys(
      const SolveRequest* request = nullptr) const;

  /// The subset of `options` this solver accepts — what the portfolio and
  /// delegating solvers (peephole) forward from a shared option set.
  SolverOptions supported_options(const SolverOptions& options,
                                  const SolveRequest* request = nullptr) const;

  /// nullopt when the solver can run on `request`; otherwise a
  /// human-readable reason (missing group structure, too many nodes, …).
  virtual std::optional<std::string> why_inapplicable(
      const SolveRequest& request) const;

  bool applicable(const SolveRequest& request) const {
    return !why_inapplicable(request).has_value();
  }

  /// Run on `request`: applicability check, timing, dispatch, verification.
  /// Budget overruns come back as BudgetExhausted, never as exceptions.
  SolveResult run(const SolveRequest& request) const;

 protected:
  /// The strategy itself; called only on applicable requests. Implementations
  /// return their trace via make_result()/fail() so verification and
  /// convention bridging stay centralized in the API layer.
  virtual SolveResult do_solve(const SolveRequest& request) const = 0;

  /// Verify `trace` under the request's engine and wrap it up. When the
  /// engine uses a non-default PebblingConvention and the solver works in
  /// default-convention terms (`bridge_conventions` true), the trace is
  /// first rewritten via the Appendix C transforms; a trace the bridge
  /// cannot fix comes back Inapplicable rather than throwing.
  SolveResult make_result(const SolveRequest& request, Trace trace,
                          SolveStatus status,
                          std::map<std::string, std::string> stats = {},
                          bool bridge_conventions = true) const;

  /// A traceless result (Inapplicable or BudgetExhausted).
  SolveResult fail(SolveStatus status, std::string detail) const;

 private:
  /// Throws PreconditionError when the request holds an option key outside
  /// option_keys(&request), listing the accepted keys.
  void validate_options(const SolveRequest& request) const;
};

/// Name-indexed solver collection. Holds and owns one instance per solver;
/// iteration order is registration order, which is stable for display.
class SolverRegistry {
 public:
  SolverRegistry() = default;
  SolverRegistry(const SolverRegistry&) = delete;
  SolverRegistry& operator=(const SolverRegistry&) = delete;

  /// Register a solver. Throws PreconditionError on a duplicate name.
  void add(std::unique_ptr<Solver> solver);

  /// nullptr when no solver has that name.
  const Solver* find(std::string_view name) const;

  /// Like find but throws PreconditionError listing the known names.
  const Solver& at(std::string_view name) const;

  std::vector<std::string> names() const;
  std::vector<const Solver*> solvers() const;
  std::size_t size() const { return solvers_.size(); }

  /// The process-wide registry, with all built-in solvers registered.
  static const SolverRegistry& instance();

 private:
  std::vector<std::unique_ptr<Solver>> solvers_;
};

/// Register every built-in adapter (greedy ×3 rules, topo, exact,
/// exact-astar, hda-astar, anytime-astar, peephole, held-karp, chain,
/// group-greedy, local-search, exhaustive-order) into `registry`. Called
/// once by SolverRegistry::instance(); exposed so tests can build private
/// registries.
void register_builtin_solvers(SolverRegistry& registry);

/// Canonical serialization of an option set: "k=v" pairs, sorted by key,
/// joined with an unprintable separator (0x1f) no CLI-supplied key or value
/// can contain a collision-free stand-in for. Two option sets serialize
/// equal iff they are equal — the stable option fingerprint the serve
/// layer's trace cache hashes into its request key.
std::string canonical_option_string(const SolverOptions& options);

/// Option-parsing helpers shared by the adapters and the CLI. All throw
/// PreconditionError with the offending key and value on malformed input.
namespace solver_options {

std::optional<std::string_view> get(const SolverOptions& options,
                                    std::string_view key);
std::size_t get_size(const SolverOptions& options, std::string_view key,
                     std::size_t fallback);
std::uint64_t get_u64(const SolverOptions& options, std::string_view key,
                      std::uint64_t fallback);
double get_double(const SolverOptions& options, std::string_view key,
                  double fallback);
bool get_bool(const SolverOptions& options, std::string_view key,
              bool fallback);
/// Parse a model name via Model::from_name; throws on unknown names.
Model get_model(const SolverOptions& options, std::string_view key,
                const Model& fallback);
/// Parse a model name directly (CLI --model); throws on unknown names.
Model parse_model(std::string_view name);

}  // namespace solver_options

}  // namespace rbpeb
