#include "src/solvers/local_search.hpp"

#include <cmath>

#include "src/pebble/verifier.hpp"
#include "src/support/check.hpp"
#include "src/support/rng.hpp"

namespace rbpeb {

namespace {

double evaluate(const Engine& engine, const GroupDagInstance& instance,
                const std::vector<std::size_t>& order) {
  Trace trace = pebble_visit_order(engine, instance, order);
  VerifyResult vr = verify(engine, trace);
  RBPEB_ENSURE(vr.ok(), "generated trace failed verification");
  return vr.total.to_double();
}

}  // namespace

GroupSolveResult solve_order_local_search(const Engine& engine,
                                          const GroupDagInstance& instance,
                                          const LocalSearchOptions& options) {
  const std::size_t m = instance.group_count();
  auto deps = group_dependencies(instance);
  // dep_set[h][g]: g must precede h.
  std::vector<std::vector<bool>> must_precede(m, std::vector<bool>(m, false));
  for (std::size_t h = 0; h < m; ++h) {
    for (std::size_t g : deps[h]) must_precede[h][g] = true;
  }

  GroupSolveResult greedy = solve_group_greedy(engine, instance);
  std::vector<std::size_t> current = greedy.order;
  double current_cost = evaluate(engine, instance, current);

  std::vector<std::size_t> best_order = current;
  double best_cost = current_cost;

  Rng rng(options.seed);
  double temperature =
      std::max(current_cost * options.initial_temperature_fraction, 1e-9);

  for (std::size_t iter = 0; iter < options.iterations && m >= 2; ++iter) {
    if (options.should_stop && options.should_stop()) break;
    // Adjacent swap that keeps the order dependency-valid.
    std::size_t i = static_cast<std::size_t>(rng.next_below(m - 1));
    std::size_t a = current[i], b = current[i + 1];
    if (must_precede[b][a]) {
      temperature *= options.cooling;
      continue;  // b requires a before it; swap would be invalid
    }
    std::swap(current[i], current[i + 1]);
    double cost = evaluate(engine, instance, current);
    double delta = cost - current_cost;
    bool accept = delta <= 0 ||
                  rng.next_double() < std::exp(-delta / temperature);
    if (accept) {
      current_cost = cost;
      if (cost < best_cost) {
        best_cost = cost;
        best_order = current;
      }
    } else {
      std::swap(current[i], current[i + 1]);  // undo
    }
    temperature *= options.cooling;
  }

  GroupSolveResult result;
  result.order = best_order;
  result.trace = pebble_visit_order(engine, instance, best_order);
  return result;
}

}  // namespace rbpeb
