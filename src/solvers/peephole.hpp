// Peephole post-optimization of pebbling traces.
//
// Solvers sometimes emit transfers that hindsight shows were unnecessary
// (a stored value that is never reloaded, a spill that the final state
// didn't need). The optimizer repeatedly tries removing individual moves —
// and store/load pairs — re-verifying the whole trace after every candidate
// edit, so the result is guaranteed legal, complete, and no more expensive.
// A verification-guided optimizer is slow (O(T²) replays) but cannot be
// wrong; it doubles as a harness for finding solver inefficiencies.
#pragma once

#include "src/pebble/engine.hpp"
#include "src/pebble/trace.hpp"

namespace rbpeb {

struct PeepholeStats {
  std::size_t removed_moves = 0;
  std::size_t passes = 0;
  Rational saved;  ///< Cost reduction achieved.
};

/// Optimize `trace` (which must verify ok() under `engine`). Returns an
/// equivalent trace with cost <= the original's. `stats`, when given,
/// reports what was removed. `max_passes` bounds the outer loop.
Trace peephole_optimize(const Engine& engine, const Trace& trace,
                        PeepholeStats* stats = nullptr,
                        std::size_t max_passes = 8);

}  // namespace rbpeb
