// Local search over group visit orders.
//
// The paper shows greedy rules can be Θ̃(√n) worse than optimal and that
// sub-2 approximation is UGC-hard — but says nothing against local search
// as a *practical* heuristic. This solver anneals over dependency-respecting
// visit orders with adjacent-swap moves, evaluating candidates by generating
// and auditing the full trace (so its numbers are as trustworthy as every
// other solver's). Used by the heuristics ablation bench.
#pragma once

#include <cstdint>
#include <functional>

#include "src/solvers/group_dag.hpp"

namespace rbpeb {

struct LocalSearchOptions {
  std::size_t iterations = 2000;
  /// Initial acceptance temperature as a fraction of the starting cost.
  double initial_temperature_fraction = 0.1;
  /// Geometric cooling factor applied every iteration.
  double cooling = 0.999;
  std::uint64_t seed = 1;
  /// Polled once per iteration; returning true ends the anneal early with
  /// the best order found so far. Empty = run all iterations.
  std::function<bool()> should_stop;
};

/// Anneal from the group-level greedy's order. Returns the best order found
/// and its trace; never worse than the greedy start.
GroupSolveResult solve_order_local_search(const Engine& engine,
                                          const GroupDagInstance& instance,
                                          const LocalSearchOptions& options = {});

}  // namespace rbpeb
