#include "src/solvers/anytime_astar.hpp"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/pebble/bounds.hpp"
#include "src/solvers/bigstate/ddd.hpp"
#include "src/solvers/bigstate/pdb.hpp"
#include "src/solvers/bigstate/spill.hpp"
#include "src/solvers/bigstate/var_state.hpp"
#include "src/solvers/bucket_queue.hpp"
#include "src/solvers/exact_astar.hpp"
#include "src/solvers/packed_state.hpp"
#include "src/support/check.hpp"

namespace rbpeb {

namespace {

template <typename Packed, typename Masks>
std::optional<AnytimeResult> anytime_impl(const Engine& engine,
                                          const ExactSearchOptions& opt,
                                          const AnytimeOptions& any,
                                          ExactSearchStats& stats) {
  using Key = typename Packed::Key;
  using Table = SpillingClosedTable<Packed>;
  const Dag& dag = engine.dag();
  const Model& model = engine.model();
  const std::size_t n = dag.node_count();
  const std::int64_t eps_den = model.epsilon().den();
  const StopPredicate& should_stop = opt.should_stop;
  const obs::TraceSpan search_span("anytime.search", "nodes", n);
  obs::Counter& expanded_counter =
      obs::MetricsRegistry::instance().counter("search.expanded");

  const std::int64_t ceiling = universal_search_ceiling_scaled(dag, model);

  // The incumbent: cheapest verified completion seen so far. ceiling+1
  // means none yet — nothing optimal prices beyond the universal bound.
  std::int64_t C =
      opt.seed ? std::min(ceiling + 1, opt.seed->g_scaled) : ceiling + 1;
  Trace best_trace = opt.seed ? opt.seed->trace : Trace{};
  bool have_trace = opt.seed.has_value();
  bool incumbent_from_seed = opt.seed.has_value();

  std::optional<bigstate::SpillDirectory> spill_dir =
      make_spill_directory(opt);

  std::optional<PatternDatabase> pdb;
  if (bigstate_pdb_enabled(opt, n)) {
    pdb.emplace(engine, opt.pdb_pattern_size, should_stop, opt.pdb_partition,
                opt.max_memory_bytes != 0 ? opt.max_memory_bytes / 2 : 0);
    if (pdb->build_aborted()) {
      stats.termination = ExactTermination::Stopped;
      return std::nullopt;
    }
  }
  StateBoundEvaluator bound(engine);
  if (pdb) bound.attach_pdb(&*pdb);
  const std::size_t pdb_bytes = pdb ? pdb->table_bytes() : 0;

  const GameState start_state = engine.initial_state();
  const Packed start = Packed::from_state(start_state);
  const std::optional<std::int64_t> start_h = bound.lower_bound_scaled(start);

  // The proved lower bound on the optimum. The admissible start bound never
  // exceeds a verified completion's cost, so the clamp is purely defensive.
  std::int64_t L = 0;
  if (!start_h) {
    // A dead start admits no completion at all — unless a verified seed
    // proved one exists, in which case nothing can price below it.
    if (!opt.seed) {
      stats.termination = ExactTermination::Exhausted;
      return std::nullopt;
    }
    L = C;
  } else {
    L = std::min(*start_h, C);
  }

  auto finish = [&](ExactTermination term) -> std::optional<AnytimeResult> {
    stats.termination = term;
    stats.lower_bound_scaled = L;
    if (!have_trace) return std::nullopt;
    stats.incumbent_scaled = C;
    stats.seed_won = incumbent_from_seed && C == L;
    AnytimeResult result;
    result.trace = std::move(best_trace);
    result.cost = Rational(C, eps_den);
    result.lower_bound = Rational(L, eps_den);
    result.optimal = (C == L);
    result.states_expanded = stats.states_expanded;
    if (result.optimal) {
      result.epsilon = Rational(0, 1);
    } else if (L > 0) {
      result.epsilon = Rational(C - L, L);
    } else {
      // lower_bound == 0 < cost: no finite ε makes cost ≤ (1+ε)·0 hold.
      result.certified = false;
      result.epsilon = Rational(0, 1);
    }
    return result;
  };
  // A pass's table dies with the pass; fold its footprint into the stats
  // before it does. Spill counters accumulate, byte peaks take the max.
  auto harvest = [&](Table& table) {
    stats.table_bytes = std::max(stats.table_bytes, table.bytes());
    stats.spilled_states += table.spilled_states();
    stats.spill_bytes += table.spill_bytes();
    stats.spill_peak_bytes =
        std::max(stats.spill_peak_bytes, table.spill_peak_bytes());
    stats.merge_passes += table.merge_passes();
    stats.spill_io_error = stats.spill_io_error || table.spill_io_error();
    stats.table_headroom_stop = stats.table_headroom_stop || table.headroom_stop();
  };
  auto epsilon_target_met = [&] {
    return have_trace && L > 0 && C > L &&
           static_cast<double>(C - L) <=
               any.target_epsilon * static_cast<double>(L);
  };

  const std::vector<AnytimeWeight> schedule =
      any.weights.empty() ? std::vector<AnytimeWeight>{{1, 1}} : any.weights;
  struct QueueItem {
    Key key;
    std::int64_t g;  ///< g at push time; stale when it no longer matches.
    std::int64_t f;  ///< unweighted g + h at push time — the certificate
                     ///< currency: pruning and frontier bounds read it, the
                     ///< weighted priority never does.
  };
  std::size_t& expanded = stats.states_expanded;
  ExactTermination why = ExactTermination::StateBudget;

  for (std::size_t pass = 0; pass < schedule.size(); ++pass) {
    if (C <= L) return finish(ExactTermination::Solved);
    // Stopping rule only — the certificate already meets the target.
    if (epsilon_target_met()) return finish(ExactTermination::StateBudget);
    if (expanded >= opt.max_states) break;

    const AnytimeWeight w = schedule[pass];
    const obs::TraceSpan pass_span("anytime.pass", "pass", pass);
    // Fresh table and queue per pass: the previous pass's footprint is
    // released before this one is charged against the memory budget.
    Table table(n, opt.max_memory_bytes, spill_dir ? spill_dir->path() : "",
                opt.max_disk_bytes);
    // Pushed items satisfy g + h < C ≤ ceiling + 1, so g and h each stay
    // within the ceiling and the weighted priority within (1 + w)·ceiling.
    // The clamp is defensive — priorities only order expansion, the
    // certificate never reads them.
    const std::int64_t max_priority = ceiling + (ceiling * w.num) / w.den + 2;
    BucketQueue<QueueItem> queue(static_cast<std::size_t>(max_priority) + 1);
    auto weighted = [&](std::int64_t g, std::int64_t h) {
      return std::min(g + (h * w.num) / w.den, max_priority);
    };

    table.set_overhead_bytes(pdb_bytes + queue.bytes());
    if (table.relax(start.key(), 0, start.key(), Move{MoveType::Load, 0}) ==
        Table::Relax::OutOfMemory) {
      harvest(table);
      return finish(ExactTermination::MemoryBudget);
    }
    queue.push(weighted(0, *start_h), {start.key(), 0, *start_h});

    // This pass's slice of the global expansion budget; the last pass takes
    // whatever remains.
    const std::size_t pass_budget =
        expanded + std::max<std::size_t>(
                       1, (opt.max_states - expanded) / (schedule.size() - pass));

    bool drained = false;
    bool cut = false;
    while (true) {
      if (queue.empty()) {
        drained = true;
        break;
      }
      auto [priority, item] = queue.pop();
      (void)priority;
      // An incumbent found after this push may have overtaken its f; the
      // unweighted prune is what keeps weighted passes certificate-sound.
      if (item.f >= C) continue;
      const auto pop = table.begin_expansion(item.key, item.g);
      if (pop == Table::Pop::OutOfMemory) {
        harvest(table);
        return finish(ExactTermination::MemoryBudget);
      }
      if (pop == Table::Pop::Skip) {
        ++stats.dup_skipped;
        continue;
      }
      const std::int64_t g = item.g;
      const Packed current = Packed::from_key(item.key, n);
      GameState state = current.to_state(n);
      const Masks masks = Masks::from(current, n);
      if (engine.is_complete(state)) {
        // item.f < C and h ≥ 0 give g < C: a strictly better incumbent.
        // Unlike exact A*, keep popping — weighted order may surface an
        // even cheaper completion later in the same pass.
        table.settle();
        std::vector<Move> reversed;
        Key cursor = item.key;
        while (!(cursor == start.key())) {
          const auto& link = table.at(cursor);
          reversed.push_back(link.via);
          cursor = link.parent;
        }
        Trace trace;
        for (std::size_t i = reversed.size(); i-- > 0;) {
          trace.push(reversed[i]);
        }
        best_trace = std::move(trace);
        C = g;
        have_trace = true;
        incumbent_from_seed = false;
        continue;
      }
      if (expanded >= pass_budget || expanded >= opt.max_states) {
        cut = true;
        break;
      }
      if ((expanded & 0x3Fu) == 0) {
        table.set_overhead_bytes(pdb_bytes + queue.bytes());
        if (should_stop && should_stop()) {
          // A cancelled pass proves nothing beyond its predecessors.
          harvest(table);
          return finish(ExactTermination::Stopped);
        }
        if (expanded != 0) {
          expanded_counter.add(64);
          if ((expanded & 0x3FFu) == 0 && obs::trace_enabled()) {
            obs::trace_instant("anytime.checkpoint", "expanded", expanded);
          }
          // Progress sampling rides the same 1024-expansion cadence as the
          // exact loops. The frontier here is L, the proved certificate
          // bound — a weighted pass pops out of unweighted-f order, so the
          // popped priority is NOT a frontier min; L is what the anytime
          // tier actually certifies and it only moves at pass boundaries.
          if ((expanded & 0x3FFu) == 0 && opt.progress != nullptr &&
              opt.progress->due()) {
            obs::ProgressObservation ob;
            ob.expanded = expanded;
            ob.frontier_f_scaled = L;
            ob.incumbent_scaled = have_trace ? C : -1;
            ob.open_states = queue.size();
            queue.for_each([&](std::int64_t priority, const QueueItem& qi) {
              (void)priority;  // weighted — summarize the unweighted f
              if (ob.open_f_min < 0 || qi.f < ob.open_f_min)
                ob.open_f_min = qi.f;
              ob.open_f_max = std::max(ob.open_f_max, qi.f);
              if (ob.open_g_min < 0 || qi.g < ob.open_g_min)
                ob.open_g_min = qi.g;
              ob.open_g_max = std::max(ob.open_g_max, qi.g);
            });
            ob.dup_skipped = stats.dup_skipped;
            ob.dead_prunes = stats.dead_prunes;
            ob.attr_counting = stats.attr_counting;
            ob.attr_pdb = stats.attr_pdb;
            ob.spilled_states = stats.spilled_states + table.spilled_states();
            ob.spill_bytes = stats.spill_bytes + table.spill_bytes();
            ob.merge_passes = stats.merge_passes + table.merge_passes();
            opt.progress->observe(ob);
          }
        }
      }
      if (opt.progress != nullptr) {
        // Bound-source attribution (see exact_astar.cpp): one extra pure
        // bound evaluation per expansion, only while someone is watching.
        (void)bound.lower_bound_scaled(masks);
        if (bound.last_source() == StateBoundEvaluator::BoundSource::Pdb) {
          ++stats.attr_pdb;
        } else {
          ++stats.attr_counting;
        }
      }
      ++expanded;

      for (std::size_t v = 0; v < n; ++v) {
        const NodeId node = static_cast<NodeId>(v);
        for (MoveType type : {MoveType::Load, MoveType::Store,
                              MoveType::Compute, MoveType::Delete}) {
          const Move move{type, node};
          if (!engine.is_legal(state, move)) continue;
          const Packed next = current.apply(move);
          const std::int64_t next_g = g + scaled_move_cost(model, type);
          const auto relaxed = table.relax(next.key(), next_g, item.key, move);
          if (relaxed == Table::Relax::OutOfMemory) {
            harvest(table);
            return finish(ExactTermination::MemoryBudget);
          }
          if (relaxed == Table::Relax::Stale) continue;
          Masks next_masks = masks;
          next_masks.apply(move);
          std::optional<std::int64_t> h = bound.lower_bound_scaled(next_masks);
          if (!h) {
            ++stats.dead_prunes;  // provably dead: prune
            continue;
          }
          const std::int64_t next_f = next_g + *h;
          if (next_f >= C) continue;        // unweighted prune — sound
          queue.push(weighted(next_g, *h), {next.key(), next_g, next_f});
        }
      }
    }

    ++stats.anytime_passes;
    harvest(table);
    if (drained) {
      // The reachable set below C is exhausted. With an incumbent that
      // proves C optimal — at any weight, since pruning was unweighted;
      // without one the instance has no completion at all.
      if (!have_trace) {
        stats.termination = ExactTermination::Exhausted;
        stats.lower_bound_scaled = L;
        return std::nullopt;
      }
      L = C;
      return finish(ExactTermination::Solved);
    }
    if (cut) {
      // Frontier lemma: any completion cheaper than C that this pass has
      // not found keeps an open item on its path with unweighted f at most
      // its cost — so the drained minimum lower-bounds the optimum. Stale
      // items only lower the minimum, keeping it admissible.
      std::int64_t frontier = C;
      while (!queue.empty()) {
        auto [priority, item] = queue.pop();
        (void)priority;
        frontier = std::min(frontier, item.f);
      }
      L = std::max(L, frontier);
    }
  }

  if (C <= L) return finish(ExactTermination::Solved);
  return finish(why);
}

}  // namespace

std::optional<AnytimeResult> try_solve_anytime_astar(
    const Engine& engine, const ExactSearchOptions& options,
    const AnytimeOptions& anytime, ExactSearchStats* stats) {
  const std::size_t n = engine.dag().node_count();
  RBPEB_REQUIRE(n <= kExactAstarMaxNodes,
                "solve_anytime_astar supports at most 1024 nodes");
  for (const AnytimeWeight& w : anytime.weights) {
    RBPEB_REQUIRE(w.num > 0 && w.den > 0 && w.num >= w.den,
                  "anytime weights must be ratios >= 1");
  }
  RBPEB_REQUIRE(anytime.target_epsilon >= 0.0,
                "target epsilon must be nonnegative");
  ExactSearchStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = {};  // a reused struct must not accumulate across calls
  const bool force_wide = options.force_var_state || options.force_mask_vec;
  using Masks1 = StateBoundEvaluator::StateMasks;
  if (options.force_mask_vec || n > StateBoundEvaluator::kWideMaskMaxNodes) {
    return anytime_impl<VarPackedState, StateBoundEvaluator::MaskVec>(
        engine, options, anytime, *stats);
  }
  if (!force_wide && n <= PackedState64::max_nodes()) {
    return anytime_impl<PackedState64, Masks1>(engine, options, anytime,
                                               *stats);
  }
  if (!force_wide && n <= PackedState128::max_nodes()) {
    return anytime_impl<PackedState128, Masks1>(engine, options, anytime,
                                                *stats);
  }
  return anytime_impl<VarPackedState, StateBoundEvaluator::WideStateMasks>(
      engine, options, anytime, *stats);
}

}  // namespace rbpeb
