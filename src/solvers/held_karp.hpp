// Held–Karp dynamic program for minimum-cost visit orders.
//
// Finds the cheapest order visiting each of `count` items exactly once,
// where moving from item `prev` to item `next` costs transition(prev, next)
// and items may carry precedence constraints. O(2^count · count²) time and
// O(2^count · count) memory; intended for count <= 20.
//
// Used by the Hamiltonian-Path reduction (Theorem 2): the optimal pebbling
// corresponds to a minimum Hamiltonian path in the "group adjacency" metric.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace rbpeb {

/// Transition cost callback; `prev == kHeldKarpStart` for the first item.
inline constexpr std::size_t kHeldKarpStart = static_cast<std::size_t>(-1);

struct HeldKarpResult {
  std::vector<std::size_t> order;
  std::int64_t cost = 0;
  bool feasible = false;  ///< False if precedence constraints are cyclic.
};

/// Minimize total transition cost over all precedence-respecting orders.
/// `dep_mask[i]` is a bitmask of items that must precede item i (may be 0).
HeldKarpResult held_karp_min_order(
    std::size_t count,
    const std::function<std::int64_t(std::size_t prev, std::size_t next)>&
        transition,
    const std::vector<std::uint32_t>& dep_mask = {});

}  // namespace rbpeb
