// Bit-packed game configurations for the exact searches.
//
// A configuration assigns each node 3 bits: 2 for the pebble color and 1 for
// the sticky was-computed flag (needed by the oneshot rule). The packed form
// is the canonical search key — states are compared, hashed, and stored as a
// single machine word. Crucially, a move touches exactly one node, so a
// successor key is derived from its parent with one masked field update
// instead of the O(n) GameState copy + re-encode the original Dijkstra did
// per generated neighbor.
//
// Two widths share one implementation: a 64-bit fast path for DAGs of up to
// 21 nodes (3·21 = 63 bits) and an __uint128_t wide path for up to 42 nodes
// (3·42 = 126 bits), which is what lifts the exact layer's node cap.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>

#include "src/pebble/move.hpp"
#include "src/pebble/state.hpp"

namespace rbpeb {

/// A pebbling configuration packed 3 bits per node into one unsigned word.
/// Plain value type: cheap to copy, ordered field access, no heap. The field
/// layout (node v at bits [3v, 3v+3), color in the low 2 bits, computed flag
/// at 0x4) matches the legacy Dijkstra encoding byte for byte.
template <typename Word>
class BasicPackedState {
 public:
  static constexpr std::size_t kBitsPerNode = 3;

  /// Largest node count this word width can hold.
  static constexpr std::size_t max_nodes() {
    return sizeof(Word) * 8 / kBitsPerNode;
  }

  /// The search-key protocol shared with VarPackedState (bigstate): a key
  /// type the closed tables store, plus hashing and (heap) byte accounting.
  /// Here the key is simply the word.
  using Key = Word;

  BasicPackedState() = default;
  explicit BasicPackedState(Word bits) : bits_(bits) {}

  Key key() const { return bits_; }

  static BasicPackedState from_key(Key key, std::size_t /*node_count*/) {
    return BasicPackedState(key);
  }

  static std::size_t hash_key(const Key& key);  // defined after PackedKeyHash

  /// Fixed-width keys never spill to the heap.
  static std::size_t key_heap_bytes(const Key&) { return 0; }

  /// Serialized key width for the disk spill runs (bigstate/spill.hpp): the
  /// word itself, byte for byte. Identical for every key of one instance,
  /// so spill records are fixed-size and binary-searchable.
  static std::size_t key_serialized_bytes(std::size_t /*node_count*/) {
    return sizeof(Word);
  }

  static void key_serialize(const Key& key, std::uint8_t* out) {
    std::memcpy(out, &key, sizeof(Word));
  }

  static Key key_deserialize(const std::uint8_t* in,
                             std::size_t /*node_count*/) {
    Word key;
    std::memcpy(&key, in, sizeof(Word));
    return key;
  }

  static BasicPackedState from_state(const GameState& state) {
    BasicPackedState packed;
    for (std::size_t v = 0; v < state.node_count(); ++v) {
      const NodeId node = static_cast<NodeId>(v);
      packed.set_color(node, state.color(node));
      if (state.was_computed(node)) packed.mark_computed(node);
    }
    return packed;
  }

  /// Unpack into a full GameState (O(n); used once per expansion, never per
  /// generated neighbor).
  GameState to_state(std::size_t node_count) const {
    GameState state(node_count);
    for (std::size_t v = 0; v < node_count; ++v) {
      const NodeId node = static_cast<NodeId>(v);
      state.set_color(node, color(node));
      if (was_computed(node)) state.mark_computed(node);
    }
    return state;
  }

  PebbleColor color(NodeId v) const {
    return static_cast<PebbleColor>(
        static_cast<unsigned>((bits_ >> shift(v)) & Word{3}));
  }

  bool was_computed(NodeId v) const {
    return ((bits_ >> shift(v)) & Word{4}) != 0;
  }

  void set_color(NodeId v, PebbleColor c) {
    bits_ = (bits_ & ~(Word{3} << shift(v))) |
            (Word{static_cast<unsigned>(c)} << shift(v));
  }

  void mark_computed(NodeId v) { bits_ |= Word{4} << shift(v); }

  /// The successor configuration after a *legal* move — one masked field
  /// update, mirroring Engine::apply's state effect exactly. Legality is
  /// still the Engine's job; this only transcribes the transition.
  BasicPackedState apply(const Move& move) const {
    BasicPackedState next = *this;
    switch (move.type) {
      case MoveType::Load:
        next.set_color(move.node, PebbleColor::Red);
        break;
      case MoveType::Store:
        next.set_color(move.node, PebbleColor::Blue);
        break;
      case MoveType::Compute:
        next.set_color(move.node, PebbleColor::Red);
        next.mark_computed(move.node);
        break;
      case MoveType::Delete:
        next.set_color(move.node, PebbleColor::None);
        break;
    }
    return next;
  }

  Word raw() const { return bits_; }

  bool operator==(const BasicPackedState& o) const = default;

 private:
  static constexpr unsigned shift(NodeId v) {
    return static_cast<unsigned>(kBitsPerNode * v);
  }

  Word bits_ = 0;
};

using PackedState64 = BasicPackedState<std::uint64_t>;
using PackedState128 = BasicPackedState<unsigned __int128>;

/// Hash for packed keys of either width (std::hash has no __uint128_t
/// specialization). SplitMix64 finalizer per 64-bit half — cheap and well
/// mixed, which matters with millions of near-identical keys in flight.
struct PackedKeyHash {
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  std::size_t operator()(std::uint64_t key) const {
    return static_cast<std::size_t>(mix(key));
  }

  std::size_t operator()(unsigned __int128 key) const {
    const auto lo = static_cast<std::uint64_t>(key);
    const auto hi = static_cast<std::uint64_t>(key >> 64);
    return static_cast<std::size_t>(mix(lo ^ mix(hi)));
  }
};

template <typename Word>
std::size_t BasicPackedState<Word>::hash_key(const Key& key) {
  return PackedKeyHash{}(key);
}

}  // namespace rbpeb
