// The Section 3 baseline: pebble nodes in a fixed (topological) order.
//
// The paper uses this strategy to prove the universal cost upper bound
// (2Δ+1)·n; pebble_in_order keeps that guarantee while evicting lazily.
#pragma once

#include <vector>

#include "src/pebble/engine.hpp"
#include "src/pebble/trace.hpp"
#include "src/solvers/eviction.hpp"

namespace rbpeb {

/// Options for the ordered pebbler.
struct OrderedOptions {
  EvictionRule eviction = EvictionRule::FewestRemainingUses;
  /// Delete dead pebbles immediately where the model allows.
  bool eager_delete_dead = true;
  std::uint64_t seed = 1;
};

/// Pebble the DAG computing nodes exactly in `order` (must be topological).
/// Per computed node the trace uses at most Δ loads and Δ+1 stores, so its
/// transfer cost is at most (2Δ+1)·n in every model — the paper's universal
/// upper bound.
Trace pebble_in_order(const Engine& engine, const std::vector<NodeId>& order,
                      const OrderedOptions& options = {});

/// pebble_in_order with the deterministic Kahn topological order.
Trace solve_topo_baseline(const Engine& engine,
                          const OrderedOptions& options = {});

}  // namespace rbpeb
