// Parallel exact optimal pebbling via hash-distributed A* (HDA*).
//
// The same informed configuration-graph search as exact_astar.hpp — packed
// states, admissible per-state bounds, Dial bucket queues — but sharded
// across worker threads so the whole machine pushes one exact solve instead
// of racing heuristics against it. Each worker owns the hash-shard of
// closed/open tables for the states that hash to it (shard.hpp); generated
// neighbors are routed to their owner through batched MPSC mailboxes; a
// Safra token ring (termination.hpp) certifies global quiescence.
//
// Optimality is a theorem, not a race outcome: workers prune any state
// priced at or above the incumbent (the cheapest complete state seen so
// far — or, when an IncumbentSeed is supplied, a verified heuristic trace
// standing in from move one), so expansion cannot stop while anything
// prices below it — when the ring certifies quiescence, the globally
// cheapest open f-value is ≥ the incumbent and the incumbent is provably
// optimal. hda-astar therefore returns costs identical to exact-astar at
// any thread count, which tests/solvers/test_hda_astar.cpp asserts
// differentially at 1, 2, and 8 threads.
//
// Scaling machinery shared with exact-astar (see ExactSearchOptions):
// variable-width states past 42 nodes (up to 128), additive pattern
// databases reinforcing the bound, and a memory budget split evenly across
// the shard tables. One HDA*-specific wrinkle: on *serial* instances
// (level width 1 — chains), hash-sharding degenerates into cross-thread
// hand-offs of a single state, each paying mailbox plus wake latency, so
// the search automatically falls back to one worker
// (ExactSearchStats::threads_used reports the actual count).
#pragma once

#include <cstddef>
#include <optional>

#include "src/pebble/engine.hpp"
#include "src/solvers/exact.hpp"

namespace rbpeb {

/// Node cap of the HDA* search — the runtime-width mask bound cap, shared
/// with exact-astar (42-node fixed-width and 128-node two-word fast paths
/// inside, both bit-for-bit unchanged by the runtime-width tier).
inline constexpr std::size_t kHdaAstarMaxNodes = 1024;

/// Sanity cap on the worker count; a request beyond it is a typo, not a
/// machine.
inline constexpr std::size_t kHdaAstarMaxThreads = 256;

/// Resolve a requested worker count: 0 means hardware concurrency (at least
/// 1). Throws PreconditionError beyond kHdaAstarMaxThreads.
std::size_t hda_resolve_threads(std::size_t threads);

/// Solve optimally on `threads` workers (0 = hardware concurrency). Throws
/// PreconditionError beyond kHdaAstarMaxNodes nodes and InvariantError if
/// `max_states` is exceeded before an optimum is proven.
ExactResult solve_hda_astar(const Engine& engine, std::size_t threads = 0,
                            std::size_t max_states = 2'000'000);

/// Like solve_hda_astar but returns nullopt instead of throwing when the
/// state budget is exhausted, `should_stop` fires, or the reachable
/// configuration graph drains without a complete state. When `stats` is
/// non-null it is always filled, success or not; states_expanded is the
/// exact total over all workers (aggregated through one shared atomic).
/// `should_stop` may be invoked concurrently from several workers.
std::optional<ExactResult> try_solve_hda_astar(
    const Engine& engine, std::size_t threads = 0,
    std::size_t max_states = 2'000'000, const StopPredicate& should_stop = {},
    ExactSearchStats* stats = nullptr);

/// Full-options entry point: memory budget (split across shards), pattern
/// databases, incumbent seeding, forced variable-width path.
std::optional<ExactResult> try_solve_hda_astar(
    const Engine& engine, std::size_t threads,
    const ExactSearchOptions& options, ExactSearchStats* stats = nullptr);

}  // namespace rbpeb
