// One worker's slice of the hash-distributed A* search.
//
// HDA* (hash-distributed A*) partitions the configuration space by key hash:
// each worker thread *owns* the shard of states whose hash lands on it, and
// it alone touches that shard's closed/open table and Dial bucket queue — no
// locks on the search structures themselves. Generated neighbors that hash
// elsewhere travel as StateMsg batches through the owner's MPSC mailbox, the
// only synchronized structure, kept cold by sender-side batching.
//
// Everything is templated over the packed-state type (the fixed-width
// BasicPackedState words or the variable-width VarPackedState of
// bigstate/var_state.hpp); the shard table is the byte-accounted, spill-
// capable SpillingClosedTable (bigstate/ddd.hpp) so a memory budget divides
// evenly across workers — and so does the disk budget: each shard owns a
// private spill partition (a subdirectory of the search's spill directory),
// keeping run files single-owner and the workers lock-free on the disk
// path. Shard ownership hashes through Packed::hash_key — cached and
// incrementally maintained for variable-width keys, so routing a neighbor
// never rescans it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <mutex>
#include <string>
#include <vector>

#include "src/pebble/move.hpp"
#include "src/solvers/bigstate/ddd.hpp"
#include "src/solvers/bucket_queue.hpp"

namespace rbpeb::hda {

/// Messages a sender accumulates per target before taking the mailbox lock.
inline constexpr std::size_t kRouteBatchSize = 64;

/// A generated state en route to its owner shard: everything the owner needs
/// to relax it — key, priced path (g, f = g + h), and the tree edge for the
/// eventual path reconstruction.
template <typename Packed>
struct StateMsg {
  typename Packed::Key key;
  typename Packed::Key parent;
  std::int64_t g;
  std::int64_t f;
  Move via;
};

/// Multi-producer single-consumer mailbox. Senders append whole batches
/// under the mutex; the owner drains by swapping the inbox out. Both sides
/// hold the lock for O(batch) pointer moves, never per-message.
template <typename Packed>
class Mailbox {
 public:
  /// Moves the batch's messages in (the caller clears it right after, and
  /// variable-width keys own heap storage — copying them under the one
  /// contended lock would put two allocations per message in the critical
  /// section).
  void deliver(std::vector<StateMsg<Packed>>& batch) {
    const std::lock_guard<std::mutex> lock(mutex_);
    inbox_.insert(inbox_.end(), std::make_move_iterator(batch.begin()),
                  std::make_move_iterator(batch.end()));
  }

  /// Swap the inbox into `out` (previous contents discarded); returns the
  /// number of messages received.
  std::size_t drain(std::vector<StateMsg<Packed>>& out) {
    out.clear();
    const std::lock_guard<std::mutex> lock(mutex_);
    out.swap(inbox_);
    return out.size();
  }

  bool empty() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return inbox_.empty();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<StateMsg<Packed>> inbox_;
};

/// The per-worker search state. Only the owning worker reads or writes
/// `table` and `queue`; `mailbox` is the one cross-thread door.
template <typename Packed>
struct Shard {
  using Table = SpillingClosedTable<Packed>;
  using Entry = typename Table::Entry;

  /// Open-queue item; stale once `g` no longer matches the table.
  struct OpenItem {
    typename Packed::Key key;
    std::int64_t g;
  };

  /// `spill_dir` is this shard's private partition ("" = spilling off).
  Shard(std::size_t node_count, std::size_t bucket_count,
        std::size_t max_table_bytes, const std::string& spill_dir,
        std::size_t max_disk_bytes)
      : table(node_count, max_table_bytes, spill_dir, max_disk_bytes),
        queue(bucket_count) {}

  Table table;
  BucketQueue<OpenItem> queue;
  Mailbox<Packed> mailbox;
};

/// Stable state→owner map: upper hash bits, so shard choice stays
/// independent of the table's own (low-bits-leaning) slot indexing.
template <typename Packed>
std::size_t owner_of(const typename Packed::Key& key, std::size_t workers) {
  return (Packed::hash_key(key) >> 32) % workers;
}

}  // namespace rbpeb::hda
