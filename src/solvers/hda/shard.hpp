// One worker's slice of the hash-distributed A* search.
//
// HDA* (hash-distributed A*) partitions the configuration space by key hash:
// each worker thread *owns* the shard of states whose hash lands on it, and
// it alone touches that shard's closed/open table and Dial bucket queue — no
// locks on the search structures themselves. Generated neighbors that hash
// elsewhere travel as StateMsg batches through the owner's MPSC mailbox, the
// only synchronized structure, kept cold by sender-side batching.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/pebble/move.hpp"
#include "src/solvers/bucket_queue.hpp"
#include "src/solvers/packed_state.hpp"

namespace rbpeb::hda {

/// Messages a sender accumulates per target before taking the mailbox lock.
inline constexpr std::size_t kRouteBatchSize = 64;

/// A generated state en route to its owner shard: everything the owner needs
/// to relax it — key, priced path (g, f = g + h), and the tree edge for the
/// eventual path reconstruction.
template <typename Word>
struct StateMsg {
  Word key;
  Word parent;
  std::int64_t g;
  std::int64_t f;
  Move via;
};

/// Multi-producer single-consumer mailbox. Senders append whole batches
/// under the mutex; the owner drains by swapping the inbox out. Both sides
/// hold the lock for O(batch) pointer moves, never per-message.
template <typename Word>
class Mailbox {
 public:
  void deliver(std::vector<StateMsg<Word>>& batch) {
    const std::lock_guard<std::mutex> lock(mutex_);
    inbox_.insert(inbox_.end(), batch.begin(), batch.end());
  }

  /// Swap the inbox into `out` (previous contents discarded); returns the
  /// number of messages received.
  std::size_t drain(std::vector<StateMsg<Word>>& out) {
    out.clear();
    const std::lock_guard<std::mutex> lock(mutex_);
    out.swap(inbox_);
    return out.size();
  }

  bool empty() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return inbox_.empty();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<StateMsg<Word>> inbox_;
};

/// The per-worker search state. Only the owning worker reads or writes
/// `table` and `queue`; `mailbox` is the one cross-thread door.
template <typename Word>
struct Shard {
  /// Closed/open-table entry: best known g and the tree edge achieving it.
  struct Entry {
    std::int64_t g;
    Word parent;
    Move via;
  };

  /// Open-queue item; stale once `g` no longer matches the table.
  struct OpenItem {
    Word key;
    std::int64_t g;
  };

  explicit Shard(std::size_t bucket_count) : queue(bucket_count) {}

  std::unordered_map<Word, Entry, PackedKeyHash> table;
  BucketQueue<OpenItem> queue;
  Mailbox<Word> mailbox;
};

/// Stable state→owner map: upper hash bits, so shard choice stays
/// independent of the table's own (low-bits-leaning) bucket indexing.
template <typename Word>
std::size_t owner_of(Word key, std::size_t workers) {
  return static_cast<std::size_t>(PackedKeyHash{}(key) >> 32) % workers;
}

}  // namespace rbpeb::hda
