#include "src/solvers/hda/hda_astar.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <mutex>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/pebble/bounds.hpp"
#include "src/solvers/hda/shard.hpp"
#include "src/solvers/hda/termination.hpp"
#include "src/solvers/packed_state.hpp"
#include "src/support/check.hpp"

namespace rbpeb {

namespace {

using hda::kRouteBatchSize;
using hda::Mailbox;
using hda::SafraRing;
using hda::Shard;
using hda::StateMsg;
using hda::WorkerLedger;

/// Shared search context: everything the workers coordinate through.
template <typename Word>
struct SearchContext {
  explicit SearchContext(std::size_t workers, std::size_t bucket_count,
                         std::int64_t no_incumbent)
      : ring(workers), incumbent(no_incumbent) {
    shards.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      shards.push_back(std::make_unique<Shard<Word>>(bucket_count));
    }
  }

  Shard<Word>& shard(std::size_t i) { return *shards[i]; }

  std::vector<std::unique_ptr<Shard<Word>>> shards;  // mailboxes pin them
  SafraRing ring;

  /// Scaled g of the best complete state seen; pruning anything priced at or
  /// above it is what turns quiescence into an optimality certificate. A
  /// stale (higher) read only delays a prune, so relaxed loads suffice.
  std::atomic<std::int64_t> incumbent;
  std::mutex goal_mutex;
  Word goal_key{};
  bool has_goal = false;

  /// Exact global expansion count; workers reserve one ticket per expansion,
  /// so the state budget lands on the same count at any thread count.
  std::atomic<std::size_t> expanded{0};

  std::atomic<bool> abort{false};
  std::atomic<int> abort_why{-1};
  std::mutex error_mutex;
  std::exception_ptr error;

  void abort_with(ExactTermination why) {
    int expected = -1;
    abort_why.compare_exchange_strong(expected, static_cast<int>(why),
                                      std::memory_order_relaxed);
    abort.store(true, std::memory_order_release);
  }
};

template <typename Word>
void hda_worker(const Engine& engine, SearchContext<Word>& ctx,
                std::size_t wid, std::size_t max_states,
                const StopPredicate& should_stop) {
  using Packed = BasicPackedState<Word>;
  const Dag& dag = engine.dag();
  const Model& model = engine.model();
  const std::size_t n = dag.node_count();
  const std::size_t workers = ctx.shards.size();
  Shard<Word>& self = ctx.shard(wid);

  StateBoundEvaluator bound(engine);
  WorkerLedger ledger;
  std::vector<std::vector<StateMsg<Word>>> out(workers);
  std::vector<StateMsg<Word>> inbox;
  std::size_t local_expanded = 0;
  std::size_t idle_spins = 0;

  // Relax one priced state into this shard's table/queue. Messages losing to
  // an equal-or-better path, or priced at or above the incumbent, die here.
  auto accept = [&](const StateMsg<Word>& m) {
    if (m.f >= ctx.incumbent.load(std::memory_order_relaxed)) return;
    auto [entry, inserted] = self.table.try_emplace(
        m.key, typename Shard<Word>::Entry{m.g, m.parent, m.via});
    if (!inserted) {
      if (entry->second.g <= m.g) return;
      entry->second = {m.g, m.parent, m.via};
    }
    self.queue.push(m.f, {m.key, m.g});
  };

  // Route a generated state to its owner: same-shard states relax in place,
  // the rest ride per-target batches. Credit counts at enqueue so an
  // in-flight message is always covered by its sender (termination.hpp).
  // Batching amortizes the mailbox lock under load; with the local queue
  // drained this expansion is the last local work, so ship immediately —
  // on serial instances (chains) the whole search is such hand-offs and
  // latency, not lock traffic, is the cost that matters.
  auto route = [&](StateMsg<Word> m) {
    const std::size_t target = hda::owner_of(m.key, workers);
    if (target == wid) {
      accept(m);
      return;
    }
    out[target].push_back(m);
    ++ledger.credit;
    if (out[target].size() >= kRouteBatchSize || self.queue.empty()) {
      ctx.shard(target).mailbox.deliver(out[target]);
      out[target].clear();
    }
  };

  auto flush_all = [&] {
    for (std::size_t t = 0; t < workers; ++t) {
      if (!out[t].empty()) {
        ctx.shard(t).mailbox.deliver(out[t]);
        out[t].clear();
      }
    }
  };

  while (true) {
    if (ctx.abort.load(std::memory_order_acquire)) break;
    if (ctx.ring.certified()) break;

    // Incoming states first: they may undercut what the local queue holds.
    if (self.mailbox.drain(inbox) > 0) {
      ledger.credit -= static_cast<std::int64_t>(inbox.size());
      ledger.black = true;
      idle_spins = 0;
      for (const StateMsg<Word>& m : inbox) accept(m);
    }

    if (self.queue.empty()) {
      // Idle: push any straggler batches out (unflushed credit would keep
      // the ring from ever certifying), then offer the token. A worker that
      // stays starved backs off to a short sleep — on an oversubscribed
      // machine, yield-spinning idlers would otherwise steal most of the
      // busy workers' cycles.
      flush_all();
      if (!self.mailbox.empty()) continue;
      if (ctx.ring.try_pass(wid, ledger)) break;
      if (++idle_spins > 64) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      } else {
        std::this_thread::yield();
      }
      continue;
    }
    idle_spins = 0;

    auto [f, item] = self.queue.pop();
    const auto it = self.table.find(item.key);
    if (it->second.g != item.g) continue;  // stale: a cheaper path superseded it
    if (f >= ctx.incumbent.load(std::memory_order_relaxed)) continue;
    const std::int64_t g = item.g;
    const Packed current(item.key);
    // One O(n) unpack per expansion; neighbors below are derived in O(1) —
    // packed keys and bound masks alike.
    GameState state = current.to_state(n);
    if (engine.is_complete(state)) {
      const std::lock_guard<std::mutex> lock(ctx.goal_mutex);
      if (!ctx.has_goal || g < ctx.incumbent.load(std::memory_order_relaxed)) {
        ctx.has_goal = true;
        ctx.goal_key = item.key;
        ctx.incumbent.store(g, std::memory_order_relaxed);
      }
      continue;  // never expanded: no completion extends a complete state for free
    }
    // Entry poll included (local_expanded == 0): an expired deadline stops
    // this worker before it burns a poll interval of expansions.
    if (should_stop && (local_expanded & 0x3Fu) == 0 && should_stop()) {
      ctx.abort_with(ExactTermination::Stopped);
      break;
    }
    const std::size_t ticket =
        ctx.expanded.fetch_add(1, std::memory_order_relaxed);
    if (ticket >= max_states) {
      ctx.expanded.fetch_sub(1, std::memory_order_relaxed);
      ctx.abort_with(ExactTermination::StateBudget);
      break;
    }
    ++local_expanded;

    const StateBoundEvaluator::StateMasks masks =
        StateBoundEvaluator::StateMasks::from(current, n);
    for (std::size_t v = 0; v < n; ++v) {
      const NodeId node = static_cast<NodeId>(v);
      for (MoveType type : {MoveType::Load, MoveType::Store, MoveType::Compute,
                            MoveType::Delete}) {
        const Move move{type, node};
        if (!engine.is_legal(state, move)) continue;
        const Packed next = current.apply(move);
        const std::int64_t next_g = g + scaled_move_cost(model, type);
        StateBoundEvaluator::StateMasks next_masks = masks;
        next_masks.apply(move);
        std::optional<std::int64_t> h = bound.lower_bound_scaled(next_masks);
        if (!h) continue;  // provably dead: prune
        const std::int64_t next_f = next_g + *h;
        if (next_f >= ctx.incumbent.load(std::memory_order_relaxed)) continue;
        route({next.raw(), item.key, next_g, next_f, move});
      }
    }
  }
}

template <typename Word>
std::optional<ExactResult> hda_impl(const Engine& engine, std::size_t workers,
                                    std::size_t max_states,
                                    const StopPredicate& should_stop,
                                    ExactSearchStats& stats) {
  using Packed = BasicPackedState<Word>;
  const Dag& dag = engine.dag();
  const Model& model = engine.model();
  const std::size_t n = dag.node_count();
  const std::int64_t eps_den = model.epsilon().den();

  auto give_up = [&](ExactTermination why) {
    stats.termination = why;
    return std::nullopt;
  };

  // The incumbent starts one past the universal ceiling, so "f >= incumbent"
  // subsumes the ceiling prune of the sequential A* until a real complete
  // state undercuts it.
  const std::int64_t ceiling = universal_search_ceiling_scaled(dag, model);

  SearchContext<Word> ctx(workers, static_cast<std::size_t>(ceiling) + 1,
                          /*no_incumbent=*/ceiling + 1);

  const GameState start_state = engine.initial_state();
  const Packed start = Packed::from_state(start_state);
  {
    StateBoundEvaluator bound(engine);
    std::optional<std::int64_t> start_h = bound.lower_bound_scaled(start);
    if (!start_h) return give_up(ExactTermination::Exhausted);
    // Seed the owner shard before any worker exists; thread creation
    // publishes it.
    Shard<Word>& home = ctx.shard(hda::owner_of(start.raw(), workers));
    home.table.emplace(start.raw(), typename Shard<Word>::Entry{
                                        0, start.raw(), Move{MoveType::Load, 0}});
    home.queue.push(*start_h, {start.raw(), 0});
  }

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      try {
        hda_worker<Word>(engine, ctx, w, max_states, should_stop);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(ctx.error_mutex);
          if (!ctx.error) ctx.error = std::current_exception();
        }
        ctx.abort_with(ExactTermination::Stopped);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  stats.states_expanded = ctx.expanded.load(std::memory_order_relaxed);
  if (ctx.error) std::rethrow_exception(ctx.error);
  if (ctx.abort.load(std::memory_order_acquire)) {
    return give_up(
        static_cast<ExactTermination>(ctx.abort_why.load(std::memory_order_relaxed)));
  }
  if (!ctx.has_goal) return give_up(ExactTermination::Exhausted);

  // Quiescence proved nothing open prices below the incumbent, so the chain
  // of tree edges behind goal_key is an optimal pebbling. Every entry lives
  // in its key's owner shard; all shards are safely readable after the join.
  std::vector<Move> reversed;
  Word cursor = ctx.goal_key;
  while (cursor != start.raw()) {
    const typename Shard<Word>::Entry& link =
        ctx.shard(hda::owner_of(cursor, workers)).table.at(cursor);
    reversed.push_back(link.via);
    cursor = link.parent;
  }
  ExactResult result;
  for (std::size_t i = reversed.size(); i-- > 0;) {
    result.trace.push(reversed[i]);
  }
  result.cost = Rational(ctx.incumbent.load(std::memory_order_relaxed), eps_den);
  result.states_expanded = stats.states_expanded;
  stats.termination = ExactTermination::Solved;
  return result;
}

}  // namespace

std::size_t hda_resolve_threads(std::size_t threads) {
  RBPEB_REQUIRE(threads <= kHdaAstarMaxThreads,
                "hda-astar supports at most " +
                    std::to_string(kHdaAstarMaxThreads) + " threads");
  if (threads != 0) return threads;
  const auto hw = static_cast<std::size_t>(std::thread::hardware_concurrency());
  // The hw fallback honors the same cap explicit requests are checked
  // against; a >256-thread machine gets the cap, not a throw or a bypass.
  return std::clamp<std::size_t>(hw, 1, kHdaAstarMaxThreads);
}

std::optional<ExactResult> try_solve_hda_astar(const Engine& engine,
                                               std::size_t threads,
                                               std::size_t max_states,
                                               const StopPredicate& should_stop,
                                               ExactSearchStats* stats) {
  const std::size_t n = engine.dag().node_count();
  RBPEB_REQUIRE(n <= kHdaAstarMaxNodes,
                "solve_hda_astar supports at most 42 nodes");
  const std::size_t workers = hda_resolve_threads(threads);
  ExactSearchStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = {};
  if (n <= PackedState64::max_nodes()) {
    return hda_impl<std::uint64_t>(engine, workers, max_states, should_stop,
                                   *stats);
  }
  return hda_impl<unsigned __int128>(engine, workers, max_states, should_stop,
                                     *stats);
}

ExactResult solve_hda_astar(const Engine& engine, std::size_t threads,
                            std::size_t max_states) {
  ExactSearchStats stats;
  auto result = try_solve_hda_astar(engine, threads, max_states, {}, &stats);
  if (!result) {
    throw InvariantError(
        stats.termination == ExactTermination::Exhausted
            ? "solve_hda_astar exhausted the reachable configuration graph "
              "without a complete state"
            : "solve_hda_astar exceeded its state budget");
  }
  return std::move(*result);
}

}  // namespace rbpeb
