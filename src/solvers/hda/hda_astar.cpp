#include "src/solvers/hda/hda_astar.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <mutex>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/graph/dag_algorithms.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/pebble/bounds.hpp"
#include "src/solvers/bigstate/pdb.hpp"
#include "src/solvers/bigstate/var_state.hpp"
#include "src/solvers/exact_astar.hpp"
#include "src/solvers/hda/shard.hpp"
#include "src/solvers/hda/termination.hpp"
#include "src/solvers/packed_state.hpp"
#include "src/support/check.hpp"

namespace rbpeb {

static_assert(kHdaAstarMaxNodes == StateBoundEvaluator::kVecMaskMaxNodes,
              "the search cap is the runtime-width bound cap");

namespace {

using hda::kRouteBatchSize;
using hda::Mailbox;
using hda::SafraRing;
using hda::Shard;
using hda::StateMsg;
using hda::WorkerLedger;

/// Shared search context: everything the workers coordinate through.
template <typename Packed>
struct SearchContext {
  using Key = typename Packed::Key;

  SearchContext(std::size_t node_count, std::size_t workers,
                std::size_t bucket_count, std::size_t table_bytes_each,
                const std::vector<std::string>& spill_partitions,
                std::size_t disk_bytes_each, std::int64_t no_incumbent)
      : ring(workers), incumbent(no_incumbent) {
    shards.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      shards.push_back(std::make_unique<Shard<Packed>>(
          node_count, bucket_count, table_bytes_each,
          spill_partitions.empty() ? std::string() : spill_partitions[i],
          disk_bytes_each));
    }
  }

  Shard<Packed>& shard(std::size_t i) { return *shards[i]; }

  std::vector<std::unique_ptr<Shard<Packed>>> shards;  // mailboxes pin them
  SafraRing ring;

  /// Scaled g of the best complete state seen; pruning anything priced at or
  /// above it is what turns quiescence into an optimality certificate. A
  /// stale (higher) read only delays a prune, so relaxed loads suffice.
  std::atomic<std::int64_t> incumbent;
  std::mutex goal_mutex;
  Key goal_key{};
  bool has_goal = false;

  /// Exact global expansion count; workers reserve one ticket per expansion,
  /// so the state budget lands on the same count at any thread count.
  std::atomic<std::size_t> expanded{0};

  /// Introspection aggregates. Workers accumulate thread-locally and fold
  /// in at their 64-expansion checkpoints and on exit (relaxed adds off the
  /// hot path), so after the join they are exact; mid-search reads by the
  /// sampling worker are the documented approximation.
  std::atomic<std::size_t> dup_skipped{0};
  std::atomic<std::size_t> dead_prunes{0};
  std::atomic<std::size_t> attr_counting{0};
  std::atomic<std::size_t> attr_pdb{0};

  std::atomic<bool> abort{false};
  std::atomic<int> abort_why{-1};
  std::mutex error_mutex;
  std::exception_ptr error;

  void abort_with(ExactTermination why) {
    int expected = -1;
    abort_why.compare_exchange_strong(expected, static_cast<int>(why),
                                      std::memory_order_relaxed);
    abort.store(true, std::memory_order_release);
  }
};

/// `sampler` (may be null) drives the progress/attribution probes; worker 0
/// is the designated snapshot writer — its own shard's open list and spill
/// counters stand in for the whole search (the only shard it may touch
/// without racing), while expansion count and incumbent are global.
/// `no_incumbent` is the context's sentinel (ceiling + 1): any incumbent
/// below it is a real completion (or the verified seed) worth reporting.
template <typename Packed, typename Masks>
void hda_worker(const Engine& engine, SearchContext<Packed>& ctx,
                const PatternDatabase* pdb, std::size_t wid,
                std::size_t max_states, const StopPredicate& should_stop,
                obs::SearchProgressSampler* sampler,
                std::int64_t no_incumbent) {
  const Dag& dag = engine.dag();
  const Model& model = engine.model();
  const std::size_t n = dag.node_count();
  const std::size_t workers = ctx.shards.size();
  Shard<Packed>& self = ctx.shard(wid);
  using Table = typename Shard<Packed>::Table;

  // Per-worker span: each worker is its own thread, so its events land on
  // their own trace track — per-shard mailbox/eviction activity reads
  // directly off the timeline.
  const obs::TraceSpan worker_span("hda.worker", "shard", wid);
  obs::Counter& expanded_counter =
      obs::MetricsRegistry::instance().counter("search.expanded");

  StateBoundEvaluator bound(engine);
  if (pdb != nullptr) bound.attach_pdb(pdb);  // read-only, shared by workers
  // The shared PDB tables and this worker's bucket arrays are budgeted
  // against this shard's table cap; the queue share refreshes per poll.
  const std::size_t pdb_share =
      pdb == nullptr ? 0 : pdb->table_bytes() / workers;
  self.table.set_overhead_bytes(pdb_share + self.queue.bytes());
  WorkerLedger ledger;
  std::vector<std::vector<StateMsg<Packed>>> out(workers);
  std::vector<StateMsg<Packed>> inbox;
  std::size_t local_expanded = 0;
  std::size_t idle_spins = 0;
  std::size_t local_dup = 0, local_dead = 0;
  std::size_t local_attr_counting = 0, local_attr_pdb = 0;
  auto flush_introspection = [&] {
    if (local_dup != 0) ctx.dup_skipped.fetch_add(local_dup,
                                                  std::memory_order_relaxed);
    if (local_dead != 0) ctx.dead_prunes.fetch_add(local_dead,
                                                   std::memory_order_relaxed);
    if (local_attr_counting != 0) {
      ctx.attr_counting.fetch_add(local_attr_counting,
                                  std::memory_order_relaxed);
    }
    if (local_attr_pdb != 0) {
      ctx.attr_pdb.fetch_add(local_attr_pdb, std::memory_order_relaxed);
    }
    local_dup = local_dead = local_attr_counting = local_attr_pdb = 0;
  };

  // Relax one priced state into this shard's table/queue. Messages losing to
  // an equal-or-better path, or priced at or above the incumbent, die here.
  auto accept = [&](const StateMsg<Packed>& m) {
    if (m.f >= ctx.incumbent.load(std::memory_order_relaxed)) return;
    switch (self.table.relax(m.key, m.g, m.parent, m.via)) {
      case Table::Relax::OutOfMemory:
        ctx.abort_with(ExactTermination::MemoryBudget);
        return;
      case Table::Relax::Stale:
        return;
      case Table::Relax::Inserted:
      case Table::Relax::Improved:
        break;
    }
    self.queue.push(m.f, {m.key, m.g});
  };

  // Route a generated state to its owner: same-shard states relax in place,
  // the rest ride per-target batches. Credit counts at enqueue so an
  // in-flight message is always covered by its sender (termination.hpp).
  // Batching amortizes the mailbox lock under load; with the local queue
  // drained this expansion is the last local work, so ship immediately —
  // on serial instances (chains) the whole search is such hand-offs and
  // latency, not lock traffic, is the cost that matters.
  auto route = [&](StateMsg<Packed> m) {
    const std::size_t target = hda::owner_of<Packed>(m.key, workers);
    if (target == wid) {
      accept(m);
      return;
    }
    out[target].push_back(std::move(m));
    ++ledger.credit;
    if (out[target].size() >= kRouteBatchSize || self.queue.empty()) {
      ctx.shard(target).mailbox.deliver(out[target]);
      out[target].clear();
    }
  };

  auto flush_all = [&] {
    for (std::size_t t = 0; t < workers; ++t) {
      if (!out[t].empty()) {
        ctx.shard(t).mailbox.deliver(out[t]);
        out[t].clear();
      }
    }
  };

  while (true) {
    if (ctx.abort.load(std::memory_order_acquire)) break;
    if (ctx.ring.certified()) break;

    // Incoming states first: they may undercut what the local queue holds.
    if (self.mailbox.drain(inbox) > 0) {
      ledger.credit -= static_cast<std::int64_t>(inbox.size());
      ledger.black = true;
      idle_spins = 0;
      obs::trace_instant("hda.mailbox_drain", "messages", inbox.size());
      for (const StateMsg<Packed>& m : inbox) accept(m);
    }

    if (self.queue.empty()) {
      // Idle: push any straggler batches out (unflushed credit would keep
      // the ring from ever certifying), then offer the token. A worker that
      // stays starved backs off to a short sleep — on an oversubscribed
      // machine, yield-spinning idlers would otherwise steal most of the
      // busy workers' cycles.
      flush_all();
      if (!self.mailbox.empty()) continue;
      if (ctx.ring.try_pass(wid, ledger)) break;
      if (++idle_spins > 64) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      } else {
        std::this_thread::yield();
      }
      continue;
    }
    idle_spins = 0;

    auto [f, item] = self.queue.pop();
    // Expansion gate: stale-g check plus the delayed duplicate check
    // against this shard's spill runs — each (key, g) expands at most once.
    const auto pop_verdict = self.table.begin_expansion(item.key, item.g);
    if (pop_verdict == Table::Pop::OutOfMemory) {
      ctx.abort_with(ExactTermination::MemoryBudget);
      break;
    }
    if (pop_verdict == Table::Pop::Skip) {
      ++local_dup;
      continue;
    }
    if (f >= ctx.incumbent.load(std::memory_order_relaxed)) continue;
    const std::int64_t g = item.g;
    const Packed current = Packed::from_key(item.key, n);
    // One O(n) unpack per expansion; neighbors below are derived in O(1) —
    // packed keys and bound masks alike.
    GameState state = current.to_state(n);
    if (engine.is_complete(state)) {
      const std::lock_guard<std::mutex> lock(ctx.goal_mutex);
      if (!ctx.has_goal || g < ctx.incumbent.load(std::memory_order_relaxed)) {
        ctx.has_goal = true;
        ctx.goal_key = item.key;
        ctx.incumbent.store(g, std::memory_order_relaxed);
      }
      continue;  // never expanded: no completion extends a complete state for free
    }
    // Entry poll included (local_expanded == 0): an expired deadline stops
    // this worker before it burns a poll interval of expansions. The same
    // checkpoint refreshes the queue's share of the memory budget.
    if ((local_expanded & 0x3Fu) == 0) {
      self.table.set_overhead_bytes(pdb_share + self.queue.bytes());
      flush_introspection();
      if (should_stop && should_stop()) {
        ctx.abort_with(ExactTermination::Stopped);
        break;
      }
      if (local_expanded != 0) {
        expanded_counter.add(64);
        if ((local_expanded & 0x3FFu) == 0 && obs::trace_enabled()) {
          obs::trace_instant("hda.checkpoint", "expanded", local_expanded);
        }
        // Worker 0 is the single snapshot writer: global expansion count
        // and incumbent, own-shard open list and spill counters (the only
        // shard it may read without racing — the documented approximation).
        if ((local_expanded & 0x3FFu) == 0 && wid == 0 && sampler != nullptr &&
            sampler->due()) {
          obs::ProgressObservation ob;
          ob.expanded = ctx.expanded.load(std::memory_order_relaxed);
          ob.frontier_f_scaled = f;
          const std::int64_t inc =
              ctx.incumbent.load(std::memory_order_relaxed);
          ob.incumbent_scaled = inc < no_incumbent ? inc : -1;
          ob.open_states = self.queue.size();
          using OpenItem = typename Shard<Packed>::OpenItem;
          self.queue.for_each([&](std::int64_t fq, const OpenItem& qi) {
            if (ob.open_f_min < 0 || fq < ob.open_f_min) ob.open_f_min = fq;
            ob.open_f_max = std::max(ob.open_f_max, fq);
            if (ob.open_g_min < 0 || qi.g < ob.open_g_min) ob.open_g_min = qi.g;
            ob.open_g_max = std::max(ob.open_g_max, qi.g);
          });
          ob.dup_skipped = ctx.dup_skipped.load(std::memory_order_relaxed);
          ob.dead_prunes = ctx.dead_prunes.load(std::memory_order_relaxed);
          ob.attr_counting =
              ctx.attr_counting.load(std::memory_order_relaxed);
          ob.attr_pdb = ctx.attr_pdb.load(std::memory_order_relaxed);
          ob.spilled_states = self.table.spilled_states();
          ob.spill_bytes = self.table.spill_bytes();
          ob.merge_passes = self.table.merge_passes();
          sampler->observe(ob);
        }
      }
    }
    const std::size_t ticket =
        ctx.expanded.fetch_add(1, std::memory_order_relaxed);
    if (ticket >= max_states) {
      ctx.expanded.fetch_sub(1, std::memory_order_relaxed);
      ctx.abort_with(ExactTermination::StateBudget);
      break;
    }
    ++local_expanded;

    const Masks masks = Masks::from(current, n);
    if (sampler != nullptr) {
      // Bound-source attribution: one extra (pure, deterministic) bound
      // evaluation per expansion, only when someone is watching, so
      // un-instrumented searches stay byte-identical.
      (void)bound.lower_bound_scaled(masks);
      if (bound.last_source() == StateBoundEvaluator::BoundSource::Pdb) {
        ++local_attr_pdb;
      } else {
        ++local_attr_counting;
      }
    }
    for (std::size_t v = 0; v < n; ++v) {
      const NodeId node = static_cast<NodeId>(v);
      for (MoveType type : {MoveType::Load, MoveType::Store, MoveType::Compute,
                            MoveType::Delete}) {
        const Move move{type, node};
        if (!engine.is_legal(state, move)) continue;
        const Packed next = current.apply(move);
        const std::int64_t next_g = g + scaled_move_cost(model, type);
        Masks next_masks = masks;
        next_masks.apply(move);
        std::optional<std::int64_t> h = bound.lower_bound_scaled(next_masks);
        if (!h) {
          ++local_dead;  // provably dead: prune
          continue;
        }
        const std::int64_t next_f = next_g + *h;
        if (next_f >= ctx.incumbent.load(std::memory_order_relaxed)) continue;
        route({next.key(), item.key, next_g, next_f, move});
      }
    }
  }
  flush_introspection();
}

/// HDA* pays per-state routing latency; on an instance whose search frontier
/// is a single state (level width 1 — chains), that is all it does. Fall
/// back to one worker there: the sequential path costs nothing to detect
/// and beats an 8-thread game of pass-the-parcel by orders of magnitude.
bool serial_instance(const Dag& dag) {
  const std::size_t n = dag.node_count();
  if (n < 2) return true;
  std::vector<std::size_t> width(longest_path_length(dag) + 1, 0);
  for (std::size_t d : node_depths(dag)) {
    if (++width[d] > 1) return false;
  }
  return true;
}

template <typename Packed, typename Masks>
std::optional<ExactResult> hda_impl(const Engine& engine, std::size_t workers,
                                    const ExactSearchOptions& opt,
                                    ExactSearchStats& stats) {
  using Key = typename Packed::Key;
  const Dag& dag = engine.dag();
  const Model& model = engine.model();
  const std::size_t n = dag.node_count();
  const std::int64_t eps_den = model.epsilon().den();
  const StopPredicate& should_stop = opt.should_stop;

  auto fill_spill_stats = [&](SearchContext<Packed>& ctx) {
    stats.table_bytes = 0;
    stats.spilled_states = 0;
    stats.spill_bytes = 0;
    stats.spill_peak_bytes = 0;
    stats.merge_passes = 0;
    stats.spill_io_error = false;
    stats.table_headroom_stop = false;
    for (const auto& shard : ctx.shards) {
      stats.table_bytes += shard->table.bytes();
      stats.spilled_states += shard->table.spilled_states();
      stats.spill_bytes += shard->table.spill_bytes();
      stats.spill_peak_bytes += shard->table.spill_peak_bytes();
      stats.merge_passes += shard->table.merge_passes();
      stats.spill_io_error |= shard->table.spill_io_error();
      stats.table_headroom_stop |= shard->table.headroom_stop();
    }
  };
  auto give_up = [&](ExactTermination why) {
    stats.termination = why;
    return std::nullopt;
  };

  // The incumbent starts one past the universal ceiling — or at the seed's
  // verified cost, pruning speculation above a known completion from move
  // one — so "f >= incumbent" subsumes the ceiling prune of the sequential
  // A* until a real complete state undercuts it.
  const std::int64_t ceiling = universal_search_ceiling_scaled(dag, model);
  const std::int64_t seeded_incumbent =
      opt.seed ? std::min(ceiling + 1, opt.seed->g_scaled) : ceiling + 1;

  std::optional<PatternDatabase> pdb;
  if (bigstate_pdb_enabled(opt, n)) {
    // Hashed PDB tables (patterns wider than 8) take at most half of the
    // memory budget, leaving the rest to the shard tables; their builds
    // truncate admissibly at the cap instead of overshooting.
    pdb.emplace(engine, opt.pdb_pattern_size, should_stop, opt.pdb_partition,
                opt.max_memory_bytes != 0 ? opt.max_memory_bytes / 2 : 0);
    if (pdb->build_aborted()) return give_up(ExactTermination::Stopped);
  }

  // One spill directory per search, one private partition per shard: run
  // files stay single-owner, so the disk path needs no locks. Declared
  // before the context so the shards' run files die first.
  std::optional<bigstate::SpillDirectory> spill_dir =
      make_spill_directory(opt);
  std::vector<std::string> spill_partitions;
  if (spill_dir) {
    spill_partitions.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      spill_partitions.push_back(
          spill_dir->partition("shard-" + std::to_string(w)));
    }
  }
  SearchContext<Packed> ctx(
      n, workers, static_cast<std::size_t>(ceiling) + 1,
      opt.max_memory_bytes == 0 ? 0
                                : std::max<std::size_t>(
                                      1, opt.max_memory_bytes / workers),
      spill_partitions,
      opt.max_disk_bytes == 0
          ? 0
          : std::max<std::size_t>(1, opt.max_disk_bytes / workers),
      seeded_incumbent);
  stats.threads_used = workers;

  // Nothing prices below the seed, so the seed is optimal — return it.
  auto seed_wins = [&]() {
    stats.termination = ExactTermination::Solved;
    fill_spill_stats(ctx);
    stats.seed_won = true;
    ExactResult result;
    result.trace = opt.seed->trace;
    result.cost = Rational(opt.seed->g_scaled, eps_den);
    result.states_expanded = stats.states_expanded;
    return result;
  };

  const GameState start_state = engine.initial_state();
  const Packed start = Packed::from_state(start_state);
  {
    StateBoundEvaluator bound(engine);
    if (pdb) bound.attach_pdb(&*pdb);
    std::optional<std::int64_t> start_h = bound.lower_bound_scaled(start);
    if (!start_h || *start_h >= seeded_incumbent) {
      if (opt.seed) return seed_wins();
      return give_up(ExactTermination::Exhausted);
    }
    // Seed the owner shard before any worker exists; thread creation
    // publishes it.
    Shard<Packed>& home =
        ctx.shard(hda::owner_of<Packed>(start.key(), workers));
    if (home.table.relax(start.key(), 0, start.key(),
                         Move{MoveType::Load, 0}) ==
        Shard<Packed>::Table::Relax::OutOfMemory) {
      fill_spill_stats(ctx);
      return give_up(ExactTermination::MemoryBudget);
    }
    home.queue.push(*start_h, {start.key(), 0});
  }

  const obs::TraceSpan search_span("hda.search", "workers", workers);
  // Worker threads are fresh: hand them the spawner's trace context so their
  // spans keep the originating request id.
  const std::uint64_t trace_ctx = obs::trace_context();
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      const obs::ScopedTraceContext ctx_scope(trace_ctx);
      try {
        hda_worker<Packed, Masks>(engine, ctx, pdb ? &*pdb : nullptr, w,
                                  opt.max_states, should_stop, opt.progress,
                                  ceiling + 1);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(ctx.error_mutex);
          if (!ctx.error) ctx.error = std::current_exception();
        }
        ctx.abort_with(ExactTermination::Stopped);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  stats.states_expanded = ctx.expanded.load(std::memory_order_relaxed);
  stats.dup_skipped = ctx.dup_skipped.load(std::memory_order_relaxed);
  stats.dead_prunes = ctx.dead_prunes.load(std::memory_order_relaxed);
  stats.attr_counting = ctx.attr_counting.load(std::memory_order_relaxed);
  stats.attr_pdb = ctx.attr_pdb.load(std::memory_order_relaxed);
  fill_spill_stats(ctx);
  if (ctx.error) std::rethrow_exception(ctx.error);
  if (ctx.abort.load(std::memory_order_acquire)) {
    return give_up(static_cast<ExactTermination>(
        ctx.abort_why.load(std::memory_order_relaxed)));
  }
  if (!ctx.has_goal) {
    // Quiescence with no goal: with a seed it proves nothing beats the
    // seed; without one the reachable graph is exhausted.
    if (opt.seed) return seed_wins();
    return give_up(ExactTermination::Exhausted);
  }

  // Quiescence proved nothing open prices below the incumbent, so the chain
  // of tree edges behind goal_key is an optimal pebbling. Every entry lives
  // in its key's owner shard; all shards are safely readable after the join.
  // Settle each shard first: an evicted-then-regenerated ancestor's RAM
  // entry could otherwise splice a worse tree edge into the optimal trace.
  for (auto& shard : ctx.shards) shard->table.settle();
  std::vector<Move> reversed;
  Key cursor = ctx.goal_key;
  while (!(cursor == start.key())) {
    const auto& link =
        ctx.shard(hda::owner_of<Packed>(cursor, workers)).table.at(cursor);
    reversed.push_back(link.via);
    cursor = link.parent;
  }
  ExactResult result;
  for (std::size_t i = reversed.size(); i-- > 0;) {
    result.trace.push(reversed[i]);
  }
  result.cost = Rational(ctx.incumbent.load(std::memory_order_relaxed), eps_den);
  result.states_expanded = stats.states_expanded;
  stats.termination = ExactTermination::Solved;
  return result;
}

}  // namespace

std::size_t hda_resolve_threads(std::size_t threads) {
  RBPEB_REQUIRE(threads <= kHdaAstarMaxThreads,
                "hda-astar supports at most " +
                    std::to_string(kHdaAstarMaxThreads) + " threads");
  if (threads != 0) return threads;
  const auto hw = static_cast<std::size_t>(std::thread::hardware_concurrency());
  // The hw fallback honors the same cap explicit requests are checked
  // against; a >256-thread machine gets the cap, not a throw or a bypass.
  return std::clamp<std::size_t>(hw, 1, kHdaAstarMaxThreads);
}

std::optional<ExactResult> try_solve_hda_astar(
    const Engine& engine, std::size_t threads,
    const ExactSearchOptions& options, ExactSearchStats* stats) {
  const std::size_t n = engine.dag().node_count();
  RBPEB_REQUIRE(n <= kHdaAstarMaxNodes,
                "solve_hda_astar supports at most 1024 nodes");
  std::size_t workers = hda_resolve_threads(threads);
  if (workers > 1 && serial_instance(engine.dag())) workers = 1;
  ExactSearchStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = {};
  const bool force_wide = options.force_var_state || options.force_mask_vec;
  using Masks1 = StateBoundEvaluator::StateMasks;
  if (options.force_mask_vec || n > StateBoundEvaluator::kWideMaskMaxNodes) {
    // Runtime-width masks: the only path past 128 nodes, and the forced
    // differential-testing path below it.
    return hda_impl<VarPackedState, StateBoundEvaluator::MaskVec>(
        engine, workers, options, *stats);
  }
  if (!force_wide && n <= PackedState64::max_nodes()) {
    return hda_impl<PackedState64, Masks1>(engine, workers, options, *stats);
  }
  if (!force_wide && n <= PackedState128::max_nodes()) {
    return hda_impl<PackedState128, Masks1>(engine, workers, options, *stats);
  }
  return hda_impl<VarPackedState, StateBoundEvaluator::WideStateMasks>(
      engine, workers, options, *stats);
}

std::optional<ExactResult> try_solve_hda_astar(const Engine& engine,
                                               std::size_t threads,
                                               std::size_t max_states,
                                               const StopPredicate& should_stop,
                                               ExactSearchStats* stats) {
  ExactSearchOptions options;
  options.max_states = max_states;
  options.should_stop = should_stop;
  return try_solve_hda_astar(engine, threads, options, stats);
}

ExactResult solve_hda_astar(const Engine& engine, std::size_t threads,
                            std::size_t max_states) {
  ExactSearchStats stats;
  auto result = try_solve_hda_astar(engine, threads, max_states, {}, &stats);
  if (!result) {
    switch (stats.termination) {
      case ExactTermination::Exhausted:
        throw InvariantError(
            "solve_hda_astar exhausted the reachable configuration graph "
            "without a complete state");
      case ExactTermination::MemoryBudget:
        throw InvariantError("solve_hda_astar exceeded its memory budget");
      default:
        throw InvariantError("solve_hda_astar exceeded its state budget");
    }
  }
  return std::move(*result);
}

}  // namespace rbpeb
