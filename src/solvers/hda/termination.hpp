// Distributed termination detection for the HDA* workers: Safra's token-ring
// algorithm (EWD 998) over shared memory.
//
// Quiescence — every worker idle with an empty queue and mailbox, and no
// state message still in flight — is exactly the HDA* optimality condition:
// expansion never stops while any state prices below the incumbent, so a
// quiescent ring proves the globally cheapest open f-value ≥ incumbent and
// the incumbent is optimal (or, with no incumbent, that the reachable
// configuration graph is exhausted).
//
// The ring detects quiescence with message counting, not barriers:
//  * every worker keeps a credit (messages sent − messages received) and
//    turns black when it receives, both worker-local (a worker folds only
//    its own ledger, and only while holding the token);
//  * an idle worker holding the token adds its credit, stains the token
//    with its color, whitens itself, and passes on;
//  * the initiator (worker 0) certifies termination only after a full round
//    in which nobody went black and the summed credit is zero — a white
//    round over a ring with zero outstanding credit means no message was,
//    is, or can again be in flight.
// A message observed "in flight" is always covered by its sender's credit
// (senders count at enqueue, before the mailbox sees the batch), so the sum
// can only reach zero when the system is truly drained; Safra's staining
// rule rules out the receive-then-whiten race.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace rbpeb::hda {

/// Per-worker message accounting, owned and mutated by that worker alone.
struct WorkerLedger {
  std::int64_t credit = 0;  ///< messages sent minus messages received
  bool black = false;       ///< received a message since the last token pass
};

/// The token ring. One instance is shared by all workers of a search; the
/// token's fields are plain because only the holder touches them — the
/// release store / acquire load pair on `holder_` hands them off.
class SafraRing {
 public:
  explicit SafraRing(std::size_t workers) : workers_(workers) {}

  /// True once the ring has certified global quiescence.
  bool certified() const { return done_.load(std::memory_order_acquire); }

  /// Called by worker `i` whenever it is idle (empty queue, empty mailbox,
  /// all outgoing batches flushed). Folds the ledger in and passes the token
  /// when worker `i` holds it; a no-op otherwise. Returns certified().
  bool try_pass(std::size_t i, WorkerLedger& ledger) {
    if (done_.load(std::memory_order_acquire)) return true;
    if (holder_.load(std::memory_order_acquire) != i) return false;
    if (i == 0) {
      // Evaluate the completed round: a white round whose total credit
      // (token plus the initiator's own) is zero certifies quiescence.
      if (round_active_ && !token_black_ && !ledger.black &&
          token_count_ + ledger.credit == 0) {
        done_.store(true, std::memory_order_release);
        return true;
      }
      round_active_ = true;
      token_count_ = 0;
      token_black_ = false;
      ledger.black = false;
      holder_.store(workers_ > 1 ? 1 : 0, std::memory_order_release);
    } else {
      token_count_ += ledger.credit;
      token_black_ |= ledger.black;
      ledger.black = false;
      holder_.store((i + 1) % workers_, std::memory_order_release);
    }
    return done_.load(std::memory_order_acquire);
  }

 private:
  std::size_t workers_;
  std::atomic<std::size_t> holder_{0};
  std::atomic<bool> done_{false};
  // Token state; guarded by holding the token (see class comment).
  std::int64_t token_count_ = 0;
  bool token_black_ = false;
  bool round_active_ = false;
};

}  // namespace rbpeb::hda
