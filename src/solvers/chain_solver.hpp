// Constructive optimal strategy for the Figure 3 tradeoff chain.
#pragma once

#include "src/gadgets/tradeoff_chain.hpp"
#include "src/pebble/engine.hpp"
#include "src/pebble/trace.hpp"

namespace rbpeb {

/// Pebble the chain with the paper's strategy: visit gadget groups (if any),
/// then chain nodes in order, keeping as many control pebbles parked as the
/// budget allows. The trace is legal for any R >= chain.instance.red_limit;
/// optimality for small instances is established against solve_exact in the
/// test suite.
Trace solve_chain(const Engine& engine, const TradeoffChain& chain);

}  // namespace rbpeb
