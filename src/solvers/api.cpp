#include "src/solvers/api.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "src/gadgets/transforms.hpp"
#include "src/obs/metrics.hpp"
#include "src/pebble/bounds.hpp"
#include "src/obs/trace.hpp"
#include "src/pebble/verifier.hpp"
#include "src/solvers/anytime_astar.hpp"
#include "src/solvers/bigstate/pdb.hpp"
#include "src/solvers/chain_solver.hpp"
#include "src/solvers/exact.hpp"
#include "src/solvers/exact_astar.hpp"
#include "src/solvers/greedy.hpp"
#include "src/solvers/hda/hda_astar.hpp"
#include "src/solvers/held_karp.hpp"
#include "src/solvers/local_search.hpp"
#include "src/solvers/peephole.hpp"
#include "src/solvers/topo_baseline.hpp"
#include "src/support/check.hpp"

namespace rbpeb {

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::Optimal: return "optimal";
    case SolveStatus::Heuristic: return "heuristic";
    case SolveStatus::BudgetExhausted: return "budget-exhausted";
    case SolveStatus::Inapplicable: return "inapplicable";
  }
  return "?";
}

SolveBudget& SolveBudget::with_wall_clock_ms(std::int64_t ms) {
  deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  return *this;
}

bool certificate_holds(const SolveCertificate& certificate,
                       const Rational& audited_cost) {
  return certificate.cost == audited_cost &&
         audited_cost <=
             (Rational(1) + certificate.epsilon) * certificate.lower_bound;
}

// ---- option helpers ------------------------------------------------------

namespace solver_options {

std::optional<std::string_view> get(const SolverOptions& options,
                                    std::string_view key) {
  auto it = options.find(key);
  if (it == options.end()) return std::nullopt;
  return std::string_view(it->second);
}

namespace {

[[noreturn]] void bad_option(std::string_view key, std::string_view value,
                             std::string_view expected) {
  std::ostringstream os;
  os << "option '" << key << "': cannot parse '" << value << "' as "
     << expected;
  throw PreconditionError(os.str());
}

template <typename T>
T parse_number(std::string_view key, std::string_view value,
               std::string_view expected) {
  T out{};
  auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc() || ptr != value.data() + value.size()) {
    bad_option(key, value, expected);
  }
  return out;
}

}  // namespace

std::size_t get_size(const SolverOptions& options, std::string_view key,
                     std::size_t fallback) {
  auto value = get(options, key);
  if (!value) return fallback;
  return parse_number<std::size_t>(key, *value, "a non-negative integer");
}

std::uint64_t get_u64(const SolverOptions& options, std::string_view key,
                      std::uint64_t fallback) {
  auto value = get(options, key);
  if (!value) return fallback;
  return parse_number<std::uint64_t>(key, *value, "a non-negative integer");
}

double get_double(const SolverOptions& options, std::string_view key,
                  double fallback) {
  auto value = get(options, key);
  if (!value) return fallback;
  return parse_number<double>(key, *value, "a number");
}

bool get_bool(const SolverOptions& options, std::string_view key,
              bool fallback) {
  auto value = get(options, key);
  if (!value) return fallback;
  if (*value == "1" || *value == "true" || *value == "yes" || *value == "on") {
    return true;
  }
  if (*value == "0" || *value == "false" || *value == "no" || *value == "off") {
    return false;
  }
  bad_option(key, *value, "a boolean");
}

Model parse_model(std::string_view name) {
  std::optional<Model> model = Model::from_name(name);
  if (!model) {
    std::ostringstream os;
    os << "unknown model '" << name << "'; known models:";
    for (const Model& m : all_models()) os << ' ' << m.name();
    throw PreconditionError(os.str());
  }
  return *model;
}

Model get_model(const SolverOptions& options, std::string_view key,
                const Model& fallback) {
  auto value = get(options, key);
  if (!value) return fallback;
  return parse_model(*value);
}

}  // namespace solver_options

// ---- Solver base ---------------------------------------------------------

namespace {

/// The same rules with the paper's default start/finish convention; the view
/// convention-naive strategies solve under before their trace is bridged.
Engine default_convention_view(const Engine& engine) {
  return Engine(engine.dag(), engine.model(), engine.red_limit());
}

bool nondefault_convention(const Engine& engine) {
  return engine.convention().sources_start_blue ||
         engine.convention().sinks_end_blue;
}

void fill_audit_stats(std::map<std::string, std::string>& stats,
                      const VerifyResult& vr) {
  stats["loads"] = std::to_string(vr.cost.loads);
  stats["stores"] = std::to_string(vr.cost.stores);
  stats["computes"] = std::to_string(vr.cost.computes);
  stats["deletes"] = std::to_string(vr.cost.deletes);
  stats["transfers"] = std::to_string(vr.cost.transfers());
  stats["moves"] = std::to_string(vr.length);
  stats["peak_red"] = std::to_string(vr.max_red);
}

}  // namespace

std::optional<std::string> Solver::why_inapplicable(
    const SolveRequest& request) const {
  (void)request;
  return std::nullopt;
}

std::vector<std::string_view> Solver::option_keys(
    const SolveRequest* request) const {
  (void)request;
  return {};
}

SolverOptions Solver::supported_options(const SolverOptions& options,
                                        const SolveRequest* request) const {
  const std::vector<std::string_view> keys = option_keys(request);
  SolverOptions narrowed;
  for (const auto& [key, value] : options) {
    if (std::find(keys.begin(), keys.end(), key) != keys.end()) {
      narrowed.emplace(key, value);
    }
  }
  return narrowed;
}

void Solver::validate_options(const SolveRequest& request) const {
  const std::vector<std::string_view> keys = option_keys(&request);
  for (const auto& [key, value] : request.options) {
    if (std::find(keys.begin(), keys.end(), key) != keys.end()) continue;
    std::ostringstream os;
    os << "solver '" << name() << "' does not accept option '" << key << "'";
    if (keys.empty()) {
      os << "; it takes no options";
    } else {
      os << "; accepted keys:";
      for (std::string_view k : keys) os << ' ' << k;
    }
    throw PreconditionError(os.str());
  }
}

SolveResult Solver::run(const SolveRequest& request) const {
  RBPEB_REQUIRE(request.engine != nullptr, "SolveRequest.engine is required");
  validate_options(request);
  // Span names must outlive the trace buffers; adapter names are
  // runtime strings, so intern them (only when tracing is live — the
  // disabled path stays one relaxed load).
  const obs::TraceSpan span(
      obs::trace_enabled()
          ? obs::intern(std::string("solve.") + std::string(name()))
          : nullptr,
      "nodes", request.engine->dag().node_count());
  auto& registry = obs::MetricsRegistry::instance();
  registry.counter("solve.runs").add();
  const auto start = std::chrono::steady_clock::now();
  SolveResult result;
  if (auto reason = why_inapplicable(request)) {
    result = fail(SolveStatus::Inapplicable, *reason);
  } else if (request.budget.interrupted()) {
    result = fail(SolveStatus::BudgetExhausted,
                  "budget interrupted before the solve started");
  } else {
    result = do_solve(request);
  }
  result.solver = std::string(name());
  result.elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  registry
      .counter(std::string("solve.status.") +
               std::string(to_string(result.status)))
      .add();
  registry.histogram("solve.elapsed_us")
      .record(static_cast<std::uint64_t>(result.elapsed.count()));
  return result;
}

SolveResult Solver::make_result(const SolveRequest& request, Trace trace,
                                SolveStatus status,
                                std::map<std::string, std::string> stats,
                                bool bridge_conventions) const {
  const Engine& engine = *request.engine;
  SolveResult result;
  result.status = status;
  result.stats = std::move(stats);
  if (bridge_conventions && nondefault_convention(engine)) {
    // The strategy solved the default-convention game; rewrite its trace for
    // the requested convention (Appendix C) and re-audit under the strict
    // rules. Optimality claims do not survive the bridge.
    Engine relaxed = default_convention_view(engine);
    if (engine.convention().sinks_end_blue) {
      trace = finish_sinks_blue(relaxed, trace);
    }
    if (engine.convention().sources_start_blue) {
      trace = load_blue_sources(engine.dag(), trace);
    }
    VerifyResult vr = verify(engine, trace);
    if (!vr.ok()) {
      return fail(SolveStatus::Inapplicable,
                  "strategy does not support the requested pebbling "
                  "convention: " + (vr.legal ? "incomplete pebbling" : vr.error));
    }
    if (result.status == SolveStatus::Optimal) {
      result.status = SolveStatus::Heuristic;
    }
    result.cost = vr.total;
    fill_audit_stats(result.stats, vr);
  } else {
    VerifyResult vr = verify_or_throw(engine, trace);
    result.cost = vr.total;
    fill_audit_stats(result.stats, vr);
  }
  result.trace = std::move(trace);
  return result;
}

SolveResult Solver::fail(SolveStatus status, std::string detail) const {
  SolveResult result;
  result.status = status;
  result.detail = std::move(detail);
  return result;
}

// ---- adapters ------------------------------------------------------------

namespace {

namespace so = solver_options;

GreedyRule parse_rule(std::string_view name) {
  auto rule = greedy_rule_from_name(name);
  if (!rule) {
    throw PreconditionError("option 'rule': unknown greedy rule '" +
                            std::string(name) +
                            "' (most-red-inputs, fewest-blue-inputs, "
                            "red-ratio)");
  }
  return *rule;
}

EvictionRule parse_eviction(std::string_view name) {
  auto rule = eviction_rule_from_name(name);
  if (!rule) {
    throw PreconditionError("option 'eviction': unknown eviction rule '" +
                            std::string(name) +
                            "' (lru, fewest-uses, random)");
  }
  return *rule;
}

/// The Section 8 node-level greedy; one registration per choice rule, with
/// the plain "greedy" entry accepting a rule=… option.
class GreedySolver final : public Solver {
 public:
  GreedySolver(std::string name, std::string description,
               std::optional<GreedyRule> fixed_rule)
      : name_(std::move(name)),
        description_(std::move(description)),
        fixed_rule_(fixed_rule) {}

  std::string_view name() const override { return name_; }
  std::string_view description() const override { return description_; }

  std::vector<std::string_view> option_keys(
      const SolveRequest* request) const override {
    (void)request;
    if (fixed_rule_) return {"eviction", "eager-delete", "seed"};
    return {"rule", "eviction", "eager-delete", "seed"};
  }

 protected:
  SolveResult do_solve(const SolveRequest& request) const override {
    GreedyOptions options;
    if (fixed_rule_) {
      options.rule = *fixed_rule_;
    } else if (auto rule = so::get(request.options, "rule")) {
      options.rule = parse_rule(*rule);
    }
    if (auto ev = so::get(request.options, "eviction")) {
      options.eviction = parse_eviction(*ev);
    }
    options.eager_delete_dead =
        so::get_bool(request.options, "eager-delete", options.eager_delete_dead);
    options.seed = so::get_u64(request.options, "seed", options.seed);

    Engine relaxed = default_convention_view(*request.engine);
    Trace trace = solve_greedy(relaxed, options);
    return make_result(request, std::move(trace), SolveStatus::Heuristic,
                       {{"rule", to_string(options.rule)},
                        {"eviction", to_string(options.eviction)}});
  }

 private:
  std::string name_;
  std::string description_;
  std::optional<GreedyRule> fixed_rule_;
};

/// The node greedy wrapped with the O(1) whole-instance admissible bound
/// (pebble/bounds.hpp): a size-independent certified tier. The exact and
/// anytime searches stop at 1024 nodes; this adapter attaches a
/// machine-checkable SolveCertificate to a greedy trace at *any* size —
/// absent in the models whose whole-instance bound is 0 (base, oneshot),
/// and sharp enough to prove optimality outright when the trace meets the
/// bound. This is what lets the corpus gate demand a certified or proven
/// answer on 10⁵-node file instances.
class CertifiedGreedySolver final : public Solver {
 public:
  std::string_view name() const override { return "certified-greedy"; }
  std::string_view description() const override {
    return "node greedy + whole-instance admissible bound: certificate at "
           "any instance size (opt rule=…, eviction=…, seed=N)";
  }

  std::vector<std::string_view> option_keys(
      const SolveRequest* request) const override {
    (void)request;
    return {"rule", "eviction", "eager-delete", "seed"};
  }

 protected:
  SolveResult do_solve(const SolveRequest& request) const override {
    GreedyOptions options;
    if (auto rule = so::get(request.options, "rule")) {
      options.rule = parse_rule(*rule);
    }
    if (auto ev = so::get(request.options, "eviction")) {
      options.eviction = parse_eviction(*ev);
    }
    options.eager_delete_dead = so::get_bool(request.options, "eager-delete",
                                             options.eager_delete_dead);
    options.seed = so::get_u64(request.options, "seed", options.seed);

    Engine relaxed = default_convention_view(*request.engine);
    Trace trace = solve_greedy(relaxed, options);
    SolveResult result =
        make_result(request, std::move(trace), SolveStatus::Heuristic,
                    {{"rule", to_string(options.rule)},
                     {"eviction", to_string(options.eviction)}});
    if (!result.ok() || !result.has_trace()) return result;

    const Engine& engine = *request.engine;
    const Rational bound =
        cost_lower_bound(engine.dag(), engine.model(), engine.red_limit());
    result.stats["lower_bound"] = bound.str();
    if (result.cost == bound) {
      result.status = SolveStatus::Optimal;
      result.certificate =
          SolveCertificate{bound, result.cost, Rational(0, 1)};
    } else if (Rational(0, 1) < bound) {
      // ε = (cost − bound) / bound, exactly; certificate_holds re-checks
      // the defining inequality downstream.
      const Rational gap = result.cost - bound;
      result.certificate = SolveCertificate{
          bound, result.cost,
          Rational(gap.num() * bound.den(), gap.den() * bound.num())};
    }
    return result;
  }
};

/// The Section 3 fixed-topological-order baseline.
class TopoSolver final : public Solver {
 public:
  std::string_view name() const override { return "topo"; }
  std::string_view description() const override {
    return "topological-order baseline with lazy eviction ((2Δ+1)·n bound)";
  }

  std::vector<std::string_view> option_keys(
      const SolveRequest* request) const override {
    (void)request;
    return {"eviction", "eager-delete", "seed"};
  }

 protected:
  SolveResult do_solve(const SolveRequest& request) const override {
    OrderedOptions options;
    if (auto ev = so::get(request.options, "eviction")) {
      options.eviction = parse_eviction(*ev);
    }
    options.eager_delete_dead =
        so::get_bool(request.options, "eager-delete", options.eager_delete_dead);
    options.seed = so::get_u64(request.options, "seed", options.seed);

    Engine relaxed = default_convention_view(*request.engine);
    Trace trace = solve_topo_baseline(relaxed, options);
    return make_result(request, std::move(trace), SolveStatus::Heuristic,
                       {{"eviction", to_string(options.eviction)}});
  }
};

// ---- shared option plumbing of the informed searches ---------------------
// Free helpers rather than ExactSearchSolver members so the anytime adapter
// below — which shares every option but none of the do_solve flow — can use
// them too.

/// --opt spill=auto|off|/path: auto spills to a fresh temp directory
/// whenever a memory budget is set, off restores the hard-stop budget
/// semantics, a directory path spills under it. The path form must
/// contain a '/' so typos (spill=on, spill=Auto) fail loudly instead of
/// silently creating a relative spill directory.
void parse_spill_option(const SolverOptions& options,
                        ExactSearchOptions& sopt) {
  const auto value = so::get(options, "spill");
  if (!value || *value == "auto") {
    sopt.spill = SpillMode::Auto;
  } else if (*value == "off") {
    sopt.spill = SpillMode::Off;
  } else if (value->find('/') != std::string_view::npos) {
    sopt.spill = SpillMode::Path;
    sopt.spill_path = std::string(*value);
  } else {
    throw PreconditionError(
        "option 'spill': expected auto, off, or a directory path "
        "(containing '/'); got '" +
        std::string(*value) + "'");
  }
}

PdbMode parse_pdb_mode(const SolverOptions& options) {
  const auto value = so::get(options, "pdb");
  if (!value || *value == "auto") return PdbMode::Auto;
  if (*value == "on") return PdbMode::On;
  if (*value == "off") return PdbMode::Off;
  throw PreconditionError("option 'pdb': expected auto, on, or off; got '" +
                          std::string(*value) + "'");
}

PdbPartition parse_pdb_partition(const SolverOptions& options) {
  const auto value = so::get(options, "pdb-partition");
  if (!value || *value == "cone") return PdbPartition::Cone;
  if (*value == "mincut") return PdbPartition::MinCut;
  throw PreconditionError(
      "option 'pdb-partition': expected cone or mincut; got '" +
      std::string(*value) + "'");
}

/// Whether to run a heuristic upfront and seed the incumbent: explicit
/// incumbent=greedy always, incumbent=auto (the default) exactly past the
/// fixed-width cap — where speculative expansion hurts most and where
/// smaller instances must keep their expansion counts bit-for-bit.
bool want_incumbent_seed(const SolveRequest& request) {
  const auto value = so::get(request.options, "incumbent");
  const std::string_view mode = value.value_or("auto");
  if (mode == "greedy") return true;
  if (mode == "none") return false;
  if (mode != "auto") {
    throw PreconditionError(
        "option 'incumbent': expected auto, greedy, or none; got '" +
        std::string(mode) + "'");
  }
  return request.engine->dag().node_count() > kExactAstarFixedMaxNodes;
}

/// Run the plain greedy solver on the same request (verified and bridged
/// to the requested convention by its own adapter) and turn its trace
/// into an incumbent seed. nullopt when greedy produces no usable trace.
std::optional<IncumbentSeed> greedy_incumbent_seed(
    const SolveRequest& request) {
  const GreedySolver greedy("greedy", "incumbent seeder", std::nullopt);
  SolveRequest seed_request;
  seed_request.engine = request.engine;
  seed_request.budget = request.budget;  // honors deadline / cancellation
  SolveResult heuristic;
  try {
    heuristic = greedy.run(seed_request);
  } catch (const std::exception&) {
    return std::nullopt;  // a failed seeder must not fail the search
  }
  if (!heuristic.has_trace()) return std::nullopt;
  const Rational cost = heuristic.cost;
  const std::int64_t eps_den = request.engine->model().epsilon().den();
  // Verified totals are integer multiples of 1/ε.den(), so the scaled
  // form is exact.
  RBPEB_ENSURE(eps_den % cost.den() == 0,
               "verified cost is not a multiple of 1/eps.den()");
  IncumbentSeed seed;
  seed.trace = std::move(*heuristic.trace);
  seed.g_scaled = cost.num() * (eps_den / cost.den());
  return seed;
}

/// The options every informed search reads: state budget, and — for the
/// bigstate searches — memory/disk budgets, spilling, pattern databases,
/// and incumbent seeding.
ExactSearchOptions parse_exact_search_options(const SolveRequest& request,
                                              bool bigstate) {
  const SolveBudget budget = request.budget;
  ExactSearchOptions sopt;
  sopt.max_states =
      so::get_size(request.options, "max-states", budget.max_states);
  sopt.should_stop = [budget] { return budget.interrupted(); };
  sopt.progress = request.progress;
  if (!bigstate) return sopt;
  sopt.max_memory_bytes = budget.max_memory_bytes;
  sopt.max_disk_bytes = budget.max_disk_bytes;
  parse_spill_option(request.options, sopt);
  sopt.pdb = parse_pdb_mode(request.options);
  sopt.pdb_pattern_size = so::get_size(request.options, "pdb-pattern", 0);
  if (sopt.pdb_pattern_size > PatternDatabase::kMaxHashedPatternSize) {
    throw PreconditionError(
        "option 'pdb-pattern': pattern width must be between 1 and " +
        std::to_string(PatternDatabase::kMaxHashedPatternSize) + "; got " +
        std::to_string(sopt.pdb_pattern_size));
  }
  sopt.pdb_partition = parse_pdb_partition(request.options);
  if (want_incumbent_seed(request)) {
    sopt.seed = greedy_incumbent_seed(request);
  }
  return sopt;
}

/// The single source of truth for which budget dimension actually ended a
/// BudgetExhausted solve. Stored in result.stats["limiting_resource"] at the
/// same site that builds the human-readable detail string, so the two agree
/// by construction — the post-mortem black box (obs/postmortem.hpp) copies
/// this verdict verbatim and tools/postmortem_check.py cross-checks it
/// against the CLI's stderr detail.
///
///   states          — the expansion budget (max_states) ran out
///   table-headroom  — the table's steady state fit the memory budget but
///                     the rehash transient (old+new slabs) did not
///   memory          — the memory budget tripped with spilling disabled
///   disk            — spilling was on but could not grow the runs (disk
///                     budget exhausted, or the filesystem refused writes)
///   deadline        — the wall clock or a cancellation ended the run
std::string limiting_resource_for(ExactTermination termination,
                                  const ExactSearchOptions& sopt,
                                  const ExactSearchStats& stats) {
  switch (termination) {
    case ExactTermination::StateBudget:
      return "states";
    case ExactTermination::MemoryBudget:
      if (stats.table_headroom_stop) return "table-headroom";
      if (sopt.spill == SpillMode::Off) return "memory";
      return "disk";
    default:
      return "deadline";
  }
}

/// Introspection stats every informed-search adapter reports the same way:
/// the always-counted pop/prune tallies, plus — only when a progress sampler
/// rode along — the per-expansion bound-source attribution and the observed
/// heuristic error along the returned trace.
void fill_introspection_stats(SolveResult& result,
                              const ExactSearchStats& search_stats,
                              bool attributed) {
  result.stats["dup_skipped"] = std::to_string(search_stats.dup_skipped);
  result.stats["dead_prunes"] = std::to_string(search_stats.dead_prunes);
  if (!attributed) return;
  result.stats["attr_counting"] = std::to_string(search_stats.attr_counting);
  result.stats["attr_pdb"] = std::to_string(search_stats.attr_pdb);
}

/// Replay the returned trace against the counting bounds and report how
/// tight they ran (obs::measure_heuristic_error). Only when a sampler is
/// attached — the replay is pure but costs a bound evaluation per move.
void fill_heuristic_error_stats(SolveResult& result, const Engine& engine) {
  if (!result.has_trace()) return;
  const obs::HeuristicErrorReport report =
      obs::measure_heuristic_error(engine, *result.trace);
  result.stats["h_error_max"] = std::to_string(report.max_error_scaled);
  result.stats["h_admissible"] = report.admissible ? "true" : "false";
  char tightness[32];
  std::snprintf(tightness, sizeof tightness, "%.4f", report.tightness);
  result.stats["h_tightness"] = tightness;
}

/// Shared adapter for the exhaustive configuration-graph searches: budget
/// plumbing, partial stats on exhaustion, and drained-graph handling are
/// identical; only the search routine, node cap, and (for the parallel
/// search) thread use differ. The informed searches (bigstate() true)
/// additionally honor the memory budget, pattern-database options, and
/// greedy incumbent seeding.
class ExactSearchSolver : public Solver {
 public:
  std::vector<std::string_view> option_keys(
      const SolveRequest* request) const override {
    (void)request;
    if (!bigstate()) return {"max-states"};
    return {"max-states", "pdb", "pdb-pattern", "pdb-partition", "incumbent",
            "spill"};
  }

  std::optional<std::string> why_inapplicable(
      const SolveRequest& request) const override {
    const std::size_t n = request.engine->dag().node_count();
    if (n > node_cap()) {
      return "DAG has " + std::to_string(n) + " nodes; " +
             std::string(name()) + " supports at most " +
             std::to_string(node_cap());
    }
    return std::nullopt;
  }

 protected:
  virtual std::size_t node_cap() const = 0;
  /// True for the informed searches that ride the bigstate subsystem
  /// (variable-width states, PDB heuristics, memory-budgeted tables).
  virtual bool bigstate() const { return true; }
  virtual std::optional<ExactResult> search(const SolveRequest& request,
                                            const ExactSearchOptions& options,
                                            ExactSearchStats& stats) const = 0;

  SolveResult do_solve(const SolveRequest& request) const override {
    ExactSearchOptions sopt = parse_exact_search_options(request, bigstate());
    ExactSearchStats search_stats;
    auto solved = search(request, sopt, search_stats);
    const bool failed = !solved.has_value();
    auto fill_common_stats = [&](SolveResult& result) {
      result.stats["max_states"] = std::to_string(sopt.max_states);
      if (!bigstate()) return;
      result.stats["table_bytes"] = std::to_string(search_stats.table_bytes);
      result.stats["spilled_states"] =
          std::to_string(search_stats.spilled_states);
      result.stats["spill_bytes"] = std::to_string(search_stats.spill_bytes);
      result.stats["spill_peak_bytes"] =
          std::to_string(search_stats.spill_peak_bytes);
      result.stats["merge_passes"] = std::to_string(search_stats.merge_passes);
      if (search_stats.table_headroom_stop) {
        result.stats["table_headroom_stop"] = "true";
      }
      // On failure a seeded trace is what the caller gets back, so that is
      // its provenance; a failed search proved nothing.
      result.stats["incumbent_source"] =
          !sopt.seed ? "none"
                     : (search_stats.seed_won || failed ? "greedy" : "search");
      if (search_stats.threads_used != 0) {
        result.stats["threads_used"] =
            std::to_string(search_stats.threads_used);
      }
    };
    if (failed) {
      std::string detail;
      SolveStatus status = SolveStatus::BudgetExhausted;
      switch (search_stats.termination) {
        case ExactTermination::Exhausted:
          status = SolveStatus::Inapplicable;
          detail =
              "configuration graph exhausted without reaching a complete "
              "state; the instance admits no pebbling under these rules";
          break;
        case ExactTermination::StateBudget:
          detail = "state budget (" + std::to_string(sopt.max_states) +
                   ") exhausted before an optimum was proven";
          break;
        case ExactTermination::MemoryBudget:
          detail = "memory budget (" + std::to_string(sopt.max_memory_bytes) +
                   " bytes) exhausted before an optimum was proven";
          if (search_stats.table_headroom_stop) {
            // The table itself fit; the copy peak of its next doubling did
            // not. Without this line the stop is indistinguishable from a
            // genuinely too-small budget.
            detail +=
                "; stopped by the rehash transient: the grown table would "
                "fit the budget but old+new slabs during the copy do not "
                "(table_headroom_stop) — slightly more --budget-memory "
                "would let the search continue";
          }
          if (sopt.spill == SpillMode::Off) {
            detail += "; spilling to disk was disabled (spill=off)";
          } else if (sopt.max_disk_bytes != 0 &&
                     !search_stats.spill_io_error) {
            // With spilling on, this termination means the runs could not
            // grow either — the disk budget is what actually stopped it.
            detail += "; disk budget (" +
                      std::to_string(sopt.max_disk_bytes) +
                      " bytes) blocked further spilling (" +
                      std::to_string(search_stats.spilled_states) +
                      " states spilled)";
          } else {
            // Raising --budget-disk cannot fix this one: the filesystem
            // itself refused the write.
            detail += "; spilling to disk failed (disk full or I/O error; " +
                      std::to_string(search_stats.spilled_states) +
                      " states spilled)";
          }
          break;
        default:
          detail =
              "deadline or cancellation hit before an optimum was proven";
      }
      SolveResult result;
      if (sopt.seed && status == SolveStatus::BudgetExhausted) {
        // The verified seed trace is a legal complete pebbling — return it
        // as the best-so-far rather than discarding it (BudgetExhausted is
        // documented as "a best-so-far trace may exist").
        result = make_result(request, std::move(sopt.seed->trace), status, {},
                             /*bridge_conventions=*/false);
        result.detail = detail + "; returning the heuristic incumbent seed";
      } else {
        result = fail(status, std::move(detail));
      }
      // Partial progress still gets reported: how far the search got is
      // exactly what a caller tuning budgets needs to see.
      result.stats["states_expanded"] =
          std::to_string(search_stats.states_expanded);
      fill_common_stats(result);
      fill_introspection_stats(result, search_stats,
                               request.progress != nullptr);
      if (status == SolveStatus::BudgetExhausted) {
        result.stats["limiting_resource"] =
            limiting_resource_for(search_stats.termination, sopt, search_stats);
      }
      return result;
    }
    // The engine itself enforces the convention here — no bridging needed,
    // and the optimality claim stands for the exact rules requested.
    SolveResult result = make_result(
        request, std::move(solved->trace), SolveStatus::Optimal,
        {{"states_expanded", std::to_string(solved->states_expanded)}},
        /*bridge_conventions=*/false);
    fill_common_stats(result);
    fill_introspection_stats(result, search_stats, request.progress != nullptr);
    if (request.progress != nullptr) {
      fill_heuristic_error_stats(result, *request.engine);
    }
    return result;
  }
};

/// Dijkstra over game configurations: provably optimal, exponential.
class ExactSolver final : public ExactSearchSolver {
 public:
  std::string_view name() const override { return "exact"; }
  std::string_view description() const override {
    return "optimal pebbling via Dijkstra over configurations (≤ 21 nodes)";
  }

 protected:
  std::size_t node_cap() const override { return 21; }
  bool bigstate() const override { return false; }
  std::optional<ExactResult> search(const SolveRequest& request,
                                    const ExactSearchOptions& options,
                                    ExactSearchStats& stats) const override {
    return try_solve_exact(*request.engine, options.max_states,
                           options.should_stop, &stats);
  }
};

/// A* over packed configurations with the bounds.hpp admissible heuristic,
/// reinforced past 42 nodes by the bigstate subsystem (variable-width
/// states, pattern databases, memory-budgeted tables, incumbent seeding).
class ExactAstarSolver final : public ExactSearchSolver {
 public:
  std::string_view name() const override { return "exact-astar"; }
  std::string_view description() const override {
    return "optimal pebbling via A* with admissible per-state bounds, "
           "pattern databases past 42 nodes, and a bucket queue (≤ 1024 "
           "nodes)";
  }

 protected:
  std::size_t node_cap() const override { return kExactAstarMaxNodes; }
  std::optional<ExactResult> search(const SolveRequest& request,
                                    const ExactSearchOptions& options,
                                    ExactSearchStats& stats) const override {
    return try_solve_exact_astar(*request.engine, options, &stats);
  }
};

/// Hash-distributed A* across worker threads — the same optimality proof as
/// exact-astar, pushed by every core the budget grants (budget.threads, or
/// the `threads` option; 0 = hardware concurrency).
class HdaAstarSolver final : public ExactSearchSolver {
 public:
  std::string_view name() const override { return "hda-astar"; }
  std::string_view description() const override {
    return "parallel optimal pebbling via hash-distributed A* over sharded "
           "closed tables (opt threads=N, ≤ 1024 nodes)";
  }

  std::vector<std::string_view> option_keys(
      const SolveRequest* request) const override {
    std::vector<std::string_view> keys =
        ExactSearchSolver::option_keys(request);
    keys.push_back("threads");
    return keys;
  }

 protected:
  std::size_t node_cap() const override { return kHdaAstarMaxNodes; }

  static std::size_t resolved_threads(const SolveRequest& request) {
    return hda_resolve_threads(
        so::get_size(request.options, "threads", request.budget.threads));
  }

  std::optional<ExactResult> search(const SolveRequest& request,
                                    const ExactSearchOptions& options,
                                    ExactSearchStats& stats) const override {
    return try_solve_hda_astar(*request.engine, resolved_threads(request),
                               options, &stats);
  }

  SolveResult do_solve(const SolveRequest& request) const override {
    SolveResult result = ExactSearchSolver::do_solve(request);
    result.stats["threads"] = std::to_string(resolved_threads(request));
    return result;
  }
};

/// --opt weights=3,2,3/2,1 — the anytime pass schedule as comma-separated
/// ratios ≥ 1, greediest first.
std::vector<AnytimeWeight> parse_weight_schedule(std::string_view text) {
  auto bad = [&](std::string_view token) -> PreconditionError {
    return PreconditionError(
        "option 'weights': expected comma-separated ratios >= 1 like "
        "3,2,3/2,1; got token '" +
        std::string(token) + "'");
  };
  auto parse_int = [&](std::string_view token,
                       std::string_view piece) -> std::int64_t {
    std::int64_t out = 0;
    auto [ptr, ec] =
        std::from_chars(piece.data(), piece.data() + piece.size(), out);
    if (ec != std::errc() || ptr != piece.data() + piece.size() || out <= 0) {
      throw bad(token);
    }
    return out;
  };
  std::vector<AnytimeWeight> weights;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string_view token =
        text.substr(pos, comma == std::string_view::npos ? std::string_view::npos
                                                         : comma - pos);
    AnytimeWeight w;
    const std::size_t slash = token.find('/');
    if (slash == std::string_view::npos) {
      w.num = parse_int(token, token);
    } else {
      w.num = parse_int(token, token.substr(0, slash));
      w.den = parse_int(token, token.substr(slash + 1));
    }
    if (w.num < w.den) throw bad(token);
    weights.push_back(w);
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  if (weights.empty()) {
    throw PreconditionError("option 'weights': schedule must not be empty");
  }
  return weights;
}

/// The anytime tier: weighted-A* passes tightening a verified incumbent,
/// returned with a machine-checkable (1+ε) certificate. Soundness argument
/// in solvers/anytime_astar.hpp; shares every informed-search option.
class AnytimeSolver final : public Solver {
 public:
  std::string_view name() const override { return "anytime-astar"; }
  std::string_view description() const override {
    return "anytime weighted A*: best verified pebbling within budget plus "
           "a certificate cost ≤ (1+ε)·OPT (opt weights=…, epsilon=X, "
           "≤ 1024 nodes)";
  }

  std::vector<std::string_view> option_keys(
      const SolveRequest* request) const override {
    (void)request;
    return {"max-states", "pdb", "pdb-pattern", "pdb-partition", "incumbent",
            "spill", "weights", "epsilon"};
  }

  std::optional<std::string> why_inapplicable(
      const SolveRequest& request) const override {
    const std::size_t n = request.engine->dag().node_count();
    if (n > kExactAstarMaxNodes) {
      return "DAG has " + std::to_string(n) +
             " nodes; anytime-astar supports at most " +
             std::to_string(kExactAstarMaxNodes);
    }
    return std::nullopt;
  }

 protected:
  SolveResult do_solve(const SolveRequest& request) const override {
    ExactSearchOptions sopt =
        parse_exact_search_options(request, /*bigstate=*/true);
    // The anytime contract is "every instance gets an answer": unlike the
    // exact searches (which seed only past the fixed-width cap to keep
    // small-instance expansion counts bit-for-bit), incumbent=auto seeds at
    // every size here, so even a budget too small for any pass to complete
    // still returns the verified greedy trace with a certificate.
    if (!sopt.seed &&
        so::get(request.options, "incumbent").value_or("auto") == "auto") {
      sopt.seed = greedy_incumbent_seed(request);
    }
    AnytimeOptions aopt;
    aopt.target_epsilon = so::get_double(request.options, "epsilon", 0.0);
    if (aopt.target_epsilon < 0.0) {
      throw PreconditionError("option 'epsilon': must be nonnegative; got " +
                              std::to_string(aopt.target_epsilon));
    }
    if (auto schedule = so::get(request.options, "weights")) {
      aopt.weights = parse_weight_schedule(*schedule);
    }
    ExactSearchStats search_stats;
    auto solved =
        try_solve_anytime_astar(*request.engine, sopt, aopt, &search_stats);
    auto fill_common_stats = [&](SolveResult& result) {
      result.stats["max_states"] = std::to_string(sopt.max_states);
      result.stats["states_expanded"] =
          std::to_string(search_stats.states_expanded);
      result.stats["anytime_passes"] =
          std::to_string(search_stats.anytime_passes);
      result.stats["table_bytes"] = std::to_string(search_stats.table_bytes);
      result.stats["spilled_states"] =
          std::to_string(search_stats.spilled_states);
      result.stats["spill_bytes"] = std::to_string(search_stats.spill_bytes);
      result.stats["spill_peak_bytes"] =
          std::to_string(search_stats.spill_peak_bytes);
      result.stats["merge_passes"] =
          std::to_string(search_stats.merge_passes);
      if (search_stats.table_headroom_stop) {
        result.stats["table_headroom_stop"] = "true";
      }
    };
    if (!solved) {
      std::string detail;
      SolveStatus status = SolveStatus::BudgetExhausted;
      switch (search_stats.termination) {
        case ExactTermination::Exhausted:
          status = SolveStatus::Inapplicable;
          detail =
              "configuration graph exhausted without reaching a complete "
              "state; the instance admits no pebbling under these rules";
          break;
        case ExactTermination::StateBudget:
          detail = "state budget (" + std::to_string(sopt.max_states) +
                   ") exhausted before any pass found a completion";
          break;
        case ExactTermination::MemoryBudget:
          detail = "memory budget (" + std::to_string(sopt.max_memory_bytes) +
                   " bytes) exhausted before any pass found a completion";
          if (search_stats.table_headroom_stop) {
            detail +=
                "; stopped by the rehash transient: the grown table would "
                "fit the budget but old+new slabs during the copy do not "
                "(table_headroom_stop)";
          }
          break;
        default:
          detail = "deadline or cancellation hit before any pass found a "
                   "completion";
      }
      SolveResult result = fail(status, std::move(detail));
      if (search_stats.lower_bound_scaled >= 0) {
        // No trace to certify, but the lower bound the passes proved is
        // still true — report it for budget tuning.
        const std::int64_t eps_den = request.engine->model().epsilon().den();
        result.stats["lower_bound"] =
            Rational(search_stats.lower_bound_scaled, eps_den).str();
      }
      fill_common_stats(result);
      fill_introspection_stats(result, search_stats,
                               request.progress != nullptr);
      if (status == SolveStatus::BudgetExhausted) {
        result.stats["limiting_resource"] =
            limiting_resource_for(search_stats.termination, sopt, search_stats);
      }
      return result;
    }
    const bool optimal = solved->optimal;
    // The search enforced the engine's convention natively (and a seed trace
    // was bridged by the greedy adapter), so no bridging — and the Optimal
    // claim stands when the certificate's ε is zero.
    SolveResult result = make_result(
        request, std::move(solved->trace),
        optimal ? SolveStatus::Optimal : SolveStatus::Heuristic, {},
        /*bridge_conventions=*/false);
    // The certificate's incumbent is the scaled g the search proved bounds
    // on; the audited replay must price the trace identically.
    RBPEB_ENSURE(result.cost == solved->cost,
                 "anytime incumbent cost disagrees with the verified trace");
    if (solved->certified) {
      result.certificate =
          SolveCertificate{solved->lower_bound, result.cost, solved->epsilon};
      result.stats["lower_bound"] = solved->lower_bound.str();
      result.stats["epsilon"] = solved->epsilon.str();
      if (!optimal) {
        result.detail =
            "budget ended refinement; the trace is certified within (1+" +
            solved->epsilon.str() + ") of the optimum";
      }
    } else {
      result.stats["certified"] = "false";
      result.detail =
          "budget ended refinement before any nonzero lower bound was "
          "proved; the trace is verified but carries no guarantee";
    }
    result.stats["incumbent_source"] =
        search_stats.seed_won ? "greedy"
                              : (sopt.seed && search_stats.incumbent_scaled ==
                                                  sopt.seed->g_scaled
                                     ? "greedy"
                                     : "search");
    fill_common_stats(result);
    fill_introspection_stats(result, search_stats, request.progress != nullptr);
    // h-error is measured against the *optimal* remaining cost, so it is
    // only meaningful when the trace is proven optimal.
    if (request.progress != nullptr && optimal) {
      fill_heuristic_error_stats(result, *request.engine);
    }
    return result;
  }
};

/// Verification-guided post-optimizer over another registered solver.
class PeepholeSolver final : public Solver {
 public:
  explicit PeepholeSolver(const SolverRegistry& registry)
      : registry_(&registry) {}

  std::string_view name() const override { return "peephole"; }
  std::string_view description() const override {
    return "inner solver (opt inner=NAME, default greedy) plus "
           "verification-guided peephole cleanup";
  }

  std::vector<std::string_view> option_keys(
      const SolveRequest* request) const override {
    // Its own keys plus the inner solver's: options meant for the inner
    // solver arrive through the same set. With a request in hand the inner
    // solver is known, so only *its* keys pass — a key some third solver
    // would accept is as silently-ignored as a typo and fails the same way.
    // Without a request (a portfolio probing what could ever be routed),
    // every registered solver's keys count.
    std::vector<std::string_view> keys = {"inner", "max-passes"};
    auto add_keys_of = [&](const Solver* solver) {
      if (solver == nullptr || solver == this) return;
      for (std::string_view key : solver->option_keys()) {
        if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
          keys.push_back(key);
        }
      }
    };
    if (request != nullptr) {
      const std::string inner(
          so::get(request->options, "inner").value_or("greedy"));
      add_keys_of(registry_->find(inner));  // unknown inner: why_inapplicable
    } else {
      for (const Solver* solver : registry_->solvers()) add_keys_of(solver);
    }
    return keys;
  }

  std::optional<std::string> why_inapplicable(
      const SolveRequest& request) const override {
    const std::string inner(
        so::get(request.options, "inner").value_or("greedy"));
    if (inner == name()) return "inner solver must not be peephole itself";
    const Solver* solver = registry_->find(inner);
    if (!solver) return "unknown inner solver '" + inner + "'";
    if (auto reason = solver->why_inapplicable(request)) {
      return "inner solver '" + inner + "' inapplicable: " + *reason;
    }
    return std::nullopt;
  }

 protected:
  SolveResult do_solve(const SolveRequest& request) const override {
    const std::string inner(
        so::get(request.options, "inner").value_or("greedy"));
    const Solver& inner_solver = registry_->at(inner);
    SolveRequest inner_request = request;
    inner_request.options = inner_solver.supported_options(request.options);
    SolveResult base = inner_solver.run(inner_request);
    // A BudgetExhausted inner run may still carry a verified best-so-far
    // trace (local-search does); optimize whatever trace exists.
    if (!base.has_trace()) {
      SolveResult result = fail(base.status, "inner solver '" + inner +
                                                "' failed: " + base.detail);
      result.stats["inner"] = inner;
      return result;
    }
    PeepholeStats stats;
    const std::size_t max_passes =
        so::get_size(request.options, "max-passes", 8);
    // The inner trace is already bridged to the request's convention, and
    // the optimizer re-verifies every candidate edit under the real engine.
    Trace optimized =
        peephole_optimize(*request.engine, *base.trace, &stats, max_passes);
    SolveResult result = make_result(
        request, std::move(optimized), base.status,
        {{"inner", inner},
         {"inner_cost", base.cost.str()},
         {"removed_moves", std::to_string(stats.removed_moves)},
         {"passes", std::to_string(stats.passes)},
         {"saved", stats.saved.str()}},
        /*bridge_conventions=*/false);
    result.detail = base.detail;
    return result;
  }

 private:
  const SolverRegistry* registry_;
};

std::optional<std::string> require_groups(const SolveRequest& request) {
  if (request.groups == nullptr) {
    return "requires the instance's input-group structure "
           "(SolveRequest.groups)";
  }
  if (request.groups->group_count() == 0) return "instance has no groups";
  return std::nullopt;
}

/// Held–Karp over group visit orders under the load-count adjacency metric
/// (exact for the Theorem 2 construction, a heuristic elsewhere).
class HeldKarpSolver final : public Solver {
 public:
  std::string_view name() const override { return "held-karp"; }
  std::string_view description() const override {
    return "Held–Karp minimum visit order under the group adjacency metric "
           "(≤ 20 groups)";
  }

  std::optional<std::string> why_inapplicable(
      const SolveRequest& request) const override {
    if (auto reason = require_groups(request)) return reason;
    if (request.groups->group_count() > 20) {
      return "instance has " + std::to_string(request.groups->group_count()) +
             " groups; Held–Karp supports at most 20";
    }
    return std::nullopt;
  }

 protected:
  SolveResult do_solve(const SolveRequest& request) const override {
    const GroupDagInstance& instance = *request.groups;
    const std::size_t m = instance.group_count();
    std::vector<std::unordered_set<NodeId>> members(m);
    for (std::size_t g = 0; g < m; ++g) {
      members[g].insert(instance.groups[g].members.begin(),
                        instance.groups[g].members.end());
    }
    // Moving from group `prev` to `next` costs one transfer per member that
    // was not already resident — the adjacency metric of the Theorem 2
    // reduction, applied as a general-purpose order heuristic.
    auto transition = [&](std::size_t prev, std::size_t next) -> std::int64_t {
      if (prev == kHeldKarpStart) {
        return static_cast<std::int64_t>(members[next].size());
      }
      std::int64_t fresh = 0;
      for (NodeId v : instance.groups[next].members) {
        if (!members[prev].contains(v)) ++fresh;
      }
      return fresh;
    };
    std::vector<std::uint32_t> dep_mask(m, 0);
    auto deps = group_dependencies(instance);
    for (std::size_t h = 0; h < m; ++h) {
      for (std::size_t g : deps[h]) {
        dep_mask[h] |= (std::uint32_t{1} << g);
      }
    }
    HeldKarpResult hk = held_karp_min_order(m, transition, dep_mask);
    if (!hk.feasible) {
      return fail(SolveStatus::Inapplicable, "group dependencies are cyclic");
    }
    Engine relaxed = default_convention_view(*request.engine);
    Trace trace = pebble_visit_order(relaxed, instance, hk.order);
    return make_result(request, std::move(trace), SolveStatus::Heuristic,
                       {{"order_metric_cost", std::to_string(hk.cost)}});
  }
};

/// The paper's constructive strategy for the Figure 3 tradeoff chain.
class ChainSolver final : public Solver {
 public:
  std::string_view name() const override { return "chain"; }
  std::string_view description() const override {
    return "constructive optimal strategy for the Figure 3 tradeoff chain";
  }

  std::optional<std::string> why_inapplicable(
      const SolveRequest& request) const override {
    if (request.chain == nullptr) {
      return "requires a TradeoffChain instance (SolveRequest.chain)";
    }
    return std::nullopt;
  }

 protected:
  SolveResult do_solve(const SolveRequest& request) const override {
    Engine relaxed = default_convention_view(*request.engine);
    Trace trace = solve_chain(relaxed, *request.chain);
    return make_result(request, std::move(trace), SolveStatus::Heuristic,
                       {{"strategy", "figure-3-constructive"}});
  }
};

/// The Section 8 greedy at group granularity.
class GroupGreedySolver final : public Solver {
 public:
  std::string_view name() const override { return "group-greedy"; }
  std::string_view description() const override {
    return "group-level greedy: visit the enabled group with the most red "
           "pebbles";
  }

  std::optional<std::string> why_inapplicable(
      const SolveRequest& request) const override {
    return require_groups(request);
  }

 protected:
  SolveResult do_solve(const SolveRequest& request) const override {
    Engine relaxed = default_convention_view(*request.engine);
    GroupSolveResult solved = solve_group_greedy(relaxed, *request.groups);
    return make_result(request, std::move(solved.trace),
                       SolveStatus::Heuristic,
                       {{"groups", std::to_string(solved.order.size())}});
  }
};

/// Simulated annealing over dependency-respecting visit orders.
class LocalSearchSolver final : public Solver {
 public:
  std::string_view name() const override { return "local-search"; }
  std::string_view description() const override {
    return "simulated annealing over group visit orders (opt iterations=N, "
           "seed=N, cooling=X)";
  }

  std::vector<std::string_view> option_keys(
      const SolveRequest* request) const override {
    (void)request;
    return {"iterations", "seed", "cooling", "initial-temperature"};
  }

  std::optional<std::string> why_inapplicable(
      const SolveRequest& request) const override {
    return require_groups(request);
  }

 protected:
  SolveResult do_solve(const SolveRequest& request) const override {
    LocalSearchOptions options;
    options.iterations = so::get_size(request.options, "iterations",
                                      request.budget.max_iterations);
    options.seed = so::get_u64(request.options, "seed", options.seed);
    options.cooling =
        so::get_double(request.options, "cooling", options.cooling);
    options.initial_temperature_fraction =
        so::get_double(request.options, "initial-temperature",
                       options.initial_temperature_fraction);
    const SolveBudget budget = request.budget;
    // Record whether the budget actually cut the anneal short: re-checking
    // interrupted() after the run would mislabel a completed anneal whose
    // deadline expires microseconds after the last iteration.
    auto stopped = std::make_shared<bool>(false);
    options.should_stop = [budget, stopped] {
      if (!budget.interrupted()) return false;
      *stopped = true;
      return true;
    };

    Engine relaxed = default_convention_view(*request.engine);
    GroupSolveResult solved =
        solve_order_local_search(relaxed, *request.groups, options);
    const bool interrupted = *stopped;
    SolveResult result = make_result(
        request, std::move(solved.trace),
        interrupted ? SolveStatus::BudgetExhausted : SolveStatus::Heuristic,
        {{"iterations", std::to_string(options.iterations)},
         {"seed", std::to_string(options.seed)}});
    if (interrupted && result.has_trace()) {
      result.detail = "deadline or cancellation hit mid-anneal; returning the "
                      "best order found so far";
    }
    return result;
  }
};

/// Exhaustive search over visit orders — optimal within the order family.
class ExhaustiveOrderSolver final : public Solver {
 public:
  std::string_view name() const override { return "exhaustive-order"; }
  std::string_view description() const override {
    return "exhaustive search over group visit orders (≤ 9 groups)";
  }

  std::optional<std::string> why_inapplicable(
      const SolveRequest& request) const override {
    if (auto reason = require_groups(request)) return reason;
    if (request.groups->group_count() > 9) {
      return "instance has " + std::to_string(request.groups->group_count()) +
             " groups; exhaustive order search supports at most 9";
    }
    return std::nullopt;
  }

 protected:
  SolveResult do_solve(const SolveRequest& request) const override {
    Engine relaxed = default_convention_view(*request.engine);
    GroupSolveResult solved =
        solve_exhaustive_order(relaxed, *request.groups);
    // Optimal among visit orders, which the paper shows is the right family
    // for its constructions — but not a global optimality proof, so the
    // status stays Heuristic and only `exact` may claim Optimal.
    return make_result(request, std::move(solved.trace),
                       SolveStatus::Heuristic,
                       {{"optimal_visit_order", "true"}});
  }
};

}  // namespace

// ---- registry ------------------------------------------------------------

void SolverRegistry::add(std::unique_ptr<Solver> solver) {
  RBPEB_REQUIRE(solver != nullptr, "cannot register a null solver");
  RBPEB_REQUIRE(find(solver->name()) == nullptr,
                "solver '" + std::string(solver->name()) +
                    "' is already registered");
  solvers_.push_back(std::move(solver));
}

const Solver* SolverRegistry::find(std::string_view name) const {
  for (const auto& solver : solvers_) {
    if (solver->name() == name) return solver.get();
  }
  return nullptr;
}

const Solver& SolverRegistry::at(std::string_view name) const {
  const Solver* solver = find(name);
  if (solver == nullptr) {
    std::ostringstream os;
    os << "unknown solver '" << name << "'; registered solvers:";
    for (const auto& s : solvers_) os << ' ' << s->name();
    throw PreconditionError(os.str());
  }
  return *solver;
}

std::vector<std::string> SolverRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(solvers_.size());
  for (const auto& solver : solvers_) out.emplace_back(solver->name());
  return out;
}

std::vector<const Solver*> SolverRegistry::solvers() const {
  std::vector<const Solver*> out;
  out.reserve(solvers_.size());
  for (const auto& solver : solvers_) out.push_back(solver.get());
  return out;
}

const SolverRegistry& SolverRegistry::instance() {
  static SolverRegistry* registry = [] {
    auto* r = new SolverRegistry();
    register_builtin_solvers(*r);
    return r;
  }();
  return *registry;
}

std::string canonical_option_string(const SolverOptions& options) {
  // SolverOptions is an ordered map, so iteration order IS key order; the
  // 0x1f separator cannot appear in CLI-supplied keys or values, so the
  // serialization is injective.
  std::string out;
  for (const auto& [key, value] : options) {
    if (!out.empty()) out.push_back('\x1f');
    out += key;
    out.push_back('=');
    out += value;
  }
  return out;
}

void register_builtin_solvers(SolverRegistry& registry) {
  registry.add(std::make_unique<GreedySolver>(
      "greedy",
      "Section 8 node greedy, most-red-inputs rule (opt rule=…, eviction=…, "
      "seed=N)",
      std::nullopt));
  registry.add(std::make_unique<GreedySolver>(
      "greedy-fewest-blue",
      "Section 8 node greedy, fewest-blue-inputs rule",
      GreedyRule::FewestBlueInputs));
  registry.add(std::make_unique<GreedySolver>(
      "greedy-red-ratio", "Section 8 node greedy, red-ratio rule",
      GreedyRule::RedRatio));
  registry.add(std::make_unique<CertifiedGreedySolver>());
  registry.add(std::make_unique<TopoSolver>());
  registry.add(std::make_unique<ExactSolver>());
  registry.add(std::make_unique<ExactAstarSolver>());
  registry.add(std::make_unique<HdaAstarSolver>());
  registry.add(std::make_unique<AnytimeSolver>());
  registry.add(std::make_unique<PeepholeSolver>(registry));
  registry.add(std::make_unique<HeldKarpSolver>());
  registry.add(std::make_unique<ChainSolver>());
  registry.add(std::make_unique<GroupGreedySolver>());
  registry.add(std::make_unique<LocalSearchSolver>());
  registry.add(std::make_unique<ExhaustiveOrderSolver>());
}

}  // namespace rbpeb
