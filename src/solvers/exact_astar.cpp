#include "src/solvers/exact_astar.hpp"

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/pebble/bounds.hpp"
#include "src/solvers/bucket_queue.hpp"
#include "src/solvers/packed_state.hpp"
#include "src/support/check.hpp"

namespace rbpeb {

namespace {

template <typename Word>
std::optional<ExactResult> astar_impl(const Engine& engine,
                                      std::size_t max_states,
                                      const StopPredicate& should_stop,
                                      ExactSearchStats& stats) {
  using Packed = BasicPackedState<Word>;
  const Dag& dag = engine.dag();
  const Model& model = engine.model();
  const std::size_t n = dag.node_count();
  const std::int64_t eps_den = model.epsilon().den();

  auto give_up = [&](ExactTermination why) {
    stats.termination = why;
    return std::nullopt;
  };

  // Anything priced beyond the universal ceiling is dropped — no optimal
  // pebbling lives there — which also caps the bucket count.
  const std::int64_t ceiling = universal_search_ceiling_scaled(dag, model);

  struct Entry {
    std::int64_t g;
    Word parent;
    Move via;
  };
  std::unordered_map<Word, Entry, PackedKeyHash> table;
  struct QueueItem {
    Word key;
    std::int64_t g;  ///< g at push time; stale when it no longer matches.
  };
  BucketQueue<QueueItem> queue(static_cast<std::size_t>(ceiling) + 1);

  StateBoundEvaluator bound(engine);

  const GameState start_state = engine.initial_state();
  const Packed start = Packed::from_state(start_state);
  std::optional<std::int64_t> start_h = bound.lower_bound_scaled(start);
  if (!start_h) return give_up(ExactTermination::Exhausted);
  table.emplace(start.raw(), Entry{0, start.raw(), Move{MoveType::Load, 0}});
  queue.push(*start_h, {start.raw(), 0});

  std::size_t& expanded = stats.states_expanded;
  while (!queue.empty()) {
    auto [f, item] = queue.pop();
    (void)f;
    const auto it = table.find(item.key);
    if (it->second.g != item.g) continue;  // stale: a cheaper path superseded it
    const std::int64_t g = item.g;
    const Packed current(item.key);
    // One O(n) unpack per expansion; neighbors below are derived in O(1) —
    // packed keys and bound masks alike.
    GameState state = current.to_state(n);
    const StateBoundEvaluator::StateMasks masks =
        StateBoundEvaluator::StateMasks::from(current, n);
    if (engine.is_complete(state)) {
      std::vector<Move> reversed;
      Word cursor = item.key;
      while (cursor != start.raw()) {
        const Entry& link = table.at(cursor);
        reversed.push_back(link.via);
        cursor = link.parent;
      }
      ExactResult result;
      for (std::size_t i = reversed.size(); i-- > 0;) {
        result.trace.push(reversed[i]);
      }
      result.cost = Rational(g, eps_den);
      result.states_expanded = expanded;
      stats.termination = ExactTermination::Solved;
      return result;
    }
    if (expanded >= max_states) return give_up(ExactTermination::StateBudget);
    // Entry check included (expanded == 0): an expired deadline stops the
    // search before it burns a poll interval of expansions.
    if (should_stop && (expanded & 0x3Fu) == 0 && should_stop()) {
      return give_up(ExactTermination::Stopped);
    }
    ++expanded;

    for (std::size_t v = 0; v < n; ++v) {
      const NodeId node = static_cast<NodeId>(v);
      for (MoveType type : {MoveType::Load, MoveType::Store, MoveType::Compute,
                            MoveType::Delete}) {
        const Move move{type, node};
        if (!engine.is_legal(state, move)) continue;
        const Packed next = current.apply(move);
        const std::int64_t next_g = g + scaled_move_cost(model, type);
        auto [entry, inserted] = table.try_emplace(
            next.raw(), Entry{next_g, item.key, move});
        if (!inserted) {
          if (entry->second.g <= next_g) continue;
          entry->second = {next_g, item.key, move};
        }
        StateBoundEvaluator::StateMasks next_masks = masks;
        next_masks.apply(move);
        std::optional<std::int64_t> h = bound.lower_bound_scaled(next_masks);
        if (!h) continue;          // provably dead: prune
        const std::int64_t next_f = next_g + *h;
        if (next_f > ceiling) continue;  // no optimum lives beyond the bound
        queue.push(next_f, {next.raw(), next_g});
      }
    }
  }
  return give_up(ExactTermination::Exhausted);
}

}  // namespace

std::optional<ExactResult> try_solve_exact_astar(
    const Engine& engine, std::size_t max_states,
    const StopPredicate& should_stop, ExactSearchStats* stats) {
  const std::size_t n = engine.dag().node_count();
  RBPEB_REQUIRE(n <= kExactAstarMaxNodes,
                "solve_exact_astar supports at most 42 nodes");
  ExactSearchStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = {};  // a reused struct must not accumulate across calls
  if (n <= PackedState64::max_nodes()) {
    return astar_impl<std::uint64_t>(engine, max_states, should_stop, *stats);
  }
  return astar_impl<unsigned __int128>(engine, max_states, should_stop,
                                       *stats);
}

ExactResult solve_exact_astar(const Engine& engine, std::size_t max_states) {
  ExactSearchStats stats;
  auto result = try_solve_exact_astar(engine, max_states, {}, &stats);
  if (!result) {
    throw InvariantError(
        stats.termination == ExactTermination::Exhausted
            ? "solve_exact_astar exhausted the reachable configuration "
              "graph without a complete state"
            : "solve_exact_astar exceeded its state budget");
  }
  return std::move(*result);
}

}  // namespace rbpeb
