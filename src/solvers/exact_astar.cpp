#include "src/solvers/exact_astar.hpp"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/pebble/bounds.hpp"
#include "src/solvers/bigstate/ddd.hpp"
#include "src/solvers/bigstate/pdb.hpp"
#include "src/solvers/bigstate/spill.hpp"
#include "src/solvers/bigstate/var_state.hpp"
#include "src/solvers/bucket_queue.hpp"
#include "src/solvers/packed_state.hpp"
#include "src/support/check.hpp"

namespace rbpeb {

static_assert(kExactAstarMaxNodes == StateBoundEvaluator::kVecMaskMaxNodes,
              "the search cap is the runtime-width bound cap");
static_assert(kExactAstarFixedMaxNodes == PackedState128::max_nodes(),
              "the fixed-width cap is the __uint128_t packing limit");

namespace {

template <typename Packed, typename Masks>
std::optional<ExactResult> astar_impl(const Engine& engine,
                                      const ExactSearchOptions& opt,
                                      ExactSearchStats& stats) {
  using Key = typename Packed::Key;
  const Dag& dag = engine.dag();
  const Model& model = engine.model();
  const std::size_t n = dag.node_count();
  const std::int64_t eps_den = model.epsilon().den();
  const StopPredicate& should_stop = opt.should_stop;
  const obs::TraceSpan search_span("astar.search", "nodes", n);
  obs::Counter& expanded_counter =
      obs::MetricsRegistry::instance().counter("search.expanded");

  // Anything priced beyond the universal ceiling is dropped — no optimal
  // pebbling lives there — which also caps the bucket count. A seeded
  // incumbent tightens the same prune: nothing pricing at or above a known
  // completion's cost can beat it.
  const std::int64_t ceiling = universal_search_ceiling_scaled(dag, model);
  const std::int64_t incumbent =
      opt.seed ? std::min(ceiling + 1, opt.seed->g_scaled) : ceiling + 1;

  // The spill directory outlives the table reading/writing under it and is
  // removed wholesale on every exit path, cancellation included.
  std::optional<bigstate::SpillDirectory> spill_dir =
      make_spill_directory(opt);
  SpillingClosedTable<Packed> table(n, opt.max_memory_bytes,
                                    spill_dir ? spill_dir->path() : "",
                                    opt.max_disk_bytes);
  using Table = SpillingClosedTable<Packed>;
  struct QueueItem {
    Key key;
    std::int64_t g;  ///< g at push time; stale when it no longer matches.
  };
  BucketQueue<QueueItem> queue(static_cast<std::size_t>(ceiling) + 1);

  std::optional<PatternDatabase> pdb;
  if (bigstate_pdb_enabled(opt, n)) {
    // Hashed PDB tables (patterns wider than 8) take at most half of the
    // memory budget, leaving the rest to the closed table; their builds
    // truncate admissibly at the cap instead of overshooting.
    pdb.emplace(engine, opt.pdb_pattern_size, should_stop, opt.pdb_partition,
                opt.max_memory_bytes != 0 ? opt.max_memory_bytes / 2 : 0);
    if (pdb->build_aborted()) {
      stats.termination = ExactTermination::Stopped;
      return std::nullopt;
    }
  }
  StateBoundEvaluator bound(engine);
  if (pdb) bound.attach_pdb(&*pdb);
  // PDB tables and the bucket arrays live inside the same memory budget as
  // the closed table; the queue share is refreshed at the poll checkpoints.
  const std::size_t pdb_bytes = pdb ? pdb->table_bytes() : 0;
  table.set_overhead_bytes(pdb_bytes + queue.bytes());

  auto fill_spill_stats = [&] {
    stats.table_bytes = table.bytes();
    stats.spilled_states = table.spilled_states();
    stats.spill_bytes = table.spill_bytes();
    stats.spill_peak_bytes = table.spill_peak_bytes();
    stats.merge_passes = table.merge_passes();
    stats.spill_io_error = table.spill_io_error();
    stats.table_headroom_stop = table.headroom_stop();
  };
  auto give_up = [&](ExactTermination why) {
    stats.termination = why;
    fill_spill_stats();
    return std::nullopt;
  };
  // Nothing prices below the seed, so the seed is optimal — return it.
  auto seed_wins = [&]() {
    stats.termination = ExactTermination::Solved;
    fill_spill_stats();
    stats.seed_won = true;
    ExactResult result;
    result.trace = opt.seed->trace;
    result.cost = Rational(opt.seed->g_scaled, eps_den);
    result.states_expanded = stats.states_expanded;
    return result;
  };

  const GameState start_state = engine.initial_state();
  const Packed start = Packed::from_state(start_state);
  std::optional<std::int64_t> start_h = bound.lower_bound_scaled(start);
  if (!start_h) {
    // A verified seed proves the instance completable, so a dead start can
    // only mean no completion prices below the seed.
    if (opt.seed) return seed_wins();
    return give_up(ExactTermination::Exhausted);
  }
  if (*start_h >= incumbent) {
    if (opt.seed) return seed_wins();
    return give_up(ExactTermination::Exhausted);
  }
  if (table.relax(start.key(), 0, start.key(), Move{MoveType::Load, 0}) ==
      Table::Relax::OutOfMemory) {
    return give_up(ExactTermination::MemoryBudget);
  }
  queue.push(*start_h, {start.key(), 0});

  std::size_t& expanded = stats.states_expanded;
  while (!queue.empty()) {
    auto [f, item] = queue.pop();
    // Expansion gate: stale-g check plus the delayed duplicate check
    // against any spill runs — each (key, g) expands at most once.
    const auto pop = table.begin_expansion(item.key, item.g);
    if (pop == Table::Pop::OutOfMemory) {
      return give_up(ExactTermination::MemoryBudget);
    }
    if (pop == Table::Pop::Skip) {
      ++stats.dup_skipped;
      continue;
    }
    const std::int64_t g = item.g;
    const Packed current = Packed::from_key(item.key, n);
    // One O(n) unpack per expansion; neighbors below are derived in O(1) —
    // packed keys and bound masks alike.
    GameState state = current.to_state(n);
    const Masks masks = Masks::from(current, n);
    if (engine.is_complete(state)) {
      // Settle unverified entries first: an evicted-then-regenerated
      // ancestor's RAM entry could otherwise splice a worse tree edge
      // into the optimal trace.
      table.settle();
      std::vector<Move> reversed;
      Key cursor = item.key;
      while (!(cursor == start.key())) {
        const auto& link = table.at(cursor);
        reversed.push_back(link.via);
        cursor = link.parent;
      }
      ExactResult result;
      for (std::size_t i = reversed.size(); i-- > 0;) {
        result.trace.push(reversed[i]);
      }
      result.cost = Rational(g, eps_den);
      result.states_expanded = expanded;
      stats.termination = ExactTermination::Solved;
      fill_spill_stats();
      return result;
    }
    if (expanded >= opt.max_states) {
      return give_up(ExactTermination::StateBudget);
    }
    // Entry check included (expanded == 0): an expired deadline stops the
    // search before it burns a poll interval of expansions. The same
    // checkpoint refreshes the queue's share of the memory budget.
    if ((expanded & 0x3Fu) == 0) {
      table.set_overhead_bytes(pdb_bytes + queue.bytes());
      if (should_stop && should_stop()) {
        return give_up(ExactTermination::Stopped);
      }
      if (expanded != 0) {
        expanded_counter.add(64);
        // Trace instants every 16 checkpoints: enough to see frontier
        // progress in the timeline without swamping the ring on multi-
        // million-state searches.
        if ((expanded & 0x3FFu) == 0 && obs::trace_enabled()) {
          obs::trace_instant("astar.checkpoint", "expanded", expanded);
        }
        // Progress sampling rides the same 1024-expansion cadence; the
        // wall-clock rate limit (due()) keeps the O(open-list) summary off
        // fast solves' critical path.
        if ((expanded & 0x3FFu) == 0 && opt.progress != nullptr &&
            opt.progress->due()) {
          obs::ProgressObservation ob;
          ob.expanded = expanded;
          ob.frontier_f_scaled = f;  // popped min-f: a certified lower bound
          ob.incumbent_scaled = opt.seed ? incumbent : -1;
          ob.open_states = queue.size();
          queue.for_each([&](std::int64_t fq, const QueueItem& qi) {
            if (ob.open_f_min < 0 || fq < ob.open_f_min) ob.open_f_min = fq;
            ob.open_f_max = std::max(ob.open_f_max, fq);
            if (ob.open_g_min < 0 || qi.g < ob.open_g_min) ob.open_g_min = qi.g;
            ob.open_g_max = std::max(ob.open_g_max, qi.g);
          });
          ob.dup_skipped = stats.dup_skipped;
          ob.dead_prunes = stats.dead_prunes;
          ob.attr_counting = stats.attr_counting;
          ob.attr_pdb = stats.attr_pdb;
          ob.spilled_states = table.spilled_states();
          ob.spill_bytes = table.spill_bytes();
          ob.merge_passes = table.merge_passes();
          opt.progress->observe(ob);
        }
      }
    }
    if (opt.progress != nullptr) {
      // Bound-source attribution: one extra (pure, deterministic) bound
      // evaluation per expansion, done only when someone is watching so
      // un-instrumented searches stay byte-identical. An expanded state is
      // never dead — it priced under the incumbent when generated.
      (void)bound.lower_bound_scaled(masks);
      if (bound.last_source() == StateBoundEvaluator::BoundSource::Pdb) {
        ++stats.attr_pdb;
      } else {
        ++stats.attr_counting;
      }
    }
    ++expanded;

    for (std::size_t v = 0; v < n; ++v) {
      const NodeId node = static_cast<NodeId>(v);
      for (MoveType type : {MoveType::Load, MoveType::Store, MoveType::Compute,
                            MoveType::Delete}) {
        const Move move{type, node};
        if (!engine.is_legal(state, move)) continue;
        const Packed next = current.apply(move);
        const std::int64_t next_g = g + scaled_move_cost(model, type);
        const auto relaxed = table.relax(next.key(), next_g, item.key, move);
        if (relaxed == Table::Relax::OutOfMemory) {
          return give_up(ExactTermination::MemoryBudget);
        }
        if (relaxed == Table::Relax::Stale) continue;
        Masks next_masks = masks;
        next_masks.apply(move);
        std::optional<std::int64_t> h = bound.lower_bound_scaled(next_masks);
        if (!h) {
          ++stats.dead_prunes;  // provably dead: prune
          continue;
        }
        const std::int64_t next_f = next_g + *h;
        if (next_f >= incumbent) continue;  // no winner lives beyond it
        queue.push(next_f, {next.key(), next_g});
      }
    }
  }
  if (opt.seed) return seed_wins();
  return give_up(ExactTermination::Exhausted);
}

}  // namespace

std::optional<ExactResult> try_solve_exact_astar(
    const Engine& engine, const ExactSearchOptions& options,
    ExactSearchStats* stats) {
  const std::size_t n = engine.dag().node_count();
  RBPEB_REQUIRE(n <= kExactAstarMaxNodes,
                "solve_exact_astar supports at most 1024 nodes");
  ExactSearchStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = {};  // a reused struct must not accumulate across calls
  const bool force_wide = options.force_var_state || options.force_mask_vec;
  using Masks1 = StateBoundEvaluator::StateMasks;
  if (options.force_mask_vec || n > StateBoundEvaluator::kWideMaskMaxNodes) {
    // Runtime-width masks: the only path past 128 nodes, and the forced
    // differential-testing path below it.
    return astar_impl<VarPackedState, StateBoundEvaluator::MaskVec>(
        engine, options, *stats);
  }
  if (!force_wide && n <= PackedState64::max_nodes()) {
    return astar_impl<PackedState64, Masks1>(engine, options, *stats);
  }
  if (!force_wide && n <= PackedState128::max_nodes()) {
    return astar_impl<PackedState128, Masks1>(engine, options, *stats);
  }
  // Variable-width states; wide masks cover every n ≤ 128 and price
  // identically to the one-word path, so a forced run matches bit-for-bit.
  return astar_impl<VarPackedState, StateBoundEvaluator::WideStateMasks>(
      engine, options, *stats);
}

std::optional<ExactResult> try_solve_exact_astar(
    const Engine& engine, std::size_t max_states,
    const StopPredicate& should_stop, ExactSearchStats* stats) {
  ExactSearchOptions options;
  options.max_states = max_states;
  options.should_stop = should_stop;
  return try_solve_exact_astar(engine, options, stats);
}

ExactResult solve_exact_astar(const Engine& engine, std::size_t max_states) {
  ExactSearchStats stats;
  auto result = try_solve_exact_astar(engine, max_states, {}, &stats);
  if (!result) {
    switch (stats.termination) {
      case ExactTermination::Exhausted:
        throw InvariantError(
            "solve_exact_astar exhausted the reachable configuration graph "
            "without a complete state");
      case ExactTermination::MemoryBudget:
        throw InvariantError(
            "solve_exact_astar exceeded its memory budget");
      default:
        throw InvariantError("solve_exact_astar exceeded its state budget");
    }
  }
  return std::move(*result);
}

}  // namespace rbpeb
