// ASCII table rendering for benchmark and example output.
//
// Every bench binary reproduces a table or figure from the paper; this
// printer keeps their output uniform and diffable (fixed column widths,
// right-aligned numerics, optional title and footnotes).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rbpeb {

/// Column alignment inside a rendered table.
enum class Align { Left, Right };

/// An incrementally-built ASCII table.
///
/// Usage:
///   Table t("Figure 4: tradeoff");
///   t.set_header({"R", "opt(R)"});
///   t.add_row({"6", "40"});
///   std::cout << t;
class Table {
 public:
  Table() = default;
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Set the header row; fixes the column count for subsequent rows.
  void set_header(std::vector<std::string> header);

  /// Append a data row; must match the header width if one was set.
  void add_row(std::vector<std::string> row);

  /// Append a horizontal separator at the current position.
  void add_separator();

  /// Append a footnote rendered under the table.
  void add_note(std::string note);

  /// Override the default alignment (Right for cells that parse as numbers).
  void set_align(std::size_t column, Align align);

  /// Render into a string.
  std::string str() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  // A row with the sentinel value {"\x01"} renders as a separator line.
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> notes_;
  std::vector<std::pair<std::size_t, Align>> align_overrides_;
};

std::ostream& operator<<(std::ostream& os, const Table& table);

/// Format a double with the given precision, trimming trailing zeros.
std::string format_double(double value, int precision = 3);

}  // namespace rbpeb
