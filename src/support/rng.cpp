#include "src/support/rng.hpp"

#include <algorithm>

#include "src/support/check.hpp"

namespace rbpeb {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro's all-zero state is absorbing; splitmix64 of any seed avoids it,
  // but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  RBPEB_REQUIRE(bound > 0, "next_below requires a positive bound");
  // Lemire's multiply-shift with rejection for exact uniformity.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  RBPEB_REQUIRE(lo <= hi, "next_in requires lo <= hi");
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  std::uint64_t r = (span == 0) ? next_u64() : next_below(span);
  return lo + static_cast<std::int64_t>(r);
}

double Rng::next_double() {
  // 53 top bits → uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  RBPEB_REQUIRE(k <= n, "cannot sample more elements than the population");
  // Floyd's algorithm: O(k) expected insertions, exact uniformity.
  std::vector<std::size_t> result;
  result.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    std::size_t t = static_cast<std::size_t>(next_below(j + 1));
    if (std::find(result.begin(), result.end(), t) == result.end()) {
      result.push_back(t);
    } else {
      result.push_back(j);
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace rbpeb
