#include "src/support/table.hpp"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>

#include "src/support/check.hpp"

namespace rbpeb {

namespace {

const std::string kSeparatorSentinel = "\x01";

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  bool digit_seen = false;
  for (; i < s.size(); ++i) {
    char c = s[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != 'e' && c != 'E' && c != '+' && c != '-' &&
               c != '%' && c != 'x') {
      return false;
    }
  }
  return digit_seen;
}

}  // namespace

void Table::set_header(std::vector<std::string> header) {
  RBPEB_REQUIRE(rows_.empty(), "set the header before adding rows");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  if (!header_.empty()) {
    RBPEB_REQUIRE(row.size() == header_.size(),
                  "row width must match the header");
  }
  rows_.push_back(std::move(row));
}

void Table::add_separator() { rows_.push_back({kSeparatorSentinel}); }

void Table::add_note(std::string note) { notes_.push_back(std::move(note)); }

void Table::set_align(std::size_t column, Align align) {
  align_overrides_.emplace_back(column, align);
}

std::string Table::str() const {
  // Column widths over header + all non-separator rows.
  std::size_t columns = header_.size();
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSeparatorSentinel) continue;
    columns = std::max(columns, row.size());
  }
  std::vector<std::size_t> width(columns, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSeparatorSentinel) continue;
    widen(row);
  }

  // Alignment: numeric-looking columns default to Right. A column is numeric
  // if every non-empty cell in it looks numeric.
  std::vector<Align> align(columns, Align::Left);
  for (std::size_t c = 0; c < columns; ++c) {
    bool all_numeric = true;
    bool any = false;
    for (const auto& row : rows_) {
      if (row.size() == 1 && row[0] == kSeparatorSentinel) continue;
      if (c >= row.size() || row[c].empty()) continue;
      any = true;
      if (!looks_numeric(row[c])) {
        all_numeric = false;
        break;
      }
    }
    if (any && all_numeric) align[c] = Align::Right;
  }
  for (const auto& [c, a] : align_overrides_) {
    if (c < columns) align[c] = a;
  }

  std::ostringstream os;
  auto hline = [&] {
    os << '+';
    for (std::size_t c = 0; c < columns; ++c) {
      os << std::string(width[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < columns; ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      std::size_t pad = width[c] - cell.size();
      os << ' ';
      if (align[c] == Align::Right) os << std::string(pad, ' ');
      os << cell;
      if (align[c] == Align::Left) os << std::string(pad, ' ');
      os << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  hline();
  if (!header_.empty()) {
    emit_row(header_);
    hline();
  }
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSeparatorSentinel) {
      hline();
    } else {
      emit_row(row);
    }
  }
  hline();
  for (const auto& note : notes_) os << "  " << note << '\n';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  return os << table.str();
}

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace rbpeb
