#include "src/support/csv.hpp"

#include <fstream>
#include <sstream>

#include "src/support/check.hpp"

namespace rbpeb {

namespace {

std::string escape(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  RBPEB_REQUIRE(!header_.empty(), "CSV header must be non-empty");
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  RBPEB_REQUIRE(row.size() == header_.size(),
                "CSV row width must match the header");
  rows_.push_back(row);
}

std::string CsvWriter::str() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << escape(row[i]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

bool CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << str();
  return static_cast<bool>(out);
}

}  // namespace rbpeb
