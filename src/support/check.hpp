// Lightweight runtime checking used across rbpeb.
//
// The library is a research artifact whose outputs back claims about a
// paper's theorems; silent corruption is far worse than a crash, so
// invariant checks stay enabled in all build types.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rbpeb {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when an internal invariant fails (a bug in rbpeb itself).
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}

}  // namespace detail

}  // namespace rbpeb

/// Validate a caller-facing precondition; always on.
#define RBPEB_REQUIRE(expr, msg)                                              \
  do {                                                                        \
    if (!(expr))                                                              \
      ::rbpeb::detail::throw_precondition(#expr, __FILE__, __LINE__, (msg));  \
  } while (0)

/// Validate an internal invariant; always on.
#define RBPEB_ENSURE(expr, msg)                                               \
  do {                                                                        \
    if (!(expr))                                                              \
      ::rbpeb::detail::throw_invariant(#expr, __FILE__, __LINE__, (msg));     \
  } while (0)
