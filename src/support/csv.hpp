// Minimal CSV emission for machine-readable benchmark series.
//
// Bench binaries print human-readable tables; alongside them they can dump
// CSV files so figures can be re-plotted externally.
#pragma once

#include <string>
#include <vector>

namespace rbpeb {

/// Accumulates rows and writes RFC-4180-style CSV (quotes fields containing
/// commas, quotes or newlines).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  /// Append a row; width must match the header.
  void add_row(const std::vector<std::string>& row);

  /// Serialized CSV contents (header + rows).
  std::string str() const;

  /// Write to a file; returns false (without throwing) on I/O failure so
  /// benches degrade gracefully in read-only environments.
  bool write_file(const std::string& path) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rbpeb
