// Deterministic, seedable random number generation.
//
// Experiments must be reproducible bit-for-bit across runs and platforms, so
// rbpeb does not use std::mt19937 / std::uniform_int_distribution (whose
// outputs are implementation-defined for distributions); instead we ship a
// small xoshiro256** generator with explicit, portable sampling routines.
#pragma once

#include <cstdint>
#include <vector>

namespace rbpeb {

/// xoshiro256** by Blackman & Vigna (public domain reference constants),
/// seeded through splitmix64 so that consecutive seeds give uncorrelated
/// streams.
class Rng {
 public:
  /// Seed the generator. Distinct seeds give independent-looking streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) using Lemire rejection; bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bool(double p);

  /// Fisher–Yates shuffle of the given vector, in place.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A random k-subset of {0, ..., n-1}, in increasing order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

 private:
  std::uint64_t s_[4];
};

}  // namespace rbpeb
