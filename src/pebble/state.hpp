// Mutable pebbling configuration: which pebble (if any) sits on each node,
// and which nodes have ever been computed (needed for the oneshot rule).
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/dag.hpp"

namespace rbpeb {

/// Pebble occupancy of one node.
enum class PebbleColor : std::uint8_t { None = 0, Red = 1, Blue = 2 };

/// The dynamic state of a pebbling in progress. Plain data; legality of
/// transitions is the Engine's job.
class GameState {
 public:
  GameState() = default;

  /// Empty configuration (no pebbles, nothing computed) for an n-node DAG.
  explicit GameState(std::size_t node_count);

  std::size_t node_count() const { return color_.size(); }

  PebbleColor color(NodeId v) const { return color_[v]; }
  bool is_red(NodeId v) const { return color_[v] == PebbleColor::Red; }
  bool is_blue(NodeId v) const { return color_[v] == PebbleColor::Blue; }
  bool is_empty(NodeId v) const { return color_[v] == PebbleColor::None; }

  /// True if Step 3 was ever applied to `v` (sticky; survives deletion).
  bool was_computed(NodeId v) const { return computed_[v]; }

  /// Number of red pebbles currently on the DAG.
  std::size_t red_count() const { return red_count_; }

  /// Number of blue pebbles currently on the DAG.
  std::size_t blue_count() const { return blue_count_; }

  /// All nodes currently holding a red pebble, ascending. O(n).
  std::vector<NodeId> red_nodes() const;

  // --- raw mutation (Engine uses these; they maintain the counters) ---

  void set_color(NodeId v, PebbleColor c);
  void mark_computed(NodeId v) { computed_[v] = true; }

  bool operator==(const GameState& o) const = default;

 private:
  std::vector<PebbleColor> color_;
  std::vector<bool> computed_;
  std::size_t red_count_ = 0;
  std::size_t blue_count_ = 0;
};

}  // namespace rbpeb
