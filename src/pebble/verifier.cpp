#include "src/pebble/verifier.hpp"

#include <algorithm>
#include <sstream>

#include "src/support/check.hpp"

namespace rbpeb {

VerifyResult verify(const Engine& engine, const Trace& trace) {
  VerifyResult result;
  GameState state = engine.initial_state();
  result.legal = true;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Move& move = trace[i];
    if (auto reason = engine.why_illegal(state, move)) {
      result.legal = false;
      result.failed_at = i;
      std::ostringstream os;
      os << "move " << i << " " << to_string(move) << ": " << *reason;
      result.error = os.str();
      break;
    }
    engine.apply(state, move, result.cost);
    result.max_red = std::max(result.max_red, state.red_count());
    ++result.length;
  }
  result.complete = result.legal && engine.is_complete(state);
  result.total = engine.model().total(result.cost);
  result.final_state = std::move(state);
  return result;
}

VerifyResult verify_or_throw(const Engine& engine, const Trace& trace) {
  VerifyResult result = verify(engine, trace);
  if (!result.legal) {
    throw InvariantError("trace replay failed: " + result.error);
  }
  if (!result.complete) {
    throw InvariantError(
        "trace is legal but incomplete: some sink holds no pebble");
  }
  return result;
}

}  // namespace rbpeb
