// The rules of the game: legality checking and state transition for every
// model variant, with exact cost accounting.
#pragma once

#include <optional>
#include <string>

#include "src/graph/dag.hpp"
#include "src/pebble/cost.hpp"
#include "src/pebble/model.hpp"
#include "src/pebble/move.hpp"
#include "src/pebble/state.hpp"

namespace rbpeb {

/// Alternative initial/final-state definitions from the literature
/// (paper, Section 3 and Appendix C). The defaults are the paper's own
/// convention: sources are computable for free, sinks may end red or blue.
struct PebblingConvention {
  /// Sources begin with a blue pebble and are NOT computable (the Hong–Kung
  /// convention); they enter fast memory only via Step 1.
  bool sources_start_blue = false;
  /// Completion requires a blue pebble on every sink (instead of any color).
  bool sinks_end_blue = false;
};

/// An instance of the pebbling problem: a DAG, a model, and the red-pebble
/// budget R. The Engine answers "is this move legal here?" and applies moves.
///
/// Rule summary (paper, Sections 1 and 4):
///  * Load:    node holds blue; fewer than R red pebbles on the DAG.
///  * Store:   node holds red.
///  * Compute: all predecessors hold red; the node itself does not hold red
///             (re-placing red on a red node is a no-op and is rejected to
///             keep search spaces clean); capacity R respected; in oneshot
///             the node must never have been computed before. Computing a
///             blue-pebbled node replaces blue by red (recomputation as in
///             nodel/base/compcost).
///  * Delete:  node holds a pebble of either color; forbidden in nodel.
///
/// A pebbling is complete when every sink holds a pebble of either color.
class Engine {
 public:
  /// `red_limit` is R. Requires R >= Δ+1 (paper, Section 3: otherwise no
  /// pebbling exists), unless the DAG has no edges in which case R >= 1.
  /// The Engine keeps a reference to `dag`, which must outlive it; binding a
  /// temporary is rejected at compile time.
  Engine(const Dag& dag, Model model, std::size_t red_limit,
         PebblingConvention convention = {});
  Engine(Dag&&, Model, std::size_t, PebblingConvention = {}) = delete;

  const Dag& dag() const { return *dag_; }
  const Model& model() const { return model_; }
  std::size_t red_limit() const { return red_limit_; }
  const PebblingConvention& convention() const { return convention_; }

  /// Starting configuration: empty, except that under sources_start_blue
  /// every source holds a blue pebble.
  GameState initial_state() const;

  /// nullopt if `move` is legal in `state`; otherwise a human-readable
  /// reason. Never mutates.
  std::optional<std::string> why_illegal(const GameState& state,
                                         const Move& move) const;

  bool is_legal(const GameState& state, const Move& move) const {
    return !why_illegal(state, move).has_value();
  }

  /// Apply a legal move, updating `state` and accumulating operation counts
  /// into `cost`. Throws PreconditionError if the move is illegal.
  void apply(GameState& state, const Move& move, Cost& cost) const;

  /// True when every sink of the DAG holds a pebble (red or blue).
  bool is_complete(const GameState& state) const;

 private:
  const Dag* dag_;
  Model model_;
  std::size_t red_limit_;
  PebblingConvention convention_;
};

}  // namespace rbpeb
