#include "src/pebble/trace.hpp"

#include <sstream>

namespace rbpeb {

std::string to_string(const Move& move) {
  std::ostringstream os;
  switch (move.type) {
    case MoveType::Load: os << "load"; break;
    case MoveType::Store: os << "store"; break;
    case MoveType::Compute: os << "compute"; break;
    case MoveType::Delete: os << "delete"; break;
  }
  os << '(' << move.node << ')';
  return os.str();
}

void Trace::append(const Trace& other) {
  moves_.insert(moves_.end(), other.moves_.begin(), other.moves_.end());
}

std::string Trace::str() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < moves_.size(); ++i) {
    os << i << ": " << to_string(moves_[i]) << '\n';
  }
  return os.str();
}

}  // namespace rbpeb
