#include "src/pebble/bounds.hpp"

#include <limits>

#include "src/support/check.hpp"

namespace rbpeb {

std::size_t min_red_pebbles(const Dag& dag) {
  if (dag.node_count() == 0) return 0;
  return dag.max_indegree() + 1;
}

Rational universal_cost_upper_bound(const Dag& dag, const Model& model) {
  const std::int64_t n = static_cast<std::int64_t>(dag.node_count());
  const std::int64_t delta = static_cast<std::int64_t>(dag.max_indegree());
  // (2Δ+1)·n transfers; compcost adds at most ε per node computation in the
  // greedy strategy of Section 3 (each node computed exactly once there).
  Rational bound((2 * delta + 1) * n);
  if (model.kind() == ModelKind::Compcost) {
    bound += model.epsilon() * Rational(n);
  }
  return bound;
}

Rational cost_lower_bound(const Dag& dag, const Model& model,
                          std::size_t red_limit) {
  const std::int64_t n = static_cast<std::int64_t>(dag.node_count());
  switch (model.kind()) {
    case ModelKind::Base:
    case ModelKind::Oneshot:
      return Rational(0);
    case ModelKind::Nodel: {
      // Every node eventually holds a pebble which cannot be deleted; at most
      // R of them can stay red, so at least n - R Step-2 operations happen.
      std::int64_t r = static_cast<std::int64_t>(red_limit);
      return Rational(n > r ? n - r : 0);
    }
    case ModelKind::Compcost: {
      // Each non-source node must be computed at least once, at ε apiece.
      std::int64_t non_sources =
          n - static_cast<std::int64_t>(dag.sources().size());
      return model.epsilon() * Rational(non_sources);
    }
  }
  RBPEB_ENSURE(false, "unreachable");
  return Rational(0);
}

std::optional<Rational> state_cost_lower_bound(const Engine& engine,
                                               const GameState& state) {
  StateBoundEvaluator evaluator(engine);
  std::optional<std::int64_t> scaled = evaluator.lower_bound_scaled(state);
  if (!scaled) return std::nullopt;
  return Rational(*scaled, engine.model().epsilon().den());
}

std::size_t optimal_length_upper_bound(const Dag& dag, const Model& model) {
  const std::size_t n = dag.node_count();
  const std::size_t delta = dag.max_indegree();
  const std::size_t transfers = (2 * delta + 1) * n;
  switch (model.kind()) {
    case ModelKind::Base:
      // The base model admits optimal pebblings of superpolynomial length
      // (paper, Section 4); no finite bound is claimed.
      return std::numeric_limits<std::size_t>::max();
    case ModelKind::Oneshot:
      // ≤ n computes; a deleted node can never be re-pebbled, so ≤ n deletes.
      return transfers + 2 * n;
    case ModelKind::Nodel:
      // ≤ n first computes; every recomputation consumes a blue pebble
      // created by a Step 2, of which there are at most `transfers`.
      return 2 * transfers + n;
    case ModelKind::Compcost: {
      // Lemma 1: p ≤ (2/ε)·(2Δ+1+ε)·n non-transfer steps.
      Rational eps = model.epsilon();
      Rational cost_cap = universal_cost_upper_bound(dag, model);
      // p ≤ 2 · cost_cap / ε  ⇒  p ≤ ceil(2 · num · eps_den / (den · eps_num))
      __int128 num = static_cast<__int128>(2) * cost_cap.num() * eps.den();
      __int128 den = static_cast<__int128>(cost_cap.den()) * eps.num();
      std::size_t p = static_cast<std::size_t>((num + den - 1) / den);
      return transfers + p;
    }
  }
  RBPEB_ENSURE(false, "unreachable");
  return 0;
}

}  // namespace rbpeb
