#include "src/pebble/bounds.hpp"

#include <bit>
#include <limits>

#include "src/graph/dag_algorithms.hpp"
#include "src/solvers/bigstate/pdb.hpp"
#include "src/support/check.hpp"

namespace rbpeb {

std::size_t min_red_pebbles(const Dag& dag) {
  if (dag.node_count() == 0) return 0;
  return dag.max_indegree() + 1;
}

Rational universal_cost_upper_bound(const Dag& dag, const Model& model) {
  const std::int64_t n = static_cast<std::int64_t>(dag.node_count());
  const std::int64_t delta = static_cast<std::int64_t>(dag.max_indegree());
  // (2Δ+1)·n transfers; compcost adds at most ε per node computation in the
  // greedy strategy of Section 3 (each node computed exactly once there).
  Rational bound((2 * delta + 1) * n);
  if (model.kind() == ModelKind::Compcost) {
    bound += model.epsilon() * Rational(n);
  }
  return bound;
}

Rational cost_lower_bound(const Dag& dag, const Model& model,
                          std::size_t red_limit) {
  const std::int64_t n = static_cast<std::int64_t>(dag.node_count());
  switch (model.kind()) {
    case ModelKind::Base:
    case ModelKind::Oneshot:
      return Rational(0);
    case ModelKind::Nodel: {
      // Every node eventually holds a pebble which cannot be deleted; at most
      // R of them can stay red, so at least n - R Step-2 operations happen.
      std::int64_t r = static_cast<std::int64_t>(red_limit);
      return Rational(n > r ? n - r : 0);
    }
    case ModelKind::Compcost: {
      // Each non-source node must be computed at least once, at ε apiece.
      std::int64_t non_sources =
          n - static_cast<std::int64_t>(dag.sources().size());
      return model.epsilon() * Rational(non_sources);
    }
  }
  RBPEB_ENSURE(false, "unreachable");
  return Rational(0);
}

std::int64_t universal_search_ceiling_scaled(const Dag& dag,
                                             const Model& model) {
  const auto n = static_cast<std::int64_t>(dag.node_count());
  const auto delta = static_cast<std::int64_t>(dag.max_indegree());
  const std::int64_t eps_num = model.epsilon().num();
  const std::int64_t eps_den = model.epsilon().den();
  return (2 * delta + 1) * n * eps_den + n * eps_num + 2 * n * eps_den;
}

StateBoundEvaluator::StateBoundEvaluator(const Engine& engine)
    : engine_(&engine),
      eps_num_(engine.model().epsilon().num()),
      eps_den_(engine.model().epsilon().den()) {
  const Dag& dag = engine.dag();
  const std::size_t n = dag.node_count();
  if (n <= kMaskMaxNodes) {
    pred_mask_.assign(n, 0);
    cone_mask_.assign(n, 0);
    for (std::size_t v = 0; v < n; ++v) {
      const NodeId node = static_cast<NodeId>(v);
      for (NodeId p : dag.predecessors(node)) {
        pred_mask_[v] |= std::uint64_t{1} << p;
      }
      if (dag.is_sink(node)) sinks_mask_ |= std::uint64_t{1} << v;
      if (dag.is_source(node)) sources_mask_ |= std::uint64_t{1} << v;
    }
    // Ancestor cones compose along a topological order: by the time v is
    // visited every predecessor's cone is final.
    for (NodeId v : topological_order(dag)) {
      std::uint64_t cone = std::uint64_t{1} << v;
      for (NodeId p : dag.predecessors(v)) cone |= cone_mask_[p];
      cone_mask_[v] = cone;
    }
    // Fall through: the wide caches are built for every n ≤ 128, because the
    // variable-width searches use WideStateMasks even on small instances
    // (one mask type per search instantiation).
  }
  if (n <= kWideMaskMaxNodes) {
    // ≤128 nodes: the same caches over two-word masks.
    pred_mask2_.assign(n, WideMask{});
    cone_mask2_.assign(n, WideMask{});
    for (std::size_t v = 0; v < n; ++v) {
      const NodeId node = static_cast<NodeId>(v);
      for (NodeId p : dag.predecessors(node)) {
        pred_mask2_[v][p >> 6] |= std::uint64_t{1} << (p & 63);
      }
      if (dag.is_sink(node)) {
        sinks_mask2_[v >> 6] |= std::uint64_t{1} << (v & 63);
      }
      if (dag.is_source(node)) {
        sources_mask2_[v >> 6] |= std::uint64_t{1} << (v & 63);
      }
    }
    for (NodeId v : topological_order(dag)) {
      WideMask cone{};
      cone[v >> 6] = std::uint64_t{1} << (v & 63);
      for (NodeId p : dag.predecessors(v)) {
        for (std::size_t w = 0; w < cone.size(); ++w) {
          cone[w] |= cone_mask2_[p][w];
        }
      }
      cone_mask2_[v] = cone;
    }
  }
  if (n > kVecMaskMaxNodes) return;  // generic path only past the vec cap
  // Runtime-width caches, built for every n ≤ kVecMaskMaxNodes so a forced
  // MaskVec run on a small instance can be compared against the fixed paths.
  const std::size_t W = (n + 63) / 64;
  maskv_words_ = W;
  pred_maskv_.assign(n * W, 0);
  cone_maskv_.assign(n * W, 0);
  sinks_maskv_.assign(W, 0);
  sources_maskv_.assign(W, 0);
  scratchv_.assign(5 * W, 0);
  for (std::size_t v = 0; v < n; ++v) {
    const NodeId node = static_cast<NodeId>(v);
    for (NodeId p : dag.predecessors(node)) {
      pred_maskv_[v * W + (p >> 6)] |= std::uint64_t{1} << (p & 63);
    }
    if (dag.is_sink(node)) {
      sinks_maskv_[v >> 6] |= std::uint64_t{1} << (v & 63);
    }
    if (dag.is_source(node)) {
      sources_maskv_[v >> 6] |= std::uint64_t{1} << (v & 63);
    }
  }
  for (NodeId v : topological_order(dag)) {
    std::uint64_t* cone = &cone_maskv_[static_cast<std::size_t>(v) * W];
    cone[v >> 6] |= std::uint64_t{1} << (v & 63);
    for (NodeId p : dag.predecessors(v)) {
      const std::uint64_t* pcone = &cone_maskv_[static_cast<std::size_t>(p) * W];
      for (std::size_t w = 0; w < W; ++w) cone[w] |= pcone[w];
    }
  }
}

template <class FieldFn>
std::optional<std::int64_t> StateBoundEvaluator::pdb_floor(
    FieldFn&& field) const {
  return pdb_->sum_scaled(field);
}

std::optional<std::int64_t> StateBoundEvaluator::lower_bound_scaled(
    const StateMasks& state) {
  last_source_ = BoundSource::Counting;
  const Model& model = engine_->model();
  const PebblingConvention& conv = engine_->convention();
  const std::uint64_t pebbled = state.pebbled();
  const std::uint64_t empty = ~pebbled;  // junk above bit n never enters

  // Seeds plus the stores owed by non-blue sinks under the blue convention.
  std::int64_t sink_stores_owed = 0;
  if (conv.sinks_end_blue) {
    sink_stores_owed =
        std::popcount(sinks_mask_ & ~state.blue);  // blue arrives via Store
  }
  std::uint64_t frontier = sinks_mask_ & empty;

  // Requirement closure, composed from the construction-time caches: a
  // frontier node whose whole ancestor cone is pebble-free contributes its
  // cached cone in one OR (every such ancestor is empty, hence also owed a
  // computation, and none of them can have blue inputs); anything else
  // advances one cached predecessor word at a time.
  std::uint64_t closure = 0;
  std::uint64_t blue_inputs = 0;
  while (frontier != 0) {
    const int v = std::countr_zero(frontier);
    frontier &= frontier - 1;
    const std::uint64_t bit = std::uint64_t{1} << v;
    if ((closure & bit) != 0) continue;
    const std::uint64_t cone = cone_mask_[static_cast<std::size_t>(v)];
    if ((cone & pebbled) == 0) {
      closure |= cone;
      continue;
    }
    closure |= bit;
    const std::uint64_t preds = pred_mask_[static_cast<std::size_t>(v)];
    blue_inputs |= preds & state.blue;
    frontier |= preds & empty & ~closure;
  }

  // Dead states: a needed oneshot value already spent, or a needed (hence
  // empty) Hong–Kung source — uncomputable and, with no pebble, unloadable.
  if (!model.allows_recompute() && (closure & state.computed) != 0) {
    return std::nullopt;
  }
  if (conv.sources_start_blue && (closure & sources_mask_) != 0) {
    return std::nullopt;
  }

  std::int64_t bound =
      static_cast<std::int64_t>(std::popcount(closure)) * eps_num_;
  // Blue inputs that can never be recomputed owe a full Load; the rest owe
  // whichever of reload / recompute is cheaper.
  std::uint64_t no_recompute = 0;
  if (!model.allows_recompute()) no_recompute |= state.computed;
  if (conv.sources_start_blue) no_recompute |= sources_mask_;
  bound += static_cast<std::int64_t>(std::popcount(blue_inputs & no_recompute)) *
           eps_den_;
  bound +=
      static_cast<std::int64_t>(std::popcount(blue_inputs & ~no_recompute)) *
      std::min(eps_num_, eps_den_);

  std::int64_t stores_owed = sink_stores_owed;
  if (model.kind() == ModelKind::Nodel) {
    // No deletions: currently pebbled nodes and the closure all hold pebbles
    // at the end, at most R of them red. Stores minus loads equals the net
    // blue growth, so stores >= final_blue - current_blue.
    const std::int64_t final_pebbled =
        std::popcount(pebbled) + std::popcount(closure);
    const std::int64_t r = static_cast<std::int64_t>(engine_->red_limit());
    const std::int64_t blue = std::popcount(state.blue);
    // Max, not sum: this and the sink term lower-bound the same stores.
    stores_owed = std::max(stores_owed, final_pebbled - r - blue);
  }
  std::int64_t total = bound + stores_owed * eps_den_;
  if (pdb_ != nullptr) {
    auto floor = pdb_floor([&](NodeId v) {
      const std::uint64_t bit = std::uint64_t{1} << v;
      unsigned f = (state.red & bit) != 0 ? 1u
                   : (state.blue & bit) != 0 ? 2u
                                             : 0u;
      if ((state.computed & bit) != 0) f |= 4u;
      return f;
    });
    if (!floor) {
      last_source_ = BoundSource::Pdb;  // a projection proved the state dead
      return std::nullopt;
    }
    if (*floor > total) {
      total = *floor;
      last_source_ = BoundSource::Pdb;
    }
  }
  return total;
}

std::optional<std::int64_t> StateBoundEvaluator::lower_bound_scaled(
    const WideStateMasks& state) {
  last_source_ = BoundSource::Counting;
  const Model& model = engine_->model();
  const PebblingConvention& conv = engine_->convention();
  constexpr std::size_t kWords = WideStateMasks::kWords;

  WideMask pebbled, empty;
  for (std::size_t w = 0; w < kWords; ++w) {
    pebbled[w] = state.red[w] | state.blue[w];
    empty[w] = ~pebbled[w];  // junk above bit n never enters
  }

  // Seeds plus the stores owed by non-blue sinks under the blue convention.
  std::int64_t sink_stores_owed = 0;
  WideMask frontier;
  for (std::size_t w = 0; w < kWords; ++w) {
    if (conv.sinks_end_blue) {
      sink_stores_owed += std::popcount(sinks_mask2_[w] & ~state.blue[w]);
    }
    frontier[w] = sinks_mask2_[w] & empty[w];
  }

  // Requirement closure composed from the two-word caches — the same
  // whole-cone jumps and per-predecessor-word advances as the one-word path.
  WideMask closure{};
  WideMask blue_inputs{};
  while ((frontier[0] | frontier[1]) != 0) {
    const std::size_t w = frontier[0] != 0 ? 0 : 1;
    const int b = std::countr_zero(frontier[w]);
    frontier[w] &= frontier[w] - 1;
    const std::size_t v = (w << 6) | static_cast<std::size_t>(b);
    const std::uint64_t bit = std::uint64_t{1} << b;
    if ((closure[w] & bit) != 0) continue;
    const WideMask& cone = cone_mask2_[v];
    bool cone_unpebbled = true;
    for (std::size_t i = 0; i < kWords; ++i) {
      if ((cone[i] & pebbled[i]) != 0) cone_unpebbled = false;
    }
    if (cone_unpebbled) {
      for (std::size_t i = 0; i < kWords; ++i) closure[i] |= cone[i];
      continue;
    }
    closure[w] |= bit;
    const WideMask& preds = pred_mask2_[v];
    for (std::size_t i = 0; i < kWords; ++i) {
      blue_inputs[i] |= preds[i] & state.blue[i];
      frontier[i] |= preds[i] & empty[i] & ~closure[i];
    }
  }

  // Dead states: a needed oneshot value already spent, or a needed (hence
  // empty) Hong–Kung source — uncomputable and, with no pebble, unloadable.
  std::int64_t closure_count = 0;
  for (std::size_t w = 0; w < kWords; ++w) {
    if (!model.allows_recompute() && (closure[w] & state.computed[w]) != 0) {
      return std::nullopt;
    }
    if (conv.sources_start_blue && (closure[w] & sources_mask2_[w]) != 0) {
      return std::nullopt;
    }
    closure_count += std::popcount(closure[w]);
  }

  std::int64_t bound = closure_count * eps_num_;
  // Blue inputs that can never be recomputed owe a full Load; the rest owe
  // whichever of reload / recompute is cheaper.
  for (std::size_t w = 0; w < kWords; ++w) {
    std::uint64_t no_recompute = 0;
    if (!model.allows_recompute()) no_recompute |= state.computed[w];
    if (conv.sources_start_blue) no_recompute |= sources_mask2_[w];
    bound += static_cast<std::int64_t>(
                 std::popcount(blue_inputs[w] & no_recompute)) *
             eps_den_;
    bound += static_cast<std::int64_t>(
                 std::popcount(blue_inputs[w] & ~no_recompute)) *
             std::min(eps_num_, eps_den_);
  }

  std::int64_t stores_owed = sink_stores_owed;
  if (model.kind() == ModelKind::Nodel) {
    std::int64_t pebbled_count = 0;
    std::int64_t blue_count = 0;
    for (std::size_t w = 0; w < kWords; ++w) {
      pebbled_count += std::popcount(pebbled[w]);
      blue_count += std::popcount(state.blue[w]);
    }
    const std::int64_t final_pebbled = pebbled_count + closure_count;
    const std::int64_t r = static_cast<std::int64_t>(engine_->red_limit());
    // Max, not sum: this and the sink term lower-bound the same stores.
    stores_owed = std::max(stores_owed, final_pebbled - r - blue_count);
  }
  std::int64_t total = bound + stores_owed * eps_den_;
  if (pdb_ != nullptr) {
    auto floor = pdb_floor([&](NodeId v) {
      const std::size_t w = v >> 6;
      const std::uint64_t bit = std::uint64_t{1} << (v & 63);
      unsigned f = (state.red[w] & bit) != 0 ? 1u
                   : (state.blue[w] & bit) != 0 ? 2u
                                                : 0u;
      if ((state.computed[w] & bit) != 0) f |= 4u;
      return f;
    });
    if (!floor) {
      last_source_ = BoundSource::Pdb;  // a projection proved the state dead
      return std::nullopt;
    }
    if (*floor > total) {
      total = *floor;
      last_source_ = BoundSource::Pdb;
    }
  }
  return total;
}

std::optional<std::int64_t> StateBoundEvaluator::lower_bound_scaled(
    const MaskVec& state) {
  last_source_ = BoundSource::Counting;
  const Model& model = engine_->model();
  const PebblingConvention& conv = engine_->convention();
  const std::size_t W = maskv_words_;
  RBPEB_REQUIRE(W != 0 && state.words() == W,
                "MaskVec width must match the evaluator's DAG");

  // Scratch planes: pebbled, empty, frontier, closure, blue_inputs.
  std::uint64_t* pebbled = scratchv_.data();
  std::uint64_t* empty = pebbled + W;
  std::uint64_t* frontier = empty + W;
  std::uint64_t* closure = frontier + W;
  std::uint64_t* blue_inputs = closure + W;
  for (std::size_t w = 0; w < W; ++w) {
    pebbled[w] = state.red()[w] | state.blue()[w];
    empty[w] = ~pebbled[w];  // junk above bit n never enters
    closure[w] = 0;
    blue_inputs[w] = 0;
  }

  // Seeds plus the stores owed by non-blue sinks under the blue convention.
  std::int64_t sink_stores_owed = 0;
  for (std::size_t w = 0; w < W; ++w) {
    if (conv.sinks_end_blue) {
      sink_stores_owed += std::popcount(sinks_maskv_[w] & ~state.blue()[w]);
    }
    frontier[w] = sinks_maskv_[w] & empty[w];
  }

  // Requirement closure composed from the runtime-width caches — the same
  // whole-cone jumps and per-predecessor-word advances as the fixed paths,
  // with the word scan generalized to W words.
  for (;;) {
    std::size_t w = 0;
    while (w < W && frontier[w] == 0) ++w;
    if (w == W) break;
    const int b = std::countr_zero(frontier[w]);
    frontier[w] &= frontier[w] - 1;
    const std::size_t v = (w << 6) | static_cast<std::size_t>(b);
    const std::uint64_t bit = std::uint64_t{1} << b;
    if ((closure[w] & bit) != 0) continue;
    const std::uint64_t* cone = &cone_maskv_[v * W];
    bool cone_unpebbled = true;
    for (std::size_t i = 0; i < W; ++i) {
      if ((cone[i] & pebbled[i]) != 0) cone_unpebbled = false;
    }
    if (cone_unpebbled) {
      for (std::size_t i = 0; i < W; ++i) closure[i] |= cone[i];
      continue;
    }
    closure[w] |= bit;
    const std::uint64_t* preds = &pred_maskv_[v * W];
    for (std::size_t i = 0; i < W; ++i) {
      blue_inputs[i] |= preds[i] & state.blue()[i];
      frontier[i] |= preds[i] & empty[i] & ~closure[i];
    }
  }

  // Dead states: a needed oneshot value already spent, or a needed (hence
  // empty) Hong–Kung source — uncomputable and, with no pebble, unloadable.
  std::int64_t closure_count = 0;
  for (std::size_t w = 0; w < W; ++w) {
    if (!model.allows_recompute() &&
        (closure[w] & state.computed()[w]) != 0) {
      return std::nullopt;
    }
    if (conv.sources_start_blue && (closure[w] & sources_maskv_[w]) != 0) {
      return std::nullopt;
    }
    closure_count += std::popcount(closure[w]);
  }

  std::int64_t bound = closure_count * eps_num_;
  // Blue inputs that can never be recomputed owe a full Load; the rest owe
  // whichever of reload / recompute is cheaper.
  for (std::size_t w = 0; w < W; ++w) {
    std::uint64_t no_recompute = 0;
    if (!model.allows_recompute()) no_recompute |= state.computed()[w];
    if (conv.sources_start_blue) no_recompute |= sources_maskv_[w];
    bound += static_cast<std::int64_t>(
                 std::popcount(blue_inputs[w] & no_recompute)) *
             eps_den_;
    bound += static_cast<std::int64_t>(
                 std::popcount(blue_inputs[w] & ~no_recompute)) *
             std::min(eps_num_, eps_den_);
  }

  std::int64_t stores_owed = sink_stores_owed;
  if (model.kind() == ModelKind::Nodel) {
    std::int64_t pebbled_count = 0;
    std::int64_t blue_count = 0;
    for (std::size_t w = 0; w < W; ++w) {
      pebbled_count += std::popcount(pebbled[w]);
      blue_count += std::popcount(state.blue()[w]);
    }
    const std::int64_t final_pebbled = pebbled_count + closure_count;
    const std::int64_t r = static_cast<std::int64_t>(engine_->red_limit());
    // Max, not sum: this and the sink term lower-bound the same stores.
    stores_owed = std::max(stores_owed, final_pebbled - r - blue_count);
  }
  std::int64_t total = bound + stores_owed * eps_den_;
  if (pdb_ != nullptr) {
    auto floor = pdb_floor([&](NodeId v) {
      const std::size_t w = v >> 6;
      const std::uint64_t bit = std::uint64_t{1} << (v & 63);
      unsigned f = (state.red()[w] & bit) != 0 ? 1u
                   : (state.blue()[w] & bit) != 0 ? 2u
                                                  : 0u;
      if ((state.computed()[w] & bit) != 0) f |= 4u;
      return f;
    });
    if (!floor) {
      last_source_ = BoundSource::Pdb;  // a projection proved the state dead
      return std::nullopt;
    }
    if (*floor > total) {
      total = *floor;
      last_source_ = BoundSource::Pdb;
    }
  }
  return total;
}

std::optional<Rational> state_cost_lower_bound(const Engine& engine,
                                               const GameState& state) {
  StateBoundEvaluator evaluator(engine);
  std::optional<std::int64_t> scaled = evaluator.lower_bound_scaled(state);
  if (!scaled) return std::nullopt;
  return Rational(*scaled, engine.model().epsilon().den());
}

std::size_t optimal_length_upper_bound(const Dag& dag, const Model& model) {
  const std::size_t n = dag.node_count();
  const std::size_t delta = dag.max_indegree();
  const std::size_t transfers = (2 * delta + 1) * n;
  switch (model.kind()) {
    case ModelKind::Base:
      // The base model admits optimal pebblings of superpolynomial length
      // (paper, Section 4); no finite bound is claimed.
      return std::numeric_limits<std::size_t>::max();
    case ModelKind::Oneshot:
      // ≤ n computes; a deleted node can never be re-pebbled, so ≤ n deletes.
      return transfers + 2 * n;
    case ModelKind::Nodel:
      // ≤ n first computes; every recomputation consumes a blue pebble
      // created by a Step 2, of which there are at most `transfers`.
      return 2 * transfers + n;
    case ModelKind::Compcost: {
      // Lemma 1: p ≤ (2/ε)·(2Δ+1+ε)·n non-transfer steps.
      Rational eps = model.epsilon();
      Rational cost_cap = universal_cost_upper_bound(dag, model);
      // p ≤ 2 · cost_cap / ε  ⇒  p ≤ ceil(2 · num · eps_den / (den · eps_num))
      __int128 num = static_cast<__int128>(2) * cost_cap.num() * eps.den();
      __int128 den = static_cast<__int128>(cost_cap.den()) * eps.num();
      std::size_t p = static_cast<std::size_t>((num + den - 1) / den);
      return transfers + p;
    }
  }
  RBPEB_ENSURE(false, "unreachable");
  return 0;
}

}  // namespace rbpeb
