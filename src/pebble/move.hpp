// A single step of a red-blue pebbling.
#pragma once

#include <string>

#include "src/graph/dag.hpp"

namespace rbpeb {

/// The four operations of the red-blue pebble game (paper, Section 1).
enum class MoveType {
  Load,     ///< Step 1: replace a blue pebble by a red pebble.
  Store,    ///< Step 2: replace a red pebble by a blue pebble.
  Compute,  ///< Step 3: place a red pebble on a node whose inputs are all red.
  Delete,   ///< Step 4: remove a (red or blue) pebble.
};

/// One pebbling step applied to one node.
struct Move {
  MoveType type;
  NodeId node;

  bool operator==(const Move& o) const = default;
};

/// Convenience constructors.
inline Move load(NodeId v) { return {MoveType::Load, v}; }
inline Move store(NodeId v) { return {MoveType::Store, v}; }
inline Move compute(NodeId v) { return {MoveType::Compute, v}; }
inline Move erase(NodeId v) { return {MoveType::Delete, v}; }

/// "load(7)" style rendering for diagnostics.
std::string to_string(const Move& move);

}  // namespace rbpeb
