#include "src/pebble/model.hpp"

#include "src/support/check.hpp"

namespace rbpeb {

Model Model::base() { return Model(ModelKind::Base, "base", Rational(0)); }

Model Model::oneshot() {
  return Model(ModelKind::Oneshot, "oneshot", Rational(0));
}

Model Model::nodel() { return Model(ModelKind::Nodel, "nodel", Rational(0)); }

Model Model::compcost(std::int64_t num, std::int64_t den) {
  Rational eps(num, den);
  RBPEB_REQUIRE(Rational(0) < eps && eps < Rational(1),
                "compcost requires 0 < eps < 1");
  return Model(ModelKind::Compcost, "compcost", eps);
}

std::optional<Model> Model::from_name(std::string_view name) {
  for (const Model& m : all_models()) {
    if (m.name() == name) return m;
  }
  return std::nullopt;
}

Rational Model::total(const Cost& cost) const {
  Rational t(cost.transfers());
  if (kind_ == ModelKind::Compcost) {
    t += eps_ * Rational(cost.computes);
  }
  return t;
}

std::int64_t scaled_move_cost(const Model& model, MoveType type) {
  const Rational eps = model.epsilon();
  switch (type) {
    case MoveType::Load:
    case MoveType::Store:
      return eps.den();
    case MoveType::Compute:
      return eps.num();
    case MoveType::Delete:
      return 0;
  }
  return 0;
}

const std::vector<Model>& all_models() {
  static const std::vector<Model> models = {
      Model::base(), Model::oneshot(), Model::nodel(), Model::compcost()};
  return models;
}

}  // namespace rbpeb
