// Exact pebbling cost accounting.
//
// Costs in the compcost model involve a rational ε (the paper suggests
// ε ≈ 1/100); representing totals as floating point would make optimality
// comparisons unreliable, so rbpeb tracks operation *counts* exactly and
// compares totals with exact rational arithmetic.
#pragma once

#include <cstdint>
#include <string>

namespace rbpeb {

/// Exact rational number with cross-multiplication comparison. Denominator
/// is kept positive; values are normalized on construction.
class Rational {
 public:
  constexpr Rational() = default;
  Rational(std::int64_t num, std::int64_t den = 1);

  std::int64_t num() const { return num_; }
  std::int64_t den() const { return den_; }

  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  Rational& operator+=(const Rational& o) { return *this = *this + o; }

  bool operator==(const Rational& o) const;
  bool operator!=(const Rational& o) const { return !(*this == o); }
  bool operator<(const Rational& o) const;
  bool operator<=(const Rational& o) const { return *this < o || *this == o; }
  bool operator>(const Rational& o) const { return o < *this; }
  bool operator>=(const Rational& o) const { return o <= *this; }

  double to_double() const { return static_cast<double>(num_) / static_cast<double>(den_); }

  /// "7", "7/2" style rendering.
  std::string str() const;

 private:
  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

/// Counts of the four pebbling operations (paper, Section 1):
///   Step 1 (blue→red, "load"), Step 2 (red→blue, "store"),
///   Step 3 (compute), Step 4 (delete).
/// A model turns these counts into a total cost (see Model::total).
struct Cost {
  std::int64_t loads = 0;    ///< Step 1: move to fast memory.
  std::int64_t stores = 0;   ///< Step 2: move to slow memory.
  std::int64_t computes = 0; ///< Step 3.
  std::int64_t deletes = 0;  ///< Step 4.

  /// Steps 1 + 2 — the transfer operations whose count is the cost in the
  /// base / oneshot / nodel models.
  std::int64_t transfers() const { return loads + stores; }

  Cost operator+(const Cost& o) const {
    return {loads + o.loads, stores + o.stores, computes + o.computes,
            deletes + o.deletes};
  }
  Cost& operator+=(const Cost& o) { return *this = *this + o; }
  bool operator==(const Cost& o) const = default;
};

}  // namespace rbpeb
