// A pebbling trace: the full move sequence a solver produced.
#pragma once

#include <string>
#include <vector>

#include "src/pebble/move.hpp"

namespace rbpeb {

/// An append-only sequence of moves. Traces are produced by solvers and
/// consumed by the Verifier; they carry no cost information of their own —
/// cost is always recomputed by replaying, so solvers cannot misreport.
class Trace {
 public:
  Trace() = default;

  void push(Move move) { moves_.push_back(move); }
  void push_load(NodeId v) { push(load(v)); }
  void push_store(NodeId v) { push(store(v)); }
  void push_compute(NodeId v) { push(compute(v)); }
  void push_delete(NodeId v) { push(erase(v)); }

  /// Append all moves of another trace.
  void append(const Trace& other);

  std::size_t size() const { return moves_.size(); }
  bool empty() const { return moves_.empty(); }
  const Move& operator[](std::size_t i) const { return moves_[i]; }
  const std::vector<Move>& moves() const { return moves_; }

  auto begin() const { return moves_.begin(); }
  auto end() const { return moves_.end(); }

  /// Multi-line human-readable rendering (one move per line).
  std::string str() const;

 private:
  std::vector<Move> moves_;
};

}  // namespace rbpeb
