#include "src/pebble/cost.hpp"

#include <numeric>
#include <sstream>

#include "src/support/check.hpp"

namespace rbpeb {

Rational::Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
  RBPEB_REQUIRE(den_ != 0, "rational denominator must be non-zero");
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  std::int64_t g = std::gcd(num_ < 0 ? -num_ : num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
}

Rational Rational::operator+(const Rational& o) const {
  return Rational(num_ * o.den_ + o.num_ * den_, den_ * o.den_);
}

Rational Rational::operator-(const Rational& o) const {
  return Rational(num_ * o.den_ - o.num_ * den_, den_ * o.den_);
}

Rational Rational::operator*(const Rational& o) const {
  return Rational(num_ * o.num_, den_ * o.den_);
}

bool Rational::operator==(const Rational& o) const {
  // Both sides are normalized, so representation equality is value equality.
  return num_ == o.num_ && den_ == o.den_;
}

bool Rational::operator<(const Rational& o) const {
  // Denominators are positive, so cross-multiplication preserves order.
  // __int128 avoids overflow for the magnitudes rbpeb works with.
  return static_cast<__int128>(num_) * o.den_ <
         static_cast<__int128>(o.num_) * den_;
}

std::string Rational::str() const {
  std::ostringstream os;
  os << num_;
  if (den_ != 1) os << '/' << den_;
  return os.str();
}

}  // namespace rbpeb
