// Independent replay of a trace against the game rules.
//
// rbpeb never trusts a solver's self-reported cost: every experiment and
// test replays the solver's trace through the Engine and uses the audited
// numbers. This is the design decision that makes the benchmark outputs
// trustworthy (DESIGN.md, decision 2).
#pragma once

#include <string>

#include "src/pebble/engine.hpp"
#include "src/pebble/trace.hpp"

namespace rbpeb {

/// Result of replaying a trace.
struct VerifyResult {
  bool legal = false;        ///< Every move was legal in sequence.
  bool complete = false;     ///< Final state pebbles every sink.
  std::size_t failed_at = 0; ///< Index of the first illegal move (if !legal).
  std::string error;         ///< Reason for the first illegal move.
  Cost cost;                 ///< Operation counts over the whole trace.
  Rational total;            ///< Model-weighted total cost.
  std::size_t max_red = 0;   ///< Peak number of red pebbles observed.
  std::size_t length = 0;    ///< Number of moves replayed (= trace size if legal).
  GameState final_state;     ///< State after the last replayed move.

  /// True iff the trace is a valid, complete pebbling.
  bool ok() const { return legal && complete; }
};

/// Replay `trace` from the empty configuration under `engine`'s rules.
VerifyResult verify(const Engine& engine, const Trace& trace);

/// Like verify, but throws InvariantError with diagnostics unless ok().
/// Returns the result for further inspection.
VerifyResult verify_or_throw(const Engine& engine, const Trace& trace);

}  // namespace rbpeb
