#include "src/pebble/state.hpp"

#include "src/support/check.hpp"

namespace rbpeb {

GameState::GameState(std::size_t node_count)
    : color_(node_count, PebbleColor::None), computed_(node_count, false) {}

std::vector<NodeId> GameState::red_nodes() const {
  std::vector<NodeId> out;
  out.reserve(red_count_);
  for (std::size_t v = 0; v < color_.size(); ++v) {
    if (color_[v] == PebbleColor::Red) out.push_back(static_cast<NodeId>(v));
  }
  return out;
}

void GameState::set_color(NodeId v, PebbleColor c) {
  RBPEB_REQUIRE(v < color_.size(), "node id out of range");
  PebbleColor old = color_[v];
  if (old == c) return;
  if (old == PebbleColor::Red) --red_count_;
  if (old == PebbleColor::Blue) --blue_count_;
  if (c == PebbleColor::Red) ++red_count_;
  if (c == PebbleColor::Blue) ++blue_count_;
  color_[v] = c;
}

}  // namespace rbpeb
