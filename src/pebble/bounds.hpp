// Closed-form bounds from Sections 3 and 4 of the paper, as checkable code.
#pragma once

#include "src/graph/dag.hpp"
#include "src/pebble/model.hpp"

namespace rbpeb {

/// Minimum red-pebble budget for which any pebbling exists: Δ + 1
/// (paper, Section 3). Zero for the empty DAG, 1 for an edgeless DAG.
std::size_t min_red_pebbles(const Dag& dag);

/// Universal upper bound on the optimal pebbling cost with any legal R:
/// (2Δ+1)·n transfers (paper, Section 3), plus ε·(#computes ≤ n·(Δ+1)-ish)
/// in compcost — we report the paper's (2Δ+1+ε)·n form.
Rational universal_cost_upper_bound(const Dag& dag, const Model& model);

/// Model-specific lower bound on the cost of *any* pebbling:
///  * base, oneshot: 0;
///  * nodel: n − R (all but R nodes must end up blue; paper, Section 4);
///  * compcost: ε · (#non-source nodes) (each must be computed at least once).
Rational cost_lower_bound(const Dag& dag, const Model& model,
                          std::size_t red_limit);

/// Upper bound on the number of moves in an *optimal* pebbling in the
/// oneshot / nodel / compcost models: O(Δ·n) (paper, Lemma 1). Returns the
/// explicit constant used in the proof so tests can assert against it.
std::size_t optimal_length_upper_bound(const Dag& dag, const Model& model);

}  // namespace rbpeb
