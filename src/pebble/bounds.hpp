// Closed-form bounds from Sections 3 and 4 of the paper, as checkable code,
// plus per-state admissible lower bounds that drive the exact searches.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/graph/dag.hpp"
#include "src/pebble/engine.hpp"
#include "src/pebble/model.hpp"

namespace rbpeb {

class PatternDatabase;  // solvers/bigstate/pdb.hpp

/// Minimum red-pebble budget for which any pebbling exists: Δ + 1
/// (paper, Section 3). Zero for the empty DAG, 1 for an edgeless DAG.
std::size_t min_red_pebbles(const Dag& dag);

/// Universal upper bound on the optimal pebbling cost with any legal R:
/// (2Δ+1)·n transfers (paper, Section 3), plus ε·(#computes ≤ n·(Δ+1)-ish)
/// in compcost — we report the paper's (2Δ+1+ε)·n form.
Rational universal_cost_upper_bound(const Dag& dag, const Model& model);

/// Model-specific lower bound on the cost of *any* pebbling:
///  * base, oneshot: 0;
///  * nodel: n − R (all but R nodes must end up blue; paper, Section 4);
///  * compcost: ε · (#non-source nodes) (each must be computed at least once).
Rational cost_lower_bound(const Dag& dag, const Model& model,
                          std::size_t red_limit);

/// The exact searches' pruning ceiling in scaled units of 1/ε.den() (see
/// scaled_move_cost): the Section 3 universal bound plus 2n transfers
/// covering the Appendix C bridging moves (one load per source, one store
/// per sink) a non-default convention can add. No optimal pebbling prices
/// beyond it — exact-astar and hda-astar drop anything that does, and size
/// their Dial bucket queues to it, so the one formula must serve both.
std::int64_t universal_search_ceiling_scaled(const Dag& dag,
                                             const Model& model);

/// Upper bound on the number of moves in an *optimal* pebbling in the
/// oneshot / nodel / compcost models: O(Δ·n) (paper, Lemma 1). Returns the
/// explicit constant used in the proof so tests can assert against it.
std::size_t optimal_length_upper_bound(const Dag& dag, const Model& model);

// ---- per-state bounds ----------------------------------------------------
//
// The Lemma-1-style counting arguments above bound whole pebblings; the
// evaluator below restates them *per configuration*, which is exactly an
// admissible A* heuristic: a lower bound on the cost of completing the game
// from the given state. The bound charges, per node, moves that every
// completing continuation must still make:
//
//  * an empty node whose value is needed can only ever gain its first pebble
//    through Compute (Load requires blue, Store requires red), so the
//    "requirement closure" — empty sinks, plus, recursively, the empty
//    predecessors of every node in the closure — each owe one computation
//    (ε in compcost; recursion is the "remaining ε·uncomputed-nodes" term);
//  * a blue node feeding a closure node must become red again: a Load
//    (cost 1) when recomputing it is impossible (oneshot after its one
//    computation, or a Hong–Kung blue source), else min(1, ε) — the "blue
//    input loads still owed";
//  * in nodel, pebbles are forever: everything pebbled now plus the closure
//    will still be pebbled at the end, at most R of it red, so at least
//    (pebbled + closure) − R − (current blue) stores remain — the
//    "unmaterialized value transfers";
//  * under the sinks-end-blue convention every non-blue sink owes a store
//    (taking the max against the nodel term: both bound the same stores).
//
// Each charged move targets a distinct node, so the sum is admissible. The
// evaluator also proves some states dead: in oneshot a needed value that was
// computed and then deleted is gone for good, as is an empty Hong–Kung
// source (uncomputable and unloadable) — callers get nullopt and may prune.

/// Reusable per-state bound evaluator (holds scratch; not thread-safe —
/// searches hold one per worker). Templated over anything with
/// color(NodeId)/was_computed(NodeId) so the exact searches can evaluate
/// packed states without materializing a GameState.
///
/// The requirement closure is memoized structurally: construction caches,
/// per node, the bitmask of its predecessors and of its whole ancestor cone
/// (the node's closure in the all-empty configuration). Per state the
/// closure is then *composed* from those masks — a frontier node whose
/// entire cone is pebble-free folds its cached cone in with one OR instead
/// of a fresh graph walk, and everything else advances one cached
/// predecessor word at a time. No per-evaluation O(n) mark-clearing, no
/// edge-list chasing. DAGs of 65–128 nodes (the bigstate searches) run the
/// same composition over two-word masks (WideStateMasks); 129 to
/// kVecMaskMaxNodes nodes run it over runtime-width masks (MaskVec); only
/// beyond that does the original walk remain.
///
/// attach_pdb folds an additive pattern database (solvers/bigstate/pdb.hpp)
/// into both mask paths: the returned bound becomes
/// max(counting_bounds, pdb_sum), still admissible since each side is, and
/// a state either side proves dead stays dead.
class StateBoundEvaluator {
 public:
  /// Largest DAG the one-word mask-composed fast path handles.
  static constexpr std::size_t kMaskMaxNodes = 64;

  /// Largest DAG the two-word (WideStateMasks) fast path handles.
  static constexpr std::size_t kWideMaskMaxNodes = 128;

  /// Largest DAG the runtime-width (MaskVec) path handles — the cap the
  /// variable-width searches inherit. Beyond it only the generic walk
  /// remains (no structural caches are built).
  static constexpr std::size_t kVecMaskMaxNodes = 1024;

  explicit StateBoundEvaluator(const Engine& engine);

  /// Which component supplied the most recent bound: the counting bounds or
  /// the pattern-database sum. Set by every lower_bound_scaled call (Pdb
  /// when the PDB strictly improved on the counting bound, or proved the
  /// state dead); introspection reads it to attribute each expansion's
  /// bound to its source. Cheap plain member — one store per evaluation.
  enum class BoundSource { Counting, Pdb };
  BoundSource last_source() const { return last_source_; }

  /// One configuration as node-indexed bitmasks (bit v = node v), the form
  /// the fast path consumes. A search computes a parent's masks once per
  /// expansion and derives each neighbor's in O(1) via apply().
  struct StateMasks {
    std::uint64_t red = 0;
    std::uint64_t blue = 0;
    std::uint64_t computed = 0;

    std::uint64_t pebbled() const { return red | blue; }

    template <class StateLike>
    static StateMasks from(const StateLike& state, std::size_t node_count) {
      StateMasks m;
      for (std::size_t v = 0; v < node_count; ++v) {
        const NodeId node = static_cast<NodeId>(v);
        const std::uint64_t bit = std::uint64_t{1} << v;
        switch (state.color(node)) {
          case PebbleColor::Red: m.red |= bit; break;
          case PebbleColor::Blue: m.blue |= bit; break;
          case PebbleColor::None: break;
        }
        if (state.was_computed(node)) m.computed |= bit;
      }
      return m;
    }

    /// The successor configuration's masks after a *legal* move — mirrors
    /// BasicPackedState::apply / Engine::apply bit for bit.
    void apply(const Move& move) {
      const std::uint64_t bit = std::uint64_t{1} << move.node;
      switch (move.type) {
        case MoveType::Load:
          red |= bit;
          blue &= ~bit;
          break;
        case MoveType::Store:
          blue |= bit;
          red &= ~bit;
          break;
        case MoveType::Compute:
          red |= bit;
          blue &= ~bit;
          computed |= bit;
          break;
        case MoveType::Delete:
          red &= ~bit;
          blue &= ~bit;
          break;
      }
    }
  };

  /// Two-word sibling of StateMasks for DAGs of 65–128 nodes (bit v of
  /// word v/64 = node v). Same contract: a search computes a parent's masks
  /// once per expansion and derives each neighbor's in O(1) via apply().
  struct WideStateMasks {
    static constexpr std::size_t kWords = 2;
    std::array<std::uint64_t, kWords> red{};
    std::array<std::uint64_t, kWords> blue{};
    std::array<std::uint64_t, kWords> computed{};

    template <class StateLike>
    static WideStateMasks from(const StateLike& state,
                               std::size_t node_count) {
      WideStateMasks m;
      for (std::size_t v = 0; v < node_count; ++v) {
        const NodeId node = static_cast<NodeId>(v);
        const std::size_t w = v >> 6;
        const std::uint64_t bit = std::uint64_t{1} << (v & 63);
        switch (state.color(node)) {
          case PebbleColor::Red: m.red[w] |= bit; break;
          case PebbleColor::Blue: m.blue[w] |= bit; break;
          case PebbleColor::None: break;
        }
        if (state.was_computed(node)) m.computed[w] |= bit;
      }
      return m;
    }

    /// The successor configuration's masks after a *legal* move — mirrors
    /// StateMasks::apply word-for-word on the word holding the node.
    void apply(const Move& move) {
      const std::size_t w = move.node >> 6;
      const std::uint64_t bit = std::uint64_t{1} << (move.node & 63);
      switch (move.type) {
        case MoveType::Load:
          red[w] |= bit;
          blue[w] &= ~bit;
          break;
        case MoveType::Store:
          blue[w] |= bit;
          red[w] &= ~bit;
          break;
        case MoveType::Compute:
          red[w] |= bit;
          blue[w] &= ~bit;
          computed[w] |= bit;
          break;
        case MoveType::Delete:
          red[w] &= ~bit;
          blue[w] &= ~bit;
          break;
      }
    }
  };

  /// Runtime-width sibling of StateMasks / WideStateMasks for DAGs past 128
  /// nodes (bit v of word v/64 = node v, same layout, width chosen at
  /// construction). The three planes live in one allocation — red words,
  /// then blue, then computed — inline while each plane fits two words
  /// (n ≤ 128, the differential-test regime) and on the heap beyond. Same
  /// contract as the fixed-width types: a search computes a parent's masks
  /// once per expansion and derives each neighbor's in O(1) via apply().
  class MaskVec {
   public:
    /// Words per plane the inline buffer covers (mirrors WideStateMasks).
    static constexpr std::size_t kInlineWords = 2;

    MaskVec() = default;
    explicit MaskVec(std::size_t node_count)
        : words_(static_cast<std::uint32_t>((node_count + 63) / 64)) {
      std::uint64_t* w = allocate();
      std::fill(w, w + 3 * words_, std::uint64_t{0});
    }
    MaskVec(const MaskVec& o) : words_(o.words_) {
      std::uint64_t* w = allocate();
      std::copy(o.data(), o.data() + 3 * words_, w);
    }
    MaskVec(MaskVec&& o) noexcept : words_(o.words_) {
      if (on_heap()) {
        heap_ = o.heap_;
        o.words_ = 0;
      } else {
        std::copy(o.inline_, o.inline_ + 3 * words_, inline_);
      }
    }
    MaskVec& operator=(const MaskVec& o) {
      if (this != &o) {
        release();
        words_ = o.words_;
        std::uint64_t* w = allocate();
        std::copy(o.data(), o.data() + 3 * words_, w);
      }
      return *this;
    }
    MaskVec& operator=(MaskVec&& o) noexcept {
      if (this != &o) {
        release();
        words_ = o.words_;
        if (on_heap()) {
          heap_ = o.heap_;
          o.words_ = 0;
        } else {
          std::copy(o.inline_, o.inline_ + 3 * words_, inline_);
        }
      }
      return *this;
    }
    ~MaskVec() { release(); }

    std::size_t words() const { return words_; }
    std::uint64_t* red() { return data(); }
    std::uint64_t* blue() { return data() + words_; }
    std::uint64_t* computed() { return data() + 2 * words_; }
    const std::uint64_t* red() const { return data(); }
    const std::uint64_t* blue() const { return data() + words_; }
    const std::uint64_t* computed() const { return data() + 2 * words_; }

    template <class StateLike>
    static MaskVec from(const StateLike& state, std::size_t node_count) {
      MaskVec m(node_count);
      for (std::size_t v = 0; v < node_count; ++v) {
        const NodeId node = static_cast<NodeId>(v);
        const std::size_t w = v >> 6;
        const std::uint64_t bit = std::uint64_t{1} << (v & 63);
        switch (state.color(node)) {
          case PebbleColor::Red: m.red()[w] |= bit; break;
          case PebbleColor::Blue: m.blue()[w] |= bit; break;
          case PebbleColor::None: break;
        }
        if (state.was_computed(node)) m.computed()[w] |= bit;
      }
      return m;
    }

    /// The successor configuration's masks after a *legal* move — mirrors
    /// WideStateMasks::apply word-for-word on the word holding the node.
    void apply(const Move& move) {
      const std::size_t w = move.node >> 6;
      const std::uint64_t bit = std::uint64_t{1} << (move.node & 63);
      switch (move.type) {
        case MoveType::Load:
          red()[w] |= bit;
          blue()[w] &= ~bit;
          break;
        case MoveType::Store:
          blue()[w] |= bit;
          red()[w] &= ~bit;
          break;
        case MoveType::Compute:
          red()[w] |= bit;
          blue()[w] &= ~bit;
          computed()[w] |= bit;
          break;
        case MoveType::Delete:
          red()[w] &= ~bit;
          blue()[w] &= ~bit;
          break;
      }
    }

   private:
    bool on_heap() const { return words_ > kInlineWords; }
    std::uint64_t* data() { return on_heap() ? heap_ : inline_; }
    const std::uint64_t* data() const { return on_heap() ? heap_ : inline_; }
    std::uint64_t* allocate() {
      if (on_heap()) heap_ = new std::uint64_t[3 * words_];
      return data();
    }
    void release() {
      if (on_heap()) delete[] heap_;
    }

    std::uint32_t words_ = 0;  ///< words per plane
    union {
      std::uint64_t inline_[3 * kInlineWords];
      std::uint64_t* heap_;
    };
  };

  /// Lower bound on the remaining completion cost in scaled units of
  /// 1/ε.den() (see scaled_move_cost); nullopt when the state provably
  /// cannot be completed. Zero at every complete state.
  template <class StateLike>
  std::optional<std::int64_t> lower_bound_scaled(const StateLike& state) {
    const std::size_t n = engine_->dag().node_count();
    if (n <= kMaskMaxNodes) {
      return lower_bound_scaled(StateMasks::from(state, n));
    }
    if (n <= kWideMaskMaxNodes) {
      return lower_bound_scaled(WideStateMasks::from(state, n));
    }
    if (n <= kVecMaskMaxNodes) {
      return lower_bound_scaled(MaskVec::from(state, n));
    }
    return lower_bound_generic(state);
  }

  /// The mask fast path, callable directly by searches that maintain masks
  /// incrementally. Requires node_count() <= kMaskMaxNodes.
  std::optional<std::int64_t> lower_bound_scaled(const StateMasks& state);

  /// The two-word fast path. Requires node_count() <= kWideMaskMaxNodes.
  /// Differentially tested against lower_bound_generic in
  /// tests/pebble/test_bounds.cpp.
  std::optional<std::int64_t> lower_bound_scaled(const WideStateMasks& state);

  /// The runtime-width path. Requires node_count() <= kVecMaskMaxNodes and
  /// state.words() == (node_count()+63)/64. Differentially tested against
  /// the fixed-width paths and lower_bound_generic in
  /// tests/solvers/test_maskvec.cpp.
  std::optional<std::int64_t> lower_bound_scaled(const MaskVec& state);

  /// Fold an additive pattern database into the mask paths: bounds become
  /// max(counting_bounds, pdb_sum). `pdb` must outlive the evaluator (or a
  /// detach via attach_pdb(nullptr)). Ignored by the >128-node generic
  /// path, which no pattern database covers.
  void attach_pdb(const PatternDatabase* pdb) { pdb_ = pdb; }

  /// The original mark-and-walk evaluation, kept as the >64-node fallback
  /// and as the reference the mask path is differentially tested against.
  template <class StateLike>
  std::optional<std::int64_t> lower_bound_generic(const StateLike& state) {
    const Dag& dag = engine_->dag();
    const Model& model = engine_->model();
    const PebblingConvention& conv = engine_->convention();
    const std::size_t n = dag.node_count();
    last_source_ = BoundSource::Counting;  // no PDB covers the generic path
    mark_.assign(n, 0);
    stack_.clear();

    auto seed = [&](NodeId v) {
      if (mark_[v] == 0) {
        mark_[v] = 1;
        stack_.push_back(v);
      }
    };

    std::int64_t bound = 0;
    std::int64_t sink_stores_owed = 0;
    for (NodeId s : dag.sinks()) {
      const PebbleColor c = state.color(s);
      if (conv.sinks_end_blue) {
        if (c == PebbleColor::Blue) continue;
        ++sink_stores_owed;  // blue only ever arrives via Store
        if (c == PebbleColor::None) seed(s);
      } else if (c == PebbleColor::None) {
        seed(s);
      }
    }

    // Requirement closure: every member is empty and must be computed.
    std::int64_t closure_size = 0;
    while (!stack_.empty()) {
      const NodeId v = stack_.back();
      stack_.pop_back();
      if (!model.allows_recompute() && state.was_computed(v)) {
        return std::nullopt;  // oneshot: the needed value is lost forever
      }
      if (conv.sources_start_blue && dag.is_source(v)) {
        return std::nullopt;  // uncomputable and, with no pebble, unloadable
      }
      bound += eps_num_;
      ++closure_size;
      for (NodeId p : dag.predecessors(v)) {
        const PebbleColor c = state.color(p);
        if (c == PebbleColor::Red || mark_[p] != 0) continue;
        if (c == PebbleColor::None) {
          seed(p);
          continue;
        }
        // Blue input: must become red again at least once. Counted once per
        // node; mark value 2 keeps it out of the closure accounting.
        mark_[p] = 2;
        bool recompute_ok =
            model.allows_recompute() || !state.was_computed(p);
        if (conv.sources_start_blue && dag.is_source(p)) recompute_ok = false;
        bound += recompute_ok ? std::min(eps_num_, eps_den_) : eps_den_;
      }
    }

    std::int64_t stores_owed = sink_stores_owed;
    if (model.kind() == ModelKind::Nodel) {
      // No deletions: currently pebbled nodes and the closure all hold
      // pebbles at the end, at most R of them red. Stores minus loads equals
      // the net blue growth, so stores >= final_blue - current_blue.
      std::int64_t pebbled = 0;
      std::int64_t blue = 0;
      for (std::size_t v = 0; v < n; ++v) {
        const PebbleColor c = state.color(static_cast<NodeId>(v));
        if (c != PebbleColor::None) ++pebbled;
        if (c == PebbleColor::Blue) ++blue;
      }
      const std::int64_t final_pebbled = pebbled + closure_size;
      const std::int64_t r = static_cast<std::int64_t>(engine_->red_limit());
      // Max, not sum: this and the sink term lower-bound the same stores.
      stores_owed = std::max(stores_owed, final_pebbled - r - blue);
    }
    return bound + stores_owed * eps_den_;
  }

 private:
  using WideMask = std::array<std::uint64_t, WideStateMasks::kWords>;

  /// The pattern-database floor for the current configuration, read through
  /// `field(v)` (the node's 3-bit color|computed field). nullopt = dead.
  template <class FieldFn>
  std::optional<std::int64_t> pdb_floor(FieldFn&& field) const;

  const Engine* engine_;
  std::int64_t eps_num_;
  std::int64_t eps_den_;
  const PatternDatabase* pdb_ = nullptr;
  BoundSource last_source_ = BoundSource::Counting;

  // Structural caches for the mask path (empty beyond kMaskMaxNodes nodes).
  std::vector<std::uint64_t> pred_mask_;  ///< predecessors of v
  std::vector<std::uint64_t> cone_mask_;  ///< v plus all of its ancestors
  std::uint64_t sinks_mask_ = 0;
  std::uint64_t sources_mask_ = 0;

  // Two-word caches for 65–128-node DAGs (empty otherwise).
  std::vector<WideMask> pred_mask2_;
  std::vector<WideMask> cone_mask2_;
  WideMask sinks_mask2_{};
  WideMask sources_mask2_{};

  // Runtime-width caches, built for every n ≤ kVecMaskMaxNodes (the small
  // sizes too, so a forced MaskVec run can be differentially compared
  // against the fixed-width paths). Flat node-major layout: node v's mask
  // is the W = maskv_words_ words starting at v * W.
  std::size_t maskv_words_ = 0;
  std::vector<std::uint64_t> pred_maskv_;
  std::vector<std::uint64_t> cone_maskv_;
  std::vector<std::uint64_t> sinks_maskv_;
  std::vector<std::uint64_t> sources_maskv_;
  // Scratch planes for the runtime-width evaluation (one evaluator per
  // search worker; not thread-safe, like the rest of the scratch).
  std::vector<std::uint64_t> scratchv_;

  // Scratch for the generic path.
  std::vector<std::uint8_t> mark_;
  std::vector<NodeId> stack_;
};

/// One-shot convenience wrapper over StateBoundEvaluator, in model-cost
/// units. nullopt when `state` provably cannot be completed under `engine`.
std::optional<Rational> state_cost_lower_bound(const Engine& engine,
                                               const GameState& state);

}  // namespace rbpeb
