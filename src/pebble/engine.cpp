#include "src/pebble/engine.hpp"

#include <sstream>

#include "src/support/check.hpp"

namespace rbpeb {

Engine::Engine(const Dag& dag, Model model, std::size_t red_limit,
               PebblingConvention convention)
    : dag_(&dag),
      model_(std::move(model)),
      red_limit_(red_limit),
      convention_(convention) {
  std::size_t min_r = dag.node_count() == 0 ? 0 : dag.max_indegree() + 1;
  RBPEB_REQUIRE(red_limit_ >= min_r,
                "R must be at least max-indegree + 1 (paper, Section 3)");
}

GameState Engine::initial_state() const {
  GameState state(dag_->node_count());
  if (convention_.sources_start_blue) {
    for (NodeId s : dag_->sources()) state.set_color(s, PebbleColor::Blue);
  }
  return state;
}

std::optional<std::string> Engine::why_illegal(const GameState& state,
                                               const Move& move) const {
  if (!dag_->contains(move.node)) return "node id out of range";
  const NodeId v = move.node;
  switch (move.type) {
    case MoveType::Load:
      if (!state.is_blue(v)) return "load requires a blue pebble on the node";
      if (state.red_count() >= red_limit_) return "red pebble budget exhausted";
      return std::nullopt;

    case MoveType::Store:
      if (!state.is_red(v)) return "store requires a red pebble on the node";
      return std::nullopt;

    case MoveType::Compute: {
      if (convention_.sources_start_blue && dag_->is_source(v)) {
        return "sources are pre-loaded blue inputs and cannot be computed";
      }
      if (!model_.allows_recompute() && state.was_computed(v)) {
        return "oneshot: node was already computed once";
      }
      if (state.is_red(v)) return "node already holds a red pebble";
      for (NodeId u : dag_->predecessors(v)) {
        if (!state.is_red(u)) {
          std::ostringstream os;
          os << "input node " << u << " does not hold a red pebble";
          return os.str();
        }
      }
      // Computing a blue node replaces the blue pebble (red count +1);
      // computing an empty node adds a pebble. Either way one more red.
      if (state.red_count() >= red_limit_) return "red pebble budget exhausted";
      return std::nullopt;
    }

    case MoveType::Delete:
      if (!model_.allows_delete()) return "nodel: deletions are forbidden";
      if (state.is_empty(v)) return "delete requires a pebble on the node";
      return std::nullopt;
  }
  return "unknown move type";
}

void Engine::apply(GameState& state, const Move& move, Cost& cost) const {
  if (auto reason = why_illegal(state, move)) {
    std::ostringstream os;
    os << "illegal move " << to_string(move) << ": " << *reason;
    throw PreconditionError(os.str());
  }
  const NodeId v = move.node;
  switch (move.type) {
    case MoveType::Load:
      state.set_color(v, PebbleColor::Red);
      ++cost.loads;
      break;
    case MoveType::Store:
      state.set_color(v, PebbleColor::Blue);
      ++cost.stores;
      break;
    case MoveType::Compute:
      state.set_color(v, PebbleColor::Red);
      state.mark_computed(v);
      ++cost.computes;
      break;
    case MoveType::Delete:
      state.set_color(v, PebbleColor::None);
      ++cost.deletes;
      break;
  }
}

bool Engine::is_complete(const GameState& state) const {
  for (NodeId sink : dag_->sinks()) {
    if (convention_.sinks_end_blue ? !state.is_blue(sink)
                                   : state.is_empty(sink)) {
      return false;
    }
  }
  return true;
}

}  // namespace rbpeb
