// The four red-blue pebbling model variants studied by the paper.
//
// Paper, Table 1:
//   model     blue→red  red→blue  compute       delete
//   base      1         1         0             0
//   oneshot   1         1         0, ∞, ∞, ...  0      (each node once)
//   nodel     1         1         0             ∞      (no deletions)
//   compcost  1         1         ε             0
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/pebble/cost.hpp"
#include "src/pebble/move.hpp"

namespace rbpeb {

/// Which rule set is in effect.
enum class ModelKind { Base, Oneshot, Nodel, Compcost };

/// A fully-specified model: a rule set plus, for compcost, the computation
/// cost ε = eps_num/eps_den with 0 < ε < 1.
class Model {
 public:
  /// The base model: transfers cost 1, compute and delete free and unlimited.
  static Model base();

  /// The oneshot model: like base, but each node may be computed at most once.
  static Model oneshot();

  /// The no-deletion model: like base, but Step 4 is forbidden.
  static Model nodel();

  /// The compcost model with ε = num/den (paper suggests ε ≈ 1/100).
  static Model compcost(std::int64_t num = 1, std::int64_t den = 100);

  /// Look a model up by its name ("base", "oneshot", "nodel", "compcost",
  /// each with default parameters). nullopt for unknown names. This is the
  /// single parsing point shared by the CLI and the solver registry.
  static std::optional<Model> from_name(std::string_view name);

  ModelKind kind() const { return kind_; }
  const std::string& name() const { return name_; }

  /// True if Step 4 (delete) is ever legal.
  bool allows_delete() const { return kind_ != ModelKind::Nodel; }

  /// True if a node may be computed more than once.
  bool allows_recompute() const { return kind_ != ModelKind::Oneshot; }

  /// ε as a rational; zero except in compcost.
  Rational epsilon() const { return eps_; }

  /// Exact total cost of an operation-count vector under this model.
  Rational total(const Cost& cost) const;

 private:
  Model(ModelKind kind, std::string name, Rational eps)
      : kind_(kind), name_(std::move(name)), eps_(eps) {}

  ModelKind kind_;
  std::string name_;
  Rational eps_;
};

/// All four models with default parameters (ε = 1/100), in paper order.
/// Convenient for parameterized tests and benches.
const std::vector<Model>& all_models();

/// Integer cost of one move in units of 1/ε.den(): a transfer costs ε.den(),
/// a computation ε.num(), a deletion 0. Exact for every model (ε = 0/1
/// outside compcost, so transfers cost 1 and computes are free there). The
/// exact searches run entirely in these scaled units so priorities stay
/// integral; divide by ε.den() to recover the model cost.
std::int64_t scaled_move_cost(const Model& model, MoveType type);

}  // namespace rbpeb
