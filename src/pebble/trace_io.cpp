#include "src/pebble/trace_io.hpp"

#include <sstream>

#include "src/support/check.hpp"

namespace rbpeb {

std::string trace_to_text(const Trace& trace) {
  std::ostringstream os;
  for (const Move& move : trace) {
    switch (move.type) {
      case MoveType::Load: os << "load "; break;
      case MoveType::Store: os << "store "; break;
      case MoveType::Compute: os << "compute "; break;
      case MoveType::Delete: os << "delete "; break;
    }
    os << move.node << '\n';
  }
  return os.str();
}

Trace trace_from_text(const std::string& text) {
  Trace trace;
  std::istringstream is(text);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string op;
    if (!(ls >> op)) continue;  // blank line
    std::uint64_t node = 0;
    RBPEB_REQUIRE(static_cast<bool>(ls >> node),
                  "trace line " + std::to_string(line_number) +
                      ": missing node id");
    std::string rest;
    RBPEB_REQUIRE(!(ls >> rest), "trace line " + std::to_string(line_number) +
                                     ": trailing tokens");
    NodeId v = static_cast<NodeId>(node);
    if (op == "load") trace.push_load(v);
    else if (op == "store") trace.push_store(v);
    else if (op == "compute") trace.push_compute(v);
    else if (op == "delete") trace.push_delete(v);
    else
      RBPEB_REQUIRE(false, "trace line " + std::to_string(line_number) +
                               ": unknown operation '" + op + "'");
  }
  return trace;
}

}  // namespace rbpeb
