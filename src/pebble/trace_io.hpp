// Trace serialization: a line-based text format for saving and replaying
// pebbling schedules (used by the CLI and the golden tests).
//
// Format: one move per line, "<op> <node>", where op is one of
// load | store | compute | delete. Blank lines and '#' comments allowed.
#pragma once

#include <string>

#include "src/pebble/trace.hpp"

namespace rbpeb {

/// Serialize a trace.
std::string trace_to_text(const Trace& trace);

/// Parse the format above. Throws PreconditionError on malformed input.
Trace trace_from_text(const std::string& text);

}  // namespace rbpeb
