#include "src/instances/binary_format.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "src/support/check.hpp"

namespace rbpeb::instances {

static_assert(std::endian::native == std::endian::little,
              ".rbg i/o assumes a little-endian host");

namespace {

[[noreturn]] void rbg_fail(const std::string& what) {
  throw PreconditionError("rbg: " + what);
}

void append_u32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void append_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::uint64_t read_u64(const std::byte* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// One direction of the stored CSR, viewed in place.
struct CsrView {
  const std::uint32_t* offsets;  // n + 1
  const std::uint32_t* targets;  // e
};

// Structural checks that apply to each direction independently.
void check_csr(const CsrView& csr, std::uint64_t n, std::uint64_t e,
               const char* name, std::vector<std::uint32_t>& stamp) {
  if (csr.offsets[0] != 0) rbg_fail(std::string(name) + "_offsets[0] != 0");
  for (std::uint64_t v = 0; v < n; ++v) {
    if (csr.offsets[v] > csr.offsets[v + 1]) {
      rbg_fail(std::string(name) + "_offsets not monotone at node " +
               std::to_string(v));
    }
  }
  if (csr.offsets[n] != e) {
    rbg_fail(std::string(name) + "_offsets[n] != edge_count");
  }
  stamp.assign(n, kInvalidNode);
  for (std::uint64_t v = 0; v < n; ++v) {
    for (std::uint32_t i = csr.offsets[v]; i < csr.offsets[v + 1]; ++i) {
      std::uint32_t t = csr.targets[i];
      if (t >= n) {
        rbg_fail(std::string(name) + "_targets: node " + std::to_string(t) +
                 " out of range at edge slot " + std::to_string(i));
      }
      if (t == v) rbg_fail("self-loop at node " + std::to_string(v));
      if (stamp[t] == v) {
        rbg_fail("duplicate edge in " + std::string(name) +
                 " adjacency of node " + std::to_string(v));
      }
      stamp[t] = static_cast<std::uint32_t>(v);
    }
  }
}

}  // namespace

std::uint64_t rbg_image_bytes(std::uint64_t node_count,
                              std::uint64_t edge_count) {
  return kRbgHeaderBytes + 4 * (2 * (node_count + 1) + 2 * edge_count);
}

std::string to_rbg_bytes(const Dag& dag) {
  const std::uint64_t n = dag.node_count();
  const std::uint64_t e = dag.edge_count();
  std::string out;
  out.reserve(static_cast<std::size_t>(rbg_image_bytes(n, e)));
  out.append(kRbgMagic.data(), kRbgMagic.size());
  append_u32(out, kRbgVersion);
  append_u32(out, 0);  // flags
  append_u64(out, n);
  append_u64(out, e);

  auto append_csr = [&](auto neighbors) {
    std::uint32_t offset = 0;
    append_u32(out, 0);
    for (std::uint64_t v = 0; v < n; ++v) {
      offset += static_cast<std::uint32_t>(
          neighbors(static_cast<NodeId>(v)).size());
      append_u32(out, offset);
    }
    for (std::uint64_t v = 0; v < n; ++v) {
      for (NodeId t : neighbors(static_cast<NodeId>(v))) append_u32(out, t);
    }
  };
  append_csr([&](NodeId v) { return dag.predecessors(v); });
  append_csr([&](NodeId v) { return dag.successors(v); });
  RBPEB_ENSURE(out.size() == rbg_image_bytes(n, e),
               "rbg serialization size mismatch");
  return out;
}

void write_rbg_file(const Dag& dag, const std::string& path) {
  std::string bytes = to_rbg_bytes(dag);
  std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    RBPEB_REQUIRE(os.good(), "cannot open " + tmp + " for writing");
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    os.flush();
    RBPEB_REQUIRE(os.good(), "short write to " + tmp);
  }
  RBPEB_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
                "cannot rename " + tmp + " to " + path);
}

bool looks_like_rbg(std::span<const std::byte> bytes) {
  return bytes.size() >= kRbgMagic.size() &&
         std::memcmp(bytes.data(), kRbgMagic.data(), kRbgMagic.size()) == 0;
}

Dag from_rbg_buffer(std::span<const std::byte> bytes,
                    std::shared_ptr<const void> backing) {
  if (bytes.size() < kRbgHeaderBytes) rbg_fail("truncated header");
  if (!looks_like_rbg(bytes)) rbg_fail("bad magic");
  if (reinterpret_cast<std::uintptr_t>(bytes.data()) % alignof(std::uint32_t)
      != 0) {
    rbg_fail("image buffer is not 4-byte aligned");
  }
  const std::uint32_t version = read_u32(bytes.data() + 8);
  if (version != kRbgVersion) {
    rbg_fail("unsupported version " + std::to_string(version));
  }
  const std::uint32_t flags = read_u32(bytes.data() + 12);
  if (flags != 0) rbg_fail("unknown flags " + std::to_string(flags));
  const std::uint64_t n = read_u64(bytes.data() + 16);
  const std::uint64_t e = read_u64(bytes.data() + 24);
  if (n > kMaxDagNodes) rbg_fail("node count exceeds NodeId range");
  if (e > 0xFFFFFFFFull) rbg_fail("edge count exceeds 32-bit offsets");
  if (bytes.size() != rbg_image_bytes(n, e)) {
    rbg_fail("file size " + std::to_string(bytes.size()) +
             " does not match header (expected " +
             std::to_string(rbg_image_bytes(n, e)) + ")");
  }

  const auto* words =
      reinterpret_cast<const std::uint32_t*>(bytes.data() + kRbgHeaderBytes);
  CsrView in{words, words + (n + 1)};
  CsrView out{words + (n + 1) + e, words + 2 * (n + 1) + e};

  std::vector<std::uint32_t> stamp;
  check_csr(in, n, e, "in", stamp);
  check_csr(out, n, e, "out", stamp);

  // Cross-consistency: rebuild the predecessor lists from the out-CSR by
  // counting sort and require set equality per node. Both directions are
  // duplicate-free by now, so equal length + containment ⇒ equality.
  {
    std::vector<std::uint32_t> pos(n + 1, 0);
    for (std::uint64_t i = 0; i < e; ++i) ++pos[out.targets[i] + 1];
    for (std::uint64_t v = 0; v < n; ++v) {
      if (pos[v + 1] != in.offsets[v + 1] - in.offsets[v]) {
        rbg_fail("in/out degree mismatch at node " + std::to_string(v));
      }
      pos[v + 1] += pos[v];
    }
    std::vector<std::uint32_t> rebuilt(e);
    for (std::uint64_t u = 0; u < n; ++u) {
      for (std::uint32_t i = out.offsets[u]; i < out.offsets[u + 1]; ++i) {
        rebuilt[pos[out.targets[i]]++] = static_cast<std::uint32_t>(u);
      }
    }
    stamp.assign(n, kInvalidNode);
    std::uint64_t slot = 0;
    for (std::uint64_t v = 0; v < n; ++v) {
      std::uint32_t deg = in.offsets[v + 1] - in.offsets[v];
      for (std::uint32_t i = 0; i < deg; ++i) {
        stamp[rebuilt[slot + i]] = static_cast<std::uint32_t>(v);
      }
      for (std::uint32_t i = in.offsets[v]; i < in.offsets[v + 1]; ++i) {
        if (stamp[in.targets[i]] != v) {
          rbg_fail("in/out adjacency disagree at node " + std::to_string(v));
        }
      }
      slot += deg;
    }
  }

  // Acyclicity (Kahn over the stored out-CSR).
  {
    std::vector<std::uint32_t> indeg(n);
    std::vector<NodeId> frontier;
    for (std::uint64_t v = 0; v < n; ++v) {
      indeg[v] = in.offsets[v + 1] - in.offsets[v];
      if (indeg[v] == 0) frontier.push_back(static_cast<NodeId>(v));
    }
    std::uint64_t processed = 0;
    while (!frontier.empty()) {
      NodeId v = frontier.back();
      frontier.pop_back();
      ++processed;
      for (std::uint32_t i = out.offsets[v]; i < out.offsets[v + 1]; ++i) {
        if (--indeg[out.targets[i]] == 0) {
          frontier.push_back(static_cast<NodeId>(out.targets[i]));
        }
      }
    }
    if (processed != n) rbg_fail("edge list contains a cycle; not a DAG");
  }

  return Dag::adopt_csr(static_cast<std::size_t>(n),
                        static_cast<std::size_t>(e), in.offsets, in.targets,
                        out.offsets, out.targets, std::move(backing));
}

MappedInstance load_rbg_file(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  RBPEB_REQUIRE(fd >= 0,
                "cannot open " + path + ": " + std::strerror(errno));
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    rbg_fail("cannot stat " + path);
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size < kRbgHeaderBytes) {
    ::close(fd);
    rbg_fail("truncated header");
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  RBPEB_REQUIRE(base != MAP_FAILED,
                "mmap of " + path + " failed: " + std::strerror(errno));
  std::shared_ptr<const void> mapping(
      base, [size](const void* p) { ::munmap(const_cast<void*>(p), size); });
  const auto* data = static_cast<const std::byte*>(base);
  Dag dag = from_rbg_buffer({data, size}, mapping);
  return MappedInstance{std::move(dag), data, size};
}

}  // namespace rbpeb::instances
