#include "src/instances/spec.hpp"

#include <charconv>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <vector>

#include "src/gadgets/tradeoff_chain.hpp"
#include "src/graph/dag_builder.hpp"
#include "src/graph/dag_io.hpp"
#include "src/graph/generators.hpp"
#include "src/instances/binary_format.hpp"
#include "src/pebble/model.hpp"
#include "src/reductions/greedy_grid.hpp"
#include "src/reductions/hampath.hpp"
#include "src/reductions/vertexcover.hpp"
#include "src/support/check.hpp"
#include "src/support/rng.hpp"
#include "src/workloads/chain.hpp"
#include "src/workloads/fft.hpp"
#include "src/workloads/lu.hpp"
#include "src/workloads/matmul.hpp"
#include "src/workloads/pyramid.hpp"
#include "src/workloads/random_layered.hpp"
#include "src/workloads/stencil.hpp"
#include "src/workloads/tree_reduction.hpp"

namespace rbpeb::instances {

namespace {

namespace fs = std::filesystem;

/// Fully resolved generator parameters (defaults filled in).
using Params = std::map<std::string, std::string, std::less<>>;

std::uint64_t param_u64(const Params& params, std::string_view key) {
  const std::string& raw = params.at(std::string(key));
  std::uint64_t value = 0;
  auto [next, ec] =
      std::from_chars(raw.data(), raw.data() + raw.size(), value);
  RBPEB_REQUIRE(ec == std::errc{} && next == raw.data() + raw.size(),
                "instance parameter " + std::string(key) + "=" + raw +
                    " is not an unsigned integer");
  return value;
}

double param_double(const Params& params, std::string_view key) {
  const std::string& raw = params.at(std::string(key));
  std::size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(raw, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  RBPEB_REQUIRE(used == raw.size(), "instance parameter " + std::string(key) +
                                        "=" + raw + " is not a number");
  return value;
}

Model param_model(const Params& params, std::string_view key) {
  const std::string& raw = params.at(std::string(key));
  auto model = Model::from_name(raw);
  RBPEB_REQUIRE(model.has_value(),
                "instance parameter " + std::string(key) + "=" + raw +
                    " is not a cost model name");
  return *model;
}

/// W independent chains of `depth` nodes, all feeding one sink: a
/// pathological-width instance (Δ equals the width at the sink).
Dag make_wide_dag(std::size_t width, std::size_t depth) {
  RBPEB_REQUIRE(width >= 1 && depth >= 1, "wide: width and depth must be >= 1");
  DagBuilder builder;
  NodeId first = builder.add_nodes(width * depth);
  NodeId sink = builder.add_node();
  for (std::size_t c = 0; c < width; ++c) {
    NodeId base = first + static_cast<NodeId>(c * depth);
    for (std::size_t i = 1; i < depth; ++i) {
      builder.add_edge(base + static_cast<NodeId>(i - 1),
                       base + static_cast<NodeId>(i));
    }
    builder.add_edge(base + static_cast<NodeId>(depth - 1), sink);
  }
  return builder.build();
}

/// A spine chain whose every node also consumes `fan` dedicated sources:
/// skewed fan-in (a few Δ = fan+1 hubs, everything else degree ≤ 1).
Dag make_skew_dag(std::size_t spine, std::size_t fan) {
  RBPEB_REQUIRE(spine >= 1, "skew: spine must be >= 1");
  DagBuilder builder;
  NodeId prev = kInvalidNode;
  for (std::size_t i = 0; i < spine; ++i) {
    NodeId leaves = builder.add_nodes(fan);
    NodeId hub = builder.add_node();
    for (std::size_t j = 0; j < fan; ++j) {
      builder.add_edge(leaves + static_cast<NodeId>(j), hub);
    }
    if (prev != kInvalidNode) builder.add_edge(prev, hub);
    prev = hub;
  }
  return builder.build();
}

struct GeneratorDef {
  const char* name;
  const char* description;
  /// key → default value; the accepted-parameter list.
  std::vector<std::pair<const char*, const char*>> params;
  std::function<ResolvedInstance(const Params&)> build;
};

const std::vector<GeneratorDef>& generator_registry() {
  static const std::vector<GeneratorDef> defs = {
      {"chain", "a path of n nodes", {{"n", "16"}},
       [](const Params& p) {
         return ResolvedInstance{make_chain_dag(param_u64(p, "n")), "", 0, 0};
       }},
      {"pyramid", "2D pyramid with the given base width", {{"base", "4"}},
       [](const Params& p) {
         return ResolvedInstance{make_pyramid_dag(param_u64(p, "base")).dag,
                                 "", 0, 0};
       }},
      {"tree", "binary tree reduction over `leaves` inputs",
       {{"leaves", "8"}},
       [](const Params& p) {
         return ResolvedInstance{
             make_tree_reduction_dag(param_u64(p, "leaves")).dag, "", 0, 0};
       }},
      {"fft", "FFT butterfly on `size` points (power of two)",
       {{"size", "8"}},
       [](const Params& p) {
         return ResolvedInstance{make_fft_dag(param_u64(p, "size")).dag, "",
                                 0, 0};
       }},
      {"matmul", "naive n×n matrix multiplication", {{"n", "2"}},
       [](const Params& p) {
         return ResolvedInstance{make_matmul_dag(param_u64(p, "n")).dag, "",
                                 0, 0};
       }},
      {"lu", "LU decomposition of an n×n matrix", {{"n", "3"}},
       [](const Params& p) {
         return ResolvedInstance{make_lu_dag(param_u64(p, "n")).dag, "", 0,
                                 0};
       }},
      {"stencil", "1D 3-point stencil, width × steps",
       {{"width", "4"}, {"steps", "4"}},
       [](const Params& p) {
         return ResolvedInstance{
             make_stencil1d_dag(param_u64(p, "width"), param_u64(p, "steps"))
                 .dag,
             "", 0, 0};
       }},
      {"stencil2d", "2D 5-point stencil, width × height × steps",
       {{"width", "3"}, {"height", "3"}, {"steps", "2"}},
       [](const Params& p) {
         return ResolvedInstance{
             make_stencil2d_dag(param_u64(p, "width"), param_u64(p, "height"),
                                param_u64(p, "steps"))
                 .dag,
             "", 0, 0};
       }},
      {"layered", "random layered DAG (layers × width, fixed indegree)",
       {{"layers", "4"}, {"width", "8"}, {"indegree", "2"}, {"seed", "1"}},
       [](const Params& p) {
         return ResolvedInstance{
             make_random_layered_dag({.layers = param_u64(p, "layers"),
                                      .width = param_u64(p, "width"),
                                      .indegree = param_u64(p, "indegree"),
                                      .seed = param_u64(p, "seed")}),
             "", 0, 0};
       }},
      {"wide", "pathological width: `width` chains of `depth` into one sink",
       {{"width", "64"}, {"depth", "1"}},
       [](const Params& p) {
         return ResolvedInstance{
             make_wide_dag(param_u64(p, "width"), param_u64(p, "depth")), "",
             0, 0};
       }},
      {"skew", "skewed fan-in: spine of hubs, each consuming `fan` sources",
       {{"spine", "8"}, {"fan", "4"}},
       [](const Params& p) {
         return ResolvedInstance{
             make_skew_dag(param_u64(p, "spine"), param_u64(p, "fan")), "", 0,
             0};
       }},
      {"hampath",
       "Hamiltonian-path reduction gadget over a random graph (paper §4)",
       {{"n", "5"}, {"p", "0.6"}, {"seed", "1"}, {"model", "oneshot"}},
       [](const Params& p) {
         Rng rng(param_u64(p, "seed"));
         Graph g = random_graph_with_ham_path(param_u64(p, "n"),
                                              param_double(p, "p"), rng);
         auto red = make_hampath_reduction(g, param_model(p, "model"));
         return ResolvedInstance{red.instance.dag, "", 0,
                                 red.instance.red_limit};
       }},
      {"hampath-cd",
       "constant-indegree Hamiltonian-path gadget (CD layers, Appendix B.1)",
       {{"n", "5"}, {"p", "0.6"}, {"seed", "1"}, {"layers", "3"}},
       [](const Params& p) {
         Rng rng(param_u64(p, "seed"));
         Graph g = random_graph_with_ham_path(param_u64(p, "n"),
                                              param_double(p, "p"), rng);
         auto red = make_hampath_reduction_cd(g, param_u64(p, "layers"));
         return ResolvedInstance{red.instance.dag, "", 0,
                                 red.instance.red_limit};
       }},
      {"vertexcover",
       "vertex-cover reduction gadget over a random graph (paper §5)",
       {{"n", "4"}, {"p", "0.5"}, {"seed", "1"}, {"k", "8"}},
       [](const Params& p) {
         Rng rng(param_u64(p, "seed"));
         Graph g =
             random_graph(param_u64(p, "n"), param_double(p, "p"), rng);
         auto red = make_vertexcover_reduction(g, param_u64(p, "k"));
         return ResolvedInstance{red.instance.dag, "", 0,
                                 red.instance.red_limit};
       }},
      {"grid", "greedy-misguidance grid (paper §6)",
       {{"ell", "3"}, {"k", "16"}, {"intersection", "2"}, {"protect", "0"}},
       [](const Params& p) {
         auto grid = make_greedy_grid({
             .ell = static_cast<std::size_t>(param_u64(p, "ell")),
             .k_common = static_cast<std::size_t>(param_u64(p, "k")),
             .intersection =
                 static_cast<std::size_t>(param_u64(p, "intersection")),
             .protect_commons = param_u64(p, "protect") != 0,
         });
         return ResolvedInstance{grid.instance.dag, "", 0,
                                 grid.instance.red_limit};
       }},
      {"tradeoff", "Figure 3 tradeoff chain (d control nodes × length)",
       {{"d", "3"}, {"length", "8"}, {"h2c", "0"}},
       [](const Params& p) {
         TradeoffChainSpec spec{
             .d = static_cast<std::size_t>(param_u64(p, "d")),
             .length = static_cast<std::size_t>(param_u64(p, "length")),
             .h2c_red_limit = {}};
         if (std::uint64_t r = param_u64(p, "h2c"); r != 0) {
           spec.h2c_red_limit = static_cast<std::size_t>(r);
         }
         auto chain = make_tradeoff_chain(spec);
         return ResolvedInstance{chain.instance.dag, "", 0,
                                 chain.instance.red_limit};
       }},
  };
  return defs;
}

const GeneratorDef* find_generator(std::string_view name) {
  for (const GeneratorDef& def : generator_registry()) {
    if (name == def.name) return &def;
  }
  return nullptr;
}

std::string known_generators() {
  std::string out;
  for (const GeneratorDef& def : generator_registry()) {
    if (!out.empty()) out += ", ";
    out += def.name;
  }
  return out;
}

bool is_file_scheme(std::string_view head) {
  return head == "file" || head == "text" || head == "rbg";
}

/// Resolve the on-disk location of a file spec under the access policy.
fs::path confine_path(const InstanceSpec& spec,
                      const InstanceSourceOptions& options) {
  RBPEB_REQUIRE(options.allow_files,
                "file instances are not allowed here (no instance root is "
                "configured)");
  fs::path requested(spec.path);
  if (options.root.empty()) return requested;

  RBPEB_REQUIRE(requested.is_relative(),
                "instance path must be relative to the instance root");
  for (const auto& part : requested) {
    RBPEB_REQUIRE(part != "..",
                  "instance path must not contain a '..' component");
  }
  std::error_code ec;
  fs::path root = fs::weakly_canonical(fs::path(options.root), ec);
  RBPEB_REQUIRE(!ec, "cannot canonicalize instance root " + options.root);
  fs::path full = fs::weakly_canonical(root / requested, ec);
  RBPEB_REQUIRE(!ec, "cannot canonicalize instance path " + spec.path);
  std::string root_str = root.string();
  std::string full_str = full.string();
  RBPEB_REQUIRE(
      full_str.size() > root_str.size() &&
          full_str.compare(0, root_str.size(), root_str) == 0 &&
          full_str[root_str.size()] == '/',
      "instance path escapes the instance root");
  return full;
}

std::string read_file_bytes(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  RBPEB_REQUIRE(is.good(), "cannot open instance file " + path.string());
  std::ostringstream os;
  os << is.rdbuf();
  return std::move(os).str();
}

ResolvedInstance resolve_file(const InstanceSpec& spec,
                              const InstanceSourceOptions& options) {
  fs::path path = confine_path(spec, options);
  std::string format = spec.format;
  if (format == "auto") {
    std::ifstream is(path, std::ios::binary);
    RBPEB_REQUIRE(is.good(), "cannot open instance file " + path.string());
    char head[8] = {};
    is.read(head, sizeof(head));
    std::span<const std::byte> sniff{
        reinterpret_cast<const std::byte*>(head),
        static_cast<std::size_t>(is.gcount())};
    format = looks_like_rbg(sniff) ? "rbg" : "text";
  }
  ResolvedInstance resolved;
  if (format == "rbg") {
    MappedInstance mapped = load_rbg_file(path.string());
    resolved.dag = std::move(mapped.dag);
    resolved.mapped_bytes = mapped.size;
  } else {
    resolved.dag = from_text(read_file_bytes(path));
  }
  resolved.name = spec.canonical;
  return resolved;
}

}  // namespace

InstanceSpec InstanceSpec::parse(std::string_view spec) {
  RBPEB_REQUIRE(!spec.empty(), "empty instance spec");
  std::size_t colon = spec.find(':');
  std::string_view head =
      colon == std::string_view::npos ? spec : spec.substr(0, colon);
  std::string_view rest =
      colon == std::string_view::npos ? std::string_view{}
                                      : spec.substr(colon + 1);

  InstanceSpec parsed;
  if (is_file_scheme(head)) {
    RBPEB_REQUIRE(!rest.empty(),
                  std::string(head) + ": spec needs a path, e.g. " +
                      std::string(head) + ":corpus/instances/foo.txt");
    parsed.kind = InstanceKind::File;
    parsed.path = std::string(rest);
    parsed.format = head == "file" ? "auto" : std::string(head);
    parsed.canonical = std::string(head) + ":" + parsed.path;
    return parsed;
  }

  const GeneratorDef* def = find_generator(head);
  RBPEB_REQUIRE(def != nullptr, "unknown instance generator '" +
                                    std::string(head) + "'; known: " +
                                    known_generators());
  parsed.kind = InstanceKind::Generator;
  parsed.generator = std::string(head);

  auto accepted = [&](std::string_view key) {
    for (const auto& [k, v] : def->params) {
      if (key == k) return true;
    }
    return false;
  };
  auto accepted_keys = [&]() {
    std::string out;
    for (const auto& [k, v] : def->params) {
      if (!out.empty()) out += ", ";
      out += k;
    }
    return out;
  };

  while (!rest.empty()) {
    std::size_t comma = rest.find(',');
    std::string_view item = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    std::size_t eq = item.find('=');
    RBPEB_REQUIRE(eq != std::string_view::npos && eq > 0 &&
                      eq + 1 < item.size(),
                  "malformed instance parameter '" + std::string(item) +
                      "' (want k=v)");
    std::string key(item.substr(0, eq));
    RBPEB_REQUIRE(accepted(key), "generator '" + parsed.generator +
                                     "' does not accept parameter '" + key +
                                     "'; accepted: " + accepted_keys());
    bool inserted =
        parsed.params.emplace(key, std::string(item.substr(eq + 1))).second;
    RBPEB_REQUIRE(inserted, "duplicate instance parameter '" + key + "'");
  }

  // Fill defaults, then spell every parameter into the canonical string.
  for (const auto& [k, v] : def->params) {
    parsed.params.emplace(k, v);
  }
  std::string canon = parsed.generator;
  char sep = ':';
  for (const auto& [k, v] : parsed.params) {
    canon += sep;
    canon += k;
    canon += '=';
    canon += v;
    sep = ',';
  }
  parsed.canonical = std::move(canon);
  return parsed;
}

ResolvedInstance resolve_instance(const InstanceSpec& spec,
                                  const InstanceSourceOptions& options) {
  if (spec.kind == InstanceKind::File) return resolve_file(spec, options);
  const GeneratorDef* def = find_generator(spec.generator);
  RBPEB_ENSURE(def != nullptr, "parsed spec names an unknown generator");
  ResolvedInstance resolved = def->build(spec.params);
  resolved.name = spec.canonical;
  return resolved;
}

ResolvedInstance resolve_instance(std::string_view spec,
                                  const InstanceSourceOptions& options) {
  return resolve_instance(InstanceSpec::parse(spec), options);
}

std::string spec_grammar_help() {
  std::ostringstream os;
  os << "instance spec grammar:\n"
     << "  <generator>[:k=v[,k=v...]]   generated instance\n"
     << "  file:<path>                  instance file (format sniffed)\n"
     << "  text:<path> | rbg:<path>     instance file (format forced)\n"
     << "generators:\n";
  for (const GeneratorDef& def : generator_registry()) {
    os << "  " << def.name;
    char sep = ':';
    for (const auto& [k, v] : def.params) {
      os << sep << k << '=' << v;
      sep = ',';
    }
    os << "  — " << def.description << '\n';
  }
  return os.str();
}

}  // namespace rbpeb::instances
