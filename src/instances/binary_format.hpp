// The .rbg binary instance format: a versioned, mmap-able container for one
// computation DAG.
//
// Layout (all integers little-endian):
//
//   offset  size          field
//   0       8             magic "rbpebdag"
//   8       u32           version (currently 1)
//   12      u32           flags (must be 0; reserved)
//   16      u64           node_count  (n)
//   24      u64           edge_count  (e)
//   32      (n+1) × u32   in_offsets   — CSR offsets, predecessors
//   …       e × u32       in_targets
//   …       (n+1) × u32   out_offsets  — CSR offsets, successors
//   …       e × u32       out_targets
//
// The adjacency is stored exactly as the Dag holds it (insertion order), so
// a text → binary → text round trip is byte-identical and solver behaviour
// cannot drift with the storage format. The loader validates the whole image
// — magic, version, exact file size, offset monotonicity, target ranges,
// self-loops, per-node duplicates, in/out cross-consistency, acyclicity —
// using only transient O(n + e) scratch, then adopts the mapped CSR arrays
// in place: the Dag it returns serves predecessors/successors straight out
// of the file mapping, no copy of the edge arrays is ever made.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "src/graph/dag.hpp"

namespace rbpeb::instances {

inline constexpr std::array<char, 8> kRbgMagic = {'r', 'b', 'p', 'e',
                                                  'b', 'd', 'a', 'g'};
inline constexpr std::uint32_t kRbgVersion = 1;
inline constexpr std::size_t kRbgHeaderBytes = 32;

/// Exact byte size of the .rbg image for a DAG of the given shape.
std::uint64_t rbg_image_bytes(std::uint64_t node_count,
                              std::uint64_t edge_count);

/// Serialize `dag` into .rbg bytes. Labels are not stored (they are
/// debugging aids, exactly as in the text format).
std::string to_rbg_bytes(const Dag& dag);

/// Serialize `dag` and write it to `path` atomically-ish (temp + rename).
void write_rbg_file(const Dag& dag, const std::string& path);

/// Validate an in-memory .rbg image and adopt its CSR without copying.
/// `backing` must keep `bytes` alive and unchanged; the returned Dag holds
/// it. `bytes.data()` must be 4-byte aligned (any mmap or heap buffer is).
/// Throws PreconditionError naming the defect on any malformed image.
Dag from_rbg_buffer(std::span<const std::byte> bytes,
                    std::shared_ptr<const void> backing);

/// An instance served straight from a file mapping.
struct MappedInstance {
  Dag dag;                ///< Adjacency points into the mapping.
  const std::byte* data;  ///< Mapping base (diagnostics, tests).
  std::size_t size;       ///< Mapping length in bytes.
};

/// mmap `path`, validate, and adopt the CSR in place (see file comment).
/// The mapping lives for as long as any copy of the returned Dag does.
MappedInstance load_rbg_file(const std::string& path);

/// True when `bytes` starts with the .rbg magic (format sniffing).
bool looks_like_rbg(std::span<const std::byte> bytes);

}  // namespace rbpeb::instances
