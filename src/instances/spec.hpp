// One instance-specification language for the whole platform.
//
// Before this layer, "which DAG do we solve" was spelled three different
// ways: rbpeb_cli took a file path plus a `gen` subcommand, the serve
// protocol took inline DAG text, and every bench driver hand-wired its own
// generator calls. An InstanceSpec is the single grammar all of them parse:
//
//   <generator>[:k=v[,k=v…]]      e.g.  layered:layers=4,width=8,seed=7
//   file:<path>                   format sniffed from the file's magic
//   text:<path> | rbg:<path>      format forced
//
// parse() validates the shape (unknown generators and unknown or malformed
// parameters are rejected loudly, naming what is accepted), and
// resolve_instance() turns a spec into a Dag — generated, parsed from text,
// or served zero-copy from an mmap-ed .rbg. File access is policy-gated:
// the CLI resolves paths freely, while the serve tier passes a confinement
// root that jails every request-supplied path (relative only, no "..",
// symlink-escape checked).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>

#include "src/graph/dag.hpp"

namespace rbpeb::instances {

/// Where an instance comes from.
enum class InstanceKind {
  Generator,  ///< Built by a named workload / gadget generator.
  File,       ///< Loaded from an instance file (text or .rbg).
};

struct InstanceSpec {
  InstanceKind kind = InstanceKind::Generator;

  // Generator specs.
  std::string generator;
  std::map<std::string, std::string, std::less<>> params;

  // File specs.
  std::string path;
  std::string format;  ///< "auto" | "text" | "rbg".

  /// Normalized spec string: every parameter (defaults included) spelled
  /// out, sorted by key — equal canonical strings mean equal instances.
  std::string canonical;

  /// Parse a spec string. Throws PreconditionError (listing the accepted
  /// generators or parameter keys) on anything malformed.
  static InstanceSpec parse(std::string_view spec);
};

/// File-access policy for resolve_instance.
struct InstanceSourceOptions {
  /// When false, file specs are rejected outright (a serve deployment with
  /// no --instance-root).
  bool allow_files = true;
  /// When non-empty, file paths must be relative, contain no ".."
  /// component, and resolve (symlinks followed) to a location inside this
  /// directory. Empty means unconfined (the CLI's own command line).
  std::string root;
};

/// A resolved instance, ready to solve.
struct ResolvedInstance {
  Dag dag;
  std::string name;  ///< The spec's canonical string.
  /// Bytes served via mmap (0 unless the spec resolved to an .rbg file;
  /// the Dag then reads its adjacency straight from the mapping).
  std::size_t mapped_bytes = 0;
  /// The red-pebble budget the instance was constructed for, when the
  /// generator defines one (the reduction gadgets); 0 otherwise.
  std::size_t natural_red_limit = 0;
};

ResolvedInstance resolve_instance(const InstanceSpec& spec,
                                  const InstanceSourceOptions& options = {});

/// Convenience: parse + resolve in one call.
ResolvedInstance resolve_instance(std::string_view spec,
                                  const InstanceSourceOptions& options = {});

/// One line per known generator: "name  params(defaults)  description".
std::string spec_grammar_help();

}  // namespace rbpeb::instances
