#include "src/serve/canonical.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "src/support/check.hpp"

namespace rbpeb::serve {

namespace {

/// splitmix64 finalizer: the avalanche mix every hash below is built from.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Order-DEPENDENT combination (sequences, tuples).
std::uint64_t combine(std::uint64_t h, std::uint64_t v) {
  return mix(h ^ mix(v));
}

std::uint64_t hash_string(std::string_view text, std::uint64_t seed) {
  std::uint64_t h = seed ^ 0xcbf29ce484222325ULL;  // FNV offset, then mix
  for (const char c : text) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  }
  return mix(h);
}

/// Order-INDEPENDENT accumulator: the multiset-hash primitive that makes
/// every DAG ingredient relabeling-invariant (sum and xor of element hashes
/// commute; the count breaks sum/xor cancellation games).
struct MultisetHash {
  std::uint64_t sum = 0;
  std::uint64_t xored = 0;
  std::size_t count = 0;

  void add(std::uint64_t value) {
    const std::uint64_t m = mix(value);
    sum += m;
    xored ^= m;
    ++count;
  }

  std::uint64_t digest() const {
    return mix(sum ^ mix(xored) ^ mix(count));
  }
};

std::size_t distinct_count(const std::vector<std::uint64_t>& colors) {
  std::unordered_set<std::uint64_t> seen(colors.begin(), colors.end());
  return seen.size();
}

/// One WL round: each node folds its own color with the multisets of its
/// predecessor and successor colors (kept distinct — direction matters in a
/// DAG). No node id ever enters a hash, which is the invariance proof.
std::vector<std::uint64_t> wl_round(const Dag& dag,
                                    const std::vector<std::uint64_t>& colors) {
  const std::size_t n = dag.node_count();
  std::vector<std::uint64_t> next(n);
  for (std::size_t v = 0; v < n; ++v) {
    const NodeId node = static_cast<NodeId>(v);
    MultisetHash preds, succs;
    for (NodeId u : dag.predecessors(node)) preds.add(colors[u]);
    for (NodeId u : dag.successors(node)) succs.add(colors[u]);
    next[v] =
        combine(combine(combine(colors[v], preds.digest()), succs.digest()),
                0xD6E8FEB86659FD93ULL);
  }
  return next;
}

/// Refine until the color partition stops splitting. Refinement is
/// monotone (a round never merges classes), so a stable distinct-count
/// means a stable partition.
void refine_to_stability(const Dag& dag, std::vector<std::uint64_t>& colors) {
  std::size_t distinct = distinct_count(colors);
  for (std::size_t round = 0; round < dag.node_count(); ++round) {
    colors = wl_round(dag, colors);
    const std::size_t now = distinct_count(colors);
    if (now == distinct) return;
    distinct = now;
  }
}

std::vector<std::uint64_t> initial_colors(const Dag& dag) {
  const std::size_t n = dag.node_count();
  std::vector<std::uint64_t> colors(n);
  for (std::size_t v = 0; v < n; ++v) {
    const NodeId node = static_cast<NodeId>(v);
    colors[v] = combine(mix(dag.indegree(node)), dag.outdegree(node));
  }
  return colors;
}

}  // namespace

CanonicalForm canonicalize(const Dag& dag) {
  const std::size_t n = dag.node_count();
  CanonicalForm form;

  std::vector<std::uint64_t> colors = initial_colors(dag);
  refine_to_stability(dag, colors);

  // The hash uses the STABLE refinement colors only — individualization
  // below makes id-dependent (best-effort) choices that must never leak
  // into the relabeling-invariant fingerprint.
  MultisetHash nodes, edges;
  for (std::size_t v = 0; v < n; ++v) {
    nodes.add(colors[v]);
    for (NodeId u : dag.predecessors(static_cast<NodeId>(v))) {
      edges.add(combine(colors[u], colors[v]));
    }
  }
  form.dag_hash = combine(combine(combine(nodes.digest(), edges.digest()), n),
                          dag.edge_count());

  // Individualization-refinement for the canonical order: split one
  // WL-equivalent class per round and re-refine. Inside a class the members
  // are structurally indistinguishable to WL, so the pick is arbitrary up
  // to (conjectured) automorphism — smallest original id keeps it
  // deterministic, and a wrong conjecture costs an audit-fail miss in the
  // cache, never a wrong answer.
  // Each round sorts (color, id) pairs and splits at the first duplicated
  // color — the smallest duplicated color value, smallest id inside it —
  // so a round costs O(n log n), which is what lets the serve tier
  // fingerprint 10⁵-node file instances.
  std::vector<std::pair<std::uint64_t, NodeId>> sorted(n);
  for (;;) {
    for (std::size_t v = 0; v < n; ++v) {
      sorted[v] = {colors[v], static_cast<NodeId>(v)};
    }
    std::sort(sorted.begin(), sorted.end());
    NodeId pick = kInvalidNode;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      if (sorted[i].first == sorted[i + 1].first) {
        pick = sorted[i].second;
        break;
      }
    }
    if (pick == kInvalidNode) break;  // every color already unique
    colors[pick] = combine(colors[pick], 0xA24BAED4963EE407ULL);
    refine_to_stability(dag, colors);
  }

  form.order.resize(n);
  for (std::size_t v = 0; v < n; ++v) form.order[v] = static_cast<NodeId>(v);
  std::sort(form.order.begin(), form.order.end(),
            [&](NodeId a, NodeId b) {
              if (colors[a] != colors[b]) return colors[a] < colors[b];
              return a < b;  // unreachable unless two hashes collide
            });
  return form;
}

std::string instance_fingerprint(const CanonicalForm& form, const Model& model,
                                 const PebblingConvention& convention,
                                 std::size_t red_limit,
                                 std::string_view solver,
                                 const SolverOptions& options) {
  const std::string option_string = canonical_option_string(options);
  // Two independently-salted 64-bit digests: 128 bits against birthday
  // collisions across a long-lived cache (and the audit behind them).
  std::string fingerprint;
  for (const std::uint64_t seed :
       {0x8BADF00DDEADBEEFULL, 0x1234ABCD5678EF01ULL}) {
    std::uint64_t h = mix(seed);
    h = combine(h, form.dag_hash);
    h = combine(h, hash_string(model.name(), seed));
    h = combine(h, static_cast<std::uint64_t>(model.epsilon().num()));
    h = combine(h, static_cast<std::uint64_t>(model.epsilon().den()));
    h = combine(h, (convention.sources_start_blue ? 2u : 0u) |
                       (convention.sinks_end_blue ? 1u : 0u));
    h = combine(h, red_limit);
    h = combine(h, hash_string(solver, seed));
    h = combine(h, hash_string(option_string, seed));
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    if (!fingerprint.empty()) fingerprint.push_back('-');
    fingerprint += buf;
  }
  return fingerprint;
}

}  // namespace rbpeb::serve
