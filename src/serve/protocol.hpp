// The rbpeb-serve wire protocol: JSONL solve requests and responses.
//
// One request per line in, one response per line out — the only framing a
// stdin pipe, a file queue, and a local socket all support without length
// prefixes. The container image ships no JSON library, so this header also
// carries a minimal, dependency-free JSON reader/writer: a recursive-descent
// parser over a small DOM (objects, arrays, strings, numbers, bools, null)
// plus string escaping for the writer side. It is a *protocol* parser, not a
// general one: numbers keep their raw text so integral budgets round-trip
// exactly, and anything malformed throws PreconditionError with the offset.
//
// Request line:
//   {"id": "r1", "dag": "4\n0 2\n1 2\n2 3\n", "r": 2,
//    "model": "oneshot", "solver": "portfolio",
//    "sources_blue": false, "sinks_blue": false,
//    "options": {"rule": "lru"},
//    "budget": {"states": 200000, "ms": 500, "threads": 2,
//               "memory": 67108864, "disk": 268435456}}
// Only "r" plus exactly one of "dag" (inline text) or "dag_file" (a path
// under the server's --instance-root, optionally with "dag_format":
// "auto"|"text"|"rbg") are required; everything else has server defaults.
// The answer — and its cache fingerprint — is identical whichever way the
// same instance arrives.
//
// Response line (see ResponseMessage): id, status, audited cost and trace,
// the cache verdict, per-request timing, and the solver's stats map.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/solvers/api.hpp"

namespace rbpeb::serve {

/// Minimal JSON DOM. Numbers keep their raw spelling (see header comment).
class Json {
 public:
  enum class Type { Null, Bool, Number, String, Object, Array };

  Type type = Type::Null;
  bool boolean = false;
  std::string text;  ///< Number: raw spelling. String: decoded content.
  std::map<std::string, Json> object;
  std::vector<Json> array;

  bool is_null() const { return type == Type::Null; }

  /// Member lookup; nullptr when absent or not an object.
  const Json* find(const std::string& key) const;

  /// Typed readers; each throws PreconditionError naming `where` when the
  /// value has the wrong type or (for numbers) malformed/overflowing text.
  const std::string& as_string(const std::string& where) const;
  bool as_bool(const std::string& where) const;
  std::uint64_t as_u64(const std::string& where) const;
  std::int64_t as_i64(const std::string& where) const;
};

/// Parse one JSON document (the whole string; trailing junk is an error).
Json json_parse(const std::string& text);

/// `text` with JSON string escaping applied, quotes included.
std::string json_quote(const std::string& text);

/// One parsed solve request. Defaults reproduce the CLI's: oneshot model,
/// default convention, server-chosen solver, server-default budgets.
struct RequestMessage {
  std::string id;
  std::string dag_text;
  /// Instance file alternative to inline "dag": a path resolved under the
  /// server's --instance-root jail (requests are rejected when no root is
  /// configured). Exactly one of dag_text / dag_file is set.
  std::string dag_file;
  std::string dag_format;  ///< "auto" (default), "text", or "rbg".
  std::size_t red_limit = 0;
  std::string model = "oneshot";
  bool sources_blue = false;
  bool sinks_blue = false;
  std::string solver;  ///< empty = the server's default solver
  SolverOptions options;
  /// Budget knobs; 0 = the server default for that dimension.
  std::size_t budget_states = 0;
  std::size_t budget_iterations = 0;
  std::int64_t budget_ms = 0;
  std::size_t budget_threads = 0;
  std::size_t budget_memory = 0;
  std::size_t budget_disk = 0;
};

/// Parse one request line. Throws PreconditionError on malformed JSON,
/// missing required fields ("dag", "r"), or unknown keys (typos must fail
/// loudly, same rule as solver options).
RequestMessage parse_request(const std::string& line);

/// One response, rendered as a single JSONL line by to_json(). `status` is
/// one of: optimal, heuristic, budget_exhausted, inapplicable, rejected,
/// error. `cache` is one of: hit (served from the trace cache), flight
/// (collapsed into a concurrent identical solve), miss (solved fresh), none
/// (never reached the cache: rejected or malformed).
struct ResponseMessage {
  std::string id;
  std::string status;
  std::string cache = "none";
  std::string solver;
  std::string cost;        ///< audited Rational::str(); empty without a trace
  std::string trace_text;  ///< trace_to_text form; empty without a trace
  /// Suboptimality certificate, when the answer carries one (anytime
  /// solves, fresh or cached): exact Rational::str() renderings of ε and
  /// the proved lower bound, satisfying cost ≤ (1+ε)·lower_bound. Both
  /// empty otherwise. "0" epsilon with status heuristic cannot occur — a
  /// zero-ε certificate is reported as status optimal.
  std::string epsilon;
  std::string lower_bound;
  std::string detail;
  std::map<std::string, std::string> stats;
  std::int64_t queue_us = 0;  ///< admission-to-dispatch wait
  std::int64_t solve_us = 0;  ///< dispatch-to-answer (0 for cache hits)

  std::string to_json() const;
};

}  // namespace rbpeb::serve
