// Instance canonicalization for the serve layer: a stable, relabeling-
// invariant fingerprint of one solve request, and a canonical node order
// that lets a cached trace be replayed onto an isomorphic relabeling.
//
// Two requests whose DAGs differ only by node renumbering describe the same
// pebbling problem, so they must land on the same cache entry. True graph
// canonization is isomorphism-hard; the serve layer does not need it,
// because every cache answer is replayed through the Verifier before it is
// served (trace_cache.hpp). What it needs is a fingerprint that is
//
//   * provably invariant under relabeling (no false MISSES for renumbered
//     repeats), which Weisfeiler–Leman color refinement with multiset
//     hashing gives exactly: every hash ingredient is a multiset over
//     structural colors, never a node id;
//   * almost never colliding for distinct instances (a collision is a false
//     HIT candidate — caught by the audit and demoted to a miss, costing a
//     re-solve, never a wrong answer).
//
// The canonical ORDER (canonicalize().order) comes from the same refinement
// plus individualization rounds: WL-equivalent classes are split one node at
// a time and re-refined until every class is a singleton. For the common
// byte-identical repeat the order matches trivially and the cached trace
// replays as-is; for genuinely relabeled isomorphs the entry-order-to-
// request-order composition is an isomorphism whenever refinement separates
// what automorphisms do not (the audit backstops the residue).
//
// The instance fingerprint folds in everything that changes the answer:
// the DAG hash, the model (name AND ε — two compcost parameterizations are
// different games), both convention bits, R, the solver, and the canonical
// "k=v" option serialization from the solver API. Budgets are deliberately
// excluded: they bound the effort, not the instance, and the cache stores
// the audited answer, which a budget cannot change — only fail to produce.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/graph/dag.hpp"
#include "src/pebble/engine.hpp"
#include "src/solvers/api.hpp"

namespace rbpeb::serve {

/// Relabeling-invariant structural summary of one DAG.
struct CanonicalForm {
  /// WL multiset hash over stable node colors and edge color pairs —
  /// identical for isomorphic DAGs regardless of node numbering.
  std::uint64_t dag_hash = 0;
  /// order[i] = the node at canonical position i. Two isomorphic DAGs map
  /// onto each other via entry.order[i] → request.order[i].
  std::vector<NodeId> order;
};

/// Compute the canonical form (see header comment).
CanonicalForm canonicalize(const Dag& dag);

/// Stable hex fingerprint of a full solve instance; the trace-cache key.
std::string instance_fingerprint(const CanonicalForm& form, const Model& model,
                                 const PebblingConvention& convention,
                                 std::size_t red_limit,
                                 std::string_view solver,
                                 const SolverOptions& options);

}  // namespace rbpeb::serve
