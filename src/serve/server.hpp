// The rbpeb solve server: a bounded-queue worker pool turning a stream of
// protocol requests into audited responses, amortizing repeated instances
// through the verified trace cache.
//
// Request lifecycle:
//
//   submit() ──(queue full?)──► structured `rejected` response, immediately
//      │
//      ▼ bounded FIFO queue
//   worker pops ──(deadline already passed?)──► `rejected` (shed, not solved)
//      │
//      ▼ canonicalize + fingerprint (canonical.hpp)
//   trace cache lookup ──hit──► audited answer, no solve
//      │ miss
//      ▼ single-flight table ──someone already solving this fingerprint──►
//      │                        wait for the leader, then re-read the cache
//      ▼ leader
//   dispatch to the registry / portfolio under the request's SolveBudget
//   (deadline anchored at ARRIVAL, so queue wait counts against it), insert
//   the audited answer into the cache, wake the followers.
//
// Admission control is structural, not advisory: the queue is bounded (an
// overloaded server answers `rejected` instead of growing a hang), queued
// requests whose deadline has passed are shed without solving, and the
// solver-thread pool is fair-shared — each in-flight solve is granted
// total_threads / active_solves cores (at least one) unless the request
// pinned its own budget.threads. Single-flight deduplication collapses
// concurrent identical requests into one solve: the followers block on the
// leader's flight, then serve from the cache it populated.
//
// The server is a reentrant consumer of the solver layer: engines are
// per-request locals, budgets are per-request values, and the only shared
// mutable state (cache, flights, stats) is behind its own locks.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/introspect.hpp"
#include "src/obs/metrics.hpp"
#include "src/serve/protocol.hpp"
#include "src/serve/trace_cache.hpp"
#include "src/solvers/api.hpp"

namespace rbpeb::serve {

struct ServerOptions {
  /// Trace-cache byte budget (0 = unlimited).
  std::size_t cache_bytes = std::size_t{64} << 20;
  /// In-flight queue bound; a submit past it is rejected, never queued.
  std::size_t max_queue = 256;
  /// Worker threads consuming the queue; 0 = min(hardware, 8).
  std::size_t workers = 0;
  /// Core pool fair-shared across concurrent solves; 0 = hardware.
  std::size_t solver_threads = 0;
  /// Solver for requests that name none. "portfolio" races the registry.
  std::string default_solver = "portfolio";
  /// Deadline granted to requests that set no budget.ms (0 = none).
  std::int64_t default_deadline_ms = 0;
  /// Default state budget for requests that set none.
  std::size_t default_states = 2'000'000;
  /// Registry to resolve solvers against; nullptr = the global instance.
  const SolverRegistry* registry = nullptr;
  /// Per-request observability event sink: when set, each dispatched solve
  /// runs with a progress sampler and every published snapshot becomes one
  /// JSON line ({"type":"progress","id":…,"snapshot":{…}}) handed to this
  /// callback — rbpeb_serve appends them to the --stats sidecar. Called from
  /// worker threads; the callback must be thread-safe.
  std::function<void(const std::string&)> event_sink;
  /// Minimum wall-clock ms between progress events per request.
  std::int64_t progress_interval_ms = 250;
  /// When non-empty, any request ending without an optimality proof —
  /// budget-exhausted solve or a deadline shed in the queue — dumps a
  /// post-mortem black box (obs/postmortem.hpp) under
  /// <postmortem_dir>/req-<seq>/.
  std::string postmortem_dir;
  /// Confinement root for requests that name a "dag_file": paths must be
  /// relative, ".."-free, and resolve (symlinks followed) inside this
  /// directory. Empty (the default) rejects every dag_file request — file
  /// access is strictly opt-in. CLI: rbpeb_serve --instance-root DIR.
  std::string instance_root;
};

/// Aggregate counters, summarized on shutdown and exported per bench run.
/// All monotone; read with snapshot().
struct ServerStats {
  std::atomic<std::uint64_t> received{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> rejected_queue_full{0};
  std::atomic<std::uint64_t> shed_deadline{0};
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> flight_hits{0};  ///< single-flight followers
  std::atomic<std::uint64_t> solves{0};       ///< dispatched to a solver
  std::atomic<std::uint64_t> solved_ok{0};    ///< came back with a trace
  std::atomic<std::uint64_t> audit_failures{0};
  std::atomic<std::uint64_t> errors{0};  ///< malformed requests

  std::map<std::string, std::string> snapshot() const;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();  ///< drains the queue, then joins the workers

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueue one request. The future is fulfilled by a worker — or
  /// immediately, with a `rejected` response, when the queue is full.
  std::future<ResponseMessage> submit(RequestMessage request);

  /// Convenience: submit and wait.
  ResponseMessage solve(RequestMessage request);

  const ServerStats& stats() const { return stats_; }
  TraceCache::Stats cache_stats() const { return cache_.stats(); }

  /// Human-readable shutdown summary (one "key: value" line each),
  /// including p50/p90/p99 end-to-end latency from the server's histograms
  /// and the queue-depth high-water mark.
  std::vector<std::string> summary() const;

  /// One-line JSON metrics snapshot ({"type":"metrics_snapshot",...}):
  /// server counters, cache hit/miss counters read directly from
  /// TraceCache::Stats, latency/queue/solve histograms, and queue depth.
  /// Safe to call concurrently with live traffic; rbpeb_serve appends these
  /// to the --stats sidecar periodically.
  std::string metrics_snapshot_json() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct QueuedRequest {
    RequestMessage request;
    std::promise<ResponseMessage> promise;
    Clock::time_point arrival;
  };

  /// One in-flight solve for a fingerprint; followers wait on `done`.
  struct Flight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
  };

  void worker_loop();
  ResponseMessage handle(const RequestMessage& request,
                         Clock::time_point arrival);
  /// `certificate_out`, when non-null, receives the solve's suboptimality
  /// certificate (nullopt if the answer carried none) — the leader passes
  /// it through to the cache insert so the structured Rationals survive
  /// rather than being re-parsed from the response strings.
  /// `req_seq` is the server-wide request sequence number — the trace
  /// context every span of this request is tagged with, and the name of its
  /// post-mortem directory (req-<seq>).
  ResponseMessage dispatch_solve(
      const RequestMessage& request, const Engine& engine,
      Clock::time_point arrival, std::uint64_t req_seq,
      std::optional<SolveCertificate>* certificate_out = nullptr);
  /// Dump the black box for a request that ended without an optimality
  /// proof. No-op when options_.postmortem_dir is empty.
  void write_request_postmortem(const RequestMessage& request,
                                std::uint64_t req_seq,
                                const obs::SearchProgressSampler* sampler,
                                std::string limiting_resource,
                                std::string termination, std::string detail,
                                std::string solver,
                                std::map<std::string, std::string> stats);

  const ServerOptions options_;
  const SolverRegistry& registry_;
  TraceCache cache_;
  ServerStats stats_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<QueuedRequest> queue_;
  bool stopping_ = false;

  std::mutex flights_mutex_;
  std::map<std::string, std::shared_ptr<Flight>> flights_;

  std::atomic<std::size_t> active_solves_{0};
  std::atomic<std::uint64_t> request_seq_{0};  ///< trace/postmortem tag
  std::vector<std::thread> workers_;

  // Server-owned (not in the global registry: benches and tests run several
  // servers per process, whose percentiles must not bleed together).
  obs::Histogram latency_us_;  ///< arrival → response, worker-completed
  obs::Histogram queue_us_;    ///< arrival → worker pickup
  obs::Histogram solve_us_;    ///< solver dispatch wall time
  obs::Gauge queue_depth_;     ///< live queue size; max() = high-water
};

}  // namespace rbpeb::serve
